/** Tests for the extension transformations and analyses: skewing,
 *  scalar replacement, unroll-and-jam, tiling, reversal, the
 *  reuse-distance analyzer and the two-level cache hierarchy. */

#include <gtest/gtest.h>

#include "cachesim/hierarchy.hh"
#include "cachesim/reuse.hh"
#include "dependence/graph.hh"
#include "interp/interp.hh"
#include "ir/builder.hh"
#include "ir/printer.hh"
#include "suite/kernels.hh"
#include "transform/reverse.hh"
#include "transform/scalar_replace.hh"
#include "transform/skew.hh"
#include "transform/tile.hh"
#include "transform/unroll_jam.hh"

namespace memoria {
namespace {

// ---------------------------------------------------------------- skew

TEST(Skew, PreservesSemantics)
{
    Program p = makeJacobiBadOrder(12);
    uint64_t before = runChecksum(p);
    Node *outer = p.body[0].get();
    Node *inner = outer->body[0].get();
    skewLoop(*outer, *inner, 1);
    EXPECT_EQ(runChecksum(p), before);
    // The inner bounds now depend on the outer variable.
    EXPECT_EQ(inner->lb.coeff(outer->var), 1);
    EXPECT_EQ(inner->ub.coeff(outer->var), 1);
}

TEST(Skew, MakesWavefrontBandPermutable)
{
    // A(I,J) = A(I-1,J+1) + A(I-1,J-1): vectors (1,-1),(1,1). With
    // skew factor 1 they become (1,0),(1,2): fully permutable.
    ProgramBuilder b("wave");
    Var n = b.param("N", 10);
    Arr a = b.array("A", {Ix(n) + 2, Ix(n) * 2 + 2});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(i, 2, n,
                 b.loop(j, 2, n,
                        b.assign(a(i, j),
                                 a(Ix(i) - 1, Ix(j) + 1) +
                                     a(Ix(i) - 1, Ix(j) - 1)))));
    Program p = b.finish();
    uint64_t before = runChecksum(p);

    {
        DependenceGraph g(p, collectStmts(p));
        EXPECT_FALSE(bandFullyPermutable(g.edges(), 2));
    }
    Node *outer = p.body[0].get();
    skewLoop(*outer, *outer->body[0], 1);
    EXPECT_EQ(runChecksum(p), before);
    {
        DependenceGraph g(p, collectStmts(p));
        EXPECT_TRUE(bandFullyPermutable(g.edges(), 2));
    }
}

TEST(Skew, NegativeFactorAlsoExact)
{
    Program p = makeMatmul("JKI", 8);
    uint64_t before = runChecksum(p);
    auto chain = perfectChain(p.body[0].get());
    skewLoop(*chain[0], *chain[2], -2);
    EXPECT_EQ(runChecksum(p), before);
}

// --------------------------------------------------- scalar replacement

TEST(ScalarReplace, MatmulInvariantB)
{
    // In JKI matmul, B(K,J) is invariant in the inner I loop.
    Program p = makeMatmul("JKI", 16);
    size_t arraysBefore = p.arrays.size();
    uint64_t before = runChecksum(p);

    ScalarReplaceStats stats = scalarReplace(p);
    EXPECT_EQ(stats.replacedReads, 1);
    EXPECT_EQ(stats.replacedReductions, 0);
    ASSERT_GT(p.arrays.size(), arraysBefore);
    EXPECT_TRUE(p.arrays.back().isRegister);

    Interpreter interp(p);
    interp.run();
    EXPECT_EQ(interp.checksumFirstArrays(arraysBefore), before);
}

TEST(ScalarReplace, ReducesMemoryTraffic)
{
    Program orig = makeMatmul("JKI", 24);
    Program opt = orig.clone();
    scalarReplace(opt);

    RunResult r0 = runWithCache(orig, CacheConfig::i860());
    RunResult r1 = runWithCache(opt, CacheConfig::i860());
    // One of four references per iteration becomes a register access.
    EXPECT_LT(r1.exec.memRefs, r0.exec.memRefs);
    EXPECT_NEAR(static_cast<double>(r1.exec.memRefs),
                0.75 * static_cast<double>(r0.exec.memRefs),
                0.02 * static_cast<double>(r0.exec.memRefs));
}

TEST(ScalarReplace, ReductionGetsStoreback)
{
    // S(J) = S(J) + A(I,J) with I innermost: S(J) is an invariant
    // reduction; it must preload, accumulate in a register, and store
    // back so the final memory state matches.
    ProgramBuilder b("red");
    Var n = b.param("N", 12);
    Arr a = b.array("A", {n, n});
    Arr s = b.array("S", {n});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(j, 1, n,
                 b.loop(i, 1, n,
                        b.assign(s(j), s(j) + a(i, j)))));
    Program p = b.finish();
    size_t arraysBefore = p.arrays.size();
    uint64_t before = runChecksum(p);

    ScalarReplaceStats stats = scalarReplace(p);
    EXPECT_EQ(stats.replacedReductions, 1);

    Interpreter interp(p);
    interp.run();
    EXPECT_EQ(interp.checksumFirstArrays(arraysBefore), before);
}

TEST(ScalarReplace, AliasedReferencesAreSkipped)
{
    // A(1,J) is invariant in I, but A(I,J) aliases the array: no
    // promotion.
    ProgramBuilder b("alias");
    Var n = b.param("N", 8);
    Arr a = b.array("A", {n, n});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(j, 1, n,
                 b.loop(i, 2, n,
                        b.assign(a(i, j), a(i, j) + a(1, j)))));
    Program p = b.finish();
    ScalarReplaceStats stats = scalarReplace(p);
    EXPECT_EQ(stats.replacedReads + stats.replacedReductions, 0);
}

// ------------------------------------------------------- unroll-and-jam

TEST(UnrollJam, MatmulByTwo)
{
    Program p = makeMatmul("JKI", 16);
    uint64_t before = runChecksum(p);
    DependenceGraph g(p, collectStmts(p));
    Node *outer = p.body[0].get();
    ASSERT_TRUE(unrollAndJam(p, outer, 2, g.edges()));
    EXPECT_EQ(outer->step, 2);
    auto chain = perfectChain(outer);
    EXPECT_EQ(chain.back()->body.size(), 2u);
    EXPECT_EQ(runChecksum(p), before);
}

TEST(UnrollJam, RefusesNonDividingFactor)
{
    Program p = makeMatmul("JKI", 15);
    DependenceGraph g(p, collectStmts(p));
    EXPECT_FALSE(unrollAndJam(p, p.body[0].get(), 2, g.edges()));
}

TEST(UnrollJam, RefusesNonPermutableBand)
{
    // The wavefront pair cannot be jammed.
    ProgramBuilder b("wave");
    Var n = b.param("N", 8);
    Arr a = b.array("A", {Ix(n) + 2, Ix(n) + 2});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(i, 2, Ix(n) + 1,
                 b.loop(j, 2, n,
                        b.assign(a(i, j),
                                 a(Ix(i) - 1, Ix(j) + 1) +
                                     a(Ix(i) - 1, Ix(j) - 1)))));
    Program p = b.finish();
    DependenceGraph g(p, collectStmts(p));
    EXPECT_FALSE(unrollAndJam(p, p.body[0].get(), 2, g.edges()));
}

TEST(UnrollJam, ComposesWithScalarReplacement)
{
    // The Section 1.1 step-3 pipeline: unroll-and-jam then scalar
    // replacement; traffic per original iteration drops.
    Program base = makeMatmul("JKI", 32);
    RunResult r0 = runWithCache(base, CacheConfig::i860());

    Program opt = base.clone();
    DependenceGraph g(opt, collectStmts(opt));
    ASSERT_TRUE(unrollAndJam(opt, opt.body[0].get(), 2, g.edges()));
    scalarReplace(opt);
    RunResult r1 = runWithCache(opt, CacheConfig::i860());

    EXPECT_EQ(r0.checksum,
              [&] {
                  Interpreter it(opt);
                  it.run();
                  return it.checksumFirstArrays(base.arrays.size());
              }());
    EXPECT_LT(r1.exec.memRefs, r0.exec.memRefs);
}

// ----------------------------------------------------------- tiling

TEST(Tile, MatmulSemanticsAndShape)
{
    Program p = makeMatmul("JKI", 32);
    uint64_t before = runChecksum(p);
    DependenceGraph g(p, collectStmts(p));
    ASSERT_TRUE(tilePerfectNest(p, p.body[0].get(), 3, 8, g.edges()));
    EXPECT_EQ(runChecksum(p), before);
    // Six loops now: three controllers striding 8, three element loops.
    auto chain = perfectChain(p.body[0].get());
    ASSERT_EQ(chain.size(), 6u);
    EXPECT_EQ(chain[0]->step, 8);
    EXPECT_EQ(chain[3]->step, 1);
}

TEST(Tile, RefusesNonDividingTile)
{
    Program p = makeMatmul("JKI", 30);
    DependenceGraph g(p, collectStmts(p));
    EXPECT_FALSE(tilePerfectNest(p, p.body[0].get(), 3, 8, g.edges()));
}

TEST(Tile, ReducesMissesWhenTileFits)
{
    Program base = makeMatmul("JKI", 64);
    RunResult r0 = runWithCache(base, CacheConfig::i860());
    Program tiled = base.clone();
    DependenceGraph g(tiled, collectStmts(tiled));
    ASSERT_TRUE(
        tilePerfectNest(tiled, tiled.body[0].get(), 3, 16, g.edges()));
    RunResult r1 = runWithCache(tiled, CacheConfig::i860());
    EXPECT_EQ(r0.checksum, r1.checksum);
    EXPECT_LT(r1.cache.misses, r0.cache.misses);
}

// ----------------------------------------------------------- reversal

TEST(Reverse, RoundTripIsIdentity)
{
    Program p = makeMatmul("JKI", 10);
    uint64_t before = runChecksum(p);
    Node *k = p.body[0]->body[0].get();
    reverseLoop(*k);
    EXPECT_EQ(k->step, -1);
    // Reversing the K loop of matmul changes the accumulation order of
    // a sum of integer-valued products: still exact.
    EXPECT_EQ(runChecksum(p), before);
    reverseLoop(*k);
    EXPECT_EQ(k->step, 1);
    EXPECT_EQ(runChecksum(p), before);
}

// ----------------------------------------------------- reuse distance

TEST(ReuseDistance, StreamingHasNoReuse)
{
    ReuseDistanceAnalyzer rd(32);
    for (uint64_t a = 0; a < 32 * 64; a += 32)
        rd.access(a, 8, false);
    EXPECT_EQ(rd.coldAccesses(), 64u);
    EXPECT_EQ(rd.warmAccesses(), 0u);
}

TEST(ReuseDistance, KnownDistances)
{
    ReuseDistanceAnalyzer rd(32);
    // Lines 0,1,2,0: the second access to 0 has distance 2.
    rd.access(0, 8, false);
    rd.access(32, 8, false);
    rd.access(64, 8, false);
    rd.access(0, 8, false);
    EXPECT_EQ(rd.warmAccesses(), 1u);
    EXPECT_DOUBLE_EQ(rd.meanDistance(), 2.0);
    // Fully associative capacity 2 misses; capacity 3+ hits.
    EXPECT_DOUBLE_EQ(rd.missRatio(2), 1.0);
    EXPECT_DOUBLE_EQ(rd.missRatio(3), 0.0);
}

TEST(ReuseDistance, ImmediateReuseIsDistanceZero)
{
    ReuseDistanceAnalyzer rd(32);
    rd.access(0, 8, false);
    rd.access(8, 8, false);  // same line
    EXPECT_EQ(rd.warmAccesses(), 1u);
    EXPECT_DOUBLE_EQ(rd.meanDistance(), 0.0);
    EXPECT_DOUBLE_EQ(rd.missRatio(1), 0.0);
}

TEST(ReuseDistance, AgreesWithFullyAssociativeCache)
{
    // Run matmul through both the analyzer and a fully associative
    // LRU cache; miss counts must agree (cold misses excluded).
    Program p = makeMatmul("IKJ", 12);
    Interpreter i1(p);
    ReuseDistanceAnalyzer rd(32);
    i1.run(&rd);

    CacheConfig full;
    full.sizeBytes = 64 * 32;  // 64 lines
    full.associativity = 64;   // fully associative, one set
    full.lineBytes = 32;
    Program q = makeMatmul("IKJ", 12);
    Interpreter i2(q);
    Cache cache(full);
    i2.run(&cache);

    uint64_t warmMisses = cache.stats().misses -
                          cache.stats().coldMisses;
    double predicted = rd.missRatio(64) *
                       static_cast<double>(rd.warmAccesses());
    EXPECT_DOUBLE_EQ(predicted, static_cast<double>(warmMisses));
}

TEST(ReuseDistance, OptimizationShortensDistances)
{
    Program bad = makeMatmul("IKJ", 24);
    Program good = makeMatmul("JKI", 24);
    ReuseDistanceAnalyzer rb(32), rg(32);
    Interpreter ib(bad), ig(good);
    ib.run(&rb);
    ig.run(&rg);
    EXPECT_LT(rg.meanDistance(), rb.meanDistance());
}

// ------------------------------------------------------- hierarchy

TEST(Hierarchy, L2SeesOnlyL1Misses)
{
    CacheConfig l1;
    l1.sizeBytes = 256;
    l1.associativity = 2;
    l1.lineBytes = 32;
    CacheConfig l2;
    l2.sizeBytes = 4096;
    l2.associativity = 4;
    l2.lineBytes = 32;
    CacheHierarchy h(l1, l2);
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t a = 0; a < 2048; a += 8)
            h.access(a, 8, false);
    EXPECT_EQ(h.l2().stats().accesses, h.l1().stats().misses);
    // 2KB of lines fit L2 but not L1: second pass hits in L2.
    EXPECT_GT(h.l2().stats().hits, 0u);
    double lat = h.averageLatency();
    EXPECT_GT(lat, 1.0);
    EXPECT_LT(lat, 100.0);
}

} // namespace
} // namespace memoria
