/**
 * Tests for the single-sweep multi-configuration cache simulation
 * (cachesim/sweep.hh): the sweep must be bitwise-identical to
 * independent per-config simulations, the reuse-distance analyzer must
 * agree with a direct fully-associative cache, and a sweep must cost
 * exactly one interpreter pass no matter how many configs it feeds.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "cachesim/cache.hh"
#include "cachesim/sweep.hh"
#include "interp/interp.hh"
#include "suite/kernels.hh"
#include "support/stats.hh"

namespace memoria {
namespace {

CacheConfig
makeConfig(int64_t size, int assoc, int line)
{
    CacheConfig c;
    c.name = "t" + std::to_string(size) + "x" + std::to_string(assoc) +
             "x" + std::to_string(line);
    c.sizeBytes = size;
    c.associativity = assoc;
    c.lineBytes = line;
    return c;
}

/** A deterministic pseudo-random access trace with plenty of reuse. */
std::vector<AccessRecord>
syntheticTrace(size_t n)
{
    std::vector<AccessRecord> trace;
    trace.reserve(n);
    uint64_t state = 0x9e3779b97f4a7c15ull;
    for (size_t i = 0; i < n; ++i) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // Mix streaming (i * 8) with reuse of a small working set.
        uint64_t addr = (i % 3 == 0) ? (state % 4096) * 8
                                     : (i * 8) % 65536;
        trace.push_back({addr, 8, i % 5 == 0});
    }
    return trace;
}

void
expectSameStats(const CacheStats &a, const CacheStats &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.coldMisses, b.coldMisses);
    EXPECT_EQ(a.evictions, b.evictions);
}

TEST(Sweep, IdenticalToPerConfigAcrossGeometries)
{
    const std::vector<AccessRecord> trace = syntheticTrace(20000);

    // assoc "full" means fully associative: one set.
    std::vector<CacheConfig> configs;
    for (int line : {32, 128}) {
        const int64_t size = 4096;
        for (int assoc : {1, 2, 4})
            configs.push_back(makeConfig(size, assoc, line));
        configs.push_back(
            makeConfig(size, static_cast<int>(size / line), line));
    }

    MultiCacheSim sweep(configs);
    sweep.consumeBatch(trace.data(), trace.size());

    for (size_t i = 0; i < configs.size(); ++i) {
        Cache direct(configs[i]);
        for (const AccessRecord &r : trace)
            direct.probe(r.addr);
        expectSameStats(sweep.stats(i), direct.stats());
        sweep.stats(i).checkConsistent();
        EXPECT_EQ(sweep.stats(i).hits + sweep.stats(i).misses,
                  sweep.stats(i).accesses);
    }
}

TEST(Sweep, BatchBoundariesDoNotChangeCounters)
{
    const std::vector<AccessRecord> trace = syntheticTrace(10007);
    std::vector<CacheConfig> configs = {CacheConfig::i860(),
                                        CacheConfig::rs6000()};

    MultiCacheSim whole(configs);
    whole.consumeBatch(trace.data(), trace.size());

    MultiCacheSim chunked(configs);
    const size_t kChunk = 977;  // deliberately not a divisor
    for (size_t off = 0; off < trace.size(); off += kChunk) {
        size_t n = std::min(kChunk, trace.size() - off);
        chunked.consumeBatch(trace.data() + off, n);
    }

    for (size_t i = 0; i < configs.size(); ++i)
        expectSameStats(whole.stats(i), chunked.stats(i));
}

TEST(Sweep, ResetClearsEverything)
{
    const std::vector<AccessRecord> trace = syntheticTrace(5000);
    SweepReuseOptions reuse;
    reuse.enabled = true;
    MultiCacheSim sim({CacheConfig::i860()}, reuse);
    sim.consumeBatch(trace.data(), trace.size());
    ASSERT_GT(sim.stats(0).accesses, 0u);
    ASSERT_NE(sim.reuse(), nullptr);

    sim.reset();
    EXPECT_EQ(sim.stats(0).accesses, 0u);
    EXPECT_EQ(sim.reuse()->warmAccesses(), 0u);
    EXPECT_EQ(sim.reuse()->coldAccesses(), 0u);

    // After a reset the counters match a fresh simulation.
    sim.consumeBatch(trace.data(), trace.size());
    MultiCacheSim fresh({CacheConfig::i860()});
    fresh.consumeBatch(trace.data(), trace.size());
    expectSameStats(sim.stats(0), fresh.stats(0));
}

TEST(Sweep, ReuseDistanceMatchesFullyAssociativeCache)
{
    const std::vector<AccessRecord> trace = syntheticTrace(20000);
    const int lineBytes = 32;

    SweepReuseOptions reuse;
    reuse.enabled = true;
    reuse.lineBytes = lineBytes;
    MultiCacheSim sim(std::vector<CacheConfig>{}, reuse);
    sim.consumeBatch(trace.data(), trace.size());
    ASSERT_NE(sim.reuse(), nullptr);

    // A fully associative LRU cache of capacity C lines misses exactly
    // the cold accesses plus the warm accesses with reuse distance
    // >= C — the analyzer's missRatio must reproduce the direct
    // simulation for several capacities.
    for (int64_t capacityLines : {16, 64, 256}) {
        Cache direct(
            makeConfig(capacityLines * lineBytes,
                       static_cast<int>(capacityLines), lineBytes));
        for (const AccessRecord &r : trace)
            direct.probe(r.addr);

        uint64_t warm = sim.reuse()->warmAccesses();
        uint64_t cold = sim.reuse()->coldAccesses();
        EXPECT_EQ(cold, direct.stats().coldMisses);
        uint64_t predictedWarmMisses = static_cast<uint64_t>(
            sim.reuse()->missRatio(
                static_cast<uint64_t>(capacityLines)) *
                static_cast<double>(warm) +
            0.5);
        uint64_t directWarmMisses =
            direct.stats().misses - direct.stats().coldMisses;
        EXPECT_EQ(predictedWarmMisses, directWarmMisses)
            << "capacity " << capacityLines << " lines";
    }
}

TEST(Sweep, RunWithCachesMatchesRunWithCache)
{
    Program p = makeMatmul("IJK", 24);
    std::vector<CacheConfig> configs = {CacheConfig::rs6000(),
                                        CacheConfig::i860()};
    SweepResult sweep = runWithCaches(p, configs);
    ASSERT_EQ(sweep.cache.size(), configs.size());
    ASSERT_EQ(sweep.cycles.size(), configs.size());

    for (size_t i = 0; i < configs.size(); ++i) {
        // tryRunWithCache keeps the original one-listener path, so the
        // two implementations are independent.
        Result<RunResult> direct = tryRunWithCache(p, configs[i]);
        ASSERT_TRUE(direct.ok());
        expectSameStats(sweep.cache[i], direct.value().cache);
        EXPECT_DOUBLE_EQ(sweep.cycles[i], direct.value().cycles);
        EXPECT_EQ(sweep.checksum, direct.value().checksum);
        EXPECT_EQ(sweep.exec.memRefs, direct.value().exec.memRefs);
        EXPECT_EQ(sweep.exec.loopIterations,
                  direct.value().exec.loopIterations);
    }
}

TEST(Sweep, OneInterpreterPassPerSweep)
{
    Program p = makeAdiScalarized(16);
    std::vector<CacheConfig> configs = {CacheConfig::rs6000(),
                                        CacheConfig::i860()};

    obs::Counter &runs = obs::counter("interp.runs");
    uint64_t before = runs.value();
    SweepResult sweep = runWithCaches(p, configs);
    EXPECT_EQ(runs.value() - before, 1u)
        << "a 2-config sweep must execute the interpreter exactly once";
    ASSERT_EQ(sweep.cache.size(), 2u);
    EXPECT_EQ(sweep.cache[0].accesses, sweep.cache[1].accesses);

    before = runs.value();
    Result<RunResult> direct = tryRunWithCache(p, configs[0]);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(runs.value() - before, 1u);
}

TEST(Sweep, FaultingProgramReportsDiag)
{
    // MOD-by-zero style faults must come back as a Diag from the
    // checked sweep entry point, not abort the process.
    Program p = makeMatmul("IJK", 8);
    Result<SweepResult> ok =
        tryRunWithCaches(p, {CacheConfig::i860()});
    ASSERT_TRUE(ok.ok());

    // An empty config list still runs (exec stats only).
    SweepResult none = runWithCaches(p, {});
    EXPECT_EQ(none.cache.size(), 0u);
    EXPECT_GT(none.exec.memRefs, 0u);
    EXPECT_EQ(none.checksum, ok.value().checksum);
}

} // namespace
} // namespace memoria
