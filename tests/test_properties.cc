/** Property sweeps: randomized programs driven through the analyses
 *  and transformations, with execution as the ground truth. */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "cachesim/reuse.hh"
#include "check/fuzz.hh"
#include "dependence/graph.hh"
#include "dependence/legality.hh"
#include "frontend/parser.hh"
#include "interp/interp.hh"
#include "ir/builder.hh"
#include "ir/printer.hh"
#include "support/poly.hh"
#include "support/rng.hh"
#include "transform/compound.hh"
#include "transform/permute.hh"
#include "transform/reverse.hh"

namespace memoria {
namespace {

ModelParams
cls4()
{
    ModelParams p;
    p.lineBytes = 32;
    return p;
}

/** A random depth-3 single-statement rectangular nest: the statement
 *  writes and reads a 3-D array through shifted/permuted subscripts,
 *  generating a rich variety of dependence patterns. */
Program
randomNest3(uint64_t seed)
{
    Rng rng(seed);
    ProgramBuilder b("rand3");
    Var n = b.param("N", 6);
    Arr a = b.array("A", {Ix(n) + 4, Ix(n) + 4, Ix(n) + 4});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    Var k = b.loopVar("K");
    Var vars[3] = {i, j, k};

    auto sub = [&](int slot) {
        Var v = vars[rng.below(3)];
        (void)slot;
        return Ix(v) + static_cast<int64_t>(rng.range(0, 4));
    };
    Ref w = a(Ix(vars[0]) + static_cast<int64_t>(rng.range(0, 4)),
              Ix(vars[1]) + static_cast<int64_t>(rng.range(0, 4)),
              Ix(vars[2]) + static_cast<int64_t>(rng.range(0, 4)));
    Val r1 = a(sub(0), sub(1), sub(2));
    Val r2 = a(sub(0), sub(1), sub(2));
    b.add(b.loop(i, 1, n,
                 b.loop(j, 1, n,
                        b.loop(k, 1, n,
                               b.assign(w, r1 + r2 * 2.0)))));
    return b.finish();
}

/** Property: any permutation the legality test admits (and the bound
 *  exchange can realize) preserves execution results exactly. */
class LegalPermutationSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(LegalPermutationSweep, LegalPermutationsPreserveSemantics)
{
    Program base = randomNest3(7700 + GetParam());
    uint64_t expect = runChecksum(base);

    std::vector<int> perm{0, 1, 2};
    int legalCount = 0;
    do {
        Program p = base.clone();
        DependenceGraph g(p, collectStmts(p));
        if (!permutationLegal(g.edges(), perm))
            continue;
        if (!applyPermutation(p.body[0].get(), perm))
            continue;
        ++legalCount;
        EXPECT_EQ(runChecksum(p), expect)
            << "perm " << perm[0] << perm[1] << perm[2];
    } while (std::next_permutation(perm.begin(), perm.end()));
    // The identity is always legal.
    EXPECT_GE(legalCount, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LegalPermutationSweep,
                         ::testing::Range(0, 60));

/** Property: Compound preserves semantics and never worsens the
 *  model's cost on multi-nest random programs. */
class CompoundSweep : public ::testing::TestWithParam<int>
{
};

Program
randomProgram(uint64_t seed)
{
    Rng rng(seed);
    ProgramBuilder b("randprog");
    Var n = b.param("N", 7);
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    int nests = static_cast<int>(rng.range(2, 4));
    Arr shared = b.array("S", {Ix(n) + 4, Ix(n) + 4});
    for (int t = 0; t < nests; ++t) {
        Arr a = b.array("A" + std::to_string(t),
                        {Ix(n) + 4, Ix(n) + 4});
        bool transposed = rng.chance(1, 2);
        int64_t di = rng.range(0, 2);
        int64_t dj = rng.range(0, 2);
        Ref w = transposed ? a(j, i) : a(i, j);
        Val r = rng.chance(1, 2)
                    ? Val(shared(Ix(i) + di, Ix(j) + dj))
                    : Val(a(Ix(i) + di, Ix(j) + dj));
        NodePtr stmt = b.assign(w, r + 1.0);
        if (rng.chance(1, 2))
            b.add(b.loop(i, 1, n, b.loop(j, 1, n, std::move(stmt))));
        else
            b.add(b.loop(j, 1, n, b.loop(i, 1, n, std::move(stmt))));
    }
    return b.finish();
}

TEST_P(CompoundSweep, SemanticsAndCost)
{
    Program p = randomProgram(4400 + GetParam());
    uint64_t before = runChecksum(p);
    CompoundResult r = compoundTransform(p, cls4());
    EXPECT_EQ(runChecksum(p), before);
    for (const auto &rep : r.nests)
        EXPECT_TRUE(rep.finalCost <= rep.origCost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompoundSweep, ::testing::Range(0, 60));

/** Property: fully associative LRU miss ratios are monotonically
 *  non-increasing in capacity (stack inclusion). */
class ReuseMonotoneSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ReuseMonotoneSweep, MissRatioMonotone)
{
    Rng rng(900 + GetParam());
    ReuseDistanceAnalyzer rd(32);
    for (int t = 0; t < 4000; ++t)
        rd.access(rng.below(256) * 32, 8, false);
    double prev = 1.0;
    for (uint64_t cap = 1; cap <= 512; cap *= 2) {
        double mr = rd.missRatio(cap);
        EXPECT_LE(mr, prev + 1e-12);
        prev = mr;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReuseMonotoneSweep,
                         ::testing::Range(0, 10));

/** Property: the reuse analyzer's predicted misses equal a fully
 *  associative LRU cache simulation on random traces. */
class ReuseVsCacheSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ReuseVsCacheSweep, ExactAgreement)
{
    Rng rng(31 + GetParam());
    ReuseDistanceAnalyzer rd(32);
    CacheConfig cfg;
    cfg.lineBytes = 32;
    cfg.associativity = 32;
    cfg.sizeBytes = 32 * 32;  // 32 lines, fully associative
    Cache cache(cfg);
    for (int t = 0; t < 3000; ++t) {
        uint64_t addr = rng.below(128) * 32;
        rd.access(addr, 8, false);
        cache.access(addr, 8, false);
    }
    uint64_t warmMisses =
        cache.stats().misses - cache.stats().coldMisses;
    double predicted =
        rd.missRatio(32) * static_cast<double>(rd.warmAccesses());
    EXPECT_DOUBLE_EQ(predicted, static_cast<double>(warmMisses));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReuseVsCacheSweep,
                         ::testing::Range(0, 10));

/** Property: Poly arithmetic is a commutative ring consistent with
 *  pointwise evaluation. */
class PolyRingSweep : public ::testing::TestWithParam<int>
{
};

Poly
randomPoly(Rng &rng)
{
    Poly p;
    int deg = static_cast<int>(rng.range(0, 4));
    for (int k = 0; k <= deg; ++k)
        p += Poly::term(static_cast<double>(rng.range(-4, 4)), k);
    return p;
}

TEST_P(PolyRingSweep, RingLawsAndEval)
{
    Rng rng(555 + GetParam());
    Poly a = randomPoly(rng);
    Poly b = randomPoly(rng);
    Poly c = randomPoly(rng);

    EXPECT_TRUE(a + b == b + a);
    EXPECT_TRUE(a * b == b * a);
    EXPECT_TRUE((a + b) * c == a * c + b * c);
    EXPECT_TRUE(a - a == Poly());

    for (double n : {1.0, 3.0, 17.0}) {
        EXPECT_NEAR((a * b).eval(n), a.eval(n) * b.eval(n), 1e-6);
        EXPECT_NEAR((a + b).eval(n), a.eval(n) + b.eval(n), 1e-9);
    }
    // Dominating-term comparison agrees with evaluation at large n
    // when the polynomials differ.
    if (!(a == b)) {
        double big = 1e6;
        EXPECT_EQ(a < b, a.eval(big) < b.eval(big));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolyRingSweep, ::testing::Range(0, 40));

/** Property: reversal of any loop of a reduction-free random nest is
 *  an exact transformation (it revisits the same index set). */
class ReversalSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ReversalSweep, ReversedLoopSameResults)
{
    Rng rng(1200 + GetParam());
    ProgramBuilder b("rev");
    Var n = b.param("N", 8);
    Arr a = b.array("A", {Ix(n) + 2, Ix(n) + 2});
    Arr c = b.array("C", {Ix(n) + 2, Ix(n) + 2});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    int64_t di = rng.range(0, 2), dj = rng.range(0, 2);
    b.add(b.loop(i, 1, n,
                 b.loop(j, 1, n,
                        b.assign(a(i, j),
                                 c(Ix(i) + di, Ix(j) + dj) * 2.0))));
    Program p = b.finish();
    uint64_t before = runChecksum(p);

    // Reverse either loop (or both): A and C are disjoint arrays, so
    // every visit order computes the same values.
    Node *outer = p.body[0].get();
    Node *inner = outer->body[0].get();
    if (rng.chance(1, 2))
        reverseLoop(*outer);
    reverseLoop(*inner);
    EXPECT_EQ(runChecksum(p), before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReversalSweep, ::testing::Range(0, 20));

// ---------------------------------------------------------------------

/** Property: printing a fuzzed program and parsing it back reaches a
 *  textual fixpoint and preserves execution results exactly. */
class RoundTripSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RoundTripSweep, PrintParsePrintIsFixpoint)
{
    uint64_t seed = 9000 + static_cast<uint64_t>(GetParam());
    Program p = fuzzProgram(seed);
    std::string text = printProgram(p);

    ParseError err;
    auto back = parseProgram(text, &err);
    ASSERT_TRUE(back) << err.str() << "\n" << text;
    EXPECT_EQ(printProgram(*back), text);
    EXPECT_EQ(runChecksum(*back), runChecksum(p));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripSweep, ::testing::Range(0, 40));

} // namespace
} // namespace memoria
