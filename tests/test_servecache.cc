/** Tests for the durable content-addressed result cache (src/serve/
 *  cache.*, snapshot.*): LRU bounds, key canonicalization, single-
 *  flight dedup with leader hand-off, snapshot roundtrip and
 *  corruption rejection, warm restart, supervisor journal-replay
 *  recovery, the `memoria top` restart marker, and incident-bundle
 *  retention. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/fault.hh"
#include "harness/incident.hh"
#include "serve/cache.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/snapshot.hh"
#include "serve/supervisor.hh"
#include "serve/top.hh"
#include "support/json.hh"
#include "support/stats.hh"

namespace memoria {
namespace serve {
namespace {

namespace fs = std::filesystem;

const char *kProgram = "PROGRAM t\n"
                       "  PARAMETER N = 8\n"
                       "  REAL*8 A(N,N)\n"
                       "  DO I = 1, N\n"
                       "    DO J = 1, N\n"
                       "      A(I,J) = A(I,J) + 1.0\n"
                       "    ENDDO\n"
                       "  ENDDO\n"
                       "END\n";

/** Same program, formatting-only differences. */
const char *kProgramReformatted = "PROGRAM t\n"
                                  "  PARAMETER N = 8\n"
                                  "  REAL*8 A(N,N)\n"
                                  "  DO I = 1, N\n"
                                  "      DO J = 1, N\n"
                                  "    A(I,J)   =   A(I,J) + 1.0\n"
                                  "      ENDDO\n"
                                  "  ENDDO\n"
                                  "END\n";

std::string
requestLine(const std::string &id, const std::string &kind,
            const std::string &program)
{
    return "{\"id\":" + json::quote(id) +
           ",\"kind\":" + json::quote(kind) +
           ",\"program\":" + json::quote(program) + "}";
}

struct Collector
{
    std::mutex mutex;
    std::vector<std::string> lines;

    Server::Respond
    fn()
    {
        return [this](const std::string &line) {
            std::lock_guard<std::mutex> lock(mutex);
            lines.push_back(line);
        };
    }

    json::Value
    parsed(size_t i)
    {
        Result<json::Value> v = json::parse(lines.at(i));
        EXPECT_TRUE(v.ok()) << lines.at(i);
        return v.ok() ? v.value() : json::Value();
    }
};

ServeOptions
quietOptions()
{
    ServeOptions opts;
    opts.jobs = 2;
    opts.writeIncidents = false;
    return opts;
}

/** A scratch directory fresh per test, removed on destruction. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &stem)
    {
        path = fs::temp_directory_path() /
               (stem + "-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter()++));
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }

    static std::atomic<int> &
    counter()
    {
        static std::atomic<int> c{0};
        return c;
    }
};

uint64_t
counterValue(const std::string &name)
{
    return obs::counter(name).value();
}

// ---------------------------------------------------------------------
// LRU + bounds

TEST(ResultCache, HitMissAndEntryEviction)
{
    CacheOptions opts;
    opts.maxEntries = 2;
    ResultCache cache(opts);

    auto t1 = cache.begin("k1");
    ASSERT_EQ(t1.role, ResultCache::Role::Leader);
    cache.publish(t1, "v1");
    auto t2 = cache.begin("k2");
    cache.publish(t2, "v2");

    auto hit = cache.begin("k1");
    EXPECT_EQ(hit.role, ResultCache::Role::Hit);
    EXPECT_EQ(hit.body, "v1");

    // k2 is now LRU tail; a third insert evicts it, not k1.
    auto t3 = cache.begin("k3");
    cache.publish(t3, "v3");
    EXPECT_EQ(cache.begin("k2").role, ResultCache::Role::Leader)
        << "k2 was the LRU victim";
    EXPECT_EQ(cache.begin("k1").role, ResultCache::Role::Hit);

    ResultCacheStats s = cache.stats();
    EXPECT_EQ(s.entries, 2u);
    EXPECT_GE(s.evictions, 1u);
    EXPECT_GE(s.hits, 2u);
}

TEST(ResultCache, ByteBoundEvictsAndOversizeEntryIsSkipped)
{
    CacheOptions opts;
    opts.maxEntries = 100;
    opts.maxBytes = 64;
    ResultCache cache(opts);

    auto a = cache.begin("a");
    cache.publish(a, std::string(40, 'x'));
    auto b = cache.begin("b");
    cache.publish(b, std::string(40, 'y'));  // over 64 bytes: evicts a
    EXPECT_EQ(cache.begin("a").role, ResultCache::Role::Leader);
    EXPECT_EQ(cache.begin("b").role, ResultCache::Role::Hit);

    // A single entry larger than the whole budget is not inserted.
    auto c = cache.begin("c");
    cache.publish(c, std::string(200, 'z'));
    EXPECT_EQ(cache.begin("c").role, ResultCache::Role::Leader);
    EXPECT_LE(cache.stats().bytes, 64u);
}

// ---------------------------------------------------------------------
// Key canonicalization

TEST(ResultCache, KeyCanonicalizesFormattingVariants)
{
    std::string cfg = serveConfigDigest(ModelParams{},
                                        {CacheConfig::i860()});
    std::string k1 = resultCacheKey(kProgram, "compound", true, 0, cfg);
    std::string k2 =
        resultCacheKey(kProgramReformatted, "compound", true, 0, cfg);
    EXPECT_EQ(k1, k2) << "formatting-only variants share an entry";
    EXPECT_EQ(k1.size(), 32u);

    EXPECT_NE(k1, resultCacheKey(kProgram, "analyze", true, 0, cfg));
    EXPECT_NE(k1, resultCacheKey(kProgram, "compound", false, 0, cfg));
    EXPECT_NE(k1, resultCacheKey(kProgram, "compound", true, 2, cfg));
    EXPECT_NE(k1, resultCacheKey(kProgram, "compound", true, 0,
                                 "deadbeef00000000"));
}

TEST(ResultCache, ConfigDigestReflectsCacheGeometry)
{
    ModelParams params;
    std::string d1 = serveConfigDigest(params, {CacheConfig::i860()});
    std::string d2 = serveConfigDigest(params, {CacheConfig::rs6000()});
    EXPECT_NE(d1, d2);

    params.lineBytes *= 2;
    EXPECT_NE(d1, serveConfigDigest(params, {CacheConfig::i860()}));
}

// ---------------------------------------------------------------------
// Single-flight

TEST(ResultCache, FollowersReceiveTheLeadersResult)
{
    ResultCache cache({});
    auto leader = cache.begin("k");
    ASSERT_EQ(leader.role, ResultCache::Role::Leader);

    const int kFollowers = 4;
    std::atomic<int> got{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kFollowers; ++i) {
        threads.emplace_back([&cache, &got] {
            auto t = cache.begin("k");
            ASSERT_EQ(t.role, ResultCache::Role::Follower);
            auto w = cache.wait(t, 5000);
            EXPECT_EQ(w, ResultCache::WaitOutcome::Value);
            EXPECT_EQ(t.body, "answer");
            ++got;
        });
    }
    // Give the followers a moment to join the flight, then publish.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    cache.publish(leader, "answer");
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(got.load(), kFollowers);
    EXPECT_EQ(cache.stats().inflightJoins, 4u);
}

TEST(ResultCache, AbandonedFlightElectsAFollower)
{
    ResultCache cache({});
    auto leader = cache.begin("k");
    ASSERT_EQ(leader.role, ResultCache::Role::Leader);

    std::atomic<int> elected{0}, valued{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < 3; ++i) {
        threads.emplace_back([&] {
            auto t = cache.begin("k");
            ASSERT_EQ(t.role, ResultCache::Role::Follower);
            auto w = cache.wait(t, 5000);
            if (w == ResultCache::WaitOutcome::Elected) {
                // Exactly one follower takes over and finishes the
                // computation for the rest.
                EXPECT_EQ(t.role, ResultCache::Role::Leader);
                ++elected;
                cache.publish(t, "recovered");
            } else {
                EXPECT_EQ(w, ResultCache::WaitOutcome::Value);
                EXPECT_EQ(t.body, "recovered");
                ++valued;
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    cache.abandon(leader);  // the "crash"
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(elected.load(), 1);
    EXPECT_EQ(valued.load(), 2);
    EXPECT_EQ(cache.begin("k").role, ResultCache::Role::Hit);
}

TEST(ResultCache, FollowerTimesOutWhenLeaderNeverPublishes)
{
    ResultCache cache({});
    auto leader = cache.begin("k");
    ASSERT_EQ(leader.role, ResultCache::Role::Leader);
    auto follower = cache.begin("k");
    ASSERT_EQ(follower.role, ResultCache::Role::Follower);
    EXPECT_EQ(cache.wait(follower, 30),
              ResultCache::WaitOutcome::TimedOut);
    cache.abandon(leader);
}

TEST(ResultCache, AbandonWithNoWaitersDissolvesTheFlight)
{
    ResultCache cache({});
    auto leader = cache.begin("k");
    cache.abandon(leader);
    // The next arrival starts a fresh flight, not a follower of a
    // dead one.
    EXPECT_EQ(cache.begin("k").role, ResultCache::Role::Leader);
}

// ---------------------------------------------------------------------
// Snapshot roundtrip + corruption

using Entries = std::vector<std::pair<std::string, std::string>>;

TEST(Snapshot, RoundtripPreservesEntries)
{
    TempDir dir("memoria-snap");
    std::string path = (dir.path / "cache-shard0.snap").string();
    Entries in = {{"k1", "body one"}, {"k2", "{\"json\":true}"}};

    Status w = writeCacheSnapshot(path, in, 0, "cfg123");
    ASSERT_TRUE(w.ok()) << w.diag().str();

    Result<Entries> r = readCacheSnapshot(path, "cfg123");
    ASSERT_TRUE(r.ok()) << r.diag().str();
    EXPECT_EQ(r.value(), in);
}

TEST(Snapshot, RejectsTruncatedTail)
{
    TempDir dir("memoria-snap");
    std::string path = (dir.path / "s.snap").string();
    ASSERT_TRUE(
        writeCacheSnapshot(path, {{"k", std::string(256, 'a')}}, 0,
                           "cfg")
            .ok());
    // Chop the file mid-entry: a crash mid-write-without-rename shape.
    fs::resize_file(path, fs::file_size(path) - 100);

    uint64_t before = counterValue("serve.cache.snapshot_rejected");
    Result<Entries> r = readCacheSnapshot(path, "cfg");
    EXPECT_FALSE(r.ok());
    EXPECT_GT(counterValue("serve.cache.snapshot_rejected"), before);
}

TEST(Snapshot, RejectsFlippedChecksumByte)
{
    TempDir dir("memoria-snap");
    std::string path = (dir.path / "s.snap").string();
    ASSERT_TRUE(
        writeCacheSnapshot(path, {{"key", "the body"}}, 0, "cfg").ok());

    std::ifstream in(path);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    size_t at = data.find("the body");
    ASSERT_NE(at, std::string::npos);
    data[at] = data[at] == 't' ? 'T' : 't';
    std::ofstream(path) << data;

    uint64_t before = counterValue("serve.cache.snapshot_rejected");
    EXPECT_FALSE(readCacheSnapshot(path, "cfg").ok())
        << "flipped body byte must fail the entry checksum";
    EXPECT_GT(counterValue("serve.cache.snapshot_rejected"), before);
}

TEST(Snapshot, RejectsVersionAndConfigMismatch)
{
    TempDir dir("memoria-snap");
    std::string path = (dir.path / "s.snap").string();
    ASSERT_TRUE(writeCacheSnapshot(path, {{"k", "v"}}, 0, "cfg").ok());

    // Same file, different config digest: stale geometry.
    EXPECT_FALSE(readCacheSnapshot(path, "other-cfg").ok());

    // A future format version must cold-start, not crash.
    std::ifstream in(path);
    std::string header, rest, line;
    std::getline(in, header);
    while (std::getline(in, line))
        rest += line + "\n";
    in.close();
    Result<json::Value> h = json::parse(header);
    ASSERT_TRUE(h.ok());
    json::Value hv = h.value();
    hv.set("version", json::Value::number(int64_t{99}));
    std::ofstream(path) << hv.dump() << "\n" << rest;

    uint64_t before = counterValue("serve.cache.snapshot_rejected");
    Result<Entries> r = readCacheSnapshot(path, "cfg");
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.diag().str().find("version"), std::string::npos)
        << r.diag().str();
    EXPECT_GT(counterValue("serve.cache.snapshot_rejected"), before);
}

TEST(Snapshot, CorruptSnapshotFaultSiteDamagesTheWrite)
{
    TempDir dir("memoria-snap");
    std::string path = (dir.path / "s.snap").string();

    harness::FaultSpec spec;
    spec.site = "serve.cache.corrupt-snapshot";
    spec.action = harness::FaultAction::Throw;
    harness::armFault(spec);
    Status w = writeCacheSnapshot(
        path, {{"k", "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}}, 0, "cfg");
    harness::clearFault();
    ASSERT_TRUE(w.ok()) << "the write itself succeeds; the bytes lie";

    EXPECT_FALSE(readCacheSnapshot(path, "cfg").ok())
        << "the injected damage must not load";
}

// ---------------------------------------------------------------------
// Server integration

TEST(ServeCache, SecondIdenticalRequestIsACacheHit)
{
    Server server(quietOptions());
    server.start();
    Collector out;
    server.handleLine(requestLine("r1", "compound", kProgram), out.fn());
    server.handleLine(requestLine("r2", "compound", kProgram), out.fn());
    // Formatting variant: canonicalization should hit too.
    server.handleLine(
        requestLine("r3", "compound", kProgramReformatted), out.fn());
    server.drain();

    ASSERT_EQ(out.lines.size(), 3u);
    json::Value fresh, hit, reformatted;
    for (size_t i = 0; i < 3; ++i) {
        json::Value v = out.parsed(i);
        ASSERT_EQ(v.getString("type"), "result") << out.lines[i];
        if (v.getString("id") == "r1")
            fresh = v;
        else if (v.getString("id") == "r2")
            hit = v;
        else
            reformatted = v;
    }
    EXPECT_FALSE(fresh.getBool("cache_hit", false));
    EXPECT_TRUE(hit.getBool("cache_hit", false) ||
                hit.getBool("dedup_follower", false))
        << "identical request must be answered from the cache";
    EXPECT_TRUE(reformatted.getBool("cache_hit", false) ||
                reformatted.getBool("dedup_follower", false));

    // Replayed responses are the leader's result modulo the volatile
    // fields: id, trace_id, queue/total timings, and the provenance
    // stamp itself.
    for (json::Value *v : {&fresh, &hit}) {
        EXPECT_EQ(v->getString("status"), fresh.getString("status"));
        EXPECT_EQ(v->getInt("rung", -1), fresh.getInt("rung", -1));
    }
    const json::Value *ft = fresh.get("timings");
    const json::Value *ht = hit.get("timings");
    ASSERT_TRUE(ft && ht);
    EXPECT_EQ(ft->getInt("optimize_us", -1), ht->getInt("optimize_us", -2))
        << "stage timings describe the computation and must replay";

    ResultCacheStats s = server.cacheStats();
    EXPECT_GE(s.hits + s.inflightJoins, 2u);
}

TEST(ServeCache, HealthCarriesTheCacheBlock)
{
    Server server(quietOptions());
    server.start();
    Collector out;
    server.handleLine(requestLine("r1", "analyze", kProgram), out.fn());
    server.handleLine(requestLine("r2", "analyze", kProgram), out.fn());
    server.drain();
    // Health answers inline; after the drain the counters are settled
    // (introspection still works on a drained server).
    server.handleLine("{\"id\":\"h\",\"kind\":\"health\"}", out.fn());

    json::Value health;
    for (size_t i = 0; i < out.lines.size(); ++i)
        if (out.parsed(i).getString("type") == "health")
            health = out.parsed(i);
    const json::Value *cache = health.get("cache");
    ASSERT_TRUE(cache && cache->isObject()) << "health lacks cache block";
    EXPECT_GE(cache->getInt("hits", -1) + cache->getInt("misses", -1),
              1);
}

TEST(ServeCache, NoCacheOptionDisablesStamps)
{
    ServeOptions opts = quietOptions();
    opts.resultCache.maxEntries = 0;  // --no-cache
    Server server(opts);
    server.start();
    Collector out;
    server.handleLine(requestLine("r1", "analyze", kProgram), out.fn());
    server.handleLine(requestLine("r2", "analyze", kProgram), out.fn());
    server.drain();
    ASSERT_EQ(out.lines.size(), 2u);
    for (size_t i = 0; i < 2; ++i) {
        EXPECT_FALSE(out.parsed(i).getBool("cache_hit", false));
        EXPECT_FALSE(out.parsed(i).getBool("dedup_follower", false));
    }
}

TEST(ServeCache, LeaderCrashFaultStillAnswersAndRecovers)
{
    // One worker, deterministically: with two, "boom" and "after" race
    // for flight leadership and the one-shot crash plan sometimes
    // fires for "after" instead (observed ~1/10 under TSan).
    ServeOptions opts = quietOptions();
    opts.jobs = 1;
    Server server(opts);
    server.start();

    // Global arm (no program filter): fires for the first led flight.
    harness::FaultSpec spec;
    spec.site = "serve.cache.leader-crash";
    spec.action = harness::FaultAction::Throw;
    harness::armFault(spec);

    Collector out;
    server.handleLine(requestLine("boom", "compound", kProgram),
                      out.fn());
    // One-shot plan: the retry below runs clean.
    server.handleLine(requestLine("after", "compound", kProgram),
                      out.fn());
    server.drain();
    harness::clearFault();

    ASSERT_EQ(out.lines.size(), 2u);
    json::Value crashed, after;
    for (size_t i = 0; i < 2; ++i) {
        json::Value v = out.parsed(i);
        (v.getString("id") == "boom" ? crashed : after) = v;
    }
    EXPECT_EQ(crashed.getString("type"), "error");
    EXPECT_EQ(crashed.getString("code"), "serve.internal")
        << "a crashed leader still answers exactly once";
    EXPECT_EQ(after.getString("type"), "result")
        << "the abandoned flight must not wedge the key";
}

TEST(ServeCache, WarmRestartServesFromTheSnapshot)
{
    TempDir dir("memoria-warm");
    std::string snap = (dir.path / "cache-shard0.snap").string();

    ServeOptions opts = quietOptions();
    opts.cacheSnapshotPath = snap;

    {
        Server first(opts);
        first.start();
        Collector out;
        first.handleLine(requestLine("r1", "compound", kProgram),
                         out.fn());
        first.drain();  // writes the snapshot on the way out
        ASSERT_EQ(out.lines.size(), 1u);
    }
    ASSERT_TRUE(fs::exists(snap)) << "drain must persist the cache";

    uint64_t loadedBefore =
        counterValue("serve.cache.snapshot_loaded_entries");
    Server second(opts);
    second.start();
    EXPECT_GT(counterValue("serve.cache.snapshot_loaded_entries"),
              loadedBefore)
        << "warm start seeds from the snapshot";

    Collector out;
    second.handleLine(requestLine("r2", "compound", kProgram), out.fn());
    second.drain();
    ASSERT_EQ(out.lines.size(), 1u);
    EXPECT_TRUE(out.parsed(0).getBool("cache_hit", false))
        << "the restarted server answers from the previous "
           "incarnation's work";
}

TEST(ServeCache, CorruptSnapshotColdStartsWithoutCrashing)
{
    TempDir dir("memoria-cold");
    std::string snap = (dir.path / "cache-shard0.snap").string();
    ServeOptions opts = quietOptions();
    opts.cacheSnapshotPath = snap;

    {
        Server first(opts);
        first.start();
        Collector out;
        first.handleLine(requestLine("r1", "compound", kProgram),
                         out.fn());
        first.drain();
    }
    // Damage the snapshot on disk, as external corruption would.
    fs::resize_file(snap, fs::file_size(snap) - 20);

    uint64_t rejectedBefore =
        counterValue("serve.cache.snapshot_rejected");
    Server second(opts);
    second.start();  // must not crash
    EXPECT_GT(counterValue("serve.cache.snapshot_rejected"),
              rejectedBefore);

    Collector out;
    second.handleLine(requestLine("r2", "compound", kProgram), out.fn());
    second.drain();
    ASSERT_EQ(out.lines.size(), 1u);
    EXPECT_EQ(out.parsed(0).getString("type"), "result");
    EXPECT_FALSE(out.parsed(0).getBool("cache_hit", false))
        << "cold start: the damaged snapshot contributed nothing";
}

// ---------------------------------------------------------------------
// Supervisor journal-replay recovery

TEST(SupervisorRecovery, HealthReportsUnansweredAdmissions)
{
    TempDir dir("memoria-journal");
    std::string path = (dir.path / "journal.jsonl").string();
    {
        // A previous incarnation: two admits, one answered.
        std::ofstream j(path);
        j << "{\"op\":\"admit\",\"seq\":1,\"id\":\"a\",\"kind\":"
             "\"analyze\",\"shard\":0,\"replay\":false,\"line\":"
             "\"{}\"}\n";
        j << "{\"op\":\"admit\",\"seq\":2,\"id\":\"b\",\"kind\":"
             "\"compound\",\"shard\":1,\"replay\":true,\"line\":"
             "\"{}\"}\n";
        j << "{\"op\":\"done\",\"seq\":1,\"outcome\":\"ok\"}\n";
    }

    SupervisorOptions opts;
    opts.workers = 2;
    opts.workerCommand = {"/bin/false"};  // never started
    opts.journalPath = path;
    Supervisor sup(std::move(opts));

    Result<json::Value> health = json::parse(sup.healthLine("h"));
    ASSERT_TRUE(health.ok());
    const json::Value *rec = health.value().get("recovery");
    ASSERT_TRUE(rec && rec->isObject())
        << "restart after unanswered admissions must surface a "
           "recovery block: "
        << sup.healthLine("h");
    EXPECT_TRUE(rec->getBool("journal_replayed", false));
    EXPECT_EQ(rec->getInt("unanswered", -1), 1);
    const json::Value *entries = rec->get("entries");
    ASSERT_TRUE(entries && entries->isArray());
    ASSERT_EQ(entries->items().size(), 1u);
    EXPECT_EQ(entries->items()[0].getString("id"), "b");
    EXPECT_EQ(entries->items()[0].getString("kind"), "compound");
}

TEST(SupervisorRecovery, CleanJournalMeansNoRecoveryBlock)
{
    TempDir dir("memoria-journal");
    std::string path = (dir.path / "journal.jsonl").string();
    {
        std::ofstream j(path);
        j << "{\"op\":\"admit\",\"seq\":1,\"id\":\"a\",\"kind\":"
             "\"analyze\",\"shard\":0,\"replay\":false,\"line\":"
             "\"{}\"}\n";
        j << "{\"op\":\"done\",\"seq\":1,\"outcome\":\"ok\"}\n";
    }
    SupervisorOptions opts;
    opts.workers = 1;
    opts.workerCommand = {"/bin/false"};
    opts.journalPath = path;
    Supervisor sup(std::move(opts));
    Result<json::Value> health = json::parse(sup.healthLine("h"));
    ASSERT_TRUE(health.ok());
    EXPECT_EQ(health.value().get("recovery"), nullptr);
}

// ---------------------------------------------------------------------
// memoria top: restart marker, clamp, cache panel

json::Value
topPayload(int64_t tsMs, int64_t uptimeMs, int64_t total)
{
    json::Value v = json::Value::object();
    v.set("ts_ms", json::Value::number(tsMs));
    v.set("uptime_ms", json::Value::number(uptimeMs));
    json::Value reg = json::Value::object();
    json::Value counters = json::Value::object();
    counters.set("serve.requests_total", json::Value::number(total));
    reg.set("counters", std::move(counters));
    v.set("registry", std::move(reg));
    return v;
}

TEST(Top, CounterResetRendersRestartedNotGarbage)
{
    TopSample prev = parseTopSample(topPayload(1000, 60000, 5000));
    // The process restarted: total fell to 3, uptime reset.
    TopSample cur = parseTopSample(topPayload(3000, 2000, 3));
    ASSERT_TRUE(prev.valid);
    ASSERT_TRUE(cur.valid);

    std::string frame = renderTopFrame(cur, &prev);
    EXPECT_NE(frame.find("(restarted)"), std::string::npos) << frame;
    EXPECT_EQ(frame.find("-"), frame.find("- "))
        << "no negative rate anywhere: " << frame;
    // The fallback is the new incarnation's lifetime average (3 req
    // over 2s = 1.5 rps), not a delta against the old counter.
    EXPECT_NE(frame.find("1.5 rps"), std::string::npos) << frame;
}

TEST(Top, CachePanelReadsCountersOrGauges)
{
    json::Value v = json::Value::object();
    v.set("ts_ms", json::Value::number(int64_t{1000}));
    v.set("uptime_ms", json::Value::number(int64_t{10000}));
    json::Value counters = json::Value::object();
    counters.set("serve.requests_total",
                 json::Value::number(int64_t{10}));
    json::Value gauges = json::Value::object();
    gauges.set("serve.cache.hits", json::Value::number(int64_t{30}));
    gauges.set("serve.cache.misses", json::Value::number(int64_t{10}));
    gauges.set("serve.cache.entries", json::Value::number(int64_t{7}));
    gauges.set("serve.cache.bytes",
               json::Value::number(int64_t{4096}));
    json::Value reg = json::Value::object();
    reg.set("counters", std::move(counters));
    reg.set("gauges", std::move(gauges));
    v.set("registry", std::move(reg));

    TopSample s = parseTopSample(v);
    ASSERT_TRUE(s.valid);
    EXPECT_EQ(s.gauges.at("serve.cache.hits"), 30.0);

    std::string frame = renderTopFrame(s, nullptr);
    EXPECT_NE(frame.find("cache 30 hits / 10 misses (75.0%)"),
              std::string::npos)
        << frame;
    EXPECT_NE(frame.find("7 entries 4KiB"), std::string::npos) << frame;
}

// ---------------------------------------------------------------------
// Incident retention

TEST(IncidentRetention, OldestBundlesArePrunedBeyondTheCap)
{
    TempDir dir("memoria-incidents");
    incident::Incident inc;
    inc.kind = "panic-contained";
    inc.source = "PROGRAM x\nEND\n";

    std::vector<std::string> written;
    for (int i = 0; i < 7; ++i) {
        inc.name = "prog" + std::to_string(i);
        Result<std::string> r =
            incident::writeBundle(inc, dir.path.string(), 3);
        ASSERT_TRUE(r.ok()) << r.diag().str();
        written.push_back(r.value());
        // Distinct mtimes so oldest-first pruning is deterministic.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    size_t remaining = 0;
    for (const auto &e : fs::directory_iterator(dir.path))
        if (e.is_directory())
            ++remaining;
    EXPECT_EQ(remaining, 3u);
    EXPECT_TRUE(fs::exists(written.back()))
        << "the newest bundle always survives";
    EXPECT_FALSE(fs::exists(written.front()))
        << "the oldest bundle is pruned";
}

} // namespace
} // namespace serve
} // namespace memoria
