/**
 * @file
 * Unit tests for the serve overload-control building blocks: the
 * admission controller (deadline-aware shed-on-arrival, per-client
 * fair share, CoDel aging), the memory governor's watermark state
 * machine, the procstat RSS reader, and the protocol fields the
 * admission path added. All pure in-process — the multi-process
 * recycle behavior lives in test_serve.cc.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <unistd.h>
#include <vector>

#include "harness/ladder.hh"
#include "serve/admission.hh"
#include "serve/cache.hh"
#include "serve/governor.hh"
#include "serve/protocol.hh"
#include "support/json.hh"
#include "support/procstat.hh"

namespace memoria {
namespace serve {
namespace {

// ---------------------------------------------------------------------
// Priority parsing

TEST(Priority, ParseAndName)
{
    Priority p = Priority::Batch;
    EXPECT_TRUE(parsePriority("", p));
    EXPECT_EQ(p, Priority::Interactive) << "empty means interactive";
    EXPECT_TRUE(parsePriority("interactive", p));
    EXPECT_EQ(p, Priority::Interactive);
    EXPECT_TRUE(parsePriority("batch", p));
    EXPECT_EQ(p, Priority::Batch);
    EXPECT_FALSE(parsePriority("urgent", p)) << "unknown class rejected";
    EXPECT_STREQ(priorityName(Priority::Interactive), "interactive");
    EXPECT_STREQ(priorityName(Priority::Batch), "batch");
}

// ---------------------------------------------------------------------
// Admission: capacity and per-client caps

AdmissionOptions
smallQueue(size_t cap)
{
    AdmissionOptions o;
    o.queueCapacity = cap;
    o.publishGauges = false;
    return o;
}

TEST(Admission, QueueFullShedCarriesDepthAndReason)
{
    AdmissionController ac(smallQueue(2));
    int64_t now = 1'000'000;
    for (uint64_t id = 1; id <= 2; ++id) {
        AdmissionDecision d =
            ac.decide("a", Priority::Interactive, 0, 0, now);
        ASSERT_TRUE(d.admitted);
        ac.enqueue(id, "a", Priority::Interactive, 0, now);
    }
    AdmissionDecision d =
        ac.decide("a", Priority::Interactive, 0, 0, now);
    EXPECT_FALSE(d.admitted);
    EXPECT_EQ(d.reason, "queue-full");
    EXPECT_EQ(d.queueDepth, 2u) << "shed reports the depth it saw";
    EXPECT_GE(d.retryAfterMs, 1) << "hint is always at least 1ms";
}

TEST(Admission, CountInflightExtendsTheCapacityCheck)
{
    AdmissionOptions o = smallQueue(2);
    o.countInflight = true;
    AdmissionController ac(o);
    int64_t now = 1'000'000;
    ac.enqueue(1, "a", Priority::Interactive, 0, now);
    std::vector<AdmissionDrop> drops;
    EXPECT_EQ(ac.pop(now, drops), 1u);
    EXPECT_EQ(ac.inflight(), 1u);
    EXPECT_EQ(ac.depth(), 0u);

    // One in flight + one queued = capacity 2: the next arrival sheds
    // even though the queue itself has room.
    ac.enqueue(2, "a", Priority::Interactive, 0, now);
    AdmissionDecision d =
        ac.decide("b", Priority::Interactive, 0, 0, now);
    EXPECT_FALSE(d.admitted);
    EXPECT_EQ(d.reason, "queue-full");

    ac.finish(1, now + 1000);
    d = ac.decide("b", Priority::Interactive, 0, 0, now + 1000);
    EXPECT_TRUE(d.admitted) << "finish released the slot";
}

TEST(Admission, ClientCapShedsTheFlooderOnly)
{
    AdmissionOptions o = smallQueue(64);
    o.perClientCap = 3;
    AdmissionController ac(o);
    int64_t now = 1'000'000;
    uint64_t id = 1;
    for (int i = 0; i < 3; ++i) {
        AdmissionDecision d =
            ac.decide("flood", Priority::Interactive, 0, 0, now);
        ASSERT_TRUE(d.admitted);
        ac.enqueue(id++, "flood", Priority::Interactive, 0, now);
    }
    AdmissionDecision flooded =
        ac.decide("flood", Priority::Interactive, 0, 0, now);
    EXPECT_FALSE(flooded.admitted);
    EXPECT_EQ(flooded.reason, "client-capped");

    AdmissionDecision neighbor =
        ac.decide("calm", Priority::Interactive, 0, 0, now);
    EXPECT_TRUE(neighbor.admitted)
        << "the cap is per-client, not global";
}

// ---------------------------------------------------------------------
// Admission: deadline feasibility and honest retry hints

TEST(Admission, DeadlineInfeasibleShedsOnArrival)
{
    AdmissionController ac(smallQueue(64));
    int64_t now = 1'000'000;

    // No service estimate yet: fail open even with a tight deadline.
    AdmissionDecision blind = ac.decide("a", Priority::Interactive,
                                        now + 1000, 0, now);
    EXPECT_TRUE(blind.admitted) << "no estimate means no feasibility check";

    // Caller-supplied estimate (the p90 path): 50ms of service cannot
    // fit a 10ms deadline.
    AdmissionDecision est = ac.decide("a", Priority::Interactive,
                                      now + 10'000, 50'000, now);
    EXPECT_FALSE(est.admitted);
    EXPECT_EQ(est.reason, "deadline-infeasible");

    // A roomy deadline with the same estimate is admitted.
    AdmissionDecision roomy = ac.decide("a", Priority::Interactive,
                                        now + 200'000, 50'000, now);
    EXPECT_TRUE(roomy.admitted);

    // The controller's own EWMA kicks in as the fallback estimate.
    ac.recordService(80'000);
    AdmissionDecision ewma = ac.decide("a", Priority::Interactive,
                                       now + 10'000, 0, now);
    EXPECT_FALSE(ewma.admitted);
    EXPECT_EQ(ewma.reason, "deadline-infeasible");
}

TEST(Admission, QueueDelayFeedsFeasibility)
{
    AdmissionController ac(smallQueue(64));
    int64_t now = 1'000'000;

    // Establish a drain rate of ~10ms per finish.
    std::vector<AdmissionDrop> drops;
    for (uint64_t id = 1; id <= 8; ++id) {
        ac.enqueue(id, "a", Priority::Interactive, 0, now);
        EXPECT_EQ(ac.pop(now, drops), id);
        now += 10'000;
        ac.finish(id, now);
    }
    ASSERT_GT(ac.interFinishUs(), 5'000);

    // Stack 10 ahead of the candidate: queue delay alone (~100ms)
    // blows a 20ms deadline even though service is only 1ms.
    for (uint64_t id = 100; id < 110; ++id)
        ac.enqueue(id, "a", Priority::Interactive, 0, now);
    AdmissionDecision d = ac.decide("b", Priority::Interactive,
                                    now + 20'000, 1'000, now);
    EXPECT_FALSE(d.admitted);
    EXPECT_EQ(d.reason, "deadline-infeasible");
}

TEST(Admission, RetryHintTracksDrainRate)
{
    AdmissionOptions o = smallQueue(4);
    o.retryAfterMs = 5;
    AdmissionController ac(o);
    int64_t now = 1'000'000;

    // ~20ms inter-finish gap.
    std::vector<AdmissionDrop> drops;
    for (uint64_t id = 1; id <= 8; ++id) {
        ac.enqueue(id, "a", Priority::Interactive, 0, now);
        EXPECT_EQ(ac.pop(now, drops), id);
        now += 20'000;
        ac.finish(id, now);
    }

    for (uint64_t id = 10; id < 14; ++id)
        ac.enqueue(id, "a", Priority::Interactive, 0, now);
    AdmissionDecision d =
        ac.decide("b", Priority::Interactive, 0, 0, now);
    ASSERT_FALSE(d.admitted);
    // 5 requests ahead (4 queued + self) at ~20ms each ≈ 100ms; the
    // jitter is ±20%, so anywhere in [80, 120] is honest — and far
    // from the 5ms configured floor.
    EXPECT_GE(d.retryAfterMs, 60);
    EXPECT_LE(d.retryAfterMs, 150);
}

// ---------------------------------------------------------------------
// Admission: fair-share dequeue

TEST(Admission, DrrInterleavesClientsWithinAClass)
{
    AdmissionController ac(smallQueue(64));
    int64_t now = 1'000'000;
    uint64_t id = 1;
    // Client "hog" floods 8 before "b" and "c" arrive with one each.
    for (int i = 0; i < 8; ++i)
        ac.enqueue(id++, "hog", Priority::Interactive, 0, now);
    uint64_t bId = id;
    ac.enqueue(id++, "b", Priority::Interactive, 0, now);
    uint64_t cId = id;
    ac.enqueue(id++, "c", Priority::Interactive, 0, now);

    std::vector<AdmissionDrop> drops;
    std::vector<uint64_t> order;
    for (int i = 0; i < 4; ++i)
        order.push_back(ac.pop(now, drops));
    // Round-robin: b and c are served within the first three pops
    // despite eight hog entries ahead of them in arrival order.
    EXPECT_NE(std::find(order.begin(), order.begin() + 3, bId),
              order.begin() + 3);
    EXPECT_NE(std::find(order.begin(), order.begin() + 3, cId),
              order.begin() + 3);
    EXPECT_TRUE(drops.empty());
}

TEST(Admission, InteractiveOutweighsBatchWithoutStarvingIt)
{
    AdmissionController ac(smallQueue(256));
    int64_t now = 1'000'000;
    uint64_t id = 1;
    std::set<uint64_t> batchIds;
    for (int i = 0; i < 40; ++i)
        ac.enqueue(id++, "i", Priority::Interactive, 0, now);
    for (int i = 0; i < 40; ++i) {
        batchIds.insert(id);
        ac.enqueue(id++, "b", Priority::Batch, 0, now);
    }

    std::vector<AdmissionDrop> drops;
    int batchInFirst20 = 0;
    std::vector<uint64_t> first;
    for (int i = 0; i < 20; ++i) {
        uint64_t got = ac.pop(now, drops);
        ASSERT_NE(got, 0u);
        first.push_back(got);
        if (batchIds.count(got))
            ++batchInFirst20;
    }
    // 4:1 weighting: expect ~4 batch pops in 20, and at least one
    // (never starved) but well under half (interactive dominates).
    EXPECT_GE(batchInFirst20, 2);
    EXPECT_LE(batchInFirst20, 8);

    // Drain everything: both classes fully served eventually.
    uint64_t got;
    size_t total = first.size();
    while ((got = ac.pop(now, drops)) != 0)
        ++total;
    EXPECT_EQ(total, 80u);
}

TEST(Admission, PoppedClientAtCapIsSkippedNotDropped)
{
    AdmissionOptions o = smallQueue(64);
    o.perClientCap = 1;
    AdmissionController ac(o);
    int64_t now = 1'000'000;
    ac.enqueue(1, "a", Priority::Interactive, 0, now);
    ac.enqueue(2, "a", Priority::Interactive, 0, now);
    ac.enqueue(3, "b", Priority::Interactive, 0, now);

    std::vector<AdmissionDrop> drops;
    EXPECT_EQ(ac.pop(now, drops), 1u);
    // "a" is at its in-flight cap: its second entry waits, "b" runs.
    EXPECT_EQ(ac.pop(now, drops), 3u);
    EXPECT_EQ(ac.pop(now, drops), 0u) << "everything runnable is out";
    ac.finish(1, now + 1000);
    EXPECT_EQ(ac.pop(now + 1000, drops), 2u)
        << "finish unblocks the capped client";
    EXPECT_TRUE(drops.empty());
}

// ---------------------------------------------------------------------
// Admission: in-queue expiry and CoDel aging

TEST(Admission, ExpiredEntriesDropAtPopWithoutRunning)
{
    AdmissionController ac(smallQueue(64));
    int64_t now = 1'000'000;
    ac.enqueue(1, "a", Priority::Interactive, now + 5'000, now);
    ac.enqueue(2, "a", Priority::Interactive, 0, now);

    std::vector<AdmissionDrop> drops;
    uint64_t got = ac.pop(now + 10'000, drops);
    EXPECT_EQ(got, 2u) << "the live entry runs";
    ASSERT_EQ(drops.size(), 1u);
    EXPECT_EQ(drops[0].id, 1u);
    EXPECT_TRUE(drops[0].expired) << "deadline-exceeded, not aged";
    EXPECT_EQ(ac.depth(), 0u);
}

TEST(Admission, CodelAgesTheOldestAfterASustainedInterval)
{
    AdmissionOptions o = smallQueue(64);
    o.ageTargetMs = 10;
    AdmissionController ac(o);
    int64_t now = 1'000'000;
    ac.enqueue(1, "a", Priority::Interactive, 0, now);
    ac.enqueue(2, "a", Priority::Interactive, 0, now + 1000);

    std::vector<AdmissionDrop> drops;
    // First pop past the target arms the aging clock but drops
    // nothing (a burst may still drain on its own)...
    EXPECT_EQ(ac.pop(now + 12'000, drops), 1u);
    EXPECT_TRUE(drops.empty());
    // ...a full interval later with the head still over target, the
    // oldest entry is shed as queue-aged.
    EXPECT_EQ(ac.pop(now + 24'000, drops), 0u)
        << "the aged head was dropped, nothing else is queued";
    ASSERT_EQ(drops.size(), 1u);
    EXPECT_EQ(drops[0].id, 2u);
    EXPECT_FALSE(drops[0].expired) << "aged, not deadline-exceeded";
}

TEST(Admission, CodelAgedDropOfSoleQueuedEntryLeavesCleanState)
{
    // Regression: the aged drop used to read through a pointer into
    // the Entry it had just pop_front'd whenever the drop emptied the
    // client's queue (the common sole-entry case) — a use-after-free
    // ASan trips on. Pin the client with an in-flight cap so its
    // queued entry can only leave via aging.
    AdmissionOptions o = smallQueue(64);
    o.ageTargetMs = 10;
    o.perClientCap = 1;
    AdmissionController ac(o);
    int64_t now = 1'000'000;
    // Long key on purpose: past SSO the destroyed Entry's client
    // string frees its heap buffer, so the old read-after-pop is a
    // heap-use-after-free ASan can actually see.
    const std::string solo(64, 's');
    ac.enqueue(1, solo, Priority::Interactive, 0, now);
    std::vector<AdmissionDrop> drops;
    EXPECT_EQ(ac.pop(now, drops), 1u);
    ac.enqueue(2, solo, Priority::Interactive, 0, now);

    // Arm the aging clock (nothing dropped), then a full interval
    // later the sole queued entry is aged out and its queue empties.
    EXPECT_EQ(ac.pop(now + 12'000, drops), 0u) << "client is capped";
    EXPECT_TRUE(drops.empty());
    EXPECT_EQ(ac.pop(now + 24'000, drops), 0u);
    ASSERT_EQ(drops.size(), 1u);
    EXPECT_EQ(drops[0].id, 2u);
    EXPECT_FALSE(drops[0].expired);
    EXPECT_EQ(ac.depth(), 0u);

    // The controller is still coherent: the in-flight record remains,
    // finish releases it, and the client can run again.
    EXPECT_EQ(ac.clientRecords(), 1u) << "in-flight keeps the record";
    ac.finish(1, now + 25'000);
    EXPECT_EQ(ac.clientRecords(), 0u);
    ac.enqueue(3, solo, Priority::Interactive, 0, now + 26'000);
    drops.clear();
    EXPECT_EQ(ac.pop(now + 26'000, drops), 3u);
    EXPECT_TRUE(drops.empty());
}

TEST(Admission, ExpiredDropsDoNotLeakClientRecordsUnderChurn)
{
    // Regression: the expiry sweep used operator[] on the clients map
    // and never erased emptied records, so one-shot client churn grew
    // the map without bound.
    AdmissionController ac(smallQueue(64));
    int64_t now = 1'000'000;
    for (uint64_t i = 0; i < 10; ++i)
        ac.enqueue(i + 1, "oneshot" + std::to_string(i),
                   Priority::Interactive, now + 1'000, now);
    ASSERT_EQ(ac.clientRecords(), 10u);

    std::vector<AdmissionDrop> drops;
    EXPECT_EQ(ac.pop(now + 10'000, drops), 0u)
        << "everything expired in queue";
    EXPECT_EQ(drops.size(), 10u);
    for (const AdmissionDrop &d : drops)
        EXPECT_TRUE(d.expired);
    EXPECT_EQ(ac.depth(), 0u);
    EXPECT_EQ(ac.clientRecords(), 0u)
        << "idle records must die with their last entry";
}

TEST(Admission, FinishIsTolerantOfQueuedAndUnknownIds)
{
    AdmissionController ac(smallQueue(64));
    int64_t now = 1'000'000;
    ac.enqueue(1, "a", Priority::Interactive, 0, now);
    ac.enqueue(2, "a", Priority::Interactive, 0, now);

    // Finishing a still-queued id removes it (the drain sweep path).
    ac.finish(2, now);
    EXPECT_EQ(ac.depth(), 1u);

    // Unknown and double finishes are no-ops, not corruption.
    ac.finish(99, now);
    std::vector<AdmissionDrop> drops;
    EXPECT_EQ(ac.pop(now, drops), 1u);
    ac.finish(1, now + 1000);
    ac.finish(1, now + 2000);
    EXPECT_EQ(ac.inflight(), 0u);
    EXPECT_EQ(ac.depth(), 0u);
}

// ---------------------------------------------------------------------
// Memory governor

std::string
fatBody(char c)
{
    return std::string(1024, c);
}

TEST(Governor, SoftTripShrinksCacheAndFloorsTheLadder)
{
    ResultCache cache(CacheOptions{});
    for (int i = 0; i < 8; ++i)
        cache.seed("k" + std::to_string(i), fatBody('a' + i));
    ASSERT_EQ(cache.stats().entries, 8u);

    GovernorOptions gopts;
    gopts.softBytes = 100 << 20;
    gopts.hardBytes = 200 << 20;
    MemoryGovernor gov(gopts, &cache);
    ASSERT_TRUE(gov.enabled());
    EXPECT_EQ(gov.rungFloor(), harness::Rung::FullCompound);

    gov.evaluate(120 << 20);  // over soft, under hard
    EXPECT_TRUE(gov.softPressure());
    EXPECT_FALSE(gov.hardPressure());
    EXPECT_EQ(gov.softTrips(), 1u);
    EXPECT_EQ(gov.rungFloor(), harness::Rung::PermuteOnly);
    EXPECT_LE(cache.stats().entries, 4u)
        << "soft pressure halves the cache footprint";

    // Hovering just under the watermark does NOT release (hysteresis).
    gov.evaluate((100 << 20) - 1024);
    EXPECT_TRUE(gov.softPressure()) << "within the hysteresis band";

    // A tenth below the watermark does.
    gov.evaluate(85 << 20);
    EXPECT_FALSE(gov.softPressure());
    EXPECT_EQ(gov.rungFloor(), harness::Rung::FullCompound);
    EXPECT_EQ(gov.softTrips(), 1u) << "release is not a trip";
}

TEST(Governor, SustainedSoftPressureKeepsTheCacheClamped)
{
    // Regression: the squeeze used to run only on the soft-pressure
    // rising edge; while pressure stayed latched the cache regrew to
    // its configured bounds, making the reclaim effectively one-shot.
    ResultCache cache(CacheOptions{});
    for (int i = 0; i < 8; ++i)
        cache.seed("k" + std::to_string(i), fatBody('a' + i));

    GovernorOptions gopts;
    gopts.softBytes = 100 << 20;
    MemoryGovernor gov(gopts, &cache);

    gov.evaluate(120 << 20);
    ASSERT_TRUE(gov.softPressure());
    const size_t clamped = cache.stats().entries;
    ASSERT_LE(clamped, 4u);

    // Between samples the cache regrows (shrinkTo is one-shot)...
    for (int i = 10; i < 18; ++i)
        cache.seed("k" + std::to_string(i), fatBody('z'));
    ASSERT_GT(cache.stats().entries, clamped);

    // ...but the next sample under sustained pressure re-clamps it,
    // without counting as a fresh trip.
    gov.evaluate(120 << 20);
    EXPECT_TRUE(gov.softPressure());
    EXPECT_EQ(gov.softTrips(), 1u) << "latched, not re-tripped";
    EXPECT_LE(cache.stats().entries, clamped);

    // Release clears the clamp: regrowth is free again.
    gov.evaluate(85 << 20);
    EXPECT_FALSE(gov.softPressure());
    for (int i = 20; i < 28; ++i)
        cache.seed("k" + std::to_string(i), fatBody('w'));
    gov.evaluate(85 << 20);
    EXPECT_GT(cache.stats().entries, clamped + 2)
        << "no squeeze after release";
}

TEST(Governor, HardPressureLatches)
{
    GovernorOptions gopts;
    gopts.softBytes = 100 << 20;
    gopts.hardBytes = 200 << 20;
    MemoryGovernor gov(gopts, nullptr);

    gov.evaluate(250 << 20);
    EXPECT_TRUE(gov.hardPressure());
    EXPECT_EQ(gov.hardTrips(), 1u);

    // RSS falling back does not un-latch: the worker must recycle.
    gov.evaluate(10 << 20);
    EXPECT_TRUE(gov.hardPressure());
    EXPECT_EQ(gov.hardTrips(), 1u) << "latched, not re-tripped";
}

TEST(Governor, DisabledGovernorNeverDegrades)
{
    MemoryGovernor gov(GovernorOptions{}, nullptr);
    EXPECT_FALSE(gov.enabled());
    gov.evaluate(1ull << 40);
    EXPECT_FALSE(gov.softPressure());
    EXPECT_FALSE(gov.hardPressure());
    EXPECT_EQ(gov.rungFloor(), harness::Rung::FullCompound);
}

// ---------------------------------------------------------------------
// procstat

TEST(Procstat, SelfRssIsPositiveAndBogusPidIsZero)
{
    EXPECT_GT(procstat::rssBytes(), 0u)
        << "a running test binary has resident pages";
    EXPECT_GT(procstat::rssBytes(::getpid()), 0u);
    // pid_t is 32-bit signed and kernel pids stop well short of this.
    EXPECT_EQ(procstat::rssBytes(2'000'000'000), 0u)
        << "unknown reads as 0";
}

// ---------------------------------------------------------------------
// Protocol: admission fields

TEST(Protocol, ParsesPriorityClientIdAndRejectsUnknownPriority)
{
    Result<Request> r = parseRequest(
        "{\"id\":\"x\",\"kind\":\"analyze\",\"program\":\"P\","
        "\"priority\":\"batch\",\"client_id\":\"alice\","
        "\"deadline_ms\":250}");
    ASSERT_TRUE(r.ok()) << r.diag().str();
    EXPECT_EQ(r.value().priority, "batch");
    EXPECT_EQ(r.value().clientId, "alice");
    EXPECT_EQ(r.value().deadlineMs, 250);

    Result<Request> bad = parseRequest(
        "{\"id\":\"x\",\"kind\":\"analyze\",\"program\":\"P\","
        "\"priority\":\"asap\"}");
    EXPECT_FALSE(bad.ok()) << "unknown priority is a request error";
}

TEST(Protocol, OverloadedResponseCarriesDepthAndReason)
{
    Result<json::Value> v = json::parse(
        overloadedResponse("r9", 120, 17, "client-capped"));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value().getString("type"), "overloaded");
    EXPECT_EQ(v.value().getString("id"), "r9");
    EXPECT_EQ(v.value().getInt("retry_after_ms"), 120);
    EXPECT_EQ(v.value().getInt("queue_depth"), 17);
    EXPECT_EQ(v.value().getString("reason"), "client-capped");

    // Defaults preserve the original wire shape.
    Result<json::Value> d = json::parse(overloadedResponse("r1", 50));
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d.value().getString("reason"), "queue-full");
    EXPECT_EQ(d.value().getInt("queue_depth"), 0);
}

TEST(Protocol, DeadlineExceededResponseShape)
{
    Result<json::Value> v =
        json::parse(deadlineExceededResponse("r2", 345));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value().getString("type"), "error");
    EXPECT_EQ(v.value().getString("code"), "serve.deadline-exceeded");
    EXPECT_EQ(v.value().getInt("waited_ms"), 345);
}

// ---------------------------------------------------------------------
// Cache shrink + rung floor combinator (governor collaborators)

TEST(Cache, ShrinkToSqueezesLruTailAndAllowsRegrowth)
{
    ResultCache cache(CacheOptions{});
    for (int i = 0; i < 10; ++i)
        cache.seed("k" + std::to_string(i), fatBody('x'));
    // k9 is MRU; shrink to 3 keeps the 3 most recent.
    size_t evicted = cache.shrinkTo(3, 0);
    EXPECT_EQ(evicted, 7u);
    ResultCacheStats s = cache.stats();
    EXPECT_EQ(s.entries, 3u);
    auto kept = cache.entries();
    ASSERT_EQ(kept.size(), 3u);
    EXPECT_EQ(kept[0].first, "k9") << "MRU survives the squeeze";

    // The configured bounds are untouched: the cache regrows.
    for (int i = 20; i < 26; ++i)
        cache.seed("k" + std::to_string(i), fatBody('y'));
    EXPECT_EQ(cache.stats().entries, 9u);
}

TEST(Ladder, WeakerRungPicksTheCheaperFloor)
{
    using harness::Rung;
    using harness::weakerRung;
    EXPECT_EQ(weakerRung(Rung::FullCompound, Rung::PermuteOnly),
              Rung::PermuteOnly);
    EXPECT_EQ(weakerRung(Rung::Identity, Rung::NoFusion),
              Rung::Identity);
    EXPECT_EQ(weakerRung(Rung::NoFusion, Rung::NoFusion),
              Rung::NoFusion);
}

} // namespace
} // namespace serve
} // namespace memoria
