/** Tests for the guarded-pipeline subsystem: the structural IR
 *  validator, the differential-equivalence oracle (including a
 *  sabotage-injected miscompile caught and rolled back by Compound),
 *  and a fuzz-campaign smoke run. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/equiv.hh"
#include "check/fuzz.hh"
#include "check/validate.hh"
#include "driver/fuzzcheck.hh"
#include "ir/builder.hh"
#include "ir/printer.hh"
#include "suite/corpus.hh"
#include "suite/kernels.hh"
#include "support/trace.hh"
#include "transform/compound.hh"

namespace memoria {
namespace {

/** A depth-2 nest whose loops cannot legally be interchanged: the
 *  dependence from A(I-1,J+1) has direction (<, >). */
Program
interchangeIllegalNest()
{
    ProgramBuilder b("noswap");
    Var n = b.param("N", 8);
    Arr a = b.array("A", {Ix(n) + 2, Ix(n) + 2});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(i, 2, n,
                 b.loop(j, 1, n,
                        b.assign(a(Ix(i), Ix(j)),
                                 a(Ix(i) - 1, Ix(j) + 1) + 1.0))));
    return b.finish();
}

// ---------------------------------------------------------------------
// Validator

TEST(Validate, AcceptsKernels)
{
    EXPECT_TRUE(validateProgram(makeMatmul("IKJ", 8)).empty());
    EXPECT_TRUE(validateProgram(makeCholeskyKIJ(8)).empty());
    EXPECT_TRUE(validateProgram(makeAdiScalarized(8)).empty());
    EXPECT_TRUE(validateProgram(makeErlebacherDistributed(6)).empty());
}

TEST(Validate, AcceptsWholeCorpus)
{
    for (const Program &p : buildCorpus(8))
        EXPECT_TRUE(validateProgram(p).empty()) << p.name;
}

TEST(Validate, RejectsDuplicateLoopVariable)
{
    Program p = makeMatmul("IJK", 8);
    Node *outer = p.body[0].get();
    outer->body[0]->var = outer->var;  // J-loop rebinds I
    std::vector<Diag> diags = validateProgram(p);
    ASSERT_FALSE(diags.empty());
    EXPECT_NE(diags.front().str().find("bound"), std::string::npos);
}

TEST(Validate, RejectsZeroStep)
{
    Program p = makeMatmul("IJK", 8);
    p.body[0]->step = 0;
    EXPECT_FALSE(validateProgram(p).empty());
}

TEST(Validate, RejectsSubscriptRankMismatch)
{
    Program p = interchangeIllegalNest();
    Node *stmt = p.body[0]->body[0]->body[0].get();
    stmt->stmt.write.subs.pop_back();  // A is 2-D, write now rank 1
    EXPECT_FALSE(validateProgram(p).empty());
}

TEST(Validate, RejectsOutOfRangeArrayId)
{
    Program p = interchangeIllegalNest();
    Node *stmt = p.body[0]->body[0]->body[0].get();
    stmt->stmt.write.array = 99;
    EXPECT_FALSE(validateProgram(p).empty());
}

TEST(Validate, RejectsNullRhs)
{
    Program p = interchangeIllegalNest();
    Node *stmt = p.body[0]->body[0]->body[0].get();
    stmt->stmt.rhs = nullptr;
    EXPECT_FALSE(validateProgram(p).empty());
}

TEST(Validate, RejectsExcessiveNestingDepth)
{
    Program p = makeMatmul("IJK", 8);  // depth 3
    ValidateOptions opts;
    opts.maxDepth = 2;
    EXPECT_FALSE(validateProgram(p, opts).empty());
    EXPECT_FALSE(validateProgramStatus(p, opts).ok());
}

// ---------------------------------------------------------------------
// Differential-equivalence oracle

TEST(Equiv, EquivalentProgramsAgree)
{
    // Matmul in two loop orders computes the same product.
    EquivResult eq =
        checkEquivalence(makeMatmul("IJK", 8), makeMatmul("JKI", 8));
    EXPECT_TRUE(eq.equivalent) << eq.detail;
    EXPECT_GT(eq.comparedRuns, 0);
}

TEST(Equiv, DetectsChangedComputation)
{
    Program ref = interchangeIllegalNest();
    Program bad = ref.clone();
    Node *stmt = bad.body[0]->body[0]->body[0].get();
    // Same shape, different constant: A(...) + 2 instead of + 1.
    stmt->stmt.rhs = (Val(stmt->stmt.rhs->kids[0]) + 2.0).p;
    EquivResult eq = checkEquivalence(ref, bad);
    EXPECT_FALSE(eq.equivalent);
    EXPECT_FALSE(eq.detail.empty());
}

TEST(Equiv, DetectsIllegalInterchange)
{
    Program ref = interchangeIllegalNest();
    Program bad = ref.clone();
    std::swap(bad.body[0]->var, bad.body[0]->body[0]->var);
    EquivResult eq = checkEquivalence(ref, bad);
    EXPECT_FALSE(eq.equivalent);
}

// ---------------------------------------------------------------------
// Guarded Compound: injected miscompile is caught and rolled back

/** Installs a RecordingSink and clears the sabotage hook afterwards. */
class GuardTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto sink = std::make_unique<obs::RecordingSink>();
        rec_ = sink.get();
        obs::setTraceSink(std::move(sink));
    }

    void
    TearDown() override
    {
        setCompoundSabotageHook(nullptr);
        obs::setTraceSink(nullptr);
    }

    obs::RecordingSink *rec_ = nullptr;
};

TEST_F(GuardTest, SabotagedNestIsRolledBackExactly)
{
    Program p = interchangeIllegalNest();
    std::string before = printProgram(p);

    // Force the illegal interchange behind the legality analysis's
    // back, as a buggy transformation would.
    setCompoundSabotageHook(
        [](std::vector<NodePtr> &ownerBody, size_t index, size_t) {
            Node *nest = ownerBody[index].get();
            if (nest->isLoop() && !nest->body.empty() &&
                nest->body[0]->isLoop())
                std::swap(nest->var, nest->body[0]->var);
        });

    CompoundResult r = compoundTransform(p, ModelParams{},
                                         CompoundOptions{});

    EXPECT_EQ(r.failVerify, 1);
    ASSERT_EQ(r.nests.size(), 1u);
    EXPECT_TRUE(r.nests[0].rolledBack);
    // Rollback restores the nest byte-for-byte.
    EXPECT_EQ(printProgram(p), before);

    // The rollback is visible in the trace stream.
    bool sawEvent = false;
    for (const auto &e : rec_->events)
        if (e.type == obs::TraceEvent::Type::Event &&
            e.category == "check" && e.name == "verify_failed")
            sawEvent = true;
    EXPECT_TRUE(sawEvent);
}

TEST_F(GuardTest, HealthyPipelineNeverRollsBack)
{
    for (const char *order : {"IJK", "IKJ", "JKI"}) {
        Program p = makeMatmul(order, 8);
        CompoundResult r = compoundTransform(p, ModelParams{},
                                             CompoundOptions{});
        EXPECT_EQ(r.failVerify, 0) << order;
        EXPECT_EQ(r.fusion.failVerify, 0) << order;
    }
}

// ---------------------------------------------------------------------
// Fuzzing

TEST(Fuzz, GeneratedProgramsAreDeterministic)
{
    Program a = fuzzProgram(42);
    Program b = fuzzProgram(42);
    EXPECT_EQ(printProgram(a), printProgram(b));
    EXPECT_NE(printProgram(a), printProgram(fuzzProgram(43)));
}

TEST(Fuzz, SmokeCampaign)
{
    FuzzReport rep = runFuzzCampaign(1, 200);
    EXPECT_EQ(rep.programs, 200);
    EXPECT_TRUE(rep.ok());
    for (const std::string &m : rep.messages)
        ADD_FAILURE() << m;
}

} // namespace
} // namespace memoria
