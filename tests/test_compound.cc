/** End-to-end Compound tests (Figure 6): every kernel keeps its
 *  semantics and never gets a worse LoopCost. */

#include <gtest/gtest.h>

#include "interp/interp.hh"
#include "ir/builder.hh"
#include "ir/printer.hh"
#include "model/loopcost.hh"
#include "suite/kernels.hh"
#include "transform/compound.hh"

namespace memoria {
namespace {

ModelParams
cls4()
{
    ModelParams p;
    p.lineBytes = 32;
    return p;
}

/** Run Compound and assert semantics preservation. */
CompoundResult
runCompound(Program &p)
{
    uint64_t before = runChecksum(p);
    CompoundResult r = compoundTransform(p, cls4());
    EXPECT_EQ(runChecksum(p), before) << p.name;
    return r;
}

TEST(Compound, MatmulWorstOrderFixed)
{
    Program p = makeMatmul("IKJ", 20);
    CompoundResult r = runCompound(p);
    ASSERT_EQ(r.nests.size(), 1u);
    const NestReport &rep = r.nests[0];
    EXPECT_FALSE(rep.origMemoryOrder);
    EXPECT_TRUE(rep.finalMemoryOrder);
    EXPECT_TRUE(rep.finalInnerMemoryOrder);
    EXPECT_TRUE(rep.usedPermutation);
    EXPECT_TRUE(rep.finalCost < rep.origCost);
    // Final equals ideal for a fully permutable nest.
    EXPECT_TRUE(rep.finalCost == rep.idealCost);
}

TEST(Compound, MatmulAlreadyOptimalUntouched)
{
    Program p = makeMatmul("JKI", 16);
    Program orig = p.clone();
    CompoundResult r = runCompound(p);
    EXPECT_TRUE(r.nests[0].origMemoryOrder);
    EXPECT_TRUE(structurallyEqual(p, orig));
}

TEST(Compound, CholeskyDistributesAndInterchanges)
{
    Program p = makeCholeskyKIJ(16);
    CompoundResult r = runCompound(p);
    EXPECT_EQ(r.distributions, 1);
    EXPECT_EQ(r.resultingNests, 2);
    ASSERT_EQ(r.nests.size(), 1u);
    EXPECT_TRUE(r.nests[0].usedDistribution);
    EXPECT_EQ(runChecksum(p), runChecksum(makeCholeskyKJI(16)));
}

TEST(Compound, AdiFusesAndInterchanges)
{
    Program p = makeAdiScalarized(16);
    CompoundResult r = runCompound(p);
    ASSERT_EQ(r.nests.size(), 1u);
    const NestReport &rep = r.nests[0];
    EXPECT_TRUE(rep.usedFusion);
    EXPECT_TRUE(rep.finalInnerMemoryOrder);
    // Result should match the hand-fused Figure 3(c) semantics.
    EXPECT_EQ(runChecksum(p), runChecksum(makeAdiFused(16)));
    // Structure: K outer, I inner, two statements.
    Node *top = p.body[0].get();
    auto chain = perfectChain(top);
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(p.varName(chain[0]->var), "K");
    EXPECT_EQ(p.varName(chain[1]->var), "I");
    EXPECT_EQ(countStmts(*top), 2);
}

TEST(Compound, GmtryGetsUnitStride)
{
    Program p = makeGmtry(14);
    CompoundResult r = runCompound(p);
    ASSERT_EQ(r.nests.size(), 1u);
    EXPECT_TRUE(r.nests[0].usedDistribution ||
                r.nests[0].usedPermutation);
    EXPECT_TRUE(r.nests[0].finalCost < r.nests[0].origCost);
}

TEST(Compound, SimpleHydroReordered)
{
    Program p = makeSimpleHydro(16);
    CompoundResult r = runCompound(p);
    for (const auto &rep : r.nests) {
        EXPECT_TRUE(rep.finalMemoryOrder);
        EXPECT_TRUE(rep.finalCost < rep.origCost);
    }
}

TEST(Compound, VpentaPermutedAndMaybeFused)
{
    Program p = makeVpenta(16);
    CompoundResult r = runCompound(p);
    for (const auto &rep : r.nests)
        EXPECT_TRUE(rep.finalInnerMemoryOrder);
}

TEST(Compound, ErlebacherFusionStats)
{
    Program p = makeErlebacherDistributed(10);
    CompoundResult r = runCompound(p);
    EXPECT_GT(r.fusion.candidates, 0);
    EXPECT_GT(r.fusion.fused, 0);
    EXPECT_EQ(r.totalNests, 5);
}

TEST(Compound, FusionAblationFlag)
{
    Program p1 = makeErlebacherDistributed(10);
    uint64_t before = runChecksum(p1);
    CompoundResult r1 = compoundTransform(p1, cls4(), false);
    EXPECT_EQ(runChecksum(p1), before);
    EXPECT_EQ(r1.fusion.fused, 0);
    EXPECT_EQ(p1.body.size(), 5u);
}

TEST(Compound, WavefrontReportsDependenceFailure)
{
    ProgramBuilder b("wave");
    Var n = b.param("N", 16);
    Arr a = b.array("A", {Ix(n) + 2, Ix(n) + 2});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(i, 2, n,
                 b.loop(j, 2, n,
                        b.assign(a(i, j),
                                 a(Ix(i) - 1, Ix(j) + 1) +
                                     a(Ix(i) - 1, Ix(j) - 1)))));
    Program p = b.finish();
    CompoundResult r = runCompound(p);
    ASSERT_EQ(r.nests.size(), 1u);
    EXPECT_FALSE(r.nests[0].finalMemoryOrder);
    EXPECT_EQ(r.nests[0].fail, PermuteFail::Dependences);
}

TEST(Compound, EveryKernelSemanticsPreserved)
{
    std::vector<Program> programs;
    programs.push_back(makeMatmul("IKJ", 12));
    programs.push_back(makeCholeskyKIJ(12));
    programs.push_back(makeAdiScalarized(10));
    programs.push_back(makeErlebacherDistributed(8));
    programs.push_back(makeErlebacherHand(8));
    programs.push_back(makeGmtry(10));
    programs.push_back(makeSimpleHydro(12));
    programs.push_back(makeVpenta(12));
    programs.push_back(makeJacobiBadOrder(12));
    for (auto &p : programs) {
        SCOPED_TRACE(p.name);
        runCompound(p);
    }
}

TEST(Compound, CostNeverWorsens)
{
    std::vector<Program> programs;
    programs.push_back(makeMatmul("IKJ", 64));
    programs.push_back(makeCholeskyKIJ(64));
    programs.push_back(makeAdiScalarized(64));
    programs.push_back(makeGmtry(64));
    programs.push_back(makeVpenta(64));
    for (auto &p : programs) {
        SCOPED_TRACE(p.name);
        CompoundResult r = runCompound(p);
        for (const auto &rep : r.nests)
            EXPECT_TRUE(rep.finalCost <= rep.origCost);
    }
}

TEST(Compound, SimulatedMissesImproveForScalarizedKernels)
{
    // The bottom line: transformed programs miss less in the simulated
    // i860 cache (paper Table 4's direction of change).
    for (auto make : {makeGmtry, makeVpenta}) {
        Program orig = make(48);
        Program opt = orig.clone();
        compoundTransform(opt, cls4());
        RunResult before = runWithCache(orig, CacheConfig::i860());
        RunResult after = runWithCache(opt, CacheConfig::i860());
        EXPECT_EQ(before.checksum, after.checksum);
        EXPECT_LT(after.cache.misses, before.cache.misses) << orig.name;
    }
}

} // namespace
} // namespace memoria
