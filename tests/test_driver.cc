/** End-to-end driver tests: report construction, changed-nest mapping,
 *  hit-rate simulation, the ideal program. */

#include <gtest/gtest.h>

#include "driver/memoria.hh"
#include "suite/corpus.hh"
#include "suite/kernels.hh"

namespace memoria {
namespace {

ModelParams
cls4()
{
    ModelParams p;
    p.lineBytes = 32;
    return p;
}

TEST(Driver, MatmulReportAndRates)
{
    Program p = makeMatmul("IKJ", 32);
    OptimizedProgram opt = optimizeProgram(p, cls4());

    EXPECT_EQ(opt.report.nests, 1);
    EXPECT_EQ(opt.report.nestsOrig, 0);
    EXPECT_EQ(opt.report.nestsPerm, 1);
    EXPECT_EQ(opt.report.nestsFail, 0);
    EXPECT_GT(opt.report.ratioFinal, 1.0);
    EXPECT_TRUE(opt.anyChanged);

    // Semantics: original and transformed agree.
    EXPECT_EQ(runChecksum(opt.original), runChecksum(opt.transformed));

    HitRates rates = simulateHitRates(opt, CacheConfig::i860());
    EXPECT_GT(rates.wholeFinal, rates.wholeOrig);
    EXPECT_GT(rates.optFinal, rates.optOrig);

    Performance perf = simulatePerformance(opt, CacheConfig::i860());
    EXPECT_GT(perf.speedup(), 1.0);
}

TEST(Driver, OptimalProgramUntouched)
{
    Program p = makeMatmul("JKI", 24);
    OptimizedProgram opt = optimizeProgram(p, cls4());
    EXPECT_EQ(opt.report.nestsOrig, 1);
    EXPECT_FALSE(opt.anyChanged);
    EXPECT_TRUE(structurallyEqual(opt.original, opt.transformed));
    HitRates rates = simulateHitRates(opt, CacheConfig::i860());
    EXPECT_DOUBLE_EQ(rates.wholeOrig, rates.wholeFinal);
}

TEST(Driver, IdealIgnoresLegality)
{
    // The wavefront nest cannot legally permute, but the ideal program
    // gets the better order anyway (Section 5.2's Ideal column).
    Program wave = makeJacobiBadOrder(16);
    OptimizedProgram opt = optimizeProgram(wave, cls4());
    EXPECT_GE(opt.report.ratioIdeal, opt.report.ratioFinal);
}

TEST(Driver, FailureBreakdownRecorded)
{
    const auto &specs = corpusSpecs();
    // trfd: 48% of nests fail, mostly by dependences.
    const CorpusSpec *trfd = nullptr;
    for (const auto &s : specs)
        if (s.name == "trfd")
            trfd = &s;
    ASSERT_TRUE(trfd);
    Program p = buildCorpusProgram(*trfd, 10);
    OptimizedProgram opt = optimizeProgram(p, cls4());
    EXPECT_GT(opt.report.nestsFail, 0);
    EXPECT_GT(opt.report.failDeps, 0);
    EXPECT_GT(opt.report.failBounds, 0);
    EXPECT_EQ(opt.report.failDeps + opt.report.failBounds,
              opt.report.nestsFail);
}

TEST(Driver, CorpusProgramRoundTrip)
{
    const CorpusSpec &arc2d = corpusSpecs()[1];
    ASSERT_EQ(arc2d.name, "arc2d");
    Program p = buildCorpusProgram(arc2d, 10);
    OptimizedProgram opt = optimizeProgram(p, cls4());
    EXPECT_EQ(runChecksum(opt.original), runChecksum(opt.transformed));
    EXPECT_EQ(opt.report.nests, arc2d.nests);
    // arc2d permutes a good fraction of nests and fuses some.
    EXPECT_GT(opt.report.nestsPerm, 0);
    EXPECT_GT(opt.report.fusion.fused, 0);
    // Whole-program stats are self-consistent.
    EXPECT_EQ(opt.report.nestsOrig + opt.report.nestsPerm +
                  opt.report.nestsFail,
              opt.report.nests);
    EXPECT_EQ(opt.report.innerOrig + opt.report.innerPerm +
                  opt.report.innerFail,
              opt.report.nests);
}

TEST(Driver, AccessStatsImproveUnitStride)
{
    Program p = makeVpenta(24);
    OptimizedProgram opt = optimizeProgram(p, cls4());
    // Transformation raises the unit-stride share (Table 5's story).
    EXPECT_GT(opt.accessFinal.pctUnit(), opt.accessOrig.pctUnit());
    EXPECT_GE(opt.accessIdeal.pctUnit(), opt.accessOrig.pctUnit());
}

TEST(Driver, AblationWithoutFusion)
{
    Program p = makeErlebacherDistributed(10);
    OptimizedProgram withF = optimizeProgram(p, cls4(), true);
    OptimizedProgram withoutF = optimizeProgram(p, cls4(), false);
    EXPECT_GT(withF.report.fusion.fused, 0);
    EXPECT_EQ(withoutF.report.fusion.fused, 0);
    EXPECT_EQ(runChecksum(withoutF.transformed),
              runChecksum(withF.transformed));
}

} // namespace
} // namespace memoria
