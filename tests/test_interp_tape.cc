/**
 * Unit tests for the flat arena IR and the bytecode tape interpreter
 * (interp/arena.hh, interp/tape.hh): lossless flattening, the golden
 * disassembly, and tree/tape parity on faults, budgets and
 * cancellation. The jobs-determinism tests pin down the parallel
 * oracle and fuzz campaign contracts (identical output for every jobs
 * value).
 */

#include <gtest/gtest.h>

#include "check/equiv.hh"
#include "check/fuzz.hh"
#include "driver/fuzzcheck.hh"
#include "harness/budget.hh"
#include "interp/arena.hh"
#include "interp/interp.hh"
#include "interp/tape.hh"
#include "ir/builder.hh"
#include "ir/printer.hh"
#include "suite/corpus.hh"
#include "suite/kernels.hh"

namespace memoria {
namespace {

/** Programs spanning the IR surface: kernels, a corpus program with a
 *  large symbol table, and a few fuzz programs. */
std::vector<Program>
samplePrograms()
{
    std::vector<Program> progs;
    progs.push_back(makeMatmul("JKI", 8));
    progs.push_back(makeCholeskyKIJ(8));
    progs.push_back(makeAdiScalarized(8));
    progs.push_back(makeErlebacherDistributed(8));
    progs.push_back(makeVpenta(8));
    progs.push_back(makeJacobiBadOrder(8));
    progs.push_back(buildCorpusProgram(corpusSpecs().front(), 8));
    for (uint64_t seed : {7u, 19u, 23u})
        progs.push_back(fuzzProgram(seed));
    return progs;
}

TEST(Arena, RoundTripIsLossless)
{
    // toProgram() must reconstruct a program that prints identically
    // — the flattening loses nothing the printer can observe.
    for (const Program &p : samplePrograms()) {
        ProgramArena arena(p);
        Program back = arena.toProgram();
        EXPECT_EQ(printProgram(back), printProgram(p)) << p.name;
    }
}

TEST(Arena, RoundTripPreservesSemantics)
{
    for (const Program &p : samplePrograms()) {
        ProgramArena arena(p);
        Program back = arena.toProgram();
        Result<uint64_t> orig = tryRunChecksum(p);
        Result<uint64_t> rt = tryRunChecksum(back);
        ASSERT_EQ(orig.ok(), rt.ok()) << p.name;
        if (orig.ok())
            EXPECT_EQ(orig.value(), rt.value()) << p.name;
    }
}

TEST(Tape, GoldenMatmulDisassembly)
{
    // The Figure 2 matmul nest in memory order (JKI), N=4: three
    // counted loops, four strength-reduced fast references (strides
    // folded into one affine per reference), no guards — interval
    // analysis proves every subscript in bounds. A change here means
    // the compiler's output changed; update deliberately.
    Program p = makeMatmul("JKI", 4);
    Interpreter interp(p);
    const Tape &tape = interp.compiledTape();
    EXPECT_EQ(tape.disassemble(),
              "tape 'matmul_JKI': 13 instrs, 3 loops, 4 fast refs, "
              "0 guarded refs\n"
              "  0: loop.begin J = <1> .. <N> step 1 end@11\n"
              "  1: loop.begin K = <1> .. <N> step 1 end@10\n"
              "  2: loop.begin I = <1> .. <N> step 1 end@9\n"
              "  3: load.fast C[<I + 4*J - 5>]\n"
              "  4: load.fast A[<I + 4*K - 5>]\n"
              "  5: load.fast B[<4*J + K - 5>]\n"
              "  6: mul\n"
              "  7: add\n"
              "  8: store.fast C[<I + 4*J - 5>]\n"
              "  9: loop.end I body@3\n"
              " 10: loop.end K body@2\n"
              " 11: loop.end J body@1\n"
              " 12: halt\n");
    EXPECT_EQ(tape.fastRefs(), 4);
    EXPECT_EQ(tape.guardedRefs(), 0);
}

/** A(I+1) over A(N): out of bounds on the last iteration. */
Program
makeOobProgram()
{
    ProgramBuilder b("oob");
    Var n = b.param("N", 6);
    Arr a = b.array("A", {n});
    Var i = b.loopVar("I");
    b.add(b.loop(i, 1, n, b.assign(a(Ix(i) + 1), Val(i))));
    return b.finish();
}

TEST(Tape, OutOfBoundsParity)
{
    // The tape compiles the reference guarded (it cannot prove I+1 in
    // bounds) and must reproduce the tree walker's fault exactly:
    // same code, same message, same counters up to the fault.
    Program p = makeOobProgram();

    Interpreter tree(p);
    tree.setMode(InterpMode::Tree);
    Status ts = tree.run();
    ASSERT_FALSE(ts.ok());

    Interpreter tape(p);
    tape.setMode(InterpMode::Tape);
    EXPECT_GT(tape.compiledTape().guardedRefs(), 0);
    Status as = tape.run();
    ASSERT_FALSE(as.ok());

    EXPECT_EQ(ts.diag().str(), as.diag().str());
    EXPECT_EQ(tree.stats().stmtsExecuted, tape.stats().stmtsExecuted);
    EXPECT_EQ(tree.stats().memRefs, tape.stats().memRefs);
    EXPECT_EQ(tree.stats().loopIterations, tape.stats().loopIterations);
    EXPECT_EQ(tree.checksum(), tape.checksum());
}

TEST(Tape, ModZeroParity)
{
    // I MOD (I - I) faults at runtime; both engines must agree on the
    // diagnostic and on how much executed before it.
    ProgramBuilder b("modzero");
    Var n = b.param("N", 4);
    Arr a = b.array("A", {n});
    Var i = b.loopVar("I");
    b.add(b.loop(i, 1, n,
                 b.assign(a(i), imodv(Val(i), Val(i) - Val(i)))));
    Program p = b.finish();

    Interpreter tree(p);
    tree.setMode(InterpMode::Tree);
    Status ts = tree.run();
    ASSERT_FALSE(ts.ok());

    Interpreter tape(p);
    tape.setMode(InterpMode::Tape);
    Status as = tape.run();
    ASSERT_FALSE(as.ok());

    EXPECT_EQ(ts.diag().str(), as.diag().str());
    EXPECT_EQ(tree.stats().stmtsExecuted, tape.stats().stmtsExecuted);
}

/** Run `p` in `mode` under an iteration budget; returns the cancel
 *  kind (or nullopt if the run finished) and the iterations charged. */
std::pair<std::optional<harness::CancelKind>, uint64_t>
runUnderBudget(const Program &p, InterpMode mode, uint64_t maxIters)
{
    harness::Budget budget;
    budget.maxInterpIterations = maxIters;
    harness::CancelToken token(budget);
    harness::BudgetScope scope(&token);
    Interpreter interp(p);
    interp.setMode(mode);
    try {
        interp.run();
    } catch (const harness::CancelledError &e) {
        return {e.kind, token.iterationsUsed()};
    }
    return {std::nullopt, token.iterationsUsed()};
}

TEST(Tape, IterationBudgetParity)
{
    // 32^3 = 32768 iterations against a 5000-iteration budget: both
    // engines poll on the same 4096-iteration stride, so they cancel
    // at the same charge point.
    Program p = makeMatmul("JKI", 32);
    auto [treeKind, treeIters] =
        runUnderBudget(p, InterpMode::Tree, 5000);
    auto [tapeKind, tapeIters] =
        runUnderBudget(p, InterpMode::Tape, 5000);
    ASSERT_TRUE(treeKind.has_value());
    ASSERT_TRUE(tapeKind.has_value());
    EXPECT_EQ(*treeKind, harness::CancelKind::IterBudget);
    EXPECT_EQ(*tapeKind, harness::CancelKind::IterBudget);
    EXPECT_EQ(treeIters, tapeIters);
}

TEST(Tape, ExternalCancellationParity)
{
    // A pre-cancelled token stops both engines at their first poll.
    Program p = makeMatmul("JKI", 32);
    for (InterpMode mode : {InterpMode::Tree, InterpMode::Tape}) {
        harness::Budget budget;
        harness::CancelToken token(budget);
        token.cancel();
        harness::BudgetScope scope(&token);
        Interpreter interp(p);
        interp.setMode(mode);
        bool cancelled = false;
        try {
            interp.run();
        } catch (const harness::CancelledError &e) {
            cancelled = true;
            EXPECT_EQ(e.kind, harness::CancelKind::External)
                << interpModeName(mode);
        }
        EXPECT_TRUE(cancelled) << interpModeName(mode);
    }
}

TEST(Tape, SweepParityAcrossModes)
{
    // End to end: the full sweep result — stats, per-config cache
    // counters, cycles and checksum — is identical in both modes.
    std::vector<CacheConfig> configs = {CacheConfig::rs6000(),
                                        CacheConfig::i860()};
    for (const Program &p : samplePrograms()) {
        InterpMode saved = defaultInterpMode();
        setDefaultInterpMode(InterpMode::Tree);
        Result<SweepResult> tree = tryRunWithCaches(p, configs);
        setDefaultInterpMode(InterpMode::Tape);
        Result<SweepResult> tape = tryRunWithCaches(p, configs);
        setDefaultInterpMode(saved);

        ASSERT_EQ(tree.ok(), tape.ok()) << p.name;
        if (!tree.ok()) {
            EXPECT_EQ(tree.diag().str(), tape.diag().str()) << p.name;
            continue;
        }
        EXPECT_EQ(tree.value().checksum, tape.value().checksum)
            << p.name;
        EXPECT_EQ(tree.value().exec.memRefs, tape.value().exec.memRefs)
            << p.name;
        ASSERT_EQ(tree.value().cache.size(), tape.value().cache.size());
        for (size_t i = 0; i < configs.size(); ++i) {
            EXPECT_EQ(tree.value().cache[i].accesses,
                      tape.value().cache[i].accesses)
                << p.name;
            EXPECT_EQ(tree.value().cache[i].hits,
                      tape.value().cache[i].hits)
                << p.name;
            EXPECT_EQ(tree.value().cycles[i], tape.value().cycles[i])
                << p.name;
        }
    }
}

TEST(EquivJobs, ParallelRoundsAreDeterministic)
{
    // The oracle's verdict, counters and detail string must not
    // depend on the worker count.
    Program ref = makeMatmul("JKI", 8);
    Program sameValues = makeMatmul("IKJ", 8);
    Program broken = makeOobProgram();

    for (auto [a, b] : {std::pair<const Program *, const Program *>{
                            &ref, &sameValues},
                        {&ref, &broken}}) {
        EquivOptions serial;
        serial.jobs = 1;
        EquivResult r1 = checkEquivalence(*a, *b, serial);
        EquivOptions parallel;
        parallel.jobs = 4;
        EquivResult r4 = checkEquivalence(*a, *b, parallel);
        EXPECT_EQ(r1.equivalent, r4.equivalent);
        EXPECT_EQ(r1.comparedRuns, r4.comparedRuns);
        EXPECT_EQ(r1.skippedRuns, r4.skippedRuns);
        EXPECT_EQ(r1.detail, r4.detail);
    }
}

TEST(FuzzJobs, ParallelCampaignIsDeterministic)
{
    // Bitwise-identical report for every jobs value: counters,
    // message order, failure records.
    FuzzReport r1 = runFuzzCampaign(42, 8, {}, 1);
    FuzzReport r4 = runFuzzCampaign(42, 8, {}, 4);
    EXPECT_EQ(r1.programs, r4.programs);
    EXPECT_EQ(r1.validateFailures, r4.validateFailures);
    EXPECT_EQ(r1.roundTripFailures, r4.roundTripFailures);
    EXPECT_EQ(r1.equivFailures, r4.equivFailures);
    EXPECT_EQ(r1.rollbacks, r4.rollbacks);
    EXPECT_EQ(r1.messages, r4.messages);
    ASSERT_EQ(r1.failures.size(), r4.failures.size());
    for (size_t i = 0; i < r1.failures.size(); ++i) {
        EXPECT_EQ(r1.failures[i].seed, r4.failures[i].seed);
        EXPECT_EQ(r1.failures[i].kind, r4.failures[i].kind);
        EXPECT_EQ(r1.failures[i].detail, r4.failures[i].detail);
    }
}

} // namespace
} // namespace memoria
