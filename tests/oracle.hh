/**
 * @file
 * Brute-force dependence oracle for the test suite.
 *
 * Enumerates the entire iteration space of an (affine) program,
 * records every access with its loop-iteration snapshot, and derives
 * the exact set of data dependences. Tests require the analytical
 * dependence graph to *cover* the oracle (soundness); selected cases
 * also assert exactness.
 */

#ifndef MEMORIA_TESTS_ORACLE_HH
#define MEMORIA_TESTS_ORACLE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "dependence/graph.hh"
#include "ir/program.hh"
#include "ir/walk.hh"

namespace memoria {

/** One recorded access. */
struct OracleAccess
{
    const Statement *stmt = nullptr;
    const ArrayRef *ref = nullptr;
    bool isWrite = false;
    uint64_t location = 0;              ///< array id + linear index
    std::vector<Node *> loops;          ///< enclosing loops
    std::vector<int64_t> iters;         ///< loop variable values
    uint64_t time = 0;                  ///< execution order
};

/** A ground-truth dependence between two accesses. */
struct OracleDep
{
    const Statement *src = nullptr;
    const Statement *dst = nullptr;
    const ArrayRef *srcRef = nullptr;
    const ArrayRef *dstRef = nullptr;
    bool srcWrite = false;
    bool dstWrite = false;
    /** Iteration deltas over the common loops (dst minus src, in
     *  iteration counts). */
    std::vector<int64_t> dist;
};

/** Execute the program symbolically and record all accesses. */
std::vector<OracleAccess> oracleTrace(Program &prog);

/** All exact dependences (pairs touching one location, at least one
 *  write, ordered by execution time). Input (read-read) pairs are
 *  included when `includeInput`. */
std::vector<OracleDep> oracleDependences(Program &prog,
                                         bool includeInput = false);

/**
 * True when every oracle dependence is covered by some edge of the
 * analytical graph: same statements and refs, and the edge's vector
 * admits the observed iteration distances.
 */
bool graphCovers(const DependenceGraph &graph,
                 const std::vector<OracleDep> &deps,
                 std::string *firstMiss = nullptr);

} // namespace memoria

#endif // MEMORIA_TESTS_ORACLE_HH
