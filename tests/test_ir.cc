/** Unit tests for the IR: affine expressions, builder, printer, walk. */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/printer.hh"
#include "ir/walk.hh"
#include "suite/kernels.hh"

namespace memoria {
namespace {

TEST(AffineExpr, BasicsAndArithmetic)
{
    AffineExpr c(7);
    EXPECT_TRUE(c.isConstant());
    EXPECT_EQ(c.constant(), 7);

    AffineExpr x = AffineExpr::makeVar(0);
    AffineExpr y = AffineExpr::makeVar(1, 2);
    AffineExpr e = x + y + 3;  // x + 2y + 3
    EXPECT_EQ(e.coeff(0), 1);
    EXPECT_EQ(e.coeff(1), 2);
    EXPECT_EQ(e.coeff(5), 0);
    EXPECT_EQ(e.constant(), 3);
    EXPECT_FALSE(e.isConstant());

    AffineExpr f = e - x;  // 2y + 3
    EXPECT_EQ(f.coeff(0), 0);
    EXPECT_EQ(f.numVars(), 1u);

    AffineExpr g = e * -2;
    EXPECT_EQ(g.coeff(1), -4);
    EXPECT_EQ(g.constant(), -6);
}

TEST(AffineExpr, SubstituteAndEval)
{
    AffineExpr x = AffineExpr::makeVar(0);
    AffineExpr y = AffineExpr::makeVar(1);
    AffineExpr e = x * 2 + y + 1;

    // x := y + 3  =>  2y + 6 + y + 1 = 3y + 7
    AffineExpr s = e.substitute(0, y + 3);
    EXPECT_EQ(s.coeff(0), 0);
    EXPECT_EQ(s.coeff(1), 3);
    EXPECT_EQ(s.constant(), 7);

    int64_t v = e.eval([](VarId id) { return id == 0 ? 10 : 4; });
    EXPECT_EQ(v, 25);
}

TEST(AffineExpr, SingleVarDetection)
{
    AffineExpr x = AffineExpr::makeVar(2);
    EXPECT_TRUE(x.isSingleVar());
    EXPECT_FALSE((x * 2).isSingleVar());
    EXPECT_FALSE((x + 1).isSingleVar());
}

TEST(Builder, MatmulStructure)
{
    Program p = makeMatmul("JKI", 64);
    ASSERT_EQ(p.body.size(), 1u);
    Node *j = p.body[0].get();
    ASSERT_TRUE(j->isLoop());
    EXPECT_EQ(p.varName(j->var), "J");

    auto chain = perfectChain(j);
    ASSERT_EQ(chain.size(), 3u);
    EXPECT_EQ(p.varName(chain[1]->var), "K");
    EXPECT_EQ(p.varName(chain[2]->var), "I");

    auto stmts = collectStmts(*&p);
    ASSERT_EQ(stmts.size(), 1u);
    EXPECT_EQ(stmts[0].loops.size(), 3u);

    auto refs = collectRefs(stmts[0].node->stmt);
    // write C + reads C, A, B.
    ASSERT_EQ(refs.size(), 4u);
    EXPECT_TRUE(refs[0].isWrite);
}

TEST(Builder, ParamAndArrayDecl)
{
    ProgramBuilder b("t");
    Var n = b.param("N", 40);
    Arr a = b.array("A", {n, Ix(n) + 1});
    Program p = b.finish();
    EXPECT_EQ(p.vars[n.id].paramValue, 40);
    EXPECT_EQ(p.arrays[a.id].extents.size(), 2u);
    EXPECT_EQ(p.arrays[a.id].extents[1].constant(), 1);
}

TEST(Printer, MatmulRendering)
{
    Program p = makeMatmul("IJK", 8);
    std::string s = printProgram(p);
    EXPECT_NE(s.find("DO I = 1, N"), std::string::npos);
    EXPECT_NE(s.find("C(I,J) = (C(I,J) + A(I,K)*B(K,J))"),
              std::string::npos);
    EXPECT_NE(s.find("PARAMETER N = 8"), std::string::npos);
}

TEST(Printer, TriangularBounds)
{
    Program p = makeCholeskyKIJ(8);
    std::string s = printProgram(p);
    EXPECT_NE(s.find("DO I = K + 1, N"), std::string::npos);
    EXPECT_NE(s.find("DO J = K + 1, I"), std::string::npos);
    EXPECT_NE(s.find("SQRT"), std::string::npos);
}

TEST(Walk, DepthAndCounts)
{
    Program p = makeCholeskyKIJ(8);
    Node *k = p.body[0].get();
    EXPECT_EQ(loopDepth(*k), 3);
    EXPECT_EQ(countStmts(*k), 3);
    EXPECT_EQ(collectLoops(k).size(), 3u);
    // The K loop's perfect chain stops at K (its body has 2 items).
    EXPECT_EQ(perfectChain(k).size(), 1u);
}

TEST(Walk, CloneIsStructurallyEqual)
{
    Program p = makeAdiScalarized(16);
    Program q = p.clone();
    EXPECT_TRUE(structurallyEqual(p, q));

    // Mutating the clone breaks equality.
    q.body[0]->ub = q.body[0]->ub + 1;
    EXPECT_FALSE(structurallyEqual(p, q));
}

TEST(Walk, SubstituteVarRenamesEverywhere)
{
    Program p = makeMatmul("IJK", 8);
    Node *i = p.body[0].get();
    Node *j = i->body[0].get();
    // Rename J := J' where J' is a fresh variable id.
    VarId fresh = static_cast<VarId>(p.vars.size());
    p.vars.push_back({"J2", VarKind::LoopVar, 0, Poly()});
    substituteVar(*j, j->var, AffineExpr::makeVar(fresh));
    j->var = fresh;
    std::string s = printProgram(p);
    EXPECT_NE(s.find("C(I,J2)"), std::string::npos);
    EXPECT_EQ(s.find("C(I,J)"), std::string::npos);
}

TEST(Walk, UsesVar)
{
    Program p = makeMatmul("IJK", 8);
    Node *i = p.body[0].get();
    EXPECT_TRUE(usesVar(*i, i->var));
    VarId fresh = static_cast<VarId>(p.vars.size());
    p.vars.push_back({"Z", VarKind::LoopVar, 0, Poly()});
    EXPECT_FALSE(usesVar(*i, fresh));
}

TEST(Walk, PathRoundTrip)
{
    Program p = makeCholeskyKIJ(8);
    Node *k = p.body[0].get();
    auto stmts = collectStmts(k);
    ASSERT_EQ(stmts.size(), 3u);
    for (const auto &ctx : stmts) {
        std::vector<int> path;
        ASSERT_TRUE(pathFromRoot(*k, ctx.node, path));
        EXPECT_EQ(resolvePath(*k, path), ctx.node);
    }
}

TEST(Walk, OpaqueSubscriptRefsCollected)
{
    ProgramBuilder b("idx");
    Var n = b.param("N", 8);
    Arr a = b.array("A", {n});
    Arr ind = b.array("IND", {n});
    Var i = b.loopVar("I");
    // A([IND(I)]) = A([IND(I)]) + 1 : opaque subscript contains a load.
    Ref lhs = a.at({opaqueSub(Val(ind(i)))});
    b.add(b.loop(i, 1, n, b.assign(lhs, Val(lhs) + 1.0)));
    Program p = b.finish();

    auto stmts = collectStmts(p);
    auto refs = collectRefs(stmts[0].node->stmt);
    // write A + its inner IND load + read A + its inner IND load.
    EXPECT_EQ(refs.size(), 4u);
    EXPECT_FALSE(stmts[0].node->stmt.write.isAffine());
}

} // namespace
} // namespace memoria
