/** Dependence analysis tests: vectors, known SIV cases, oracle sweeps,
 *  legality predicates. */

#include <gtest/gtest.h>

#include "dependence/graph.hh"
#include "dependence/legality.hh"
#include "ir/builder.hh"
#include "oracle.hh"
#include "suite/kernels.hh"
#include "support/rng.hh"

namespace memoria {
namespace {

TEST(DepVector, LexPredicates)
{
    DepVector v;
    v.levels = {DepLevel::exact(0), DepLevel::exact(1)};
    EXPECT_TRUE(v.lexPositive());
    EXPECT_FALSE(v.maybeNegative());
    EXPECT_FALSE(v.allEq());
    EXPECT_EQ(v.carrierLevel(), 1);

    DepVector eq;
    eq.levels = {DepLevel::exact(0), DepLevel::exact(0)};
    EXPECT_TRUE(eq.allEq());
    EXPECT_FALSE(eq.lexPositive());
    EXPECT_FALSE(eq.maybeNegative());

    DepVector amb;
    amb.levels = {DepLevel::dir(kDirAll)};
    EXPECT_TRUE(amb.maybeNegative());
    EXPECT_FALSE(amb.lexPositive());

    DepVector neg;
    neg.levels = {DepLevel::exact(-1), DepLevel::exact(2)};
    EXPECT_TRUE(neg.maybeNegative());
    DepVector rev = neg.reversed();
    EXPECT_TRUE(rev.lexPositive());
    EXPECT_EQ(rev.levels[0].dist, 1);
    EXPECT_EQ(rev.levels[1].dist, -2);
}

TEST(DepVector, PermuteAndReverseLevel)
{
    DepVector v;
    v.levels = {DepLevel::exact(1), DepLevel::exact(-1)};
    DepVector p = v.permuted({1, 0});
    EXPECT_EQ(p.levels[0].dist, -1);
    EXPECT_TRUE(p.maybeNegative());

    DepVector r = v.withLevelReversed(1);
    EXPECT_EQ(r.levels[1].dist, 1);
    EXPECT_EQ(r.str(), "(1, 1)");
}

/** Helper: build a 2-deep nest over A with the two given refs. */
struct Pair2D
{
    Program prog;
    DependenceGraph *graph = nullptr;
};

TEST(DepTest, StrongSivDistance)
{
    // A(I,J) = A(I-1,J) + 1: flow dependence, distance (1, 0).
    ProgramBuilder b("siv");
    Var n = b.param("N", 16);
    Arr a = b.array("A", {n, n});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(i, 2, n,
                 b.loop(j, 1, n,
                        b.assign(a(i, j), a(Ix(i) - 1, j) + 1.0))));
    Program p = b.finish();
    DependenceGraph g(p, collectStmts(p));

    bool sawFlow = false;
    for (const auto &e : g.edges()) {
        if (e.type != DepType::Flow)
            continue;
        ASSERT_EQ(e.vec.levels.size(), 2u);
        EXPECT_TRUE(e.vec.levels[0].hasDist);
        EXPECT_EQ(e.vec.levels[0].dist, 1);
        EXPECT_EQ(e.vec.levels[1].dist, 0);
        sawFlow = true;
    }
    EXPECT_TRUE(sawFlow);
}

TEST(DepTest, ZivIndependence)
{
    // A(1,J) and A(2,J) never overlap.
    ProgramBuilder b("ziv");
    Var n = b.param("N", 8);
    Arr a = b.array("A", {n, n});
    Var j = b.loopVar("J");
    b.add(b.loop(j, 1, n, b.assign(a(1, j), a(2, j) + 1.0)));
    Program p = b.finish();
    DependenceGraph g(p, collectStmts(p));
    for (const auto &e : g.edges())
        EXPECT_EQ(e.type, DepType::Input) << e.vec.str();
}

TEST(DepTest, TriangularIndependence)
{
    // Inside DO K / DO I=K+1 / DO J=K+1,I: A(I,J) with J >= K+1 never
    // aliases column K of A(I,K) in the same K iteration. The engine
    // must prove the '=' direction at K infeasible via the triangular
    // bounds (this powers the Cholesky distribution).
    Program p = makeCholeskyKIJ(12);
    DependenceGraph g(p, collectStmts(p));
    // Every backward edge S3 -> S2 must be definitely carried by the K
    // loop (level 0): distribution of the I loop (level 1) drops such
    // edges, which is what makes the Figure 7 split legal.
    bool sawForward = false;
    for (const auto &e : g.edges()) {
        if (!e.constrains())
            continue;
        if (e.src->id == 2 && e.dst->id == 1) {
            EXPECT_TRUE(definitelyCarriedBefore(e, 1))
                << "S3->S2 edge would block distribution: "
                << e.vec.str();
        }
        if (e.src->id == 1 && e.dst->id == 2)
            sawForward = true;
    }
    EXPECT_TRUE(sawForward);
}

TEST(DepTest, OpaqueSubscriptsAreConservative)
{
    ProgramBuilder b("idx");
    Var n = b.param("N", 8);
    Arr a = b.array("A", {n});
    Arr ind = b.array("IND", {n});
    Var i = b.loopVar("I");
    Ref lhs = a.at({opaqueSub(Val(ind(i)))});
    b.add(b.loop(i, 1, n, b.assign(lhs, Val(lhs) + 1.0)));
    Program p = b.finish();
    DependenceGraph g(p, collectStmts(p));

    // The write must conservatively depend on itself across iterations.
    bool carriedOutput = false;
    for (const auto &e : g.edges())
        if (e.type == DepType::Output && !e.loopIndependent)
            carriedOutput = true;
    EXPECT_TRUE(carriedOutput);
}

TEST(DepTest, CoupledSubscriptsIndependent)
{
    // A(I, I) vs A(I, I+1): distances pinned per dim conflict -> none.
    ProgramBuilder b("coupled");
    Var n = b.param("N", 8);
    Arr a = b.array("A", {n, Ix(n) + 1});
    Var i = b.loopVar("I");
    b.add(b.loop(i, 1, n,
                 b.assign(a(i, i), a(i, Ix(i) + 1) + 1.0)));
    Program p = b.finish();
    DependenceGraph g(p, collectStmts(p));
    for (const auto &e : g.edges())
        EXPECT_FALSE(e.constrains() && !e.loopIndependent)
            << depTypeName(e.type) << " " << e.vec.str();
}

TEST(DepGraph, OracleCoversKernels)
{
    std::vector<Program> programs;
    programs.push_back(makeMatmul("IJK", 8));
    programs.push_back(makeMatmul("JKI", 8));
    programs.push_back(makeCholeskyKIJ(10));
    programs.push_back(makeCholeskyKJI(10));
    programs.push_back(makeAdiScalarized(9));
    programs.push_back(makeAdiFused(9));
    programs.push_back(makeGmtry(9));
    programs.push_back(makeSimpleHydro(9));
    programs.push_back(makeErlebacherDistributed(7));
    programs.push_back(makeJacobiBadOrder(9));

    for (auto &p : programs) {
        DependenceGraph g(p, collectStmts(p));
        auto deps = oracleDependences(p, /*includeInput=*/true);
        std::string miss;
        EXPECT_TRUE(graphCovers(g, deps, &miss))
            << p.name << ": " << miss;
    }
}

/** Property sweep: random rectangular 2-3 deep nests with shifted
 *  subscripts; every oracle dependence must be covered. */
class RandomNestSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomNestSweep, GraphCoversOracle)
{
    Rng rng(1234 + GetParam());
    ProgramBuilder b("rand");
    Var n = b.param("N", 7);
    Arr a = b.array("A", {Ix(n) + 4, Ix(n) + 4});
    Arr c = b.array("C", {Ix(n) + 4, Ix(n) + 4});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");

    auto randSub = [&](Var v) {
        // v + shift in [-2, 2] (kept in bounds by the +4 extents).
        return Ix(v) + static_cast<int64_t>(rng.range(0, 4));
    };
    Arr arr0 = rng.chance(1, 2) ? a : c;
    Arr arr1 = rng.chance(1, 2) ? a : c;
    NodePtr s1 = b.assign(arr0(randSub(i), randSub(j)),
                          arr1(randSub(i), randSub(j)) + 1.0);
    NodePtr s2 = b.assign(arr1(randSub(j), randSub(i)),
                          arr0(randSub(i), randSub(j)) * 2.0);
    std::vector<NodePtr> body;
    body.push_back(std::move(s1));
    body.push_back(std::move(s2));
    b.add(b.loop(i, 1, n, b.loop(j, 1, n, std::move(body))));
    Program p = b.finish();

    DependenceGraph g(p, collectStmts(p));
    auto deps = oracleDependences(p, true);
    std::string miss;
    EXPECT_TRUE(graphCovers(g, deps, &miss)) << miss;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNestSweep, ::testing::Range(0, 40));

TEST(Legality, InterchangeBlockedByAntidiagonalDep)
{
    // A(I,J) = A(I-1,J+1): distance (1,-1); interchange is illegal.
    ProgramBuilder b("wave");
    Var n = b.param("N", 8);
    Arr a = b.array("A", {Ix(n) + 2, Ix(n) + 2});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(i, 2, n,
                 b.loop(j, 1, n,
                        b.assign(a(i, j),
                                 a(Ix(i) - 1, Ix(j) + 1) + 1.0))));
    Program p = b.finish();
    DependenceGraph g(p, collectStmts(p));
    EXPECT_FALSE(permutationLegal(g.edges(), {1, 0}));
    EXPECT_TRUE(permutationLegal(g.edges(), {0, 1}));
    // Reversing J makes the vector (1,1): interchange stays illegal but
    // reversal itself is fine.
    EXPECT_TRUE(reversalLegal(g.edges(), 1));
    EXPECT_FALSE(reversalLegal(g.edges(), 0));
}

TEST(Legality, MatmulFullyPermutable)
{
    Program p = makeMatmul("IJK", 8);
    DependenceGraph g(p, collectStmts(p));
    std::vector<std::vector<int>> perms = {{0, 1, 2}, {0, 2, 1},
                                           {1, 0, 2}, {1, 2, 0},
                                           {2, 0, 1}, {2, 1, 0}};
    for (const auto &perm : perms)
        EXPECT_TRUE(permutationLegal(g.edges(), perm));
}

TEST(Legality, PrefixFeasibility)
{
    // Vector (1,-1): prefix [1] (J first) is infeasible, [0] is fine.
    ProgramBuilder b("wave2");
    Var n = b.param("N", 8);
    Arr a = b.array("A", {Ix(n) + 2, Ix(n) + 2});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(i, 2, n,
                 b.loop(j, 1, n,
                        b.assign(a(i, j),
                                 a(Ix(i) - 1, Ix(j) + 1) + 1.0))));
    Program p = b.finish();
    DependenceGraph g(p, collectStmts(p));
    EXPECT_FALSE(prefixFeasible(g.edges(), {1}));
    EXPECT_TRUE(prefixFeasible(g.edges(), {0}));
    EXPECT_TRUE(prefixFeasible(g.edges(), {0, 1}));
}

TEST(Scc, RecurrenceDetection)
{
    // S1 feeds S2 and S2 feeds S1 across iterations: one SCC.
    ProgramBuilder b("rec");
    Var n = b.param("N", 8);
    Arr a = b.array("A", {Ix(n) + 2});
    Arr c = b.array("C", {Ix(n) + 2});
    Var i = b.loopVar("I");
    NodePtr s1 = b.assign(a(i), c(Ix(i) - 1) + 1.0);
    NodePtr s2 = b.assign(c(i), a(i) * 2.0);
    std::vector<NodePtr> body;
    body.push_back(std::move(s1));
    body.push_back(std::move(s2));
    b.add(b.loop(i, 2, n, std::move(body)));
    Program p = b.finish();
    DependenceGraph g(p, collectStmts(p));
    auto comps = g.sccs([](const DepEdge &) { return true; });
    ASSERT_EQ(comps.size(), 1u);
    EXPECT_EQ(comps[0].size(), 2u);
}

TEST(Scc, IndependentStatementsSplit)
{
    ProgramBuilder b("indep");
    Var n = b.param("N", 8);
    Arr a = b.array("A", {n});
    Arr c = b.array("C", {n});
    Var i = b.loopVar("I");
    NodePtr s1 = b.assign(a(i), Val(i));
    NodePtr s2 = b.assign(c(i), a(i) + 1.0);
    std::vector<NodePtr> body;
    body.push_back(std::move(s1));
    body.push_back(std::move(s2));
    b.add(b.loop(i, 1, n, std::move(body)));
    Program p = b.finish();
    DependenceGraph g(p, collectStmts(p));
    auto comps = g.sccs([](const DepEdge &) { return true; });
    ASSERT_EQ(comps.size(), 2u);
    // Topological order: the producer S1 comes first.
    EXPECT_EQ(comps[0], std::vector<int>{0});
    EXPECT_EQ(comps[1], std::vector<int>{1});
}

} // namespace
} // namespace memoria
