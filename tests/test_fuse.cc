/** Fusion tests: compatibility, legality, profitability, rewriting. */

#include <gtest/gtest.h>

#include "interp/interp.hh"
#include "ir/builder.hh"
#include "ir/printer.hh"
#include "ir/walk.hh"
#include "suite/kernels.hh"
#include "transform/fuse.hh"

namespace memoria {
namespace {

ModelParams
cls4()
{
    ModelParams p;
    p.lineBytes = 32;
    return p;
}

TEST(Fuse, HeaderCompatibility)
{
    ProgramBuilder b("hdr");
    Var n = b.param("N", 16);
    Arr a = b.array("A", {Ix(n) + 1});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    NodePtr l1 = b.loop(i, 1, n, b.assign(a(i), Val(i)));
    NodePtr l2 = b.loop(j, 1, n, b.assign(a(j), Val(j)));
    NodePtr l3 = b.loop(j, 2, Ix(n) + 1, b.assign(a(j), Val(j)));
    NodePtr l4 = b.loop(j, 1, Ix(n) - 1, b.assign(a(j), Val(j)));

    EXPECT_TRUE(headersCompatible(*l1, *l2));  // same range
    EXPECT_TRUE(headersCompatible(*l1, *l3));  // shifted, same trip
    EXPECT_FALSE(headersCompatible(*l1, *l4)); // different trip
}

TEST(Fuse, MergeRenamesAndShifts)
{
    // DO I=1,N: A(I)=I  and  DO J=2,N+1: B(J)=A(J-1) fuse into one loop
    // with B's subscripts shifted onto I.
    ProgramBuilder b("merge");
    Var n = b.param("N", 8);
    Arr a = b.array("A", {Ix(n) + 1});
    Arr c = b.array("B", {Ix(n) + 2});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(i, 1, n, b.assign(a(i), Val(i))));
    b.add(b.loop(j, 2, Ix(n) + 1, b.assign(c(j), a(Ix(j) - 1))));
    Program p = b.finish();
    uint64_t before = runChecksum(p);

    Node *l1 = p.body[0].get();
    ASSERT_TRUE(fusionLegal(p, *l1, *p.body[1], {}));
    mergeLoops(*l1, std::move(p.body[1]));
    p.body.erase(p.body.begin() + 1);

    EXPECT_EQ(p.body.size(), 1u);
    EXPECT_EQ(countStmts(*p.body[0]), 2);
    std::string s = printProgram(p);
    EXPECT_NE(s.find("B(I + 1) = A(I)"), std::string::npos);
    EXPECT_EQ(runChecksum(p), before);
}

TEST(Fuse, BackwardDependencePreventsFusion)
{
    // L1 reads A(I-1); L2 writes A(I). In the original, every read
    // sees the initial A values. Fused, the read at iteration i would
    // see A(i-1) freshly written at iteration i-1: the anti dependence
    // L1 -> L2 reverses into a flow dependence. Illegal [War84].
    ProgramBuilder b("prevent");
    Var n = b.param("N", 8);
    Arr a = b.array("A", {Ix(n) + 2});
    Arr c = b.array("C", {Ix(n) + 2});
    Var i = b.loopVar("I");
    b.add(b.loop(i, 2, n, b.assign(c(i), a(Ix(i) - 1))));
    b.add(b.loop(i, 2, n, b.assign(a(i), c(i) * 2.0)));
    Program p = b.finish();
    EXPECT_FALSE(fusionLegal(p, *p.body[0], *p.body[1], {}));

    // Reading A(I+1) instead keeps every read ahead of the write that
    // replaces it: fusion stays legal.
    ProgramBuilder b2("fine");
    Var n2 = b2.param("N", 8);
    Arr a2 = b2.array("A", {Ix(n2) + 2});
    Arr c2 = b2.array("C", {Ix(n2) + 2});
    Var i2 = b2.loopVar("I");
    b2.add(b2.loop(i2, 1, n2, b2.assign(c2(i2), a2(Ix(i2) + 1))));
    b2.add(b2.loop(i2, 1, n2, b2.assign(a2(i2), c2(i2) * 2.0)));
    Program p2 = b2.finish();
    EXPECT_TRUE(fusionLegal(p2, *p2.body[0], *p2.body[1], {}));
}

TEST(Fuse, ForwardDependenceAllowsFusion)
{
    ProgramBuilder b("allow");
    Var n = b.param("N", 8);
    Arr a = b.array("A", {Ix(n) + 2});
    Arr c = b.array("C", {Ix(n) + 2});
    Var i = b.loopVar("I");
    b.add(b.loop(i, 1, n, b.assign(a(i), Val(i))));
    b.add(b.loop(i, 1, n, b.assign(c(i), a(i) + a(Ix(i) - 1 + 1))));
    Program p = b.finish();
    EXPECT_TRUE(fusionLegal(p, *p.body[0], *p.body[1], {}));
}

TEST(Fuse, AdiProfitability)
{
    // Figure 3: fusing the two K loops lowers LoopCost from 5n^2 to
    // 3n^2 -> profitable.
    Program p = makeAdiScalarized(64);
    Node *iLoop = p.body[0].get();
    Node *k1 = iLoop->body[0].get();
    Node *k2 = iLoop->body[1].get();
    EXPECT_TRUE(fusionProfitable(p, *k1, *k2, {iLoop}, cls4()));
}

TEST(Fuse, UnrelatedNestsNotProfitable)
{
    // No shared arrays: fusion gains nothing.
    ProgramBuilder b("noshare");
    Var n = b.param("N", 16);
    Arr a = b.array("A", {n, n});
    Arr c = b.array("C", {n, n});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(j, 1, n, b.loop(i, 1, n, b.assign(a(i, j), 1.0))));
    b.add(b.loop(j, 1, n, b.loop(i, 1, n, b.assign(c(i, j), 2.0))));
    Program p = b.finish();
    EXPECT_FALSE(
        fusionProfitable(p, *p.body[0], *p.body[1], {}, cls4()));
}

TEST(Fuse, FuseAllInnerMakesAdiPerfect)
{
    Program p = makeAdiScalarized(16);
    uint64_t before = runChecksum(p);
    Node *iLoop = p.body[0].get();
    ASSERT_TRUE(fuseAllInner(p, *iLoop, {}, cls4()));
    EXPECT_EQ(perfectChain(iLoop).size(), 2u);
    EXPECT_EQ(countStmts(*iLoop), 2);
    EXPECT_EQ(runChecksum(p), before);
}

TEST(Fuse, FuseAllInnerRefusesMixedBody)
{
    Program p = makeCholeskyKIJ(8);
    Node *k = p.body[0].get();
    // Body is {S1, DO I}: cannot be made perfect by fusion.
    EXPECT_FALSE(fuseAllInner(p, *k, {}, cls4()));
}

TEST(Fuse, SiblingsGreedyOnErlebacher)
{
    Program p = makeErlebacherDistributed(10);
    uint64_t before = runChecksum(p);
    size_t nestsBefore = p.body.size();

    FuseStats stats = fuseSiblings(p, p.body, {}, cls4(), true);
    EXPECT_GT(stats.candidates, 0);
    EXPECT_GT(stats.fused, 0);
    EXPECT_LT(p.body.size(), nestsBefore);
    EXPECT_EQ(runChecksum(p), before);
}

TEST(Fuse, SiblingsPreserveJacobiSemantics)
{
    // The two Jacobi nests must NOT fuse at the innermost level into a
    // same-iteration pair (U(i,j)=V(i,j) reads neighbours); whatever
    // the pass decides, semantics hold.
    Program p = makeJacobiBadOrder(12);
    uint64_t before = runChecksum(p);
    fuseSiblings(p, p.body, {}, cls4(), true);
    EXPECT_EQ(runChecksum(p), before);
}

TEST(Fuse, StatsAccumulate)
{
    FuseStats a{2, 2};
    FuseStats b{3, 0};
    a += b;
    EXPECT_EQ(a.candidates, 5);
    EXPECT_EQ(a.fused, 2);
}

} // namespace
} // namespace memoria
