/** Unit tests for the support module: Poly, TextTable, Rng. */

#include <gtest/gtest.h>

#include "support/poly.hh"
#include "support/rng.hh"
#include "support/table.hh"

namespace memoria {
namespace {

TEST(Poly, ConstantBasics)
{
    Poly zero;
    EXPECT_TRUE(zero.isZero());
    EXPECT_EQ(zero.degree(), -1);
    EXPECT_DOUBLE_EQ(zero.eval(100.0), 0.0);

    Poly five(5.0);
    EXPECT_TRUE(five.isConstant());
    EXPECT_EQ(five.degree(), 0);
    EXPECT_DOUBLE_EQ(five.eval(3.0), 5.0);
}

TEST(Poly, ArithmeticAndEval)
{
    Poly n = Poly::sym();
    Poly p = n * n * 2.0 + n + Poly(1.0);  // 2n^2 + n + 1
    EXPECT_EQ(p.degree(), 2);
    EXPECT_DOUBLE_EQ(p.eval(10.0), 211.0);

    Poly q = p - Poly::term(2.0, 2);  // n + 1
    EXPECT_EQ(q.degree(), 1);
    EXPECT_DOUBLE_EQ(q.eval(4.0), 5.0);

    Poly prod = q * q;  // n^2 + 2n + 1
    EXPECT_DOUBLE_EQ(prod.eval(3.0), 16.0);

    Poly half = n / 2.0;
    EXPECT_DOUBLE_EQ(half.eval(8.0), 4.0);
}

TEST(Poly, DominatingTermComparison)
{
    Poly n = Poly::sym();
    Poly cube = n * n * n;                   // n^3
    Poly bigSquare = n * n * 1000.0;         // 1000 n^2
    EXPECT_TRUE(bigSquare < cube);
    EXPECT_TRUE(cube > bigSquare);

    Poly a = n * n * 2.0 + n;        // 2n^2 + n
    Poly b = n * n * 2.0 + n * 3.0;  // 2n^2 + 3n
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(a <= b);
    EXPECT_FALSE(a == b);
    EXPECT_TRUE(a == a);
}

TEST(Poly, CancellationTrims)
{
    Poly n = Poly::sym();
    Poly p = n * n - n * n;
    EXPECT_TRUE(p.isZero());
    EXPECT_EQ((n - n).degree(), -1);
}

TEST(Poly, Render)
{
    Poly n = Poly::sym();
    EXPECT_EQ((n * n * 2.0 + Poly(1.0)).str(), "2n^2 + 1");
    EXPECT_EQ((n * n * n).str(), "n^3");
    EXPECT_EQ(Poly().str(), "0");
    EXPECT_EQ((n / 4.0).str(), "0.25n");
}

TEST(Poly, FromCoeffs)
{
    Poly p = Poly::fromCoeffs({1.0, 0.0, 3.0});
    EXPECT_EQ(p.degree(), 2);
    EXPECT_DOUBLE_EQ(p.coeff(2), 3.0);
    EXPECT_DOUBLE_EQ(p.coeff(1), 0.0);
    EXPECT_DOUBLE_EQ(p.coeff(0), 1.0);
    EXPECT_DOUBLE_EQ(p.coeff(7), 0.0);
}

TEST(Rng, DeterministicAndBounded)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    Rng c(7);
    for (int i = 0; i < 1000; ++i) {
        int64_t v = c.range(3, 9);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool anyDiff = false;
    for (int i = 0; i < 10; ++i)
        anyDiff |= (a.next() != b.next());
    EXPECT_TRUE(anyDiff);
}

TEST(TextTable, RendersAlignedRows)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRule();
    t.addRow({"b", "22"});
    std::string s = t.str();
    EXPECT_NE(s.find("| name  | value |"), std::string::npos);
    EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
    EXPECT_NE(s.find("| b     | 22    |"), std::string::npos);
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::pct(99.951, 2), "99.95");
}

TEST(AsciiBar, Clamps)
{
    EXPECT_EQ(asciiBar(0.5, 10), "#####     ");
    EXPECT_EQ(asciiBar(2.0, 4), "####");
    EXPECT_EQ(asciiBar(-1.0, 4), "    ");
}

} // namespace
} // namespace memoria
