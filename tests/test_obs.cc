/** Unit tests for the observability subsystem: trace spans and sinks,
 *  the stats registry, logging verbosity, and the golden Compound
 *  decision-provenance trace. */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstring>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "driver/memoria.hh"
#include "suite/kernels.hh"
#include "support/export.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/trace.hh"
#include "transform/compound.hh"

namespace memoria {
namespace {

/** Installs a RecordingSink for the test's lifetime. */
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto sink = std::make_unique<obs::RecordingSink>();
        rec_ = sink.get();
        obs::setTraceSink(std::move(sink));
        obs::statsRegistry().resetValues();
    }

    void
    TearDown() override
    {
        obs::setTraceSink(nullptr);
        obs::statsRegistry().resetValues();
        setLogLevel(LogLevel::Warn);
    }

    /** Completed spans (SpanEnd records) matching category/name. */
    std::vector<obs::TraceEvent>
    spans(const std::string &cat, const std::string &name) const
    {
        std::vector<obs::TraceEvent> out;
        for (const auto &e : rec_->events)
            if (e.type == obs::TraceEvent::Type::SpanEnd &&
                e.category == cat && e.name == name)
                out.push_back(e);
        return out;
    }

    /** Rendered value of one payload key ("" when absent). */
    static std::string
    argOf(const obs::TraceEvent &e, const std::string &key)
    {
        for (const auto &[k, v] : e.args)
            if (k == key)
                return v.render();
        return "";
    }

    obs::RecordingSink *rec_ = nullptr;
};

// ---------------------------------------------------------------------
// Spans and events

TEST_F(ObsTest, SpanNestingDepthAndTiming)
{
    {
        obs::TraceScope outer("t", "outer");
        outer.arg("k", int64_t(1));
        {
            obs::TraceScope inner("t", "inner");
            obs::traceEvent("t", "point", {{"x", 42}});
        }
    }
    ASSERT_EQ(rec_->events.size(), 5u);  // begin begin event end end

    const auto &beginOuter = rec_->events[0];
    const auto &beginInner = rec_->events[1];
    const auto &point = rec_->events[2];
    const auto &endInner = rec_->events[3];
    const auto &endOuter = rec_->events[4];

    EXPECT_EQ(beginOuter.type, obs::TraceEvent::Type::SpanBegin);
    EXPECT_EQ(beginOuter.depth, 0);
    EXPECT_EQ(beginInner.depth, 1);
    EXPECT_EQ(point.depth, 2);
    EXPECT_EQ(point.type, obs::TraceEvent::Type::Event);
    EXPECT_EQ(endInner.name, "inner");
    EXPECT_EQ(endInner.depth, 1);
    EXPECT_EQ(endOuter.name, "outer");
    EXPECT_EQ(endOuter.depth, 0);

    // Timing: the outer span contains the inner one.
    EXPECT_GE(endInner.durationUs, 0.0);
    EXPECT_GE(endOuter.durationUs, endInner.durationUs);

    // Sequence numbers increase monotonically.
    for (size_t i = 1; i < rec_->events.size(); ++i)
        EXPECT_GT(rec_->events[i].seq, rec_->events[i - 1].seq);

    EXPECT_EQ(argOf(endOuter, "k"), "1");
}

TEST_F(ObsTest, DisabledTracingIsInert)
{
    obs::setTraceSink(nullptr);
    EXPECT_FALSE(obs::tracingEnabled());
    obs::traceEvent("t", "dropped");
    obs::TraceScope s("t", "dropped");
    EXPECT_FALSE(s.active());
    s.arg("k", 1);  // must not crash
}

// ---------------------------------------------------------------------
// Stats registry

TEST_F(ObsTest, CounterRegistrationAndDump)
{
    obs::Counter &c = obs::counter("test.alpha");
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    // Lazy find-or-create returns the same object.
    EXPECT_EQ(&obs::counter("test.alpha"), &c);

    obs::gauge("test.level").set(2.5);
    obs::histogram("test.times").sample(2.0);
    obs::histogram("test.times").sample(4.0);

    std::ostringstream text;
    obs::statsRegistry().dumpText(text);
    EXPECT_NE(text.str().find("test.alpha"), std::string::npos);
    EXPECT_NE(text.str().find("5"), std::string::npos);

    std::ostringstream json;
    obs::statsRegistry().dumpJson(json);
    EXPECT_NE(json.str().find("\"test.alpha\":5"), std::string::npos);
    EXPECT_NE(json.str().find("\"test.level\":2.5"), std::string::npos);
    EXPECT_NE(json.str().find("\"count\":2"), std::string::npos);

    EXPECT_DOUBLE_EQ(obs::histogram("test.times").mean(), 3.0);
    EXPECT_DOUBLE_EQ(obs::histogram("test.times").min(), 2.0);
    EXPECT_DOUBLE_EQ(obs::histogram("test.times").max(), 4.0);

    // resetValues zeroes values but keeps references valid.
    obs::statsRegistry().resetValues();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(obs::histogram("test.times").count(), 0u);
}

// ---------------------------------------------------------------------
// JSON-lines sink well-formedness

/** Minimal JSON syntax checker (RFC 8259 subset, enough to validate the
 *  sink's output without a library dependency). */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &s) : s_(s) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        char c = s_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    bool
    object()
    {
        ++pos_;  // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_;  // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            unsigned char c = s_[pos_];
            if (c < 0x20)
                return false;  // raw control char: invalid JSON
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= s_.size() ||
                            !isxdigit(static_cast<unsigned char>(s_[pos_])))
                            return false;
                    }
                } else if (!strchr("\"\\/bfnrt", e)) {
                    return false;
                }
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_;  // closing quote
        return true;
    }

    bool
    number()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            while (isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            while (isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        size_t len = strlen(word);
        if (s_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    char
    peek() const
    {
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    size_t pos_ = 0;
};

TEST_F(ObsTest, JsonLinesSinkEveryLineParses)
{
    std::ostringstream out;
    obs::setTraceSink(std::make_unique<obs::JsonLinesSink>(out));

    // Hostile payloads: quotes, backslashes, newlines, control chars,
    // every value type, nested spans.
    {
        obs::TraceScope s("cat/with\"quote", "span\\name");
        s.arg("str", std::string("line1\nline2\t\"quoted\" \\ \x01"));
        s.arg("int", int64_t(-7));
        s.arg("float", 2.5);
        s.arg("bool", true);
        obs::traceEvent("ev", "empty-args");
        obs::traceEvent("ev", "more", {{"k", "v"}, {"n", 0}});
    }
    obs::setTraceSink(nullptr);

    std::istringstream lines(out.str());
    std::string line;
    int count = 0;
    while (std::getline(lines, line)) {
        ++count;
        EXPECT_TRUE(JsonChecker(line).valid()) << "bad JSON: " << line;
    }
    EXPECT_EQ(count, 4);  // begin + 2 events + span end
}

TEST_F(ObsTest, FullPipelineTraceIsValidJsonLines)
{
    std::ostringstream out;
    obs::setTraceSink(std::make_unique<obs::JsonLinesSink>(out));

    Program p = makeMatmul("IKJ", 12);
    ModelParams params;
    OptimizedProgram opt = optimizeProgram(p, params);
    simulateHitRates(opt, CacheConfig::i860());
    obs::setTraceSink(nullptr);

    std::istringstream lines(out.str());
    std::string line;
    int count = 0;
    while (std::getline(lines, line)) {
        ++count;
        ASSERT_TRUE(JsonChecker(line).valid()) << "bad JSON: " << line;
    }
    EXPECT_GT(count, 10);
}

// ---------------------------------------------------------------------
// Golden decision provenance

TEST_F(ObsTest, MatmulJkiGoldenProvenance)
{
    // JKI is already memory order for column-major matmul: Compound
    // must record exactly one nest span, memory order JKI, untouched.
    Program p = makeMatmul("JKI", 16);
    ModelParams params;
    params.lineBytes = 32;
    compoundTransform(p, params);

    auto nests = spans("pass.compound", "nest");
    ASSERT_EQ(nests.size(), 1u);
    const auto &nest = nests[0];
    EXPECT_EQ(argOf(nest, "memory_order"), "JKI");
    EXPECT_EQ(argOf(nest, "strategy"), "none");
    EXPECT_EQ(argOf(nest, "fail"), "none");
    EXPECT_EQ(argOf(nest, "orig_memory_order"), "true");
    EXPECT_EQ(argOf(nest, "final_memory_order"), "true");
    EXPECT_EQ(argOf(nest, "depth"), "3");
    EXPECT_NE(argOf(nest, "orig_cost"), "");
    EXPECT_EQ(argOf(nest, "orig_cost"), argOf(nest, "final_cost"));
}

TEST_F(ObsTest, MatmulWorstOrderRecordsOnePermutation)
{
    // IKJ must be permuted into memory order: exactly one nest span
    // with strategy "permute" and the JKI target, and exactly one
    // applied permutation counted.
    Program p = makeMatmul("IKJ", 16);
    ModelParams params;
    params.lineBytes = 32;
    compoundTransform(p, params);

    auto nests = spans("pass.compound", "nest");
    ASSERT_EQ(nests.size(), 1u);
    const auto &nest = nests[0];
    EXPECT_EQ(argOf(nest, "memory_order"), "JKI");
    EXPECT_EQ(argOf(nest, "strategy"), "permute");
    EXPECT_EQ(argOf(nest, "fail"), "none");
    EXPECT_EQ(argOf(nest, "orig_memory_order"), "false");
    EXPECT_EQ(argOf(nest, "final_memory_order"), "true");

    EXPECT_EQ(obs::counter("pass.permute.applied").value(), 1u);
    EXPECT_EQ(obs::counter("pass.compound.nests_permuted").value(), 1u);

    // The symbolic costs in the span match the paper's table: the
    // final/ideal cost drops below the original.
    EXPECT_NE(argOf(nest, "orig_cost"), argOf(nest, "final_cost"));
    EXPECT_EQ(argOf(nest, "final_cost"), argOf(nest, "ideal_cost"));
}

// ---------------------------------------------------------------------
// Cache counter reconciliation

TEST_F(ObsTest, CacheCountersReconcileWithHitRates)
{
    Program p = makeMatmul("IKJ", 16);
    ModelParams params;
    OptimizedProgram opt = optimizeProgram(p, params);

    obs::statsRegistry().resetValues();
    HitRates rates = simulateHitRates(opt, CacheConfig::i860());

    uint64_t accesses = obs::counter("cachesim.accesses").value();
    uint64_t hits = obs::counter("cachesim.hits").value();
    uint64_t misses = obs::counter("cachesim.misses").value();
    uint64_t cold = obs::counter("cachesim.cold_misses").value();
    uint64_t evictions = obs::counter("cachesim.evictions").value();

    EXPECT_GT(accesses, 0u);
    EXPECT_EQ(hits + misses, accesses);
    EXPECT_LE(cold, misses);
    EXPECT_LE(evictions, misses);

    // The published aggregate must reproduce the Table 4 whole-program
    // computation when re-derived per run.
    RunResult orig = runWithCache(opt.original, CacheConfig::i860());
    orig.cache.checkConsistent();
    double warmRate = orig.cache.hitRateWarm();
    EXPECT_NEAR(warmRate, rates.wholeOrig, 1e-9);
}

TEST_F(ObsTest, CacheStatsConsistencyChecked)
{
    CacheStats s;
    s.accesses = 10;
    s.hits = 6;
    s.misses = 4;
    s.coldMisses = 2;
    s.evictions = 1;
    s.checkConsistent();  // must not panic

    s.misses = 5;  // now hits + misses != accesses
    EXPECT_DEATH(s.checkConsistent(), "out of sync");
}

// ---------------------------------------------------------------------
// Logging verbosity and crash flushing

TEST_F(ObsTest, LogLevelGatesStderrButAlwaysTraces)
{
    setLogLevel(LogLevel::Quiet);
    testing::internal::CaptureStderr();
    warn("w1");
    inform("i1");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

    setLogLevel(LogLevel::Info);
    testing::internal::CaptureStderr();
    warn("w2");
    inform("i2");
    debugLog("d2");
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("warn: w2"), std::string::npos);
    EXPECT_NE(err.find("info: i2"), std::string::npos);
    EXPECT_EQ(err.find("debug: d2"), std::string::npos);

    // Every message was mirrored into the trace sink regardless.
    int logEvents = 0;
    for (const auto &e : rec_->events)
        if (e.category == "log")
            ++logEvents;
    EXPECT_EQ(logEvents, 5);
}

TEST_F(ObsTest, FatalFlushesTraceSinkBeforeExit)
{
    // In the death-test child, install a JSON sink writing to a file;
    // fatal() must flush it so the trace survives the exit.
    EXPECT_EXIT(
        {
            obs::setTraceSink(std::make_unique<obs::JsonLinesSink>(
                "/tmp/memoria_fatal_trace_test.jsonl"));
            obs::traceEvent("t", "before-crash", {{"k", 1}});
            fatal("boom");
        },
        testing::ExitedWithCode(1), "fatal: boom");

    std::ifstream in("/tmp/memoria_fatal_trace_test.jsonl");
    ASSERT_TRUE(in.good());
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);  // the event + the fatal log event
    for (const auto &l : lines)
        EXPECT_TRUE(JsonChecker(l).valid()) << l;
    EXPECT_NE(lines[1].find("boom"), std::string::npos);
}

// ---------------------------------------------------------------------
// Histogram buckets and quantiles

TEST_F(ObsTest, HistogramBucketEdgesArePinned)
{
    // The exposition format promises stable bucket boundaries across
    // processes and versions: half-octave powers of two.
    using H = obs::Histogram;
    EXPECT_DOUBLE_EQ(H::bucketUpperEdge(0), 1.0);
    EXPECT_DOUBLE_EQ(H::bucketUpperEdge(1), std::sqrt(2.0));
    EXPECT_DOUBLE_EQ(H::bucketUpperEdge(2), 2.0);
    EXPECT_DOUBLE_EQ(H::bucketUpperEdge(4), 4.0);
    EXPECT_DOUBLE_EQ(H::bucketUpperEdge(20), 1024.0);
    EXPECT_DOUBLE_EQ(H::bucketUpperEdge(62), 2147483648.0);
    EXPECT_TRUE(std::isinf(H::bucketUpperEdge(63)));

    // Every sample lands in the bucket whose [lower, upper) range
    // holds it, for values spanning the whole scale.
    for (double v : {-3.0, 0.0, 0.5, 1.0, 1.41, 2.0, 3.0, 100.0,
                     1e6, 3e9, 1e30}) {
        int b = H::bucketIndex(v);
        ASSERT_GE(b, 0);
        ASSERT_LT(b, H::kNumBuckets);
        EXPECT_LT(v, H::bucketUpperEdge(b)) << v;
        if (b > 0) {
            EXPECT_GE(v, H::bucketUpperEdge(b - 1)) << v;
        }
    }
}

TEST_F(ObsTest, HistogramQuantilesWithinOneBucket)
{
    obs::Histogram &h = obs::histogram("test.quantiles");
    for (int i = 1; i <= 1000; ++i)
        h.sample(static_cast<double>(i));

    // Log-scaled buckets bound the relative error at one half-octave
    // (a factor of sqrt(2)), and interpolation does better; allow the
    // full bucket width.
    for (double q : {0.5, 0.9, 0.99}) {
        double want = q * 1000.0;
        double got = h.quantile(q);
        EXPECT_GE(got, want / std::sqrt(2.0)) << "q=" << q;
        EXPECT_LE(got, want * std::sqrt(2.0)) << "q=" << q;
    }
    // Extremes clamp to the observed range.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);

    // dumpJson publishes the quantiles alongside count/sum.
    std::ostringstream json;
    obs::statsRegistry().dumpJson(json);
    EXPECT_NE(json.str().find("\"p50\":"), std::string::npos);
    EXPECT_NE(json.str().find("\"p99\":"), std::string::npos);
}

// ---------------------------------------------------------------------
// Request-scoped trace context

TEST_F(ObsTest, TraceContextStampsEveryNestedEvent)
{
    {
        obs::TraceContextScope ctx("tREQ42");
        obs::TraceScope outer("t", "outer");
        {
            obs::TraceScope inner("t", "inner");
            obs::traceEvent("t", "point");
        }
    }
    obs::traceEvent("t", "after");

    ASSERT_EQ(rec_->events.size(), 6u);
    for (size_t i = 0; i < 5; ++i)
        EXPECT_EQ(rec_->events[i].traceId, "tREQ42") << i;
    EXPECT_EQ(rec_->events[5].traceId, "")
        << "events outside the scope carry no trace id";

    // Spans get process-unique span ids; the inner span's SpanEnd
    // carries its own id, not the parent's.
    const auto &beginOuter = rec_->events[0];
    const auto &beginInner = rec_->events[1];
    const auto &endInner = rec_->events[3];
    const auto &endOuter = rec_->events[4];
    EXPECT_NE(beginOuter.spanId, 0u);
    EXPECT_NE(beginInner.spanId, 0u);
    EXPECT_NE(beginOuter.spanId, beginInner.spanId);
    EXPECT_EQ(endInner.spanId, beginInner.spanId);
    EXPECT_EQ(endOuter.spanId, beginOuter.spanId);
}

TEST_F(ObsTest, CompoundSpansCarryTheRequestTraceId)
{
    Program p = makeMatmul("IJK", 16);
    ModelParams params;
    params.lineBytes = 32;
    {
        obs::TraceContextScope ctx("tCOMPOUND");
        compoundTransform(p, params);
    }
    auto nests = spans("pass.compound", "nest");
    ASSERT_FALSE(nests.empty());
    for (const auto &e : rec_->events)
        EXPECT_EQ(e.traceId, "tCOMPOUND") << e.category << "/" << e.name;
}

TEST_F(ObsTest, ConcurrentContextsNeverShareTraceIds)
{
    obs::setTraceSink(nullptr);  // RecordingSink is not thread-safe

    std::mutex mutex;
    std::set<std::string> ids;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < 250; ++i) {
                std::string id = obs::makeTraceId();
                obs::TraceContextScope ctx(id);
                // The context is thread-local: concurrent requests
                // each observe their own id, never a neighbor's.
                ASSERT_EQ(obs::currentTraceContext().traceId, id);
                std::lock_guard<std::mutex> lock(mutex);
                ids.insert(id);
            }
        });
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(ids.size(), 1000u) << "minted trace ids must be unique";
}

TEST_F(ObsTest, RingSinkFlightRecorderFiltersByTraceId)
{
    auto sink = std::make_unique<obs::RingSink>(32);
    obs::RingSink *ring = sink.get();
    obs::setTraceSink(std::move(sink));

    {
        obs::TraceContextScope ctx("tAAA");
        obs::traceEvent("t", "first");
    }
    {
        obs::TraceContextScope ctx("tBBB");
        obs::traceEvent("t", "second");
        obs::traceEvent("t", "third");
    }

    EXPECT_EQ(ring->snapshot().size(), 3u);
    auto a = ring->snapshotFor("tAAA");
    ASSERT_EQ(a.size(), 1u);
    EXPECT_NE(a[0].find("\"first\""), std::string::npos);
    EXPECT_NE(a[0].find("\"trace\":\"tAAA\""), std::string::npos);
    auto b = ring->snapshotFor("tBBB");
    ASSERT_EQ(b.size(), 2u);
    EXPECT_TRUE(ring->snapshotFor("tZZZ").empty());
}

// ---------------------------------------------------------------------
// Prometheus exposition

TEST_F(ObsTest, PrometheusExpositionGoldenFormat)
{
    obs::counter("test.alpha") += 5;
    obs::counter("test.requests_total") += 2;
    obs::gauge("test.level").set(2.5);
    obs::histogram("test.times").sample(2.0);
    obs::histogram("test.times").sample(4.0);

    std::ostringstream out;
    obs::exportPrometheus(obs::statsRegistry(), out);
    const std::string text = out.str();

    // Counters: memoria_ prefix, dots mangled, _total suffixed once.
    EXPECT_NE(text.find("# TYPE memoria_test_alpha_total counter\n"
                        "memoria_test_alpha_total 5\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("memoria_test_requests_total 2\n"),
              std::string::npos)
        << "_total is not doubled";
    EXPECT_EQ(text.find("requests_total_total"), std::string::npos);

    EXPECT_NE(text.find("# TYPE memoria_test_level gauge\n"
                        "memoria_test_level 2.5\n"),
              std::string::npos);

    // Histogram: all 64 cumulative buckets, +Inf last, sum and count.
    EXPECT_NE(text.find("# TYPE memoria_test_times histogram"),
              std::string::npos);
    size_t buckets = 0, pos = 0;
    double prev = -1.0;
    while ((pos = text.find("memoria_test_times_bucket{le=\"", pos)) !=
           std::string::npos) {
        ++buckets;
        size_t valAt = text.find("} ", pos);
        ASSERT_NE(valAt, std::string::npos);
        double v = std::stod(text.substr(valAt + 2));
        EXPECT_GE(v, prev) << "cumulative buckets are monotonic";
        prev = v;
        ++pos;
    }
    EXPECT_EQ(buckets, 64u);
    EXPECT_NE(text.find("_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
    EXPECT_NE(text.find("memoria_test_times_sum 6\n"),
              std::string::npos);
    EXPECT_NE(text.find("memoria_test_times_count 2\n"),
              std::string::npos);

    // prometheusName is the exported mangler the server reuses.
    EXPECT_EQ(obs::prometheusName("serve.latency_us.compound"),
              "memoria_serve_latency_us_compound");
}

// ---------------------------------------------------------------------
// Pipeline stage timers

TEST_F(ObsTest, StageTimersAccumulateIntoThreadLocalSlots)
{
    obs::stageTimes().reset();
    {
        obs::StageTimer t(&obs::StageTimes::loadUs);
        volatile double sink = 0;
        for (int i = 0; i < 1000; ++i)
            sink = sink + i;
    }
    {
        obs::StageTimer t(&obs::StageTimes::simulateUs);
    }
    EXPECT_GT(obs::stageTimes().loadUs, 0.0);
    EXPECT_GE(obs::stageTimes().simulateUs, 0.0);
    EXPECT_EQ(obs::stageTimes().optimizeUs, 0.0);

    obs::stageTimes().reset();
    EXPECT_EQ(obs::stageTimes().loadUs, 0.0);
}

} // namespace
} // namespace memoria
