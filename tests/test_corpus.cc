/** Corpus construction tests: every synthetic program is well formed,
 *  executable, and exposes the intended nest population. */

#include <gtest/gtest.h>

#include "interp/interp.hh"
#include "ir/walk.hh"
#include "suite/corpus.hh"
#include "transform/compound.hh"

namespace memoria {
namespace {

TEST(Corpus, SpecsMatchPaperRoster)
{
    const auto &specs = corpusSpecs();
    ASSERT_EQ(specs.size(), 35u);
    EXPECT_EQ(specs[0].name, "adm");
    EXPECT_EQ(specs[34].name, "wave");

    int totalNests = 0, totalLoops = 0;
    for (const auto &s : specs) {
        totalNests += s.nests;
        totalLoops += s.loops;
    }
    // Table 2's Nests column sums to its printed total (1400). The
    // Loops rows sum to 2842 although the paper's totals row prints
    // 2644 — an arithmetic slip in the original table; we keep the
    // per-row values.
    EXPECT_EQ(totalNests, 1400);
    EXPECT_EQ(totalLoops, 2842);
}

TEST(Corpus, NestCountsMatchSpecs)
{
    for (const auto &spec : corpusSpecs()) {
        Program p = buildCorpusProgram(spec, 12);
        int nests = 0;
        for (const auto &n : p.body)
            if (n->isLoop() && loopDepth(*n) >= 2)
                ++nests;
        EXPECT_EQ(nests, spec.nests) << spec.name;
    }
}

TEST(Corpus, ProgramsExecute)
{
    // Every corpus program interprets without tripping bounds checks
    // and deterministically.
    for (const auto &spec : corpusSpecs()) {
        if (spec.nests == 0 && spec.loops == 0)
            continue;
        Program p = buildCorpusProgram(spec, 10);
        EXPECT_EQ(runChecksum(p), runChecksum(p)) << spec.name;
    }
}

TEST(Corpus, CompoundPreservesSemanticsEverywhere)
{
    ModelParams params;
    params.lineBytes = 32;
    for (const auto &spec : corpusSpecs()) {
        Program p = buildCorpusProgram(spec, 10);
        uint64_t before = runChecksum(p);
        compoundTransform(p, params);
        EXPECT_EQ(runChecksum(p), before) << spec.name;
    }
}

} // namespace
} // namespace memoria
