/** Unit tests for the set-associative LRU cache simulator. */

#include <gtest/gtest.h>

#include "cachesim/cache.hh"

namespace memoria {
namespace {

CacheConfig
tinyCache(int64_t size, int assoc, int line)
{
    CacheConfig c;
    c.name = "tiny";
    c.sizeBytes = size;
    c.associativity = assoc;
    c.lineBytes = line;
    return c;
}

TEST(Cache, Configs)
{
    CacheConfig c1 = CacheConfig::rs6000();
    EXPECT_EQ(c1.sizeBytes, 64 * 1024);
    EXPECT_EQ(c1.associativity, 4);
    EXPECT_EQ(c1.lineBytes, 128);
    EXPECT_EQ(c1.numSets(), 128);

    CacheConfig c2 = CacheConfig::i860();
    EXPECT_EQ(c2.numSets(), 128);
}

TEST(Cache, SpatialHitsWithinLine)
{
    Cache c(tinyCache(1024, 2, 32));
    // 8-byte elements: 4 per 32-byte line -> 1 miss + 3 hits per line.
    for (uint64_t a = 0; a < 32 * 8; a += 8)
        c.access(a, 8, false);
    EXPECT_EQ(c.stats().accesses, 32u);
    EXPECT_EQ(c.stats().misses, 8u);
    EXPECT_EQ(c.stats().hits, 24u);
    EXPECT_EQ(c.stats().coldMisses, 8u);
    EXPECT_DOUBLE_EQ(c.stats().hitRate(), 75.0);
    // With cold misses excluded every warm access hit.
    EXPECT_DOUBLE_EQ(c.stats().hitRateWarm(), 100.0);
}

TEST(Cache, TemporalReuseWithinCapacity)
{
    Cache c(tinyCache(1024, 2, 32));
    for (int pass = 0; pass < 3; ++pass)
        for (uint64_t a = 0; a < 1024; a += 32)
            c.access(a, 8, false);
    // 32 lines fit exactly: only the first pass misses.
    EXPECT_EQ(c.stats().misses, 32u);
    EXPECT_EQ(c.stats().coldMisses, 32u);
}

TEST(Cache, LruEviction)
{
    // 1 set, 2 ways, 32B lines: a direct test of LRU order.
    Cache c(tinyCache(64, 2, 32));
    EXPECT_FALSE(c.probe(0));       // miss, loads line 0
    EXPECT_FALSE(c.probe(64));      // miss, loads line 2 (same set)
    EXPECT_TRUE(c.probe(0));        // hit, line 0 now MRU
    EXPECT_FALSE(c.probe(128));     // evicts line 2 (LRU)
    EXPECT_TRUE(c.probe(0));        // line 0 still resident
    EXPECT_FALSE(c.probe(64));      // line 2 was evicted
}

TEST(Cache, ConflictMissesInDirectMapped)
{
    // Direct-mapped, 2 sets: addresses 0 and 64 conflict (same set).
    Cache c(tinyCache(64, 1, 32));
    c.probe(0);
    c.probe(64);
    EXPECT_FALSE(c.probe(0));  // was evicted by 64
    // Cold misses counted once per distinct line.
    EXPECT_EQ(c.stats().coldMisses, 2u);
    EXPECT_EQ(c.stats().misses, 3u);
}

TEST(Cache, ResetClearsEverything)
{
    Cache c(tinyCache(64, 2, 32));
    c.probe(0);
    c.probe(32);
    c.reset();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_FALSE(c.probe(0));
    EXPECT_EQ(c.stats().coldMisses, 1u);
}

/** Property: at fixed size and line, higher associativity never turns a
 *  previously-hitting strided scan into more misses for LRU-friendly
 *  sequential workloads. */
class AssocSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(AssocSweep, SequentialScanMissesAreCompulsoryOnly)
{
    int assoc = GetParam();
    Cache c(tinyCache(4096, assoc, 32));
    for (uint64_t a = 0; a < 4096; a += 8)
        c.access(a, 8, false);
    EXPECT_EQ(c.stats().misses, 4096u / 32u);
}

INSTANTIATE_TEST_SUITE_P(Associativities, AssocSweep,
                         ::testing::Values(1, 2, 4, 8));

} // namespace
} // namespace memoria
