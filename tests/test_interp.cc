/** Unit tests for the IR interpreter and the cycle model. */

#include <gtest/gtest.h>

#include "interp/interp.hh"
#include "ir/builder.hh"
#include "suite/kernels.hh"

namespace memoria {
namespace {

TEST(Interp, MatmulComputesProducts)
{
    // C(i,j) initially holds pseudo-random values; after the kernel it
    // holds C0 + sum_k A(i,k)*B(k,j). Recompute by hand from the
    // interpreter's own initial arrays.
    Program p = makeMatmul("IJK", 6);
    Interpreter pristine(p);
    auto a0 = pristine.arrayData(0);
    auto b0 = pristine.arrayData(1);
    auto c0 = pristine.arrayData(2);

    Interpreter interp(p);
    interp.run();
    const auto &c = interp.arrayData(2);

    int n = 6;
    for (int jj = 0; jj < n; ++jj) {
        for (int ii = 0; ii < n; ++ii) {
            double expect = c0[ii + jj * n];
            for (int kk = 0; kk < n; ++kk)
                expect += a0[ii + kk * n] * b0[kk + jj * n];
            EXPECT_DOUBLE_EQ(c[ii + jj * n], expect)
                << "C(" << ii + 1 << "," << jj + 1 << ")";
        }
    }
    EXPECT_EQ(interp.stats().stmtsExecuted, 216u);
    EXPECT_EQ(interp.stats().memRefs, 216u * 4);
}

TEST(Interp, AllMatmulOrdersAgree)
{
    uint64_t base = runChecksum(makeMatmul("IJK", 10));
    for (const char *order : {"IKJ", "JIK", "JKI", "KIJ", "KJI"})
        EXPECT_EQ(runChecksum(makeMatmul(order, 10)), base) << order;
}

TEST(Interp, CholeskyFormsAgree)
{
    // Figure 7: the KJI form with distribution and triangular
    // interchange computes exactly the same values as the KIJ form.
    EXPECT_EQ(runChecksum(makeCholeskyKIJ(12)),
              runChecksum(makeCholeskyKJI(12)));
}

TEST(Interp, AdiFusionPreservesSemantics)
{
    EXPECT_EQ(runChecksum(makeAdiScalarized(12)),
              runChecksum(makeAdiFused(12)));
}

TEST(Interp, ErlebacherVariantsAgree)
{
    EXPECT_EQ(runChecksum(makeErlebacherDistributed(8)),
              runChecksum(makeErlebacherHand(8)));
}

TEST(Interp, NegativeStepLoop)
{
    ProgramBuilder b("rev");
    Var n = b.param("N", 8);
    Arr a = b.array("A", {n});
    Var i = b.loopVar("I");
    // A(I) = I, iterating N..1: final contents 1..N regardless.
    std::vector<NodePtr> body;
    body.push_back(b.assign(a(i), Val(i)));
    b.add(b.loop(i, n, 1, std::move(body), -1));
    Program p = b.finish();
    Interpreter interp(p);
    interp.run();
    for (int k = 0; k < 8; ++k)
        EXPECT_DOUBLE_EQ(interp.arrayData(0)[k], k + 1.0);
}

TEST(Interp, OpaqueSubscriptGather)
{
    ProgramBuilder b("gather");
    Var n = b.param("N", 4);
    Arr a = b.array("A", {n});
    Arr ind = b.array("IND", {n});
    Arr out = b.array("OUT", {n});
    Var i = b.loopVar("I");
    b.add(b.loop(i, 1, n, b.assign(ind(i), minv(Val(i) + 1.0, Val(n)))));
    b.add(b.loop(i, 1, n,
                 b.assign(out(i), a.at({opaqueSub(Val(ind(i)))}))));
    Program p = b.finish();
    Interpreter interp(p);
    interp.run();
    const auto &av = interp.arrayData(0);
    const auto &ov = interp.arrayData(2);
    for (int k = 0; k < 4; ++k) {
        int idx = std::min(k + 2, 4);
        EXPECT_DOUBLE_EQ(ov[k], av[idx - 1]);
    }
}

TEST(Interp, ParamOverride)
{
    Program p = makeMatmul("IJK", 64);
    Interpreter interp(p);
    interp.setParam("N", 4);
    interp.run();
    EXPECT_EQ(interp.stats().stmtsExecuted, 64u);
}

TEST(Interp, RunWithCacheCyclesAccounting)
{
    Program p = makeMatmul("JKI", 32);
    MachineModel mm;
    RunResult r = runWithCache(p, CacheConfig::i860(), mm);
    EXPECT_EQ(r.exec.stmtsExecuted, 32u * 32 * 32);
    EXPECT_EQ(r.cache.accesses, r.exec.memRefs);
    double expect = mm.cyclesPerStmt * r.exec.stmtsExecuted +
                    mm.cyclesPerRef * r.exec.memRefs +
                    mm.missPenalty * r.cache.misses;
    EXPECT_DOUBLE_EQ(r.cycles, expect);
    EXPECT_EQ(r.checksum, runChecksum(p));
}

TEST(Interp, MemoryOrderHasFewerMissesThanWorstOrder)
{
    // The core claim of Figure 2 at simulator level: JKI beats IKJ.
    RunResult good = runWithCache(makeMatmul("JKI", 48),
                                  CacheConfig::i860());
    RunResult bad = runWithCache(makeMatmul("IKJ", 48),
                                 CacheConfig::i860());
    EXPECT_LT(good.cache.misses, bad.cache.misses);
    EXPECT_LT(good.cycles, bad.cycles);
}

TEST(Interp, ChecksumIsDeterministic)
{
    Program p = makeGmtry(16);
    EXPECT_EQ(runChecksum(p), runChecksum(p));
}

} // namespace
} // namespace memoria
