/** Distribution tests (Figure 5): partitioning, rewriting, enabling. */

#include <gtest/gtest.h>

#include "interp/interp.hh"
#include "ir/builder.hh"
#include "ir/printer.hh"
#include "model/loopcost.hh"
#include "suite/kernels.hh"
#include "transform/distribute.hh"

namespace memoria {
namespace {

ModelParams
cls4()
{
    ModelParams p;
    p.lineBytes = 32;
    return p;
}

TEST(Distribute, CholeskyFigure7)
{
    Program p = makeCholeskyKIJ(16);
    uint64_t before = runChecksum(p);

    DistributeResult r =
        distributeForMemoryOrder(p, p.body, 0, {}, cls4());
    EXPECT_TRUE(r.distributed);
    EXPECT_TRUE(r.memoryOrderAchieved);
    EXPECT_EQ(r.resultingNests, 2);
    EXPECT_FALSE(r.splitTopLevel);
    EXPECT_EQ(runChecksum(p), before);

    // The result matches Figure 7(b) semantically AND the S3 nest is
    // now J-outer / I-inner.
    EXPECT_EQ(runChecksum(p), runChecksum(makeCholeskyKJI(16)));
    Node *k = p.body[0].get();
    ASSERT_EQ(k->body.size(), 3u);  // S1, S2 nest, S3 nest
    Node *s3nest = k->body[2].get();
    ASSERT_TRUE(s3nest->isLoop());
    EXPECT_EQ(p.varName(s3nest->var), "J");
    ASSERT_EQ(s3nest->body.size(), 1u);
    EXPECT_EQ(p.varName(s3nest->body[0]->var), "I");
}

TEST(Distribute, TopLevelSplit)
{
    // DO I { S1: A(I)=...; DO J { S2: B(I,J) += A(I) } } where S2's
    // nest wants J outer (B stored row-wise): distribution of the I
    // loop splits the top level in two and the second nest permutes.
    ProgramBuilder b("split");
    Var n = b.param("N", 12);
    Arr a = b.array("A", {n});
    Arr c = b.array("B", {n, n});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    std::vector<NodePtr> body;
    body.push_back(b.assign(a(i), Val(i) + 1.0));
    body.push_back(b.loop(j, 1, n,
                          b.assign(c(i, j), c(i, j) + a(i))));
    b.add(b.loop(i, 1, n, std::move(body)));
    Program p = b.finish();
    uint64_t before = runChecksum(p);

    DistributeResult r =
        distributeForMemoryOrder(p, p.body, 0, {}, cls4());
    EXPECT_TRUE(r.distributed);
    EXPECT_TRUE(r.splitTopLevel);
    EXPECT_EQ(r.resultingNests, 2);
    EXPECT_EQ(p.body.size(), 2u);
    EXPECT_EQ(runChecksum(p), before);

    // The B nest should now have I innermost (unit stride).
    Node *second = p.body[1].get();
    auto chain = perfectChain(second);
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(p.varName(chain[1]->var), "I");
}

TEST(Distribute, RecurrenceKeepsStatementsTogether)
{
    // S1 and S2 form a recurrence: distribution must refuse.
    ProgramBuilder b("rec");
    Var n = b.param("N", 12);
    Arr a = b.array("A", {n, n});
    Arr c = b.array("C", {n, n});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    std::vector<NodePtr> body;
    // S1 reads C(I-1,J) (carried flow from S2); S2 reads A(I,J)
    // (loop-independent flow from S1): a genuine recurrence.
    body.push_back(b.assign(a(i, j), c(Ix(i) - 1, j) + 1.0));
    body.push_back(b.assign(c(i, j), a(i, j) * 2.0));
    b.add(b.loop(j, 1, n, b.loop(i, 2, n, std::move(body))));
    Program p = b.finish();

    DistributeResult r =
        distributeForMemoryOrder(p, p.body, 0, {}, cls4());
    // Whatever happens must preserve semantics; and since S1/S2 cycle
    // at the distributable level, no split should occur there.
    EXPECT_FALSE(r.distributed);
}

TEST(Distribute, NoOpOnPerfectNest)
{
    Program p = makeMatmul("IJK", 8);
    DistributeResult r =
        distributeForMemoryOrder(p, p.body, 0, {}, cls4());
    // A single-statement perfect nest has nothing to distribute.
    EXPECT_FALSE(r.distributed);
}

TEST(Distribute, EliminationWithSharedColumnLoop)
{
    // KIJ Gaussian elimination with the multiplier computed in the
    // shared I loop: DO K / DO I { S1: M(I,K)=A(I,K)/A(K,K);
    // DO J { S2: A(I,J) -= M(I,K)*A(K,J) } }. The J row sweep is the
    // wrong inner loop; distributing I separates S1 so the (I, J)
    // pair of S2 can interchange to unit stride.
    ProgramBuilder b("elim");
    Var n = b.param("N", 14);
    Arr a = b.array("A", {n, n});
    Arr m = b.array("M", {n, n});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    Var k = b.loopVar("K");
    std::vector<NodePtr> ibody;
    ibody.push_back(b.assign(m(i, k), Val(a(i, k)) / a(k, k)));
    ibody.push_back(b.loop(j, Ix(k) + 1, n,
                           b.assign(a(i, j),
                                    a(i, j) - m(i, k) * a(k, j))));
    b.add(b.loop(k, 1, Ix(n) - 1,
                 b.loop(i, Ix(k) + 1, n, std::move(ibody))));
    Program p = b.finish();
    uint64_t before = runChecksum(p);

    DistributeResult r =
        distributeForMemoryOrder(p, p.body, 0, {}, cls4());
    EXPECT_TRUE(r.distributed);
    EXPECT_EQ(r.resultingNests, 2);
    EXPECT_EQ(runChecksum(p), before);
}

TEST(Distribute, GmtryNeedsNoDistribution)
{
    // makeGmtry's statements already live in separate sub-nests; the
    // Compound recursion permutes the update nest directly and
    // distribution correctly reports nothing to split.
    Program p = makeGmtry(14);
    DistributeResult r =
        distributeForMemoryOrder(p, p.body, 0, {}, cls4());
    EXPECT_FALSE(r.distributed);
}

} // namespace
} // namespace memoria
