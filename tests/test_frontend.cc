/** Front-end tests: parsing, errors, and print/parse round trips. */

#include <gtest/gtest.h>

#include "frontend/parser.hh"
#include "interp/interp.hh"
#include "ir/printer.hh"
#include "ir/walk.hh"
#include "suite/corpus.hh"
#include "suite/kernels.hh"
#include "transform/compound.hh"

namespace memoria {
namespace {

TEST(Parser, MinimalProgram)
{
    auto p = parseProgram(R"(
        PROGRAM tiny
          PARAMETER N = 8
          REAL*8 A(N)
          DO I = 1, N
            A(I) = I * 2
          ENDDO
        END
    )");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->name, "tiny");
    ASSERT_EQ(p->body.size(), 1u);
    Interpreter interp(*p);
    interp.run();
    EXPECT_DOUBLE_EQ(interp.arrayData(0)[3], 8.0);
}

TEST(Parser, MatmulSourceExecutesLikeBuilder)
{
    auto p = parseProgram(R"(
        PROGRAM matmul_IJK
          PARAMETER N = 10
          REAL*8 A(N,N)
          REAL*8 B(N,N)
          REAL*8 C(N,N)
          DO I = 1, N
            DO J = 1, N
              DO K = 1, N
                C(I,J) = (C(I,J) + A(I,K)*B(K,J))
              ENDDO
            ENDDO
          ENDDO
        END
    )");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(runChecksum(*p), runChecksum(makeMatmul("IJK", 10)));
}

TEST(Parser, TriangularAndStep)
{
    auto p = parseProgram(R"(
        PROGRAM tri
          PARAMETER N = 9
          REAL*8 A(N,N)
          DO I = N, 1, -1
            DO J = 1, I
              A(I,J) = SQRT(A(I,J)) + MIN(I, J)
            ENDDO
          ENDDO
        END
    )");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->body[0]->step, -1);
    EXPECT_EQ(runChecksum(*p), runChecksum(*p));
}

TEST(Parser, OpaqueSubscripts)
{
    auto p = parseProgram(R"(
        PROGRAM gather
          PARAMETER N = 6
          REAL*8 X(N), IND(N)
          DO I = 1, N
            X([IND(I)]) = X([IND(I)]) + 1.5
          ENDDO
        END
    )");
    ASSERT_TRUE(p.has_value());
    auto stmts = collectStmts(*p);
    EXPECT_FALSE(stmts[0].node->stmt.write.isAffine());
}

TEST(Parser, RegisterScalars)
{
    auto p = parseProgram(R"(
        PROGRAM reg
          PARAMETER N = 6
          REAL*8 A(N)
          REGISTER R0
          DO I = 1, N
            R0 = R0 + A(I)
          ENDDO
        END
    )");
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(p->arrays[1].isRegister);
    Interpreter interp(*p);
    interp.run();
    EXPECT_EQ(interp.stats().memRefs, 6u);  // only the A loads count
}

TEST(Parser, ErrorsCarryLineNumbers)
{
    ParseError err;
    auto p = parseProgram("PROGRAM x\n  REAL*8 A(N)\nEND", &err);
    EXPECT_FALSE(p.has_value());
    EXPECT_EQ(err.line, 2);  // N undeclared
    EXPECT_NE(err.message.find("unknown identifier"),
              std::string::npos);

    auto q = parseProgram("PROGRAM x\n  DO I = 1, 4\nEND", &err);
    EXPECT_FALSE(q.has_value());

    auto r = parseProgram(
        "PROGRAM x\n  PARAMETER N = 4\n  REAL*8 A(N)\n"
        "  A(1,2) = 0\nEND",
        &err);
    EXPECT_FALSE(r.has_value());
    EXPECT_NE(err.message.find("wrong rank"), std::string::npos);
}

TEST(Parser, CommentsIgnored)
{
    auto p = parseProgram(R"(
        PROGRAM c  ! the program
          PARAMETER N = 4   ! size
          REAL*8 A(N)
          DO I = 1, N       ! loop
            A(I) = 1        ! body
          ENDDO
        END
    )");
    ASSERT_TRUE(p.has_value());
}

/** Round trip: print -> parse reaches a print fixpoint and preserves
 *  semantics, for every kernel. */
class RoundTrip : public ::testing::TestWithParam<int>
{
};

Program
kernelByIndex(int i)
{
    switch (i) {
      case 0:
        return makeMatmul("IKJ", 8);
      case 1:
        return makeMatmul("JKI", 8);
      case 2:
        return makeCholeskyKIJ(8);
      case 3:
        return makeCholeskyKJI(8);
      case 4:
        return makeAdiScalarized(8);
      case 5:
        return makeAdiFused(8);
      case 6:
        return makeErlebacherDistributed(6);
      case 7:
        return makeGmtry(8);
      case 8:
        return makeSimpleHydro(8);
      case 9:
        return makeVpenta(8);
      default:
        return makeJacobiBadOrder(8);
    }
}

TEST_P(RoundTrip, PrintParsePrintFixpoint)
{
    Program orig = kernelByIndex(GetParam());
    std::string text1 = printProgram(orig);

    ParseError err;
    auto p2 = parseProgram(text1, &err);
    ASSERT_TRUE(p2.has_value()) << err.line << ": " << err.message;
    EXPECT_EQ(runChecksum(*p2), runChecksum(orig));

    std::string text2 = printProgram(*p2);
    auto p3 = parseProgram(text2, &err);
    ASSERT_TRUE(p3.has_value()) << err.line << ": " << err.message;
    EXPECT_EQ(printProgram(*p3), text2);  // fixpoint after one round
}

INSTANTIATE_TEST_SUITE_P(Kernels, RoundTrip, ::testing::Range(0, 11));

TEST(RoundTripMore, TransformedProgramsStillParse)
{
    // Compound output (triangular interchange, fused bodies) must
    // round-trip too.
    ModelParams params;
    params.lineBytes = 32;
    for (int k = 0; k < 11; ++k) {
        Program p = kernelByIndex(k);
        compoundTransform(p, params);
        ParseError err;
        auto q = parseProgram(printProgram(p), &err);
        ASSERT_TRUE(q.has_value())
            << p.name << " " << err.line << ": " << err.message;
        EXPECT_EQ(runChecksum(*q), runChecksum(p)) << p.name;
    }
}

TEST(RoundTripMore, CorpusProgramsRoundTrip)
{
    for (const auto &spec : corpusSpecs()) {
        if (spec.nests == 0 && spec.loops == 0)
            continue;
        Program p = buildCorpusProgram(spec, 8);
        ParseError err;
        auto q = parseProgram(printProgram(p), &err);
        ASSERT_TRUE(q.has_value())
            << spec.name << " " << err.line << ": " << err.message;
        EXPECT_EQ(runChecksum(*q), runChecksum(p)) << spec.name;
    }
}

} // namespace
} // namespace memoria
