/** Permutation tests: memory order, triangular interchange, failure
 *  modes, reversal as an enabler. */

#include <gtest/gtest.h>

#include "interp/interp.hh"
#include "ir/builder.hh"
#include "ir/printer.hh"
#include "model/loopcost.hh"
#include "suite/kernels.hh"
#include "transform/permute.hh"

namespace memoria {
namespace {

ModelParams
cls4()
{
    ModelParams p;
    p.lineBytes = 32;
    return p;
}

TEST(Permute, MatmulReachesMemoryOrder)
{
    Program p = makeMatmul("IJK", 24);
    uint64_t before = runChecksum(p);

    NestAnalysis na(p, p.body[0].get(), cls4());
    PermuteResult r = permuteToMemoryOrder(na, p.body[0].get());
    EXPECT_TRUE(r.changed);
    EXPECT_TRUE(r.achievedMemoryOrder);
    EXPECT_TRUE(r.innerInMemoryOrder);
    EXPECT_FALSE(r.alreadyMemoryOrder);
    EXPECT_EQ(r.fail, PermuteFail::None);

    // Structure is now J, K, I.
    auto chain = perfectChain(p.body[0].get());
    EXPECT_EQ(p.varName(chain[0]->var), "J");
    EXPECT_EQ(p.varName(chain[1]->var), "K");
    EXPECT_EQ(p.varName(chain[2]->var), "I");

    EXPECT_EQ(runChecksum(p), before);
}

TEST(Permute, AlreadyInMemoryOrder)
{
    Program p = makeMatmul("JKI", 16);
    NestAnalysis na(p, p.body[0].get(), cls4());
    PermuteResult r = permuteToMemoryOrder(na, p.body[0].get());
    EXPECT_TRUE(r.alreadyMemoryOrder);
    EXPECT_TRUE(r.achievedMemoryOrder);
    EXPECT_FALSE(r.changed);
}

TEST(Permute, EveryMatmulOrderNormalizes)
{
    for (const char *order : {"IJK", "IKJ", "JIK", "KIJ", "KJI"}) {
        Program p = makeMatmul(order, 16);
        uint64_t before = runChecksum(p);
        NestAnalysis na(p, p.body[0].get(), cls4());
        PermuteResult r = permuteToMemoryOrder(na, p.body[0].get());
        EXPECT_TRUE(r.achievedMemoryOrder) << order;
        auto chain = perfectChain(p.body[0].get());
        EXPECT_EQ(p.varName(chain[2]->var), "I") << order;
        EXPECT_EQ(runChecksum(p), before) << order;
    }
}

TEST(Permute, WavefrontDependenceBlocks)
{
    // A(I,J) = A(I-1,J+1) + A(I-1,J-1): distance vectors (1,-1) and
    // (1,1). Interchange is illegal and reversal cannot enable it
    // (flipping J fixes one vector but breaks the other). Memory order
    // wants the I loop (first subscript) innermost.
    ProgramBuilder b("wave");
    Var n = b.param("N", 16);
    Arr a = b.array("A", {Ix(n) + 2, Ix(n) + 2});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(i, 2, n,
                 b.loop(j, 2, n,
                        b.assign(a(i, j),
                                 a(Ix(i) - 1, Ix(j) + 1) +
                                     a(Ix(i) - 1, Ix(j) - 1)))));
    Program p = b.finish();

    NestAnalysis na(p, p.body[0].get(), cls4());
    PermuteResult r =
        permuteToMemoryOrder(na, p.body[0].get(), /*allowReversal=*/true);
    EXPECT_FALSE(r.achievedMemoryOrder);
    EXPECT_FALSE(r.changed);
    EXPECT_EQ(r.fail, PermuteFail::Dependences);
}

TEST(Permute, ReversalEnablesInterchange)
{
    // A(I,J) = A(I+1,J-1) + 1: anti dependence (1,-1). Plain
    // interchange is illegal, but reversing J turns the vector into
    // (1,1) and the interchange becomes legal.
    ProgramBuilder b("rev");
    Var n = b.param("N", 16);
    Arr a = b.array("A", {Ix(n) + 2, Ix(n) + 2});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(i, 1, n,
                 b.loop(j, 2, n,
                        b.assign(a(i, j),
                                 a(Ix(i) + 1, Ix(j) - 1) + 1.0))));
    Program p = b.finish();
    uint64_t before = runChecksum(p);

    {
        Program q = p.clone();
        NestAnalysis na(q, q.body[0].get(), cls4());
        PermuteResult r =
            permuteToMemoryOrder(na, q.body[0].get(),
                                 /*allowReversal=*/false);
        EXPECT_FALSE(r.achievedMemoryOrder);
    }
    NestAnalysis na(p, p.body[0].get(), cls4());
    PermuteResult r = permuteToMemoryOrder(na, p.body[0].get());
    EXPECT_TRUE(r.achievedMemoryOrder);
    EXPECT_TRUE(r.usedReversal);
    EXPECT_EQ(runChecksum(p), before);
    auto chain = perfectChain(p.body[0].get());
    EXPECT_EQ(p.varName(chain[1]->var), "I");
}

TEST(Permute, TriangularUpperExchange)
{
    // DO I=1,N / DO J=1,I (lower-left triangle, J <= I): exchange to
    // DO J=1,N / DO I=J,N.
    ProgramBuilder b("tri");
    Var n = b.param("N", 12);
    Arr a = b.array("A", {n, n});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(i, 1, n,
                 b.loop(j, 1, i, b.assign(a(i, j), Val(i) + Val(j)))));
    Program p = b.finish();
    uint64_t before = runChecksum(p);

    Node *outer = p.body[0].get();
    Node *inner = outer->body[0].get();
    ASSERT_TRUE(canExchangeAdjacent(*outer, *inner));
    ASSERT_TRUE(exchangeAdjacent(*outer, *inner));
    EXPECT_EQ(p.varName(outer->var), "J");
    EXPECT_EQ(p.varName(inner->var), "I");
    // New bounds: J in [1,N], I in [J,N].
    EXPECT_EQ(outer->lb.constant(), 1);
    EXPECT_EQ(inner->lb.coeff(outer->var), 1);
    EXPECT_EQ(runChecksum(p), before);
}

TEST(Permute, TriangularLowerExchange)
{
    // DO I=1,N / DO J=I,N (J >= I): exchange to DO J=1,N / DO I=1,J.
    ProgramBuilder b("tri2");
    Var n = b.param("N", 12);
    Arr a = b.array("A", {n, n});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(i, 1, n,
                 b.loop(j, Ix(i), n,
                        b.assign(a(i, j), Val(i) * 2.0))));
    Program p = b.finish();
    uint64_t before = runChecksum(p);

    Node *outer = p.body[0].get();
    Node *inner = outer->body[0].get();
    ASSERT_TRUE(exchangeAdjacent(*outer, *inner));
    EXPECT_EQ(runChecksum(p), before);
}

TEST(Permute, ComplexBoundsFail)
{
    // DO I / DO J=1,2*I: coefficient 2 on the outer variable is beyond
    // the triangular exchange rules -> "bounds too complex".
    ProgramBuilder b("cplx");
    Var n = b.param("N", 8);
    Arr a = b.array("A", {Ix(n) * 2, n});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(i, 1, n,
                 b.loop(j, 1, Ix(i) * 2,
                        b.assign(a(j, i), Val(j)))));
    Program p = b.finish();

    Node *outer = p.body[0].get();
    Node *inner = outer->body[0].get();
    EXPECT_FALSE(canExchangeAdjacent(*outer, *inner));

    NestAnalysis na(p, p.body[0].get(), cls4());
    PermuteResult r = permuteToMemoryOrder(na, p.body[0].get());
    // Memory order wants J innermost already? A(J,I): J consecutive.
    // The nest is I,J with J innermost: this is already memory order,
    // so nothing to do. Force the interesting case by checking the
    // exchange API only.
    (void)r;
}

TEST(Permute, BoundsTooComplexReported)
{
    // A(J,I) with loops I outer, J=1..2*I inner but *bad* order for
    // locality: store A(I,J) so memory order wants I innermost; the
    // dependence-free exchange is blocked only by the bounds.
    ProgramBuilder b("cplx2");
    Var n = b.param("N", 8);
    Arr a = b.array("A", {n, Ix(n) * 2});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(i, 1, n,
                 b.loop(j, 1, Ix(i) * 2,
                        b.assign(a(i, j), Val(j)))));
    Program p = b.finish();

    NestAnalysis na(p, p.body[0].get(), cls4());
    PermuteResult r = permuteToMemoryOrder(na, p.body[0].get());
    EXPECT_FALSE(r.achievedMemoryOrder);
    EXPECT_EQ(r.fail, PermuteFail::Bounds);
}

TEST(Permute, CholeskySubNestTriangularInterchange)
{
    // The S3 sub-nest of Cholesky: DO I=K+1,N / DO J=K+1,I under an
    // outer K loop. After interchange: DO J=K+1,N / DO I=J,N.
    ProgramBuilder b("chol3");
    Var n = b.param("N", 12);
    Arr a = b.array("A", {n, n});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    Var k = b.loopVar("K");
    b.add(b.loop(k, 1, Ix(n) - 2,
                 b.loop(i, Ix(k) + 1, n,
                        b.loop(j, Ix(k) + 1, i,
                               b.assign(a(i, j),
                                        a(i, j) - a(i, k) * a(j, k))))));
    Program p = b.finish();
    uint64_t before = runChecksum(p);

    Node *kLoop = p.body[0].get();
    Node *outer = kLoop->body[0].get();
    Node *inner = outer->body[0].get();
    ASSERT_TRUE(exchangeAdjacent(*outer, *inner));
    EXPECT_EQ(p.varName(outer->var), "J");
    // J: K+1..N, I: J..N.
    EXPECT_EQ(outer->lb.coeff(kLoop->var), 1);
    EXPECT_EQ(outer->ub.coeff(kLoop->var), 0);
    EXPECT_TRUE(inner->lb.isSingleVar());
    EXPECT_EQ(runChecksum(p), before);
}

TEST(Permute, DeeperLoopsBeyondChainKeepWorking)
{
    // Imperfect below the chain: permuting the 2-deep chain must leave
    // the inner structure intact.
    Program p = makeGmtry(10);
    uint64_t before = runChecksum(p);
    Node *kLoop = p.body[0].get();
    Node *updateNest = kLoop->body[1].get();  // DO I / DO J
    NestAnalysis na(p, updateNest, cls4(), {kLoop});
    PermuteResult r = permuteToMemoryOrder(na, updateNest);
    EXPECT_TRUE(r.changed);
    EXPECT_EQ(runChecksum(p), before);
}

} // namespace
} // namespace memoria
