/** Cost-model tests: the paper's Figure 2, 3 and 7 LoopCost tables are
 *  encoded as ground truth (cls = 4 doubles on 32-byte lines). */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "model/access.hh"
#include "model/loopcost.hh"
#include "suite/kernels.hh"

namespace memoria {
namespace {

ModelParams
cls4()
{
    ModelParams p;
    p.lineBytes = 32;  // 4 double elements per line, as in the paper
    return p;
}

Node *
loopNamed(const Program &p, const NestAnalysis &na, const std::string &nm)
{
    for (Node *l : na.loops())
        if (p.varName(l->var) == nm)
            return l;
    return nullptr;
}

TEST(LoopCost, MatmulFigure2Table)
{
    Program p = makeMatmul("IJK", 512);
    NestAnalysis na(p, p.body[0].get(), cls4());

    Node *li = loopNamed(p, na, "I");
    Node *lj = loopNamed(p, na, "J");
    Node *lk = loopNamed(p, na, "K");
    ASSERT_TRUE(li && lj && lk);

    // Figure 2 totals: J = 2n^3 + n^2, K = (5/4)n^3 + n^2,
    // I = (1/2)n^3 + n^2.
    Poly cj = na.loopCost(lj);
    Poly ck = na.loopCost(lk);
    Poly ci = na.loopCost(li);
    EXPECT_DOUBLE_EQ(cj.coeff(3), 2.0);
    EXPECT_DOUBLE_EQ(cj.coeff(2), 1.0);
    EXPECT_DOUBLE_EQ(ck.coeff(3), 1.25);
    EXPECT_DOUBLE_EQ(ck.coeff(2), 1.0);
    EXPECT_DOUBLE_EQ(ci.coeff(3), 0.5);
    EXPECT_DOUBLE_EQ(ci.coeff(2), 1.0);

    // Memory order JKI: most cache lines outermost.
    auto mo = na.memoryOrder();
    ASSERT_EQ(mo.size(), 3u);
    EXPECT_EQ(p.varName(mo[0]->var), "J");
    EXPECT_EQ(p.varName(mo[1]->var), "K");
    EXPECT_EQ(p.varName(mo[2]->var), "I");
}

TEST(RefGroup, MatmulThreeGroups)
{
    Program p = makeMatmul("IJK", 64);
    NestAnalysis na(p, p.body[0].get(), cls4());
    // 4 references (C write+read, A, B) fall into 3 groups: the two C
    // references share a loop-independent dependence (condition 1a).
    for (Node *l : na.loops()) {
        auto groups = na.groups(l);
        EXPECT_EQ(groups.size(), 3u);
    }
}

TEST(RefGroup, SmallConstantDistanceCondition1b)
{
    // B(I) = B(I) + A(I) + A(I-1): A refs are one group w.r.t. I
    // (distance 1 <= 2), but separate groups w.r.t. an outer loop J if
    // the I entry must be zero... here d' also triggers condition 2;
    // use distinct *second* subscripts to isolate condition 1b.
    ProgramBuilder b("c1b");
    Var n = b.param("N", 16);
    Arr a = b.array("A", {Ix(n) + 8, Ix(n) + 8});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    // A(J,I) read twice, shifted in the second dim: group w.r.t. I via
    // the carried input dependence of distance 1. The write is shifted
    // by 8 in the first dimension (beyond cls = 4), keeping it out of
    // every group.
    b.add(b.loop(j, 1, n,
                 b.loop(i, 2, n,
                        b.assign(a(Ix(j) + 8, i),
                                 a(j, i) + a(j, Ix(i) - 1)))));
    Program p = b.finish();
    NestAnalysis na(p, p.body[0].get(), cls4());
    Node *li = loopNamed(p, na, "I");
    Node *lj = loopNamed(p, na, "J");
    // w.r.t. I: A(J,I) and A(J,I-1) connected by input dep (0, 1):
    // same group. The write A(J+4,I) is always separate.
    EXPECT_EQ(na.groups(li).size(), 2u);
    // w.r.t. J the I entry (distance 1) is non-zero: separate groups.
    EXPECT_EQ(na.groups(lj).size(), 3u);
}

TEST(RefGroup, SpatialCondition2)
{
    // A(I,J) and A(I+2,J): same line when cls = 4 (condition 2).
    ProgramBuilder b("c2");
    Var n = b.param("N", 16);
    Arr a = b.array("A", {Ix(n) + 4, n});
    Arr c = b.array("C", {n, n});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(j, 1, n,
                 b.loop(i, 1, n,
                        b.assign(c(i, j),
                                 a(i, j) + a(Ix(i) + 2, j)))));
    Program p = b.finish();
    NestAnalysis na(p, p.body[0].get(), cls4());
    Node *li = loopNamed(p, na, "I");
    auto groups = na.groups(li);
    EXPECT_EQ(groups.size(), 2u);  // {A pair}, {C}
    bool sawSpatial = false;
    for (const auto &g : groups)
        sawSpatial |= g.groupSpatial;
    EXPECT_TRUE(sawSpatial);
}

TEST(RefCost, ThreeCases)
{
    ProgramBuilder b("cases");
    Var n = b.param("N", 32);
    Arr a = b.array("A", {Ix(n) * 4, n});
    Arr c = b.array("C", {n, n});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    // C(I,J) = A(4I, J) + C(1,1): strided and invariant references.
    b.add(b.loop(j, 1, n,
                 b.loop(i, 1, n,
                        b.assign(c(i, j), a(Ix(i) * 4, j) + c(1, 1)))));
    Program p = b.finish();
    NestAnalysis na(p, p.body[0].get(), cls4());
    Node *li = loopNamed(p, na, "I");
    Node *lj = loopNamed(p, na, "J");

    for (const auto &ref : na.refs()) {
        const ArrayDecl &decl = p.arrayDecl(ref.ref->array);
        bool invariantRef = ref.ref->subs[0].affine.isConstant();
        if (invariantRef) {
            EXPECT_EQ(na.classify(ref, li), Reuse::Invariant);
            EXPECT_DOUBLE_EQ(na.refCost(ref, li).eval(32), 1.0);
        } else if (decl.name == "A") {
            // stride 4 == cls: no reuse.
            EXPECT_EQ(na.classify(ref, li), Reuse::None);
            EXPECT_EQ(na.classify(ref, lj), Reuse::None);
        } else {
            EXPECT_EQ(na.classify(ref, li), Reuse::Consecutive);
            // trip/(cls/stride) = n/4.
            EXPECT_DOUBLE_EQ(na.refCost(ref, li).coeff(1), 0.25);
        }
    }
}

TEST(RefCost, StrideTwoIsHalfLine)
{
    ProgramBuilder b("s2");
    Var n = b.param("N", 32);
    Arr a = b.array("A", {Ix(n) * 2, n});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(j, 1, n,
                 b.loop(i, 1, n,
                        b.assign(a(Ix(i) * 2, j), Val(i)))));
    Program p = b.finish();
    NestAnalysis na(p, p.body[0].get(), cls4());
    Node *li = loopNamed(p, na, "I");
    const auto &ref = na.refs()[0];
    EXPECT_EQ(na.classify(ref, li), Reuse::Consecutive);
    EXPECT_DOUBLE_EQ(na.refCost(ref, li).coeff(1), 0.5);
}

TEST(LoopCost, AdiFigure3FusedVersusDistributed)
{
    ModelParams params = cls4();

    // Fused (Figure 3c): K = 3n^2, I = (3/4)n^2 in dominating terms.
    Program fused = makeAdiFused(128);
    NestAnalysis fa(fused, fused.body[0].get(), params);
    Node *fk = loopNamed(fused, fa, "K");
    Node *fi = loopNamed(fused, fa, "I");
    EXPECT_DOUBLE_EQ(fa.loopCost(fk).coeff(2), 3.0);
    EXPECT_DOUBLE_EQ(fa.loopCost(fi).coeff(2), 0.75);

    // Distributed (Figure 3b): the two K loops cost 3n^2 + 2n^2 = 5n^2
    // with their current (K) innermost loops. nestCost aggregates
    // exactly the paper's per-statement-nest sums.
    Program dist = makeAdiScalarized(128);
    Node *iLoop = dist.body[0].get();
    NestAnalysis da(dist, iLoop, params);
    Poly sum = nestCost(da);
    EXPECT_DOUBLE_EQ(sum.coeff(2), 5.0);

    // Fusion is profitable: 3n^2 < 5n^2 (Section 4.3.1).
    EXPECT_TRUE(fa.loopCost(fk) < sum);
}

TEST(LoopCost, CholeskyFigure7MemoryOrder)
{
    Program p = makeCholeskyKIJ(256);
    NestAnalysis na(p, p.body[0].get(), cls4());
    auto mo = na.memoryOrder();
    ASSERT_EQ(mo.size(), 3u);
    EXPECT_EQ(p.varName(mo[0]->var), "K");
    EXPECT_EQ(p.varName(mo[1]->var), "J");
    EXPECT_EQ(p.varName(mo[2]->var), "I");
}

TEST(LoopCost, ElementSizeChangesCls)
{
    // With 4-byte elements a 32-byte line holds 8: consecutive cost
    // halves relative to 8-byte elements.
    ProgramBuilder b("elem4");
    Var n = b.param("N", 64);
    Arr a = b.array("A", {n, n}, 4);
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    b.add(b.loop(j, 1, n,
                 b.loop(i, 1, n, b.assign(a(i, j), Val(i)))));
    Program p = b.finish();
    NestAnalysis na(p, p.body[0].get(), cls4());
    Node *li = loopNamed(p, na, "I");
    EXPECT_DOUBLE_EQ(na.refCost(na.refs()[0], li).coeff(1), 0.125);
}

TEST(TripModel, TriangularPolicies)
{
    Program p = makeCholeskyKIJ(64);
    Node *k = p.body[0].get();
    Node *iLoop = nullptr, *jLoop = nullptr;
    for (Node *l : collectLoops(k)) {
        if (p.varName(l->var) == "I")
            iLoop = l;
        if (p.varName(l->var) == "J")
            jLoop = l;
    }
    ASSERT_TRUE(iLoop && jLoop);

    ModelParams dom = cls4();
    NestAnalysis naDom(p, k, dom);
    // Dominant: DO J = K+1, I spans up to ~n iterations.
    EXPECT_NEAR(naDom.trip(jLoop).coeff(1), 1.0, 1e-9);

    ModelParams avg = cls4();
    avg.policy = TriangularPolicy::Average;
    NestAnalysis naAvg(p, k, avg);
    // Average: E[I] - E[K] ~ n/4.
    EXPECT_NEAR(naAvg.trip(jLoop).coeff(1), 0.25, 1e-9);
}

TEST(NestCost, MatmulCurrentAndIdeal)
{
    Program bad = makeMatmul("IKJ", 128);  // worst order: J innermost
    NestAnalysis na(bad, bad.body[0].get(), cls4());
    Poly cur = nestCost(na);
    Poly ideal = idealNestCost(na);
    EXPECT_DOUBLE_EQ(cur.coeff(3), 2.0);    // J innermost: 2n^3
    EXPECT_DOUBLE_EQ(ideal.coeff(3), 0.5);  // I innermost: n^3/2
    EXPECT_FALSE(nestInMemoryOrder(na));
    EXPECT_FALSE(innermostInMemoryOrder(na));

    Program good = makeMatmul("JKI", 128);
    NestAnalysis ng(good, good.body[0].get(), cls4());
    EXPECT_TRUE(nestInMemoryOrder(ng));
    EXPECT_TRUE(innermostInMemoryOrder(ng));
}

TEST(AccessStats, ClassifiesGroups)
{
    Program p = makeMatmul("JKI", 64);
    NestAnalysis na(p, p.body[0].get(), cls4());
    AccessStats s = gatherAccessStats(na);
    // Inner loop I: C and A consecutive, B invariant.
    EXPECT_EQ(s.totalGroups(), 3);
    EXPECT_EQ(s.invGroups, 1);
    EXPECT_EQ(s.unitGroups, 2);
    EXPECT_EQ(s.noneGroups, 0);
    // C's group has two references.
    EXPECT_EQ(s.unitRefs, 3);
    EXPECT_DOUBLE_EQ(s.refsPerGroup(), 4.0 / 3.0);
}

} // namespace
} // namespace memoria
