/** Tests for the resilience harness: budgets/cancellation, the
 *  fault-injection registry, the degradation ladder, and the
 *  crash-isolating batch driver — including a parameterized sweep that
 *  arms every registered fault site in turn and proves the batch
 *  contains the failure to exactly one program. */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "check/equiv.hh"
#include "frontend/parser.hh"
#include "harness/batch.hh"
#include "harness/budget.hh"
#include "harness/fault.hh"
#include "harness/ladder.hh"
#include "suite/kernels.hh"
#include "support/stats.hh"

namespace memoria {
namespace {

// ---------------------------------------------------------------------
// Budgets and cancellation

TEST(Budget, PollIsNoOpWithoutScope)
{
    EXPECT_EQ(harness::currentToken(), nullptr);
    EXPECT_NO_THROW(harness::poll("test.site"));
    EXPECT_NO_THROW(harness::chargeIterations(1 << 20, "test.site"));
    EXPECT_NO_THROW(harness::chargeIrNodes(1 << 20, "test.site"));
}

TEST(Budget, DeadlineCancels)
{
    harness::Budget b;
    b.deadlineMs = 1;
    harness::CancelToken token(b);
    harness::BudgetScope scope(&token);

    bool cancelled = false;
    try {
        for (;;)
            harness::poll("test.loop");
    } catch (const harness::CancelledError &c) {
        cancelled = true;
        EXPECT_EQ(c.kind, harness::CancelKind::Deadline);
        EXPECT_EQ(c.where, "test.loop");
    }
    EXPECT_TRUE(cancelled);
}

TEST(Budget, IterationBudgetCancels)
{
    harness::Budget b;
    b.maxInterpIterations = 100;
    harness::CancelToken token(b);
    harness::BudgetScope scope(&token);

    EXPECT_NO_THROW(harness::chargeIterations(100, "test.iter"));
    try {
        harness::chargeIterations(1, "test.iter");
        FAIL() << "expected CancelledError";
    } catch (const harness::CancelledError &c) {
        EXPECT_EQ(c.kind, harness::CancelKind::IterBudget);
    }
    EXPECT_GE(token.iterationsUsed(), 101u);
}

TEST(Budget, IrNodeBudgetCancels)
{
    harness::Budget b;
    b.maxIrNodes = 50;
    harness::CancelToken token(b);
    harness::BudgetScope scope(&token);

    EXPECT_NO_THROW(harness::chargeIrNodes(50, "test.ir"));
    try {
        harness::chargeIrNodes(51, "test.ir");
        FAIL() << "expected CancelledError";
    } catch (const harness::CancelledError &c) {
        EXPECT_EQ(c.kind, harness::CancelKind::IrBudget);
    }
    EXPECT_EQ(token.maxIrNodesSeen(), 51u);
}

TEST(Budget, ExternalCancel)
{
    harness::CancelToken token(harness::Budget{});
    harness::BudgetScope scope(&token);
    EXPECT_NO_THROW(harness::poll("test"));
    token.cancel();
    EXPECT_THROW(harness::poll("test"), harness::CancelledError);
}

TEST(Budget, CancelledErrorIsNotStdException)
{
    // The batch driver's generic containment handlers must never
    // swallow cancellation; the type system enforces it.
    static_assert(
        !std::is_base_of_v<std::exception, harness::CancelledError>);
    harness::CancelToken token(harness::Budget{});
    token.cancel();
    harness::BudgetScope scope(&token);
    bool reachedStdCatch = false;
    try {
        try {
            harness::poll("test");
        } catch (const std::exception &) {
            reachedStdCatch = true;
        }
    } catch (const harness::CancelledError &) {
    }
    EXPECT_FALSE(reachedStdCatch);
}

TEST(Budget, ScopesNest)
{
    harness::CancelToken outer(harness::Budget{});
    harness::BudgetScope outerScope(&outer);
    EXPECT_EQ(harness::currentToken(), &outer);
    {
        harness::CancelToken inner(harness::Budget{});
        harness::BudgetScope innerScope(&inner);
        EXPECT_EQ(harness::currentToken(), &inner);
    }
    EXPECT_EQ(harness::currentToken(), &outer);
}

// ---------------------------------------------------------------------
// Fault registry

class FaultTest : public ::testing::Test
{
  protected:
    void TearDown() override { harness::clearFault(); }
};

TEST_F(FaultTest, CatalogIsPopulated)
{
    std::vector<std::string> sites = harness::faultSites();
    ASSERT_FALSE(sites.empty());
    EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
    for (const char *expected :
         {"parser.parse", "validate.program", "dependence.vectors",
          "transform.permute", "transform.fuse", "transform.distribute",
          "transform.compound", "check.equiv", "interp.run",
          "cachesim.run"}) {
        EXPECT_NE(std::find(sites.begin(), sites.end(), expected),
                  sites.end())
            << expected;
    }
    EXPECT_TRUE(harness::faultSiteSupportsDiag("parser.parse"));
    EXPECT_FALSE(harness::faultSiteSupportsDiag("transform.permute"));
    EXPECT_FALSE(harness::faultSiteSupportsDiag("no.such.site"));
}

TEST_F(FaultTest, ParseFaultSpec)
{
    auto r = harness::parseFaultSpec("transform.permute");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().site, "transform.permute");
    EXPECT_EQ(r.value().action, harness::FaultAction::Throw);
    EXPECT_EQ(r.value().onHit, 1);

    r = harness::parseFaultSpec("interp.run:diag:3@jacobi");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().action, harness::FaultAction::Diag);
    EXPECT_EQ(r.value().onHit, 3);
    EXPECT_EQ(r.value().program, "jacobi");

    EXPECT_FALSE(harness::parseFaultSpec("no.such.site").ok());
    EXPECT_FALSE(
        harness::parseFaultSpec("interp.run:explode").ok());
    EXPECT_FALSE(harness::parseFaultSpec("").ok());
}

TEST_F(FaultTest, SeededFaultIsDeterministic)
{
    harness::FaultSpec a = harness::seededFault(42);
    harness::FaultSpec b = harness::seededFault(42);
    EXPECT_EQ(a.site, b.site);
    EXPECT_EQ(a.action, b.action);
    std::vector<std::string> sites = harness::faultSites();
    EXPECT_NE(std::find(sites.begin(), sites.end(), a.site),
              sites.end());
}

TEST_F(FaultTest, ProgramFilterAndOneShot)
{
    harness::FaultSpec spec;
    spec.site = "transform.permute";
    spec.program = "target";
    harness::armFault(spec);

    // Wrong program: the site must not fire.
    {
        harness::ProgramContext ctx("bystander");
        Program p = makeJacobiBadOrder(8);
        ModelParams params;
        EXPECT_NO_THROW(compoundTransform(p, params));
        EXPECT_FALSE(harness::armedFaultFired());
    }
    // Matching program: fires exactly once, then never again.
    {
        harness::ProgramContext ctx("target");
        Program p = makeJacobiBadOrder(8);
        ModelParams params;
        EXPECT_THROW(compoundTransform(p, params),
                     harness::InjectedFault);
        EXPECT_TRUE(harness::armedFaultFired());
        Program q = makeJacobiBadOrder(8);
        EXPECT_NO_THROW(compoundTransform(q, params));
    }
}

// ---------------------------------------------------------------------
// Degradation ladder

TEST(Ladder, RungConfigurations)
{
    PipelineOptions full = harness::rungPipeline(
        harness::Rung::FullCompound);
    EXPECT_TRUE(full.transform);
    EXPECT_TRUE(full.compound.applyFusion);
    EXPECT_TRUE(full.compound.verify);

    PipelineOptions noFusion =
        harness::rungPipeline(harness::Rung::NoFusion);
    EXPECT_TRUE(noFusion.transform);
    EXPECT_FALSE(noFusion.compound.applyFusion);
    EXPECT_TRUE(noFusion.compound.enableFuseAll);

    PipelineOptions permuteOnly =
        harness::rungPipeline(harness::Rung::PermuteOnly);
    EXPECT_FALSE(permuteOnly.compound.enableFuseAll);
    EXPECT_FALSE(permuteOnly.compound.enableDistribution);
    EXPECT_TRUE(permuteOnly.transform);
    EXPECT_TRUE(permuteOnly.compound.verify);

    PipelineOptions identity =
        harness::rungPipeline(harness::Rung::Identity);
    EXPECT_FALSE(identity.transform);
}

TEST(Ladder, SucceedsOnFirstRung)
{
    harness::LadderOptions opts;
    harness::LadderOutcome out =
        harness::runLadder(opts, [](harness::AttemptContext &) {});
    EXPECT_TRUE(out.ok);
    EXPECT_EQ(out.rung, harness::Rung::FullCompound);
    EXPECT_EQ(out.attempts, 1);
    EXPECT_TRUE(out.failures.empty());
}

TEST(Ladder, DescendsOnFault)
{
    harness::LadderOptions opts;
    opts.backoffBaseMs = 1;
    opts.backoffCapMs = 2;
    int calls = 0;
    harness::LadderOutcome out =
        harness::runLadder(opts, [&](harness::AttemptContext &ctx) {
            ++calls;
            if (ctx.rung != harness::Rung::PermuteOnly)
                throw std::runtime_error("transient");
        });
    EXPECT_TRUE(out.ok);
    EXPECT_EQ(out.rung, harness::Rung::PermuteOnly);
    EXPECT_EQ(out.attempts, 3);
    EXPECT_EQ(calls, 3);
    ASSERT_EQ(out.failures.size(), 2u);
    EXPECT_EQ(out.failures[0].kind, "fault");
    EXPECT_GT(out.backoffMs, 0);
}

TEST(Ladder, RunsOutOfRungs)
{
    harness::LadderOptions opts;
    opts.backoffBaseMs = 0;
    opts.backoffCapMs = 0;
    harness::LadderOutcome out =
        harness::runLadder(opts, [](harness::AttemptContext &) {
            throw std::runtime_error("always");
        });
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.attempts, harness::kNumRungs);
    EXPECT_EQ(out.failures.size(),
              static_cast<size_t>(harness::kNumRungs));
}

TEST(Ladder, TimeoutDescendsWithoutBackoff)
{
    harness::LadderOptions opts;
    opts.backoffBaseMs = 50;
    opts.backoffCapMs = 50;
    harness::LadderOutcome out =
        harness::runLadder(opts, [](harness::AttemptContext &ctx) {
            if (ctx.rung == harness::Rung::FullCompound) {
                ctx.token.cancel();
                ctx.token.poll("test.site");
            }
        });
    EXPECT_TRUE(out.ok);
    EXPECT_EQ(out.rung, harness::Rung::NoFusion);
    ASSERT_EQ(out.failures.size(), 1u);
    EXPECT_EQ(out.failures[0].kind, "timeout");
    EXPECT_EQ(out.backoffMs, 0);
}

/** Every rung must preserve semantics: the differential oracle agrees
 *  between the original and each rung's transformed output. */
TEST(Ladder, EveryRungPreservesSemantics)
{
    ModelParams params;
    using Maker = Program (*)();
    for (Maker make : std::initializer_list<Maker>{
             []() { return makeJacobiBadOrder(8); },
             []() { return makeAdiScalarized(8); },
             []() { return makeMatmul("JKI", 8); }}) {
        Program prog = make();
        for (int r = 0; r < harness::kNumRungs; ++r) {
            PipelineOptions opts =
                harness::rungPipeline(static_cast<harness::Rung>(r));
            OptimizedProgram out =
                optimizeProgram(prog, params, opts);
            EquivResult eq =
                checkEquivalence(out.original, out.transformed);
            EXPECT_TRUE(eq.equivalent)
                << prog.name << " rung "
                << harness::rungName(static_cast<harness::Rung>(r))
                << ": " << eq.detail;
            EXPECT_GT(eq.comparedRuns, 0) << prog.name;
        }
    }
}

// ---------------------------------------------------------------------
// Batch driver

/** An input that parses source text, so the sweep reaches the
 *  parser.parse site without touching the filesystem. */
harness::BatchInput
parsedInput()
{
    return {"parsed", []() -> Result<Program> {
                const char *src = "PROGRAM parsed\n"
                                  "  PARAMETER N = 12\n"
                                  "  REAL*8 A(N,N)\n"
                                  "  REAL*8 B(N,N)\n"
                                  "  DO I = 1, N\n"
                                  "    DO J = 1, N\n"
                                  "      A(I,J) = B(I,J) + 1.0\n"
                                  "    ENDDO\n"
                                  "  ENDDO\n"
                                  "END\n";
                ParseError err;
                std::optional<Program> p = parseProgram(src, &err);
                if (!p)
                    return Result<Program>::err(
                        Diag::error("parse.error", err.str()));
                return Result<Program>(std::move(*p));
            }};
}

/** Small suite that collectively reaches every registered fault site. */
std::vector<harness::BatchInput>
sweepInputs()
{
    std::vector<harness::BatchInput> inputs;
    inputs.push_back({"matmul-jki", []() {
                          return Result<Program>(makeMatmul("JKI", 12));
                      }});
    inputs.push_back({"cholesky", []() {
                          return Result<Program>(makeCholeskyKIJ(12));
                      }});
    inputs.push_back({"adi", []() {
                          return Result<Program>(makeAdiScalarized(12));
                      }});
    inputs.push_back(parsedInput());
    return inputs;
}

TEST(Batch, CleanRunAllOk)
{
    harness::BatchOptions opts;
    opts.jobs = 2;
    harness::BatchReport rep =
        harness::runBatch(sweepInputs(), opts);
    ASSERT_EQ(rep.programs.size(), 4u);
    for (const harness::ProgramOutcome &p : rep.programs) {
        EXPECT_EQ(p.status, harness::BatchStatus::Ok) << p.name;
        EXPECT_EQ(p.rung, harness::Rung::FullCompound) << p.name;
        EXPECT_EQ(p.attempts, 1) << p.name;
        EXPECT_TRUE(p.simulated) << p.name;
        EXPECT_EQ(p.hits + p.misses, p.accesses) << p.name;
        EXPECT_GT(p.accesses, 0u) << p.name;
    }
    EXPECT_TRUE(rep.allOk());
    EXPECT_EQ(rep.containedCount(), 0);
}

TEST(Batch, BadInputIsContainedAsDiag)
{
    std::vector<harness::BatchInput> inputs = sweepInputs();
    inputs.push_back({"broken", []() -> Result<Program> {
                          return Result<Program>::err(Diag::error(
                              "parse.error", "synthetic failure"));
                      }});
    inputs.push_back({"thrower", []() -> Result<Program> {
                          throw std::runtime_error("loader exploded");
                      }});
    harness::BatchOptions opts;
    harness::BatchReport rep = harness::runBatch(inputs, opts);
    ASSERT_EQ(rep.programs.size(), 6u);
    EXPECT_EQ(rep.programs[4].status, harness::BatchStatus::Diag);
    EXPECT_NE(rep.programs[4].diag.find("synthetic failure"),
              std::string::npos);
    EXPECT_EQ(rep.programs[5].status,
              harness::BatchStatus::PanicContained);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(rep.programs[i].status, harness::BatchStatus::Ok);
    EXPECT_EQ(rep.containedCount(), 2);
}

TEST(Batch, IterationBudgetTimesOutEveryRung)
{
    harness::BatchOptions opts;
    opts.budget.maxInterpIterations = 1;
    // Big enough that the interpreter's 4096-iteration charge stride
    // fires: 24^3 iterations per run on every rung, identity included.
    std::vector<harness::BatchInput> inputs;
    inputs.push_back({"matmul-big", []() {
                          return Result<Program>(makeMatmul("JKI", 24));
                      }});
    harness::BatchReport rep = harness::runBatch(inputs, opts);
    ASSERT_EQ(rep.programs.size(), 1u);
    // Even the identity rung simulates, so every attempt exceeds one
    // interpreter iteration: the program lands on Timeout, contained.
    EXPECT_EQ(rep.programs[0].status, harness::BatchStatus::Timeout);
    EXPECT_EQ(rep.programs[0].attempts, harness::kNumRungs);
    for (const harness::AttemptFailure &f : rep.programs[0].failures)
        EXPECT_EQ(f.kind, "timeout");
}

TEST(Batch, InjectedFaultDegradesOntoLowerRung)
{
    harness::FaultSpec spec;
    spec.site = "transform.permute";
    spec.program = "matmul-jki";
    harness::armFault(spec);
    harness::BatchOptions opts;
    harness::BatchReport rep =
        harness::runBatch(sweepInputs(), opts);
    harness::clearFault();

    const harness::ProgramOutcome &target = rep.programs[0];
    EXPECT_EQ(target.status, harness::BatchStatus::Degraded);
    EXPECT_EQ(target.rung, harness::Rung::NoFusion);
    ASSERT_EQ(target.failures.size(), 1u);
    EXPECT_EQ(target.failures[0].kind, "fault");
    for (size_t i = 1; i < rep.programs.size(); ++i)
        EXPECT_EQ(rep.programs[i].status, harness::BatchStatus::Ok);
}

// ---------------------------------------------------------------------
// JSON report

/** Minimal JSON well-formedness scanner (objects, arrays, strings,
 *  numbers, true/false/null; no unicode escapes beyond \\uXXXX). */
class JsonScanner
{
  public:
    explicit JsonScanner(const std::string &s) : s_(s) {}

    bool
    wellFormed()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        char c = s_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    bool
    object()
    {
        ++pos_;  // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_;  // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_;  // closing quote
        return true;
    }

    bool
    number()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *lit)
    {
        size_t len = std::string(lit).size();
        if (s_.compare(pos_, len, lit) != 0)
            return false;
        pos_ += len;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    size_t pos_ = 0;
};

TEST(Batch, JsonReportIsWellFormed)
{
    // Inject a fault so incidents, diag text, and fault_hits are all
    // populated in the rendered report.
    harness::FaultSpec spec;
    spec.site = "transform.permute";
    spec.program = "matmul-jki";
    harness::armFault(spec);
    harness::BatchOptions opts;
    harness::BatchReport rep =
        harness::runBatch(sweepInputs(), opts);
    harness::clearFault();

    std::string json = rep.toJson();
    EXPECT_TRUE(JsonScanner(json).wellFormed()) << json;
    EXPECT_NE(json.find("\"status\":\"degraded\""), std::string::npos);
    EXPECT_NE(json.find("\"summary\""), std::string::npos);
    EXPECT_NE(json.find("\"incidents\""), std::string::npos);
}

// ---------------------------------------------------------------------
// The sweep: every registered fault site, armed one at a time

class FaultSweep : public ::testing::TestWithParam<std::string>
{
  protected:
    void TearDown() override { harness::clearFault(); }
};

TEST_P(FaultSweep, ArmedSiteIsContainedToOneProgram)
{
    const std::string &site = GetParam();
    std::vector<harness::BatchInput> inputs = sweepInputs();
    harness::BatchOptions opts;
    opts.jobs = 2;

    // Clean baseline, with per-program hit attribution.
    harness::clearFault();
    harness::BatchReport clean = harness::runBatch(inputs, opts);
    for (const harness::ProgramOutcome &p : clean.programs)
        ASSERT_EQ(p.status, harness::BatchStatus::Ok) << p.name;

    // Pick the first program that actually reaches this site.
    std::string targetName;
    for (const harness::ProgramOutcome &p : clean.programs) {
        auto hit = p.faultHits.find(site);
        if (hit != p.faultHits.end() && hit->second > 0) {
            targetName = p.name;
            break;
        }
    }
    ASSERT_FALSE(targetName.empty())
        << "site " << site << " is not reached by the sweep inputs";

    harness::FaultSpec spec;
    spec.site = site;
    spec.program = targetName;
    harness::armFault(spec);
    harness::BatchReport rep = harness::runBatch(inputs, opts);
    EXPECT_TRUE(harness::armedFaultFired()) << site;
    harness::clearFault();

    // Exactly one contained failure: the targeted program. Nothing
    // crashed — runBatch returning at all proves the pool survived.
    int contained = 0;
    for (size_t i = 0; i < rep.programs.size(); ++i) {
        const harness::ProgramOutcome &p = rep.programs[i];
        if (p.name == targetName) {
            EXPECT_TRUE(p.contained()) << site;
            ++contained;
        } else {
            EXPECT_EQ(p.status, clean.programs[i].status)
                << site << " bystander " << p.name;
            EXPECT_EQ(p.rung, clean.programs[i].rung)
                << site << " bystander " << p.name;
            if (p.contained())
                ++contained;
        }
        // Cache-counter invariant on every survivor that simulated.
        if (p.simulated) {
            EXPECT_EQ(p.hits + p.misses, p.accesses)
                << site << " " << p.name;
        }
    }
    EXPECT_EQ(contained, 1) << site;
}

INSTANTIATE_TEST_SUITE_P(
    AllSites, FaultSweep,
    ::testing::ValuesIn(harness::faultSites()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        std::replace(name.begin(), name.end(), '.', '_');
        return name;
    });

// ---------------------------------------------------------------------
// Observability under the worker pool

TEST(Obs, CountersAreThreadSafe)
{
    obs::Counter &c = obs::counter("test.harness.concurrent");
    c.reset();
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&c]() {
            for (int i = 0; i < 10000; ++i)
                ++c;
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(c.value(), 40000u);
}

TEST(Obs, BatchFeedsStatsRegistry)
{
    uint64_t before = obs::counter("batch.programs").value();
    harness::BatchOptions opts;
    harness::runBatch({sweepInputs()[0]}, opts);
    EXPECT_EQ(obs::counter("batch.programs").value(), before + 1);
}

} // namespace
} // namespace memoria
