#include "oracle.hh"

#include <set>
#include <sstream>
#include <tuple>

#include "ir/printer.hh"
#include "support/logging.hh"

namespace memoria {

namespace {

class TraceBuilder
{
  public:
    explicit TraceBuilder(Program &prog) : prog_(prog)
    {
        env_.assign(prog.vars.size(), 0);
        for (size_t v = 0; v < prog.vars.size(); ++v)
            if (prog.vars[v].kind == VarKind::Param)
                env_[v] = prog.vars[v].paramValue;
    }

    std::vector<OracleAccess>
    run()
    {
        for (auto &n : prog_.body)
            exec(*n);
        return std::move(trace_);
    }

  private:
    int64_t
    evalAffine(const AffineExpr &e) const
    {
        return e.eval([this](VarId v) { return env_[v]; });
    }

    uint64_t
    location(const ArrayRef &ref) const
    {
        const ArrayDecl &decl = prog_.arrayDecl(ref.array);
        uint64_t index = 0;
        uint64_t stride = 1;
        for (size_t k = 0; k < ref.subs.size(); ++k) {
            MEMORIA_ASSERT(ref.subs[k].isAffine(),
                           "oracle requires affine subscripts");
            int64_t s = evalAffine(ref.subs[k].affine);
            int64_t ext = evalAffine(decl.extents[k]);
            MEMORIA_ASSERT(s >= 1 && s <= ext, "oracle subscript OOB");
            index += static_cast<uint64_t>(s - 1) * stride;
            stride *= static_cast<uint64_t>(ext);
        }
        return (static_cast<uint64_t>(ref.array) << 48) | index;
    }

    void
    record(const Statement &stmt, const ArrayRef &ref, bool isWrite)
    {
        OracleAccess a;
        a.stmt = &stmt;
        a.ref = &ref;
        a.isWrite = isWrite;
        a.location = location(ref);
        a.loops = loops_;
        a.iters.reserve(loops_.size());
        for (Node *l : loops_)
            a.iters.push_back(env_[l->var]);
        a.time = time_++;
        trace_.push_back(std::move(a));
    }

    void
    exec(Node &n)
    {
        if (n.isStmt()) {
            for (const auto &occ : collectRefs(n.stmt))
                if (!occ.isWrite)
                    record(n.stmt, *occ.ref, false);
            for (const auto &occ : collectRefs(n.stmt))
                if (occ.isWrite)
                    record(n.stmt, *occ.ref, true);
            return;
        }
        int64_t lb = evalAffine(n.lb);
        int64_t ub = evalAffine(n.ub);
        loops_.push_back(&n);
        if (n.step > 0) {
            for (int64_t v = lb; v <= ub; v += n.step) {
                env_[n.var] = v;
                for (auto &kid : n.body)
                    exec(*kid);
            }
        } else {
            for (int64_t v = lb; v >= ub; v += n.step) {
                env_[n.var] = v;
                for (auto &kid : n.body)
                    exec(*kid);
            }
        }
        loops_.pop_back();
    }

    Program &prog_;
    std::vector<int64_t> env_;
    std::vector<Node *> loops_;
    std::vector<OracleAccess> trace_;
    uint64_t time_ = 0;
};

} // namespace

std::vector<OracleAccess>
oracleTrace(Program &prog)
{
    return TraceBuilder(prog).run();
}

std::vector<OracleDep>
oracleDependences(Program &prog, bool includeInput)
{
    auto trace = oracleTrace(prog);

    // Group accesses per location, preserving execution order.
    std::map<uint64_t, std::vector<const OracleAccess *>> byLoc;
    for (const auto &a : trace)
        byLoc[a.location].push_back(&a);

    std::vector<OracleDep> deps;
    std::set<std::tuple<const ArrayRef *, const ArrayRef *,
                        std::vector<int64_t>, bool, bool>>
        seen;

    for (const auto &[loc, list] : byLoc) {
        for (size_t i = 0; i < list.size(); ++i) {
            for (size_t j = i + 1; j < list.size(); ++j) {
                const OracleAccess &src = *list[i];
                const OracleAccess &dst = *list[j];
                if (!includeInput && !src.isWrite && !dst.isWrite)
                    continue;
                if (src.ref == dst.ref && src.time == dst.time)
                    continue;
                // Read-read self pairs (one reference against itself
                // across iterations) are deliberately unmodeled: they
                // constrain nothing and RefGroup needs only cross-
                // reference input dependences.
                if (src.ref == dst.ref && !src.isWrite && !dst.isWrite)
                    continue;

                size_t nCommon = 0;
                while (nCommon < src.loops.size() &&
                       nCommon < dst.loops.size() &&
                       src.loops[nCommon] == dst.loops[nCommon])
                    ++nCommon;
                std::vector<int64_t> dist(nCommon);
                for (size_t l = 0; l < nCommon; ++l) {
                    dist[l] = (dst.iters[l] - src.iters[l]) /
                              src.loops[l]->step;
                }
                auto key = std::make_tuple(src.ref, dst.ref, dist,
                                           src.isWrite, dst.isWrite);
                if (!seen.insert(key).second)
                    continue;
                OracleDep d;
                d.src = src.stmt;
                d.dst = dst.stmt;
                d.srcRef = src.ref;
                d.dstRef = dst.ref;
                d.srcWrite = src.isWrite;
                d.dstWrite = dst.isWrite;
                d.dist = std::move(dist);
                deps.push_back(std::move(d));
            }
        }
    }
    return deps;
}

bool
graphCovers(const DependenceGraph &graph,
            const std::vector<OracleDep> &deps, std::string *firstMiss)
{
    for (const auto &d : deps) {
        bool covered = false;
        for (const auto &e : graph.edges()) {
            if (e.srcRef != d.srcRef || e.dstRef != d.dstRef)
                continue;
            if (e.src != d.src || e.dst != d.dst)
                continue;
            if (e.vec.levels.size() > d.dist.size())
                continue;
            bool match = true;
            for (size_t l = 0; l < e.vec.levels.size(); ++l) {
                const DepLevel &lev = e.vec.levels[l];
                int64_t dd = d.dist[l];
                if (lev.hasDist) {
                    if (lev.dist != dd)
                        match = false;
                } else {
                    Dir need = dd > 0 ? DirLT : (dd < 0 ? DirGT : DirEQ);
                    if (!(lev.dirs & need))
                        match = false;
                }
                if (!match)
                    break;
            }
            if (match) {
                covered = true;
                break;
            }
        }
        if (!covered) {
            if (firstMiss) {
                std::ostringstream os;
                os << "uncovered dependence stmt" << d.src->id << " -> "
                   << "stmt" << d.dst->id << " dist(";
                for (size_t l = 0; l < d.dist.size(); ++l)
                    os << (l ? "," : "") << d.dist[l];
                os << ") " << (d.srcWrite ? "W" : "R")
                   << (d.dstWrite ? "W" : "R");
                *firstMiss = os.str();
            }
            return false;
        }
    }
    return true;
}

} // namespace memoria
