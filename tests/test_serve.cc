/** Tests for the compile service (src/serve/): request parsing, the
 *  exactly-one-terminal-response invariant, admission-queue
 *  backpressure, circuit-breaker trip → half-open → reset, breaker-
 *  driven degraded service, and zero-loss drain. */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "serve/breaker.hh"
#include "serve/journal.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/supervisor.hh"
#include "serve/top.hh"
#include "support/json.hh"
#include "support/signals.hh"
#include "support/stats.hh"

namespace memoria {
namespace serve {
namespace {

const char *kSmallProgram = "PROGRAM t\n"
                            "  PARAMETER N = 8\n"
                            "  REAL*8 A(N,N)\n"
                            "  DO I = 1, N\n"
                            "    DO J = 1, N\n"
                            "      A(I,J) = A(I,J) + 1.0\n"
                            "    ENDDO\n"
                            "  ENDDO\n"
                            "END\n";

// Big enough that simulate takes well over the deadline used by the
// timeout test on the bytecode-tape interpreter (~7M iterations); the
// run is cancelled at the deadline, so test wall time stays bounded.
const char *kHeavyProgram = "PROGRAM heavy\n"
                            "  PARAMETER N = 192\n"
                            "  REAL*8 A(N,N)\n"
                            "  REAL*8 B(N,N)\n"
                            "  DO I = 1, N\n"
                            "    DO J = 1, N\n"
                            "      DO K = 1, N\n"
                            "        A(I,J) = A(I,J) + B(J,K)\n"
                            "      ENDDO\n"
                            "    ENDDO\n"
                            "  ENDDO\n"
                            "END\n";

std::string
requestLine(const std::string &id, const std::string &kind,
            const std::string &program, int64_t deadlineMs = 0)
{
    std::string line = "{\"id\":" + json::quote(id) +
                       ",\"kind\":" + json::quote(kind);
    if (!program.empty())
        line += ",\"program\":" + json::quote(program);
    if (deadlineMs > 0)
        line += ",\"deadline_ms\":" + std::to_string(deadlineMs);
    return line + "}";
}

/** Thread-safe response collector. */
struct Collector
{
    std::mutex mutex;
    std::vector<std::string> lines;

    Server::Respond
    fn()
    {
        return [this](const std::string &line) {
            std::lock_guard<std::mutex> lock(mutex);
            lines.push_back(line);
        };
    }

    json::Value
    parsed(size_t i)
    {
        Result<json::Value> v = json::parse(lines.at(i));
        EXPECT_TRUE(v.ok()) << lines.at(i);
        return v.ok() ? v.value() : json::Value();
    }

    /** Count of responses with the given "type". */
    int
    countType(const std::string &type)
    {
        int n = 0;
        for (size_t i = 0; i < lines.size(); ++i)
            if (parsed(i).getString("type") == type)
                ++n;
        return n;
    }
};

// ---------------------------------------------------------------------
// Protocol

TEST(Protocol, RejectsMalformedRequests)
{
    EXPECT_FALSE(parseRequest("not json").ok());
    EXPECT_FALSE(parseRequest("[1,2]").ok());
    EXPECT_FALSE(parseRequest("{\"kind\":\"compound\"}").ok())
        << "work requests need a program";
    EXPECT_FALSE(
        parseRequest("{\"kind\":\"explode\",\"program\":\"x\"}").ok());
    EXPECT_FALSE(parseRequest("{\"kind\":\"compound\","
                              "\"program\":\"x\",\"deadline_ms\":-1}")
                     .ok());
}

TEST(Protocol, ParsesWorkAndIntrospectionRequests)
{
    Result<Request> r =
        parseRequest(requestLine("42", "compound", kSmallProgram, 500));
    ASSERT_TRUE(r.ok()) << r.diag().str();
    EXPECT_EQ(r.value().id, "42");
    EXPECT_EQ(r.value().kind, RequestKind::Compound);
    EXPECT_EQ(r.value().deadlineMs, 500);

    Result<Request> h = parseRequest("{\"kind\":\"health\"}");
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h.value().kind, RequestKind::Health);
}

// ---------------------------------------------------------------------
// Circuit breaker state machine

TEST(Breaker, TripHalfOpenReset)
{
    BreakerOptions opts;
    opts.failureThreshold = 2;
    opts.cooldownMs = 40;
    CircuitBreaker b("test", opts);

    EXPECT_TRUE(b.allow());
    b.onFailure("boom 1");
    EXPECT_TRUE(b.allow());
    b.onFailure("boom 2");  // threshold reached: trips open

    CircuitBreaker::Snapshot snap = b.snapshot();
    EXPECT_EQ(snap.trips, 1);
    EXPECT_FALSE(b.allow()) << "open breaker rejects";
    EXPECT_GE(b.snapshot().rejected, 1);

    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_TRUE(b.allow()) << "cooldown elapsed: half-open probe";
    EXPECT_FALSE(b.allow()) << "only one probe in flight";

    b.onSuccess();  // probe succeeded: closed again
    snap = b.snapshot();
    EXPECT_EQ(snap.resets, 1);
    EXPECT_TRUE(b.allow());
}

TEST(Breaker, FailedProbeReopens)
{
    BreakerOptions opts;
    opts.failureThreshold = 1;
    opts.cooldownMs = 30;
    CircuitBreaker b("test", opts);

    b.onFailure("boom");
    EXPECT_FALSE(b.allow());
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    EXPECT_TRUE(b.allow());  // probe
    b.onFailure("probe failed");
    EXPECT_FALSE(b.allow()) << "failed probe reopens immediately";
    EXPECT_EQ(b.snapshot().trips, 2);
}

// ---------------------------------------------------------------------
// Server

ServeOptions
quietOptions()
{
    ServeOptions opts;
    opts.jobs = 2;
    opts.writeIncidents = false;  // unit tests don't litter artifacts/
    return opts;
}

TEST(Serve, HealthAndStatsBypassTheQueue)
{
    Server server(quietOptions());  // never started: no workers
    Collector out;
    server.handleLine("{\"id\":\"h\",\"kind\":\"health\"}", out.fn());
    server.handleLine("{\"id\":\"s\",\"kind\":\"stats\"}", out.fn());

    ASSERT_EQ(out.lines.size(), 2u);
    json::Value health = out.parsed(0);
    EXPECT_EQ(health.getString("type"), "health");
    EXPECT_EQ(health.getString("status"), "ok");
    ASSERT_NE(health.get("breakers"), nullptr);
    ASSERT_NE(health.get("requests"), nullptr);

    json::Value stats = out.parsed(1);
    EXPECT_EQ(stats.getString("type"), "stats");
    EXPECT_NE(stats.get("breakers"), nullptr);
    EXPECT_NE(stats.get("registry"), nullptr);
}

TEST(Serve, MalformedLineGetsExactlyOneError)
{
    Server server(quietOptions());
    Collector out;
    server.handleLine("this is not json", out.fn());
    server.handleLine("", out.fn());     // blank: ignored, no response
    server.handleLine("  \t ", out.fn());

    ASSERT_EQ(out.lines.size(), 1u);
    EXPECT_EQ(out.parsed(0).getString("type"), "error");
    EXPECT_EQ(out.parsed(0).getString("code"), "serve.request");
}

TEST(Serve, FullQueueShedsWithRetryAfter)
{
    ServeOptions opts = quietOptions();
    opts.jobs = 1;
    opts.queueCapacity = 2;
    opts.retryAfterMs = 123;
    Server server(opts);  // not started: the queue only fills

    Collector out;
    for (int i = 0; i < 4; ++i)
        server.handleLine(requestLine("q" + std::to_string(i),
                                      "analyze", kSmallProgram),
                          out.fn());

    // Two admitted silently, two shed immediately. retry_after_ms is
    // jittered ±20% around the configured base so a shed burst does
    // not come back as a synchronized retry storm.
    ASSERT_EQ(out.lines.size(), 2u);
    for (size_t i = 0; i < out.lines.size(); ++i) {
        json::Value v = out.parsed(i);
        EXPECT_EQ(v.getString("type"), "overloaded");
        EXPECT_GE(v.getInt("retry_after_ms"), 99);   // 123 - 20%
        EXPECT_LE(v.getInt("retry_after_ms"), 147);  // 123 + 20%
    }
    EXPECT_EQ(server.requestCounters().shed, 2u);
    EXPECT_EQ(server.requestCounters().accepted, 2u);
    EXPECT_EQ(server.queueDepth(), 2u);

    // Draining answers the admitted requests: nothing is lost.
    server.start();
    server.drain();
    ASSERT_EQ(out.lines.size(), 4u);
    EXPECT_EQ(out.countType("result"), 2);
    EXPECT_EQ(server.requestCounters().completed, 2u);
}

TEST(Serve, DrainLosesNoAcceptedRequests)
{
    ServeOptions opts = quietOptions();
    opts.jobs = 3;
    opts.queueCapacity = 64;
    Server server(opts);
    server.start();

    Collector out;
    const int kRequests = 12;
    for (int i = 0; i < kRequests; ++i)
        server.handleLine(requestLine("r" + std::to_string(i),
                                      i % 2 ? "compound" : "analyze",
                                      kSmallProgram),
                          out.fn());
    server.drain();

    ASSERT_EQ(out.lines.size(), static_cast<size_t>(kRequests));
    std::map<std::string, int> perId;
    for (int i = 0; i < kRequests; ++i) {
        json::Value v = out.parsed(i);
        EXPECT_EQ(v.getString("type"), "result") << out.lines[i];
        ++perId[v.getString("id")];
    }
    for (const auto &[id, n] : perId)
        EXPECT_EQ(n, 1) << "duplicate terminal response for " << id;
    EXPECT_EQ(perId.size(), static_cast<size_t>(kRequests));
    EXPECT_EQ(server.requestCounters().completed,
              static_cast<uint64_t>(kRequests));
}

TEST(Serve, DrainingServerCancelsNewWork)
{
    Server server(quietOptions());
    server.start();
    server.drain();

    Collector out;
    server.handleLine(requestLine("late", "analyze", kSmallProgram),
                      out.fn());
    ASSERT_EQ(out.lines.size(), 1u);
    EXPECT_EQ(out.parsed(0).getString("type"), "cancelled");

    // Introspection still works on a drained server.
    server.handleLine("{\"id\":\"h\",\"kind\":\"health\"}", out.fn());
    ASSERT_EQ(out.lines.size(), 2u);
    EXPECT_EQ(out.parsed(1).getString("status"), "draining");
}

TEST(Serve, RequestDeadlineTimesOutAndIsReported)
{
    ServeOptions opts = quietOptions();
    opts.jobs = 1;
    Server server(opts);
    server.start();

    Collector out;
    // 25ms: an order of magnitude under the uncancelled simulate (so the
    // budget reliably expires mid-execution) but enough headroom that
    // scheduling delay on a loaded machine cannot expire it in the
    // admission queue first — deadline_ms=1 flaked as
    // `deadline-exceeded` whenever the worker popped >1ms late.
    server.handleLine(requestLine("t", "simulate", kHeavyProgram, 25),
                      out.fn());
    server.drain();

    ASSERT_EQ(out.lines.size(), 1u);
    json::Value v = out.parsed(0);
    EXPECT_EQ(v.getString("type"), "result");
    EXPECT_EQ(v.getString("status"), "timeout") << out.lines[0];
    ASSERT_NE(v.get("failures"), nullptr);
    EXPECT_FALSE(v.get("failures")->items().empty());
}

TEST(Serve, OpenOptimizeBreakerDegradesToIdentity)
{
    ServeOptions opts = quietOptions();
    opts.jobs = 1;
    opts.breaker.cooldownMs = 60000;  // stays open for the whole test
    Server server(opts);

    // Trip the optimize breaker directly (threshold defaults to 3).
    for (int i = 0; i < opts.breaker.failureThreshold; ++i)
        server.breaker(Stage::Optimize).onFailure("induced");
    ASSERT_FALSE(server.breaker(Stage::Optimize).allow());

    server.start();
    Collector out;
    server.handleLine(requestLine("d", "compound", kSmallProgram),
                      out.fn());
    server.drain();

    ASSERT_EQ(out.lines.size(), 1u);
    json::Value v = out.parsed(0);
    EXPECT_EQ(v.getString("type"), "result");
    EXPECT_TRUE(v.getBool("degraded_by_breaker")) << out.lines[0];
    EXPECT_EQ(v.getString("rung"), "identity") << out.lines[0];
}

TEST(Serve, OpenLoadBreakerRejectsRequests)
{
    ServeOptions opts = quietOptions();
    opts.jobs = 1;
    opts.breaker.cooldownMs = 60000;  // stays open for the whole test
    Server server(opts);
    for (int i = 0; i < opts.breaker.failureThreshold; ++i)
        server.breaker(Stage::Load).onFailure("induced");

    server.start();
    Collector out;
    server.handleLine(requestLine("x", "analyze", kSmallProgram),
                      out.fn());
    server.drain();

    ASSERT_EQ(out.lines.size(), 1u);
    json::Value v = out.parsed(0);
    EXPECT_EQ(v.getString("type"), "error");
    EXPECT_EQ(v.getString("code"), "serve.unavailable");
}

TEST(Serve, MixedCorpusGetsExactlyOneResponseEach)
{
    ServeOptions opts = quietOptions();
    opts.jobs = 2;
    opts.queueCapacity = 64;
    Server server(opts);
    server.start();

    Collector out;
    int expected = 0;
    for (int i = 0; i < 8; ++i) {
        server.handleLine(requestLine("m" + std::to_string(i),
                                      "analyze", kSmallProgram),
                          out.fn());
        ++expected;
    }
    server.handleLine("garbage", out.fn());
    ++expected;
    server.handleLine("{\"id\":\"h\",\"kind\":\"health\"}", out.fn());
    ++expected;
    server.handleLine("", out.fn());  // blank: no response expected
    server.drain();

    EXPECT_EQ(out.lines.size(), static_cast<size_t>(expected));
}

// ---------------------------------------------------------------------
// Request telemetry: timings, trace ids, the metrics kind, and top

TEST(Serve, ResultCarriesMonotonicStageTimings)
{
    Server server(quietOptions());
    server.start();

    Collector out;
    server.handleLine(
        "{\"id\":\"t1\",\"kind\":\"simulate\",\"program\":" +
            json::quote(kSmallProgram) + "}",
        out.fn());
    server.drain();

    ASSERT_EQ(out.lines.size(), 1u);
    json::Value v = out.parsed(0);
    ASSERT_EQ(v.getString("type"), "result") << out.lines[0];
    const json::Value *t = v.get("timings");
    ASSERT_NE(t, nullptr) << "result lacks a timings block";

    const double queueUs = t->getNumber("queue_us");
    const double loadUs = t->getNumber("load_us");
    const double optimizeUs = t->getNumber("optimize_us");
    const double verifyUs = t->getNumber("verify_us");
    const double simulateUs = t->getNumber("simulate_us");
    const double totalUs = t->getNumber("total_us");

    EXPECT_GE(queueUs, 0.0);
    EXPECT_GT(loadUs, 0.0) << "parsing the program takes time";
    EXPECT_GE(optimizeUs, 0.0);
    EXPECT_GE(verifyUs, 0.0);
    EXPECT_GT(simulateUs, 0.0) << "simulate requests simulate";
    EXPECT_GT(totalUs, 0.0);

    // The stages are disjoint slices of the request's wall time, so
    // their sum cannot exceed it (1us of float slack).
    EXPECT_LE(queueUs + loadUs + optimizeUs + verifyUs + simulateUs,
              totalUs + 1.0);
}

TEST(Serve, TraceIdEchoedWhenGivenMintedWhenAbsent)
{
    Server server(quietOptions());
    server.start();

    Collector out;
    server.handleLine(
        "{\"id\":\"a\",\"kind\":\"analyze\",\"trace_id\":\"tFEED\","
        "\"program\":" + json::quote(kSmallProgram) + "}",
        out.fn());
    server.handleLine(
        "{\"id\":\"b\",\"kind\":\"analyze\",\"program\":" +
            json::quote(kSmallProgram) + "}",
        out.fn());
    server.handleLine(
        "{\"id\":\"c\",\"kind\":\"analyze\",\"program\":" +
            json::quote(kSmallProgram) + "}",
        out.fn());
    server.drain();

    ASSERT_EQ(out.lines.size(), 3u);
    std::map<std::string, std::string> traceById;
    for (size_t i = 0; i < 3; ++i) {
        json::Value v = out.parsed(i);
        traceById[v.getString("id")] = v.getString("trace_id");
    }
    EXPECT_EQ(traceById["a"], "tFEED") << "client ids are echoed";
    EXPECT_FALSE(traceById["b"].empty()) << "server mints an id";
    EXPECT_FALSE(traceById["c"].empty());
    EXPECT_NE(traceById["b"], traceById["c"])
        << "two requests never share a minted trace id";
}

TEST(Serve, MetricsRequestAnswersInlineWithoutWorkers)
{
    obs::statsRegistry().resetValues();  // exact counts below
    Server server(quietOptions());  // never started: no workers
    Collector out;
    server.handleLine("{\"id\":\"m\",\"kind\":\"metrics\"}", out.fn());

    ASSERT_EQ(out.lines.size(), 1u);
    json::Value v = out.parsed(0);
    EXPECT_EQ(v.getString("type"), "metrics");
    EXPECT_EQ(v.getString("id"), "m");
    ASSERT_NE(v.get("registry"), nullptr);
    ASSERT_NE(v.get("breakers"), nullptr);
    EXPECT_GE(v.getInt("queue_capacity"), 1);

    // The embedded exposition is the same text the --metrics-port
    // endpoint serves.
    std::string expo = v.getString("exposition");
    EXPECT_NE(expo.find("# TYPE memoria_serve_requests_total counter"),
              std::string::npos)
        << expo.substr(0, 200);
    EXPECT_NE(expo.find("memoria_serve_requests_total 1"),
              std::string::npos)
        << "the metrics request itself is counted";
}

TEST(Top, ParsesMetricsResponseAndRendersFrame)
{
    obs::statsRegistry().resetValues();  // exact counts below
    Server server(quietOptions());
    server.start();
    Collector out;
    server.handleLine(
        "{\"id\":\"w\",\"kind\":\"compound\",\"program\":" +
            json::quote(kSmallProgram) + "}",
        out.fn());
    server.drain();
    server.handleLine("{\"id\":\"m\",\"kind\":\"metrics\"}", out.fn());
    ASSERT_EQ(out.lines.size(), 2u);

    TopSample cur = parseTopSample(out.parsed(1));
    ASSERT_TRUE(cur.valid);
    EXPECT_EQ(cur.counters["serve.requests_total"], 2u);
    EXPECT_TRUE(cur.draining);
    ASSERT_TRUE(cur.histograms.count("serve.latency_us.compound"));
    EXPECT_EQ(cur.histograms["serve.latency_us.compound"].count, 1u);
    EXPECT_FALSE(cur.breakers.empty());

    std::string frame = renderTopFrame(cur, nullptr);
    EXPECT_NE(frame.find("requests 2 total"), std::string::npos)
        << frame;
    EXPECT_NE(frame.find("compound"), std::string::npos);
    EXPECT_NE(frame.find("DRAINING"), std::string::npos);
    EXPECT_NE(frame.find("breakers"), std::string::npos);

    // RPS from a delta against a previous sample: 10 more requests
    // over one second.
    TopSample prev = cur;
    prev.tsMs = cur.tsMs - 1000;
    prev.counters["serve.requests_total"] = cur.counters["serve.requests_total"];
    cur.counters["serve.requests_total"] += 10;
    std::string frame2 = renderTopFrame(cur, &prev);
    EXPECT_NE(frame2.find("10.0 rps"), std::string::npos) << frame2;
}

TEST(Top, ParsesSnapshotFileLines)
{
    // The JSONL snapshot stream keys the registry as "stats".
    const char *line =
        "{\"ts_ms\":1000,\"queue_depth\":3,\"queue_capacity\":16,"
        "\"uptime_ms\":2000,\"draining\":false,"
        "\"stats\":{\"counters\":{\"serve.requests_total\":4},"
        "\"histograms\":{\"serve.stage.total_us\":{\"count\":4,"
        "\"p50\":100.0,\"p90\":200.0,\"p99\":300.0}}}}";
    Result<json::Value> v = json::parse(line);
    ASSERT_TRUE(v.ok());
    TopSample s = parseTopSample(v.value());
    ASSERT_TRUE(s.valid);
    EXPECT_EQ(s.queueDepth, 3);
    EXPECT_EQ(s.counters["serve.requests_total"], 4u);
    EXPECT_DOUBLE_EQ(s.histograms["serve.stage.total_us"].p99, 300.0);
    // Lifetime-average RPS: 4 requests over 2s of uptime.
    std::string frame = renderTopFrame(s, nullptr);
    EXPECT_NE(frame.find("2.0 rps"), std::string::npos) << frame;

    TopSample bad = parseTopSample(json::Value::object());
    EXPECT_FALSE(bad.valid);
    EXPECT_NE(renderTopFrame(bad, nullptr).find("no metrics"),
              std::string::npos);
}

TEST(Top, RendersWorkerRowsFromSupervisedMetrics)
{
    const char *line =
        "{\"ts_ms\":1000,\"uptime_ms\":2000,\"queue_depth\":0,"
        "\"queue_capacity\":64,\"draining\":false,"
        "\"workers\":[{\"shard\":0,\"pid\":100,\"state\":\"up\","
        "\"inflight\":1,\"queued\":2,\"respawns\":3,\"crashes\":4,"
        "\"heartbeat_age_ms\":5},{\"shard\":1,\"pid\":-1,"
        "\"state\":\"down\",\"heartbeat_age_ms\":-1}],"
        "\"registry\":{\"counters\":{\"serve.requests_total\":1}}}";
    Result<json::Value> v = json::parse(line);
    ASSERT_TRUE(v.ok());
    TopSample s = parseTopSample(v.value());
    ASSERT_TRUE(s.valid);
    ASSERT_EQ(s.workers.size(), 2u);
    EXPECT_EQ(s.workers[0].pid, 100);
    EXPECT_EQ(s.workers[0].respawns, 3);
    EXPECT_EQ(s.workers[1].state, "down");

    std::string frame = renderTopFrame(s, nullptr);
    EXPECT_NE(frame.find("shard0"), std::string::npos) << frame;
    EXPECT_NE(frame.find("shard1"), std::string::npos);
    EXPECT_NE(frame.find("down"), std::string::npos);
}

// ---------------------------------------------------------------------
// Retry jitter

TEST(Protocol, RetryAfterJitterStaysInBounds)
{
    const int64_t base = 1000;
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        int64_t v = jitteredRetryAfterMs(base);
        EXPECT_GE(v, 800) << "more than 20% below base";
        EXPECT_LE(v, 1200) << "more than 20% above base";
        seen.insert(v);
    }
    // A constant would re-synchronize shed clients — the whole point
    // of the jitter is that it spreads.
    EXPECT_GT(seen.size(), 10u);

    // Degenerate bases still return something positive.
    EXPECT_GE(jitteredRetryAfterMs(0), 1);
    EXPECT_GE(jitteredRetryAfterMs(1), 1);
}

// ---------------------------------------------------------------------
// Hostile input: oversized lines, nesting bombs, node-count bombs

TEST(Protocol, OversizedLineRejectedAsTooLargeWithoutParsing)
{
    std::string big(1 << 20, 'x');
    Result<Request> r = parseRequest(big, 4096);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diag().code, "protocol.too-large");
}

TEST(Protocol, DeepNestingRejectedAsTooLarge)
{
    // 4 MiB budget, but 1000 levels of nesting: depth, not size,
    // must trip the cap.
    std::string bomb = "{\"id\":\"d\",\"kind\":\"health\",\"x\":";
    for (int i = 0; i < 1000; ++i)
        bomb += "[";
    bomb += "1";
    for (int i = 0; i < 1000; ++i)
        bomb += "]";
    bomb += "}";
    Result<Request> r = parseRequest(bomb);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diag().code, "protocol.too-large");
}

TEST(Json, NodeCountBombTripsTheLimitDiag)
{
    // Tiny input, huge node count: "[],[],[]..." amplifies ~60x in
    // memory. The parser's maxNodes cap reports "json.limit", the
    // code protocol.cc maps to protocol.too-large.
    std::string bomb = "[";
    for (int i = 0; i < 5000; ++i)
        bomb += "[],";
    bomb += "[]]";
    json::ParseOptions popts;
    popts.maxNodes = 1000;
    Result<json::Value> r = json::parse(bomb, popts);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diag().code, "json.limit");

    // Same input under the default (1M) cap parses fine — the limit
    // exists for bombs, not for real requests.
    EXPECT_TRUE(json::parse(bomb).ok());
}

TEST(Serve, HostileInputFuzzGetsStructuredRejections)
{
    ServeOptions opts = quietOptions();
    opts.maxRequestBytes = 4096;
    Server server(opts);  // never started: rejections are inline
    Collector out;

    std::vector<std::string> hostile;
    hostile.push_back(std::string(8192, 'A'));            // oversized
    hostile.push_back("{\"id\":\"x\",\"kind\":");          // truncated
    hostile.push_back(std::string("\x00\xff\xfe garbage", 11));  // binary
    hostile.push_back("[[[[[[[[[[[[[[[[[[[[");             // unclosed
    {
        std::string deep = "{\"a\":";                      // deep
        for (int i = 0; i < 64; ++i)
            deep += "{\"a\":";
        deep += "1";
        for (int i = 0; i < 64; ++i)
            deep += "}";
        deep += "}";
        hostile.push_back(deep);
    }
    for (const std::string &line : hostile)
        server.handleLine(line, out.fn());

    ASSERT_EQ(out.lines.size(), hostile.size())
        << "every hostile line gets exactly one structured rejection";
    int tooLarge = 0;
    for (size_t i = 0; i < out.lines.size(); ++i) {
        json::Value v = out.parsed(i);
        EXPECT_EQ(v.getString("type"), "error") << out.lines[i];
        std::string code = v.getString("code");
        EXPECT_TRUE(code == "serve.request" ||
                    code == "protocol.too-large")
            << code;
        if (code == "protocol.too-large")
            ++tooLarge;
    }
    EXPECT_GE(tooLarge, 2) << "size and depth caps both engage";
}

// ---------------------------------------------------------------------
// Write-ahead journal

TEST(Journal, AdmitDoneLifecycleAndReadback)
{
    std::string path =
        (std::filesystem::temp_directory_path() / "memoria_j1.jsonl")
            .string();
    {
        Result<std::unique_ptr<Journal>> j = Journal::open(path);
        ASSERT_TRUE(j.ok()) << j.diag().str();
        Journal &journal = *j.value();
        journal.appendAdmit(1, "a", "analyze", 0, true, "{\"id\":\"a\"}");
        journal.appendAdmit(2, "b", "compound", 1, false,
                            "{\"id\":\"b\"}");
        journal.appendDone(1, "ok");
        journal.appendEvent("crash", {{"shard", "1"}, {"why", "test"}});
        EXPECT_EQ(journal.depth(), 1u);
        journal.sync();

        // seq 2 was admitted but never answered: readIncomplete must
        // surface exactly it.
        Result<std::vector<JournalEntry>> open =
            Journal::readIncomplete(path);
        ASSERT_TRUE(open.ok());
        ASSERT_EQ(open.value().size(), 1u);
        EXPECT_EQ(open.value()[0].seq, 2u);
        EXPECT_EQ(open.value()[0].id, "b");
        EXPECT_EQ(open.value()[0].kind, "compound");
        EXPECT_FALSE(open.value()[0].replay);
        EXPECT_EQ(open.value()[0].line, "{\"id\":\"b\"}");

        journal.appendDone(2, "worker-crashed");
        EXPECT_EQ(journal.depth(), 0u);
        journal.sync();
    }
    Result<std::vector<JournalEntry>> open = Journal::readIncomplete(path);
    ASSERT_TRUE(open.ok());
    EXPECT_TRUE(open.value().empty()) << "clean close leaves no orphans";
    std::remove(path.c_str());
}

TEST(Journal, RotatesOnlyWhenQuiescentAndOverBudget)
{
    std::string path =
        (std::filesystem::temp_directory_path() / "memoria_j2.jsonl")
            .string();
    JournalOptions jopts;
    jopts.maxBytes = 512;
    jopts.syncEveryRecords = 1;
    Result<std::unique_ptr<Journal>> j = Journal::open(path, jopts);
    ASSERT_TRUE(j.ok());
    Journal &journal = *j.value();

    // Push well past maxBytes with an admit held open: no rotation
    // while any request is unanswered.
    journal.appendAdmit(1, "pin", "analyze", 0, true, "{}");
    for (int i = 0; i < 20; ++i)
        journal.appendEvent("spawn", {{"shard", "0"}});
    size_t before = journal.bytes();
    EXPECT_GT(before, jopts.maxBytes);

    // The done both closes the window and triggers the rotation.
    journal.appendDone(1, "ok");
    EXPECT_LT(journal.bytes(), before);
    EXPECT_EQ(journal.depth(), 0u);
    std::remove(path.c_str());
}

TEST(Journal, RecycleEventsAndTornTailReadBackAsRecycleNotCrash)
{
    // A worker recycled mid-journal-write must audit as a graceful
    // recycle: the event records pass through readback untouched, the
    // torn tail is skipped, and only genuinely unanswered admits
    // surface — exactly the file a max-RSS recycle racing a kill -9
    // of the supervisor leaves behind.
    std::string path =
        (std::filesystem::temp_directory_path() / "memoria_j4.jsonl")
            .string();
    {
        std::ofstream out(path);
        out << "{\"op\":\"admit\",\"seq\":1,\"id\":\"a\","
               "\"kind\":\"analyze\",\"shard\":0,\"replay\":true,"
               "\"line\":\"{}\"}\n";
        out << "{\"op\":\"recycle_begin\",\"shard\":\"0\","
               "\"reason\":\"rss\",\"inflight\":\"1\"}\n";
        out << "{\"op\":\"done\",\"seq\":1,\"outcome\":\"ok\"}\n";
        out << "{\"op\":\"recycle\",\"shard\":\"0\","
               "\"reason\":\"rss\"}\n";
        out << "{\"op\":\"admit\",\"seq\":2,\"id\":\"b\","
               "\"kind\":\"analyze\",\"shard\":0,\"replay\":true,"
               "\"line\":\"{}\"}\n";
        out << "{\"op\":\"recycle_begin\",\"sha";  // torn mid-recycle
    }
    Result<std::vector<JournalEntry>> open = Journal::readIncomplete(path);
    ASSERT_TRUE(open.ok()) << open.diag().str();
    ASSERT_EQ(open.value().size(), 1u)
        << "recycle records and the torn tail must not pollute the audit";
    EXPECT_EQ(open.value()[0].seq, 2u);
    EXPECT_EQ(open.value()[0].id, "b");
    std::remove(path.c_str());
}

TEST(Journal, TornFinalLineIsSkippedOnReadback)
{
    std::string path =
        (std::filesystem::temp_directory_path() / "memoria_j3.jsonl")
            .string();
    {
        std::ofstream out(path);
        out << "{\"op\":\"admit\",\"seq\":7,\"id\":\"x\","
               "\"kind\":\"analyze\",\"shard\":0,\"replay\":true,"
               "\"line\":\"{}\"}\n";
        out << "{\"op\":\"done\",\"se";  // killed mid-append
    }
    Result<std::vector<JournalEntry>> open = Journal::readIncomplete(path);
    ASSERT_TRUE(open.ok());
    ASSERT_EQ(open.value().size(), 1u)
        << "torn tail ignored, whole records honored";
    EXPECT_EQ(open.value()[0].seq, 7u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Drain racing a signal under saturation

TEST(Serve, DrainRacingSignalUnderSaturationLosesNothing)
{
    signals::resetForTest();
    std::string snapshots =
        (std::filesystem::temp_directory_path() /
         "memoria_drain_race.jsonl")
            .string();
    std::remove(snapshots.c_str());

    ServeOptions opts = quietOptions();
    opts.jobs = 2;
    opts.queueCapacity = 4;  // saturates under the burst below
    opts.metricsPath = snapshots;
    Server server(opts);
    server.start();

    Collector out;
    const int kBurst = 32;
    for (int i = 0; i < kBurst; ++i)
        server.handleLine(requestLine("r" + std::to_string(i),
                                      "analyze", kSmallProgram),
                          out.fn());

    // A SIGTERM-style drain request lands while a scraper hammers the
    // inline metrics path and a second drainer races the first.
    std::thread scraper([&server, &out] {
        for (int i = 0; i < 50; ++i) {
            server.handleLine("{\"id\":\"m\",\"kind\":\"metrics\"}",
                              out.fn());
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    });
    signals::requestDrain();
    std::thread racer([&server] { server.drain(); });
    server.drain();
    racer.join();
    scraper.join();
    EXPECT_TRUE(signals::drainRequested());

    // Exactly one terminal response per work request — completed or
    // shed, never silence, never duplicates.
    std::map<std::string, int> perId;
    int metricsSeen = 0;
    {
        std::lock_guard<std::mutex> lock(out.mutex);
        for (const std::string &line : out.lines) {
            Result<json::Value> v = json::parse(line);
            ASSERT_TRUE(v.ok()) << line;
            if (v.value().getString("type") == "metrics") {
                ++metricsSeen;
                continue;
            }
            ++perId[v.value().getString("id")];
        }
    }
    EXPECT_EQ(perId.size(), static_cast<size_t>(kBurst));
    for (const auto &[id, n] : perId)
        EXPECT_EQ(n, 1) << "duplicate terminal response for " << id;
    EXPECT_EQ(metricsSeen, 50);

    // The drain wrote the final snapshot despite the race.
    std::ifstream in(snapshots);
    ASSERT_TRUE(in.good());
    std::string line;
    int snapshotLines = 0;
    while (std::getline(in, line))
        if (!line.empty())
            ++snapshotLines;
    EXPECT_EQ(snapshotLines, 1)
        << "exactly one final snapshot, no duplicate from the racer";
    std::remove(snapshots.c_str());
    signals::resetForTest();
}

// ---------------------------------------------------------------------
// Supervisor: multi-process shard workers (spawns the real binary)

#ifdef MEMORIA_BIN

SupervisorOptions
supervisedOptions(int workers)
{
    SupervisorOptions opts;
    opts.workers = workers;
    opts.workerCommand = {MEMORIA_BIN, "serve", "--jobs", "2",
                          "--no-incidents", "--allow-faults"};
    opts.serve.writeIncidents = false;
    opts.serve.allowFaultRequests = true;
    opts.backoffBaseMs = 50;  // fast respawns keep the test short
    opts.journalPath =
        (std::filesystem::temp_directory_path() /
         ("memoria_sup_j" + std::to_string(::getpid()) + ".jsonl"))
            .string();
    return opts;
}

/** A parseable program whose text varies with `i` (and therefore its
 *  shard assignment). */
std::string
shardProgram(int i)
{
    std::string s = kSmallProgram;
    auto pos = s.find("PROGRAM t");
    return s.substr(0, pos) + "PROGRAM t" + std::to_string(i) +
           s.substr(pos + 9);
}

/** First program variant the consistent hash lands on `shard`. */
std::string
programOnShard(const Supervisor &sup, int shard)
{
    for (int i = 0; i < 256; ++i) {
        std::string p = shardProgram(i);
        if (sup.shardOf(p) == shard)
            return p;
    }
    ADD_FAILURE() << "no program variant hashed to shard " << shard;
    return shardProgram(0);
}

/** Wait until `pred` holds or ~deadlineMs passes. */
template <typename Pred>
bool
waitFor(Pred pred, int64_t deadlineMs = 10000)
{
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(deadlineMs);
    while (std::chrono::steady_clock::now() < until) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return pred();
}

TEST(Supervisor, ShardHashIsStableAndCoversWorkers)
{
    Supervisor sup(supervisedOptions(2));  // never started: pure hash
    std::set<int> hit;
    for (int i = 0; i < 64; ++i) {
        std::string p = shardProgram(i);
        int s = sup.shardOf(p);
        EXPECT_EQ(s, sup.shardOf(p)) << "hash must be deterministic";
        ASSERT_GE(s, 0);
        ASSERT_LT(s, 2);
        hit.insert(s);
    }
    EXPECT_EQ(hit.size(), 2u) << "64 variants must cover both shards";
}

TEST(Supervisor, ServesWorkThroughShardWorkers)
{
    signals::resetForTest();
    SupervisorOptions opts = supervisedOptions(2);
    std::string journalPath = opts.journalPath;
    Supervisor sup(opts);
    sup.start();

    Collector out;
    const int kRequests = 8;
    for (int i = 0; i < kRequests; ++i)
        sup.handleLine(requestLine("w" + std::to_string(i), "analyze",
                                   shardProgram(i)),
                       out.fn());
    ASSERT_TRUE(waitFor([&] {
        std::lock_guard<std::mutex> lock(out.mutex);
        return out.lines.size() >= static_cast<size_t>(kRequests);
    })) << "workers must answer all forwarded requests";

    std::map<std::string, int> perId;
    for (int i = 0; i < kRequests; ++i) {
        json::Value v = out.parsed(i);
        EXPECT_EQ(v.getString("type"), "result") << out.lines[i];
        ++perId[v.getString("id")];
    }
    EXPECT_EQ(perId.size(), static_cast<size_t>(kRequests));
    for (const auto &[id, n] : perId)
        EXPECT_EQ(n, 1) << id;

    sup.drain();
    EXPECT_EQ(sup.requestCounters().completed,
              static_cast<uint64_t>(kRequests));

    // Post-drain the journal audits clean: every admit has a done.
    Result<std::vector<JournalEntry>> open =
        Journal::readIncomplete(journalPath);
    ASSERT_TRUE(open.ok());
    EXPECT_TRUE(open.value().empty());
    std::remove(journalPath.c_str());
}

TEST(Supervisor, WorkerCrashRetriesIdempotentAndRespawns)
{
    signals::resetForTest();
    obs::statsRegistry().resetValues();
    SupervisorOptions opts = supervisedOptions(2);
    std::string journalPath = opts.journalPath;
    Supervisor sup(opts);
    sup.start();

    const std::string victim = programOnShard(sup, 0);
    const std::string bystander = programOnShard(sup, 1);

    Collector out;
    // Park legitimate work on the sibling shard first.
    sup.handleLine(requestLine("calm", "analyze", bystander), out.fn());

    // An idempotent request whose processing aborts the shard-0
    // worker: the supervisor must respawn the worker and transparently
    // retry (the fault spec is stripped on the second attempt).
    sup.handleLine("{\"id\":\"boom\",\"kind\":\"analyze\",\"program\":" +
                       json::quote(victim) +
                       ",\"fault\":\"serve.worker.crash:abort\"}",
                   out.fn());

    ASSERT_TRUE(waitFor([&] {
        std::lock_guard<std::mutex> lock(out.mutex);
        return out.lines.size() >= 2u;
    })) << "both requests must resolve despite the crash";

    json::Value calm, boom;
    for (size_t i = 0; i < 2; ++i) {
        json::Value v = out.parsed(i);
        if (v.getString("id") == "calm")
            calm = std::move(v);
        else if (v.getString("id") == "boom")
            boom = std::move(v);
    }
    EXPECT_EQ(calm.getString("type"), "result")
        << "sibling shard must be unaffected by the crash";
    EXPECT_EQ(boom.getString("type"), "result")
        << "idempotent request must be retried, not failed";
    EXPECT_TRUE(boom.getBool("retried"))
        << "the response must disclose it came from a retry";

    // The respawn is visible: worker rows and the counters both say
    // shard 0 died once and came back.
    ASSERT_TRUE(waitFor([&] {
        std::vector<WorkerRow> rows = sup.workerRows();
        return rows[0].state == "up" && rows[0].respawns >= 1;
    })) << "shard 0 must respawn after the abort";
    std::vector<WorkerRow> rows = sup.workerRows();
    EXPECT_GE(rows[0].crashes, 1u);
    EXPECT_EQ(rows[1].crashes, 0u) << "sibling never died";
    EXPECT_GE(obs::counter("serve.worker.respawns").value(), 1u);
    EXPECT_GE(obs::counter("serve.worker.retries").value(), 1u);

    // The crash kind was classified from the wait status.
    EXPECT_GE(obs::counter("serve.worker.crash.sigabrt").value(), 1u);

    // And `memoria top` renders the respawn from the metrics line.
    Result<json::Value> metrics = json::parse(sup.metricsLine("t"));
    ASSERT_TRUE(metrics.ok());
    TopSample sample = parseTopSample(metrics.value());
    ASSERT_TRUE(sample.valid);
    ASSERT_EQ(sample.workers.size(), 2u);
    EXPECT_GE(sample.workers[0].respawns, 1);

    sup.drain();
    Result<std::vector<JournalEntry>> open =
        Journal::readIncomplete(journalPath);
    ASSERT_TRUE(open.ok());
    EXPECT_TRUE(open.value().empty())
        << "crash-retried requests still audit as answered";
    std::remove(journalPath.c_str());
}

TEST(Supervisor, NonIdempotentCrashGetsWorkerCrashedError)
{
    signals::resetForTest();
    SupervisorOptions opts = supervisedOptions(2);
    std::string journalPath = opts.journalPath;
    Supervisor sup(opts);
    sup.start();

    const std::string victim = programOnShard(sup, 0);

    Collector out;
    // compound without "replay": the supervisor must NOT re-run it.
    sup.handleLine("{\"id\":\"nc\",\"kind\":\"compound\",\"program\":" +
                       json::quote(victim) +
                       ",\"fault\":\"serve.worker.crash:abort\"}",
                   out.fn());
    ASSERT_TRUE(waitFor([&] {
        std::lock_guard<std::mutex> lock(out.mutex);
        return out.lines.size() >= 1u;
    }));
    json::Value v = out.parsed(0);
    EXPECT_EQ(v.getString("type"), "error") << out.lines[0];
    EXPECT_EQ(v.getString("code"), "serve.worker-crashed");

    // With explicit opt-in, the same compound IS replayed and
    // succeeds on the respawned worker.
    sup.handleLine("{\"id\":\"rc\",\"kind\":\"compound\",\"program\":" +
                       json::quote(victim) +
                       ",\"fault\":\"serve.worker.crash:abort\"" +
                       ",\"replay\":true}",
                   out.fn());
    ASSERT_TRUE(waitFor([&] {
        std::lock_guard<std::mutex> lock(out.mutex);
        return out.lines.size() >= 2u;
    }));
    json::Value rv = out.parsed(1);
    EXPECT_EQ(rv.getString("type"), "result") << out.lines[1];
    EXPECT_TRUE(rv.getBool("retried"));

    sup.drain();
    std::remove(journalPath.c_str());
}

TEST(Supervisor, DrainCancelsQueuedAndExitsWorkersCleanly)
{
    signals::resetForTest();
    SupervisorOptions opts = supervisedOptions(2);
    std::string journalPath = opts.journalPath;
    Supervisor sup(opts);
    sup.start();

    Collector out;
    for (int i = 0; i < 4; ++i)
        sup.handleLine(requestLine("d" + std::to_string(i), "analyze",
                                   shardProgram(i)),
                       out.fn());
    sup.drain();

    // Every admitted request resolved (result or cancelled), and new
    // work is refused.
    {
        std::lock_guard<std::mutex> lock(out.mutex);
        EXPECT_EQ(out.lines.size(), 4u);
    }
    sup.handleLine(requestLine("late", "analyze", shardProgram(9)),
                   out.fn());
    {
        std::lock_guard<std::mutex> lock(out.mutex);
        ASSERT_EQ(out.lines.size(), 5u);
    }
    EXPECT_EQ(out.parsed(4).getString("type"), "cancelled");

    Result<std::vector<JournalEntry>> open =
        Journal::readIncomplete(journalPath);
    ASSERT_TRUE(open.ok());
    EXPECT_TRUE(open.value().empty());
    std::remove(journalPath.c_str());
}

/** The first `n` program variants that hash to `shard`. */
std::vector<std::string>
programsOnShard(const Supervisor &sup, int shard, int n)
{
    std::vector<std::string> out;
    for (int i = 0; i < 1024 && static_cast<int>(out.size()) < n; ++i) {
        std::string p = shardProgram(i);
        if (sup.shardOf(p) == shard)
            out.push_back(p);
    }
    EXPECT_EQ(out.size(), static_cast<size_t>(n));
    return out;
}

TEST(Supervisor, MaxRequestsRecycleIsGracefulAndLosesNothing)
{
    signals::resetForTest();
    obs::statsRegistry().resetValues();
    SupervisorOptions opts = supervisedOptions(2);
    opts.maxRequestsPerWorker = 3;  // recycle every third answer
    std::string journalPath = opts.journalPath;
    Supervisor sup(opts);
    sup.start();

    const int kRequests = 8;  // forces at least two recycles on shard 0
    std::vector<std::string> programs =
        programsOnShard(sup, 0, kRequests);
    Collector out;
    for (int i = 0; i < kRequests; ++i)
        sup.handleLine(requestLine("g" + std::to_string(i), "analyze",
                                   programs[i]),
                       out.fn());

    ASSERT_TRUE(waitFor([&] {
        std::lock_guard<std::mutex> lock(out.mutex);
        return out.lines.size() >= static_cast<size_t>(kRequests);
    })) << "requests spanning a recycle must all be answered";

    // Exactly one *successful* terminal response per id: the recycle
    // is invisible to clients — no errors, no retries needed (the
    // worker drains its in-flight before exiting).
    std::map<std::string, int> perId;
    for (int i = 0; i < kRequests; ++i) {
        json::Value v = out.parsed(i);
        EXPECT_EQ(v.getString("type"), "result") << out.lines[i];
        ++perId[v.getString("id")];
    }
    EXPECT_EQ(perId.size(), static_cast<size_t>(kRequests));
    for (const auto &[id, n] : perId)
        EXPECT_EQ(n, 1) << id;

    // The recycle is classified as graceful, not a crash.
    ASSERT_TRUE(waitFor([&] {
        std::vector<WorkerRow> rows = sup.workerRows();
        return rows[0].state == "up" && rows[0].recycles >= 2;
    })) << "shard 0 must recycle (twice for 8 answers at 3/life) and "
           "come back up";
    std::vector<WorkerRow> rows = sup.workerRows();
    EXPECT_EQ(rows[0].crashes, 0u)
        << "a graceful recycle must never count as a crash";
    EXPECT_EQ(rows[1].recycles, 0u) << "sibling shard untouched";
    EXPECT_GE(obs::counter("serve.worker.recycled").value(), 2u);
    EXPECT_EQ(obs::counter("serve.worker.crash.sigabrt").value(), 0u);
    EXPECT_EQ(obs::counter("serve.worker.retries").value(), 0u)
        << "nothing was re-run; in-flight drained before exit";

    // And the metrics line renders the recycle for `memoria top`.
    Result<json::Value> metrics = json::parse(sup.metricsLine("t"));
    ASSERT_TRUE(metrics.ok());
    TopSample sample = parseTopSample(metrics.value());
    ASSERT_TRUE(sample.valid);
    ASSERT_EQ(sample.workers.size(), 2u);
    EXPECT_GE(sample.workers[0].recycles, 2);

    sup.drain();
    Result<std::vector<JournalEntry>> open =
        Journal::readIncomplete(journalPath);
    ASSERT_TRUE(open.ok());
    EXPECT_TRUE(open.value().empty())
        << "recycles admit/done-balance the journal like normal work";
    std::remove(journalPath.c_str());
}

TEST(Supervisor, SighupRollingRestartUnderLoadLosesNothing)
{
    signals::resetForTest();
    obs::statsRegistry().resetValues();
    SupervisorOptions opts = supervisedOptions(2);
    std::string journalPath = opts.journalPath;
    Supervisor sup(opts);
    sup.start();

    // Load both shards, then request the roll mid-stream.
    Collector out;
    const int kRequests = 16;
    for (int i = 0; i < kRequests; ++i) {
        sup.handleLine(requestLine("h" + std::to_string(i), "analyze",
                                   shardProgram(i)),
                       out.fn());
        if (i == 4)
            signals::requestHup();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    // The roll visits every shard, one at a time, and the fleet ends
    // whole.
    ASSERT_TRUE(waitFor([&] {
        std::vector<WorkerRow> rows = sup.workerRows();
        return rows[0].recycles >= 1 && rows[1].recycles >= 1 &&
               rows[0].state == "up" && rows[1].state == "up";
    })) << "SIGHUP must recycle every shard and end with all workers up";
    EXPECT_GE(obs::counter("serve.rolling_restarts").value(), 1u);

    ASSERT_TRUE(waitFor([&] {
        std::lock_guard<std::mutex> lock(out.mutex);
        return out.lines.size() >= static_cast<size_t>(kRequests);
    })) << "every request sent across the roll must be answered";

    std::map<std::string, int> perId;
    for (int i = 0; i < kRequests; ++i) {
        json::Value v = out.parsed(i);
        EXPECT_EQ(v.getString("type"), "result") << out.lines[i];
        ++perId[v.getString("id")];
    }
    EXPECT_EQ(perId.size(), static_cast<size_t>(kRequests));
    for (const auto &[id, n] : perId)
        EXPECT_EQ(n, 1) << "duplicate response for " << id;

    std::vector<WorkerRow> rows = sup.workerRows();
    EXPECT_EQ(rows[0].crashes, 0u);
    EXPECT_EQ(rows[1].crashes, 0u);

    sup.drain();
    Result<std::vector<JournalEntry>> open =
        Journal::readIncomplete(journalPath);
    ASSERT_TRUE(open.ok());
    EXPECT_TRUE(open.value().empty());
    std::remove(journalPath.c_str());
}

#endif  // MEMORIA_BIN

} // namespace
} // namespace serve
} // namespace memoria
