/** Tests for the compile service (src/serve/): request parsing, the
 *  exactly-one-terminal-response invariant, admission-queue
 *  backpressure, circuit-breaker trip → half-open → reset, breaker-
 *  driven degraded service, and zero-loss drain. */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/breaker.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/top.hh"
#include "support/json.hh"
#include "support/stats.hh"

namespace memoria {
namespace serve {
namespace {

const char *kSmallProgram = "PROGRAM t\n"
                            "  PARAMETER N = 8\n"
                            "  REAL*8 A(N,N)\n"
                            "  DO I = 1, N\n"
                            "    DO J = 1, N\n"
                            "      A(I,J) = A(I,J) + 1.0\n"
                            "    ENDDO\n"
                            "  ENDDO\n"
                            "END\n";

const char *kHeavyProgram = "PROGRAM heavy\n"
                            "  PARAMETER N = 64\n"
                            "  REAL*8 A(N,N)\n"
                            "  REAL*8 B(N,N)\n"
                            "  DO I = 1, N\n"
                            "    DO J = 1, N\n"
                            "      DO K = 1, N\n"
                            "        A(I,J) = A(I,J) + B(J,K)\n"
                            "      ENDDO\n"
                            "    ENDDO\n"
                            "  ENDDO\n"
                            "END\n";

std::string
requestLine(const std::string &id, const std::string &kind,
            const std::string &program, int64_t deadlineMs = 0)
{
    std::string line = "{\"id\":" + json::quote(id) +
                       ",\"kind\":" + json::quote(kind);
    if (!program.empty())
        line += ",\"program\":" + json::quote(program);
    if (deadlineMs > 0)
        line += ",\"deadline_ms\":" + std::to_string(deadlineMs);
    return line + "}";
}

/** Thread-safe response collector. */
struct Collector
{
    std::mutex mutex;
    std::vector<std::string> lines;

    Server::Respond
    fn()
    {
        return [this](const std::string &line) {
            std::lock_guard<std::mutex> lock(mutex);
            lines.push_back(line);
        };
    }

    json::Value
    parsed(size_t i)
    {
        Result<json::Value> v = json::parse(lines.at(i));
        EXPECT_TRUE(v.ok()) << lines.at(i);
        return v.ok() ? v.value() : json::Value();
    }

    /** Count of responses with the given "type". */
    int
    countType(const std::string &type)
    {
        int n = 0;
        for (size_t i = 0; i < lines.size(); ++i)
            if (parsed(i).getString("type") == type)
                ++n;
        return n;
    }
};

// ---------------------------------------------------------------------
// Protocol

TEST(Protocol, RejectsMalformedRequests)
{
    EXPECT_FALSE(parseRequest("not json").ok());
    EXPECT_FALSE(parseRequest("[1,2]").ok());
    EXPECT_FALSE(parseRequest("{\"kind\":\"compound\"}").ok())
        << "work requests need a program";
    EXPECT_FALSE(
        parseRequest("{\"kind\":\"explode\",\"program\":\"x\"}").ok());
    EXPECT_FALSE(parseRequest("{\"kind\":\"compound\","
                              "\"program\":\"x\",\"deadline_ms\":-1}")
                     .ok());
}

TEST(Protocol, ParsesWorkAndIntrospectionRequests)
{
    Result<Request> r =
        parseRequest(requestLine("42", "compound", kSmallProgram, 500));
    ASSERT_TRUE(r.ok()) << r.diag().str();
    EXPECT_EQ(r.value().id, "42");
    EXPECT_EQ(r.value().kind, RequestKind::Compound);
    EXPECT_EQ(r.value().deadlineMs, 500);

    Result<Request> h = parseRequest("{\"kind\":\"health\"}");
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h.value().kind, RequestKind::Health);
}

// ---------------------------------------------------------------------
// Circuit breaker state machine

TEST(Breaker, TripHalfOpenReset)
{
    BreakerOptions opts;
    opts.failureThreshold = 2;
    opts.cooldownMs = 40;
    CircuitBreaker b("test", opts);

    EXPECT_TRUE(b.allow());
    b.onFailure("boom 1");
    EXPECT_TRUE(b.allow());
    b.onFailure("boom 2");  // threshold reached: trips open

    CircuitBreaker::Snapshot snap = b.snapshot();
    EXPECT_EQ(snap.trips, 1);
    EXPECT_FALSE(b.allow()) << "open breaker rejects";
    EXPECT_GE(b.snapshot().rejected, 1);

    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_TRUE(b.allow()) << "cooldown elapsed: half-open probe";
    EXPECT_FALSE(b.allow()) << "only one probe in flight";

    b.onSuccess();  // probe succeeded: closed again
    snap = b.snapshot();
    EXPECT_EQ(snap.resets, 1);
    EXPECT_TRUE(b.allow());
}

TEST(Breaker, FailedProbeReopens)
{
    BreakerOptions opts;
    opts.failureThreshold = 1;
    opts.cooldownMs = 30;
    CircuitBreaker b("test", opts);

    b.onFailure("boom");
    EXPECT_FALSE(b.allow());
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    EXPECT_TRUE(b.allow());  // probe
    b.onFailure("probe failed");
    EXPECT_FALSE(b.allow()) << "failed probe reopens immediately";
    EXPECT_EQ(b.snapshot().trips, 2);
}

// ---------------------------------------------------------------------
// Server

ServeOptions
quietOptions()
{
    ServeOptions opts;
    opts.jobs = 2;
    opts.writeIncidents = false;  // unit tests don't litter artifacts/
    return opts;
}

TEST(Serve, HealthAndStatsBypassTheQueue)
{
    Server server(quietOptions());  // never started: no workers
    Collector out;
    server.handleLine("{\"id\":\"h\",\"kind\":\"health\"}", out.fn());
    server.handleLine("{\"id\":\"s\",\"kind\":\"stats\"}", out.fn());

    ASSERT_EQ(out.lines.size(), 2u);
    json::Value health = out.parsed(0);
    EXPECT_EQ(health.getString("type"), "health");
    EXPECT_EQ(health.getString("status"), "ok");
    ASSERT_NE(health.get("breakers"), nullptr);
    ASSERT_NE(health.get("requests"), nullptr);

    json::Value stats = out.parsed(1);
    EXPECT_EQ(stats.getString("type"), "stats");
    EXPECT_NE(stats.get("breakers"), nullptr);
    EXPECT_NE(stats.get("registry"), nullptr);
}

TEST(Serve, MalformedLineGetsExactlyOneError)
{
    Server server(quietOptions());
    Collector out;
    server.handleLine("this is not json", out.fn());
    server.handleLine("", out.fn());     // blank: ignored, no response
    server.handleLine("  \t ", out.fn());

    ASSERT_EQ(out.lines.size(), 1u);
    EXPECT_EQ(out.parsed(0).getString("type"), "error");
    EXPECT_EQ(out.parsed(0).getString("code"), "serve.request");
}

TEST(Serve, FullQueueShedsWithRetryAfter)
{
    ServeOptions opts = quietOptions();
    opts.jobs = 1;
    opts.queueCapacity = 2;
    opts.retryAfterMs = 123;
    Server server(opts);  // not started: the queue only fills

    Collector out;
    for (int i = 0; i < 4; ++i)
        server.handleLine(requestLine("q" + std::to_string(i),
                                      "analyze", kSmallProgram),
                          out.fn());

    // Two admitted silently, two shed immediately.
    ASSERT_EQ(out.lines.size(), 2u);
    for (size_t i = 0; i < out.lines.size(); ++i) {
        json::Value v = out.parsed(i);
        EXPECT_EQ(v.getString("type"), "overloaded");
        EXPECT_EQ(v.getInt("retry_after_ms"), 123);
    }
    EXPECT_EQ(server.requestCounters().shed, 2u);
    EXPECT_EQ(server.requestCounters().accepted, 2u);
    EXPECT_EQ(server.queueDepth(), 2u);

    // Draining answers the admitted requests: nothing is lost.
    server.start();
    server.drain();
    ASSERT_EQ(out.lines.size(), 4u);
    EXPECT_EQ(out.countType("result"), 2);
    EXPECT_EQ(server.requestCounters().completed, 2u);
}

TEST(Serve, DrainLosesNoAcceptedRequests)
{
    ServeOptions opts = quietOptions();
    opts.jobs = 3;
    opts.queueCapacity = 64;
    Server server(opts);
    server.start();

    Collector out;
    const int kRequests = 12;
    for (int i = 0; i < kRequests; ++i)
        server.handleLine(requestLine("r" + std::to_string(i),
                                      i % 2 ? "compound" : "analyze",
                                      kSmallProgram),
                          out.fn());
    server.drain();

    ASSERT_EQ(out.lines.size(), static_cast<size_t>(kRequests));
    std::map<std::string, int> perId;
    for (int i = 0; i < kRequests; ++i) {
        json::Value v = out.parsed(i);
        EXPECT_EQ(v.getString("type"), "result") << out.lines[i];
        ++perId[v.getString("id")];
    }
    for (const auto &[id, n] : perId)
        EXPECT_EQ(n, 1) << "duplicate terminal response for " << id;
    EXPECT_EQ(perId.size(), static_cast<size_t>(kRequests));
    EXPECT_EQ(server.requestCounters().completed,
              static_cast<uint64_t>(kRequests));
}

TEST(Serve, DrainingServerCancelsNewWork)
{
    Server server(quietOptions());
    server.start();
    server.drain();

    Collector out;
    server.handleLine(requestLine("late", "analyze", kSmallProgram),
                      out.fn());
    ASSERT_EQ(out.lines.size(), 1u);
    EXPECT_EQ(out.parsed(0).getString("type"), "cancelled");

    // Introspection still works on a drained server.
    server.handleLine("{\"id\":\"h\",\"kind\":\"health\"}", out.fn());
    ASSERT_EQ(out.lines.size(), 2u);
    EXPECT_EQ(out.parsed(1).getString("status"), "draining");
}

TEST(Serve, RequestDeadlineTimesOutAndIsReported)
{
    ServeOptions opts = quietOptions();
    opts.jobs = 1;
    Server server(opts);
    server.start();

    Collector out;
    server.handleLine(requestLine("t", "simulate", kHeavyProgram, 1),
                      out.fn());
    server.drain();

    ASSERT_EQ(out.lines.size(), 1u);
    json::Value v = out.parsed(0);
    EXPECT_EQ(v.getString("type"), "result");
    EXPECT_EQ(v.getString("status"), "timeout") << out.lines[0];
    ASSERT_NE(v.get("failures"), nullptr);
    EXPECT_FALSE(v.get("failures")->items().empty());
}

TEST(Serve, OpenOptimizeBreakerDegradesToIdentity)
{
    ServeOptions opts = quietOptions();
    opts.jobs = 1;
    opts.breaker.cooldownMs = 60000;  // stays open for the whole test
    Server server(opts);

    // Trip the optimize breaker directly (threshold defaults to 3).
    for (int i = 0; i < opts.breaker.failureThreshold; ++i)
        server.breaker(Stage::Optimize).onFailure("induced");
    ASSERT_FALSE(server.breaker(Stage::Optimize).allow());

    server.start();
    Collector out;
    server.handleLine(requestLine("d", "compound", kSmallProgram),
                      out.fn());
    server.drain();

    ASSERT_EQ(out.lines.size(), 1u);
    json::Value v = out.parsed(0);
    EXPECT_EQ(v.getString("type"), "result");
    EXPECT_TRUE(v.getBool("degraded_by_breaker")) << out.lines[0];
    EXPECT_EQ(v.getString("rung"), "identity") << out.lines[0];
}

TEST(Serve, OpenLoadBreakerRejectsRequests)
{
    ServeOptions opts = quietOptions();
    opts.jobs = 1;
    opts.breaker.cooldownMs = 60000;  // stays open for the whole test
    Server server(opts);
    for (int i = 0; i < opts.breaker.failureThreshold; ++i)
        server.breaker(Stage::Load).onFailure("induced");

    server.start();
    Collector out;
    server.handleLine(requestLine("x", "analyze", kSmallProgram),
                      out.fn());
    server.drain();

    ASSERT_EQ(out.lines.size(), 1u);
    json::Value v = out.parsed(0);
    EXPECT_EQ(v.getString("type"), "error");
    EXPECT_EQ(v.getString("code"), "serve.unavailable");
}

TEST(Serve, MixedCorpusGetsExactlyOneResponseEach)
{
    ServeOptions opts = quietOptions();
    opts.jobs = 2;
    opts.queueCapacity = 64;
    Server server(opts);
    server.start();

    Collector out;
    int expected = 0;
    for (int i = 0; i < 8; ++i) {
        server.handleLine(requestLine("m" + std::to_string(i),
                                      "analyze", kSmallProgram),
                          out.fn());
        ++expected;
    }
    server.handleLine("garbage", out.fn());
    ++expected;
    server.handleLine("{\"id\":\"h\",\"kind\":\"health\"}", out.fn());
    ++expected;
    server.handleLine("", out.fn());  // blank: no response expected
    server.drain();

    EXPECT_EQ(out.lines.size(), static_cast<size_t>(expected));
}

// ---------------------------------------------------------------------
// Request telemetry: timings, trace ids, the metrics kind, and top

TEST(Serve, ResultCarriesMonotonicStageTimings)
{
    Server server(quietOptions());
    server.start();

    Collector out;
    server.handleLine(
        "{\"id\":\"t1\",\"kind\":\"simulate\",\"program\":" +
            json::quote(kSmallProgram) + "}",
        out.fn());
    server.drain();

    ASSERT_EQ(out.lines.size(), 1u);
    json::Value v = out.parsed(0);
    ASSERT_EQ(v.getString("type"), "result") << out.lines[0];
    const json::Value *t = v.get("timings");
    ASSERT_NE(t, nullptr) << "result lacks a timings block";

    const double queueUs = t->getNumber("queue_us");
    const double loadUs = t->getNumber("load_us");
    const double optimizeUs = t->getNumber("optimize_us");
    const double verifyUs = t->getNumber("verify_us");
    const double simulateUs = t->getNumber("simulate_us");
    const double totalUs = t->getNumber("total_us");

    EXPECT_GE(queueUs, 0.0);
    EXPECT_GT(loadUs, 0.0) << "parsing the program takes time";
    EXPECT_GE(optimizeUs, 0.0);
    EXPECT_GE(verifyUs, 0.0);
    EXPECT_GT(simulateUs, 0.0) << "simulate requests simulate";
    EXPECT_GT(totalUs, 0.0);

    // The stages are disjoint slices of the request's wall time, so
    // their sum cannot exceed it (1us of float slack).
    EXPECT_LE(queueUs + loadUs + optimizeUs + verifyUs + simulateUs,
              totalUs + 1.0);
}

TEST(Serve, TraceIdEchoedWhenGivenMintedWhenAbsent)
{
    Server server(quietOptions());
    server.start();

    Collector out;
    server.handleLine(
        "{\"id\":\"a\",\"kind\":\"analyze\",\"trace_id\":\"tFEED\","
        "\"program\":" + json::quote(kSmallProgram) + "}",
        out.fn());
    server.handleLine(
        "{\"id\":\"b\",\"kind\":\"analyze\",\"program\":" +
            json::quote(kSmallProgram) + "}",
        out.fn());
    server.handleLine(
        "{\"id\":\"c\",\"kind\":\"analyze\",\"program\":" +
            json::quote(kSmallProgram) + "}",
        out.fn());
    server.drain();

    ASSERT_EQ(out.lines.size(), 3u);
    std::map<std::string, std::string> traceById;
    for (size_t i = 0; i < 3; ++i) {
        json::Value v = out.parsed(i);
        traceById[v.getString("id")] = v.getString("trace_id");
    }
    EXPECT_EQ(traceById["a"], "tFEED") << "client ids are echoed";
    EXPECT_FALSE(traceById["b"].empty()) << "server mints an id";
    EXPECT_FALSE(traceById["c"].empty());
    EXPECT_NE(traceById["b"], traceById["c"])
        << "two requests never share a minted trace id";
}

TEST(Serve, MetricsRequestAnswersInlineWithoutWorkers)
{
    obs::statsRegistry().resetValues();  // exact counts below
    Server server(quietOptions());  // never started: no workers
    Collector out;
    server.handleLine("{\"id\":\"m\",\"kind\":\"metrics\"}", out.fn());

    ASSERT_EQ(out.lines.size(), 1u);
    json::Value v = out.parsed(0);
    EXPECT_EQ(v.getString("type"), "metrics");
    EXPECT_EQ(v.getString("id"), "m");
    ASSERT_NE(v.get("registry"), nullptr);
    ASSERT_NE(v.get("breakers"), nullptr);
    EXPECT_GE(v.getInt("queue_capacity"), 1);

    // The embedded exposition is the same text the --metrics-port
    // endpoint serves.
    std::string expo = v.getString("exposition");
    EXPECT_NE(expo.find("# TYPE memoria_serve_requests_total counter"),
              std::string::npos)
        << expo.substr(0, 200);
    EXPECT_NE(expo.find("memoria_serve_requests_total 1"),
              std::string::npos)
        << "the metrics request itself is counted";
}

TEST(Top, ParsesMetricsResponseAndRendersFrame)
{
    obs::statsRegistry().resetValues();  // exact counts below
    Server server(quietOptions());
    server.start();
    Collector out;
    server.handleLine(
        "{\"id\":\"w\",\"kind\":\"compound\",\"program\":" +
            json::quote(kSmallProgram) + "}",
        out.fn());
    server.drain();
    server.handleLine("{\"id\":\"m\",\"kind\":\"metrics\"}", out.fn());
    ASSERT_EQ(out.lines.size(), 2u);

    TopSample cur = parseTopSample(out.parsed(1));
    ASSERT_TRUE(cur.valid);
    EXPECT_EQ(cur.counters["serve.requests_total"], 2u);
    EXPECT_TRUE(cur.draining);
    ASSERT_TRUE(cur.histograms.count("serve.latency_us.compound"));
    EXPECT_EQ(cur.histograms["serve.latency_us.compound"].count, 1u);
    EXPECT_FALSE(cur.breakers.empty());

    std::string frame = renderTopFrame(cur, nullptr);
    EXPECT_NE(frame.find("requests 2 total"), std::string::npos)
        << frame;
    EXPECT_NE(frame.find("compound"), std::string::npos);
    EXPECT_NE(frame.find("DRAINING"), std::string::npos);
    EXPECT_NE(frame.find("breakers"), std::string::npos);

    // RPS from a delta against a previous sample: 10 more requests
    // over one second.
    TopSample prev = cur;
    prev.tsMs = cur.tsMs - 1000;
    prev.counters["serve.requests_total"] = cur.counters["serve.requests_total"];
    cur.counters["serve.requests_total"] += 10;
    std::string frame2 = renderTopFrame(cur, &prev);
    EXPECT_NE(frame2.find("10.0 rps"), std::string::npos) << frame2;
}

TEST(Top, ParsesSnapshotFileLines)
{
    // The JSONL snapshot stream keys the registry as "stats".
    const char *line =
        "{\"ts_ms\":1000,\"queue_depth\":3,\"queue_capacity\":16,"
        "\"uptime_ms\":2000,\"draining\":false,"
        "\"stats\":{\"counters\":{\"serve.requests_total\":4},"
        "\"histograms\":{\"serve.stage.total_us\":{\"count\":4,"
        "\"p50\":100.0,\"p90\":200.0,\"p99\":300.0}}}}";
    Result<json::Value> v = json::parse(line);
    ASSERT_TRUE(v.ok());
    TopSample s = parseTopSample(v.value());
    ASSERT_TRUE(s.valid);
    EXPECT_EQ(s.queueDepth, 3);
    EXPECT_EQ(s.counters["serve.requests_total"], 4u);
    EXPECT_DOUBLE_EQ(s.histograms["serve.stage.total_us"].p99, 300.0);
    // Lifetime-average RPS: 4 requests over 2s of uptime.
    std::string frame = renderTopFrame(s, nullptr);
    EXPECT_NE(frame.find("2.0 rps"), std::string::npos) << frame;

    TopSample bad = parseTopSample(json::Value::object());
    EXPECT_FALSE(bad.valid);
    EXPECT_NE(renderTopFrame(bad, nullptr).find("no metrics"),
              std::string::npos);
}

} // namespace
} // namespace serve
} // namespace memoria
