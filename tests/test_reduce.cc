/** Tests for the ddmin delta-debugging reducer (check/reduce.hh) and
 *  the incident-bundle layer built on it (harness/incident.hh): the
 *  minimized program still fails the same predicate, is 1-minimal,
 *  respects its budgets, and reduces deterministically. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "check/reduce.hh"
#include "frontend/parser.hh"
#include "harness/incident.hh"
#include "ir/printer.hh"
#include "support/json.hh"

namespace memoria {
namespace {

Program
parseOrDie(const std::string &src)
{
    ParseError err;
    auto p = parseProgram(src, &err);
    if (!p)
        throw std::runtime_error("test program does not parse: " +
                                 err.str());
    return std::move(*p);
}

/** Three independent statements; a predicate pinned to B's statement
 *  leaves the reducer plenty to delete. */
const char *kThreeStatements = R"(PROGRAM t
  PARAMETER N = 8
  REAL*8 A(N)
  REAL*8 B(N)
  REAL*8 C(N)
  DO I = 1, N
    A(I) = A(I) + 1.0
  ENDDO
  DO I = 1, N
    B(I) = B(I) + 2.0
  ENDDO
  DO I = 1, N
    C(I) = C(I) + 3.0
  ENDDO
END
)";

/** "Still fails": the program writes to B somewhere. */
bool
writesB(const Program &p)
{
    return printProgram(p).find("B(") != std::string::npos;
}

TEST(Reduce, CountIrNodesIsPositiveAndMonotone)
{
    Program prog = parseOrDie(kThreeStatements);
    size_t whole = countIrNodes(prog);
    EXPECT_GT(whole, 0u);

    ReduceResult res = reduceProgram(prog, writesB);
    EXPECT_LT(countIrNodes(res.program), whole);
}

TEST(Reduce, MinimizedProgramStillFailsSamePredicate)
{
    Program prog = parseOrDie(kThreeStatements);
    ReduceResult res = reduceProgram(prog, writesB);

    EXPECT_TRUE(res.inputFailed);
    EXPECT_TRUE(writesB(res.program));

    // The unrelated statements are gone.
    std::string out = printProgram(res.program);
    EXPECT_EQ(out.find("A(I)"), std::string::npos) << out;
    EXPECT_EQ(out.find("C(I)"), std::string::npos) << out;
}

TEST(Reduce, HalvesNodeCountOnSeededExample)
{
    Program prog = parseOrDie(kThreeStatements);
    ReduceResult res = reduceProgram(prog, writesB);

    EXPECT_EQ(res.origNodes, countIrNodes(prog));
    EXPECT_EQ(res.finalNodes, countIrNodes(res.program));
    EXPECT_LE(res.finalNodes * 2, res.origNodes)
        << printProgram(res.program);
}

TEST(Reduce, ResultIsOneMinimal)
{
    Program prog = parseOrDie(kThreeStatements);
    ReduceResult res = reduceProgram(prog, writesB);
    ASSERT_TRUE(res.inputFailed);
    EXPECT_TRUE(res.oneMinimal);
    EXPECT_FALSE(res.budgetExhausted);
}

TEST(Reduce, DeterministicAcrossRuns)
{
    Program prog = parseOrDie(kThreeStatements);
    ReduceResult a = reduceProgram(prog, writesB);
    ReduceResult b = reduceProgram(prog, writesB);

    EXPECT_EQ(printProgram(a.program), printProgram(b.program));
    EXPECT_EQ(a.checks, b.checks);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.finalNodes, b.finalNodes);
}

TEST(Reduce, PassingInputComesBackUnchanged)
{
    Program prog = parseOrDie(kThreeStatements);
    auto never = [](const Program &) { return false; };
    ReduceResult res = reduceProgram(prog, never);

    EXPECT_FALSE(res.inputFailed);
    EXPECT_EQ(res.checks, 1);
    EXPECT_EQ(printProgram(res.program), printProgram(prog));
}

TEST(Reduce, RespectsCheckBudget)
{
    Program prog = parseOrDie(kThreeStatements);
    ReduceOptions opts;
    opts.maxChecks = 1;  // the input check consumes the whole budget
    ReduceResult res = reduceProgram(prog, writesB, opts);

    EXPECT_TRUE(res.inputFailed);
    EXPECT_TRUE(res.budgetExhausted);
    EXPECT_FALSE(res.oneMinimal);  // not proven within budget
    EXPECT_LE(res.checks, 2);
    // The invariant holds even when the budget cut reduction short.
    EXPECT_TRUE(writesB(res.program));
}

TEST(Reduce, ThrowingPredicateCountsAsPassing)
{
    Program prog = parseOrDie(kThreeStatements);
    // Same acceptance set as writesB, but hostile: candidates without
    // B throw instead of returning false.
    auto hostile = [](const Program &p) {
        if (!writesB(p))
            throw std::runtime_error("candidate without B");
        return true;
    };
    ReduceResult res = reduceProgram(prog, hostile);

    EXPECT_TRUE(res.inputFailed);
    EXPECT_TRUE(writesB(res.program));
    EXPECT_LE(res.finalNodes * 2, res.origNodes);
}

TEST(Reduce, UnwrapsLoopsWhenPredicateAllows)
{
    Program prog = parseOrDie(kThreeStatements);
    ReduceResult res = reduceProgram(prog, writesB);

    // The surviving statement does not need its loop to keep failing,
    // so the reducer unwraps it.
    EXPECT_EQ(printProgram(res.program).find("DO "), std::string::npos)
        << printProgram(res.program);
}

// ---------------------------------------------------------------------
// Incident bundles over the reducer

TEST(Incident, CaptureWritesWellFormedBundle)
{
    namespace fs = std::filesystem;
    fs::path root = fs::temp_directory_path() /
                    "memoria-test-incidents";
    fs::remove_all(root);

    Program prog = parseOrDie(kThreeStatements);
    incident::Incident inc;
    inc.name = "unit";
    inc.kind = "predicate";
    inc.detail = "writes to B";
    inc.source = printProgram(prog);

    incident::IncidentPolicy policy;
    policy.dir = root.string();
    Result<std::string> bundle =
        incident::captureIncident(inc, prog, writesB, policy);
    ASSERT_TRUE(bundle.ok()) << bundle.diag().str();

    fs::path dir(bundle.value());
    EXPECT_TRUE(fs::exists(dir / "original.mem"));
    EXPECT_TRUE(fs::exists(dir / "minimized.mem"));

    std::ifstream in(dir / "incident.json");
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    Result<json::Value> meta = json::parse(buf.str());
    ASSERT_TRUE(meta.ok()) << meta.diag().str();
    EXPECT_EQ(meta.value().getString("name"), "unit");
    EXPECT_EQ(meta.value().getString("kind"), "predicate");
    const json::Value *red = meta.value().get("reduction");
    ASSERT_NE(red, nullptr);
    EXPECT_TRUE(red->getBool("reproduced"));
    EXPECT_LE(red->getInt("final_nodes") * 2,
              red->getInt("orig_nodes"));

    // The minimized reproducer parses and still fails the predicate.
    std::ifstream minIn(dir / "minimized.mem");
    std::ostringstream minBuf;
    minBuf << minIn.rdbuf();
    Program reduced = parseOrDie(minBuf.str());
    EXPECT_TRUE(writesB(reduced));

    fs::remove_all(root);
}

TEST(Incident, RepeatBundlesDoNotCollide)
{
    namespace fs = std::filesystem;
    fs::path root = fs::temp_directory_path() /
                    "memoria-test-incidents-collide";
    fs::remove_all(root);

    Program prog = parseOrDie(kThreeStatements);
    incident::Incident inc;
    inc.name = "dup";
    inc.kind = "predicate";
    inc.source = printProgram(prog);

    incident::IncidentPolicy policy;
    policy.dir = root.string();
    Result<std::string> first =
        incident::captureIncident(inc, prog, writesB, policy);
    Result<std::string> second =
        incident::captureIncident(inc, prog, writesB, policy);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    EXPECT_NE(first.value(), second.value());

    fs::remove_all(root);
}

} // namespace
} // namespace memoria
