#!/usr/bin/env python3
"""Compare two BENCH.json reports and gate on regressions.

Usage:
    bench_compare.py BASELINE.json PR.json [--max-regress PCT]
                     [--min-speedup NAME:FACTOR ...]

Work counters (accesses, interpreter passes, iterations, ...) are
deterministic, so a counter that grows beyond the allowance is a hard
failure — it means an algorithmic regression (e.g. the sweep fell back
to one interpreter pass per config). Wall-clock medians are noisy on
shared CI runners, so time regressions only emit GitHub warning
annotations; they never fail the job.

--min-speedup NAME:FACTOR asserts the PR median wall time for NAME is
at least FACTOR times faster than the baseline's. Unlike plain time
comparisons it IS a hard gate: it is only used against a deliberately
preserved pre-optimization baseline where the expected margin (e.g.
5x against a 3x floor) dwarfs runner noise.

Exit status: 0 = clean or time-warnings only; 1 = counter regression,
unmet --min-speedup floor, missing benchmark, or malformed report.
"""

import argparse
import json
import sys

SCHEMA = "memoria-bench-v1"


def load(path):
    with open(path) as f:
        report = json.load(f)
    if report.get("schema") != SCHEMA:
        raise SystemExit(
            f"{path}: schema {report.get('schema')!r} != {SCHEMA!r}"
        )
    return report


def index(report):
    return {b["name"]: b for b in report.get("benchmarks", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("pr")
    ap.add_argument(
        "--max-regress",
        type=float,
        default=25.0,
        metavar="PCT",
        help="allowed growth in % for counters and the time-warning "
        "threshold (default: 25)",
    )
    ap.add_argument(
        "--min-speedup",
        action="append",
        default=[],
        metavar="NAME:FACTOR",
        help="hard-fail unless baseline_median / pr_median for NAME "
        "is >= FACTOR (repeatable)",
    )
    args = ap.parse_args()

    floors = {}
    for spec in args.min_speedup:
        name, sep, factor = spec.rpartition(":")
        try:
            if not sep:
                raise ValueError
            floors[name] = float(factor)
        except ValueError:
            raise SystemExit(
                f"--min-speedup wants NAME:FACTOR, got {spec!r}"
            )

    base = index(load(args.baseline))
    pr = index(load(args.pr))
    allow = 1.0 + args.max_regress / 100.0

    failures = []
    warnings = []

    for name, b in sorted(base.items()):
        p = pr.get(name)
        if p is None:
            failures.append(f"benchmark '{name}' missing from PR report")
            continue

        for counter, bval in sorted(b.get("counters", {}).items()):
            pval = p.get("counters", {}).get(counter)
            if pval is None:
                failures.append(f"{name}: counter '{counter}' missing")
                continue
            if bval > 0 and pval > bval * allow:
                failures.append(
                    f"{name}: counter '{counter}' regressed "
                    f"{bval} -> {pval} "
                    f"(+{(pval / bval - 1) * 100:.1f}%, "
                    f"allowed +{args.max_regress:.0f}%)"
                )
            elif bval == 0 and pval > 0:
                failures.append(
                    f"{name}: counter '{counter}' regressed 0 -> {pval}"
                )

        bms = b.get("wall_ms", {}).get("median")
        pms = p.get("wall_ms", {}).get("median")
        if bms and pms and pms > bms * allow:
            warnings.append(
                f"{name}: median wall time {bms:.2f}ms -> {pms:.2f}ms "
                f"(+{(pms / bms - 1) * 100:.1f}%) — advisory only"
            )

    for name, factor in sorted(floors.items()):
        b, p = base.get(name), pr.get(name)
        bms = b.get("wall_ms", {}).get("median") if b else None
        pms = p.get("wall_ms", {}).get("median") if p else None
        if not bms or not pms:
            failures.append(
                f"--min-speedup {name}:{factor:g}: benchmark or its "
                "median missing from a report"
            )
            continue
        speedup = bms / pms
        if speedup < factor:
            failures.append(
                f"{name}: speedup {speedup:.2f}x "
                f"({bms:.2f}ms -> {pms:.2f}ms) below the "
                f"{factor:g}x floor"
            )
        else:
            print(
                f"speedup OK: {name} {speedup:.2f}x "
                f"({bms:.2f}ms -> {pms:.2f}ms, floor {factor:g}x)"
            )

    for name in sorted(set(pr) - set(base)):
        print(f"note: new benchmark '{name}' (no baseline)")

    for w in warnings:
        print(f"::warning title=bench time regression::{w}")
        print(f"WARN: {w}")
    for f in failures:
        print(f"FAIL: {f}")

    if failures:
        print(f"\n{len(failures)} hard failure(s); "
              "refresh BENCH_baseline.json only for intentional changes "
              "(see docs/PERFORMANCE.md).")
        return 1
    print(f"bench compare OK: {len(base)} benchmarks, "
          f"{len(warnings)} time warning(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
