#!/usr/bin/env python3
"""Soak-test `memoria serve` over the stdio transport.

Drives a mixed corpus of requests (valid work, heavy programs under
tiny deadlines, malformed lines, fault-armed requests, health probes)
at a small server, then SIGTERMs it, and asserts the robustness
contract end to end:

  * exactly one terminal response per request — nothing lost, nothing
    duplicated, even for requests shed by backpressure;
  * the process exits 0 on SIGTERM (graceful drain);
  * at least one well-formed minimized incident bundle was written for
    the fault-armed failures.

Usage: scripts/serve_soak.py [path-to-memoria] [request-count]
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from collections import Counter

BIN = sys.argv[1] if len(sys.argv) > 1 else "./build/src/tools/memoria"
COUNT = int(sys.argv[2]) if len(sys.argv) > 2 else 200

SMALL = (
    "PROGRAM t\n"
    "  PARAMETER N = 8\n"
    "  REAL*8 A(N,N)\n"
    "  DO I = 1, N\n"
    "    DO J = 1, N\n"
    "      A(I,J) = A(I,J) + 1.0\n"
    "    ENDDO\n"
    "  ENDDO\n"
    "END\n"
)
HEAVY = (
    "PROGRAM heavy\n"
    "  PARAMETER N = 64\n"
    "  REAL*8 A(N,N)\n"
    "  REAL*8 B(N,N)\n"
    "  DO I = 1, N\n"
    "    DO J = 1, N\n"
    "      DO K = 1, N\n"
    "        A(I,J) = A(I,J) + B(J,K)\n"
    "      ENDDO\n"
    "    ENDDO\n"
    "  ENDDO\n"
    "END\n"
)


def fail(msg):
    print(f"soak: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    incidents = tempfile.mkdtemp(prefix="memoria-soak-incidents-")
    proc = subprocess.Popen(
        [
            BIN, "serve",
            "--jobs", "2",
            "--queue", "8",
            "--deadline-ms", "2000",
            "--allow-faults",
            "--incidents-dir", incidents,
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=sys.stderr,
        text=True,
    )

    lines = []
    def reader():
        # Line-at-a-time; survives EINTR inside Python's buffered read.
        for line in proc.stdout:
            line = line.strip()
            if line:
                lines.append(line)

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()

    def send_raw(text):
        proc.stdin.write(text + "\n")
        proc.stdin.flush()

    def send(obj):
        send_raw(json.dumps(obj))

    def wait_responses(n, timeout=120.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline and len(lines) < n:
            time.sleep(0.02)
        return len(lines) >= n

    try:
        # --- Phase 1: the mixed corpus, sent flat out so the bounded
        # queue sheds some of it (overloaded is a terminal response
        # too).
        sent_ids = []
        malformed = 0
        for i in range(COUNT):
            rid = f"req-{i}"
            slot = i % 10
            if slot == 3:
                send_raw("this line is not a request")
                malformed += 1
            elif slot == 5:
                send({"id": rid, "kind": "simulate",
                      "program": HEAVY, "deadline_ms": 1})
                sent_ids.append(rid)
            elif slot == 9:
                send({"id": rid, "kind": "health"})
                sent_ids.append(rid)
            else:
                kind = ("analyze", "compound", "simulate")[slot % 3]
                send({"id": rid, "kind": kind, "program": SMALL})
                sent_ids.append(rid)

        expected = len(sent_ids) + malformed
        if not wait_responses(expected):
            fail(f"expected {expected} responses, got {len(lines)}")

        # --- Phase 2: guarantee at least one accepted fault-armed
        # request (phase 1 may shed arbitrarily many), pacing one at a
        # time so admission cannot fail for long.
        incident_dir = None
        for attempt in range(20):
            rid = f"fault-{attempt}"
            send({"id": rid, "kind": "compound", "program": SMALL,
                  "fault": "transform.permute:throw:1"})
            sent_ids.append(rid)
            expected += 1
            if not wait_responses(expected):
                fail(f"no response for fault request {rid}")
            resp = next(
                (json.loads(l) for l in lines
                 if json.loads(l).get("id") == rid), None)
            if resp and resp.get("type") == "result":
                incident_dir = resp.get("incident_dir")
                break
            time.sleep(0.05)  # shed: back off and retry
        if not incident_dir:
            fail("no fault-armed request produced an incident bundle")

        # --- Exactly one terminal response per request.
        by_id = Counter()
        for line in lines:
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                fail(f"response is not JSON: {line!r}")
            by_id[obj.get("id", "")] += 1
        for rid in sent_ids:
            if by_id[rid] != 1:
                fail(f"request {rid} got {by_id[rid]} responses")
        if by_id[""] != malformed:
            fail(f"{malformed} malformed lines but {by_id['']} "
                 "id-less error responses")

        # --- Graceful drain: SIGTERM exits 0.
        proc.send_signal(signal.SIGTERM)
        try:
            rc = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("server did not exit within 60s of SIGTERM")
        if rc != 0:
            fail(f"server exited {rc} on SIGTERM, want 0")

        # --- At least one well-formed minimized bundle.
        good_bundles = 0
        for entry in sorted(os.listdir(incidents)):
            bundle = os.path.join(incidents, entry)
            meta_path = os.path.join(bundle, "incident.json")
            if not os.path.isfile(meta_path):
                continue
            with open(meta_path) as fh:
                meta = json.load(fh)
            red = meta.get("reduction", {})
            files = meta.get("files", {})
            if (red.get("reproduced")
                    and "minimized" in files
                    and os.path.isfile(os.path.join(bundle,
                                                    files["original"]))
                    and os.path.isfile(os.path.join(bundle,
                                                    files["minimized"]))
                    and red.get("final_nodes", 1 << 30)
                        <= red.get("orig_nodes", 0)):
                good_bundles += 1
        if good_bundles < 1:
            fail(f"no well-formed minimized bundle under {incidents}")

        results = sum(
            1 for l in lines if json.loads(l).get("type") == "result")
        shed = sum(
            1 for l in lines
            if json.loads(l).get("type") == "overloaded")
        print(f"soak ok: {len(sent_ids) + malformed} requests, "
              f"{len(lines)} responses ({results} results, {shed} "
              f"shed), exit 0 on SIGTERM, {good_bundles} minimized "
              f"bundle(s)")
    finally:
        if proc.poll() is None:
            proc.kill()
        shutil.rmtree(incidents, ignore_errors=True)


if __name__ == "__main__":
    main()
