#!/usr/bin/env python3
"""Soak-test `memoria serve` over the stdio transport.

Steady mode (the default) drives a mixed corpus of requests (valid
work, heavy programs under tiny deadlines, malformed lines,
fault-armed requests, health probes) at a small single-process server,
then SIGTERMs it, and asserts the robustness and telemetry contracts
end to end:

  * exactly one terminal response per request — nothing lost, nothing
    duplicated, even for requests shed by backpressure;
  * a mid-soak `metrics` scrape returns well-formed Prometheus
    exposition text whose `serve.requests_total` agrees with the
    client-side request count (within the in-flight allowance);
  * the process exits 0 on SIGTERM (graceful drain) and the drain
    handler writes a final metrics snapshot to --metrics-file;
  * at least one well-formed minimized incident bundle was written for
    the fault-armed failures.

Chaos mode (--chaos, implies --workers >= 2) runs the supervised
multi-process server and attacks it while the corpus is in flight:
random SIGKILLs and SIGSTOP/SIGCONT of shard-worker processes (pids
read from the supervisor's metrics snapshots, verified to be children
of the supervisor), plus malformed and oversized request injection.
It asserts the supervision contract:

  * zero lost responses — every request with an id gets exactly one
    terminal response (idempotent kinds transparently retried after a
    worker crash, non-idempotent ones answered `serve.worker-crashed`);
  * respawns are bounded by the chaos actions taken (no respawn
    storms) and at least one crash/respawn actually happened;
  * post-chaos `serve.requests_total` reconciles exactly with the
    client-side count of well-formed requests;
  * the admission journal is empty after drain: every `admit` record
    has a matching `done` (torn trailing lines tolerated).

Restart mode (--restart-supervisor, implies --chaos) additionally
exercises the durable result cache and journal-replay recovery:

  * a warmup corpus establishes a baseline cache hit rate (response
    `cache_hit`/`dedup_follower` stamps) and checks each cached
    response is bitwise identical to its fresh counterpart modulo the
    volatile fields (id, trace_id, queue/total timings, stamps);
  * after the chaos phase, slow requests are stranded in flight and
    the supervisor is SIGKILLed (no drain); the orphaned workers see
    EOF, drain, and persist their cache snapshots;
  * one shard snapshot is corrupted on disk, the supervisor is
    relaunched on the same journal and snapshot dir, and the gates
    assert: a `recovery` block in `health` naming the journal's
    admitted-but-unanswered requests (all of which are resent and
    answered — zero lost/duplicated across both instances), a warm
    hit rate at least half the baseline (the corrupted shard cold-
    starts, the rest stay warm), and serve.cache.snapshot_rejected
    >= 1 mirrored through the worker heartbeats.

A JSON soak report — client-side latency p50/p95/p99 per request kind,
RPS, the server's own serve.latency_us.* percentiles, and (in chaos
mode) the chaos/respawn tallies — is printed and, when SOAK_REPORT
(or the report positional) names a path, written there.

Overload mode (--overload, implies --workers >= 2) runs the supervised
server at roughly twice its service capacity with three client
classes — a paced interactive client ("alice"), a batch flooder
("bruce"), and a tight-deadline client ("carol") — and fires a SIGHUP
rolling restart mid-load. It asserts the adaptive overload-control
contract:

  * zero lost responses: every request gets exactly one terminal
    response (result, overloaded, or deadline error — never silence);
  * the flooder is the one shed: bruce draws `client-capped` sheds
    while alice is never shed and her p99 stays bounded;
  * infeasible deadlines are shed at admission (`deadline-infeasible`)
    or answered `serve.deadline-exceeded` without occupying a worker;
  * the SIGHUP roll gracefully recycles every shard worker (recycles
    >= workers, zero crashes) and the post-roll cache hit rate is at
    least half the pre-roll baseline (warm snapshot restarts);
  * `serve.requests_total` reconciles exactly and the admission
    journal audits clean after drain.

Usage: scripts/serve_soak.py [--chaos] [--restart-supervisor]
                             [--overload] [--workers N]
                             [path-to-memoria] [request-count] [report]
"""

import json
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from collections import Counter

ARGS = [a for a in sys.argv[1:]]
CHAOS = "--chaos" in ARGS
if CHAOS:
    ARGS.remove("--chaos")
RESTART = "--restart-supervisor" in ARGS
if RESTART:
    ARGS.remove("--restart-supervisor")
    CHAOS = True
OVERLOAD = "--overload" in ARGS
if OVERLOAD:
    ARGS.remove("--overload")
WORKERS = 0
if "--workers" in ARGS:
    i = ARGS.index("--workers")
    WORKERS = int(ARGS[i + 1])
    del ARGS[i:i + 2]
if (CHAOS or OVERLOAD) and WORKERS <= 0:
    WORKERS = 2

BIN = ARGS[0] if len(ARGS) > 0 else "./build/src/tools/memoria"
COUNT = int(ARGS[1]) if len(ARGS) > 1 else 200
REPORT = ARGS[2] if len(ARGS) > 2 else os.environ.get("SOAK_REPORT", "")
# Where the server writes its periodic metrics snapshots; default is
# inside the (deleted) scratch dir, set SOAK_SNAPSHOTS to keep them.
SNAPSHOTS = os.environ.get("SOAK_SNAPSHOTS", "")
# Where the chaos run's admission journal goes; default scratch,
# set SOAK_JOURNAL to keep it for archiving.
JOURNAL = os.environ.get("SOAK_JOURNAL", "")
# Where the restart leg's cache snapshots go; default scratch, set
# SOAK_CACHE_SNAPSHOTS to keep them for archiving.
CACHE_SNAPDIR = os.environ.get("SOAK_CACHE_SNAPSHOTS", "")

SMALL = (
    "PROGRAM t\n"
    "  PARAMETER N = 8\n"
    "  REAL*8 A(N,N)\n"
    "  DO I = 1, N\n"
    "    DO J = 1, N\n"
    "      A(I,J) = A(I,J) + 1.0\n"
    "    ENDDO\n"
    "  ENDDO\n"
    "END\n"
)
HEAVY = (
    "PROGRAM heavy\n"
    "  PARAMETER N = 64\n"
    "  REAL*8 A(N,N)\n"
    "  REAL*8 B(N,N)\n"
    "  DO I = 1, N\n"
    "    DO J = 1, N\n"
    "      DO K = 1, N\n"
    "        A(I,J) = A(I,J) + B(J,K)\n"
    "      ENDDO\n"
    "    ENDDO\n"
    "  ENDDO\n"
    "END\n"
)


def fail(msg):
    print(f"soak: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def percentile(sorted_vals, q):
    """Nearest-rank percentile of an ascending list (q in [0,1])."""
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(q * len(sorted_vals)))
    return sorted_vals[idx]


def check_exposition(text):
    """Validate Prometheus text exposition; return metric -> value for
    plain (unlabeled) samples. Fails the soak on malformed lines or
    non-monotonic histogram buckets."""
    values = {}
    buckets = {}  # metric base name -> list of cumulative counts
    for ln, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if (len(parts) != 4 or parts[1] != "TYPE"
                    or parts[3] not in ("counter", "gauge",
                                        "histogram")):
                fail(f"exposition line {ln}: bad TYPE comment {line!r}")
            continue
        fields = line.rsplit(None, 1)
        if len(fields) != 2:
            fail(f"exposition line {ln}: no value in {line!r}")
        name, value = fields
        try:
            value = float(value)
        except ValueError:
            fail(f"exposition line {ln}: non-numeric value {line!r}")
        if "{" in name:
            base, rest = name.split("{", 1)
            if not rest.endswith("}"):
                fail(f"exposition line {ln}: unclosed labels {line!r}")
            if base.endswith("_bucket"):
                buckets.setdefault(base, []).append(value)
        else:
            if not all(c.isalnum() or c == "_" for c in name):
                fail(f"exposition line {ln}: bad metric name {name!r}")
            values[name] = value
    for base, counts in buckets.items():
        if any(b > a for a, b in zip(counts[1:], counts)):
            fail(f"exposition: non-monotonic buckets for {base}")
        count_name = base[: -len("_bucket")] + "_count"
        if count_name in values and counts and \
                counts[-1] != values[count_name]:
            fail(f"exposition: {base} last bucket {counts[-1]} != "
                 f"{count_name} {values[count_name]}")
    return values


class ServeClient:
    """One serve process on stdio plus the client-side bookkeeping the
    assertions need: response lines, per-id arrival times, and the
    count of well-formed requests sent (what serve.requests_total must
    reconcile against)."""

    def __init__(self, argv):
        self.proc = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=sys.stderr,
            text=True,
        )
        self.lines = []
        self.recv_at = {}   # request id -> monotonic arrival time
        self.sent_at = {}   # request id -> monotonic send time
        self.sent_kind = {} # request id -> kind
        self.parsed_sent = 0  # requests the server should parse
        # Overload mode sends from several client threads over the one
        # stdin pipe; a partial-line interleave would corrupt the wire.
        self.send_lock = threading.Lock()
        self.thread = threading.Thread(target=self._reader,
                                       daemon=True)
        self.thread.start()

    def _reader(self):
        # Line-at-a-time; survives EINTR inside Python's buffered read.
        for line in self.proc.stdout:
            line = line.strip()
            if line:
                now = time.monotonic()
                self.lines.append(line)
                try:
                    rid = json.loads(line).get("id", "")
                except json.JSONDecodeError:
                    rid = ""
                if rid and rid not in self.recv_at:
                    self.recv_at[rid] = now

    def send_raw(self, text):
        with self.send_lock:
            self.proc.stdin.write(text + "\n")
            self.proc.stdin.flush()

    def send(self, obj):
        rid = obj.get("id", "")
        if rid:
            self.sent_at[rid] = time.monotonic()
            self.sent_kind[rid] = obj.get("kind", "compound")
        with self.send_lock:
            self.parsed_sent += 1
            self.proc.stdin.write(json.dumps(obj) + "\n")
            self.proc.stdin.flush()

    def wait_responses(self, n, timeout=120.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline and len(self.lines) < n:
            time.sleep(0.02)
        return len(self.lines) >= n

    def wait_response_for(self, rid, timeout=120.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline and rid not in self.recv_at:
            time.sleep(0.02)
        return rid in self.recv_at

    def response_for(self, rid):
        for line in self.lines:
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            if obj.get("id") == rid:
                return obj
        return None

    def client_latency(self):
        by_kind = {}
        for rid, t0 in self.sent_at.items():
            t1 = self.recv_at.get(rid)
            if t1 is None:
                continue
            by_kind.setdefault(self.sent_kind[rid], []).append(
                (t1 - t0) * 1e6)
        out = {}
        for kind, samples in sorted(by_kind.items()):
            samples.sort()
            out[kind] = {
                "count": len(samples),
                "p50_us": round(percentile(samples, 0.50), 1),
                "p95_us": round(percentile(samples, 0.95), 1),
                "p99_us": round(percentile(samples, 0.99), 1),
            }
        return out

    def sigterm_and_wait(self):
        self.proc.send_signal(signal.SIGTERM)
        try:
            rc = self.proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            fail("server did not exit within 60s of SIGTERM")
        if rc != 0:
            fail(f"server exited {rc} on SIGTERM, want 0")

    def kill_if_alive(self):
        if self.proc.poll() is None:
            self.proc.kill()


def scrape_metrics(client, rid):
    """Send a metrics request and return the parsed response, with its
    exposition validated."""
    client.send({"id": rid, "kind": "metrics"})
    if not client.wait_response_for(rid):
        fail(f"no response to metrics request {rid}")
    resp = client.response_for(rid)
    if resp.get("type") != "metrics":
        fail(f"metrics response {rid} has type {resp.get('type')!r}")
    check_exposition(resp.get("exposition", ""))
    return resp


def server_latency_from(resp):
    out = {}
    hists = resp.get("registry", {}).get("histograms", {})
    for name, h in hists.items():
        prefix = "serve.latency_us."
        if name.startswith(prefix):
            out[name[len(prefix):]] = {
                "count": h.get("count", 0),
                "p50_us": h.get("p50", 0.0),
                "p90_us": h.get("p90", 0.0),
                "p99_us": h.get("p99", 0.0),
            }
    return out


def check_exactly_one_response(client, sent_ids, idless_expected):
    by_id = Counter()
    for line in client.lines:
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            fail(f"response is not JSON: {line!r}")
        by_id[obj.get("id", "")] += 1
    for rid in sent_ids:
        if by_id[rid] != 1:
            fail(f"request {rid} got {by_id[rid]} responses")
    if by_id[""] != idless_expected:
        fail(f"{idless_expected} id-less lines sent but {by_id['']} "
             "id-less error responses")


def read_final_snapshot(metrics_file):
    if not os.path.isfile(metrics_file):
        fail(f"no metrics snapshot file at {metrics_file}")
    with open(metrics_file) as fh:
        snapshots = [ln for ln in fh.read().splitlines() if ln]
    if not snapshots:
        fail("metrics snapshot file is empty after SIGTERM")
    last = json.loads(snapshots[-1])
    if not last.get("draining"):
        fail("final metrics snapshot was not written by the drain "
             "handler (draining != true)")
    return snapshots, last


def steady_main():
    incidents = tempfile.mkdtemp(prefix="memoria-soak-incidents-")
    metrics_file = SNAPSHOTS or os.path.join(incidents,
                                             "snapshots.jsonl")
    client = ServeClient([
        BIN, "serve",
        "--jobs", "2",
        "--queue", "8",
        "--deadline-ms", "2000",
        "--allow-faults",
        "--incidents-dir", incidents,
        "--metrics-file", metrics_file,
        "--metrics-interval-ms", "100",
    ])

    try:
        # --- Phase 1: the mixed corpus, sent flat out so the bounded
        # queue sheds some of it (overloaded is a terminal response
        # too).
        soak_started = time.monotonic()
        sent_ids = []
        malformed = 0
        for i in range(COUNT):
            rid = f"req-{i}"
            slot = i % 10
            if slot == 3:
                client.send_raw("this line is not a request")
                malformed += 1
            elif slot == 5:
                client.send({"id": rid, "kind": "simulate",
                             "program": HEAVY, "deadline_ms": 1})
                sent_ids.append(rid)
            elif slot == 9:
                client.send({"id": rid, "kind": "health"})
                sent_ids.append(rid)
            else:
                kind = ("analyze", "compound", "simulate")[slot % 3]
                client.send({"id": rid, "kind": kind,
                             "program": SMALL})
                sent_ids.append(rid)

        # --- Mid-soak metrics scrape, while phase 1 is still in
        # flight: the exposition must be well-formed and the server's
        # own request counter must agree with what the client sent,
        # give or take the requests still somewhere in the pipe.
        mid = scrape_metrics(client, "soak-metrics-mid")
        expo = check_exposition(mid.get("exposition", ""))
        server_total = expo.get("memoria_serve_requests_total")
        if server_total is None:
            fail("exposition lacks memoria_serve_requests_total")
        answered = len(client.recv_at)
        # Everything the server has counted was sent by us; everything
        # we have an answer for was counted by the server.
        if not answered <= server_total <= client.parsed_sent:
            fail(f"serve.requests_total={server_total} outside "
                 f"[{answered}, {client.parsed_sent}]")

        expected = len(sent_ids) + malformed + 1  # + metrics response
        if not client.wait_responses(expected):
            fail(f"expected {expected} responses, got "
                 f"{len(client.lines)}")

        # --- Phase 2: guarantee at least one accepted fault-armed
        # request (phase 1 may shed arbitrarily many), pacing one at a
        # time so admission cannot fail for long.
        incident_dir = None
        for attempt in range(20):
            rid = f"fault-{attempt}"
            client.send({"id": rid, "kind": "compound",
                         "program": SMALL,
                         "fault": "transform.permute:throw:1"})
            sent_ids.append(rid)
            expected += 1
            if not client.wait_responses(expected):
                fail(f"no response for fault request {rid}")
            resp = client.response_for(rid)
            if resp and resp.get("type") == "result":
                incident_dir = resp.get("incident_dir")
                break
            time.sleep(0.05)  # shed: back off and retry
        if not incident_dir:
            fail("no fault-armed request produced an incident bundle")

        # --- Final metrics scrape: the report publishes the server's
        # own serve.latency_us.* percentiles, not just client timing.
        final = scrape_metrics(client, "soak-metrics-final")
        expected += 1
        server_latency = server_latency_from(final)
        if not server_latency:
            fail("final metrics response has no serve.latency_us.* "
                 "histograms")
        soak_duration = time.monotonic() - soak_started

        # --- Exactly one terminal response per request.
        check_exactly_one_response(client, sent_ids, malformed)

        # --- Graceful drain: SIGTERM exits 0.
        client.sigterm_and_wait()

        # --- The drain handler wrote one final metrics snapshot, so a
        # SIGTERM'd serve never loses the stats since the last tick.
        snapshots, last = read_final_snapshot(metrics_file)
        snap_total = (last.get("stats", {}).get("counters", {})
                      .get("serve.requests_total"))
        if snap_total != client.parsed_sent:
            fail(f"final snapshot serve.requests_total={snap_total}, "
                 f"client sent {client.parsed_sent}")

        # --- At least one well-formed minimized bundle.
        good_bundles = 0
        for entry in sorted(os.listdir(incidents)):
            bundle = os.path.join(incidents, entry)
            meta_path = os.path.join(bundle, "incident.json")
            if not os.path.isfile(meta_path):
                continue
            with open(meta_path) as fh:
                meta = json.load(fh)
            red = meta.get("reduction", {})
            files = meta.get("files", {})
            if (red.get("reproduced")
                    and "minimized" in files
                    and os.path.isfile(os.path.join(bundle,
                                                    files["original"]))
                    and os.path.isfile(os.path.join(bundle,
                                                    files["minimized"]))
                    and red.get("final_nodes", 1 << 30)
                        <= red.get("orig_nodes", 0)):
                good_bundles += 1
        if good_bundles < 1:
            fail(f"no well-formed minimized bundle under {incidents}")

        results = sum(1 for l in client.lines
                      if json.loads(l).get("type") == "result")
        shed = sum(1 for l in client.lines
                   if json.loads(l).get("type") == "overloaded")

        report = {
            "mode": "steady",
            "requests": client.parsed_sent + malformed,
            "responses": len(client.lines),
            "results": results,
            "shed": shed,
            "duration_s": round(soak_duration, 3),
            "rps": round(len(client.lines)
                         / max(soak_duration, 1e-9), 1),
            "client_latency": client.client_latency(),
            "server_latency": server_latency,
            "snapshots": len(snapshots),
            "minimized_bundles": good_bundles,
        }
        print(json.dumps(report, indent=2))
        if REPORT:
            with open(REPORT, "w") as fh:
                json.dump(report, fh, indent=2)
                fh.write("\n")

        print(f"soak ok: {len(sent_ids) + malformed} requests, "
              f"{len(client.lines)} responses ({results} results, "
              f"{shed} shed), exit 0 on SIGTERM, {good_bundles} "
              "minimized bundle(s)")
    finally:
        client.kill_if_alive()
        shutil.rmtree(incidents, ignore_errors=True)


# --------------------------------------------------------------------
# Chaos mode
# --------------------------------------------------------------------

def worker_pids_from_snapshot(metrics_file, supervisor_pid):
    """(shard, pid) of up workers per the latest metrics snapshot,
    keeping only actual children of the supervisor (a stale snapshot
    must never aim a SIGKILL at a recycled pid)."""
    try:
        with open(metrics_file) as fh:
            lines = [ln for ln in fh.read().splitlines() if ln]
        if not lines:
            return []
        snap = json.loads(lines[-1])
    except (OSError, json.JSONDecodeError):
        return []
    out = []
    for w in snap.get("workers", []):
        if w.get("state") != "up" or w.get("pid", -1) <= 0:
            continue
        pid = int(w["pid"])
        try:
            with open(f"/proc/{pid}/stat") as fh:
                # field 4 of /proc/pid/stat is the ppid; field 2 (comm)
                # is parenthesised and may contain spaces, so split
                # after the closing paren.
                stat = fh.read()
            ppid = int(stat.rsplit(")", 1)[1].split()[1])
        except (OSError, ValueError, IndexError):
            continue
        if ppid == supervisor_pid:
            out.append((int(w.get("shard", -1)), pid))
    return out


def chaos_thread(stop_event, metrics_file, supervisor_pid, tally):
    """Random worker-process violence: mostly SIGKILL, sometimes a
    SIGSTOP long enough to trip the supervisor's hang detector,
    followed by SIGCONT. Seeded for reproducible CI runs."""
    rng = random.Random(int(os.environ.get("SOAK_CHAOS_SEED", "1234")))
    max_actions = int(os.environ.get("SOAK_CHAOS_ACTIONS", "8"))
    while not stop_event.is_set() and \
            tally["kills"] + tally["stops"] < max_actions:
        time.sleep(rng.uniform(0.05, 0.25))
        victims = worker_pids_from_snapshot(metrics_file,
                                            supervisor_pid)
        if not victims:
            continue
        shard, pid = rng.choice(victims)
        try:
            if rng.random() < 0.7:
                os.kill(pid, signal.SIGKILL)
                tally["kills"] += 1
                print(f"chaos: SIGKILL shard{shard} pid {pid}",
                      file=sys.stderr)
            else:
                os.kill(pid, signal.SIGSTOP)
                tally["stops"] += 1
                print(f"chaos: SIGSTOP shard{shard} pid {pid}",
                      file=sys.stderr)
                time.sleep(rng.uniform(0.1, 0.5))
                os.kill(pid, signal.SIGCONT)
        except ProcessLookupError:
            continue  # already reaped; the snapshot was stale


def check_journal_empty(journal_path):
    """Every admit has a matching done; torn trailing lines (a crash
    mid-append) are tolerated, a dangling admit is a lost request."""
    admits = 0
    open_seqs = {}
    with open(journal_path) as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                rec = json.loads(raw)
            except json.JSONDecodeError:
                continue  # torn line
            op = rec.get("op")
            if op == "admit":
                admits += 1
                open_seqs[rec.get("seq")] = rec.get("id", "")
            elif op == "done":
                open_seqs.pop(rec.get("seq"), None)
    if open_seqs:
        sample = list(open_seqs.items())[:5]
        fail(f"journal has {len(open_seqs)} admit(s) without a done "
             f"after drain (sample: {sample})")
    return admits


# --------------------------------------------------------------------
# Restart leg (--restart-supervisor)
# --------------------------------------------------------------------

# Fields the cache replay is allowed (and expected) to differ in: the
# request identity, the request-scoped trace, the replay-side queue and
# total timings, and the replay stamps themselves. Everything else must
# be bitwise identical between a fresh compute and a cache hit.
VOLATILE_RESPONSE_KEYS = ("id", "trace_id", "cache_hit",
                          "dedup_follower", "retried")


def normalized_result(resp):
    out = {k: v for k, v in resp.items()
           if k not in VOLATILE_RESPONSE_KEYS}
    timings = out.get("timings")
    if isinstance(timings, dict):
        out["timings"] = {k: v for k, v in timings.items()
                          if k not in ("queue_us", "total_us")}
    return out


def warm_corpus():
    """Distinct cacheable programs; names vary so the shard hash
    spreads them across workers."""
    return [SMALL.replace("PROGRAM t", f"PROGRAM warm{i}")
            for i in range(16)]


def send_warm_wave(client, tag, programs):
    """One paced request per warm program (no shedding), each required
    to come back as a result. Returns the request ids."""
    ids = []
    for i, program in enumerate(programs):
        rid = f"{tag}-{i}"
        client.send({"id": rid, "kind": "compound",
                     "program": program})
        ids.append(rid)
        if not client.wait_response_for(rid):
            fail(f"no response for warm request {rid}")
        resp = client.response_for(rid)
        if resp.get("type") != "result":
            fail(f"warm request {rid} got type {resp.get('type')!r}, "
                 "want result")
    return ids


def cache_hit_rate(client, ids):
    hits = 0
    for rid in ids:
        resp = client.response_for(rid) or {}
        if resp.get("cache_hit") or resp.get("dedup_follower"):
            hits += 1
    return hits / max(1, len(ids))


def read_dangling_admits(journal_path):
    """seq -> id of admits with no matching done; torn trailing lines
    tolerated (the supervisor died mid-append)."""
    dangling = {}
    try:
        with open(journal_path) as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    rec = json.loads(raw)
                except json.JSONDecodeError:
                    continue
                if rec.get("op") == "admit":
                    dangling[rec.get("seq")] = rec.get("id", "")
                elif rec.get("op") == "done":
                    dangling.pop(rec.get("seq"), None)
    except OSError:
        return {}
    return dangling


def restart_leg(client, server_argv, metrics_file, journal_path,
                snap_dir, programs, cleanup):
    """SIGKILL the supervisor with work in flight, corrupt one shard
    snapshot, relaunch on the same journal + snapshot dir, and assert
    the recovery contract. Returns (snapshots, admits, cache_block,
    restart_block) for the report."""
    # Re-prime the cache after the chaos phase so every warm key is in
    # some live worker's memory when the kill lands (a worker SIGKILLed
    # during chaos loses whatever its periodic snapshot had not yet
    # persisted; the EOF drain below snapshots everything that is).
    send_warm_wave(client, "warm-refresh", programs)

    victims = worker_pids_from_snapshot(metrics_file, client.proc.pid)
    if len(victims) != WORKERS:
        fail(f"expected {WORKERS} live workers before the restart, "
             f"saw {len(victims)}")

    # --- Strand slow work in flight: distinct heavy programs so they
    # spread across shards and none of them dedup-joins another.
    strand_prog = {}
    for i in range(8):
        rid = f"strand-{i}"
        strand_prog[rid] = HEAVY.replace("PROGRAM heavy",
                                         f"PROGRAM strand{i}")
        client.send({"id": rid, "kind": "simulate",
                     "program": strand_prog[rid]})
    # Kill the moment the journal shows an admitted-but-unfinished
    # strand request, so the replay has something real to find.
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if any(str(rid).startswith("strand-") for rid in
               read_dangling_admits(journal_path).values()):
            break
        time.sleep(0.002)
    else:
        fail("no strand request was admitted within 10s")
    client.proc.kill()  # SIGKILL: no drain, no journal truncation
    client.proc.wait(timeout=30)

    # --- The orphaned workers see EOF on the supervisor socket, drain,
    # persist their cache snapshots, and exit on their own.
    deadline = time.monotonic() + 30.0
    for _, pid in victims:
        while time.monotonic() < deadline and \
                os.path.exists(f"/proc/{pid}"):
            time.sleep(0.02)
        if os.path.exists(f"/proc/{pid}"):
            fail(f"worker pid {pid} still alive 30s after the "
                 "supervisor was SIGKILLed")
    snaps = sorted(e for e in os.listdir(snap_dir)
                   if e.endswith(".snap"))
    if len(snaps) != WORKERS:
        fail(f"want {WORKERS} shard snapshots after worker drain, "
             f"found {snaps}")

    # The journal's final word on what was admitted and never
    # answered; read it before the relaunch truncates the file.
    dangling = read_dangling_admits(journal_path)
    if not dangling:
        fail("journal has no dangling admits despite the mid-flight "
             "SIGKILL")
    unanswered = [rid for rid in strand_prog
                  if rid not in client.recv_at]

    # --- Corrupt one shard snapshot on disk: that shard must cold-
    # start (and count a rejection); the rest stay warm.
    corrupt_path = os.path.join(snap_dir, snaps[0])
    with open(corrupt_path, "r+b") as fh:
        data = fh.read()
        at = len(data) // 2
        fh.seek(at)
        fh.write(bytes([data[at] ^ 0x01]))
    print(f"restart: corrupted {snaps[0]} at byte {at}",
          file=sys.stderr)

    # --- Relaunch on the same journal and snapshot dir.
    client2 = ServeClient(server_argv)
    cleanup.append(client2)
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline and not \
            worker_pids_from_snapshot(metrics_file, client2.proc.pid):
        time.sleep(0.05)
    if not worker_pids_from_snapshot(metrics_file, client2.proc.pid):
        fail("restarted supervisor's workers never came up")

    # --- health names the journal's unanswered admissions.
    client2.send({"id": "restart-health", "kind": "health"})
    if not client2.wait_response_for("restart-health"):
        fail("no response to the post-restart health probe")
    rec = client2.response_for("restart-health").get("recovery")
    if not isinstance(rec, dict):
        fail("post-restart health has no recovery block despite "
             f"{len(dangling)} dangling journal admit(s)")
    if not rec.get("journal_replayed"):
        fail("recovery block does not mark journal_replayed")
    if rec.get("unanswered") != len(dangling):
        fail(f"recovery.unanswered={rec.get('unanswered')}, the "
             f"journal shows {len(dangling)} dangling admit(s)")

    # --- Zero lost: resend everything instance 1 never answered; zero
    # duplicated: exactly one answer per strand id across instances.
    for rid in unanswered:
        client2.send({"id": rid, "kind": "simulate",
                      "program": strand_prog[rid]})
    for rid in unanswered:
        if not client2.wait_response_for(rid):
            fail(f"resent request {rid} got no response after the "
                 "restart")
    for rid in strand_prog:
        n = ((1 if rid in client.recv_at else 0)
             + (1 if rid in client2.recv_at else 0))
        if n != 1:
            fail(f"strand request {rid} answered {n} times across the "
                 "restart, want exactly once")

    # --- Warm restart: the uncorrupted shards serve from their
    # snapshots, so the hit rate recovers to at least half the
    # pre-kill baseline.
    post_ids = send_warm_wave(client2, "warm-post", programs)
    post_rate = cache_hit_rate(client2, post_ids)

    # --- The corrupted shard counted its rejection; worker heartbeats
    # mirror it into the supervisor's gauges.
    rejected = 0
    deadline = time.monotonic() + 10.0
    probe = 0
    while time.monotonic() < deadline:
        probe += 1
        resp = scrape_metrics(client2, f"restart-metrics-{probe}")
        gauges = resp.get("registry", {}).get("gauges", {})
        rejected = gauges.get("serve.cache.snapshot_rejected", 0)
        if rejected >= 1:
            break
        time.sleep(0.2)
    if rejected < 1:
        fail("serve.cache.snapshot_rejected never reached 1 after the "
             "corrupted snapshot")

    check_exactly_one_response(client2, list(client2.sent_at), 0)

    # --- Graceful drain of the restarted instance; its final snapshot
    # reconciles against what this client sent it, and the journal is
    # clean again.
    client2.sigterm_and_wait()
    snapshots, last = read_final_snapshot(metrics_file)
    snap_total = (last.get("stats", {}).get("counters", {})
                  .get("serve.requests_total"))
    if snap_total != client2.parsed_sent:
        fail(f"final snapshot serve.requests_total={snap_total}, "
             f"restarted client sent {client2.parsed_sent}")
    admits = check_journal_empty(journal_path)

    cache_block = {
        "post_restart_hit_rate": round(post_rate, 3),
        "snapshot_files": len(snaps),
        "corrupted_snapshot": snaps[0],
        "snapshot_rejected": rejected,
    }
    restart_block = {
        "stranded": len(strand_prog),
        "journal_dangling": len(dangling),
        "recovery_unanswered": rec.get("unanswered"),
        "resent": len(unanswered),
    }
    return snapshots, admits, cache_block, restart_block


def chaos_main():
    scratch = tempfile.mkdtemp(prefix="memoria-chaos-soak-")
    metrics_file = SNAPSHOTS or os.path.join(scratch,
                                             "snapshots.jsonl")
    journal_path = JOURNAL or os.path.join(scratch, "journal.jsonl")
    snap_dir = CACHE_SNAPDIR or os.path.join(scratch,
                                             "cache-snapshots")
    max_request_bytes = 32768
    server_argv = [
        BIN, "serve",
        "--workers", str(WORKERS),
        "--jobs", "2",
        "--queue", "8",
        "--deadline-ms", "2000",
        "--heartbeat-ms", "100",
        "--max-request-bytes", str(max_request_bytes),
        "--journal", journal_path,
        "--no-incidents",
        "--metrics-file", metrics_file,
        "--metrics-interval-ms", "50",
    ]
    if RESTART:
        server_argv += ["--cache-snapshot-dir", snap_dir,
                        "--cache-snapshot-interval-ms", "200"]
    client = ServeClient(server_argv)
    cleanup = [client]

    stop_chaos = threading.Event()
    tally = {"kills": 0, "stops": 0}
    chaos = threading.Thread(
        target=chaos_thread,
        args=(stop_chaos, metrics_file, client.proc.pid, tally),
        daemon=True)

    try:
        # Let the workers come up and the first snapshot land before
        # the violence starts.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and not \
                worker_pids_from_snapshot(metrics_file,
                                          client.proc.pid):
            time.sleep(0.05)
        if not worker_pids_from_snapshot(metrics_file,
                                         client.proc.pid):
            fail("workers never showed up in the metrics snapshots")

        # --- Restart mode: warm the result cache before the violence
        # and measure the baseline. The first wave computes fresh, the
        # second must come back stamped cache_hit/dedup_follower and
        # bitwise identical modulo the volatile fields.
        programs = warm_corpus() if RESTART else []
        baseline_rate = 0.0
        warm_ids = []
        if RESTART:
            fresh_ids = send_warm_wave(client, "warm-fresh", programs)
            hot_ids = send_warm_wave(client, "warm-hot", programs)
            warm_ids = fresh_ids + hot_ids
            baseline_rate = cache_hit_rate(client, hot_ids)
            if baseline_rate <= 0.0:
                fail("warmup produced no cache hits")
            for fid, hid in zip(fresh_ids, hot_ids):
                fresh = normalized_result(client.response_for(fid))
                hot = normalized_result(client.response_for(hid))
                if fresh != hot:
                    fail(f"cached response {hid} differs from fresh "
                         f"{fid} beyond the volatile fields:\n"
                         f"  fresh: {fresh}\n  cached: {hot}")

        chaos.start()

        # --- The corpus, lightly paced so crashes land while work is
        # in flight. Programs vary so the shard hash spreads them.
        soak_started = time.monotonic()
        sent_ids = list(warm_ids)
        hostile = 0  # malformed + oversized: id-less error responses
        for i in range(COUNT):
            rid = f"req-{i}"
            slot = i % 10
            if slot == 3:
                client.send_raw("this line is not a request")
                hostile += 1
            elif slot == 7:
                # Valid JSON but over --max-request-bytes: rejected
                # before parsing, id unrecoverable by design.
                client.send_raw(json.dumps(
                    {"id": rid, "kind": "analyze",
                     "program": "X" * (2 * max_request_bytes)}))
                hostile += 1
            else:
                program = SMALL.replace("PROGRAM t",
                                        f"PROGRAM t{i % 8}")
                if slot == 5:
                    client.send({"id": rid, "kind": "compound",
                                 "program": program})
                elif slot == 9:
                    client.send({"id": rid, "kind": "compound",
                                 "program": program, "replay": True})
                elif slot == 1:
                    # Slow enough that a SIGKILL can land mid-request
                    # and exercise the transparent idempotent retry.
                    client.send({"id": rid, "kind": "simulate",
                                 "program": HEAVY})
                else:
                    kind = ("analyze", "simulate")[slot % 2]
                    client.send({"id": rid, "kind": kind,
                                 "program": program})
                sent_ids.append(rid)
            if i % 4 == 0:
                time.sleep(0.01)

        # --- Zero lost responses: every id answered despite the
        # kills. Crash-retries ride respawn backoff, so allow time.
        expected = len(sent_ids) + hostile
        if not client.wait_responses(expected, timeout=120.0):
            missing = [r for r in sent_ids if r not in client.recv_at]
            fail(f"lost responses: expected {expected}, got "
                 f"{len(client.lines)} (missing ids: {missing[:10]})")
        stop_chaos.set()
        chaos.join(timeout=5)
        soak_duration = time.monotonic() - soak_started

        check_exactly_one_response(client, sent_ids, hostile)

        # --- Post-chaos reconciliation: with every response in hand,
        # requests_total must equal the well-formed requests sent,
        # +1 for the metrics scrape itself.
        final = scrape_metrics(client, "chaos-metrics-final")
        counters = final.get("registry", {}).get("counters", {})
        server_total = counters.get("serve.requests_total")
        if server_total != client.parsed_sent:
            fail(f"post-chaos serve.requests_total={server_total}, "
                 f"client sent {client.parsed_sent} well-formed "
                 "requests")

        # --- The supervisor actually took hits and recovered, and
        # respawns are bounded by the chaos actions (each SIGKILL or
        # hung SIGSTOP costs at most one respawn — no respawn storm).
        workers = final.get("workers", [])
        if len(workers) != WORKERS:
            fail(f"metrics lists {len(workers)} workers, "
                 f"want {WORKERS}")
        respawns = sum(int(w.get("respawns", 0)) for w in workers)
        crashes = sum(int(w.get("crashes", 0)) for w in workers)
        if tally["kills"] >= 1 and respawns < 1:
            fail(f"{tally['kills']} SIGKILLs but zero respawns")
        budget = tally["kills"] + tally["stops"]
        if respawns > budget:
            fail(f"{respawns} respawns exceed the {budget} chaos "
                 "actions taken (respawn storm)")
        if not all(w.get("state") == "up" for w in workers):
            # Everything answered, so any still-down worker is just
            # riding out its backoff; it must come back.
            deadline = time.monotonic() + 30.0
            recheck = 0
            while time.monotonic() < deadline:
                recheck += 1
                snap = scrape_metrics(client,
                                      f"chaos-recheck-{recheck}")
                if all(w.get("state") == "up"
                       for w in snap.get("workers", [])):
                    break
                time.sleep(0.2)
            else:
                fail("a worker never respawned after chaos")

        results = sum(1 for l in client.lines
                      if json.loads(l).get("type") == "result")
        shed = sum(1 for l in client.lines
                   if json.loads(l).get("type") == "overloaded")
        retried = sum(1 for l in client.lines
                      if json.loads(l).get("retried") is True)
        worker_crashed = sum(
            1 for l in client.lines
            if json.loads(l).get("code") == "serve.worker-crashed")

        cache_block = restart_block = None
        if RESTART:
            # --- SIGKILL the supervisor with work in flight, corrupt
            # a shard snapshot, relaunch, and assert recovery.
            snapshots, admits, cache_block, restart_block = \
                restart_leg(client, server_argv, metrics_file,
                            journal_path, snap_dir, programs, cleanup)
            cache_block["baseline_hit_rate"] = round(baseline_rate, 3)
            cache_block["bitwise_identical"] = True
            if cache_block["post_restart_hit_rate"] < \
                    0.5 * baseline_rate:
                fail(f"post-restart hit rate "
                     f"{cache_block['post_restart_hit_rate']} is "
                     f"below half the {baseline_rate:.3f} baseline")
        else:
            # --- Graceful drain amid the wreckage: SIGTERM exits 0
            # and the final snapshot reconciles too.
            client.sigterm_and_wait()
            snapshots, last = read_final_snapshot(metrics_file)
            snap_total = (last.get("stats", {}).get("counters", {})
                          .get("serve.requests_total"))
            if snap_total != client.parsed_sent:
                fail(f"final snapshot "
                     f"serve.requests_total={snap_total}, "
                     f"client sent {client.parsed_sent}")

            # --- The admission journal closed every record it opened.
            admits = check_journal_empty(journal_path)

        report = {
            "mode": "chaos",
            "workers": WORKERS,
            "requests": client.parsed_sent + hostile,
            "responses": len(client.lines),
            "results": results,
            "shed": shed,
            "hostile": hostile,
            "duration_s": round(soak_duration, 3),
            "rps": round(len(client.lines)
                         / max(soak_duration, 1e-9), 1),
            "client_latency": client.client_latency(),
            "server_latency": server_latency_from(final),
            "snapshots": len(snapshots),
            "chaos": {
                "kills": tally["kills"],
                "stops": tally["stops"],
                "respawns": respawns,
                "crashes": crashes,
                "retried_results": retried,
                "worker_crashed_errors": worker_crashed,
                "journal_admits": admits,
            },
        }
        if cache_block is not None:
            report["cache"] = cache_block
            report["restart"] = restart_block
        print(json.dumps(report, indent=2))
        if REPORT:
            with open(REPORT, "w") as fh:
                json.dump(report, fh, indent=2)
                fh.write("\n")

        print(f"chaos soak ok: {len(sent_ids) + hostile} requests, "
              f"{len(client.lines)} responses, zero lost; "
              f"{tally['kills']} kills + {tally['stops']} stops -> "
              f"{respawns} respawns, {retried} retried, "
              f"{worker_crashed} worker-crashed; journal clean, "
              "exit 0 on SIGTERM")
        if restart_block is not None:
            print(f"restart leg ok: {restart_block['stranded']} "
                  f"stranded, {restart_block['journal_dangling']} "
                  f"replayed from the journal, "
                  f"{restart_block['resent']} resent, hit rate "
                  f"{cache_block['baseline_hit_rate']} -> "
                  f"{cache_block['post_restart_hit_rate']} across the "
                  "restart, corrupted snapshot rejected")
    finally:
        stop_chaos.set()
        for c in cleanup:
            c.kill_if_alive()
        shutil.rmtree(scratch, ignore_errors=True)


# --------------------------------------------------------------------
# Overload mode (--overload)
# --------------------------------------------------------------------

def wait_ids(client, ids, timeout=180.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        missing = [r for r in ids if r not in client.recv_at]
        if not missing:
            return []
        time.sleep(0.02)
    return [r for r in ids if r not in client.recv_at]


def latency_p99_ms(client, ids):
    samples = sorted(
        (client.recv_at[r] - client.sent_at[r]) * 1e3
        for r in ids if r in client.recv_at and r in client.sent_at)
    return percentile(samples, 0.99)


def shed_reasons(client, ids):
    """Counter of overloaded-shed reasons plus deadline-exceeded
    errors across `ids`."""
    reasons = Counter()
    for rid in ids:
        resp = client.response_for(rid) or {}
        if resp.get("type") == "overloaded":
            reasons[resp.get("reason", "queue-full")] += 1
        elif resp.get("code") == "serve.deadline-exceeded":
            reasons["deadline-exceeded"] += 1
    return reasons


def overload_main():
    scratch = tempfile.mkdtemp(prefix="memoria-overload-soak-")
    metrics_file = SNAPSHOTS or os.path.join(scratch,
                                             "snapshots.jsonl")
    journal_path = JOURNAL or os.path.join(scratch, "journal.jsonl")
    snap_dir = CACHE_SNAPDIR or os.path.join(scratch,
                                             "cache-snapshots")
    server_argv = [
        BIN, "serve",
        "--workers", str(WORKERS),
        "--jobs", "2",
        "--queue", "16",
        "--deadline-ms", "1000",
        "--heartbeat-ms", "100",
        "--client-cap", "6",
        "--age-ms", "1000",
        "--journal", journal_path,
        "--no-incidents",
        "--metrics-file", metrics_file,
        "--metrics-interval-ms", "50",
        "--cache-snapshot-dir", snap_dir,
        "--cache-snapshot-interval-ms", "200",
    ]
    client = ServeClient(server_argv)

    try:
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and not \
                worker_pids_from_snapshot(metrics_file,
                                          client.proc.pid):
            time.sleep(0.05)
        if not worker_pids_from_snapshot(metrics_file,
                                         client.proc.pid):
            fail("workers never showed up in the metrics snapshots")

        # --- Warmup: alice's working set, twice — the second wave
        # establishes the uncontended latency and cache-hit baselines
        # the overload gates compare against.
        programs = warm_corpus()

        def alice_wave(tag):
            ids = []
            for i, program in enumerate(programs):
                rid = f"{tag}-{i}"
                client.send({"id": rid, "kind": "compound",
                             "program": program,
                             "client_id": "alice",
                             "priority": "interactive"})
                ids.append(rid)
                if not client.wait_response_for(rid):
                    fail(f"no response for warm request {rid}")
                resp = client.response_for(rid)
                if resp.get("type") != "result":
                    fail(f"warm request {rid} got "
                         f"{resp.get('type')!r}, want result")
            return ids

        alice_wave("warm-fresh")
        hot_ids = alice_wave("warm-hot")
        baseline_rate = cache_hit_rate(client, hot_ids)
        if baseline_rate <= 0.0:
            fail("warmup produced no cache hits")
        baseline_p99_ms = latency_p99_ms(client, hot_ids)

        # --- The overload: three client classes at ~2x capacity, with
        # a SIGHUP rolling restart landing mid-flood.
        soak_started = time.monotonic()
        scale = max(1, COUNT // 200)
        alice_ids, bruce_ids, carol_ids = [], [], []
        hup_sent = threading.Event()

        def alice_loop():
            # Paced interactive traffic over the warm working set: the
            # well-behaved client fair share must protect.
            for i in range(50 * scale):
                rid = f"alice-{i}"
                alice_ids.append(rid)
                client.send({"id": rid, "kind": "compound",
                             "program": programs[i % len(programs)],
                             "client_id": "alice",
                             "priority": "interactive"})
                if i == 15:
                    os.kill(client.proc.pid, signal.SIGHUP)
                    hup_sent.set()
                    print("overload: SIGHUP rolling restart requested",
                          file=sys.stderr)
                time.sleep(0.02)

        def bruce_loop():
            # The batch flooder: far more than his per-client cap can
            # hold, nearly unpaced. He must be the one shed.
            for i in range(150 * scale):
                rid = f"bruce-{i}"
                bruce_ids.append(rid)
                program = SMALL.replace("PROGRAM t",
                                        f"PROGRAM bruce{i % 12}")
                client.send({"id": rid, "kind": "compound",
                             "program": program,
                             "client_id": "bruce",
                             "priority": "batch"})
                time.sleep(0.002)

        def carol_loop():
            # Tight deadlines on heavy work: once the service-time
            # estimate reflects reality, these shed on arrival.
            for i in range(30 * scale):
                rid = f"carol-{i}"
                carol_ids.append(rid)
                program = HEAVY.replace("PROGRAM heavy",
                                        f"PROGRAM carol{i}")
                client.send({"id": rid, "kind": "simulate",
                             "program": program,
                             "client_id": "carol",
                             "deadline_ms": 20})
                time.sleep(0.01)

        threads = [threading.Thread(target=fn, daemon=True)
                   for fn in (alice_loop, bruce_loop, carol_loop)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        if not hup_sent.is_set():
            fail("the SIGHUP was never sent")
        all_ids = alice_ids + bruce_ids + carol_ids

        # --- Gate 1: zero lost responses under 2x overload.
        missing = wait_ids(client, all_ids)
        if missing:
            fail(f"lost responses under overload: {len(missing)} "
                 f"missing (sample: {missing[:10]})")
        soak_duration = time.monotonic() - soak_started
        check_exactly_one_response(client, all_ids, 0)

        # --- Gate 2: the flooder is shed, the paced client never is,
        # and her p99 stays bounded.
        alice_shed = shed_reasons(client, alice_ids)
        bruce_shed = shed_reasons(client, bruce_ids)
        carol_shed = shed_reasons(client, carol_ids)
        if alice_shed:
            fail(f"the paced interactive client was shed: "
                 f"{dict(alice_shed)}")
        if bruce_shed.get("client-capped", 0) < 1:
            fail(f"the flooder drew no client-capped sheds "
                 f"(saw: {dict(bruce_shed)})")
        alice_p99_ms = latency_p99_ms(client, alice_ids)
        p99_bound_ms = max(2000.0, 10.0 * baseline_p99_ms)
        if alice_p99_ms > p99_bound_ms:
            fail(f"interactive p99 {alice_p99_ms:.0f}ms exceeds the "
                 f"{p99_bound_ms:.0f}ms bound (uncontended baseline "
                 f"{baseline_p99_ms:.0f}ms)")

        # --- Gate 3: infeasible deadlines never occupy a worker —
        # shed at admission or answered deadline-exceeded from the
        # queue.
        carol_rejected = (carol_shed.get("deadline-infeasible", 0)
                          + carol_shed.get("deadline-exceeded", 0))
        if carol_rejected < 1:
            fail(f"no tight-deadline request was shed as infeasible "
                 f"or expired (saw: {dict(carol_shed)})")

        # --- Gate 4: the SIGHUP roll gracefully recycled every shard
        # — zero crashes — and the fleet ended whole.
        recycles = crashes = 0
        deadline = time.monotonic() + 30.0
        probe = 0
        while time.monotonic() < deadline:
            probe += 1
            final = scrape_metrics(client, f"overload-metrics-{probe}")
            workers = final.get("workers", [])
            recycles = sum(int(w.get("recycles", 0)) for w in workers)
            crashes = sum(int(w.get("crashes", 0)) for w in workers)
            if recycles >= WORKERS and \
                    all(w.get("state") == "up" for w in workers):
                break
            time.sleep(0.2)
        else:
            fail(f"rolling restart incomplete 30s after the load: "
                 f"{recycles} recycles across {WORKERS} workers")
        if crashes > 0:
            fail(f"{crashes} worker crash(es) during a graceful roll")
        counters = final.get("registry", {}).get("counters", {})
        if counters.get("serve.rolling_restarts", 0) < 1:
            fail("serve.rolling_restarts never counted the SIGHUP")

        # --- Gate 5: requests_total reconciles exactly (every
        # response is in hand, nothing hostile was sent).
        server_total = counters.get("serve.requests_total")
        if server_total != client.parsed_sent:
            fail(f"post-overload serve.requests_total={server_total}, "
                 f"client sent {client.parsed_sent}")

        # --- Gate 6: the roll restarted workers warm — alice's
        # working set still hits at half the pre-roll baseline or
        # better.
        post_ids = alice_wave("warm-post")
        post_rate = cache_hit_rate(client, post_ids)
        if post_rate < 0.5 * baseline_rate:
            fail(f"post-roll hit rate {post_rate:.3f} is below half "
                 f"the {baseline_rate:.3f} baseline: the recycle "
                 "cold-started the cache")

        results = sum(1 for l in client.lines
                      if json.loads(l).get("type") == "result")
        shed = sum(1 for l in client.lines
                   if json.loads(l).get("type") == "overloaded")
        server_latency = server_latency_from(final)

        # --- Graceful drain; the journal audits clean.
        client.sigterm_and_wait()
        read_final_snapshot(metrics_file)
        admits = check_journal_empty(journal_path)

        by_reason = Counter()
        for ids in (alice_ids, bruce_ids, carol_ids):
            by_reason.update(shed_reasons(client, ids))
        report = {
            "mode": "overload",
            "workers": WORKERS,
            "requests": client.parsed_sent,
            "responses": len(client.lines),
            "results": results,
            "shed": shed,
            "shed_by_reason": dict(by_reason),
            "duration_s": round(soak_duration, 3),
            "rps": round(len(all_ids) / max(soak_duration, 1e-9), 1),
            "client_latency": client.client_latency(),
            "server_latency": server_latency,
            "interactive": {
                "requests": len(alice_ids),
                "shed": 0,
                "p99_ms": round(alice_p99_ms, 1),
                "uncontended_p99_ms": round(baseline_p99_ms, 1),
                "p99_bound_ms": round(p99_bound_ms, 1),
            },
            "batch": {
                "requests": len(bruce_ids),
                "shed_by_reason": dict(bruce_shed),
            },
            "deadline": {
                "requests": len(carol_ids),
                "rejected_infeasible_or_expired": carol_rejected,
            },
            "rolling_restart": {
                "recycles": recycles,
                "crashes": crashes,
                "baseline_hit_rate": round(baseline_rate, 3),
                "post_roll_hit_rate": round(post_rate, 3),
            },
            "journal_admits": admits,
        }
        print(json.dumps(report, indent=2))
        if REPORT:
            with open(REPORT, "w") as fh:
                json.dump(report, fh, indent=2)
                fh.write("\n")

        print(f"overload soak ok: {len(all_ids)} requests, zero lost; "
              f"alice p99 {alice_p99_ms:.0f}ms (bound "
              f"{p99_bound_ms:.0f}ms), bruce shed "
              f"{sum(bruce_shed.values())} "
              f"({bruce_shed.get('client-capped', 0)} client-capped), "
              f"carol rejected {carol_rejected}; {recycles} graceful "
              f"recycles, 0 crashes, hit rate "
              f"{baseline_rate:.2f} -> {post_rate:.2f}; journal clean, "
              "exit 0 on SIGTERM")
    finally:
        client.kill_if_alive()
        shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    if OVERLOAD:
        overload_main()
    elif CHAOS:
        chaos_main()
    else:
        steady_main()
