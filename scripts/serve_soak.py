#!/usr/bin/env python3
"""Soak-test `memoria serve` over the stdio transport.

Drives a mixed corpus of requests (valid work, heavy programs under
tiny deadlines, malformed lines, fault-armed requests, health probes)
at a small server, then SIGTERMs it, and asserts the robustness and
telemetry contracts end to end:

  * exactly one terminal response per request — nothing lost, nothing
    duplicated, even for requests shed by backpressure;
  * a mid-soak `metrics` scrape returns well-formed Prometheus
    exposition text whose `serve.requests_total` agrees with the
    client-side request count (within the in-flight allowance);
  * the process exits 0 on SIGTERM (graceful drain) and the drain
    handler writes a final metrics snapshot to --metrics-file;
  * at least one well-formed minimized incident bundle was written for
    the fault-armed failures.

A JSON soak report — client-side latency p50/p95/p99 per request kind,
RPS, and the server's own serve.latency_us.* percentiles — is printed
and, when SOAK_REPORT (or argv[3]) names a path, written there.

Usage: scripts/serve_soak.py [path-to-memoria] [request-count] [report]
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from collections import Counter

BIN = sys.argv[1] if len(sys.argv) > 1 else "./build/src/tools/memoria"
COUNT = int(sys.argv[2]) if len(sys.argv) > 2 else 200
REPORT = (sys.argv[3] if len(sys.argv) > 3
          else os.environ.get("SOAK_REPORT", ""))
# Where the server writes its periodic metrics snapshots; default is
# inside the (deleted) scratch dir, set SOAK_SNAPSHOTS to keep them.
SNAPSHOTS = os.environ.get("SOAK_SNAPSHOTS", "")

SMALL = (
    "PROGRAM t\n"
    "  PARAMETER N = 8\n"
    "  REAL*8 A(N,N)\n"
    "  DO I = 1, N\n"
    "    DO J = 1, N\n"
    "      A(I,J) = A(I,J) + 1.0\n"
    "    ENDDO\n"
    "  ENDDO\n"
    "END\n"
)
HEAVY = (
    "PROGRAM heavy\n"
    "  PARAMETER N = 64\n"
    "  REAL*8 A(N,N)\n"
    "  REAL*8 B(N,N)\n"
    "  DO I = 1, N\n"
    "    DO J = 1, N\n"
    "      DO K = 1, N\n"
    "        A(I,J) = A(I,J) + B(J,K)\n"
    "      ENDDO\n"
    "    ENDDO\n"
    "  ENDDO\n"
    "END\n"
)


def fail(msg):
    print(f"soak: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def percentile(sorted_vals, q):
    """Nearest-rank percentile of an ascending list (q in [0,1])."""
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(q * len(sorted_vals)))
    return sorted_vals[idx]


def check_exposition(text):
    """Validate Prometheus text exposition; return metric -> value for
    plain (unlabeled) samples. Fails the soak on malformed lines or
    non-monotonic histogram buckets."""
    values = {}
    buckets = {}  # metric base name -> list of cumulative counts
    for ln, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if (len(parts) != 4 or parts[1] != "TYPE"
                    or parts[3] not in ("counter", "gauge",
                                        "histogram")):
                fail(f"exposition line {ln}: bad TYPE comment {line!r}")
            continue
        fields = line.rsplit(None, 1)
        if len(fields) != 2:
            fail(f"exposition line {ln}: no value in {line!r}")
        name, value = fields
        try:
            value = float(value)
        except ValueError:
            fail(f"exposition line {ln}: non-numeric value {line!r}")
        if "{" in name:
            base, rest = name.split("{", 1)
            if not rest.endswith("}"):
                fail(f"exposition line {ln}: unclosed labels {line!r}")
            if base.endswith("_bucket"):
                buckets.setdefault(base, []).append(value)
        else:
            if not all(c.isalnum() or c == "_" for c in name):
                fail(f"exposition line {ln}: bad metric name {name!r}")
            values[name] = value
    for base, counts in buckets.items():
        if any(b > a for a, b in zip(counts[1:], counts)):
            fail(f"exposition: non-monotonic buckets for {base}")
        count_name = base[: -len("_bucket")] + "_count"
        if count_name in values and counts and \
                counts[-1] != values[count_name]:
            fail(f"exposition: {base} last bucket {counts[-1]} != "
                 f"{count_name} {values[count_name]}")
    return values


def main():
    incidents = tempfile.mkdtemp(prefix="memoria-soak-incidents-")
    metrics_file = SNAPSHOTS or os.path.join(incidents,
                                             "snapshots.jsonl")
    proc = subprocess.Popen(
        [
            BIN, "serve",
            "--jobs", "2",
            "--queue", "8",
            "--deadline-ms", "2000",
            "--allow-faults",
            "--incidents-dir", incidents,
            "--metrics-file", metrics_file,
            "--metrics-interval-ms", "100",
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=sys.stderr,
        text=True,
    )

    lines = []
    recv_at = {}  # request id -> monotonic arrival time
    def reader():
        # Line-at-a-time; survives EINTR inside Python's buffered read.
        for line in proc.stdout:
            line = line.strip()
            if line:
                now = time.monotonic()
                lines.append(line)
                try:
                    rid = json.loads(line).get("id", "")
                except json.JSONDecodeError:
                    rid = ""
                if rid and rid not in recv_at:
                    recv_at[rid] = now

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()

    sent_at = {}   # request id -> monotonic send time
    sent_kind = {} # request id -> kind
    parsed_sent = [0]  # requests the server should parse successfully

    def send_raw(text):
        proc.stdin.write(text + "\n")
        proc.stdin.flush()

    def send(obj):
        rid = obj.get("id", "")
        if rid:
            sent_at[rid] = time.monotonic()
            sent_kind[rid] = obj.get("kind", "compound")
        parsed_sent[0] += 1
        send_raw(json.dumps(obj))

    def wait_responses(n, timeout=120.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline and len(lines) < n:
            time.sleep(0.02)
        return len(lines) >= n

    def wait_responses_for(rid, timeout=120.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline and rid not in recv_at:
            time.sleep(0.02)
        return rid in recv_at

    try:
        # --- Phase 1: the mixed corpus, sent flat out so the bounded
        # queue sheds some of it (overloaded is a terminal response
        # too).
        soak_started = time.monotonic()
        sent_ids = []
        malformed = 0
        for i in range(COUNT):
            rid = f"req-{i}"
            slot = i % 10
            if slot == 3:
                send_raw("this line is not a request")
                malformed += 1
            elif slot == 5:
                send({"id": rid, "kind": "simulate",
                      "program": HEAVY, "deadline_ms": 1})
                sent_ids.append(rid)
            elif slot == 9:
                send({"id": rid, "kind": "health"})
                sent_ids.append(rid)
            else:
                kind = ("analyze", "compound", "simulate")[slot % 3]
                send({"id": rid, "kind": kind, "program": SMALL})
                sent_ids.append(rid)

        # --- Mid-soak metrics scrape, while phase 1 is still in
        # flight: the exposition must be well-formed and the server's
        # own request counter must agree with what the client sent,
        # give or take the requests still somewhere in the pipe.
        send({"id": "soak-metrics-mid", "kind": "metrics"})
        if not wait_responses_for("soak-metrics-mid"):
            fail("no response to the mid-soak metrics request")
        mid = json.loads(
            next(l for l in lines
                 if json.loads(l).get("id") == "soak-metrics-mid"))
        if mid.get("type") != "metrics":
            fail(f"mid-soak metrics response has type "
                 f"{mid.get('type')!r}")
        expo = check_exposition(mid.get("exposition", ""))
        server_total = expo.get("memoria_serve_requests_total")
        if server_total is None:
            fail("exposition lacks memoria_serve_requests_total")
        answered = len(recv_at)
        # Everything the server has counted was sent by us; everything
        # we have an answer for was counted by the server.
        if not answered <= server_total <= parsed_sent[0]:
            fail(f"serve.requests_total={server_total} outside "
                 f"[{answered}, {parsed_sent[0]}]")

        expected = len(sent_ids) + malformed + 1  # + metrics response
        if not wait_responses(expected):
            fail(f"expected {expected} responses, got {len(lines)}")

        # --- Phase 2: guarantee at least one accepted fault-armed
        # request (phase 1 may shed arbitrarily many), pacing one at a
        # time so admission cannot fail for long.
        incident_dir = None
        for attempt in range(20):
            rid = f"fault-{attempt}"
            send({"id": rid, "kind": "compound", "program": SMALL,
                  "fault": "transform.permute:throw:1"})
            sent_ids.append(rid)
            expected += 1
            if not wait_responses(expected):
                fail(f"no response for fault request {rid}")
            resp = next(
                (json.loads(l) for l in lines
                 if json.loads(l).get("id") == rid), None)
            if resp and resp.get("type") == "result":
                incident_dir = resp.get("incident_dir")
                break
            time.sleep(0.05)  # shed: back off and retry
        if not incident_dir:
            fail("no fault-armed request produced an incident bundle")

        # --- Final metrics scrape: the report publishes the server's
        # own serve.latency_us.* percentiles, not just client timing.
        send({"id": "soak-metrics-final", "kind": "metrics"})
        if not wait_responses_for("soak-metrics-final"):
            fail("no response to the final metrics request")
        expected += 1
        final = json.loads(
            next(l for l in lines
                 if json.loads(l).get("id") == "soak-metrics-final"))
        check_exposition(final.get("exposition", ""))
        server_latency = {}
        hists = final.get("registry", {}).get("histograms", {})
        for name, h in hists.items():
            prefix = "serve.latency_us."
            if name.startswith(prefix):
                server_latency[name[len(prefix):]] = {
                    "count": h.get("count", 0),
                    "p50_us": h.get("p50", 0.0),
                    "p90_us": h.get("p90", 0.0),
                    "p99_us": h.get("p99", 0.0),
                }
        if not server_latency:
            fail("final metrics response has no serve.latency_us.* "
                 "histograms")
        soak_duration = time.monotonic() - soak_started

        # --- Exactly one terminal response per request.
        by_id = Counter()
        for line in lines:
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                fail(f"response is not JSON: {line!r}")
            by_id[obj.get("id", "")] += 1
        for rid in sent_ids:
            if by_id[rid] != 1:
                fail(f"request {rid} got {by_id[rid]} responses")
        if by_id[""] != malformed:
            fail(f"{malformed} malformed lines but {by_id['']} "
                 "id-less error responses")

        # --- Graceful drain: SIGTERM exits 0.
        proc.send_signal(signal.SIGTERM)
        try:
            rc = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("server did not exit within 60s of SIGTERM")
        if rc != 0:
            fail(f"server exited {rc} on SIGTERM, want 0")

        # --- The drain handler wrote one final metrics snapshot, so a
        # SIGTERM'd serve never loses the stats since the last tick.
        if not os.path.isfile(metrics_file):
            fail(f"no metrics snapshot file at {metrics_file}")
        with open(metrics_file) as fh:
            snapshots = [ln for ln in fh.read().splitlines() if ln]
        if not snapshots:
            fail("metrics snapshot file is empty after SIGTERM")
        last = json.loads(snapshots[-1])
        if not last.get("draining"):
            fail("final metrics snapshot was not written by the drain "
                 "handler (draining != true)")
        snap_total = (last.get("stats", {}).get("counters", {})
                      .get("serve.requests_total"))
        if snap_total != parsed_sent[0]:
            fail(f"final snapshot serve.requests_total={snap_total}, "
                 f"client sent {parsed_sent[0]}")

        # --- At least one well-formed minimized bundle.
        good_bundles = 0
        for entry in sorted(os.listdir(incidents)):
            bundle = os.path.join(incidents, entry)
            meta_path = os.path.join(bundle, "incident.json")
            if not os.path.isfile(meta_path):
                continue
            with open(meta_path) as fh:
                meta = json.load(fh)
            red = meta.get("reduction", {})
            files = meta.get("files", {})
            if (red.get("reproduced")
                    and "minimized" in files
                    and os.path.isfile(os.path.join(bundle,
                                                    files["original"]))
                    and os.path.isfile(os.path.join(bundle,
                                                    files["minimized"]))
                    and red.get("final_nodes", 1 << 30)
                        <= red.get("orig_nodes", 0)):
                good_bundles += 1
        if good_bundles < 1:
            fail(f"no well-formed minimized bundle under {incidents}")

        results = sum(
            1 for l in lines if json.loads(l).get("type") == "result")
        shed = sum(
            1 for l in lines
            if json.loads(l).get("type") == "overloaded")

        # --- Client-side latency per request kind + RPS.
        by_kind = {}
        for rid, t0 in sent_at.items():
            t1 = recv_at.get(rid)
            if t1 is None:
                continue
            by_kind.setdefault(sent_kind[rid], []).append(
                (t1 - t0) * 1e6)
        client_latency = {}
        for kind, samples in sorted(by_kind.items()):
            samples.sort()
            client_latency[kind] = {
                "count": len(samples),
                "p50_us": round(percentile(samples, 0.50), 1),
                "p95_us": round(percentile(samples, 0.95), 1),
                "p99_us": round(percentile(samples, 0.99), 1),
            }
        report = {
            "requests": parsed_sent[0] + malformed,
            "responses": len(lines),
            "results": results,
            "shed": shed,
            "duration_s": round(soak_duration, 3),
            "rps": round(len(lines) / max(soak_duration, 1e-9), 1),
            "client_latency": client_latency,
            "server_latency": server_latency,
            "snapshots": len(snapshots),
            "minimized_bundles": good_bundles,
        }
        print(json.dumps(report, indent=2))
        if REPORT:
            with open(REPORT, "w") as fh:
                json.dump(report, fh, indent=2)
                fh.write("\n")

        print(f"soak ok: {len(sent_ids) + malformed} requests, "
              f"{len(lines)} responses ({results} results, {shed} "
              f"shed), exit 0 on SIGTERM, {good_bundles} minimized "
              f"bundle(s)")
    finally:
        if proc.poll() is None:
            proc.kill()
        shutil.rmtree(incidents, ignore_errors=True)


if __name__ == "__main__":
    main()
