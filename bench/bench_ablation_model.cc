/**
 * @file
 * Model-validation ablation (Section 4.1's claim).
 *
 * (a) Rank agreement: for matrix multiply, the model's LoopCost
 * ranking over all six permutations must match the simulated-miss
 * ranking (the paper validated this on three machines: "the entire
 * ranking accurately predicts relative performance").
 * (b) Triangular-policy ablation: Dominant (paper-style dominating
 * terms) versus Average trip counts — both must select the same
 * memory order for the paper's kernels.
 */

#include <algorithm>
#include <numeric>
#include <vector>

#include "common.hh"
#include "interp/interp.hh"
#include "model/loopcost.hh"
#include "suite/kernels.hh"

namespace memoria {
namespace {

/**
 * Pairwise concordance: over all pairs where the model states a strict
 * preference, the fraction the simulation confirms. Model ties (equal
 * LoopCost) impose no constraint — they are the model's admission of
 * indifference.
 */
double
rankAgreement(const std::vector<double> &model,
              const std::vector<double> &sim)
{
    int constrained = 0, confirmed = 0;
    for (size_t a = 0; a < model.size(); ++a) {
        for (size_t b = a + 1; b < model.size(); ++b) {
            if (model[a] == model[b])
                continue;
            ++constrained;
            bool modelSays = model[a] < model[b];
            bool simSays = sim[a] < sim[b];
            if (modelSays == simSays)
                ++confirmed;
        }
    }
    return constrained == 0
               ? 1.0
               : static_cast<double>(confirmed) / constrained;
}

int
benchMain()
{
    banner("Model vs simulation ranking: matmul permutations");
    const std::vector<std::string> orders = {"IJK", "IKJ", "JIK",
                                             "JKI", "KIJ", "KJI"};
    std::vector<double> model, sim;
    TextTable t({"order", "LoopCost(inner) n=64", "sim misses (i860)"});
    for (const auto &order : orders) {
        Program p = makeMatmul(order, 64);
        NestAnalysis na(p, p.body[0].get(), paperModel());
        auto chain = perfectChain(p.body[0].get());
        double cost = na.loopCost(chain.back()).eval(64);
        RunResult r = runWithCache(p, CacheConfig::i860());
        model.push_back(cost);
        sim.push_back(static_cast<double>(r.cache.misses));
        t.addRow({order, TextTable::num(cost, 0),
                  std::to_string(r.cache.misses)});
    }
    std::cout << t.str();
    std::cout << "\nrank agreement (1.0 = identical ordering): "
              << TextTable::num(rankAgreement(model, sim), 2) << "\n";

    banner("Triangular-trip policy ablation (Cholesky)");
    for (TriangularPolicy pol :
         {TriangularPolicy::Dominant, TriangularPolicy::Average}) {
        ModelParams params = paperModel();
        params.policy = pol;
        Program p = makeCholeskyKIJ(128);
        NestAnalysis na(p, p.body[0].get(), params);
        std::cout << (pol == TriangularPolicy::Dominant ? "Dominant"
                                                        : "Average ")
                  << " memory order: ";
        for (Node *l : na.memoryOrder())
            std::cout << p.varName(l->var);
        std::cout << "\n";
    }
    std::cout << "\nexpected: the Dominant (dominating-term) policy "
                 "picks the paper's KJI; the Average policy ranks the "
                 "triangular terms lower and lands on JKI, the "
                 "second-best order in the paper's measured ranking — "
                 "evidence for the paper's choice of dominating "
                 "terms.\n";
    return 0;
}

} // namespace
} // namespace memoria

int
main()
{
    return memoria::benchMain();
}
