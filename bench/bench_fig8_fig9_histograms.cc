/**
 * @file
 * Figures 8 and 9: achieving memory order, program by program.
 *
 * Buckets the corpus programs by the percentage of their nests
 * (Figure 8) and inner loops (Figure 9) that are in memory order,
 * before and after transformation, and renders the two histograms.
 * Expected shape: the "transformed" distribution shifts right — over
 * half the programs end with 80%+ of nests in memory order, and most
 * programs get 90%+ of inner loops positioned correctly.
 */

#include <vector>

#include "common.hh"
#include "suite/corpus.hh"

namespace memoria {
namespace {

struct Histo
{
    // Buckets: 0-9, 10-19, ..., 90-99, 100.
    int buckets[11] = {0};

    void
    add(int part, int whole)
    {
        if (whole == 0)
            return;
        int p = (100 * part) / whole;
        buckets[std::min(10, p / 10)]++;
    }
};

void
print(const char *title, const Histo &orig, const Histo &fin, int nProgs)
{
    banner(title);
    TextTable t({"% in memory order", "original", "transformed",
                 "original bar", "transformed bar"});
    const char *labels[11] = {"0-9",   "10-19", "20-29", "30-39",
                              "40-49", "50-59", "60-69", "70-79",
                              "80-89", "90-99", "100"};
    for (int b = 0; b < 11; ++b) {
        t.addRow({labels[b], std::to_string(orig.buckets[b]),
                  std::to_string(fin.buckets[b]),
                  asciiBar(static_cast<double>(orig.buckets[b]) /
                               nProgs, 24),
                  asciiBar(static_cast<double>(fin.buckets[b]) /
                               nProgs, 24)});
    }
    std::cout << t.str();
}

int
benchMain()
{
    Histo nestsOrig, nestsFinal, innerOrig, innerFinal;
    int nProgs = 0;

    for (const auto &spec : corpusSpecs()) {
        if (spec.nests == 0)
            continue;
        Program p = buildCorpusProgram(spec, 12);
        OptimizedProgram opt = optimizeProgram(p, paperModel());
        const ProgramReport &r = opt.report;
        nestsOrig.add(r.nestsOrig, r.nests);
        nestsFinal.add(r.nestsOrig + r.nestsPerm, r.nests);
        innerOrig.add(r.innerOrig, r.nests);
        innerFinal.add(r.innerOrig + r.innerPerm, r.nests);
        ++nProgs;
    }

    print("Figure 8: programs by % of NESTS in memory order",
          nestsOrig, nestsFinal, nProgs);
    print("Figure 9: programs by % of INNER LOOPS in memory order",
          innerOrig, innerFinal, nProgs);

    std::cout << "\npaper shape: transformed distributions shift "
                 "right; the majority of programs reach 90%+ of inner "
                 "loops correctly positioned.\n";
    return 0;
}

} // namespace
} // namespace memoria

int
main()
{
    return memoria::benchMain();
}
