/**
 * @file
 * Table 3: performance results (original vs transformed).
 *
 * The paper reports RS/6000 seconds for the programs whose behaviour
 * changed; we report simulated cycles on the RS/6000-like cache for the
 * corpus programs with a measurable change, plus the paper-studied
 * kernels. Expected shape: the scalarized-vector-style programs speed
 * up noticeably (the paper saw arc2d 2.15x, gmtry 8.68x, vpenta 1.29x,
 * simple 1.13x); most others barely move because their hit rates were
 * already high.
 */

#include "common.hh"
#include "suite/corpus.hh"
#include "suite/kernels.hh"

namespace memoria {
namespace {

void
row(TextTable &t, const std::string &name, const OptimizedProgram &opt,
    const CacheConfig &cfg)
{
    Performance perf = simulatePerformance(opt, cfg);
    t.addRow({name, TextTable::num(perf.origCycles, 0),
              TextTable::num(perf.finalCycles, 0),
              TextTable::num(perf.speedup(), 2)});
}

int
benchMain()
{
    CacheConfig cfg = CacheConfig::rs6000();

    banner("Table 3 (kernels): paper-studied programs, simulated");
    TextTable k({"program", "orig cycles", "transformed", "speedup"});
    row(k, "matmul (IKJ input)",
        optimizeProgram(makeMatmul("IKJ", 96), paperModel()), cfg);
    row(k, "cholesky (KIJ input)",
        optimizeProgram(makeCholeskyKIJ(128), paperModel()), cfg);
    row(k, "adi/scalarized",
        optimizeProgram(makeAdiScalarized(128), paperModel()), cfg);
    row(k, "gmtry (row sweep)",
        optimizeProgram(makeGmtry(128), paperModel()), cfg);
    row(k, "simple (vectorizable)",
        optimizeProgram(makeSimpleHydro(128), paperModel()), cfg);
    row(k, "vpenta (scalarized)",
        optimizeProgram(makeVpenta(128), paperModel()), cfg);
    row(k, "erlebacher (distributed)",
        optimizeProgram(makeErlebacherDistributed(24), paperModel()),
        cfg);
    row(k, "jacobi (bad order)",
        optimizeProgram(makeJacobiBadOrder(128), paperModel()), cfg);
    std::cout << k.str();

    banner("Table 3 (corpus): programs with any change, simulated");
    TextTable t({"program", "orig cycles", "transformed", "speedup"});
    for (const auto &spec : corpusSpecs()) {
        if (spec.nests == 0)
            continue;
        Program p = buildCorpusProgram(spec, 32);
        OptimizedProgram opt = optimizeProgram(p, paperModel());
        if (!opt.anyChanged)
            continue;
        row(t, spec.name, opt, cfg);
    }
    std::cout << t.str();
    std::cout << "\npaper shape: significant speedups concentrate in "
                 "scalarized-vector programs; no program degrades by "
                 "more than ~2%.\n";
    return 0;
}

} // namespace
} // namespace memoria

int
main()
{
    return memoria::benchMain();
}
