/**
 * @file
 * Figure 7: Cholesky factorization.
 *
 * Regenerates the LoopCost ranking for the Cholesky nest (memory order
 * KJI), shows Compound performing distribution plus triangular
 * interchange, and compares the KIJ input form with the transformed
 * output and the paper's hand-derived KJI form under simulation and
 * native timing.
 */

#include <chrono>
#include <cmath>
#include <vector>

#include "common.hh"
#include "interp/interp.hh"
#include "ir/printer.hh"
#include "model/loopcost.hh"
#include "suite/kernels.hh"
#include "transform/compound.hh"

namespace memoria {
namespace {

/** Natively compiled KIJ and KJI Cholesky kernels. */
double
nativeCholesky(bool kji, int n)
{
    std::vector<double> a(n * n);
    for (int x = 0; x < n; ++x)
        for (int y = 0; y < n; ++y)
            a[x + y * n] = (x == y) ? n + 1.0 : 0.5;
    auto idx = [n](int r, int c) { return r + c * n; };

    auto t0 = std::chrono::steady_clock::now();
    if (!kji) {
        for (int k = 0; k < n; ++k) {
            a[idx(k, k)] = std::sqrt(a[idx(k, k)]);
            for (int i = k + 1; i < n; ++i) {
                a[idx(i, k)] /= a[idx(k, k)];
                for (int j = k + 1; j <= i; ++j)
                    a[idx(i, j)] -= a[idx(i, k)] * a[idx(j, k)];
            }
        }
    } else {
        for (int k = 0; k < n; ++k) {
            a[idx(k, k)] = std::sqrt(a[idx(k, k)]);
            for (int i = k + 1; i < n; ++i)
                a[idx(i, k)] /= a[idx(k, k)];
            for (int j = k + 1; j < n; ++j)
                for (int i = j; i < n; ++i)
                    a[idx(i, j)] -= a[idx(i, k)] * a[idx(j, k)];
        }
    }
    auto t1 = std::chrono::steady_clock::now();
    volatile double sink = a[idx(n - 1, n - 1)];
    (void)sink;
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

int
benchMain()
{
    banner("Figure 7: Cholesky LoopCost (cls = 4)");
    Program p = makeCholeskyKIJ(256);
    NestAnalysis na(p, p.body[0].get(), paperModel());
    TextTable costs({"candidate", "LoopCost", "at n=256"});
    for (const char *name : {"K", "J", "I"}) {
        for (Node *l : na.loops()) {
            if (p.varName(l->var) != name)
                continue;
            Poly c = na.loopCost(l);
            costs.addRow({name, c.str(),
                          TextTable::num(c.eval(256), 0)});
        }
    }
    std::cout << costs.str();
    std::cout << "\nmemory order: ";
    for (Node *l : na.memoryOrder())
        std::cout << p.varName(l->var);
    std::cout << " (paper: KJI)\n";

    banner("Compound: distribution + triangular interchange");
    Program opt = makeCholeskyKIJ(256);
    CompoundResult cr = compoundTransform(opt, paperModel());
    std::cout << printProgram(opt);
    std::cout << "distributions: " << cr.distributions
              << ", resulting nests: " << cr.resultingNests << "\n";
    bool matches =
        runChecksum(opt) == runChecksum(makeCholeskyKJI(256));
    std::cout << "matches hand-derived Figure 7(b) semantics: "
              << (matches ? "yes" : "NO") << "\n";

    banner("Simulated and native comparison");
    TextTable t({"version", "sim cycles (i860, N=64)",
                 "sim misses", "native ms N=400"});
    {
        Program small = makeCholeskyKIJ(64);
        RunResult r = runWithCache(small, CacheConfig::i860());
        t.addRow({"KIJ (original)", TextTable::num(r.cycles, 0),
                  std::to_string(r.cache.misses),
                  TextTable::num(nativeCholesky(false, 400), 1)});
    }
    {
        Program small = makeCholeskyKIJ(64);
        compoundTransform(small, paperModel());
        RunResult r = runWithCache(small, CacheConfig::i860());
        t.addRow({"KJI (Compound)", TextTable::num(r.cycles, 0),
                  std::to_string(r.cache.misses),
                  TextTable::num(nativeCholesky(true, 400), 1)});
    }
    std::cout << t.str();
    std::cout << "\npaper shape: Compound attains the loop structure "
                 "with the best performance (KJI).\n";
    if (!matches) {
        std::cout << "FAIL: transformed Cholesky does not match the "
                     "hand-derived Figure 7(b) semantics\n";
        return 1;
    }
    return 0;
}

} // namespace
} // namespace memoria

int
main()
{
    return memoria::benchMain();
}
