/**
 * @file
 * Reuse-distance profile before and after optimization.
 *
 * The reuse-distance histogram determines the miss ratio of every
 * fully associative LRU capacity at once, so it shows the *entire*
 * locality profile the transformations change — machine-independent,
 * like the paper's cost model, but measured rather than predicted.
 */

#include "cachesim/reuse.hh"
#include "common.hh"
#include "interp/interp.hh"
#include "suite/kernels.hh"
#include "transform/compound.hh"

namespace memoria {
namespace {

ReuseDistanceAnalyzer
profile(Program &p)
{
    ReuseDistanceAnalyzer rd(32);
    Interpreter interp(p);
    interp.run(&rd);
    return rd;
}

int
benchMain()
{
    const int64_t n = 48;
    Program orig = makeMatmul("IKJ", n);
    Program opt = orig.clone();
    compoundTransform(opt, paperModel());

    ReuseDistanceAnalyzer r0 = profile(orig);
    ReuseDistanceAnalyzer r1 = profile(opt);

    banner("Reuse-distance histogram: matmul IKJ vs optimized (N=48)");
    TextTable t({"distance (lines)", "original", "optimized",
                 "orig bar", "opt bar"});
    size_t buckets =
        std::max(r0.histogram().size(), r1.histogram().size());
    auto at = [](const std::vector<uint64_t> &h, size_t b) {
        return b < h.size() ? h[b] : 0;
    };
    for (size_t b = 0; b < buckets; ++b) {
        uint64_t c0 = at(r0.histogram(), b);
        uint64_t c1 = at(r1.histogram(), b);
        std::string label = b == 0 ? "0-1"
                                   : std::to_string(1ULL << b) + "-" +
                                         std::to_string(
                                             (1ULL << (b + 1)) - 1);
        t.addRow({label, std::to_string(c0), std::to_string(c1),
                  asciiBar(static_cast<double>(c0) /
                               r0.warmAccesses(), 20),
                  asciiBar(static_cast<double>(c1) /
                               r1.warmAccesses(), 20)});
    }
    std::cout << t.str();
    std::cout << "\nmean reuse distance: "
              << TextTable::num(r0.meanDistance(), 1) << " -> "
              << TextTable::num(r1.meanDistance(), 1) << " lines\n";

    banner("Implied miss ratio vs fully associative capacity");
    TextTable m({"capacity (lines)", "original miss%",
                 "optimized miss%"});
    for (uint64_t cap : {16, 64, 256, 1024, 4096}) {
        m.addRow({std::to_string(cap),
                  TextTable::num(100.0 * r0.missRatio(cap), 1),
                  TextTable::num(100.0 * r1.missRatio(cap), 1)});
    }
    std::cout << m.str();
    std::cout << "\nexpected shape: the optimized histogram mass moves "
                 "to short distances, so the miss curve drops at every "
                 "realistic capacity.\n";
    return 0;
}

} // namespace
} // namespace memoria

int
main()
{
    return memoria::benchMain();
}
