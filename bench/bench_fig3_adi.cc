/**
 * @file
 * Figure 3: ADI integration — fusion and interchange.
 *
 * Regenerates the LoopCost comparison between the Fortran-90-scalarized
 * loops (two K nests inside I) and the fused-and-interchanged form, and
 * validates with the cache simulator. Expected shape (cls = 4):
 * distributed K costs 5n^2, fused K costs 3n^2, fused I costs 3/4 n^2;
 * Compound discovers fusion + interchange automatically and the fused
 * version misses less.
 */

#include "common.hh"
#include "interp/interp.hh"
#include "ir/printer.hh"
#include "model/loopcost.hh"
#include "suite/kernels.hh"
#include "transform/compound.hh"

namespace memoria {
namespace {

int
benchMain()
{
    banner("Figure 3: ADI LoopCost (cls = 4)");
    Program dist = makeAdiScalarized(128);
    Program fused = makeAdiFused(128);

    NestAnalysis da(dist, dist.body[0].get(), paperModel());
    NestAnalysis fa(fused, fused.body[0].get(), paperModel());

    Node *fk = nullptr, *fi = nullptr;
    for (Node *l : fa.loops()) {
        if (fused.varName(l->var) == "K")
            fk = l;
        if (fused.varName(l->var) == "I")
            fi = l;
    }

    TextTable t({"version", "cost at K inner", "cost at I inner"});
    t.addRow({"distributed (Fig 3b)", nestCost(da).str(), "-"});
    t.addRow({"fused (Fig 3c)", fa.loopCost(fk).str(),
              fa.loopCost(fi).str()});
    std::cout << t.str();
    std::cout << "\npaper: distributed K = 5n^2, fused K = 3n^2, "
                 "fused I = (3/4)n^2\n";

    banner("Compound discovers the transformation");
    Program opt = makeAdiScalarized(128);
    compoundTransform(opt, paperModel());
    std::cout << printProgram(opt);
    bool preserved = runChecksum(opt) == runChecksum(dist);
    std::cout << "semantics preserved: " << (preserved ? "yes" : "NO")
              << "\n";

    banner("Simulated caches (N = 128)");
    TextTable sim({"version", "cache", "hit% (warm)", "misses",
                   "cycles"});
    for (const CacheConfig &cfg :
         {CacheConfig::rs6000(), CacheConfig::i860()}) {
        for (auto *pr : {&dist, &opt}) {
            RunResult r = runWithCache(*pr, cfg);
            sim.addRow({pr == &dist ? "distributed" : "fused(auto)",
                        cfg.name,
                        TextTable::num(r.cache.hitRateWarm(), 2),
                        std::to_string(r.cache.misses),
                        TextTable::num(r.cycles, 0)});
        }
    }
    std::cout << sim.str();
    if (!preserved) {
        std::cout << "\nFAIL: Compound changed the semantics of the "
                     "scalarized ADI nest\n";
        return 1;
    }
    return 0;
}

} // namespace
} // namespace memoria

int
main()
{
    return memoria::benchMain();
}
