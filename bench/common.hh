/**
 * @file
 * Shared helpers for the benchmark harnesses.
 *
 * Every binary in bench/ regenerates one table or figure from the
 * paper's evaluation section and prints it in a comparable layout.
 */

#ifndef MEMORIA_BENCH_COMMON_HH
#define MEMORIA_BENCH_COMMON_HH

#include <iostream>
#include <string>

#include "driver/memoria.hh"
#include "model/params.hh"
#include "support/table.hh"

namespace memoria {

/** The paper's machine-independent model setting: cls counts elements
 *  on a 32-byte line (4 doubles), as in the Figure 2/3/7 examples. */
inline ModelParams
paperModel()
{
    ModelParams p;
    p.lineBytes = 32;
    return p;
}

/** Print a titled section. */
inline void
banner(const std::string &title)
{
    std::cout << "\n== " << title << " ==\n\n";
}

} // namespace memoria

#endif // MEMORIA_BENCH_COMMON_HH
