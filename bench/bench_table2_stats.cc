/**
 * @file
 * Table 2: memory order statistics for the whole benchmark suite.
 *
 * Runs the Memoria pipeline over the 35-program synthetic corpus and
 * prints the paper's table: per program, the number of loops and nests,
 * the percentage of nests originally in / permuted into / failing
 * memory order (for whole nests and for the inner loop), fusion
 * candidates C and fused nests A, distributions D and resulting nests
 * R, and the final/ideal LoopCost ratios. The paper's own values are
 * shown beside ours where the spec defines them.
 */

#include "common.hh"
#include "suite/corpus.hh"

namespace memoria {
namespace {

int
pct(int part, int whole)
{
    return whole == 0 ? 0 : (100 * part + whole / 2) / whole;
}

int
benchMain()
{
    banner("Table 2: Memory Order Statistics (synthetic corpus)");
    TextTable t({"program", "loops", "nests", "MO orig%", "MO perm%",
                 "MO fail%", "In orig%", "In perm%", "In fail%", "C",
                 "A", "D", "R", "ratio fin", "ratio ideal"});

    int tLoops = 0, tNests = 0, tOrig = 0, tPerm = 0, tFail = 0;
    int tIOrig = 0, tIPerm = 0, tIFail = 0;
    int tC = 0, tA = 0, tD = 0, tR = 0;

    std::string group;
    for (const auto &spec : corpusSpecs()) {
        if (spec.group != group) {
            group = spec.group;
            t.addRule();
        }
        Program p = buildCorpusProgram(spec, 12);
        OptimizedProgram opt = optimizeProgram(p, paperModel());
        const ProgramReport &r = opt.report;

        t.addRow({spec.name, std::to_string(r.loops),
                  std::to_string(r.nests),
                  std::to_string(pct(r.nestsOrig, r.nests)),
                  std::to_string(pct(r.nestsPerm, r.nests)),
                  std::to_string(pct(r.nestsFail, r.nests)),
                  std::to_string(pct(r.innerOrig, r.nests)),
                  std::to_string(pct(r.innerPerm, r.nests)),
                  std::to_string(pct(r.innerFail, r.nests)),
                  std::to_string(r.fusion.candidates),
                  std::to_string(r.fusion.fused),
                  std::to_string(r.distributions),
                  std::to_string(r.resultingNests),
                  TextTable::num(r.ratioFinal, 2),
                  TextTable::num(r.ratioIdeal, 2)});

        tLoops += r.loops;
        tNests += r.nests;
        tOrig += r.nestsOrig;
        tPerm += r.nestsPerm;
        tFail += r.nestsFail;
        tIOrig += r.innerOrig;
        tIPerm += r.innerPerm;
        tIFail += r.innerFail;
        tC += r.fusion.candidates;
        tA += r.fusion.fused;
        tD += r.distributions;
        tR += r.resultingNests;
    }
    t.addRule();
    t.addRow({"totals", std::to_string(tLoops), std::to_string(tNests),
              std::to_string(pct(tOrig, tNests)),
              std::to_string(pct(tPerm, tNests)),
              std::to_string(pct(tFail, tNests)),
              std::to_string(pct(tIOrig, tNests)),
              std::to_string(pct(tIPerm, tNests)),
              std::to_string(pct(tIFail, tNests)), std::to_string(tC),
              std::to_string(tA), std::to_string(tD),
              std::to_string(tR), "", ""});
    std::cout << t.str();

    std::cout << "\npaper totals: 69% orig / 11% perm / 20% fail "
                 "(nests); 74/11/15 (inner); C=229 A=80 D=23 R=52.\n";
    return 0;
}

} // namespace
} // namespace memoria

int
main()
{
    return memoria::benchMain();
}
