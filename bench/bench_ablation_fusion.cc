/**
 * @file
 * Section 5.5 ablation: hit rates with and without loop fusion.
 *
 * The paper measured both variants: fusion improved whole-program hit
 * rates for Hydro2d, Appsp and Erlebacher on the 8K cache (by 0.51%,
 * 0.24% and 0.95%) but hurt Track, Dnasa7 and Wave through added
 * conflict/capacity misses. We run the fusion-heavy corpus programs
 * and the Erlebacher kernel both ways.
 */

#include "common.hh"
#include "suite/corpus.hh"
#include "suite/kernels.hh"

namespace memoria {
namespace {

void
compare(TextTable &t, const std::string &name, const Program &input)
{
    OptimizedProgram with = optimizeProgram(input, paperModel(), true);
    OptimizedProgram without =
        optimizeProgram(input, paperModel(), false);
    HitRates rw = simulateHitRates(with, CacheConfig::i860());
    HitRates ro = simulateHitRates(without, CacheConfig::i860());
    t.addRow({name, std::to_string(with.report.fusion.fused),
              TextTable::num(ro.wholeFinal, 2),
              TextTable::num(rw.wholeFinal, 2),
              TextTable::num(rw.wholeFinal - ro.wholeFinal, 2)});
}

int
benchMain()
{
    banner("Fusion ablation: whole-program hit% on cache2 (8KB)");
    TextTable t({"program", "nests fused", "without fusion",
                 "with fusion", "delta"});

    compare(t, "erlebacher (kernel)", makeErlebacherDistributed(20));
    for (const auto &spec : corpusSpecs()) {
        if (spec.fusionApplied == 0)
            continue;
        compare(t, spec.name, buildCorpusProgram(spec, 32));
    }
    std::cout << t.str();
    std::cout << "\npaper shape: fusion helps most fusion-heavy "
                 "programs by fractions of a percent at whole-program "
                 "scope (hydro2d +0.51, appsp +0.24, erlebacher "
                 "+0.95), and can hurt when fused footprints overflow "
                 "the cache.\n";
    return 0;
}

} // namespace
} // namespace memoria

int
main()
{
    return memoria::benchMain();
}
