/**
 * @file
 * Table 5: data access properties.
 *
 * For the kernels the paper highlights plus the whole corpus, reports
 * the reference-group locality mix — percentage of groups with
 * invariant / unit-stride / no self reuse, group-spatial share, and
 * references per group — for the original, final and ideal program
 * versions, with the LoopCost ratios. Expected shape: transformed
 * programs gain self-spatial (unit) reuse; ideal gains more invariant
 * reuse; refs/group stays small (little group-temporal reuse).
 */

#include "common.hh"
#include "suite/corpus.hh"
#include "suite/kernels.hh"

namespace memoria {
namespace {

void
addRows(TextTable &t, const std::string &name, OptimizedProgram &opt)
{
    auto rowFor = [&](const char *tag, const AccessStats &s,
                      double ratio, double ratioW) {
        t.addRow({name, tag, TextTable::num(s.pctInv(), 0),
                  TextTable::num(s.pctUnit(), 0),
                  TextTable::num(s.pctNone(), 0),
                  TextTable::num(s.pctGroupSpatial(), 0),
                  TextTable::num(s.refsPerInvGroup(), 2),
                  TextTable::num(s.refsPerUnitGroup(), 2),
                  TextTable::num(s.refsPerNoneGroup(), 2),
                  TextTable::num(s.refsPerGroup(), 2),
                  ratio > 0 ? TextTable::num(ratio, 2) : "",
                  ratioW > 0 ? TextTable::num(ratioW, 2) : ""});
    };
    rowFor("original", opt.accessOrig, 0, 0);
    rowFor("final", opt.accessFinal, opt.report.ratioFinal,
           opt.report.ratioFinalWt);
    rowFor("ideal", opt.accessIdeal, opt.report.ratioIdeal,
           opt.report.ratioIdealWt);
    t.addRule();
}

int
benchMain()
{
    banner("Table 5: data access properties");
    TextTable t({"program", "version", "Inv%", "Unit%", "None%",
                 "Group%", "r/Inv", "r/Unit", "r/None", "r/Avg",
                 "ratio avg", "ratio wt"});

    {
        OptimizedProgram opt =
            optimizeProgram(makeVpenta(32), paperModel());
        addRows(t, "vpenta-style", opt);
    }
    {
        OptimizedProgram opt =
            optimizeProgram(makeSimpleHydro(32), paperModel());
        addRows(t, "simple-style", opt);
    }
    {
        OptimizedProgram opt =
            optimizeProgram(makeGmtry(32), paperModel());
        addRows(t, "gmtry-style", opt);
    }
    {
        OptimizedProgram opt = optimizeProgram(
            makeErlebacherDistributed(16), paperModel());
        addRows(t, "erlebacher", opt);
    }

    // Aggregate over the whole corpus ("all programs" row).
    AccessStats allOrig, allFinal, allIdeal;
    double sumRf = 0, sumRi = 0;
    int progs = 0;
    for (const auto &spec : corpusSpecs()) {
        if (spec.nests == 0)
            continue;
        Program p = buildCorpusProgram(spec, 12);
        OptimizedProgram opt = optimizeProgram(p, paperModel());
        allOrig += opt.accessOrig;
        allFinal += opt.accessFinal;
        allIdeal += opt.accessIdeal;
        sumRf += opt.report.ratioFinal;
        sumRi += opt.report.ratioIdeal;
        ++progs;
    }
    OptimizedProgram agg;
    agg.accessOrig = allOrig;
    agg.accessFinal = allFinal;
    agg.accessIdeal = allIdeal;
    agg.report.ratioFinal = sumRf / progs;
    agg.report.ratioIdeal = sumRi / progs;
    agg.report.ratioFinalWt = agg.report.ratioFinal;
    agg.report.ratioIdealWt = agg.report.ratioIdeal;
    addRows(t, "all programs", agg);

    std::cout << t.str();
    std::cout << "\npaper shape: final versions gain Unit%% over "
                 "original (e.g. arc2d 53 -> 77); ideal shows more "
                 "invariant reuse; group-spatial reuse is rare and "
                 "refs/group stays below ~1.5 on average.\n";
    return 0;
}

} // namespace
} // namespace memoria

int
main()
{
    return memoria::benchMain();
}
