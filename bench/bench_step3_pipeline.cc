/**
 * @file
 * Section 1.1 pipeline ablation: loop reordering (step 1) first, then
 * register-level optimization (step 3: unroll-and-jam + scalar
 * replacement).
 *
 * The paper claims its reordering "improves the effectiveness of
 * optimizations performed in the latter two steps" [Car92]. Measured
 * here: scalar replacement on the original order versus after memory
 * ordering versus after memory ordering + unroll-and-jam. Expected
 * shape: each stage removes more memory traffic, and the cache-aware
 * reordering dominates the cycle count.
 */

#include "common.hh"
#include "dependence/graph.hh"
#include "interp/interp.hh"
#include "ir/walk.hh"
#include "suite/kernels.hh"
#include "transform/compound.hh"
#include "transform/scalar_replace.hh"
#include "transform/unroll_jam.hh"

namespace memoria {
namespace {

void
report(TextTable &t, const std::string &name, Program &p,
       const CacheConfig &cfg)
{
    RunResult r = runWithCache(p, cfg);
    t.addRow({name, std::to_string(r.exec.memRefs),
              std::to_string(r.cache.misses),
              TextTable::num(r.cycles, 0)});
}

int
benchMain()
{
    const int64_t n = 64;
    CacheConfig cfg = CacheConfig::i860();

    banner("Step-1 / step-3 pipeline on matmul (IKJ input, N = 64)");
    TextTable t({"pipeline", "memory refs", "misses", "cycles"});

    {
        Program p = makeMatmul("IKJ", n);
        report(t, "original (IKJ)", p, cfg);
    }
    {
        Program p = makeMatmul("IKJ", n);
        scalarReplace(p);
        report(t, "scalar replacement only", p, cfg);
    }
    {
        Program p = makeMatmul("IKJ", n);
        compoundTransform(p, paperModel());
        report(t, "memory order (JKI)", p, cfg);
    }
    {
        Program p = makeMatmul("IKJ", n);
        compoundTransform(p, paperModel());
        scalarReplace(p);
        report(t, "memory order + scalar repl", p, cfg);
    }
    {
        Program p = makeMatmul("IKJ", n);
        compoundTransform(p, paperModel());
        DependenceGraph g(p, collectStmts(p));
        unrollAndJam(p, p.body[0].get(), 4, g.edges());
        scalarReplace(p);
        report(t, "memory order + U&J(4) + SR", p, cfg);
    }
    std::cout << t.str();
    std::cout << "\nexpected shape: reordering first is worth far more "
                 "than register promotion alone, and promotion removes "
                 "more traffic after reordering (the invariant "
                 "reference B(K,J) only exists once I is innermost) — "
                 "the Section 1.1 ordering of the framework.\n";
    return 0;
}

} // namespace
} // namespace memoria

int
main()
{
    return memoria::benchMain();
}
