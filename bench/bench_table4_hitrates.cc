/**
 * @file
 * Table 4: simulated cache hit rates (cold misses excluded).
 *
 * For every corpus program: hit rates of the optimized procedures and
 * the whole program, original vs final, on cache1 (RS/6000: 64KB 4-way
 * 128B) and cache2 (i860: 8KB 2-way 32B). Expected shape: whole-program
 * rates are high to begin with (small data sets); improvements are
 * larger inside the optimized procedures and on the smaller cache.
 */

#include "common.hh"
#include "suite/corpus.hh"

namespace memoria {
namespace {

int
benchMain()
{
    banner("Table 4: simulated hit rates, cold misses excluded");
    TextTable t({"program", "c1 opt orig", "c1 opt final",
                 "c2 opt orig", "c2 opt final", "c1 whole orig",
                 "c1 whole final", "c2 whole orig", "c2 whole final"});

    CacheConfig c1 = CacheConfig::rs6000();
    CacheConfig c2 = CacheConfig::i860();

    std::string group;
    for (const auto &spec : corpusSpecs()) {
        if (spec.nests == 0)
            continue;
        if (spec.group != group) {
            group = spec.group;
            t.addRule();
        }
        Program p = buildCorpusProgram(spec, 32);
        OptimizedProgram opt = optimizeProgram(p, paperModel());
        HitRates r1 = simulateHitRates(opt, c1);
        HitRates r2 = simulateHitRates(opt, c2);
        t.addRow({spec.name, TextTable::num(r1.optOrig, 1),
                  TextTable::num(r1.optFinal, 1),
                  TextTable::num(r2.optOrig, 1),
                  TextTable::num(r2.optFinal, 1),
                  TextTable::num(r1.wholeOrig, 2),
                  TextTable::num(r1.wholeFinal, 2),
                  TextTable::num(r2.wholeOrig, 2),
                  TextTable::num(r2.wholeFinal, 2)});
    }
    std::cout << t.str();
    std::cout << "\npaper shape: whole-program rates mostly high and "
                 "barely moved on the 64KB cache; the 8KB cache and "
                 "the optimized procedures show the real gains (e.g. "
                 "arc2d 68.3 -> 91.9 on cache2).\n";
    return 0;
}

} // namespace
} // namespace memoria

int
main()
{
    return memoria::benchMain();
}
