/**
 * @file
 * Table 4: simulated cache hit rates (cold misses excluded).
 *
 * For every corpus program: hit rates of the optimized procedures and
 * the whole program, original vs final, on cache1 (RS/6000: 64KB 4-way
 * 128B) and cache2 (i860: 8KB 2-way 32B). Expected shape: whole-program
 * rates are high to begin with (small data sets); improvements are
 * larger inside the optimized procedures and on the smaller cache.
 */

#include <utility>
#include <vector>

#include "common.hh"
#include "suite/corpus.hh"

namespace memoria {
namespace {

int
benchMain()
{
    banner("Table 4: simulated hit rates, cold misses excluded");
    TextTable t({"program", "c1 opt orig", "c1 opt final",
                 "c2 opt orig", "c2 opt final", "c1 whole orig",
                 "c1 whole final", "c2 whole orig", "c2 whole final"});

    CacheConfig c1 = CacheConfig::rs6000();
    CacheConfig c2 = CacheConfig::i860();

    // Both configurations are fed from one interpreter pass per program
    // version; the first program cross-checks the shared sweep against
    // independent per-config simulations.
    bool checkedSweep = false;
    bool sweepOk = true;

    std::string group;
    for (const auto &spec : corpusSpecs()) {
        if (spec.nests == 0)
            continue;
        if (spec.group != group) {
            group = spec.group;
            t.addRule();
        }
        Program p = buildCorpusProgram(spec, 32);
        OptimizedProgram opt = optimizeProgram(p, paperModel());
        std::vector<HitRates> rates = simulateHitRatesSweep(opt, {c1, c2});
        HitRates r1 = rates[0];
        HitRates r2 = rates[1];
        if (!checkedSweep) {
            checkedSweep = true;
            for (auto pair : {std::make_pair(c1, r1),
                              std::make_pair(c2, r2)}) {
                HitRates direct = simulateHitRates(opt, pair.first);
                sweepOk = sweepOk &&
                          direct.optOrig == pair.second.optOrig &&
                          direct.optFinal == pair.second.optFinal &&
                          direct.wholeOrig == pair.second.wholeOrig &&
                          direct.wholeFinal == pair.second.wholeFinal;
            }
        }
        t.addRow({spec.name, TextTable::num(r1.optOrig, 1),
                  TextTable::num(r1.optFinal, 1),
                  TextTable::num(r2.optOrig, 1),
                  TextTable::num(r2.optFinal, 1),
                  TextTable::num(r1.wholeOrig, 2),
                  TextTable::num(r1.wholeFinal, 2),
                  TextTable::num(r2.wholeOrig, 2),
                  TextTable::num(r2.wholeFinal, 2)});
    }
    std::cout << t.str();
    std::cout << "\npaper shape: whole-program rates mostly high and "
                 "barely moved on the 64KB cache; the 8KB cache and "
                 "the optimized procedures show the real gains (e.g. "
                 "arc2d 68.3 -> 91.9 on cache2).\n";
    std::cout << "shared-sweep vs per-config cross-check: "
              << (sweepOk ? "identical" : "MISMATCH") << "\n";
    if (!sweepOk) {
        std::cout << "FAIL: multi-config sweep disagrees with "
                     "per-config simulation\n";
        return 1;
    }
    return 0;
}

} // namespace
} // namespace memoria

int
main()
{
    return memoria::benchMain();
}
