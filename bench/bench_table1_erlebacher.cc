/**
 * @file
 * Table 1: performance of Erlebacher (hand-coded vs memory-order
 * distributed vs fused).
 *
 * The paper reports seconds on three machines; we report simulated
 * cycles and warm hit rates on both cache configurations. Expected
 * shape: Fused beats both Hand and Distributed (the paper saw up to
 * 17%); Distributed is never better than Hand.
 */

#include "common.hh"
#include "interp/interp.hh"
#include "suite/kernels.hh"
#include "transform/fuse.hh"

namespace memoria {
namespace {

int
benchMain()
{
    const int64_t n = 24;
    Program hand = makeErlebacherHand(n);
    Program dist = makeErlebacherDistributed(n);

    Program fusedP = makeErlebacherDistributed(n);
    FuseStats fs = fuseSiblings(fusedP, fusedP.body, {}, paperModel(),
                                true);

    bool preserved = runChecksum(fusedP) == runChecksum(dist);
    std::cout << "fusion: " << fs.fused << " of " << fs.candidates
              << " candidate nests fused; semantics preserved: "
              << (preserved ? "yes" : "NO") << "\n";

    banner("Table 1: Erlebacher (simulated, N = 24)");
    TextTable t({"version", "cache", "cycles", "hit% (warm)",
                 "vs hand"});
    for (const CacheConfig &cfg :
         {CacheConfig::rs6000(), CacheConfig::i860()}) {
        RunResult rh = runWithCache(hand, cfg);
        for (auto entry : {std::make_pair("Hand Coded", &hand),
                           std::make_pair("Distributed", &dist),
                           std::make_pair("Fused", &fusedP)}) {
            RunResult r = runWithCache(*entry.second, cfg);
            t.addRow({entry.first, cfg.name,
                      TextTable::num(r.cycles, 0),
                      TextTable::num(r.cache.hitRateWarm(), 2),
                      TextTable::num(rh.cycles / r.cycles, 3)});
        }
        t.addRule();
    }
    std::cout << t.str();
    std::cout << "\npaper shape: Fused fastest on every machine (up to "
                 "1.17x vs hand), Distributed slightly behind Hand. On "
                 "the tiny 8KB cache the fused footprint (five arrays "
                 "per iteration) can overflow and lose — exactly the "
                 "conflict/capacity caveat Section 5.5 reports for "
                 "Track, Dnasa7 and Wave.\n";
    if (!preserved) {
        std::cout << "FAIL: fusion changed the semantics of the "
                     "distributed Erlebacher program\n";
        return 1;
    }
    return 0;
}

} // namespace
} // namespace memoria

int
main()
{
    return memoria::benchMain();
}
