/**
 * @file
 * Section 6: tiling guided by the cost model.
 *
 * The paper's criterion: tile to create loop-invariant references with
 * respect to the target loop, because invariant references touch far
 * fewer lines than consecutive or non-consecutive ones. We tile
 * memory-order matmul (JKI) and sweep the tile size; the simulated
 * misses at N=96 should drop well below the untiled version once the
 * working set of a tile fits the cache, then climb back as tiles grow.
 */

#include "common.hh"
#include "dependence/graph.hh"
#include "interp/interp.hh"
#include "ir/printer.hh"
#include "ir/walk.hh"
#include "suite/kernels.hh"
#include "transform/tile.hh"

namespace memoria {
namespace {

int
benchMain()
{
    const int64_t n = 96;
    Program base = makeMatmul("JKI", n);
    RunResult untiled = runWithCache(base, CacheConfig::i860());

    banner("Tiling matmul JKI (N = 96, cache2 = 8KB 2-way 32B)");
    TextTable t({"tile", "legal", "misses", "hit% (warm)",
                 "vs untiled misses"});
    t.addRow({"untiled", "-", std::to_string(untiled.cache.misses),
              TextTable::num(untiled.cache.hitRateWarm(), 2), "1.00"});

    for (int64_t tile : {8, 16, 32, 48, 96}) {
        Program p = makeMatmul("JKI", n);
        DependenceGraph g(p, collectStmts(p));
        bool ok = tilePerfectNest(p, p.body[0].get(), 3, tile,
                                  g.edges());
        if (!ok) {
            t.addRow({std::to_string(tile), "no", "-", "-", "-"});
            continue;
        }
        if (runChecksum(p) != runChecksum(base)) {
            t.addRow({std::to_string(tile), "BROKEN", "-", "-", "-"});
            continue;
        }
        RunResult r = runWithCache(p, CacheConfig::i860());
        t.addRow({std::to_string(tile), "yes",
                  std::to_string(r.cache.misses),
                  TextTable::num(r.cache.hitRateWarm(), 2),
                  TextTable::num(static_cast<double>(r.cache.misses) /
                                     untiled.cache.misses, 2)});
    }
    std::cout << t.str();

    banner("Tiled structure (tile = 16, outer controllers)");
    Program shown = makeMatmul("JKI", 32);
    DependenceGraph g(shown, collectStmts(shown));
    tilePerfectNest(shown, shown.body[0].get(), 3, 16, g.edges());
    std::cout << printProgram(shown);

    std::cout << "\npaper shape (Section 6): tiling captures the "
                 "long-term reuse the inner-loop model cannot, by "
                 "making references loop-invariant with respect to the "
                 "target loop.\n";
    return 0;
}

} // namespace
} // namespace memoria

int
main()
{
    return memoria::benchMain();
}
