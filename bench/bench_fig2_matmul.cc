/**
 * @file
 * Figure 2: matrix multiply.
 *
 * Regenerates (a) the LoopCost table for candidate inner loops I/J/K,
 * (b) the model's ranking of all six loop permutations, and (c) the
 * measured behaviour of each permutation — simulated cycles and misses
 * on the two cache configurations, plus native wall-clock timings of
 * compiled C++ versions of each order.
 *
 * The paper's claim: memory order (JKI) is selected by the model and is
 * the fastest order everywhere; the full ranking predicts relative
 * performance (JKI, KJI, JIK, IJK, KIJ, IKJ from best to worst).
 */

#include <algorithm>
#include <chrono>
#include <vector>

#include "common.hh"
#include "interp/interp.hh"
#include "model/loopcost.hh"
#include "suite/kernels.hh"

namespace memoria {
namespace {

/** Natively compiled matmul with a runtime loop order. */
double
nativeMatmul(const std::string &order, int n)
{
    std::vector<double> a(n * n, 1.5), b(n * n, 2.5), c(n * n, 0.0);
    auto idx = [n](int r, int col) { return r + col * n; };

    auto t0 = std::chrono::steady_clock::now();
    // Loop positions are resolved at run time; the body is identical
    // for every order, so rankings compare memory behaviour only.
    int iv[3];
    int pi = order.find('I'), pj = order.find('J'), pk = order.find('K');
    for (iv[0] = 0; iv[0] < n; ++iv[0])
        for (iv[1] = 0; iv[1] < n; ++iv[1])
            for (iv[2] = 0; iv[2] < n; ++iv[2]) {
                int i = iv[pi], j = iv[pj], k = iv[pk];
                c[idx(i, j)] += a[idx(i, k)] * b[idx(k, j)];
            }
    auto t1 = std::chrono::steady_clock::now();
    volatile double sink = c[idx(n / 2, n / 2)];
    (void)sink;
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

} // namespace

int
benchMain()
{
    banner("Figure 2: matrix multiply — LoopCost (cls = 4)");
    Program model = makeMatmul("IJK", 512);
    NestAnalysis na(model, model.body[0].get(), paperModel());
    TextTable costs({"candidate inner loop", "LoopCost", "at n=512"});
    for (const char *name : {"J", "K", "I"}) {
        for (Node *l : na.loops()) {
            if (model.varName(l->var) != name)
                continue;
            Poly c = na.loopCost(l);
            costs.addRow({name, c.str(),
                          TextTable::num(c.eval(512), 0)});
        }
    }
    std::cout << costs.str();
    std::string memOrder;
    for (Node *l : na.memoryOrder())
        memOrder += model.varName(l->var);
    std::cout << "\nmemory order: " << memOrder << " (paper: JKI)\n";

    const std::vector<std::string> orders = {"JKI", "KJI", "JIK",
                                             "IJK", "KIJ", "IKJ"};

    banner("Ranking all six permutations (model vs simulation)");
    TextTable rank({"order", "LoopCost(inner) n=512", "sim cycles N=64",
                    "cache1 misses", "cache2 misses",
                    "native ms N=300", "native ms N=512"});
    std::vector<double> simCycles;
    for (const auto &order : orders) {
        Program p = makeMatmul(order, 512);
        NestAnalysis pa(p, p.body[0].get(), paperModel());
        auto chain = perfectChain(p.body[0].get());
        Poly inner = pa.loopCost(chain.back());

        Program small = makeMatmul(order, 64);
        RunResult r1 = runWithCache(small, CacheConfig::rs6000());
        RunResult r2 = runWithCache(small, CacheConfig::i860());
        simCycles.push_back(r2.cycles);

        double ms300 = nativeMatmul(order, 300);
        double ms512 = nativeMatmul(order, 512);
        rank.addRow({order, TextTable::num(inner.eval(512), 0),
                     TextTable::num(r2.cycles, 0),
                     std::to_string(r1.cache.misses),
                     std::to_string(r2.cache.misses),
                     TextTable::num(ms300, 1),
                     TextTable::num(ms512, 1)});
    }
    std::cout << rank.str();

    bool monotone = std::is_sorted(simCycles.begin(), simCycles.end());
    std::cout << "\nmodel ranking matches simulated-cycle ranking: "
              << (monotone ? "yes" : "approximately (see table)")
              << "\n";
    if (memOrder != "JKI") {
        std::cout << "FAIL: memory order is " << memOrder
                  << ", paper expects JKI\n";
        return 1;
    }
    return 0;
}

} // namespace memoria

int
main()
{
    return memoria::benchMain();
}
