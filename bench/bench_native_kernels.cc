/**
 * @file
 * Native hardware validation with google-benchmark.
 *
 * Times hand-compiled C++ versions of the kernels whose orderings the
 * model ranks: matmul in its best (JKI) and worst (IKJ) orders, and
 * Cholesky in KIJ vs KJI form. On real hardware the memory-order
 * variants must win, mirroring the paper's Figure 2 and Figure 7
 * measurements on Sparc2 / i860 / RS6000.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

namespace {

constexpr int kN = 256;

void
BM_MatmulJKI(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    std::vector<double> a(n * n, 1.5), b(n * n, 2.5), c(n * n, 0.0);
    for (auto _ : state) {
        for (int j = 0; j < n; ++j)
            for (int k = 0; k < n; ++k)
                for (int i = 0; i < n; ++i)
                    c[i + j * n] += a[i + k * n] * b[k + j * n];
        benchmark::DoNotOptimize(c.data());
        benchmark::ClobberMemory();
    }
}

void
BM_MatmulIKJ(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    std::vector<double> a(n * n, 1.5), b(n * n, 2.5), c(n * n, 0.0);
    for (auto _ : state) {
        for (int i = 0; i < n; ++i)
            for (int k = 0; k < n; ++k)
                for (int j = 0; j < n; ++j)
                    c[i + j * n] += a[i + k * n] * b[k + j * n];
        benchmark::DoNotOptimize(c.data());
        benchmark::ClobberMemory();
    }
}

void
initSpd(std::vector<double> &a, int n)
{
    for (int x = 0; x < n; ++x)
        for (int y = 0; y < n; ++y)
            a[x + y * n] = (x == y) ? n + 1.0 : 0.5;
}

void
BM_CholeskyKIJ(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    std::vector<double> a(n * n);
    for (auto _ : state) {
        state.PauseTiming();
        initSpd(a, n);
        state.ResumeTiming();
        for (int k = 0; k < n; ++k) {
            a[k + k * n] = std::sqrt(a[k + k * n]);
            for (int i = k + 1; i < n; ++i) {
                a[i + k * n] /= a[k + k * n];
                for (int j = k + 1; j <= i; ++j)
                    a[i + j * n] -= a[i + k * n] * a[j + k * n];
            }
        }
        benchmark::DoNotOptimize(a.data());
    }
}

void
BM_CholeskyKJI(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    std::vector<double> a(n * n);
    for (auto _ : state) {
        state.PauseTiming();
        initSpd(a, n);
        state.ResumeTiming();
        for (int k = 0; k < n; ++k) {
            a[k + k * n] = std::sqrt(a[k + k * n]);
            for (int i = k + 1; i < n; ++i)
                a[i + k * n] /= a[k + k * n];
            for (int j = k + 1; j < n; ++j)
                for (int i = j; i < n; ++i)
                    a[i + j * n] -= a[i + k * n] * a[j + k * n];
        }
        benchmark::DoNotOptimize(a.data());
    }
}

BENCHMARK(BM_MatmulJKI)->Arg(kN)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MatmulIKJ)->Arg(kN)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CholeskyKIJ)->Arg(kN)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CholeskyKJI)->Arg(kN)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
