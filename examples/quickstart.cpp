/**
 * @file
 * Quickstart: build a loop nest, ask the cost model for memory order,
 * run the Compound optimizer, and verify the result.
 *
 *   $ ./examples/quickstart
 *
 * This walks the full public API surface in ~60 lines: the builder DSL,
 * NestAnalysis (RefGroup/LoopCost/memory order), compoundTransform, the
 * pretty printer, the interpreter and the cache simulator.
 */

#include <iostream>

#include "driver/memoria.hh"
#include "ir/builder.hh"
#include "ir/printer.hh"
#include "model/loopcost.hh"

using namespace memoria;

int
main()
{
    // Matrix multiply written in the textbook (cache-hostile) order.
    ProgramBuilder b("quickstart");
    Var n = b.param("N", 128);
    Arr a = b.array("A", {n, n});
    Arr bm = b.array("B", {n, n});
    Arr c = b.array("C", {n, n});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");
    Var k = b.loopVar("K");
    b.add(b.loop(i, 1, n,
                 b.loop(k, 1, n,
                        b.loop(j, 1, n,
                               b.assign(c(i, j),
                                        c(i, j) + a(i, k) * bm(k, j))))));
    Program prog = b.finish();

    std::cout << "--- original ---\n" << printProgram(prog);

    // Ask the cost model which loop belongs innermost.
    ModelParams params;
    params.lineBytes = 32;  // 4 doubles per line, as in the paper
    NestAnalysis na(prog, prog.body[0].get(), params);
    std::cout << "\nLoopCost (cache lines touched with each loop "
                 "innermost):\n";
    for (Node *l : na.loops()) {
        std::cout << "  " << prog.varName(l->var) << ": "
                  << na.loopCost(l).str() << "\n";
    }
    std::cout << "memory order: ";
    for (Node *l : na.memoryOrder())
        std::cout << prog.varName(l->var);
    std::cout << "\n";

    // Optimize and verify: same results, fewer misses.
    OptimizedProgram opt = optimizeProgram(prog, params);
    std::cout << "\n--- transformed ---\n"
              << printProgram(opt.transformed);

    std::cout << "semantics preserved: "
              << (runChecksum(opt.original) ==
                          runChecksum(opt.transformed)
                      ? "yes"
                      : "NO")
              << "\n";

    HitRates rates = simulateHitRates(opt, CacheConfig::i860());
    Performance perf = simulatePerformance(opt, CacheConfig::i860());
    std::cout << "hit rate (8KB cache, warm): "
              << rates.wholeOrig << "% -> " << rates.wholeFinal
              << "%\nsimulated speedup: " << perf.speedup() << "x\n";
    return 0;
}
