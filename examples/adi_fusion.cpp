/**
 * @file
 * The Figure 3 story: Fortran 90 array syntax scalarizes into loops
 * with poor locality; fusion plus interchange repairs it.
 *
 * Builds the scalarized ADI fragment, shows the cost model's fusion
 * profitability test (Section 4.3.1), lets Compound fuse and
 * interchange, and compares cache behaviour before and after.
 */

#include <iostream>

#include "interp/interp.hh"
#include "ir/printer.hh"
#include "model/loopcost.hh"
#include "suite/kernels.hh"
#include "transform/compound.hh"
#include "transform/fuse.hh"

using namespace memoria;

int
main()
{
    ModelParams params;
    params.lineBytes = 32;

    Program prog = makeAdiScalarized(96);
    std::cout << "--- scalarized Fortran 90 (Figure 3b) ---\n"
              << printProgram(prog);

    // The profitability test the Fuse algorithm runs (Section 4.3.1).
    Node *iLoop = prog.body[0].get();
    Node *k1 = iLoop->body[0].get();
    Node *k2 = iLoop->body[1].get();
    std::cout << "\nfusing the two K loops is "
              << (fusionProfitable(prog, *k1, *k2, {iLoop}, params)
                      ? "profitable"
                      : "not profitable")
              << " by the cost model (paper: 5n^2 -> 3n^2)\n";

    uint64_t before = runChecksum(prog);
    RunResult r0 = runWithCache(prog, CacheConfig::rs6000());

    compoundTransform(prog, params);
    std::cout << "\n--- after Compound (fuse + interchange, Figure 3c) "
                 "---\n"
              << printProgram(prog);

    RunResult r1 = runWithCache(prog, CacheConfig::rs6000());
    std::cout << "semantics preserved: "
              << (runChecksum(prog) == before ? "yes" : "NO") << "\n"
              << "misses (64KB cache): " << r0.cache.misses << " -> "
              << r1.cache.misses << "\n"
              << "hit rate: " << r0.cache.hitRateWarm() << "% -> "
              << r1.cache.hitRateWarm() << "%\n";
    return 0;
}
