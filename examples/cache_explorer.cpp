/**
 * @file
 * Cache explorer: sweep cache geometries over a kernel, before and
 * after optimization.
 *
 * Useful for seeing where the paper's effect lives: with caches much
 * larger than the working set both versions hit ~100%; as the cache
 * shrinks, the memory-order version keeps its hit rate much longer.
 *
 * Usage: cache_explorer [N]   (default 64)
 */

#include <cstdlib>
#include <iostream>

#include "driver/memoria.hh"
#include "suite/kernels.hh"
#include "support/table.hh"

using namespace memoria;

int
main(int argc, char **argv)
{
    int64_t n = argc > 1 ? std::atoll(argv[1]) : 64;

    ModelParams params;
    params.lineBytes = 32;
    OptimizedProgram opt =
        optimizeProgram(makeMatmul("IKJ", n), params);

    TextTable t({"cache", "assoc", "line", "orig hit%", "opt hit%",
                 "orig misses", "opt misses"});
    for (int64_t kb : {2, 8, 32, 64, 256}) {
        for (int assoc : {1, 2, 4}) {
            CacheConfig cfg;
            cfg.name = std::to_string(kb) + "KB";
            cfg.sizeBytes = kb * 1024;
            cfg.associativity = assoc;
            cfg.lineBytes = 32;
            RunResult orig = runWithCache(opt.original, cfg);
            RunResult fin = runWithCache(opt.transformed, cfg);
            t.addRow({cfg.name, std::to_string(assoc), "32",
                      TextTable::num(orig.cache.hitRateWarm(), 2),
                      TextTable::num(fin.cache.hitRateWarm(), 2),
                      std::to_string(orig.cache.misses),
                      std::to_string(fin.cache.misses)});
        }
        t.addRule();
    }
    std::cout << "matmul IKJ vs optimized (JKI), N = " << n << "\n\n"
              << t.str();
    return 0;
}
