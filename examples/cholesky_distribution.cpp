/**
 * @file
 * The Figure 7 story: Cholesky factorization cannot be permuted as a
 * whole (it is an imperfect, triangular nest), but distributing the I
 * loop isolates the update statement, whose triangular (I, J) pair then
 * interchanges into memory order KJI.
 *
 * Shows each intermediate decision: the LoopCost ranking, why plain
 * permutation fails, the distribution partitions, and the final nest.
 */

#include <iostream>

#include "interp/interp.hh"
#include "ir/printer.hh"
#include "model/loopcost.hh"
#include "suite/kernels.hh"
#include "transform/compound.hh"
#include "transform/permute.hh"

using namespace memoria;

int
main()
{
    ModelParams params;
    params.lineBytes = 32;

    Program prog = makeCholeskyKIJ(96);
    std::cout << "--- Cholesky, KIJ form (Figure 7a) ---\n"
              << printProgram(prog);

    NestAnalysis na(prog, prog.body[0].get(), params);
    std::cout << "\nLoopCost ranking:\n";
    for (Node *l : na.memoryOrder()) {
        std::cout << "  " << prog.varName(l->var) << ": "
                  << na.loopCost(l).str() << "\n";
    }

    PermuteResult pr = permuteToMemoryOrder(na, prog.body[0].get());
    std::cout << "\nplain permutation reaches memory order: "
              << (pr.achievedMemoryOrder ? "yes" : "no")
              << " (the nest is imperfect; Compound must distribute)\n";

    uint64_t before = runChecksum(prog);
    RunResult r0 = runWithCache(prog, CacheConfig::i860());

    CompoundResult cr = compoundTransform(prog, params);
    std::cout << "\n--- after Compound (distribute + triangular "
                 "interchange, Figure 7b) ---\n"
              << printProgram(prog);
    std::cout << "distributions: " << cr.distributions
              << ", nests created: " << cr.resultingNests << "\n";

    RunResult r1 = runWithCache(prog, CacheConfig::i860());
    std::cout << "semantics preserved: "
              << (runChecksum(prog) == before ? "yes" : "NO") << "\n"
              << "misses (8KB cache): " << r0.cache.misses << " -> "
              << r1.cache.misses << "\n";
    return 0;
}
