/**
 * @file
 * Bring your own kernel: write any loop nest in the builder DSL and
 * let the library analyze and optimize it.
 *
 * The kernel here is a banded triangular solve with a scaling
 * statement — an imperfect nest with a triangular inner loop, i.e. the
 * hard case that exercises distribution and triangular interchange.
 */

#include <iostream>

#include "driver/memoria.hh"
#include "ir/builder.hh"
#include "ir/printer.hh"
#include "model/loopcost.hh"

using namespace memoria;

int
main()
{
    ProgramBuilder b("custom");
    Var n = b.param("N", 96);
    Arr l = b.array("L", {n, n});
    Arr x = b.array("X", {n});
    Arr d = b.array("D", {n});
    Var i = b.loopVar("I");
    Var j = b.loopVar("J");

    // forward substitution, row-oriented (inner J sweeps a row of L,
    // which is the wrong direction for column-major storage):
    //   DO I = 2, N
    //     X(I) = X(I) / D(I)
    //     DO J = 1, I-1
    //       X(I) = X(I) - L(I,J) * X(J)
    std::vector<NodePtr> body;
    body.push_back(b.assign(x(i), Val(x(i)) / d(i)));
    body.push_back(b.loop(j, 1, Ix(i) - 1,
                          b.assign(x(i), x(i) - l(i, j) * x(j))));
    b.add(b.loop(i, 2, n, std::move(body)));
    Program prog = b.finish();

    std::cout << "--- input ---\n" << printProgram(prog);

    ModelParams params;
    params.lineBytes = 32;

    NestAnalysis na(prog, prog.body[0].get(), params);
    std::cout << "\nreference groups w.r.t. the inner J loop:\n";
    Node *jLoop = na.loops().back();
    for (const auto &g : na.groups(jLoop)) {
        const auto &rep = na.refs()[g.representative];
        std::cout << "  group of " << g.members.size()
                  << " (class: " << reuseName(na.classify(rep, jLoop))
                  << ")\n";
    }

    OptimizedProgram opt = optimizeProgram(prog, params);
    std::cout << "\n--- optimized ---\n"
              << printProgram(opt.transformed);
    std::cout << "semantics preserved: "
              << (runChecksum(opt.original) ==
                          runChecksum(opt.transformed)
                      ? "yes"
                      : "NO")
              << "\n";
    Performance perf = simulatePerformance(opt, CacheConfig::i860());
    std::cout << "simulated speedup (8KB cache): " << perf.speedup()
              << "x\n";
    return 0;
}
