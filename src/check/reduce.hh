/**
 * @file
 * Delta-debugging program reducer (ddmin).
 *
 * Given a program and a *failure predicate* — "does this program still
 * exhibit the failure?" — the reducer searches for a small sub-program
 * that the predicate still accepts, in the spirit of Zeller &
 * Hildebrandt's ddmin. Every contained failure in the toolkit (a
 * verify rollback, a contained panic, a timeout, a fuzz disagreement)
 * can be turned into a minimized, replayable reproducer instead of a
 * log line; harness/incident.hh packages the result as an incident
 * bundle.
 *
 * Reduction passes, run to a global fixpoint:
 *
 *  1. **ddmin over statements** — remove chunks of statements (halving
 *     granularity, complement-first, exactly ddmin), pruning loops left
 *     empty;
 *  2. **loop unwrapping** — replace a loop by its body with the loop
 *     variable substituted by the lower bound (one iteration), which
 *     shrinks depth without touching statements;
 *  3. **subscript simplification** — rewrite opaque subscripts to the
 *     constant 1 and drop constant shifts from affine subscripts;
 *  4. **RHS simplification** — replace statement right-hand sides by
 *     the constant 1.
 *
 * A final single-statement pass proves 1-minimality with respect to
 * statement removal (removing any one remaining statement makes the
 * predicate reject). The search is fully deterministic: same program,
 * same predicate behavior, same result.
 *
 * The predicate must be *pure* from the reducer's point of view (no
 * lasting side effects) and should contain its own failures; anything
 * it throws is treated as "predicate rejected". Budgets bound the
 * search: a deadline and a predicate-evaluation cap, whichever trips
 * first, stop the reduction at the best program found so far (which is
 * always one the predicate accepted).
 */

#ifndef MEMORIA_CHECK_REDUCE_HH
#define MEMORIA_CHECK_REDUCE_HH

#include <cstdint>
#include <functional>

#include "ir/program.hh"

namespace memoria {

/** "Does this candidate still exhibit the failure?" */
using FailurePredicate = std::function<bool(const Program &)>;

/** Search limits and pass toggles. */
struct ReduceOptions
{
    /** Wall-clock limit for the whole reduction (0 = unlimited). */
    int64_t deadlineMs = 10000;

    /** Maximum predicate evaluations (0 = unlimited). */
    int maxChecks = 2000;

    bool unwrapLoops = true;
    bool simplifySubscripts = true;
    bool simplifyRhs = true;
};

/** What the reduction achieved. */
struct ReduceResult
{
    /** Smallest program found that still fails. */
    Program program;

    int checks = 0;     ///< predicate evaluations spent
    int rounds = 0;     ///< fixpoint rounds completed

    size_t origNodes = 0;   ///< IR nodes (loops + statements) before
    size_t finalNodes = 0;  ///< ... and after

    /** The input itself was accepted by the predicate; when false,
     *  nothing was reduced (flaky or state-dependent failure). */
    bool inputFailed = false;

    /** Single-statement minimality proven (pass completed clean). */
    bool oneMinimal = false;

    /** A budget tripped before the search finished. */
    bool budgetExhausted = false;
};

/** Loops + statements in the program (the validator's node metric). */
size_t countIrNodes(const Program &prog);

/**
 * Minimize `input` with respect to `pred`. `pred(input)` must be true;
 * if it is not, the input is returned unchanged with checks == 1.
 */
ReduceResult reduceProgram(const Program &input,
                           const FailurePredicate &pred,
                           const ReduceOptions &opts = {});

} // namespace memoria

#endif // MEMORIA_CHECK_REDUCE_HH
