#include "check/equiv.hh"

#include <cstring>
#include <sstream>

#include "harness/budget.hh"
#include "harness/fault.hh"
#include "interp/interp.hh"
#include "support/stats.hh"
#include "support/trace.hh"

namespace memoria {

namespace {

/** Diag action reports "not equivalent", exercising the rollback path. */
harness::FaultSite gEquivFault("check.equiv", /*supportsDiag=*/true);

/** Parameters the cost model treats as the abstract size n; fixed
 *  small parameters (constant paramPoly) are semantic and keep their
 *  values. */
bool
isSymbolicParam(const VarInfo &v)
{
    return v.kind == VarKind::Param && !v.paramPoly.isConstant();
}

/** One interpreted execution, or the fault that stopped it. */
struct RunOutcome
{
    bool ok = false;
    Diag diag;
    Interpreter *interp = nullptr;
};

/** Bind size/seed and run. `interp` must outlive the outcome. */
RunOutcome
runOne(const Program &prog, Interpreter &interp, int64_t size,
       uint64_t seed)
{
    RunOutcome out;
    out.interp = &interp;
    if (size > 0) {
        for (const auto &v : prog.vars) {
            if (!isSymbolicParam(v))
                continue;
            Status st = interp.setParam(v.name, size);
            if (!st.ok()) {
                out.diag = st.diag();
                return out;
            }
        }
    }
    interp.setInitSeed(seed);
    Status st = interp.run(nullptr);
    if (!st.ok()) {
        out.diag = st.diag();
        return out;
    }
    out.ok = true;
    return out;
}

/** Index of the array named `name`, or -1. */
ArrayId
findArray(const Program &prog, const std::string &name)
{
    for (size_t a = 0; a < prog.arrays.size(); ++a)
        if (prog.arrays[a].name == name)
            return static_cast<ArrayId>(a);
    return -1;
}

} // namespace

EquivResult
checkEquivalence(const Program &reference, const Program &candidate,
                 const EquivOptions &opts)
{
    static obs::Counter &cChecks = obs::counter("check.equiv.checks");
    static obs::Counter &cRuns = obs::counter("check.equiv.runs");
    static obs::Counter &cFail = obs::counter("check.equiv.failures");
    ++cChecks;

    EquivResult result;
    if (std::optional<Diag> injected = gEquivFault.fire()) {
        result.equivalent = false;
        result.detail = injected->str();
        ++cFail;
        return result;
    }
    for (int64_t size : opts.sizes) {
        for (uint64_t seed : opts.seeds) {
            harness::poll("check.equiv.round");
            Interpreter refInterp(reference);
            RunOutcome ref = runOne(reference, refInterp, size, seed);
            if (!ref.ok) {
                // The reference itself faults at this trial point:
                // inconclusive, not a miscompile.
                ++result.skippedRuns;
                continue;
            }

            Interpreter candInterp(candidate);
            RunOutcome cand = runOne(candidate, candInterp, size, seed);
            ++cRuns;
            if (!cand.ok) {
                result.equivalent = false;
                std::ostringstream os;
                os << "candidate '" << candidate.name
                   << "' faults where the reference runs (size="
                   << size << ", seed=" << seed
                   << "): " << cand.diag.str();
                result.detail = os.str();
                break;
            }

            ++result.comparedRuns;
            for (size_t a = 0;
                 result.equivalent && a < reference.arrays.size();
                 ++a) {
                const ArrayDecl &decl = reference.arrays[a];
                if (decl.isRegister)
                    continue;  // compiler temporaries, not outputs
                ArrayId ca = findArray(candidate, decl.name);
                std::ostringstream os;
                if (ca < 0) {
                    result.equivalent = false;
                    os << "array '" << decl.name
                       << "' missing from candidate '" << candidate.name
                       << "'";
                    result.detail = os.str();
                    break;
                }
                const auto &rv =
                    refInterp.arrayData(static_cast<ArrayId>(a));
                const auto &cv = candInterp.arrayData(ca);
                if (rv.size() != cv.size()) {
                    result.equivalent = false;
                    os << "array '" << decl.name << "' has "
                       << rv.size() << " elements in the reference, "
                       << cv.size() << " in the candidate";
                    result.detail = os.str();
                    break;
                }
                if (rv.empty() ||
                    std::memcmp(rv.data(), cv.data(),
                                rv.size() * sizeof(double)) == 0)
                    continue;
                for (size_t i = 0; i < rv.size(); ++i) {
                    if (std::memcmp(&rv[i], &cv[i], sizeof(double)) ==
                        0)
                        continue;
                    result.equivalent = false;
                    os << "array '" << decl.name << "' diverges at "
                       << "element " << i << " (size=" << size
                       << ", seed=" << seed << "): " << rv[i]
                       << " != " << cv[i];
                    result.detail = os.str();
                    break;
                }
            }
            if (!result.equivalent)
                break;
        }
        if (!result.equivalent)
            break;
        if (opts.stopAfterConclusiveSize && result.comparedRuns > 0)
            break;
    }

    if (!result.equivalent) {
        ++cFail;
        if (obs::tracingEnabled())
            obs::traceEvent("check", "equiv_failed",
                            {{"reference", reference.name},
                             {"candidate", candidate.name},
                             {"detail", result.detail}});
    }
    return result;
}

} // namespace memoria
