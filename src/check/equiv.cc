#include "check/equiv.hh"

#include <atomic>
#include <cstring>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

#include "harness/budget.hh"
#include "harness/fault.hh"
#include "interp/interp.hh"
#include "support/stats.hh"
#include "support/trace.hh"

namespace memoria {

namespace {

/** Diag action reports "not equivalent", exercising the rollback path. */
harness::FaultSite gEquivFault("check.equiv", /*supportsDiag=*/true);

/** Parameters the cost model treats as the abstract size n; fixed
 *  small parameters (constant paramPoly) are semantic and keep their
 *  values. */
bool
isSymbolicParam(const VarInfo &v)
{
    return v.kind == VarKind::Param && !v.paramPoly.isConstant();
}

/** One interpreted execution, or the fault that stopped it. */
struct RunOutcome
{
    bool ok = false;
    Diag diag;
    Interpreter *interp = nullptr;
};

/** Bind size/seed and run. `interp` must outlive the outcome. */
RunOutcome
runOne(const Program &prog, Interpreter &interp, int64_t size,
       uint64_t seed)
{
    RunOutcome out;
    out.interp = &interp;
    if (size > 0) {
        for (const auto &v : prog.vars) {
            if (!isSymbolicParam(v))
                continue;
            Status st = interp.setParam(v.name, size);
            if (!st.ok()) {
                out.diag = st.diag();
                return out;
            }
        }
    }
    interp.setInitSeed(seed);
    Status st = interp.run(nullptr);
    if (!st.ok()) {
        out.diag = st.diag();
        return out;
    }
    out.ok = true;
    return out;
}

/** Index of the array named `name`, or -1. */
ArrayId
findArray(const Program &prog, const std::string &name)
{
    for (size_t a = 0; a < prog.arrays.size(); ++a)
        if (prog.arrays[a].name == name)
            return static_cast<ArrayId>(a);
    return -1;
}

/** Mark the arrays a program's statements write to. */
void
markWrites(const Node &n, std::vector<uint8_t> &written)
{
    if (n.isStmt()) {
        ArrayId a = n.stmt.write.array;
        if (a >= 0 && static_cast<size_t>(a) < written.size())
            written[a] = 1;
        return;
    }
    for (const NodePtr &kid : n.body)
        markWrites(*kid, written);
}

} // namespace

EquivResult
checkEquivalence(const Program &reference, const Program &candidate,
                 const EquivOptions &opts)
{
    static obs::Counter &cChecks = obs::counter("check.equiv.checks");
    static obs::Counter &cRuns = obs::counter("check.equiv.runs");
    static obs::Counter &cFail = obs::counter("check.equiv.failures");
    ++cChecks;

    EquivResult result;
    if (std::optional<Diag> injected = gEquivFault.fire()) {
        result.equivalent = false;
        result.detail = injected->str();
        ++cFail;
        return result;
    }
    // Candidate arrays by name, resolved once instead of a linear
    // name scan per array per round (corpus programs carry hundreds
    // of declarations).
    std::vector<ArrayId> candIdOf(reference.arrays.size(), -1);
    for (size_t a = 0; a < reference.arrays.size(); ++a) {
        // Transforms preserve declaration order, so the overwhelmingly
        // common case is the identity mapping; only fall back to the
        // name scan when the tables genuinely diverge.
        if (a < candidate.arrays.size() &&
            candidate.arrays[a].name == reference.arrays[a].name)
            candIdOf[a] = static_cast<ArrayId>(a);
        else
            candIdOf[a] = findArray(candidate, reference.arrays[a].name);
    }

    // Contents only need comparing for arrays at least one side
    // writes. Both interpreters fill identical seeded initial data
    // (keyed on array id), so an array neither program stores to —
    // provided it sits at the same id on both sides — is bit-identical
    // by construction and its comparison (and the data fill it would
    // force) is skipped. Id-mismatched arrays keep the full compare.
    std::vector<uint8_t> compare(reference.arrays.size(), 0);
    for (const NodePtr &n : reference.body)
        markWrites(*n, compare);
    {
        std::vector<uint8_t> candWritten(candidate.arrays.size(), 0);
        for (const NodePtr &n : candidate.body)
            markWrites(*n, candWritten);
        for (size_t a = 0; a < reference.arrays.size(); ++a) {
            ArrayId ca = candIdOf[a];
            if (ca >= 0 && candWritten[ca])
                compare[a] = 1;
            if (ca >= 0 && static_cast<size_t>(ca) != a)
                compare[a] = 1;  // different initial contents
        }
    }

    /** Outcome of one (size, seed) round, computed independently —
     *  possibly on a worker thread — and folded in seed order. */
    struct Round
    {
        bool refOk = false;    ///< reference ran (round is conclusive)
        bool compared = false; ///< candidate also ran; arrays compared
        bool equal = true;
        std::string detail;    ///< set when !equal
    };

    // One full round: bind, run both sides, compare array states.
    // Everything it touches is round-local (each round owns its two
    // interpreters), so rounds are freely parallelizable.
    auto runRound = [&](int64_t size, uint64_t seed) -> Round {
        harness::poll("check.equiv.round");
        Round round;
        Interpreter refInterp(reference);
        RunOutcome ref = runOne(reference, refInterp, size, seed);
        if (!ref.ok) {
            // The reference itself faults at this trial point:
            // inconclusive, not a miscompile.
            return round;
        }
        round.refOk = true;

        Interpreter candInterp(candidate);
        RunOutcome cand = runOne(candidate, candInterp, size, seed);
        if (!cand.ok) {
            round.equal = false;
            std::ostringstream os;
            os << "candidate '" << candidate.name
               << "' faults where the reference runs (size=" << size
               << ", seed=" << seed << "): " << cand.diag.str();
            round.detail = os.str();
            return round;
        }

        round.compared = true;
        for (size_t a = 0; round.equal && a < reference.arrays.size();
             ++a) {
            const ArrayDecl &decl = reference.arrays[a];
            if (decl.isRegister)
                continue;  // compiler temporaries, not outputs
            ArrayId ca = candIdOf[a];
            // Diagnostics are built only on mismatch: an ostringstream
            // per array per round dominated the all-equal fast path
            // for corpus-sized symbol tables.
            if (ca < 0) {
                round.equal = false;
                std::ostringstream os;
                os << "array '" << decl.name
                   << "' missing from candidate '" << candidate.name
                   << "'";
                round.detail = os.str();
                break;
            }
            uint64_t relems =
                refInterp.arrayElems(static_cast<ArrayId>(a));
            uint64_t celems = candInterp.arrayElems(ca);
            if (relems != celems) {
                round.equal = false;
                std::ostringstream os;
                os << "array '" << decl.name << "' has " << relems
                   << " elements in the reference, " << celems
                   << " in the candidate";
                round.detail = os.str();
                break;
            }
            if (!compare[a])
                continue;  // written by neither; identical
            const auto &rv =
                refInterp.arrayData(static_cast<ArrayId>(a));
            const auto &cv = candInterp.arrayData(ca);
            if (rv.empty() ||
                std::memcmp(rv.data(), cv.data(),
                            rv.size() * sizeof(double)) == 0)
                continue;
            for (size_t i = 0; i < rv.size(); ++i) {
                if (std::memcmp(&rv[i], &cv[i], sizeof(double)) == 0)
                    continue;
                round.equal = false;
                std::ostringstream os;
                os << "array '" << decl.name << "' diverges at "
                   << "element " << i << " (size=" << size
                   << ", seed=" << seed << "): " << rv[i]
                   << " != " << cv[i];
                round.detail = os.str();
                break;
            }
        }
        return round;
    };

    for (int64_t size : opts.sizes) {
        // Every seed round of a size executes (even after a failing
        // round), so the executed round set — and with it every obs
        // and sim counter — is a function of the programs alone, not
        // of the jobs value or of which round failed first.
        std::vector<Round> rounds(opts.seeds.size());
        int jobs = std::max(
            1, std::min<int>(opts.jobs,
                             static_cast<int>(opts.seeds.size())));
        if (jobs <= 1) {
            for (size_t k = 0; k < opts.seeds.size(); ++k)
                rounds[k] = runRound(size, opts.seeds[k]);
        } else {
            std::atomic<size_t> next{0};
            std::exception_ptr firstError;
            std::mutex errorMu;
            harness::CancelToken *parent = harness::currentToken();
            auto work = [&]() {
                // Workers share the caller's budget, so deadlines and
                // iteration budgets cancel the whole check.
                harness::BudgetScope scope(parent);
                for (;;) {
                    size_t k =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (k >= opts.seeds.size())
                        break;
                    try {
                        rounds[k] = runRound(size, opts.seeds[k]);
                    } catch (...) {
                        std::lock_guard<std::mutex> lock(errorMu);
                        if (!firstError)
                            firstError = std::current_exception();
                        break;
                    }
                }
            };
            std::vector<std::thread> pool;
            for (int j = 1; j < jobs; ++j)
                pool.emplace_back(work);
            work();
            for (std::thread &t : pool)
                t.join();
            if (firstError)
                std::rethrow_exception(firstError);
        }

        // Serial fold in seed order: identical verdicts and details
        // for every jobs value.
        for (const Round &round : rounds) {
            if (!round.refOk) {
                ++result.skippedRuns;
                continue;
            }
            ++cRuns;
            if (round.compared)
                ++result.comparedRuns;
            if (result.equivalent && !round.equal) {
                result.equivalent = false;
                result.detail = round.detail;
            }
        }
        if (!result.equivalent)
            break;
        if (opts.stopAfterConclusiveSize && result.comparedRuns > 0)
            break;
    }

    if (!result.equivalent) {
        ++cFail;
        if (obs::tracingEnabled())
            obs::traceEvent("check", "equiv_failed",
                            {{"reference", reference.name},
                             {"candidate", candidate.name},
                             {"detail", result.detail}});
    }
    return result;
}

} // namespace memoria
