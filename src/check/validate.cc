#include "check/validate.hh"

#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_set>

#include "harness/budget.hh"
#include "harness/fault.hh"

namespace memoria {

namespace {

harness::FaultSite gValidateFault("validate.program",
                                  /*supportsDiag=*/true);

class Validator
{
  public:
    Validator(const Program &prog, const ValidateOptions &opts)
        : prog_(prog), opts_(opts)
    {
    }

    std::vector<Diag>
    run()
    {
        checkSymbols();
        activeVars_.assign(prog_.vars.size(), false);
        for (size_t v = 0; v < prog_.vars.size(); ++v)
            if (prog_.vars[v].kind == VarKind::Param)
                activeVars_[v] = true;
        for (const auto &n : prog_.body)
            checkNode(*n, 0);
        return std::move(diags_);
    }

  private:
    void
    report(const std::string &code, const std::string &message)
    {
        diags_.push_back(Diag::error(code, message));
    }

    bool varInRange(VarId v) const
    {
        return v >= 0 && static_cast<size_t>(v) < prog_.vars.size();
    }

    bool arrayInRange(ArrayId a) const
    {
        return a >= 0 && static_cast<size_t>(a) < prog_.arrays.size();
    }

    // ---- symbol tables -----------------------------------------

    void
    checkSymbols()
    {
        // Views into the (stable) symbol tables; corpus programs carry
        // hundreds of declarations, so no per-name string copies here.
        std::unordered_set<std::string_view> names;
        names.reserve(prog_.vars.size() + prog_.arrays.size());
        for (const auto &v : prog_.vars) {
            if (v.name.empty())
                report("validate.var_name", "variable with empty name");
            else if (!names.insert(v.name).second)
                report("validate.var_name",
                       "duplicate symbol name '" + v.name + "'");
        }
        for (const auto &a : prog_.arrays) {
            if (a.name.empty()) {
                report("validate.array_name", "array with empty name");
            } else if (!names.insert(a.name).second) {
                report("validate.array_name",
                       "duplicate symbol name '" + a.name + "'");
            }
            if (a.elemSize <= 0)
                report("validate.elem_size",
                       "array '" + a.name + "' has element size " +
                           std::to_string(a.elemSize));
            for (const auto &e : a.extents)
                checkParamOnly(e, [&] {
                    return "extent of array '" + a.name + "'";
                });
        }
    }

    /** Extents must be affine over parameters only: they are evaluated
     *  once at allocation, before any loop variable has a value.
     *  `what` is a callable producing the message context — built only
     *  when a diagnostic actually fires, because this runs for every
     *  declaration of every validated program. */
    template <class F>
    void
    checkParamOnly(const AffineExpr &e, F &&what)
    {
        for (const auto &[v, c] : e.terms()) {
            if (!varInRange(v)) {
                report("validate.var_range",
                       what() + " references out-of-range variable id " +
                           std::to_string(v));
            } else if (prog_.vars[v].kind != VarKind::Param) {
                report("validate.extent",
                       what() + " references loop variable '" +
                           prog_.vars[v].name + "'");
            }
        }
    }

    // ---- scoped affine expressions -----------------------------

    /** Every variable of `e` must be a parameter or an active
     *  (enclosing) loop variable. `what` is a lazy message builder,
     *  like checkParamOnly's. */
    template <class F>
    void
    checkScoped(const AffineExpr &e, F &&what)
    {
        for (const auto &[v, c] : e.terms()) {
            if (!varInRange(v)) {
                report("validate.var_range",
                       what() + " references out-of-range variable id " +
                           std::to_string(v));
            } else if (!activeVars_[v]) {
                report("validate.scope",
                       what() + " references variable '" +
                           prog_.vars[v].name +
                           "' outside its defining loop");
            }
        }
    }

    // ---- nodes -------------------------------------------------

    void
    checkNode(const Node &n, int depth)
    {
        if (++nodeCount_ == opts_.maxNodes + 1) {
            report("validate.nodes",
                   "program exceeds node cap of " +
                       std::to_string(opts_.maxNodes));
        }
        if (nodeCount_ > opts_.maxNodes)
            return;  // one cap diagnostic, not millions

        if (n.isStmt()) {
            checkStmt(n.stmt);
            return;
        }
        if (depth >= opts_.maxDepth) {
            if (!depthReported_) {
                depthReported_ = true;
                report("validate.depth",
                       "loop nesting exceeds depth cap of " +
                           std::to_string(opts_.maxDepth));
            }
            return;
        }
        if (!varInRange(n.var)) {
            report("validate.loop_var",
                   "loop with out-of-range variable id " +
                       std::to_string(n.var));
            return;
        }
        const VarInfo &info = prog_.vars[n.var];
        if (info.kind != VarKind::LoopVar)
            report("validate.loop_var", "loop indexed by parameter '" +
                                            info.name + "'");
        if (n.step == 0)
            report("validate.step",
                   "loop over '" + info.name + "' has step 0");
        if (activeVars_[n.var])
            report("validate.loop_var",
                   "loop variable '" + info.name +
                       "' rebound inside its own loop");
        // Bounds are evaluated before the variable is live.
        checkScoped(n.lb, [&] {
            return "lower bound of loop '" + info.name + "'";
        });
        checkScoped(n.ub, [&] {
            return "upper bound of loop '" + info.name + "'";
        });

        bool wasActive = activeVars_[n.var];
        activeVars_[n.var] = true;
        for (const auto &kid : n.body)
            checkNode(*kid, depth + 1);
        activeVars_[n.var] = wasActive;
    }

    // ---- statements and values ---------------------------------

    void
    checkStmt(const Statement &s)
    {
        std::string where = "statement " + std::to_string(s.id);
        if (s.id < 0)
            report("validate.stmt_id", "statement with negative id");
        else if (!stmtIds_.insert(s.id).second)
            report("validate.stmt_id",
                   "duplicate statement id " + std::to_string(s.id));
        checkRef(s.write, where + " write");
        if (!s.rhs)
            report("validate.rhs", where + " has null rhs");
        else
            checkValue(s.rhs, where + " rhs", 0);
    }

    void
    checkRef(const ArrayRef &ref, const std::string &what)
    {
        if (!arrayInRange(ref.array)) {
            report("validate.array_range",
                   what + " references out-of-range array id " +
                       std::to_string(ref.array));
            return;
        }
        const ArrayDecl &decl = prog_.arrays[ref.array];
        if (ref.subs.size() != decl.extents.size()) {
            std::ostringstream os;
            os << what << " uses array '" << decl.name << "' with rank "
               << ref.subs.size() << " (declared "
               << decl.extents.size() << ")";
            report("validate.rank", os.str());
            return;
        }
        for (const auto &sub : ref.subs) {
            if (sub.isAffine())
                checkScoped(sub.affine, [&] {
                    return what + " subscript of '" + decl.name + "'";
                });
            else
                checkValue(sub.opaque,
                           what + " opaque subscript of '" + decl.name +
                               "'",
                           0);
        }
    }

    void
    checkValue(const ValuePtr &v, const std::string &what, int depth)
    {
        if (!v) {
            report("validate.value", what + " contains a null value");
            return;
        }
        if (depth > kMaxValueDepth) {
            if (!valueDepthReported_) {
                valueDepthReported_ = true;
                report("validate.value_depth",
                       what + " exceeds expression depth cap of " +
                           std::to_string(kMaxValueDepth));
            }
            return;
        }
        size_t arity;
        switch (v->op) {
          case ValOp::Const:
            arity = 0;
            break;
          case ValOp::Load:
            arity = 0;
            checkRef(v->load, what + " load");
            break;
          case ValOp::Index:
            arity = 0;
            checkScoped(v->index,
                        [&] { return what + " index expression"; });
            break;
          case ValOp::Neg:
          case ValOp::Sqrt:
            arity = 1;
            break;
          default:
            arity = 2;
            break;
        }
        if (v->kids.size() != arity) {
            std::ostringstream os;
            os << what << " operator has " << v->kids.size()
               << " operands (expected " << arity << ")";
            report("validate.arity", os.str());
        }
        for (const auto &kid : v->kids)
            checkValue(kid, what, depth + 1);
    }

    static constexpr int kMaxValueDepth = 256;

  public:
    /** Nodes visited; feeds the harness IR budget. */
    size_t nodeCount() const { return nodeCount_; }

  private:
    const Program &prog_;
    const ValidateOptions &opts_;
    std::vector<Diag> diags_;
    std::vector<bool> activeVars_;  ///< params + enclosing loop vars
    std::set<int> stmtIds_;
    size_t nodeCount_ = 0;
    bool depthReported_ = false;
    bool valueDepthReported_ = false;
};

} // namespace

std::vector<Diag>
validateProgram(const Program &prog, const ValidateOptions &opts)
{
    std::vector<Diag> diags;
    if (std::optional<Diag> injected = gValidateFault.fire())
        diags.push_back(*injected);
    Validator v(prog, opts);
    std::vector<Diag> found = v.run();
    diags.insert(diags.end(), found.begin(), found.end());
    harness::chargeIrNodes(v.nodeCount(), "validate.program");
    return diags;
}

Status
validateProgramStatus(const Program &prog, const ValidateOptions &opts)
{
    std::vector<Diag> diags = validateProgram(prog, opts);
    if (diags.empty())
        return Status{};
    return Status::err(diags.front());
}

} // namespace memoria
