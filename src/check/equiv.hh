/**
 * @file
 * Differential-equivalence oracle.
 *
 * Dynamically checks what the static legality analysis claims, in the
 * spirit of Fauzia et al.'s "Beyond Reuse Distance Analysis": interpret
 * the original and the transformed program on small concrete sizes
 * under several seeded array initializations and compare the final
 * array states element-for-element. Disagreement on any run is proof
 * of a miscompile; agreement on every run is strong (not absolute)
 * evidence of equivalence.
 *
 * Protocol per (size, seed) round:
 *  - symbolic parameters are rebound to the trial size (parameters the
 *    cost model treats as fixed constants keep their values — they are
 *    semantic, e.g. a 5-wide leading dimension);
 *  - if the *reference* program faults (out of bounds at a shrunken
 *    size, say), the round is inconclusive and skipped;
 *  - if the reference runs but the *candidate* faults, that is a
 *    verification failure — the transformation introduced the fault;
 *  - otherwise the contents of every array present in both programs
 *    (matched by name, register temporaries excluded) must agree
 *    bit-for-bit. Initial data is integer-valued, so exact comparison
 *    does not trip over rounding; see interp/interp.cc.
 */

#ifndef MEMORIA_CHECK_EQUIV_HH
#define MEMORIA_CHECK_EQUIV_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/diag.hh"
#include "ir/program.hh"

namespace memoria {

/** Knobs for one equivalence check. */
struct EquivOptions
{
    /**
     * Trial sizes for symbolic parameters. 0 means "keep the program's
     * own parameter values" — always safe, since a well-formed program
     * is in-bounds at its own defaults.
     */
    std::vector<int64_t> sizes = {0, 6};

    /** Initialization seeds tried at every size. */
    std::vector<uint64_t> seeds = {0, 0x5eed1, 0x5eed2};

    /**
     * Stop after the first size that produced at least one compared
     * run. Lets callers list a cheap shrunken size first and the
     * (possibly large) program default as a fallback, paying for the
     * fallback only when shrinking was inconclusive.
     */
    bool stopAfterConclusiveSize = false;

    /**
     * Worker threads for the (seed) rounds of each trial size. Every
     * round is independent — its own pair of interpreters over its own
     * seeded data — so rounds run concurrently and the outcomes are
     * folded in seed order, making the result (and the executed round
     * set, hence all obs counters) identical for every jobs value.
     * Workers inherit the caller's budget token, so deadlines and
     * iteration budgets still cancel cooperatively.
     */
    int jobs = 1;
};

/** Outcome of a differential check. */
struct EquivResult
{
    bool equivalent = true;

    /** Rounds actually compared (inconclusive rounds excluded). */
    int comparedRuns = 0;

    /** Rounds skipped because the reference program faulted. */
    int skippedRuns = 0;

    /** First divergence, when !equivalent. */
    std::string detail;
};

/**
 * Differentially compare `reference` against `candidate`.
 * Both are interpreted; neither is mutated.
 */
EquivResult checkEquivalence(const Program &reference,
                             const Program &candidate,
                             const EquivOptions &opts = {});

} // namespace memoria

#endif // MEMORIA_CHECK_EQUIV_HH
