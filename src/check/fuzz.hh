/**
 * @file
 * Seeded random loop-nest program generator.
 *
 * Produces small well-formed programs exercising the constructs the
 * pipeline handles: rectangular and triangular bounds, negative steps,
 * imperfect nests, shifted and permuted affine subscripts, shared
 * arrays across nests, reductions, and the full expression grammar
 * (including MIN/MAX/SQRT and occasional opaque subscripts). Generated
 * programs are always interpretable — array extents are padded past the
 * largest subscript shift — so they can drive the differential
 * oracle, and always printable/parsable, so they can drive print→parse
 * round-trip testing.
 *
 * Generation is a pure function of the seed (support/rng.hh), so any
 * failure reproduces from its seed alone.
 */

#ifndef MEMORIA_CHECK_FUZZ_HH
#define MEMORIA_CHECK_FUZZ_HH

#include <cstdint>

#include "ir/program.hh"

namespace memoria {

/** Generator shape knobs. */
struct FuzzOptions
{
    int maxNests = 4;       ///< top-level nests per program
    int maxDepth = 3;       ///< loop depth per nest
    int maxArrays = 3;      ///< shared data arrays
    int64_t paramValue = 6; ///< default symbolic size
    int maxShift = 2;       ///< largest subscript offset
    bool allowOpaque = true;    ///< emit [expr] subscripts sometimes
    bool allowTriangular = true;
    bool allowNegativeStep = true;
    bool allowImperfect = true;
};

/** Generate one program; identical (seed, opts) give identical
 *  programs. */
Program fuzzProgram(uint64_t seed, const FuzzOptions &opts = {});

} // namespace memoria

#endif // MEMORIA_CHECK_FUZZ_HH
