/**
 * @file
 * Recoverable diagnostics.
 *
 * The error-handling policy (docs/ROBUSTNESS.md): library code reports
 * problems *upward* as `Diag` values wrapped in `Result<T>`; only the
 * CLI may call `fatal`, and `panic` remains reserved for violated
 * internal invariants. A `Diag` carries a stable dotted code
 * ("interp.oob", "parse.depth", "validate.loop_var"), a human-readable
 * message, and an optional source location for front-end errors.
 *
 * Header-only so that low-level libraries (interpreter, frontend) can
 * produce diagnostics without linking against memoria_check.
 */

#ifndef MEMORIA_CHECK_DIAG_HH
#define MEMORIA_CHECK_DIAG_HH

#include <optional>
#include <string>
#include <utility>

#include "support/logging.hh"

namespace memoria {

/** One recoverable diagnostic. */
struct Diag
{
    /** Stable dotted identifier, e.g. "interp.oob". */
    std::string code;

    /** Human-readable description. */
    std::string message;

    /** Source location (0 = unknown); used by front-end diagnostics. */
    int line = 0;
    int col = 0;

    /** Render as "code: message" (with ":line:col" when known). */
    std::string
    str() const
    {
        std::string s = code;
        if (line > 0) {
            s += " at " + std::to_string(line);
            if (col > 0)
                s += ":" + std::to_string(col);
        }
        s += ": " + message;
        return s;
    }

    static Diag
    error(std::string code, std::string message, int line = 0,
          int col = 0)
    {
        return Diag{std::move(code), std::move(message), line, col};
    }
};

/**
 * Either a value or a Diag. The success path is implicit (construct
 * from T); the failure path goes through `Result<T>::err`.
 */
template <typename T> class Result
{
  public:
    Result(T value) : value_(std::move(value)) {}

    static Result
    err(Diag d)
    {
        Result r;
        r.diag_ = std::move(d);
        return r;
    }

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    const T &
    value() const
    {
        MEMORIA_ASSERT(ok(), "Result::value on error: " << diag().str());
        return *value_;
    }

    T &
    value()
    {
        MEMORIA_ASSERT(ok(), "Result::value on error: " << diag().str());
        return *value_;
    }

    /** The diagnostic; only valid when !ok(). */
    const Diag &
    diag() const
    {
        MEMORIA_ASSERT(!ok(), "Result::diag on success");
        return *diag_;
    }

  private:
    Result() = default;

    std::optional<T> value_;
    std::optional<Diag> diag_;
};

/** Result<void>: success, or a Diag. */
template <> class Result<void>
{
  public:
    Result() = default;

    static Result
    err(Diag d)
    {
        Result r;
        r.diag_ = std::move(d);
        return r;
    }

    bool ok() const { return !diag_.has_value(); }
    explicit operator bool() const { return ok(); }

    const Diag &
    diag() const
    {
        MEMORIA_ASSERT(!ok(), "Result::diag on success");
        return *diag_;
    }

  private:
    std::optional<Diag> diag_;
};

/** Success-or-diagnostic; the `void` flavour of Result. */
using Status = Result<void>;

} // namespace memoria

#endif // MEMORIA_CHECK_DIAG_HH
