/**
 * @file
 * Structural IR validator.
 *
 * Checks the invariants every later stage (dependence analysis, cost
 * model, transformations, interpreter) silently assumes, so a buggy
 * transform or a hostile input is rejected with a Diag instead of
 * corrupting downstream analyses or crashing the process:
 *
 *  - symbol-table sanity: non-empty unique names, positive element
 *    sizes, array extents affine over parameters only;
 *  - loop well-formedness: in-range LoopVar indices, non-zero steps,
 *    no variable bound twice along one nesting path, bounds referencing
 *    only parameters and *enclosing* loop variables;
 *  - statement well-formedness: in-range array ids, subscript rank
 *    matching the declaration, affine subscripts over in-scope
 *    variables only, non-null rhs trees with per-operator arity;
 *  - resource caps: maximum nesting depth and node count, so
 *    pathological inputs are rejected rather than exhausting the stack.
 *
 * Runnable after every transform step; `validateProgram` returns every
 * violation found (empty = valid).
 */

#ifndef MEMORIA_CHECK_VALIDATE_HH
#define MEMORIA_CHECK_VALIDATE_HH

#include <vector>

#include "check/diag.hh"
#include "ir/program.hh"

namespace memoria {

/** Resource caps enforced by the validator. */
struct ValidateOptions
{
    /** Maximum loop-nesting depth. */
    int maxDepth = 64;

    /** Maximum total Node count in one program. */
    size_t maxNodes = 1 << 20;
};

/** All structural violations in the program (empty when valid). */
std::vector<Diag> validateProgram(const Program &prog,
                                  const ValidateOptions &opts = {});

/** First violation as a Status (ok when the program is valid). */
Status validateProgramStatus(const Program &prog,
                             const ValidateOptions &opts = {});

} // namespace memoria

#endif // MEMORIA_CHECK_VALIDATE_HH
