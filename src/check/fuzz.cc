#include "check/fuzz.hh"

#include <string>
#include <vector>

#include "ir/builder.hh"
#include "support/rng.hh"

namespace memoria {

namespace {

/**
 * Grammar-directed generator. All randomness flows through one Rng, so
 * a (seed, options) pair fully determines the program.
 *
 * In-bounds construction: loop variables range over [1, N] (triangular
 * bounds only narrow that), subscripts are `var + d` with
 * d in [0, 2*maxShift], and every array extent is N + 2*maxShift — so
 * no generated subscript can leave its dimension. Constants are
 * integers or dyadic fractions, which print and re-parse exactly.
 */
class Generator
{
  public:
    Generator(uint64_t seed, const FuzzOptions &opts)
        : rng_(seed * 0x9e3779b97f4a7c15ULL + 1),
          opts_(opts),
          b_("fuzz" + std::to_string(seed))
    {
    }

    Program
    run()
    {
        n_ = b_.param("N", opts_.paramValue);
        pad_ = 2 * opts_.maxShift;

        int numArrays =
            static_cast<int>(rng_.range(1, opts_.maxArrays));
        for (int a = 0; a < numArrays; ++a) {
            int rank = static_cast<int>(rng_.range(1, 3));
            std::vector<Ix> extents;
            for (int d = 0; d < rank; ++d)
                extents.push_back(Ix(n_) + pad_);
            arrays_.push_back(
                b_.array("A" + std::to_string(a), std::move(extents)));
            ranks_.push_back(rank);
        }
        if (rng_.chance(1, 8)) {
            arrays_.push_back(b_.array("S", {}));
            ranks_.push_back(0);
        }

        int nests = static_cast<int>(rng_.range(1, opts_.maxNests));
        for (int t = 0; t < nests; ++t) {
            int depth = static_cast<int>(rng_.range(1, opts_.maxDepth));
            std::vector<Var> active;
            b_.add(genLoop(depth, active));
        }
        return b_.finish();
    }

  private:
    Var
    freshLoopVar()
    {
        static const char *base[] = {"I", "J", "K", "L", "M", "P"};
        std::string name;
        if (nextVar_ < 6)
            name = base[nextVar_];
        else
            name = std::string(base[nextVar_ % 6]) +
                   std::to_string(nextVar_ / 6 + 1);
        ++nextVar_;
        return b_.loopVar(name);
    }

    /** A loop of the given remaining depth; `active` lists enclosing
     *  loop variables (for triangular bounds and subscripts). */
    NodePtr
    genLoop(int depth, std::vector<Var> &active)
    {
        Var v = freshLoopVar();
        Ix lb(1), ub(n_);
        int64_t step = 1;
        if (opts_.allowTriangular && !active.empty() &&
            rng_.chance(1, 4)) {
            Var outer = active[rng_.below(active.size())];
            if (rng_.chance(1, 2))
                lb = Ix(outer);  // DO v = outer, N
            else
                ub = Ix(outer);  // DO v = 1, outer
        } else if (opts_.allowNegativeStep && rng_.chance(1, 6)) {
            lb = Ix(n_);  // DO v = N, 1, -1
            ub = Ix(1);
            step = -1;
        }

        active.push_back(v);
        std::vector<NodePtr> body;
        if (depth > 1) {
            if (opts_.allowImperfect && rng_.chance(1, 5))
                body.push_back(genStmt(active));
            body.push_back(genLoop(depth - 1, active));
            // A second inner loop makes a FuseAll candidate.
            if (opts_.allowImperfect && rng_.chance(1, 4))
                body.push_back(genLoop(depth - 1, active));
            if (opts_.allowImperfect && rng_.chance(1, 5))
                body.push_back(genStmt(active));
        } else {
            int stmts = static_cast<int>(rng_.range(1, 2));
            for (int s = 0; s < stmts; ++s)
                body.push_back(genStmt(active));
        }
        active.pop_back();
        return b_.loop(v, lb, ub, std::move(body), step);
    }

    /** A subscript `var + d`, occasionally opaque. */
    Subscript
    genSub(const std::vector<Var> &active)
    {
        Var v = active[rng_.below(active.size())];
        Ix ix = Ix(v) + static_cast<int64_t>(rng_.range(0, pad_));
        if (opts_.allowOpaque && rng_.chance(1, 12))
            return opaqueSub(Val(ix));
        return Subscript(ix.e);
    }

    Ref
    genRef(size_t array, const std::vector<Var> &active)
    {
        std::vector<Subscript> subs;
        for (int d = 0; d < ranks_[array]; ++d)
            subs.push_back(genSub(active));
        return arrays_[array].at(std::move(subs));
    }

    /** An exactly-printable constant. */
    Val
    genConst()
    {
        if (rng_.chance(1, 4))
            return Val(static_cast<double>(rng_.range(1, 4)) + 0.5);
        return Val(static_cast<double>(rng_.range(1, 5)));
    }

    /**
     * A value tree plus whether the parser's affine folding would see
     * it as affine. The generator must not emit an affine *composite*
     * (e.g. Mul(Index, Const 1) or Add(Const, Index)) — the parser
     * folds those into a single Index leaf and the print → parse →
     * print fixpoint breaks. Affine material therefore only ever
     * appears as single Index/Const leaves, which are already in
     * normal form.
     */
    struct Expr
    {
        Val v;
        bool affine;
    };

    Expr
    genLeaf(const std::vector<Var> &active)
    {
        uint64_t pick = rng_.below(6);
        if (pick < 3)
            return {genRef(rng_.below(arrays_.size()), active), false};
        if (pick < 5)
            return {genConst(), true};
        Var v = active[rng_.below(active.size())];
        return {Val(Ix(v) + static_cast<int64_t>(rng_.range(0, pad_))),
                true};
    }

    Expr
    genExpr(const std::vector<Var> &active, int depth)
    {
        if (depth >= 2 || rng_.chance(1, 3))
            return genLeaf(active);
        Expr a = genExpr(active, depth + 1);
        switch (rng_.below(8)) {
          case 0:
          case 1:
          case 2: {
            // At least one operand of +/- must be non-affine, or the
            // whole node would fold.
            Expr b = a.affine ? Expr{genRef(rng_.below(arrays_.size()),
                                            active),
                                     false}
                              : genExpr(active, depth + 1);
            bool sub = rng_.chance(1, 3);
            return {sub ? a.v - b.v : a.v + b.v, false};
          }
          case 3: {
            // Multiply-by-constant folds over an affine base.
            Val base = a.affine
                           ? Val(genRef(rng_.below(arrays_.size()),
                                        active))
                           : a.v;
            return {base * genConst(), false};
          }
          case 4:
            // Dyadic divisor keeps values exactly representable.
            return {a.v / Val(rng_.chance(1, 2) ? 2.0 : 4.0), false};
          case 5:
            return {minv(a.v, genExpr(active, depth + 1).v), false};
          case 6:
            return {maxv(a.v, genExpr(active, depth + 1).v), false};
          default:
            return {imodv(a.v, Val(static_cast<double>(
                                  rng_.range(2, 4)))) +
                        genConst(),
                    false};
        }
    }

    NodePtr
    genStmt(const std::vector<Var> &active)
    {
        // Prefer data arrays as write targets; the rank-0 scalar (when
        // present) is written rarely, creating output dependences.
        size_t target = rng_.below(arrays_.size());
        if (ranks_[target] == 0 && !rng_.chance(1, 3))
            target = 0;
        return b_.assign(genRef(target, active),
                         genExpr(active, 0).v);
    }

    Rng rng_;
    const FuzzOptions &opts_;
    ProgramBuilder b_;
    Var n_;
    int64_t pad_ = 0;
    int nextVar_ = 0;
    std::vector<Arr> arrays_;
    std::vector<int> ranks_;
};

} // namespace

Program
fuzzProgram(uint64_t seed, const FuzzOptions &opts)
{
    return Generator(seed, opts).run();
}

} // namespace memoria
