#include "check/reduce.hh"

#include <algorithm>
#include <chrono>
#include <set>
#include <utility>

#include "ir/walk.hh"

namespace memoria {

namespace {

using Clock = std::chrono::steady_clock;

/** Statement ids in program order (deterministic). */
void
collectStmtIds(const Node &n, std::vector<int> &ids)
{
    if (n.isStmt()) {
        ids.push_back(n.stmt.id);
        return;
    }
    for (const NodePtr &child : n.body)
        collectStmtIds(*child, ids);
}

std::vector<int>
stmtIds(const Program &prog)
{
    std::vector<int> ids;
    for (const NodePtr &n : prog.body)
        collectStmtIds(*n, ids);
    return ids;
}

size_t
countNodes(const Node &n)
{
    if (n.isStmt())
        return 1;
    size_t total = 1;
    for (const NodePtr &child : n.body)
        total += countNodes(*child);
    return total;
}

/** Copy of `n` without the statements in `drop`; loops left with empty
 *  bodies are pruned (nullptr). */
NodePtr
filterNode(const Node &n, const std::set<int> &drop)
{
    if (n.isStmt())
        return drop.count(n.stmt.id) ? nullptr : cloneNode(n);
    std::vector<NodePtr> body;
    for (const NodePtr &child : n.body) {
        if (NodePtr kept = filterNode(*child, drop))
            body.push_back(std::move(kept));
    }
    if (body.empty())
        return nullptr;
    return Node::makeLoop(n.var, n.lb, n.ub, n.step, std::move(body));
}

Program
buildWithout(const Program &base, const std::set<int> &drop)
{
    Program out;
    out.name = base.name;
    out.vars = base.vars;
    out.arrays = base.arrays;
    for (const NodePtr &n : base.body) {
        if (NodePtr kept = filterNode(*n, drop))
            out.body.push_back(std::move(kept));
    }
    return out;
}

/** Paths (child-index chains from the program body) of every loop node,
 *  preorder, so outer loops are attempted before the loops they contain. */
void
gatherLoopPaths(const Node &n, std::vector<int> &prefix,
                std::vector<std::vector<int>> &out)
{
    if (!n.isLoop())
        return;
    out.push_back(prefix);
    for (size_t i = 0; i < n.body.size(); ++i) {
        prefix.push_back(static_cast<int>(i));
        gatherLoopPaths(*n.body[i], prefix, out);
        prefix.pop_back();
    }
}

std::vector<std::vector<int>>
loopPaths(const Program &prog)
{
    std::vector<std::vector<int>> out;
    for (size_t i = 0; i < prog.body.size(); ++i) {
        std::vector<int> prefix{static_cast<int>(i)};
        gatherLoopPaths(*prog.body[i], prefix, out);
    }
    return out;
}

/** The container holding the node at `path`, plus its index in it. */
std::vector<NodePtr> *
containerAt(Program &prog, const std::vector<int> &path, size_t &index)
{
    std::vector<NodePtr> *container = &prog.body;
    for (size_t i = 0; i + 1 < path.size(); ++i)
        container = &(*container)[path[i]]->body;
    index = static_cast<size_t>(path.back());
    return container;
}

/** One subscript simplification step: opaque subscripts become the
 *  constant 1, affine subscripts lose their constant shift. */
bool
simplifyRef(ArrayRef &ref)
{
    bool changed = false;
    for (Subscript &sub : ref.subs) {
        if (!sub.isAffine()) {
            sub = Subscript(AffineExpr(1));
            changed = true;
        } else if (!sub.affine.isConstant() && sub.affine.constant() != 0) {
            sub.affine = sub.affine - sub.affine.constant();
            changed = true;
        }
    }
    return changed;
}

/** Rebuild a value tree with every Load's subscripts simplified. */
ValuePtr
simplifyLoads(const ValuePtr &v, bool &changed)
{
    if (!v)
        return v;
    if (v->op == ValOp::Load) {
        ArrayRef ref = v->load;
        if (simplifyRef(ref)) {
            changed = true;
            return Value::makeLoad(std::move(ref));
        }
        return v;
    }
    if (v->kids.empty())
        return v;
    bool kidsChanged = false;
    std::vector<ValuePtr> kids;
    kids.reserve(v->kids.size());
    for (const ValuePtr &k : v->kids)
        kids.push_back(simplifyLoads(k, kidsChanged));
    if (!kidsChanged)
        return v;
    changed = true;
    return Value::make(v->op, std::move(kids));
}

Statement *
findStmt(Program &prog, int id)
{
    for (StmtContext &ctx : collectStmts(prog)) {
        if (ctx.node->stmt.id == id)
            return &ctx.node->stmt;
    }
    return nullptr;
}

/** Budget-aware predicate driver; anything thrown counts as "rejected". */
class Search
{
  public:
    Search(const FailurePredicate &pred, const ReduceOptions &opts)
        : pred_(pred), opts_(opts), start_(Clock::now())
    {}

    bool
    exhausted()
    {
        if (tripped_)
            return true;
        if (opts_.maxChecks > 0 && checks_ >= opts_.maxChecks) {
            tripped_ = true;
        } else if (opts_.deadlineMs > 0) {
            auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - start_).count();
            if (elapsed >= opts_.deadlineMs)
                tripped_ = true;
        }
        return tripped_;
    }

    bool
    check(const Program &candidate)
    {
        if (exhausted())
            return false;
        ++checks_;
        try {
            return pred_(candidate);
        } catch (...) {
            // A predicate that blows up on a candidate tells us nothing;
            // conservatively keep the larger, known-failing program.
            return false;
        }
    }

    int checks() const { return checks_; }
    bool tripped() const { return tripped_; }

  private:
    const FailurePredicate &pred_;
    const ReduceOptions &opts_;
    Clock::time_point start_;
    int checks_ = 0;
    bool tripped_ = false;
};

/** Complement-style ddmin over statement ids. */
bool
ddminStatements(Program &best, Search &search)
{
    bool changedAny = false;
    std::vector<int> ids = stmtIds(best);
    size_t n = 2;
    while (ids.size() >= 2 && !search.exhausted()) {
        n = std::min(n, ids.size());
        size_t chunk = (ids.size() + n - 1) / n;
        bool reduced = false;
        for (size_t i = 0; i < n && !search.exhausted(); ++i) {
            size_t lo = i * chunk;
            size_t hi = std::min(ids.size(), lo + chunk);
            if (lo >= hi)
                continue;
            std::set<int> drop(ids.begin() + lo, ids.begin() + hi);
            Program cand = buildWithout(best, drop);
            if (search.check(cand)) {
                best = std::move(cand);
                ids = stmtIds(best);
                n = std::max<size_t>(2, n - 1);
                changedAny = reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (n >= ids.size())
                break;
            n = std::min(ids.size(), n * 2);
        }
    }
    return changedAny;
}

/** Replace one loop by its body at the lower-bound iteration. Returns
 *  true when some loop was successfully unwrapped. */
bool
unwrapOnce(Program &best, Search &search)
{
    for (const std::vector<int> &path : loopPaths(best)) {
        if (search.exhausted())
            return false;
        Program cand = best.clone();
        size_t index = 0;
        std::vector<NodePtr> *container = containerAt(cand, path, index);
        Node &loop = *(*container)[index];
        std::vector<NodePtr> body = std::move(loop.body);
        for (NodePtr &child : body)
            substituteVar(*child, loop.var, loop.lb);
        container->erase(container->begin() + index);
        container->insert(container->begin() + index,
                          std::make_move_iterator(body.begin()),
                          std::make_move_iterator(body.end()));
        if (search.check(cand)) {
            best = std::move(cand);
            return true;
        }
    }
    return false;
}

/** Per-statement subscript simplification (all of a statement's
 *  subscripts at once, bounding the number of predicate calls). */
bool
simplifySubscriptsPass(Program &best, Search &search)
{
    bool changedAny = false;
    for (int id : stmtIds(best)) {
        if (search.exhausted())
            break;
        Program cand = best.clone();
        Statement *stmt = findStmt(cand, id);
        bool changed = simplifyRef(stmt->write);
        stmt->rhs = simplifyLoads(stmt->rhs, changed);
        if (changed && search.check(cand)) {
            best = std::move(cand);
            changedAny = true;
        }
    }
    return changedAny;
}

/** Per-statement right-hand-side collapse to the constant 1. */
bool
simplifyRhsPass(Program &best, Search &search)
{
    bool changedAny = false;
    for (int id : stmtIds(best)) {
        if (search.exhausted())
            break;
        Program cand = best.clone();
        Statement *stmt = findStmt(cand, id);
        if (stmt->rhs && stmt->rhs->op == ValOp::Const)
            continue;
        stmt->rhs = Value::makeConst(1.0);
        if (search.check(cand)) {
            best = std::move(cand);
            changedAny = true;
        }
    }
    return changedAny;
}

/** Single-statement removal to a fixpoint; proves 1-minimality when it
 *  completes without the budget tripping. */
bool
oneMinimalPass(Program &best, Search &search, bool &proven)
{
    bool changedAny = false;
    bool restart = true;
    while (restart && !search.exhausted()) {
        restart = false;
        for (int id : stmtIds(best)) {
            if (search.exhausted())
                break;
            Program cand = buildWithout(best, {id});
            if (search.check(cand)) {
                best = std::move(cand);
                changedAny = restart = true;
                break;
            }
        }
    }
    proven = !search.tripped();
    return changedAny;
}

} // namespace

size_t
countIrNodes(const Program &prog)
{
    size_t total = 0;
    for (const NodePtr &n : prog.body)
        total += countNodes(*n);
    return total;
}

ReduceResult
reduceProgram(const Program &input, const FailurePredicate &pred,
              const ReduceOptions &opts)
{
    ReduceResult res;
    res.origNodes = countIrNodes(input);

    Search search(pred, opts);
    Program best = input.clone();

    // The input must itself fail; otherwise there is nothing to minimize.
    if (!search.check(best)) {
        res.program = std::move(best);
        res.checks = search.checks();
        res.finalNodes = res.origNodes;
        res.budgetExhausted = search.tripped();
        return res;
    }
    res.inputFailed = true;

    bool changed = true;
    while (changed && !search.exhausted()) {
        changed = false;
        ++res.rounds;
        changed |= ddminStatements(best, search);
        if (opts.unwrapLoops) {
            while (!search.exhausted() && unwrapOnce(best, search))
                changed = true;
        }
        if (opts.simplifySubscripts)
            changed |= simplifySubscriptsPass(best, search);
        if (opts.simplifyRhs)
            changed |= simplifyRhsPass(best, search);
    }

    oneMinimalPass(best, search, res.oneMinimal);

    res.program = std::move(best);
    res.checks = search.checks();
    res.finalNodes = countIrNodes(res.program);
    res.budgetExhausted = search.tripped();
    return res;
}

} // namespace memoria
