/**
 * @file
 * Differential fuzzing campaign over the whole pipeline.
 *
 * Each round generates a seeded random program (check/fuzz.hh) and
 * pushes it through every guarantee the toolkit makes:
 *
 *  1. the generated IR passes structural validation;
 *  2. it survives a print → parse round trip — the reparsed program
 *     prints identically and computes the same checksum;
 *  3. Compound (with its verification guard enabled) produces a
 *     transformed program that passes validation;
 *  4. the transformed program is differentially equivalent to the
 *     original.
 *
 * Guard rollbacks during step 3 are counted but are not failures —
 * they are the guard doing its job. Any step-1/2/4 disagreement is a
 * real bug (in the generator, front end, interpreter, or optimizer)
 * reproducible from its seed.
 */

#ifndef MEMORIA_DRIVER_FUZZCHECK_HH
#define MEMORIA_DRIVER_FUZZCHECK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/fuzz.hh"
#include "check/reduce.hh"

namespace memoria {

/** Aggregate outcome of a campaign. */
struct FuzzReport
{
    int programs = 0;          ///< rounds executed
    int validateFailures = 0;  ///< step 1 or 3 rejections
    int roundTripFailures = 0; ///< step 2 disagreements
    int equivFailures = 0;     ///< step 4 disagreements
    int rollbacks = 0;         ///< guard rollbacks (not failures)

    /** First few failure descriptions, each with its seed. */
    std::vector<std::string> messages;

    /**
     * Structured record per failing round (same cap as `messages`).
     * Generation is a pure function of the seed, so `seed` plus the
     * campaign's FuzzOptions regenerates the failing program exactly;
     * `kind` names the broken property (fuzzFailurePredicate re-checks
     * it), which is what incident bundling minimizes against.
     */
    struct Failure
    {
        uint64_t seed = 0;
        std::string kind;    ///< validate-gen|round-trip|validate-opt|equivalence
        std::string detail;
    };
    std::vector<Failure> failures;

    bool
    ok() const
    {
        return validateFailures == 0 && roundTripFailures == 0 &&
               equivFailures == 0;
    }
};

/**
 * Run `count` rounds starting at `seed` (round k uses seed + k).
 *
 * `jobs` > 1 spreads the rounds over worker threads. Every round is a
 * pure function of its seed and runs against round-local state (its
 * own generated program, interpreters and transform pipeline), so the
 * workers only share the round queue; each round's outcome lands in
 * its own cache-line-padded slot and the slots are folded in seed
 * order afterwards. The report — counters, failure records, message
 * order — is therefore bitwise-identical for every jobs value.
 */
FuzzReport runFuzzCampaign(uint64_t seed, int count,
                           const FuzzOptions &opts = {}, int jobs = 1);

/**
 * A predicate accepting programs that still break the named property
 * (a FuzzReport::Failure::kind). Used to minimize fuzz failures into
 * incident bundles: the reduced program must fail the *same* check,
 * not merely some check. Unknown kinds fall back to the equivalence
 * check.
 */
FailurePredicate fuzzFailurePredicate(const std::string &kind);

} // namespace memoria

#endif // MEMORIA_DRIVER_FUZZCHECK_HH
