#include "driver/memoria.hh"

#include <map>
#include <set>

#include "model/checked.hh"
#include "model/loopcost.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/trace.hh"
#include "transform/permute.hh"

namespace memoria {

namespace {

/** Statement-id set of one subtree. */
std::set<int>
stmtIds(const Node &n)
{
    std::set<int> out;
    if (n.isStmt()) {
        out.insert(n.stmt.id);
        return out;
    }
    for (const auto &kid : n.body) {
        std::set<int> sub = stmtIds(*kid);
        out.insert(sub.begin(), sub.end());
    }
    return out;
}

/** Build the ideal program: force memory order everywhere, legality
 *  ignored (Section 5.2's "ideal" column). */
void
forceIdeal(Program &prog, const ModelParams &params)
{
    std::function<void(Node *, std::vector<Node *>)> walk =
        [&](Node *node, std::vector<Node *> outer) {
            if (!node->isLoop())
                return;
            if (loopDepth(*node) >= 2) {
                NestAnalysis na(prog, node, params, outer);
                permuteIgnoringLegality(na, node);
            }
            std::vector<Node *> chain = perfectChain(node);
            std::vector<Node *> inner = outer;
            for (Node *c : chain)
                inner.push_back(c);
            for (auto &kid : chain.back()->body)
                if (kid->isLoop())
                    walk(kid.get(), inner);
        };
    for (auto &n : prog.body)
        walk(n.get(), {});
}

/** Evaluate orig/new cost ratio at a concrete size; never below 1 when
 *  the transformation never hurts (guards tiny numeric noise). */
double
costRatio(const Poly &orig, const Poly &now, double evalN)
{
    double o = checkedEval(orig, evalN);
    double t = checkedEval(now, evalN);
    if (t <= 0.0 || o <= 0.0)
        return 1.0;
    return o / t;
}

} // namespace

AccessStats
programAccessStats(Program &prog, const ModelParams &params)
{
    AccessStats total;
    for (auto &n : prog.body) {
        if (!n->isLoop() || loopDepth(*n) < 2)
            continue;
        NestAnalysis na(prog, n.get(), params);
        total += gatherAccessStats(na);
    }
    return total;
}

Poly
programNestCost(Program &prog, const ModelParams &params)
{
    Poly total;
    for (auto &n : prog.body) {
        if (!n->isLoop() || loopDepth(*n) < 2)
            continue;
        NestAnalysis na(prog, n.get(), params);
        total += nestCost(na);
    }
    return total;
}

OptimizedProgram
optimizeProgram(const Program &input, const ModelParams &params,
                bool applyFusion, double evalN)
{
    PipelineOptions opts;
    opts.compound.applyFusion = applyFusion;
    opts.evalN = evalN;
    return optimizeProgram(input, params, opts);
}

OptimizedProgram
optimizeProgram(const Program &input, const ModelParams &params,
                const PipelineOptions &opts)
{
    const double evalN = opts.evalN;
    obs::TraceScope span("driver", "optimize_program");
    span.arg("program", input.name);
    ++obs::counter("driver.programs_optimized");
    obs::ScopedTimer timer(
        obs::statsRegistry().histogram("driver.optimize_time_us"));

    OptimizedProgram out;
    out.original = input.clone();
    out.transformed = input.clone();
    out.ideal = input.clone();

    if (opts.transform)
        out.compound =
            compoundTransform(out.transformed, params, opts.compound);
    if (opts.computeIdeal)
        forceIdeal(out.ideal, params);

    // ----- Table 2 statistics ------------------------------------
    ProgramReport &rep = out.report;
    rep.name = input.name;
    rep.loops = out.compound.totalLoops;
    rep.nests = out.compound.totalNests;
    double sumRf = 0, sumRi = 0, sumRfW = 0, sumRiW = 0, sumW = 0;
    for (const auto &nr : out.compound.nests) {
        if (nr.origMemoryOrder)
            ++rep.nestsOrig;
        else if (nr.finalMemoryOrder)
            ++rep.nestsPerm;
        else
            ++rep.nestsFail;

        if (nr.origInnerMemoryOrder)
            ++rep.innerOrig;
        else if (nr.finalInnerMemoryOrder)
            ++rep.innerPerm;
        else
            ++rep.innerFail;

        if (!nr.finalMemoryOrder) {
            if (nr.fail == PermuteFail::Bounds)
                ++rep.failBounds;
            else
                ++rep.failDeps;
        }

        double rf = costRatio(nr.origCost, nr.finalCost, evalN);
        double ri = costRatio(nr.origCost, nr.idealCost, evalN);
        double w = nr.depth;
        sumRf += rf;
        sumRi += ri;
        sumRfW += rf * w;
        sumRiW += ri * w;
        sumW += w;
    }
    if (!out.compound.nests.empty()) {
        double n = static_cast<double>(out.compound.nests.size());
        rep.ratioFinal = sumRf / n;
        rep.ratioIdeal = sumRi / n;
        rep.ratioFinalWt = sumW > 0 ? sumRfW / sumW : 1.0;
        rep.ratioIdealWt = sumW > 0 ? sumRiW / sumW : 1.0;
    }
    rep.fusion = out.compound.fusion;
    rep.distributions = out.compound.distributions;
    rep.resultingNests = out.compound.resultingNests;
    rep.failVerify =
        out.compound.failVerify + out.compound.fusion.failVerify;

    // ----- changed-nest mapping (optimized procedures) ------------
    std::vector<std::set<int>> origSets, finalSets;
    for (const auto &n : out.original.body)
        origSets.push_back(stmtIds(*n));
    for (const auto &n : out.transformed.body)
        finalSets.push_back(stmtIds(*n));

    std::vector<bool> origChanged(out.original.body.size(), false);
    std::set<size_t> finalRelated;
    for (size_t o = 0; o < origSets.size(); ++o) {
        std::vector<size_t> related;
        for (size_t f = 0; f < finalSets.size(); ++f) {
            for (int id : origSets[o]) {
                if (finalSets[f].count(id)) {
                    related.push_back(f);
                    break;
                }
            }
        }
        bool changed =
            related.size() != 1 ||
            finalSets[related[0]] != origSets[o] ||
            !structurallyEqual(*out.original.body[o],
                               *out.transformed.body[related[0]]);
        if (changed && !origSets[o].empty()) {
            origChanged[o] = true;
            finalRelated.insert(related.begin(), related.end());
        }
    }

    out.origOpt.name = input.name + "_orig_opt";
    out.finalOpt.name = input.name + "_final_opt";
    out.origOpt.vars = out.original.vars;
    out.origOpt.arrays = out.original.arrays;
    out.finalOpt.vars = out.transformed.vars;
    out.finalOpt.arrays = out.transformed.arrays;
    for (size_t o = 0; o < origChanged.size(); ++o)
        if (origChanged[o])
            out.origOpt.body.push_back(cloneNode(*out.original.body[o]));
    for (size_t f : finalRelated)
        out.finalOpt.body.push_back(
            cloneNode(*out.transformed.body[f]));
    out.anyChanged = !out.origOpt.body.empty();

    // ----- Table 5 access statistics -------------------------------
    out.accessOrig = programAccessStats(out.original, params);
    out.accessFinal = programAccessStats(out.transformed, params);
    if (opts.computeIdeal)
        out.accessIdeal = programAccessStats(out.ideal, params);

    if (span.active()) {
        span.arg("nests", rep.nests);
        span.arg("nests_orig", rep.nestsOrig);
        span.arg("nests_permuted", rep.nestsPerm);
        span.arg("nests_failed", rep.nestsFail);
        span.arg("ratio_final", rep.ratioFinal);
        span.arg("ratio_ideal", rep.ratioIdeal);
    }
    return out;
}

HitRates
simulateHitRates(const OptimizedProgram &opt, const CacheConfig &config)
{
    return simulateHitRatesSweep(opt, {config}).front();
}

std::vector<HitRates>
simulateHitRatesSweep(const OptimizedProgram &opt,
                      const std::vector<CacheConfig> &configs)
{
    obs::TraceScope span("driver", "simulate_hit_rates");
    span.arg("program", opt.original.name);
    span.arg("configs", static_cast<uint64_t>(configs.size()));

    std::vector<HitRates> rates(configs.size());
    if (configs.empty())
        return rates;

    // One interpreter pass per program version feeds every config.
    SweepResult wholeOrig = runWithCaches(opt.original, configs);
    SweepResult wholeFinal = runWithCaches(opt.transformed, configs);
    for (size_t i = 0; i < configs.size(); ++i) {
        rates[i].wholeOrig = wholeOrig.cache[i].hitRateWarm();
        rates[i].wholeFinal = wholeFinal.cache[i].hitRateWarm();
    }
    if (opt.anyChanged) {
        SweepResult optOrig = runWithCaches(opt.origOpt, configs);
        SweepResult optFinal = runWithCaches(opt.finalOpt, configs);
        for (size_t i = 0; i < configs.size(); ++i) {
            rates[i].optOrig = optOrig.cache[i].hitRateWarm();
            rates[i].optFinal = optFinal.cache[i].hitRateWarm();
        }
    } else {
        for (HitRates &r : rates)
            r.optOrig = r.optFinal = r.wholeOrig;
    }
    if (span.active()) {
        span.arg("whole_orig_hit_pct", rates.front().wholeOrig);
        span.arg("whole_final_hit_pct", rates.front().wholeFinal);
    }
    return rates;
}

Performance
simulatePerformance(const OptimizedProgram &opt,
                    const CacheConfig &config,
                    const MachineModel &machine)
{
    Performance perf;
    perf.origCycles = runWithCache(opt.original, config, machine).cycles;
    perf.finalCycles =
        runWithCache(opt.transformed, config, machine).cycles;
    return perf;
}

} // namespace memoria
