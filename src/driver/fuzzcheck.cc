#include "driver/fuzzcheck.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

#include "check/equiv.hh"
#include "harness/budget.hh"
#include "check/validate.hh"
#include "frontend/parser.hh"
#include "interp/interp.hh"
#include "ir/printer.hh"
#include "model/params.hh"
#include "support/stats.hh"
#include "support/trace.hh"
#include "transform/compound.hh"

namespace memoria {

namespace {

constexpr size_t kMaxMessages = 10;

void
record(FuzzReport &rep, uint64_t seed, const std::string &kind,
       const std::string &what)
{
    if (rep.messages.size() < kMaxMessages)
        rep.messages.push_back("seed " + std::to_string(seed) + ": " +
                               what);
    if (rep.failures.size() < kMaxMessages)
        rep.failures.push_back({seed, kind, what});
}

/** Steps 1–4 for one seed. */
void
fuzzOne(uint64_t seed, const FuzzOptions &opts, FuzzReport &rep)
{
    obs::TraceScope span("fuzz", "round");
    span.arg("seed", static_cast<int64_t>(seed));

    Program prog = fuzzProgram(seed, opts);

    // Step 1: the generator must produce structurally valid IR.
    std::vector<Diag> diags = validateProgram(prog);
    if (!diags.empty()) {
        ++rep.validateFailures;
        record(rep, seed, "validate-gen",
               "generated program fails validation: " +
                   diags.front().str());
        return;
    }

    // Step 2: print → parse → print reaches a fixpoint and preserves
    // semantics (same checksum).
    std::string text = printProgram(prog);
    ParseError perr;
    auto reparsed = parseProgram(text, &perr);
    if (!reparsed) {
        ++rep.roundTripFailures;
        record(rep, seed, "round-trip",
               "printed program does not parse: " + perr.str());
        return;
    }
    std::string text2 = printProgram(*reparsed);
    if (text2 != text) {
        ++rep.roundTripFailures;
        record(rep, seed, "round-trip",
               "print -> parse -> print is not a fixpoint");
        return;
    }
    Result<uint64_t> sumOrig = tryRunChecksum(prog);
    Result<uint64_t> sumBack = tryRunChecksum(*reparsed);
    if (!sumOrig.ok() || !sumBack.ok()) {
        ++rep.roundTripFailures;
        record(rep, seed, "round-trip",
               "interpretation faulted: " +
                   (!sumOrig.ok() ? sumOrig.diag() : sumBack.diag())
                       .str());
        return;
    }
    if (sumOrig.value() != sumBack.value()) {
        ++rep.roundTripFailures;
        record(rep, seed, "round-trip",
               "reparsed program computes a different checksum");
        return;
    }

    // Step 3: the guarded pipeline on a copy.
    Program transformed = prog.clone();
    ModelParams params;
    CompoundOptions copts;
    CompoundResult cres = compoundTransform(transformed, params, copts);
    rep.rollbacks += cres.failVerify + cres.fusion.failVerify;

    diags = validateProgram(transformed);
    if (!diags.empty()) {
        ++rep.validateFailures;
        record(rep, seed, "validate-opt",
               "transformed program fails validation: " +
                   diags.front().str());
        return;
    }

    // Step 4: end-to-end differential equivalence.
    EquivResult eq = checkEquivalence(prog, transformed);
    if (!eq.equivalent) {
        ++rep.equivFailures;
        record(rep, seed, "equivalence",
               "transformed program is not equivalent: " + eq.detail);
    }
}

} // namespace

FailurePredicate
fuzzFailurePredicate(const std::string &kind)
{
    if (kind == "validate-gen")
        return [](const Program &p) {
            return !validateProgram(p).empty();
        };
    if (kind == "round-trip")
        return [](const Program &p) {
            std::string text = printProgram(p);
            ParseError perr;
            auto reparsed = parseProgram(text, &perr);
            if (!reparsed)
                return true;
            if (printProgram(*reparsed) != text)
                return true;
            Result<uint64_t> a = tryRunChecksum(p);
            Result<uint64_t> b = tryRunChecksum(*reparsed);
            if (!a.ok() || !b.ok())
                return true;
            return a.value() != b.value();
        };
    if (kind == "validate-opt")
        return [](const Program &p) {
            Program t = p.clone();
            ModelParams params;
            CompoundOptions copts;
            compoundTransform(t, params, copts);
            return !validateProgram(t).empty();
        };
    // "equivalence" (and the fallback for unknown kinds).
    return [](const Program &p) {
        Program t = p.clone();
        ModelParams params;
        CompoundOptions copts;
        compoundTransform(t, params, copts);
        // A candidate that trips a *different* check is not the same
        // failure; reject it so reduction stays on signature.
        if (!validateProgram(t).empty())
            return false;
        return !checkEquivalence(p, t).equivalent;
    };
}

FuzzReport
runFuzzCampaign(uint64_t seed, int count, const FuzzOptions &opts,
                int jobs)
{
    obs::TraceScope span("fuzz", "campaign");
    span.arg("seed", static_cast<int64_t>(seed));
    span.arg("count", count);
    span.arg("jobs", jobs);
    obs::ScopedTimer timer(
        obs::statsRegistry().histogram("fuzz.campaign_time_us"));

    // One padded slot per round: workers never write to a shared
    // cache line, and the fold below reads the slots in seed order so
    // the merged report is independent of scheduling.
    struct alignas(64) RoundSlot
    {
        FuzzReport rep;
    };
    std::vector<RoundSlot> slots(std::max(count, 0));

    auto runRange = [&](size_t k) {
        ++slots[k].rep.programs;
        fuzzOne(seed + static_cast<uint64_t>(k), opts, slots[k].rep);
    };

    jobs = std::max(1, std::min(jobs, count));
    if (jobs <= 1) {
        for (int k = 0; k < count; ++k)
            runRange(static_cast<size_t>(k));
    } else {
        std::atomic<size_t> next{0};
        std::exception_ptr firstError;
        std::mutex errorMu;
        harness::CancelToken *parent = harness::currentToken();
        auto work = [&]() {
            harness::BudgetScope scope(parent);
            for (;;) {
                size_t k = next.fetch_add(1, std::memory_order_relaxed);
                if (k >= slots.size())
                    break;
                try {
                    runRange(k);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(errorMu);
                    if (!firstError)
                        firstError = std::current_exception();
                    break;
                }
            }
        };
        std::vector<std::thread> pool;
        for (int j = 1; j < jobs; ++j)
            pool.emplace_back(work);
        work();
        for (std::thread &t : pool)
            t.join();
        if (firstError)
            std::rethrow_exception(firstError);
    }

    FuzzReport rep;
    for (const RoundSlot &slot : slots) {
        const FuzzReport &r = slot.rep;
        rep.programs += r.programs;
        rep.validateFailures += r.validateFailures;
        rep.roundTripFailures += r.roundTripFailures;
        rep.equivFailures += r.equivFailures;
        rep.rollbacks += r.rollbacks;
        for (const std::string &m : r.messages)
            if (rep.messages.size() < kMaxMessages)
                rep.messages.push_back(m);
        for (const FuzzReport::Failure &f : r.failures)
            if (rep.failures.size() < kMaxMessages)
                rep.failures.push_back(f);
    }

    if (span.active()) {
        span.arg("programs", rep.programs);
        span.arg("validate_failures", rep.validateFailures);
        span.arg("round_trip_failures", rep.roundTripFailures);
        span.arg("equiv_failures", rep.equivFailures);
        span.arg("rollbacks", rep.rollbacks);
    }
    return rep;
}

} // namespace memoria
