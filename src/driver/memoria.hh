/**
 * @file
 * The end-to-end Memoria driver.
 *
 * Mirrors the paper's experimental pipeline: take a program, run the
 * Compound transformation, and collect everything Section 5 reports —
 * per-program memory-order statistics (Table 2), simulated cache hit
 * rates for the optimized nests and the whole program on the two cache
 * configurations (Table 4), simulated performance (Tables 1/3), and the
 * data-access properties of the original / final / ideal versions
 * (Table 5).
 */

#ifndef MEMORIA_DRIVER_MEMORIA_HH
#define MEMORIA_DRIVER_MEMORIA_HH

#include <string>
#include <vector>

#include "interp/interp.hh"
#include "model/access.hh"
#include "transform/compound.hh"

namespace memoria {

/** Table 2 row plus the supporting detail. */
struct ProgramReport
{
    std::string name;

    int loops = 0;
    int nests = 0;

    // Memory order for whole nests (percent numerators).
    int nestsOrig = 0;  ///< originally in memory order
    int nestsPerm = 0;  ///< transformed into memory order
    int nestsFail = 0;  ///< still not in memory order

    // Memory order for the inner loop only.
    int innerOrig = 0;
    int innerPerm = 0;
    int innerFail = 0;

    // Failure breakdown (Section 5.2).
    int failDeps = 0;
    int failBounds = 0;

    FuseStats fusion;
    int distributions = 0;
    int resultingNests = 0;

    /** Transformations undone by the verification guard (per-nest
     *  rollbacks plus fusion-pass rollbacks); 0 on a healthy run. */
    int failVerify = 0;

    /** Average original/final and original/ideal LoopCost ratios,
     *  evaluated at the given symbolic size. */
    double ratioFinal = 1.0;
    double ratioIdeal = 1.0;
    /** Nesting-depth-weighted variants (Table 5). */
    double ratioFinalWt = 1.0;
    double ratioIdealWt = 1.0;
};

/** Result of optimizing one program. */
struct OptimizedProgram
{
    Program original;
    Program transformed;
    Program ideal;  ///< memory order forced, legality ignored

    CompoundResult compound;
    ProgramReport report;

    /** Sub-programs containing only the nests the optimizer changed
     *  ("optimized procedures" in Table 4). */
    Program origOpt;
    Program finalOpt;
    bool anyChanged = false;

    AccessStats accessOrig;
    AccessStats accessFinal;
    AccessStats accessIdeal;
};

/** Knobs for one pipeline run. */
struct PipelineOptions
{
    CompoundOptions compound;

    /**
     * Run Compound at all. False is the degradation ladder's identity
     * rung: the "transformed" program is a verbatim copy, so every
     * downstream consumer (simulation, reporting) still works.
     */
    bool transform = true;

    /** Build the legality-ignoring ideal version and its access stats
     *  (Table 5). The batch driver turns this off — it reports real
     *  outcomes only — which roughly halves per-program analysis cost. */
    bool computeIdeal = true;

    /** Concrete size at which cost-ratio polynomials are evaluated. */
    double evalN = 64.0;
};

/** Run the full pipeline on one program. */
OptimizedProgram optimizeProgram(const Program &input,
                                 const ModelParams &params,
                                 const PipelineOptions &opts);

/** Legacy form: default options with fusion toggled. */
OptimizedProgram optimizeProgram(const Program &input,
                                 const ModelParams &params,
                                 bool applyFusion = true,
                                 double evalN = 64.0);

/** Simulated hit rates, cold misses excluded (Table 4). */
struct HitRates
{
    double optOrig = 100.0;
    double optFinal = 100.0;
    double wholeOrig = 100.0;
    double wholeFinal = 100.0;
};

/** Simulate one optimized program against a cache configuration. */
HitRates simulateHitRates(const OptimizedProgram &opt,
                          const CacheConfig &config);

/**
 * Simulate one optimized program against several cache configurations
 * in a single sweep (interp::runWithCaches): each program version —
 * whole original, whole transformed, and the optimized-nests
 * sub-programs when any nest changed — is interpreted **once** and its
 * access stream feeds every configuration in lockstep. Returns one
 * HitRates per configuration, in order. Counters match independent
 * simulateHitRates calls exactly; only the interpreter passes (the
 * expensive part, ×N configs before) are shared.
 */
std::vector<HitRates> simulateHitRatesSweep(
    const OptimizedProgram &opt,
    const std::vector<CacheConfig> &configs);

/** Simulated performance (Tables 1 and 3). */
struct Performance
{
    double origCycles = 0.0;
    double finalCycles = 0.0;

    double
    speedup() const
    {
        return finalCycles > 0.0 ? origCycles / finalCycles : 1.0;
    }
};

Performance simulatePerformance(const OptimizedProgram &opt,
                                const CacheConfig &config,
                                const MachineModel &machine = {});

/** Access statistics of a whole program (every depth>=2 nest). */
AccessStats programAccessStats(Program &prog, const ModelParams &params);

/** Aggregate LoopCost (nestCost summed over depth>=2 nests). */
Poly programNestCost(Program &prog, const ModelParams &params);

} // namespace memoria

#endif // MEMORIA_DRIVER_MEMORIA_HH
