/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The synthetic corpus and the property tests must be reproducible across
 * runs and platforms, so we carry our own tiny PRNG (splitmix64) instead
 * of relying on implementation-defined std::rand or distribution details.
 */

#ifndef MEMORIA_SUPPORT_RNG_HH
#define MEMORIA_SUPPORT_RNG_HH

#include <cstdint>

namespace memoria {

/** Splitmix64: tiny, fast, deterministic PRNG with full 64-bit state. */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability num/den. */
    bool
    chance(uint64_t num, uint64_t den)
    {
        return below(den) < num;
    }

  private:
    uint64_t state_;
};

} // namespace memoria

#endif // MEMORIA_SUPPORT_RNG_HH
