/**
 * @file
 * Structured event tracing for the Memoria pipeline.
 *
 * The pipeline emits two kinds of records: point *events*
 * (`traceEvent`) and RAII *spans* (`TraceScope`) that measure
 * wall-clock time and nest, so per-pass timing falls out of the scope
 * structure for free. Every record carries a category (`pass.compound`,
 * `cachesim`, ...), a name, and a flat key/value payload.
 *
 * Records flow into one process-wide pluggable `TraceSink`: none (the
 * default — `tracingEnabled()` is a single pointer test, so an
 * uninstrumented run pays nothing), a human-readable text sink, a
 * JSON-lines writer, or an in-memory recording sink for tests. Hot
 * paths must guard payload construction with `tracingEnabled()`.
 *
 * Emission is safe from multiple threads (the batch driver's worker
 * pool traces concurrently): records get a process-wide atomic sequence
 * number, span depth is per-thread, and sink calls are serialized by a
 * mutex — sinks themselves need no locking. See docs/OBSERVABILITY.md
 * for the event schema.
 */

#ifndef MEMORIA_SUPPORT_TRACE_HH
#define MEMORIA_SUPPORT_TRACE_HH

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace memoria {
namespace obs {

/** One typed payload value (string, integer, float, or bool). */
class TraceValue
{
  public:
    enum class Kind { Str, Int, Float, Bool };

    TraceValue(const char *s) : kind_(Kind::Str), str_(s) {}
    TraceValue(std::string s) : kind_(Kind::Str), str_(std::move(s)) {}
    TraceValue(bool b) : kind_(Kind::Bool), int_(b ? 1 : 0) {}
    TraceValue(double f) : kind_(Kind::Float), float_(f) {}
    /** Any integral type (bool is caught by the overload above). */
    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T>>>
    TraceValue(T i) : kind_(Kind::Int), int_(static_cast<int64_t>(i))
    {
    }

    Kind kind() const { return kind_; }

    /** Human-readable rendering (unquoted strings). */
    std::string render() const;

    /** JSON rendering (quoted/escaped strings, true/false, numbers). */
    std::string renderJson() const;

  private:
    Kind kind_;
    std::string str_;
    int64_t int_ = 0;
    double float_ = 0.0;
};

using TraceArg = std::pair<std::string, TraceValue>;

/** One trace record, point event or completed span. */
struct TraceEvent
{
    enum class Type { Event, SpanBegin, SpanEnd };

    Type type = Type::Event;
    std::string category;
    std::string name;
    std::vector<TraceArg> args;

    /** Span-nesting depth at emission (0 = top level). */
    int depth = 0;

    /** Wall-clock duration; valid for SpanEnd records only. */
    double durationUs = 0.0;

    /** Monotonically increasing per-process sequence number. */
    uint64_t seq = 0;
};

/** Destination for trace records. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    virtual void event(const TraceEvent &e) = 0;

    /** Push buffered output to durable storage (called on crash). */
    virtual void flush() {}
};

/** Indented human-readable lines on an ostream (not owned). */
class TextSink : public TraceSink
{
  public:
    explicit TextSink(std::ostream &out) : out_(out) {}

    void event(const TraceEvent &e) override;
    void flush() override;

  private:
    std::ostream &out_;
};

/** One JSON object per line, written to a file the sink owns. */
class JsonLinesSink : public TraceSink
{
  public:
    /** Opens `path` for writing; calls fatal() when it cannot. */
    explicit JsonLinesSink(const std::string &path);

    /** Writes to a caller-owned stream (tests). */
    explicit JsonLinesSink(std::ostream &out);

    ~JsonLinesSink() override;

    void event(const TraceEvent &e) override;
    void flush() override;

  private:
    std::unique_ptr<std::ostream> owned_;
    std::ostream *out_;
};

/** Buffers every record in memory; the test suite's sink. */
class RecordingSink : public TraceSink
{
  public:
    void event(const TraceEvent &e) override { events.push_back(e); }

    std::vector<TraceEvent> events;
};

/**
 * Keeps the last `capacity` records as rendered JSON lines — the
 * "flight recorder" behind incident bundles (harness/incident.hh):
 * when a contained failure is captured, the bundle includes the tail
 * of recent trace activity even when no file sink was requested.
 *
 * The most recently constructed RingSink is reachable via
 * `RingSink::instance()`; it may be a direct sink or one leg of a
 * TeeSink. snapshot() is thread-safe.
 */
class RingSink : public TraceSink
{
  public:
    explicit RingSink(size_t capacity = 256);
    ~RingSink() override;

    void event(const TraceEvent &e) override;

    /** Oldest-first copy of the buffered lines. */
    std::vector<std::string> snapshot() const;

    /** The live ring, or nullptr when none is installed. */
    static RingSink *instance();

  private:
    mutable std::mutex mutex_;
    size_t capacity_;
    size_t next_ = 0;
    std::vector<std::string> lines_;  ///< circular once full
};

/** Forwards every record to two child sinks (file + ring, say). */
class TeeSink : public TraceSink
{
  public:
    TeeSink(std::unique_ptr<TraceSink> a, std::unique_ptr<TraceSink> b)
        : a_(std::move(a)), b_(std::move(b))
    {
    }

    void
    event(const TraceEvent &e) override
    {
        if (a_)
            a_->event(e);
        if (b_)
            b_->event(e);
    }

    void
    flush() override
    {
        if (a_)
            a_->flush();
        if (b_)
            b_->flush();
    }

  private:
    std::unique_ptr<TraceSink> a_;
    std::unique_ptr<TraceSink> b_;
};

namespace detail {
/** Raw sink pointer, read on every trace check — null means disabled. */
extern TraceSink *sinkPtr;
} // namespace detail

/** True when a sink is installed; the null fast path is this one test. */
inline bool
tracingEnabled()
{
    return detail::sinkPtr != nullptr;
}

/**
 * Install (or, with nullptr, remove) the process-wide sink. The
 * previous sink is flushed before being destroyed.
 */
void setTraceSink(std::unique_ptr<TraceSink> sink);

/** The installed sink, or nullptr. Ownership stays with the tracer. */
TraceSink *traceSink();

/** Flush the installed sink, if any; safe to call from fatal/panic. */
void flushTrace();

/**
 * Best-effort flush for signal handlers: uses try_lock so a handler
 * that interrupted an in-progress emit skips the flush instead of
 * deadlocking. Returns false when the lock was contended.
 */
bool tryFlushTrace();

/** Render one record as the JSON-lines sink would (no newline). */
std::string renderTraceJson(const TraceEvent &e);

/**
 * Emit a point event. Callers on hot paths should guard with
 * `tracingEnabled()` so the payload is never built when disabled.
 */
void traceEvent(std::string category, std::string name,
                std::initializer_list<TraceArg> args = {});

/** Payload-vector overload for dynamically built argument lists. */
void traceEvent(std::string category, std::string name,
                std::vector<TraceArg> args);

/**
 * RAII span: emits SpanBegin on construction and SpanEnd (carrying the
 * accumulated args and the wall-clock duration) on destruction. When no
 * sink is installed the scope is inert and costs one branch.
 */
class TraceScope
{
  public:
    TraceScope(std::string category, std::string name);
    ~TraceScope();

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    /** Attach one payload entry to the eventual SpanEnd record. */
    void arg(std::string key, TraceValue value);

    /** Whether this span is live (a sink existed at construction). */
    bool active() const { return active_; }

  private:
    bool active_ = false;
    std::string category_;
    std::string name_;
    std::vector<TraceArg> args_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace obs
} // namespace memoria

#endif // MEMORIA_SUPPORT_TRACE_HH
