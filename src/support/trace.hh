/**
 * @file
 * Structured event tracing for the Memoria pipeline.
 *
 * The pipeline emits two kinds of records: point *events*
 * (`traceEvent`) and RAII *spans* (`TraceScope`) that measure
 * wall-clock time and nest, so per-pass timing falls out of the scope
 * structure for free. Every record carries a category (`pass.compound`,
 * `cachesim`, ...), a name, and a flat key/value payload.
 *
 * Records flow into one process-wide pluggable `TraceSink`: none (the
 * default — `tracingEnabled()` is a single pointer test, so an
 * uninstrumented run pays nothing), a human-readable text sink, a
 * JSON-lines writer, or an in-memory recording sink for tests. Hot
 * paths must guard payload construction with `tracingEnabled()`.
 *
 * Emission is safe from multiple threads (the batch driver's worker
 * pool traces concurrently): records get a process-wide atomic sequence
 * number, span depth is per-thread, and sink calls are serialized by a
 * mutex — sinks themselves need no locking. See docs/OBSERVABILITY.md
 * for the event schema.
 */

#ifndef MEMORIA_SUPPORT_TRACE_HH
#define MEMORIA_SUPPORT_TRACE_HH

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace memoria {
namespace obs {

/** One typed payload value (string, integer, float, or bool). */
class TraceValue
{
  public:
    enum class Kind { Str, Int, Float, Bool };

    TraceValue(const char *s) : kind_(Kind::Str), str_(s) {}
    TraceValue(std::string s) : kind_(Kind::Str), str_(std::move(s)) {}
    TraceValue(bool b) : kind_(Kind::Bool), int_(b ? 1 : 0) {}
    TraceValue(double f) : kind_(Kind::Float), float_(f) {}
    /** Any integral type (bool is caught by the overload above). */
    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T>>>
    TraceValue(T i) : kind_(Kind::Int), int_(static_cast<int64_t>(i))
    {
    }

    Kind kind() const { return kind_; }

    /** Human-readable rendering (unquoted strings). */
    std::string render() const;

    /** JSON rendering (quoted/escaped strings, true/false, numbers). */
    std::string renderJson() const;

  private:
    Kind kind_;
    std::string str_;
    int64_t int_ = 0;
    double float_ = 0.0;
};

using TraceArg = std::pair<std::string, TraceValue>;

/** One trace record, point event or completed span. */
struct TraceEvent
{
    enum class Type { Event, SpanBegin, SpanEnd };

    Type type = Type::Event;
    std::string category;
    std::string name;
    std::vector<TraceArg> args;

    /** Span-nesting depth at emission (0 = top level). */
    int depth = 0;

    /** Wall-clock duration; valid for SpanEnd records only. */
    double durationUs = 0.0;

    /** Monotonically increasing per-process sequence number. */
    uint64_t seq = 0;

    /** Request-scoped trace context at emission ("" / 0 = none).
     *  Stamped by the emitter from the thread's TraceContext. */
    std::string traceId;
    uint64_t spanId = 0;
};

/**
 * Request-scoped trace context, carried in a thread-local and stamped
 * into every record the thread emits: the serve layer installs one
 * per request (accepting a client-supplied `trace_id` or minting one),
 * and because `harness::runIsolated` and everything below it run
 * synchronously on the worker thread, Compound / oracle / cachesim
 * spans inherit the id with no parameter threading. `spanId` is the id
 * of the innermost active TraceScope within the context (0 at top
 * level); span ids are process-unique.
 */
struct TraceContext
{
    std::string traceId;
    uint64_t spanId = 0;
};

/** This thread's current context ({} when none is installed). */
const TraceContext &currentTraceContext();

/** Process-unique trace id (16 hex chars, "t" prefix). */
std::string makeTraceId();

/**
 * RAII installer: sets this thread's trace id for the scope's
 * lifetime and restores the previous context on destruction. An empty
 * id installs an explicit "no context" (useful in tests).
 */
class TraceContextScope
{
  public:
    explicit TraceContextScope(std::string traceId);
    ~TraceContextScope();

    TraceContextScope(const TraceContextScope &) = delete;
    TraceContextScope &operator=(const TraceContextScope &) = delete;

  private:
    TraceContext saved_;
};

/**
 * Per-request stage-time accumulator (thread-local, microseconds).
 * `harness::runIsolated` resets it on entry and copies the totals into
 * `ProgramOutcome::timings`; the stages add their elapsed time from
 * wherever they run (load/simulate in the harness, verify inside
 * Compound's guard) — so the serve layer can stamp a per-stage
 * breakdown into every response without plumbing a parameter through
 * the pipeline.
 */
struct StageTimes
{
    double loadUs = 0.0;
    double optimizeUs = 0.0;
    double verifyUs = 0.0;
    double simulateUs = 0.0;

    void reset() { *this = StageTimes{}; }
};

/** This thread's accumulator (mutable; callers add elapsed time). */
StageTimes &stageTimes();

/** RAII: adds its wall-clock lifetime to one StageTimes field. */
class StageTimer
{
  public:
    explicit StageTimer(double StageTimes::*field);
    ~StageTimer();

    StageTimer(const StageTimer &) = delete;
    StageTimer &operator=(const StageTimer &) = delete;

  private:
    double StageTimes::*field_;
    std::chrono::steady_clock::time_point start_;
};

/** Destination for trace records. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    virtual void event(const TraceEvent &e) = 0;

    /** Push buffered output to durable storage (called on crash). */
    virtual void flush() {}
};

/** Indented human-readable lines on an ostream (not owned). */
class TextSink : public TraceSink
{
  public:
    explicit TextSink(std::ostream &out) : out_(out) {}

    void event(const TraceEvent &e) override;
    void flush() override;

  private:
    std::ostream &out_;
};

/** One JSON object per line, written to a file the sink owns. */
class JsonLinesSink : public TraceSink
{
  public:
    /** Opens `path` for writing; calls fatal() when it cannot. */
    explicit JsonLinesSink(const std::string &path);

    /** Writes to a caller-owned stream (tests). */
    explicit JsonLinesSink(std::ostream &out);

    ~JsonLinesSink() override;

    void event(const TraceEvent &e) override;
    void flush() override;

  private:
    std::unique_ptr<std::ostream> owned_;
    std::ostream *out_;
};

/** Buffers every record in memory; the test suite's sink. */
class RecordingSink : public TraceSink
{
  public:
    void event(const TraceEvent &e) override { events.push_back(e); }

    std::vector<TraceEvent> events;
};

/**
 * Keeps the last `capacity` records as rendered JSON lines — the
 * "flight recorder" behind incident bundles (harness/incident.hh):
 * when a contained failure is captured, the bundle includes the tail
 * of recent trace activity even when no file sink was requested.
 *
 * The most recently constructed RingSink is reachable via
 * `RingSink::instance()`; it may be a direct sink or one leg of a
 * TeeSink. snapshot() is thread-safe.
 */
class RingSink : public TraceSink
{
  public:
    explicit RingSink(size_t capacity = 256);
    ~RingSink() override;

    void event(const TraceEvent &e) override;

    /** Oldest-first copy of the buffered lines. */
    std::vector<std::string> snapshot() const;

    /**
     * Oldest-first copy of only the lines emitted under `traceId` —
     * the flight-recorder tail of one request. An empty id matches
     * records emitted with no context installed.
     */
    std::vector<std::string> snapshotFor(const std::string &traceId) const;

    /** The live ring, or nullptr when none is installed. */
    static RingSink *instance();

  private:
    struct Entry
    {
        std::string traceId;
        std::string line;
    };

    mutable std::mutex mutex_;
    size_t capacity_;
    size_t next_ = 0;
    std::vector<Entry> entries_;  ///< circular once full
};

/** Forwards every record to two child sinks (file + ring, say). */
class TeeSink : public TraceSink
{
  public:
    TeeSink(std::unique_ptr<TraceSink> a, std::unique_ptr<TraceSink> b)
        : a_(std::move(a)), b_(std::move(b))
    {
    }

    void
    event(const TraceEvent &e) override
    {
        if (a_)
            a_->event(e);
        if (b_)
            b_->event(e);
    }

    void
    flush() override
    {
        if (a_)
            a_->flush();
        if (b_)
            b_->flush();
    }

  private:
    std::unique_ptr<TraceSink> a_;
    std::unique_ptr<TraceSink> b_;
};

namespace detail {
/** Raw sink pointer, read on every trace check — null means disabled. */
extern TraceSink *sinkPtr;
} // namespace detail

/** True when a sink is installed; the null fast path is this one test. */
inline bool
tracingEnabled()
{
    return detail::sinkPtr != nullptr;
}

/**
 * Install (or, with nullptr, remove) the process-wide sink. The
 * previous sink is flushed before being destroyed.
 */
void setTraceSink(std::unique_ptr<TraceSink> sink);

/** The installed sink, or nullptr. Ownership stays with the tracer. */
TraceSink *traceSink();

/** Flush the installed sink, if any; safe to call from fatal/panic. */
void flushTrace();

/**
 * Best-effort flush for signal handlers: uses try_lock so a handler
 * that interrupted an in-progress emit skips the flush instead of
 * deadlocking. Returns false when the lock was contended.
 */
bool tryFlushTrace();

/** Render one record as the JSON-lines sink would (no newline). */
std::string renderTraceJson(const TraceEvent &e);

/**
 * Emit a point event. Callers on hot paths should guard with
 * `tracingEnabled()` so the payload is never built when disabled.
 */
void traceEvent(std::string category, std::string name,
                std::initializer_list<TraceArg> args = {});

/** Payload-vector overload for dynamically built argument lists. */
void traceEvent(std::string category, std::string name,
                std::vector<TraceArg> args);

/**
 * RAII span: emits SpanBegin on construction and SpanEnd (carrying the
 * accumulated args and the wall-clock duration) on destruction. When no
 * sink is installed the scope is inert and costs one branch.
 */
class TraceScope
{
  public:
    TraceScope(std::string category, std::string name);
    ~TraceScope();

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    /** Attach one payload entry to the eventual SpanEnd record. */
    void arg(std::string key, TraceValue value);

    /** Whether this span is live (a sink existed at construction). */
    bool active() const { return active_; }

  private:
    bool active_ = false;
    std::string category_;
    std::string name_;
    std::vector<TraceArg> args_;
    std::chrono::steady_clock::time_point start_;
    /** This span's id within the request context (0 = no context);
     *  the parent's id is restored on destruction. */
    uint64_t spanId_ = 0;
    uint64_t parentSpanId_ = 0;
};

} // namespace obs
} // namespace memoria

#endif // MEMORIA_SUPPORT_TRACE_HH
