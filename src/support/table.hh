/**
 * @file
 * Plain-text table formatting for the benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figures;
 * TextTable renders aligned rows in the style of the paper so outputs can
 * be compared side by side with the published numbers.
 */

#ifndef MEMORIA_SUPPORT_TABLE_HH
#define MEMORIA_SUPPORT_TABLE_HH

#include <string>
#include <vector>

namespace memoria {

/** Column-aligned plain-text table with an optional title and rules. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a data row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal rule between row groups. */
    void addRule();

    /** Render the whole table. */
    std::string str() const;

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Format a percentage (already in 0..100). */
    static std::string pct(double v, int precision = 0);

  private:
    std::vector<std::string> headers_;
    /** Empty vector encodes a rule row. */
    std::vector<std::vector<std::string>> rows_;
};

/** Render a horizontal ASCII bar of the given width fraction. */
std::string asciiBar(double fraction, int width);

} // namespace memoria

#endif // MEMORIA_SUPPORT_TABLE_HH
