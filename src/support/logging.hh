/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * `fatal` terminates because the *user* asked for something impossible
 * (bad configuration, malformed program); `panic` terminates because the
 * library itself is broken (violated internal invariant). `warn` and
 * `inform` report without terminating.
 *
 * Output is gated by a process-wide verbosity level, initialized from
 * the MEMORIA_LOG_LEVEL environment variable (`quiet`, `warn`, `info`,
 * `debug`, or 0..3) and adjustable via the CLI's -v/-q flags. When a
 * trace sink is installed (support/trace.hh) every message is also
 * emitted as a `log` trace event, and `fatal`/`panic` flush the sink
 * before terminating so a crashing run still yields a usable trace.
 */

#ifndef MEMORIA_SUPPORT_LOGGING_HH
#define MEMORIA_SUPPORT_LOGGING_HH

#include <sstream>
#include <string>

namespace memoria {

/** Verbosity threshold: a message prints when its level <= current. */
enum class LogLevel
{
    Quiet = 0,  ///< only fatal/panic reach stderr
    Warn = 1,   ///< + warnings (the default)
    Info = 2,   ///< + informational messages
    Debug = 3,  ///< + debug chatter
};

/** Current verbosity (lazily initialized from MEMORIA_LOG_LEVEL). */
LogLevel logLevel();

/** Override the verbosity (CLI -v/-q flags). */
void setLogLevel(LogLevel level);

/** Terminate with a user-level error message (exit code 1). */
[[noreturn]] void fatal(const std::string &msg);

/** Terminate with an internal-invariant violation message (aborts). */
[[noreturn]] void panic(const std::string &msg);

/** Print a non-fatal warning to stderr (level >= Warn). */
void warn(const std::string &msg);

/** Print an informational message to stderr (level >= Info). */
void inform(const std::string &msg);

/** Print a debug message to stderr (level >= Debug). */
void debugLog(const std::string &msg);

/**
 * Check an internal invariant; calls panic with the failing condition
 * and location when it does not hold.
 */
#define MEMORIA_ASSERT(cond, msg)                                         \
    do {                                                                  \
        if (!(cond)) {                                                    \
            std::ostringstream os_;                                       \
            os_ << "assertion '" #cond "' failed at " << __FILE__ << ":"  \
                << __LINE__ << ": " << msg;                               \
            ::memoria::panic(os_.str());                                  \
        }                                                                 \
    } while (0)

} // namespace memoria

#endif // MEMORIA_SUPPORT_LOGGING_HH
