/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * `fatal` terminates because the *user* asked for something impossible
 * (bad configuration, malformed program); `panic` terminates because the
 * library itself is broken (violated internal invariant). `warn` and
 * `inform` report without terminating.
 */

#ifndef MEMORIA_SUPPORT_LOGGING_HH
#define MEMORIA_SUPPORT_LOGGING_HH

#include <sstream>
#include <string>

namespace memoria {

/** Terminate with a user-level error message (exit code 1). */
[[noreturn]] void fatal(const std::string &msg);

/** Terminate with an internal-invariant violation message (aborts). */
[[noreturn]] void panic(const std::string &msg);

/** Print a non-fatal warning to stderr. */
void warn(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/**
 * Check an internal invariant; calls panic with the failing condition
 * and location when it does not hold.
 */
#define MEMORIA_ASSERT(cond, msg)                                         \
    do {                                                                  \
        if (!(cond)) {                                                    \
            std::ostringstream os_;                                       \
            os_ << "assertion '" #cond "' failed at " << __FILE__ << ":"  \
                << __LINE__ << ": " << msg;                               \
            ::memoria::panic(os_.str());                                  \
        }                                                                 \
    } while (0)

} // namespace memoria

#endif // MEMORIA_SUPPORT_LOGGING_HH
