#include "support/logging.hh"

#include <cstdlib>
#include <iostream>

namespace memoria {

void
fatal(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
warn(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
inform(const std::string &msg)
{
    std::cerr << "info: " << msg << std::endl;
}

} // namespace memoria
