#include "support/logging.hh"

#include <cstdlib>
#include <iostream>

#include "support/trace.hh"

namespace memoria {

namespace {

LogLevel
levelFromEnv()
{
    const char *env = std::getenv("MEMORIA_LOG_LEVEL");
    if (!env)
        return LogLevel::Warn;
    std::string s(env);
    if (s == "quiet" || s == "0")
        return LogLevel::Quiet;
    if (s == "warn" || s == "1")
        return LogLevel::Warn;
    if (s == "info" || s == "2")
        return LogLevel::Info;
    if (s == "debug" || s == "3")
        return LogLevel::Debug;
    std::cerr << "warn: unknown MEMORIA_LOG_LEVEL '" << s
              << "' (want quiet|warn|info|debug or 0..3)\n";
    return LogLevel::Warn;
}

LogLevel &
currentLevel()
{
    static LogLevel level = levelFromEnv();
    return level;
}

/** Print to stderr when allowed; always mirror into the trace sink. */
void
report(LogLevel level, const char *tag, const std::string &msg)
{
    if (obs::tracingEnabled())
        obs::traceEvent("log", tag, {{"msg", msg}});
    if (level <= currentLevel())
        std::cerr << tag << ": " << msg << std::endl;
}

} // namespace

LogLevel
logLevel()
{
    return currentLevel();
}

void
setLogLevel(LogLevel level)
{
    currentLevel() = level;
}

void
fatal(const std::string &msg)
{
    if (obs::tracingEnabled())
        obs::traceEvent("log", "fatal", {{"msg", msg}});
    obs::flushTrace();
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
panic(const std::string &msg)
{
    if (obs::tracingEnabled())
        obs::traceEvent("log", "panic", {{"msg", msg}});
    obs::flushTrace();
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
warn(const std::string &msg)
{
    report(LogLevel::Warn, "warn", msg);
}

void
inform(const std::string &msg)
{
    report(LogLevel::Info, "info", msg);
}

void
debugLog(const std::string &msg)
{
    report(LogLevel::Debug, "debug", msg);
}

} // namespace memoria
