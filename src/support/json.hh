/**
 * @file
 * Minimal JSON value model, parser, and serializer.
 *
 * The serve protocol (src/serve/protocol.hh) speaks JSON lines and the
 * incident-bundle reader (`memoria reduce`) consumes incident.json, so
 * the toolkit needs to *parse* JSON, not just emit it. This is a small
 * recursive-descent parser with the robustness properties the rest of
 * the codebase expects from input handling:
 *
 *  - hostile input cannot crash it: nesting depth is bounded (so deeply
 *    nested arrays produce a Diag instead of exhausting the stack), and
 *    every error carries the byte offset of the offending character;
 *  - numbers parse via strtod; \uXXXX escapes decode to UTF-8
 *    (surrogate pairs included);
 *  - trailing garbage after the top-level value is an error, so a
 *    truncated or concatenated line is rejected rather than silently
 *    half-read.
 *
 * Values are an immutable-after-parse tagged tree; the accessors are
 * total (they return fallbacks rather than throwing) so protocol code
 * reads optional fields without pre-checking shape.
 */

#ifndef MEMORIA_SUPPORT_JSON_HH
#define MEMORIA_SUPPORT_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/diag.hh"

namespace memoria {
namespace json {

class Value;

/** Object member order follows the source text (stable round trips). */
using Member = std::pair<std::string, Value>;

/** One JSON value. */
class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Value() = default;

    static Value null() { return Value(); }
    static Value boolean(bool b);
    static Value number(double v);
    static Value number(int64_t v);
    static Value string(std::string s);
    static Value array(std::vector<Value> items = {});
    static Value object(std::vector<Member> members = {});

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Total accessors: the fallback is returned on kind mismatch. */
    bool asBool(bool fallback = false) const;
    double asNumber(double fallback = 0.0) const;
    int64_t asInt(int64_t fallback = 0) const;
    const std::string &asString() const;  ///< empty on mismatch
    std::string asString(const std::string &fallback) const;

    /** Array/object contents (empty on kind mismatch). */
    const std::vector<Value> &items() const;
    const std::vector<Member> &members() const;

    /** Object member by key, or nullptr. */
    const Value *get(const std::string &key) const;

    /** Shorthands over get(): fallback when absent or wrong kind. */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;
    int64_t getInt(const std::string &key, int64_t fallback = 0) const;
    double getNumber(const std::string &key, double fallback = 0.0) const;
    bool getBool(const std::string &key, bool fallback = false) const;

    /** Append helpers for building responses. */
    void push(Value v);                       ///< arrays
    void set(std::string key, Value v);       ///< objects (no dedup)

    /** Compact serialization (RFC 8259; keys in insertion order). */
    std::string dump() const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Value> items_;
    std::vector<Member> members_;
};

/** Parser limits. */
struct ParseOptions
{
    /** Maximum array/object nesting. */
    int maxDepth = 64;

    /** Maximum input size in bytes (0 = unlimited). */
    size_t maxBytes = 4u << 20;

    /**
     * Maximum number of parsed values (0 = unlimited). A `Value` is
     * much larger than its two-byte source ("[]"), so without this cap
     * a small hostile input amplifies ~60x into parsed-tree memory.
     */
    size_t maxNodes = 1u << 20;
};

/**
 * Parse one complete JSON value from `text`. Errors come back as a
 * Diag with the byte offset in the message and one of two codes:
 * "json.parse" for malformed input, "json.limit" when the input is
 * well-formed but exceeds a ParseOptions resource cap (size, nesting
 * depth, node count) — servers map the latter to `protocol.too-large`.
 */
Result<Value> parse(const std::string &text, const ParseOptions &opts = {});

/** Escape and quote `s` as a JSON string literal. */
std::string quote(const std::string &s);

} // namespace json
} // namespace memoria

#endif // MEMORIA_SUPPORT_JSON_HH
