#include "support/stats.hh"

#include <chrono>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace memoria {
namespace obs {

namespace {

double
nowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Render a double compactly and JSON-valid (no inf/nan). */
std::string
num(double v)
{
    std::ostringstream os;
    os << v;
    std::string s = os.str();
    if (s == "inf" || s == "-inf" || s == "nan" || s == "-nan")
        return "0";
    return s;
}

std::string
quoted(const std::string &s)
{
    // Stat names are code-chosen dotted identifiers; no escaping needed
    // beyond the quotes themselves.
    return "\"" + s + "\"";
}

} // namespace

ScopedTimer::ScopedTimer(Histogram &h) : hist_(h), startUs_(nowUs()) {}

ScopedTimer::~ScopedTimer()
{
    hist_.sample(nowUs() - startUs_);
}

Counter &
StatsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
StatsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
StatsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void
StatsRegistry::dumpText(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t width = 0;
    for (const auto &[name, c] : counters_)
        width = std::max(width, name.size());
    for (const auto &[name, g] : gauges_)
        width = std::max(width, name.size());
    for (const auto &[name, h] : histograms_)
        width = std::max(width, name.size());

    out << "---------- stats ----------\n";
    for (const auto &[name, c] : counters_)
        out << std::left << std::setw(static_cast<int>(width)) << name
            << "  " << c->value() << "\n";
    for (const auto &[name, g] : gauges_)
        out << std::left << std::setw(static_cast<int>(width)) << name
            << "  " << num(g->value()) << "\n";
    for (const auto &[name, h] : histograms_)
        out << std::left << std::setw(static_cast<int>(width)) << name
            << "  count=" << h->count() << " sum=" << num(h->sum())
            << " min=" << num(h->min()) << " max=" << num(h->max())
            << " mean=" << num(h->mean()) << "\n";
    out << "---------------------------\n";
}

void
StatsRegistry::dumpJson(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    out << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        if (!first)
            out << ",";
        first = false;
        out << quoted(name) << ":" << c->value();
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto &[name, g] : gauges_) {
        if (!first)
            out << ",";
        first = false;
        out << quoted(name) << ":" << num(g->value());
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms_) {
        if (!first)
            out << ",";
        first = false;
        out << quoted(name) << ":{\"count\":" << h->count()
            << ",\"sum\":" << num(h->sum()) << ",\"min\":" << num(h->min())
            << ",\"max\":" << num(h->max())
            << ",\"mean\":" << num(h->mean()) << "}";
    }
    out << "}}\n";
}

void
StatsRegistry::resetValues()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

StatsRegistry &
statsRegistry()
{
    static StatsRegistry registry;
    return registry;
}

Counter &
counter(const std::string &name)
{
    return statsRegistry().counter(name);
}

Gauge &
gauge(const std::string &name)
{
    return statsRegistry().gauge(name);
}

Histogram &
histogram(const std::string &name)
{
    return statsRegistry().histogram(name);
}

} // namespace obs
} // namespace memoria
