#include "support/stats.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace memoria {
namespace obs {

namespace {

double
nowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Render a double compactly and JSON-valid (no inf/nan). */
std::string
num(double v)
{
    std::ostringstream os;
    os << v;
    std::string s = os.str();
    if (s == "inf" || s == "-inf" || s == "nan" || s == "-nan")
        return "0";
    return s;
}

std::string
quoted(const std::string &s)
{
    // Stat names are code-chosen dotted identifiers; no escaping needed
    // beyond the quotes themselves.
    return "\"" + s + "\"";
}

} // namespace

double
Histogram::bucketUpperEdge(int b)
{
    if (b <= 0)
        return 1.0;
    if (b >= kNumBuckets - 1)
        return std::numeric_limits<double>::infinity();
    return std::exp2(0.5 * b);
}

int
Histogram::bucketIndex(double v)
{
    if (!(v >= 1.0))  // negatives and NaN land in bucket 0 too
        return 0;
    // 2*log2(v) is within one of the true index; the edge comparisons
    // below make the result exactly consistent with bucketUpperEdge.
    int b = static_cast<int>(std::floor(2.0 * std::log2(v))) + 1;
    b = std::clamp(b, 1, kNumBuckets - 1);
    while (b > 0 && v < bucketUpperEdge(b - 1))
        --b;
    while (b < kNumBuckets - 1 && v >= bucketUpperEdge(b))
        ++b;
    return b;
}

double
Histogram::quantileLocked(double q) const
{
    if (count_ == 0)
        return 0.0;
    // The extremes are tracked exactly; only interior quantiles pay
    // the bucket-resolution error.
    if (q <= 0.0)
        return min_;
    if (q >= 1.0)
        return max_;

    // Nearest-rank: the bucket holding the ceil(q*count)-th sample.
    uint64_t rank = static_cast<uint64_t>(std::ceil(q * count_));
    rank = std::clamp<uint64_t>(rank, 1, count_);

    uint64_t cum = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
        if (buckets_[b] == 0)
            continue;
        if (cum + buckets_[b] < rank) {
            cum += buckets_[b];
            continue;
        }
        // Interpolate within the bucket; the overflow bucket and
        // bucket 0 use the observed extremes as their open edge.
        double lo = b == 0 ? std::min(min_, 0.0)
                           : bucketUpperEdge(b - 1);
        double hi = b == kNumBuckets - 1 ? std::max(max_, lo)
                                         : bucketUpperEdge(b);
        double frac = static_cast<double>(rank - cum) / buckets_[b];
        double v = lo + frac * (hi - lo);
        return std::clamp(v, min_, max_);
    }
    return max_;
}

double
Histogram::quantile(double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return quantileLocked(q);
}

Histogram::Snapshot
Histogram::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot s;
    s.count = count_;
    s.sum = sum_;
    s.min = count_ ? min_ : 0.0;
    s.max = count_ ? max_ : 0.0;
    s.buckets = buckets_;
    return s;
}

ScopedTimer::ScopedTimer(Histogram &h) : hist_(h), startUs_(nowUs()) {}

ScopedTimer::~ScopedTimer()
{
    hist_.sample(nowUs() - startUs_);
}

Counter &
StatsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
StatsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
StatsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void
StatsRegistry::dumpText(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t width = 0;
    for (const auto &[name, c] : counters_)
        width = std::max(width, name.size());
    for (const auto &[name, g] : gauges_)
        width = std::max(width, name.size());
    for (const auto &[name, h] : histograms_)
        width = std::max(width, name.size());

    out << "---------- stats ----------\n";
    for (const auto &[name, c] : counters_)
        out << std::left << std::setw(static_cast<int>(width)) << name
            << "  " << c->value() << "\n";
    for (const auto &[name, g] : gauges_)
        out << std::left << std::setw(static_cast<int>(width)) << name
            << "  " << num(g->value()) << "\n";
    for (const auto &[name, h] : histograms_)
        out << std::left << std::setw(static_cast<int>(width)) << name
            << "  count=" << h->count() << " sum=" << num(h->sum())
            << " min=" << num(h->min()) << " max=" << num(h->max())
            << " mean=" << num(h->mean())
            << " p50=" << num(h->quantile(0.5))
            << " p99=" << num(h->quantile(0.99)) << "\n";
    out << "---------------------------\n";
}

void
StatsRegistry::dumpJson(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    out << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        if (!first)
            out << ",";
        first = false;
        out << quoted(name) << ":" << c->value();
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto &[name, g] : gauges_) {
        if (!first)
            out << ",";
        first = false;
        out << quoted(name) << ":" << num(g->value());
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms_) {
        if (!first)
            out << ",";
        first = false;
        out << quoted(name) << ":{\"count\":" << h->count()
            << ",\"sum\":" << num(h->sum()) << ",\"min\":" << num(h->min())
            << ",\"max\":" << num(h->max())
            << ",\"mean\":" << num(h->mean())
            << ",\"p50\":" << num(h->quantile(0.5))
            << ",\"p90\":" << num(h->quantile(0.9))
            << ",\"p99\":" << num(h->quantile(0.99)) << "}";
    }
    out << "}}\n";
}

void
StatsRegistry::resetValues()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

void
StatsRegistry::forEachCounter(
    const std::function<void(const std::string &, const Counter &)> &fn) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, c] : counters_)
        fn(name, *c);
}

void
StatsRegistry::forEachGauge(
    const std::function<void(const std::string &, const Gauge &)> &fn) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, g] : gauges_)
        fn(name, *g);
}

void
StatsRegistry::forEachHistogram(
    const std::function<void(const std::string &, const Histogram &)> &fn)
    const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, h] : histograms_)
        fn(name, *h);
}

StatsRegistry &
statsRegistry()
{
    static StatsRegistry registry;
    return registry;
}

Counter &
counter(const std::string &name)
{
    return statsRegistry().counter(name);
}

Gauge &
gauge(const std::string &name)
{
    return statsRegistry().gauge(name);
}

Histogram &
histogram(const std::string &name)
{
    return statsRegistry().histogram(name);
}

} // namespace obs
} // namespace memoria
