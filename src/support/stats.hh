/**
 * @file
 * Process-wide statistics registry in the gem5 tradition.
 *
 * Passes register named counters, gauges, and histograms lazily at
 * first use and bump them as they run; the driver dumps the whole
 * registry at exit as an aligned text table or as JSON. Names are
 * dotted paths grouped by subsystem (`pass.compound.nests_permuted`,
 * `cachesim.hits`, `interp.loop_iterations` — see
 * docs/OBSERVABILITY.md for the naming convention).
 *
 * Registration returns a stable reference, so hot call sites cache it
 * in a function-local static and pay only the increment:
 *
 *     static obs::Counter &hits = obs::counter("cachesim.hits");
 *     ++hits;
 *
 * `StatsRegistry::resetValues()` zeroes every value but keeps the
 * registrations (and therefore the cached references) valid — the test
 * suite calls it between cases.
 */

#ifndef MEMORIA_SUPPORT_STATS_HH
#define MEMORIA_SUPPORT_STATS_HH

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <string>

namespace memoria {
namespace obs {

/** Monotonically increasing event count. */
class Counter
{
  public:
    Counter &
    operator+=(uint64_t delta)
    {
        value_ += delta;
        return *this;
    }

    Counter &
    operator++()
    {
        ++value_;
        return *this;
    }

    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/** Last-written level (e.g. a configuration or a final ratio). */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Count/sum/min/max/mean over sampled values (e.g. timings in us). */
class Histogram
{
  public:
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** RAII wall-clock timer feeding a histogram in microseconds. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &h);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram &hist_;
    double startUs_;
};

/** Name-keyed store of all statistics; one instance per process. */
class StatsRegistry
{
  public:
    /** Find-or-create; references stay valid for the process lifetime. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Aligned name/value table, sorted by name. */
    void dumpText(std::ostream &out) const;

    /** One JSON object: {"counters":{...},"gauges":{...},...}. */
    void dumpJson(std::ostream &out) const;

    /** Zero every value; registrations (and references) survive. */
    void resetValues();

    bool
    empty() const
    {
        return counters_.empty() && gauges_.empty() && histograms_.empty();
    }

  private:
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** The process-wide registry. */
StatsRegistry &statsRegistry();

/** Shorthands for statsRegistry().counter(...) etc. */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histogram &histogram(const std::string &name);

} // namespace obs
} // namespace memoria

#endif // MEMORIA_SUPPORT_STATS_HH
