/**
 * @file
 * Process-wide statistics registry in the gem5 tradition.
 *
 * Passes register named counters, gauges, and histograms lazily at
 * first use and bump them as they run; the driver dumps the whole
 * registry at exit as an aligned text table or as JSON. Names are
 * dotted paths grouped by subsystem (`pass.compound.nests_permuted`,
 * `cachesim.hits`, `interp.loop_iterations` — see
 * docs/OBSERVABILITY.md for the naming convention).
 *
 * Registration returns a stable reference, so hot call sites cache it
 * in a function-local static and pay only the increment:
 *
 *     static obs::Counter &hits = obs::counter("cachesim.hits");
 *     ++hits;
 *
 * `StatsRegistry::resetValues()` zeroes every value but keeps the
 * registrations (and therefore the cached references) valid — the test
 * suite calls it between cases.
 */

#ifndef MEMORIA_SUPPORT_STATS_HH
#define MEMORIA_SUPPORT_STATS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace memoria {
namespace obs {

/**
 * Monotonically increasing event count.
 *
 * Increments are relaxed atomics so batch-mode worker threads can bump
 * shared counters concurrently; per-value totals are exact, but a dump
 * taken while workers run is a snapshot, not a consistent cut.
 */
class Counter
{
  public:
    Counter &
    operator+=(uint64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
        return *this;
    }

    Counter &
    operator++()
    {
        value_.fetch_add(1, std::memory_order_relaxed);
        return *this;
    }

    uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-written level (e.g. a configuration or a final ratio). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Count/sum/min/max/mean plus a fixed-boundary log-scaled bucket array
 * over sampled values (e.g. timings in us). Samples update the scalar
 * fields and one bucket together, so this one takes a mutex rather
 * than going atomic field-by-field.
 *
 * Bucket boundaries are *stable across processes and versions* so
 * exported series can be aggregated and compared: half-octave edges at
 * powers of sqrt(2). Bucket 0 holds everything below 1.0 (negatives
 * included); bucket b in [1, 62] holds [2^((b-1)/2), 2^(b/2)); bucket
 * 63 is the overflow bucket, [2^31, +inf). For microsecond timings the
 * finite edges span 1us through ~36 minutes. The edges are the
 * authoritative definition — `bucketIndex` is consistent with
 * `bucketUpperEdge` by construction, and tests/test_obs.cc pins them.
 */
class Histogram
{
  public:
    static constexpr int kNumBuckets = 64;

    /** Exclusive upper edge of bucket `b`: 1.0 for bucket 0,
     *  2^(b/2) for b in [1, 62], +infinity for bucket 63. */
    static double bucketUpperEdge(int b);

    /** Index of the bucket whose [lower, upper) range holds `v`. */
    static int bucketIndex(double v);

    void
    sample(double v)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++count_;
        sum_ += v;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
        ++buckets_[bucketIndex(v)];
    }

    uint64_t
    count() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return count_;
    }

    double
    sum() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return sum_;
    }

    double
    min() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return count_ ? min_ : 0.0;
    }

    double
    max() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return count_ ? max_ : 0.0;
    }

    double
    mean() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return count_ ? sum_ / count_ : 0.0;
    }

    /**
     * Quantile estimate from the fixed buckets, q clamped to [0, 1];
     * 0 when empty. The containing bucket is found exactly and the
     * value interpolated linearly within it, then clamped to
     * [min, max] — so the error is bounded by one bucket width, a
     * factor of sqrt(2) in the value for samples >= 1.
     */
    double quantile(double q) const;

    /** One consistent cut of everything (exporters read this). */
    struct Snapshot
    {
        uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
        std::array<uint64_t, kNumBuckets> buckets{};
    };

    Snapshot snapshot() const;

    void
    reset()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        count_ = 0;
        sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
        buckets_.fill(0);
    }

  private:
    /** quantile() body; the caller holds mutex_. */
    double quantileLocked(double q) const;

    mutable std::mutex mutex_;
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    std::array<uint64_t, kNumBuckets> buckets_{};
};

/** RAII wall-clock timer feeding a histogram in microseconds. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &h);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram &hist_;
    double startUs_;
};

/**
 * Name-keyed store of all statistics; one instance per process.
 * Find-or-create is mutex-guarded so worker threads can register
 * lazily; the unique_ptr indirection keeps returned references stable
 * across later insertions.
 */
class StatsRegistry
{
  public:
    /** Find-or-create; references stay valid for the process lifetime. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Aligned name/value table, sorted by name. */
    void dumpText(std::ostream &out) const;

    /** One JSON object: {"counters":{...},"gauges":{...},...}. */
    void dumpJson(std::ostream &out) const;

    /** Zero every value; registrations (and references) survive. */
    void resetValues();

    /**
     * Visit every stat in name order under the registry lock
     * (exporters use these). The callback must not call back into the
     * registry's find-or-create methods.
     */
    void forEachCounter(
        const std::function<void(const std::string &, const Counter &)> &fn)
        const;
    void forEachGauge(
        const std::function<void(const std::string &, const Gauge &)> &fn)
        const;
    void forEachHistogram(
        const std::function<void(const std::string &, const Histogram &)> &fn)
        const;

    bool
    empty() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return counters_.empty() && gauges_.empty() && histograms_.empty();
    }

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** The process-wide registry. */
StatsRegistry &statsRegistry();

/** Shorthands for statsRegistry().counter(...) etc. */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histogram &histogram(const std::string &name);

} // namespace obs
} // namespace memoria

#endif // MEMORIA_SUPPORT_STATS_HH
