/**
 * @file
 * Cost polynomials.
 *
 * The locality cost model of Carr, McKinley & Tseng expresses loop costs
 * symbolically in one abstract problem-size symbol `n` (e.g. the matrix
 * multiply LoopCost table contains entries such as 2n^3 + n^2 and
 * (3/4)n^3 + n^2). `Poly` is a dense univariate polynomial over double
 * coefficients supporting the arithmetic the model needs plus the
 * "compare dominating terms" ordering the paper prescribes for symbolic
 * loop bounds (Section 4.1).
 */

#ifndef MEMORIA_SUPPORT_POLY_HH
#define MEMORIA_SUPPORT_POLY_HH

#include <string>
#include <vector>

namespace memoria {

/**
 * Univariate polynomial in the abstract size symbol `n`.
 *
 * Coefficients are doubles because the cost model produces fractional
 * terms (e.g. trip/(cls/stride) = n/4). The zero polynomial has an empty
 * coefficient vector and degree -1.
 */
class Poly
{
  public:
    /** The zero polynomial. */
    Poly() = default;

    /** A constant polynomial. */
    Poly(double c);

    /** Build from coefficients, index = power: {c0, c1, c2, ...}. */
    static Poly fromCoeffs(std::vector<double> coeffs);

    /** The monomial c * n^power. */
    static Poly term(double c, int power);

    /** The symbol n itself. */
    static Poly sym();

    /** Degree of the polynomial; -1 for the zero polynomial. */
    int degree() const;

    /** Coefficient of n^power (0 beyond the degree). */
    double coeff(int power) const;

    /** True when every coefficient is zero. */
    bool isZero() const;

    /** True when the polynomial is a constant (degree <= 0). */
    bool isConstant() const;

    /** Evaluate at a concrete problem size. */
    double eval(double n) const;

    Poly operator+(const Poly &o) const;
    Poly operator-(const Poly &o) const;
    Poly operator*(const Poly &o) const;
    Poly operator*(double s) const;
    Poly operator/(double s) const;
    Poly &operator+=(const Poly &o);
    Poly &operator*=(const Poly &o);
    Poly operator-() const;

    /**
     * Dominating-term ordering.
     *
     * Compares the highest-degree coefficients first and walks down on
     * ties; returns negative / zero / positive like strcmp. This is the
     * comparison the paper uses to rank LoopCosts when loop bounds are
     * symbolic.
     */
    int compare(const Poly &o) const;

    bool operator==(const Poly &o) const;
    bool operator<(const Poly &o) const { return compare(o) < 0; }
    bool operator<=(const Poly &o) const { return compare(o) <= 0; }
    bool operator>(const Poly &o) const { return compare(o) > 0; }
    bool operator>=(const Poly &o) const { return compare(o) >= 0; }

    /** Render like "2n^3 + 0.25n^2 + 1". */
    std::string str() const;

  private:
    void trim();

    /** coeffs_[k] is the coefficient of n^k. */
    std::vector<double> coeffs_;
};

} // namespace memoria

#endif // MEMORIA_SUPPORT_POLY_HH
