/**
 * @file
 * Minimal /proc readers for process-level resource accounting.
 *
 * The serve memory governor and the supervisor's per-worker RSS
 * sampling both need one number — resident set size — cheaply and
 * without allocating on the hot path. `/proc/<pid>/statm` is the
 * cheapest source on Linux: two integer fields, no parsing of the
 * comm field (which can contain spaces and parens, unlike stat).
 */

#ifndef MEMORIA_SUPPORT_PROCSTAT_HH
#define MEMORIA_SUPPORT_PROCSTAT_HH

#include <cstdint>

#include <sys/types.h>

namespace memoria {
namespace procstat {

/**
 * Resident set size of `pid` in bytes (statm field 2 × page size).
 * `pid` 0 means the calling process. Returns 0 when the process does
 * not exist or /proc is unavailable — callers treat 0 as "unknown",
 * never as "no memory", so watermark checks stay fail-open.
 */
uint64_t rssBytes(pid_t pid = 0);

} // namespace procstat
} // namespace memoria

#endif // MEMORIA_SUPPORT_PROCSTAT_HH
