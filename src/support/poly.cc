#include "support/poly.hh"

#include <cmath>
#include <sstream>

#include "support/logging.hh"

namespace memoria {

namespace {

/** Coefficients closer to zero than this are treated as zero. */
constexpr double kEps = 1e-12;

} // namespace

Poly::Poly(double c)
{
    if (std::abs(c) > kEps)
        coeffs_.push_back(c);
}

Poly
Poly::fromCoeffs(std::vector<double> coeffs)
{
    Poly p;
    p.coeffs_ = std::move(coeffs);
    p.trim();
    return p;
}

Poly
Poly::term(double c, int power)
{
    MEMORIA_ASSERT(power >= 0, "monomial power must be non-negative");
    Poly p;
    if (std::abs(c) > kEps) {
        p.coeffs_.assign(power + 1, 0.0);
        p.coeffs_[power] = c;
    }
    return p;
}

Poly
Poly::sym()
{
    return term(1.0, 1);
}

int
Poly::degree() const
{
    return static_cast<int>(coeffs_.size()) - 1;
}

double
Poly::coeff(int power) const
{
    if (power < 0 || power >= static_cast<int>(coeffs_.size()))
        return 0.0;
    return coeffs_[power];
}

bool
Poly::isZero() const
{
    return coeffs_.empty();
}

bool
Poly::isConstant() const
{
    return degree() <= 0;
}

double
Poly::eval(double n) const
{
    double acc = 0.0;
    for (auto it = coeffs_.rbegin(); it != coeffs_.rend(); ++it)
        acc = acc * n + *it;
    return acc;
}

Poly
Poly::operator+(const Poly &o) const
{
    std::vector<double> out(std::max(coeffs_.size(), o.coeffs_.size()), 0.0);
    for (size_t i = 0; i < coeffs_.size(); ++i)
        out[i] += coeffs_[i];
    for (size_t i = 0; i < o.coeffs_.size(); ++i)
        out[i] += o.coeffs_[i];
    return fromCoeffs(std::move(out));
}

Poly
Poly::operator-(const Poly &o) const
{
    return *this + (-o);
}

Poly
Poly::operator*(const Poly &o) const
{
    if (isZero() || o.isZero())
        return Poly();
    std::vector<double> out(coeffs_.size() + o.coeffs_.size() - 1, 0.0);
    for (size_t i = 0; i < coeffs_.size(); ++i)
        for (size_t j = 0; j < o.coeffs_.size(); ++j)
            out[i + j] += coeffs_[i] * o.coeffs_[j];
    return fromCoeffs(std::move(out));
}

Poly
Poly::operator*(double s) const
{
    std::vector<double> out = coeffs_;
    for (auto &c : out)
        c *= s;
    return fromCoeffs(std::move(out));
}

Poly
Poly::operator/(double s) const
{
    MEMORIA_ASSERT(std::abs(s) > kEps, "division by zero");
    return *this * (1.0 / s);
}

Poly &
Poly::operator+=(const Poly &o)
{
    *this = *this + o;
    return *this;
}

Poly &
Poly::operator*=(const Poly &o)
{
    *this = *this * o;
    return *this;
}

Poly
Poly::operator-() const
{
    return *this * -1.0;
}

int
Poly::compare(const Poly &o) const
{
    int hi = std::max(degree(), o.degree());
    for (int k = hi; k >= 0; --k) {
        double d = coeff(k) - o.coeff(k);
        if (d > kEps)
            return 1;
        if (d < -kEps)
            return -1;
    }
    return 0;
}

bool
Poly::operator==(const Poly &o) const
{
    return compare(o) == 0;
}

std::string
Poly::str() const
{
    if (isZero())
        return "0";
    std::ostringstream os;
    bool first = true;
    for (int k = degree(); k >= 0; --k) {
        double c = coeffs_[k];
        if (std::abs(c) <= kEps)
            continue;
        if (!first)
            os << (c < 0 ? " - " : " + ");
        else if (c < 0)
            os << "-";
        double a = std::abs(c);
        bool unit = std::abs(a - 1.0) <= kEps;
        if (!unit || k == 0)
            os << a;
        if (k >= 1) {
            os << "n";
            if (k > 1)
                os << "^" << k;
        }
        first = false;
    }
    return os.str();
}

void
Poly::trim()
{
    while (!coeffs_.empty() && std::abs(coeffs_.back()) <= kEps)
        coeffs_.pop_back();
}

} // namespace memoria
