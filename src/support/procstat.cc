#include "support/procstat.hh"

#include <cstdio>
#include <cstdlib>

#include <fcntl.h>
#include <unistd.h>

namespace memoria {
namespace procstat {

uint64_t
rssBytes(pid_t pid)
{
    char path[64];
    if (pid <= 0)
        std::snprintf(path, sizeof(path), "/proc/self/statm");
    else
        std::snprintf(path, sizeof(path), "/proc/%d/statm",
                      static_cast<int>(pid));

    // Raw read + manual parse: no stdio buffering, no allocation —
    // this runs on the supervisor monitor tick and the governor's
    // sampling thread.
    int fd = ::open(path, O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return 0;
    char buf[128];
    ssize_t n = ::read(fd, buf, sizeof(buf) - 1);
    ::close(fd);
    if (n <= 0)
        return 0;
    buf[n] = '\0';

    // statm: size resident shared text lib data dt (pages).
    char *end = nullptr;
    (void)std::strtoull(buf, &end, 10);  // size — skip
    if (!end || *end != ' ')
        return 0;
    unsigned long long resident = std::strtoull(end + 1, nullptr, 10);
    long page = ::sysconf(_SC_PAGESIZE);
    if (page <= 0)
        page = 4096;
    return static_cast<uint64_t>(resident) *
           static_cast<uint64_t>(page);
}

} // namespace procstat
} // namespace memoria
