#include "support/trace.hh"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>

#include "support/logging.hh"

namespace memoria {
namespace obs {

namespace detail {
TraceSink *sinkPtr = nullptr;
} // namespace detail

namespace {

/** Owner of the installed sink; detail::sinkPtr aliases it. */
std::unique_ptr<TraceSink> ownedSink;

/** Process-wide ordering of records across threads. */
std::atomic<uint64_t> nextSeq{0};

/** Span nesting is a per-thread notion: batch workers each carry their
 *  own depth, so one worker's spans never indent another's records. */
thread_local int spanDepth = 0;

/** The thread's request-scoped context; {} when none is installed. */
thread_local TraceContext tlsContext;

/** The thread's per-request stage-time accumulator. */
thread_local StageTimes tlsStageTimes;

/** Span ids are process-unique so ids stay distinct across workers.
 *  0 is reserved for "no span"; the counter starts at 1. */
std::atomic<uint64_t> nextSpanId{1};

/** Sinks are not required to be thread-safe; emission is serialized. */
std::mutex emitMutex;

/** JSON string escaping per RFC 8259. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

/** Render a double without trailing-zero noise, JSON-valid. */
std::string
renderDouble(double v)
{
    std::ostringstream os;
    os << v;
    std::string s = os.str();
    if (s == "inf")
        return "1e308";
    if (s == "-inf")
        return "-1e308";
    if (s == "nan" || s == "-nan")
        return "null";
    return s;
}

void
emit(TraceEvent &&e)
{
    e.seq = nextSeq.fetch_add(1, std::memory_order_relaxed);
    if (!tlsContext.traceId.empty()) {
        e.traceId = tlsContext.traceId;
        e.spanId = tlsContext.spanId;
    }
    std::lock_guard<std::mutex> lock(emitMutex);
    // Re-check under the lock: setTraceSink may have raced us.
    if (detail::sinkPtr)
        detail::sinkPtr->event(e);
}

const char *
typeName(TraceEvent::Type t)
{
    switch (t) {
      case TraceEvent::Type::Event:
        return "event";
      case TraceEvent::Type::SpanBegin:
        return "begin";
      case TraceEvent::Type::SpanEnd:
        return "span";
    }
    return "?";
}

} // namespace

const TraceContext &
currentTraceContext()
{
    return tlsContext;
}

std::string
makeTraceId()
{
    // Process-unique, human-greppable: a per-process random-ish base
    // (steady-clock ticks at first use, so two processes started apart
    // differ) mixed with a process-wide counter via splitmix64.
    static const uint64_t base = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    static std::atomic<uint64_t> counter{0};
    uint64_t x = base + 0x9e3779b97f4a7c15ULL *
                            (counter.fetch_add(1, std::memory_order_relaxed) + 1);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    char buf[24];
    std::snprintf(buf, sizeof(buf), "t%016llx",
                  static_cast<unsigned long long>(x));
    return buf;
}

TraceContextScope::TraceContextScope(std::string traceId)
    : saved_(std::move(tlsContext))
{
    tlsContext.traceId = std::move(traceId);
    tlsContext.spanId = 0;
}

TraceContextScope::~TraceContextScope()
{
    tlsContext = std::move(saved_);
}

StageTimes &
stageTimes()
{
    return tlsStageTimes;
}

StageTimer::StageTimer(double StageTimes::*field)
    : field_(field), start_(std::chrono::steady_clock::now())
{
}

StageTimer::~StageTimer()
{
    tlsStageTimes.*field_ +=
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start_)
            .count();
}

std::string
TraceValue::render() const
{
    switch (kind_) {
      case Kind::Str:
        return str_;
      case Kind::Bool:
        return int_ ? "true" : "false";
      case Kind::Int:
        return std::to_string(int_);
      case Kind::Float:
        return renderDouble(float_);
    }
    return "?";
}

std::string
TraceValue::renderJson() const
{
    if (kind_ == Kind::Str)
        return jsonEscape(str_);
    return render();
}

void
TextSink::event(const TraceEvent &e)
{
    out_ << "[trace] ";
    for (int i = 0; i < e.depth; ++i)
        out_ << "  ";
    out_ << typeName(e.type) << " " << e.category << "/" << e.name;
    for (const auto &[key, value] : e.args)
        out_ << " " << key << "=" << value.render();
    if (e.type == TraceEvent::Type::SpanEnd)
        out_ << " (" << renderDouble(e.durationUs) << "us)";
    out_ << "\n";
}

void
TextSink::flush()
{
    out_.flush();
}

JsonLinesSink::JsonLinesSink(const std::string &path)
    : owned_(std::make_unique<std::ofstream>(path)), out_(owned_.get())
{
    if (!*out_)
        fatal("cannot open trace file '" + path + "'");
}

JsonLinesSink::JsonLinesSink(std::ostream &out) : out_(&out) {}

JsonLinesSink::~JsonLinesSink()
{
    out_->flush();
}

std::string
renderTraceJson(const TraceEvent &e)
{
    std::ostringstream out;
    out << "{\"type\":" << jsonEscape(typeName(e.type))
        << ",\"seq\":" << e.seq << ",\"cat\":" << jsonEscape(e.category)
        << ",\"name\":" << jsonEscape(e.name) << ",\"depth\":" << e.depth;
    if (!e.traceId.empty())
        out << ",\"trace\":" << jsonEscape(e.traceId)
            << ",\"span\":" << e.spanId;
    if (e.type == TraceEvent::Type::SpanEnd)
        out << ",\"dur_us\":" << renderDouble(e.durationUs);
    if (!e.args.empty()) {
        out << ",\"args\":{";
        bool first = true;
        for (const auto &[key, value] : e.args) {
            if (!first)
                out << ",";
            first = false;
            out << jsonEscape(key) << ":" << value.renderJson();
        }
        out << "}";
    }
    out << "}";
    return out.str();
}

void
JsonLinesSink::event(const TraceEvent &e)
{
    *out_ << renderTraceJson(e) << "\n";
}

void
JsonLinesSink::flush()
{
    out_->flush();
}

void
setTraceSink(std::unique_ptr<TraceSink> sink)
{
    std::lock_guard<std::mutex> lock(emitMutex);
    if (ownedSink)
        ownedSink->flush();
    ownedSink = std::move(sink);
    detail::sinkPtr = ownedSink.get();
    nextSeq.store(0, std::memory_order_relaxed);
    spanDepth = 0;
}

TraceSink *
traceSink()
{
    return detail::sinkPtr;
}

void
flushTrace()
{
    std::lock_guard<std::mutex> lock(emitMutex);
    if (detail::sinkPtr)
        detail::sinkPtr->flush();
}

bool
tryFlushTrace()
{
    std::unique_lock<std::mutex> lock(emitMutex, std::try_to_lock);
    if (!lock.owns_lock())
        return false;
    if (detail::sinkPtr)
        detail::sinkPtr->flush();
    return true;
}

namespace {
/** Most recently constructed ring; cleared by its own destructor. */
std::atomic<RingSink *> gRing{nullptr};
} // namespace

RingSink::RingSink(size_t capacity) : capacity_(capacity ? capacity : 1)
{
    gRing.store(this, std::memory_order_release);
}

RingSink::~RingSink()
{
    RingSink *self = this;
    gRing.compare_exchange_strong(self, nullptr);
}

void
RingSink::event(const TraceEvent &e)
{
    Entry entry{e.traceId, renderTraceJson(e)};
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.size() < capacity_) {
        entries_.push_back(std::move(entry));
    } else {
        entries_[next_] = std::move(entry);
        next_ = (next_ + 1) % capacity_;
    }
}

std::vector<std::string>
RingSink::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    // next_ is the oldest slot once the ring has wrapped.
    for (size_t i = 0; i < entries_.size(); ++i)
        out.push_back(entries_[(next_ + i) % entries_.size()].line);
    return out;
}

std::vector<std::string>
RingSink::snapshotFor(const std::string &traceId) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    for (size_t i = 0; i < entries_.size(); ++i) {
        const Entry &entry = entries_[(next_ + i) % entries_.size()];
        if (entry.traceId == traceId)
            out.push_back(entry.line);
    }
    return out;
}

RingSink *
RingSink::instance()
{
    return gRing.load(std::memory_order_acquire);
}

void
traceEvent(std::string category, std::string name,
           std::initializer_list<TraceArg> args)
{
    traceEvent(std::move(category), std::move(name),
               std::vector<TraceArg>(args));
}

void
traceEvent(std::string category, std::string name,
           std::vector<TraceArg> args)
{
    if (!tracingEnabled())
        return;
    TraceEvent e;
    e.type = TraceEvent::Type::Event;
    e.category = std::move(category);
    e.name = std::move(name);
    e.args = std::move(args);
    e.depth = spanDepth;
    emit(std::move(e));
}

TraceScope::TraceScope(std::string category, std::string name)
{
    if (!tracingEnabled())
        return;
    active_ = true;
    category_ = std::move(category);
    name_ = std::move(name);
    start_ = std::chrono::steady_clock::now();

    // Inside a request context, this span gets a fresh process-unique
    // id and becomes the thread's innermost span for its lifetime.
    if (!tlsContext.traceId.empty()) {
        spanId_ = nextSpanId.fetch_add(1, std::memory_order_relaxed);
        parentSpanId_ = tlsContext.spanId;
        tlsContext.spanId = spanId_;
    }

    TraceEvent e;
    e.type = TraceEvent::Type::SpanBegin;
    e.category = category_;
    e.name = name_;
    e.depth = spanDepth++;
    emit(std::move(e));
}

TraceScope::~TraceScope()
{
    if (!active_)
        return;
    // Pops the thread's innermost span id back to the parent; the
    // SpanEnd record below is emitted first so it carries *this*
    // span's id, not the parent's.
    struct PopSpan
    {
        uint64_t spanId, parent;
        ~PopSpan()
        {
            if (spanId != 0 && tlsContext.spanId == spanId)
                tlsContext.spanId = parent;
        }
    } pop{spanId_, parentSpanId_};
    // The sink may have been swapped out mid-span (tests); drop the
    // record rather than write to the wrong sink with a skewed depth.
    if (!tracingEnabled()) {
        active_ = false;
        return;
    }
    auto end = std::chrono::steady_clock::now();
    TraceEvent e;
    e.type = TraceEvent::Type::SpanEnd;
    e.category = std::move(category_);
    e.name = std::move(name_);
    e.args = std::move(args_);
    e.depth = --spanDepth;
    e.durationUs =
        std::chrono::duration<double, std::micro>(end - start_).count();
    emit(std::move(e));
}

void
TraceScope::arg(std::string key, TraceValue value)
{
    if (active_)
        args_.emplace_back(std::move(key), std::move(value));
}

} // namespace obs
} // namespace memoria
