#include "support/export.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/stats.hh"

namespace memoria {
namespace obs {

namespace {

/** Render a double JSON- and exposition-valid, round-trip exact. */
std::string
num(double v)
{
    std::ostringstream os;
    os << std::setprecision(17) << v;
    std::string s = os.str();
    if (s == "inf")
        return "1e308";
    if (s == "-inf")
        return "-1e308";
    if (s == "nan" || s == "-nan")
        return "0";
    return s;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

} // namespace

std::string
prometheusName(const std::string &statName)
{
    std::string out = "memoria_";
    out.reserve(out.size() + statName.size());
    for (char c : statName) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

void
exportPrometheus(const StatsRegistry &registry, std::ostream &out)
{
    registry.forEachCounter([&](const std::string &name, const Counter &c) {
        std::string metric = prometheusName(name);
        if (!endsWith(metric, "_total"))
            metric += "_total";
        out << "# TYPE " << metric << " counter\n"
            << metric << " " << c.value() << "\n";
    });
    registry.forEachGauge([&](const std::string &name, const Gauge &g) {
        std::string metric = prometheusName(name);
        out << "# TYPE " << metric << " gauge\n"
            << metric << " " << num(g.value()) << "\n";
    });
    registry.forEachHistogram(
        [&](const std::string &name, const Histogram &h) {
            std::string metric = prometheusName(name);
            Histogram::Snapshot s = h.snapshot();
            out << "# TYPE " << metric << " histogram\n";
            uint64_t cum = 0;
            for (int b = 0; b < Histogram::kNumBuckets; ++b) {
                cum += s.buckets[b];
                // Empty prefix buckets collapse onto the next used
                // edge via cumulativeness; emitting all 64 keeps the
                // boundary set identical across every exported series.
                double edge = Histogram::bucketUpperEdge(b);
                out << metric << "_bucket{le=\"";
                if (b == Histogram::kNumBuckets - 1)
                    out << "+Inf";
                else
                    out << num(edge);
                out << "\"} " << cum << "\n";
            }
            out << metric << "_sum " << num(s.sum) << "\n"
                << metric << "_count " << s.count << "\n";
        });
}

void
exportPrometheus(std::ostream &out)
{
    exportPrometheus(statsRegistry(), out);
}

std::string
prometheusText()
{
    std::ostringstream os;
    exportPrometheus(os);
    return os.str();
}

bool
writeMetricsSnapshot(
    const StatsRegistry &registry, std::ostream &out, long long tsMs,
    const std::vector<std::pair<std::string, std::string>> &extra)
{
    std::ostringstream stats;
    registry.dumpJson(stats);
    std::string dump = stats.str();
    while (!dump.empty() && (dump.back() == '\n' || dump.back() == '\r'))
        dump.pop_back();

    out << "{\"ts_ms\":" << tsMs;
    for (const auto &[key, json] : extra)
        out << ",\"" << key << "\":" << json;
    out << ",\"stats\":" << dump << "}\n";
    out.flush();
    return static_cast<bool>(out);
}

} // namespace obs
} // namespace memoria
