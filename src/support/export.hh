/**
 * @file
 * Metric exporters over the stats registry.
 *
 * Two wire formats, both derived from the same `StatsRegistry`:
 *
 *  - `exportPrometheus` writes Prometheus text exposition (version
 *    0.0.4): every registered stat becomes a `memoria_`-prefixed
 *    family with dots mapped to underscores — counters as counter
 *    families (`_total` suffix), gauges as gauges, histograms as
 *    native histogram families with cumulative `_bucket{le="..."}`
 *    series over the fixed boundaries of `obs::Histogram`, plus
 *    `_sum` and `_count`. The boundary set is stable across versions
 *    (stats.hh), so scraped series aggregate across processes.
 *
 *  - `writeMetricsSnapshot` appends one self-contained JSON object
 *    (registry dump + timestamp + free-form extra fields) to a JSONL
 *    stream — the offline-trending format behind `--metrics-file`
 *    and the food for `memoria top --file`.
 *
 * See docs/OBSERVABILITY.md for the catalog of exported names.
 */

#ifndef MEMORIA_SUPPORT_EXPORT_HH
#define MEMORIA_SUPPORT_EXPORT_HH

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace memoria {
namespace obs {

class StatsRegistry;

/** Map a dotted stat name to a Prometheus metric name:
 *  `serve.request_time_us` -> `memoria_serve_request_time_us`.
 *  Any character outside [a-zA-Z0-9_] becomes '_'. */
std::string prometheusName(const std::string &statName);

/** Write the whole registry as Prometheus text exposition. */
void exportPrometheus(const StatsRegistry &registry, std::ostream &out);

/** Convenience overload over the process-wide registry. */
void exportPrometheus(std::ostream &out);

/** The exposition as a string (serve's `metrics` request kind). */
std::string prometheusText();

/**
 * Append one JSONL metrics snapshot:
 * `{"ts_ms":...,<extra fields...>,"stats":{registry dump}}`.
 * `extra` entries are key -> pre-rendered JSON value (caller is
 * responsible for their validity). Returns false if the stream went
 * bad. Writes a trailing newline and flushes (snapshots must survive
 * an immediately following `_exit`).
 */
bool writeMetricsSnapshot(
    const StatsRegistry &registry, std::ostream &out, long long tsMs,
    const std::vector<std::pair<std::string, std::string>> &extra = {});

} // namespace obs
} // namespace memoria

#endif // MEMORIA_SUPPORT_EXPORT_HH
