#include "support/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace memoria {
namespace json {

namespace {

const std::string kEmptyString;
const std::vector<Value> kEmptyItems;
const std::vector<Member> kEmptyMembers;

/** Append one Unicode code point as UTF-8. */
void
appendUtf8(std::string &out, uint32_t cp)
{
    if (cp < 0x80) {
        out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
        out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
}

class Parser
{
  public:
    Parser(const std::string &text, const ParseOptions &opts)
        : text_(text), opts_(opts)
    {
    }

    Result<Value>
    run()
    {
        if (opts_.maxBytes && text_.size() > opts_.maxBytes)
            return failLimit("input exceeds " +
                             std::to_string(opts_.maxBytes) + " bytes");
        skipWs();
        Result<Value> v = parseValue(0);
        if (!v.ok())
            return v;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after value");
        return v;
    }

  private:
    Result<Value>
    fail(const std::string &why)
    {
        return Result<Value>::err(Diag::error(
            "json.parse",
            why + " at offset " + std::to_string(pos_)));
    }

    /** A resource-cap rejection, distinguishable from bad syntax so
     *  protocol layers can answer `protocol.too-large`. */
    Result<Value>
    failLimit(const std::string &why)
    {
        return Result<Value>::err(Diag::error(
            "json.limit",
            why + " at offset " + std::to_string(pos_)));
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void
    skipWs()
    {
        while (!atEnd()) {
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    bool
    consume(const char *lit)
    {
        size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Result<Value>
    parseValue(int depth)
    {
        if (depth > opts_.maxDepth)
            return failLimit("nesting deeper than " +
                             std::to_string(opts_.maxDepth));
        if (opts_.maxNodes && ++nodes_ > opts_.maxNodes)
            return failLimit("more than " +
                             std::to_string(opts_.maxNodes) +
                             " values");
        if (atEnd())
            return fail("unexpected end of input");
        switch (peek()) {
          case 'n':
            if (consume("null"))
                return Result<Value>(Value::null());
            return fail("bad literal");
          case 't':
            if (consume("true"))
                return Result<Value>(Value::boolean(true));
            return fail("bad literal");
          case 'f':
            if (consume("false"))
                return Result<Value>(Value::boolean(false));
            return fail("bad literal");
          case '"': {
            std::string s;
            if (Result<void> r = parseString(s); !r.ok())
                return Result<Value>::err(r.diag());
            return Result<Value>(Value::string(std::move(s)));
          }
          case '[':
            return parseArray(depth);
          case '{':
            return parseObject(depth);
          default:
            return parseNumber();
        }
    }

    Result<void>
    parseString(std::string &out)
    {
        auto bad = [&](const std::string &why) {
            return Result<void>::err(Diag::error(
                "json.parse",
                why + " at offset " + std::to_string(pos_)));
        };
        ++pos_;  // opening quote
        while (true) {
            if (atEnd())
                return bad("unterminated string");
            unsigned char c = static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return Result<void>();
            }
            if (c < 0x20)
                return bad("raw control character in string");
            if (c != '\\') {
                out.push_back(static_cast<char>(c));
                ++pos_;
                continue;
            }
            ++pos_;  // backslash
            if (atEnd())
                return bad("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                uint32_t cp;
                if (!readHex4(cp))
                    return bad("bad \\u escape");
                // Surrogate pair: a high surrogate must be followed
                // by \uDC00..\uDFFF; combine into one code point.
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    if (pos_ + 1 < text_.size() &&
                        text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
                        pos_ += 2;
                        uint32_t lo;
                        if (!readHex4(lo) || lo < 0xDC00 || lo > 0xDFFF)
                            return bad("bad low surrogate");
                        cp = 0x10000 + ((cp - 0xD800) << 10) +
                             (lo - 0xDC00);
                    } else {
                        return bad("unpaired high surrogate");
                    }
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    return bad("unpaired low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return bad("unknown escape");
            }
        }
    }

    bool
    readHex4(uint32_t &out)
    {
        if (pos_ + 4 > text_.size())
            return false;
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<uint32_t>(c - 'A' + 10);
            else
                return false;
        }
        return true;
    }

    Result<Value>
    parseNumber()
    {
        size_t start = pos_;
        if (!atEnd() && peek() == '-')
            ++pos_;
        while (!atEnd() && (isdigit(static_cast<unsigned char>(peek())) ||
                            peek() == '.' || peek() == 'e' ||
                            peek() == 'E' || peek() == '+' ||
                            peek() == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("unexpected character");
        std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size() || !std::isfinite(v)) {
            pos_ = start;
            return fail("bad number '" + tok + "'");
        }
        return Result<Value>(Value::number(v));
    }

    Result<Value>
    parseArray(int depth)
    {
        ++pos_;  // '['
        Value arr = Value::array();
        skipWs();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            return Result<Value>(std::move(arr));
        }
        while (true) {
            skipWs();
            Result<Value> item = parseValue(depth + 1);
            if (!item.ok())
                return item;
            arr.push(std::move(item.value()));
            skipWs();
            if (atEnd())
                return fail("unterminated array");
            char c = text_[pos_++];
            if (c == ']')
                return Result<Value>(std::move(arr));
            if (c != ',') {
                --pos_;
                return fail("expected ',' or ']'");
            }
        }
    }

    Result<Value>
    parseObject(int depth)
    {
        ++pos_;  // '{'
        Value obj = Value::object();
        skipWs();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            return Result<Value>(std::move(obj));
        }
        while (true) {
            skipWs();
            if (atEnd() || peek() != '"')
                return fail("expected object key");
            std::string key;
            if (Result<void> r = parseString(key); !r.ok())
                return Result<Value>::err(r.diag());
            skipWs();
            if (atEnd() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            Result<Value> val = parseValue(depth + 1);
            if (!val.ok())
                return val;
            obj.set(std::move(key), std::move(val.value()));
            skipWs();
            if (atEnd())
                return fail("unterminated object");
            char c = text_[pos_++];
            if (c == '}')
                return Result<Value>(std::move(obj));
            if (c != ',') {
                --pos_;
                return fail("expected ',' or '}'");
            }
        }
    }

    const std::string &text_;
    ParseOptions opts_;
    size_t pos_ = 0;
    size_t nodes_ = 0;
};

/** Shortest round-trippable double rendering, JSON-valid. */
std::string
renderNumber(double v)
{
    if (v == static_cast<double>(static_cast<int64_t>(v)) &&
        std::fabs(v) < 1e15)
        return std::to_string(static_cast<int64_t>(v));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

Value
Value::boolean(bool b)
{
    Value v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

Value
Value::number(double n)
{
    Value v;
    v.kind_ = Kind::Number;
    v.num_ = n;
    return v;
}

Value
Value::number(int64_t n)
{
    return number(static_cast<double>(n));
}

Value
Value::string(std::string s)
{
    Value v;
    v.kind_ = Kind::String;
    v.str_ = std::move(s);
    return v;
}

Value
Value::array(std::vector<Value> items)
{
    Value v;
    v.kind_ = Kind::Array;
    v.items_ = std::move(items);
    return v;
}

Value
Value::object(std::vector<Member> members)
{
    Value v;
    v.kind_ = Kind::Object;
    v.members_ = std::move(members);
    return v;
}

bool
Value::asBool(bool fallback) const
{
    return kind_ == Kind::Bool ? bool_ : fallback;
}

double
Value::asNumber(double fallback) const
{
    return kind_ == Kind::Number ? num_ : fallback;
}

int64_t
Value::asInt(int64_t fallback) const
{
    return kind_ == Kind::Number ? static_cast<int64_t>(num_) : fallback;
}

const std::string &
Value::asString() const
{
    return kind_ == Kind::String ? str_ : kEmptyString;
}

std::string
Value::asString(const std::string &fallback) const
{
    return kind_ == Kind::String ? str_ : fallback;
}

const std::vector<Value> &
Value::items() const
{
    return kind_ == Kind::Array ? items_ : kEmptyItems;
}

const std::vector<Member> &
Value::members() const
{
    return kind_ == Kind::Object ? members_ : kEmptyMembers;
}

const Value *
Value::get(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const Member &m : members_)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

std::string
Value::getString(const std::string &key, const std::string &fallback) const
{
    const Value *v = get(key);
    return v ? v->asString(fallback) : fallback;
}

int64_t
Value::getInt(const std::string &key, int64_t fallback) const
{
    const Value *v = get(key);
    return v ? v->asInt(fallback) : fallback;
}

double
Value::getNumber(const std::string &key, double fallback) const
{
    const Value *v = get(key);
    return v ? v->asNumber(fallback) : fallback;
}

bool
Value::getBool(const std::string &key, bool fallback) const
{
    const Value *v = get(key);
    return v ? v->asBool(fallback) : fallback;
}

void
Value::push(Value v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ == Kind::Array)
        items_.push_back(std::move(v));
}

void
Value::set(std::string key, Value v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        return;
    // Replace in place: duplicate keys would be invisible to get()
    // (first match wins) yet still serialize — the serve supervisor
    // rewrites response ids and relies on set() being a true upsert.
    for (auto &[k, existing] : members_) {
        if (k == key) {
            existing = std::move(v);
            return;
        }
    }
    members_.emplace_back(std::move(key), std::move(v));
}

std::string
Value::dump() const
{
    switch (kind_) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return bool_ ? "true" : "false";
      case Kind::Number:
        return renderNumber(num_);
      case Kind::String:
        return quote(str_);
      case Kind::Array: {
        std::string out = "[";
        for (size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += ",";
            out += items_[i].dump();
        }
        out += "]";
        return out;
      }
      case Kind::Object: {
        std::string out = "{";
        for (size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ",";
            out += quote(members_[i].first) + ":" +
                   members_[i].second.dump();
        }
        out += "}";
        return out;
      }
    }
    return "null";
}

Result<Value>
parse(const std::string &text, const ParseOptions &opts)
{
    return Parser(text, opts).run();
}

std::string
quote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

} // namespace json
} // namespace memoria
