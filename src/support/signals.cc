#include "support/signals.hh"

#include <atomic>
#include <csignal>
#include <mutex>
#include <unistd.h>
#include <vector>

#include "support/trace.hh"

namespace memoria {
namespace signals {

namespace {

std::atomic<int> gDrainSignal{0};
std::atomic<bool> gFlushRan{false};
std::atomic<bool> gChildPending{false};
std::atomic<bool> gHupPending{false};

/** Callback list is append-only and set up before handlers fire. */
std::mutex gCallbackMutex;
std::vector<std::function<void()>> gCallbacks;

void
runFlushWork()
{
    // At-most-once: a second signal during the flush must not re-enter.
    if (gFlushRan.exchange(true))
        return;
    obs::tryFlushTrace();
    // Snapshot under the lock, run outside it: a callback that logs
    // (and therefore traces) must not deadlock against registration.
    std::vector<std::function<void()>> cbs;
    {
        std::lock_guard<std::mutex> lock(gCallbackMutex);
        cbs = gCallbacks;
    }
    for (const auto &fn : cbs) {
        if (fn)
            fn();
    }
    obs::tryFlushTrace();
}

extern "C" void
flushAndExitHandler(int sig)
{
    runFlushWork();
    _exit(128 + sig);
}

extern "C" void
childHandler(int)
{
    gChildPending.store(true, std::memory_order_relaxed);
}

extern "C" void
hupHandler(int)
{
    gHupPending.store(true, std::memory_order_relaxed);
}

extern "C" void
drainHandler(int sig)
{
    int expected = 0;
    if (!gDrainSignal.compare_exchange_strong(expected, sig)) {
        // Second signal: the drain is stuck or the user is insistent.
        flushAndExitHandler(sig);
    }
}

void
install(void (*handler)(int), bool restart)
{
    struct sigaction sa = {};
    sa.sa_handler = handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = restart ? SA_RESTART : 0;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

} // namespace

void
installFlushOnSignal()
{
    install(flushAndExitHandler, /*restart=*/true);
}

void
addFlushCallback(std::function<void()> fn)
{
    std::lock_guard<std::mutex> lock(gCallbackMutex);
    gCallbacks.push_back(std::move(fn));
}

void
installDrainHandler()
{
    // No SA_RESTART: the serve read loop must wake from read() with
    // EINTR to notice the flag.
    install(drainHandler, /*restart=*/false);
}

void
installChildHandler()
{
    struct sigaction sa = {};
    sa.sa_handler = childHandler;
    sigemptyset(&sa.sa_mask);
    // No SA_RESTART (the monitor loop must wake with EINTR);
    // SA_NOCLDSTOP so a SIGSTOP'd worker doesn't look like an exit —
    // hung-worker detection is the heartbeat's job.
    sa.sa_flags = SA_NOCLDSTOP;
    sigaction(SIGCHLD, &sa, nullptr);
}

void
installHupHandler()
{
    struct sigaction sa = {};
    sa.sa_handler = hupHandler;
    sigemptyset(&sa.sa_mask);
    // No SA_RESTART: the monitor loop's poll/sleep must wake with
    // EINTR and notice the rolling-restart request promptly.
    sa.sa_flags = 0;
    sigaction(SIGHUP, &sa, nullptr);
}

bool
hupPending()
{
    return gHupPending.load(std::memory_order_relaxed);
}

bool
consumeHup()
{
    return gHupPending.exchange(false, std::memory_order_relaxed);
}

void
requestHup()
{
    gHupPending.store(true, std::memory_order_relaxed);
}

bool
childEventPending()
{
    return gChildPending.load(std::memory_order_relaxed);
}

void
consumeChildEvent()
{
    gChildPending.store(false, std::memory_order_relaxed);
}

bool
drainRequested()
{
    return gDrainSignal.load(std::memory_order_relaxed) != 0;
}

int
drainSignal()
{
    return gDrainSignal.load(std::memory_order_relaxed);
}

void
requestDrain()
{
    int expected = 0;
    gDrainSignal.compare_exchange_strong(expected, SIGTERM);
}

void
resetForTest()
{
    gDrainSignal.store(0);
    gFlushRan.store(false);
    gChildPending.store(false);
    gHupPending.store(false);
}

} // namespace signals
} // namespace memoria
