/**
 * @file
 * SIGINT/SIGTERM handling for the CLI and the serve loop.
 *
 * Two modes, matching the two kinds of process:
 *
 *  - **Flush-and-exit** (`installFlushOnSignal`), for one-shot commands
 *    (`analyze`, `batch`, `fuzz`, ...): the handler flushes the trace
 *    sink (best effort, try-lock — see below), runs any registered
 *    flush callbacks (the CLI registers a stats dump when `--stats`
 *    was requested), and terminates with the conventional 128+sig
 *    code. Without this, Ctrl-C during `memoria batch --trace`
 *    truncates the JSONL trace mid-record.
 *
 *  - **Cooperative drain** (`installDrainHandler`), for `memoria
 *    serve`: the handler only sets an atomic flag; the accept loop
 *    polls `drainRequested()` and performs an orderly drain (stop
 *    admitting, finish in-flight, flush, exit 0). The handler is
 *    installed *without* SA_RESTART so a blocking read() wakes with
 *    EINTR and notices the flag.
 *
 * Async-signal-safety: flushing an ofstream from a handler is not
 * strictly async-signal-safe. The compromise is deliberate and narrow:
 * the trace flush uses try_lock (never deadlocks against an interrupted
 * emitter — worst case the flush is skipped), callbacks run behind a
 * reentrancy guard, and the handler ends in _exit, never returning to
 * corrupted state. For a diagnostics-on-interrupt path this trades
 * theoretical purity for never losing a trace.
 */

#ifndef MEMORIA_SUPPORT_SIGNALS_HH
#define MEMORIA_SUPPORT_SIGNALS_HH

#include <functional>

namespace memoria {
namespace signals {

/**
 * Mode 1: on SIGINT/SIGTERM flush the trace sink, run the registered
 * callbacks, and _exit(128 + sig). Idempotent.
 */
void installFlushOnSignal();

/**
 * Register work for the flush-and-exit handler (e.g. dumping the stats
 * registry). Callbacks run in registration order, at most once, behind
 * a reentrancy guard. Must be registered before signals can arrive.
 */
void addFlushCallback(std::function<void()> fn);

/**
 * Mode 2: on SIGINT/SIGTERM set the drain flag only (no SA_RESTART, so
 * blocking reads wake with EINTR). A second signal while draining
 * falls back to flush-and-exit so a hung drain can still be escaped.
 */
void installDrainHandler();

/** True once a drain signal has arrived. */
bool drainRequested();

/** The signal that requested the drain (0 when none). */
int drainSignal();

/** Programmatic drain request (the serve `shutdown` op uses this). */
void requestDrain();

/**
 * SIGCHLD support for the serve supervisor: the handler only sets an
 * atomic flag (SA_NOCLDSTOP, no SA_RESTART — a supervisor blocked in
 * poll() wakes with EINTR and reaps). Consumers poll
 * `childEventPending()` and reap with waitpid(WNOHANG).
 */
void installChildHandler();

/** True when a SIGCHLD arrived since the last consume. */
bool childEventPending();

/** Clear the SIGCHLD flag (call before waitpid so a signal racing the
 *  reap loop re-sets it). */
void consumeChildEvent();

/**
 * SIGHUP support for the serve supervisor: the handler only sets an
 * atomic flag (no SA_RESTART). The supervisor's monitor loop polls
 * `hupPending()` and starts a rolling recycle of all shard workers —
 * one at a time, zero requests lost — when it consumes the flag.
 */
void installHupHandler();

/** True when a SIGHUP arrived since the last consume. */
bool hupPending();

/** Test-and-clear the SIGHUP flag: true when one was pending. */
bool consumeHup();

/** Programmatic SIGHUP (tests drive rolling restarts without kill). */
void requestHup();

/** Test hook: clear the drain flag. */
void resetForTest();

} // namespace signals
} // namespace memoria

#endif // MEMORIA_SUPPORT_SIGNALS_HH
