/**
 * @file
 * Build identity, stamped at configure time.
 *
 * CMake configures version.cc.in with the semantic version, the git
 * hash of the checkout (`git rev-parse --short HEAD`, "unknown" when
 * built outside a checkout), the build type, and whether the sanitizer
 * option was on. `memoria --version` prints this; incident bundles and
 * the serve `health` response embed it so a reproducer names the exact
 * build that produced it.
 */

#ifndef MEMORIA_SUPPORT_VERSION_HH
#define MEMORIA_SUPPORT_VERSION_HH

#include <string>

namespace memoria {

/** The stamped build identity. */
struct BuildInfo
{
    const char *version;    ///< semantic version, e.g. "0.5.0"
    const char *gitHash;    ///< short commit hash or "unknown"
    const char *buildType;  ///< CMAKE_BUILD_TYPE at configure time
    bool sanitizers;        ///< MEMORIA_SANITIZE was ON
};

/** The build this binary came from. */
const BuildInfo &buildInfo();

/** One-line rendering: "memoria 0.5.0 (git abc1234, Release, sanitizers off)". */
std::string versionLine();

} // namespace memoria

#endif // MEMORIA_SUPPORT_VERSION_HH
