#include "support/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/logging.hh"

namespace memoria {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    MEMORIA_ASSERT(cells.size() == headers_.size(),
                   "row width " << cells.size() << " != header width "
                                << headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addRule()
{
    rows_.emplace_back();
}

std::string
TextTable::str() const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::ostringstream os;
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
        }
        os << " |\n";
        return os.str();
    };

    auto renderRule = [&]() {
        std::ostringstream os;
        for (size_t c = 0; c < widths.size(); ++c) {
            os << (c == 0 ? "|-" : "-|-");
            os << std::string(widths[c], '-');
        }
        os << "-|\n";
        return os.str();
    };

    std::ostringstream os;
    os << renderRule() << renderRow(headers_) << renderRule();
    for (const auto &row : rows_) {
        if (row.empty())
            os << renderRule();
        else
            os << renderRow(row);
    }
    os << renderRule();
    return os.str();
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::pct(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
asciiBar(double fraction, int width)
{
    fraction = std::clamp(fraction, 0.0, 1.0);
    int filled = static_cast<int>(fraction * width + 0.5);
    return std::string(filled, '#') + std::string(width - filled, ' ');
}

} // namespace memoria
