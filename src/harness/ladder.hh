/**
 * @file
 * The degradation ladder: progressively simpler pipeline configurations
 * tried under a per-attempt budget until one completes.
 *
 * When the full Compound pipeline times out or faults on a program, the
 * ladder does not fail the program — it descends one rung to a cheaper,
 * more conservative configuration and tries again with a fresh budget:
 *
 *   rung 0  full-compound   permutation + fuse-all + distribution + fusion
 *   rung 1  no-fusion       the final profit-driven fusion pass disabled
 *   rung 2  permute-only    fuse-all and distribution also disabled
 *   rung 3  identity        no transformation at all; analysis/simulation
 *                           of the verbatim program
 *
 * Every rung runs with verification on, so a rung that completes has
 * passed IR validation and the differential-equivalence oracle — the
 * ladder trades optimization strength for reliability, never semantics.
 *
 * Faults (unexpected exceptions, e.g. an injected fault) are treated as
 * potentially transient: the ladder sleeps a capped exponential backoff
 * before the next attempt. Deadline/budget cancellations descend
 * immediately — retrying the same work against the same limit cannot
 * help, and a cheaper rung might fit.
 */

#ifndef MEMORIA_HARNESS_LADDER_HH
#define MEMORIA_HARNESS_LADDER_HH

#include <functional>
#include <string>
#include <vector>

#include "driver/memoria.hh"
#include "harness/budget.hh"

namespace memoria {
namespace harness {

/** The ladder's rungs, strongest first. */
enum class Rung
{
    FullCompound = 0,
    NoFusion = 1,
    PermuteOnly = 2,
    Identity = 3,
};

constexpr int kNumRungs = 4;

/** Printable name ("full-compound", "no-fusion", ...). */
const char *rungName(Rung r);

/**
 * The weaker (higher-numbered, cheaper) of two rungs. Callers that
 * impose a floor on where the ladder may start — the serve breaker
 * degrading to Identity, the memory governor forcing a cheaper rung
 * under RSS pressure — combine it with the configured start rung via
 * this instead of hand-comparing enum values.
 */
constexpr Rung
weakerRung(Rung a, Rung b)
{
    return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

/** The pipeline configuration one rung runs. */
PipelineOptions rungPipeline(Rung r);

/** One failed attempt, for the batch report. */
struct AttemptFailure
{
    Rung rung = Rung::FullCompound;

    /** "timeout" (budget cancellation) or "fault" (exception). */
    std::string kind;

    /** Human-readable cause: cancel site or exception message. */
    std::string detail;
};

/** Knobs for one ladder run. */
struct LadderOptions
{
    /** Per-attempt limits; each rung gets a fresh CancelToken (and
     *  therefore a fresh deadline). */
    Budget budget;

    /** Start below the top (used by tests to pin a configuration). */
    Rung startRung = Rung::FullCompound;

    /** Capped exponential backoff before retrying after a *fault*
     *  (base * 2^(attempt-1), clamped to cap); 0 disables sleeping. */
    int backoffBaseMs = 5;
    int backoffCapMs = 40;
};

/** What a whole ladder run produced. */
struct LadderOutcome
{
    /** Some rung completed. */
    bool ok = false;

    /** The rung that completed (valid when ok). */
    Rung rung = Rung::FullCompound;

    /** Attempts made, successful one included. */
    int attempts = 0;

    /** Every attempt that did not complete. */
    std::vector<AttemptFailure> failures;

    /** Interpreter iterations across all attempts. */
    uint64_t iterationsUsed = 0;

    /** Largest IR node count any attempt saw. */
    uint64_t maxIrNodesSeen = 0;

    /** Milliseconds slept in backoff. */
    int64_t backoffMs = 0;
};

/** What the attempt callback receives. */
struct AttemptContext
{
    Rung rung;
    PipelineOptions pipeline;  ///< configuration for this rung
    CancelToken &token;        ///< already installed for the thread
    int attempt;               ///< 1-based
};

/**
 * One pipeline attempt. Runs with `ctx.token` installed as the current
 * thread's budget scope; should throw CancelledError (via polls) on
 * budget exhaustion and any exception on failure. Exceptions that are
 * neither CancelledError nor std::exception propagate to runLadder's
 * caller — the batch driver uses that for input-level diagnostics that
 * no amount of descending can fix.
 */
using AttemptFn = std::function<void(AttemptContext &)>;

/** Descend the ladder until an attempt completes or the rungs run out. */
LadderOutcome runLadder(const LadderOptions &opts, const AttemptFn &fn);

} // namespace harness
} // namespace memoria

#endif // MEMORIA_HARNESS_LADDER_HH
