#include "harness/ladder.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "support/stats.hh"
#include "support/trace.hh"

namespace memoria {
namespace harness {

const char *
rungName(Rung r)
{
    switch (r) {
      case Rung::FullCompound:
        return "full-compound";
      case Rung::NoFusion:
        return "no-fusion";
      case Rung::PermuteOnly:
        return "permute-only";
      case Rung::Identity:
        return "identity";
    }
    return "?";
}

PipelineOptions
rungPipeline(Rung r)
{
    PipelineOptions opts;
    // The batch pipeline reports real outcomes only; the
    // legality-ignoring ideal variant is a per-program cost it never
    // uses, on any rung.
    opts.computeIdeal = false;
    switch (r) {
      case Rung::FullCompound:
        break;
      case Rung::NoFusion:
        opts.compound.applyFusion = false;
        break;
      case Rung::PermuteOnly:
        opts.compound.applyFusion = false;
        opts.compound.enableFuseAll = false;
        opts.compound.enableDistribution = false;
        break;
      case Rung::Identity:
        opts.transform = false;
        break;
    }
    return opts;
}

LadderOutcome
runLadder(const LadderOptions &opts, const AttemptFn &fn)
{
    LadderOutcome out;
    int64_t backoff = 0;

    for (int r = static_cast<int>(opts.startRung); r < kNumRungs; ++r) {
        Rung rung = static_cast<Rung>(r);
        ++out.attempts;

        if (backoff > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff));
            out.backoffMs += backoff;
        }

        // Fresh token per rung: the deadline restarts, so a rung that
        // timed out does not doom every cheaper configuration below it.
        CancelToken token(opts.budget);
        BudgetScope scope(&token);
        AttemptContext ctx{rung, rungPipeline(rung), token, out.attempts};

        obs::TraceScope span("harness", "ladder_attempt");
        span.arg("rung", rungName(rung));
        span.arg("attempt", out.attempts);

        try {
            fn(ctx);
            out.ok = true;
            out.rung = rung;
        } catch (const CancelledError &c) {
            out.failures.push_back({rung, "timeout", c.str()});
            ++obs::counter("harness.ladder.timeouts");
            // Retrying the same rung against the same limit cannot
            // help; descend immediately, no backoff.
            backoff = 0;
        } catch (const std::exception &e) {
            out.failures.push_back({rung, "fault", e.what()});
            ++obs::counter("harness.ladder.faults");
            // Faults may be transient; back off before the next rung.
            int64_t next = backoff > 0 ? backoff * 2 : opts.backoffBaseMs;
            backoff = std::min<int64_t>(next, opts.backoffCapMs);
        }

        out.iterationsUsed += token.iterationsUsed();
        out.maxIrNodesSeen =
            std::max(out.maxIrNodesSeen, token.maxIrNodesSeen());

        if (out.ok) {
            span.arg("ok", true);
            if (rung != Rung::FullCompound)
                ++obs::counter("harness.ladder.degraded");
            return out;
        }
        span.arg("ok", false);
    }
    return out;
}

} // namespace harness
} // namespace memoria
