#include "harness/fault.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "harness/budget.hh"
#include "support/logging.hh"

namespace memoria {
namespace harness {

namespace {

/** Registration happens during static init; guard anyway so lazy
 *  (function-local) sites stay correct. */
std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

std::vector<FaultSite *> &
registry()
{
    static std::vector<FaultSite *> sites;
    return sites;
}

/** Fast-path gate: true when a plan is armed or accounting is on. */
std::atomic<bool> gActive{false};
std::atomic<bool> gAccounting{false};

std::mutex gPlanMutex;
std::optional<FaultSpec> gPlan;
uint64_t gPlanHits = 0;  ///< matching hits since armFault (guarded)
bool gPlanFired = false;

thread_local std::map<std::string, uint64_t> tlsHits;
thread_local std::string tlsProgram;

void
refreshActive()
{
    gActive.store(gPlan.has_value() ||
                      gAccounting.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
}

/** Cooperative stall: sleep in small slices, polling the budget token
 *  so a deadline converts the stall into a clean cancellation. */
void
stall(int ms, const char *site)
{
    auto end = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < end) {
        poll(site);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    poll(site);
}

} // namespace

const char *
faultActionName(FaultAction a)
{
    switch (a) {
      case FaultAction::Throw:
        return "throw";
      case FaultAction::Diag:
        return "diag";
      case FaultAction::Stall:
        return "stall";
      case FaultAction::Abort:
        return "abort";
    }
    return "?";
}

std::string
FaultSpec::str() const
{
    std::string s = site;
    s += ":";
    s += faultActionName(action);
    s += ":" + std::to_string(onHit);
    if (!program.empty())
        s += "@" + program;
    return s;
}

FaultSite::FaultSite(const char *name, bool supportsDiag)
    : name_(name), supportsDiag_(supportsDiag)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    registry().push_back(this);
}

std::optional<Diag>
FaultSite::fire()
{
    if (!gActive.load(std::memory_order_relaxed))
        return std::nullopt;

    if (gAccounting.load(std::memory_order_relaxed))
        ++tlsHits[name_];

    FaultAction action;
    int stallMs;
    {
        std::lock_guard<std::mutex> lock(gPlanMutex);
        if (!gPlan || gPlan->site != name_ || gPlanFired)
            return std::nullopt;
        if (!gPlan->program.empty() && gPlan->program != tlsProgram)
            return std::nullopt;
        if (++gPlanHits < static_cast<uint64_t>(gPlan->onHit))
            return std::nullopt;
        gPlanFired = true;
        action = gPlan->action;
        stallMs = gPlan->stallMs;
    }

    switch (action) {
      case FaultAction::Throw:
        throw InjectedFault(name_);
      case FaultAction::Diag:
        return Diag::error("harness.injected",
                           "injected fault at " + std::string(name_));
      case FaultAction::Stall:
        stall(stallMs, name_);
        return std::nullopt;
      case FaultAction::Abort:
        // A deliberate hard crash: no unwinding, no containment. The
        // process dies with SIGABRT; only a supervising parent process
        // (serve/supervisor.hh) can turn this into a clean outcome.
        std::abort();
    }
    return std::nullopt;
}

void
FaultSite::fireNoDiag()
{
    if (std::optional<Diag> d = fire())
        throw InjectedFault(name_);
}

void
armFault(const FaultSpec &spec)
{
    std::lock_guard<std::mutex> lock(gPlanMutex);
    gPlan = spec;
    gPlanHits = 0;
    gPlanFired = false;
    refreshActive();
}

void
clearFault()
{
    std::lock_guard<std::mutex> lock(gPlanMutex);
    gPlan.reset();
    gPlanHits = 0;
    gPlanFired = false;
    refreshActive();
}

std::optional<FaultSpec>
armedFault()
{
    std::lock_guard<std::mutex> lock(gPlanMutex);
    return gPlan;
}

bool
armedFaultFired()
{
    std::lock_guard<std::mutex> lock(gPlanMutex);
    return gPlanFired;
}

std::vector<std::string>
faultSites()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const FaultSite *s : registry())
        names.push_back(s->name());
    std::sort(names.begin(), names.end());
    return names;
}

bool
faultSiteSupportsDiag(const std::string &name)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    for (const FaultSite *s : registry())
        if (name == s->name())
            return s->supportsDiag();
    return false;
}

FaultSpec
seededFault(uint64_t seed)
{
    std::vector<std::string> names = faultSites();
    MEMORIA_ASSERT(!names.empty(), "no fault sites registered");
    // splitmix64 step so consecutive seeds pick unrelated sites.
    uint64_t h = seed + 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    h ^= h >> 31;
    FaultSpec spec;
    spec.site = names[h % names.size()];
    // % 3 on purpose: seeded campaigns must stay containable, so Abort
    // (which kills the process) is never picked at random.
    spec.action = static_cast<FaultAction>((h >> 8) % 3);
    spec.onHit = 1 + static_cast<int>((h >> 16) % 3);
    spec.stallMs = 20;
    return spec;
}

Result<FaultSpec>
parseFaultSpec(const std::string &text)
{
    auto bad = [&](const std::string &why) {
        return Result<FaultSpec>::err(Diag::error(
            "harness.fault_spec", "'" + text + "': " + why +
                "; expected site[:throw|diag|stall[:N]][@program]"));
    };

    std::string body = text;
    FaultSpec spec;
    if (size_t at = body.find('@'); at != std::string::npos) {
        spec.program = body.substr(at + 1);
        body = body.substr(0, at);
        if (spec.program.empty())
            return bad("empty program filter");
    }

    std::vector<std::string> parts;
    size_t start = 0;
    while (true) {
        size_t colon = body.find(':', start);
        parts.push_back(body.substr(start, colon - start));
        if (colon == std::string::npos)
            break;
        start = colon + 1;
    }
    if (parts.empty() || parts[0].empty())
        return bad("missing site name");
    if (parts.size() > 3)
        return bad("too many ':' fields");

    spec.site = parts[0];
    std::vector<std::string> known = faultSites();
    if (std::find(known.begin(), known.end(), spec.site) == known.end())
        return bad("unknown site (see `memoria batch --list-faults`)");

    if (parts.size() > 1) {
        const std::string &a = parts[1];
        if (a == "throw")
            spec.action = FaultAction::Throw;
        else if (a == "diag")
            spec.action = FaultAction::Diag;
        else if (a == "stall")
            spec.action = FaultAction::Stall;
        else if (a == "abort")
            spec.action = FaultAction::Abort;
        else
            return bad("unknown action '" + a + "'");
    }
    if (parts.size() > 2) {
        try {
            spec.onHit = std::stoi(parts[2]);
        } catch (const std::exception &) {
            spec.onHit = 0;
        }
        if (spec.onHit < 1)
            return bad("hit count must be a positive integer");
    }
    return spec;
}

void
setFaultAccounting(bool on)
{
    gAccounting.store(on, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(gPlanMutex);
    refreshActive();
}

std::map<std::string, uint64_t>
drainFaultHits()
{
    std::map<std::string, uint64_t> out;
    out.swap(tlsHits);
    return out;
}

ProgramContext::ProgramContext(std::string name)
    : prev_(std::move(tlsProgram))
{
    tlsProgram = std::move(name);
}

ProgramContext::~ProgramContext()
{
    tlsProgram = std::move(prev_);
}

const std::string &
currentProgram()
{
    return tlsProgram;
}

} // namespace harness
} // namespace memoria
