#include "harness/incident.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "frontend/parser.hh"
#include "ir/printer.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/trace.hh"
#include "support/version.hh"

namespace memoria {
namespace incident {

namespace {

namespace fs = std::filesystem;

/** Directory-name-safe rendering of a program name. */
std::string
sanitize(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                  c == '.';
        out.push_back(ok ? c : '-');
    }
    if (out.empty())
        out = "anon";
    // Bound the path component; long generated names add nothing.
    if (out.size() > 64)
        out.resize(64);
    return out;
}

bool
writeFile(const fs::path &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << content;
    return static_cast<bool>(out);
}

/** Leading dotted code of a rendered Diag ("code: ..." / "code at .."). */
std::string
diagCodeOf(const std::string &rendered)
{
    size_t end = 0;
    while (end < rendered.size() && rendered[end] != ':' &&
           rendered[end] != ' ')
        ++end;
    return rendered.substr(0, end);
}

} // namespace

FailureSignature
signatureOf(const harness::ProgramOutcome &out)
{
    FailureSignature sig;
    sig.status = out.status;
    if (out.status == harness::BatchStatus::Diag)
        sig.diagCode = diagCodeOf(out.diag);
    return sig;
}

bool
matchesSignature(const FailureSignature &sig,
                 const harness::ProgramOutcome &out)
{
    if (out.status != sig.status)
        return false;
    if (sig.status == harness::BatchStatus::Diag && !sig.diagCode.empty())
        return diagCodeOf(out.diag) == sig.diagCode;
    return true;
}

FailurePredicate
pipelineFailurePredicate(std::string name, harness::BatchOptions opts,
                         FailureSignature sig,
                         std::optional<harness::FaultSpec> fault)
{
    // Candidate runs need no source capture of their own.
    opts.captureSource = false;
    return [name = std::move(name), opts, sig,
            fault = std::move(fault)](const Program &p) -> bool {
        if (fault) {
            harness::FaultSpec spec = *fault;
            spec.program = name;
            harness::armFault(spec);
        }
        harness::BatchInput in{name, [&p]() -> Result<Program> {
                                   return Result<Program>(p.clone());
                               }};
        harness::ProgramOutcome out = harness::runIsolated(in, opts);
        return matchesSignature(sig, out);
    };
}

namespace {

/**
 * Keep only the newest `maxRetained` bundle directories under `root`,
 * deleting the rest oldest-first by modification time. Best-effort:
 * retention must never fail the bundle write that triggered it.
 */
void
pruneOldBundles(const fs::path &root, int maxRetained)
{
    if (maxRetained <= 0)
        return;
    std::error_code ec;
    std::vector<std::pair<fs::file_time_type, fs::path>> bundles;
    for (const fs::directory_entry &e :
         fs::directory_iterator(root, ec)) {
        if (ec)
            return;
        if (!e.is_directory(ec) || ec)
            continue;
        fs::file_time_type t = e.last_write_time(ec);
        if (ec)
            continue;
        bundles.emplace_back(t, e.path());
    }
    if (bundles.size() <= static_cast<size_t>(maxRetained))
        return;
    std::sort(bundles.begin(), bundles.end());
    size_t excess = bundles.size() - static_cast<size_t>(maxRetained);
    for (size_t i = 0; i < excess; ++i) {
        fs::remove_all(bundles[i].second, ec);
        if (!ec)
            ++obs::counter("incident.retention_pruned");
    }
}

} // namespace

Result<std::string>
writeBundle(const Incident &inc, const std::string &root,
            int maxRetained)
{
    auto ioErr = [](const std::string &what) {
        return Result<std::string>::err(
            Diag::error("incident.write", what));
    };

    std::error_code ec;
    fs::create_directories(root, ec);
    if (ec)
        return ioErr("cannot create '" + root + "': " + ec.message());

    std::string stem = sanitize(inc.name) + "-" + sanitize(inc.kind);
    fs::path dir = fs::path(root) / stem;
    for (int n = 2; fs::exists(dir) && n < 1000; ++n)
        dir = fs::path(root) / (stem + "-" + std::to_string(n));
    fs::create_directories(dir, ec);
    if (ec)
        return ioErr("cannot create '" + dir.string() + "': " +
                     ec.message());

    const BuildInfo &build = buildInfo();
    json::Value meta = json::Value::object();
    meta.set("schema", json::Value::string("memoria.incident.v1"));
    meta.set("name", json::Value::string(inc.name));
    meta.set("kind", json::Value::string(inc.kind));
    meta.set("detail", json::Value::string(inc.detail));
    if (inc.seed != 0)
        meta.set("seed",
                 json::Value::number(static_cast<int64_t>(inc.seed)));
    if (!inc.faultSpec.empty())
        meta.set("fault_spec", json::Value::string(inc.faultSpec));
    if (!inc.options.empty())
        meta.set("options", json::Value::string(inc.options));

    json::Value buildObj = json::Value::object();
    buildObj.set("version", json::Value::string(build.version));
    buildObj.set("git", json::Value::string(build.gitHash));
    buildObj.set("build_type", json::Value::string(build.buildType));
    buildObj.set("sanitizers", json::Value::boolean(build.sanitizers));
    meta.set("build", std::move(buildObj));

    json::Value red = json::Value::object();
    red.set("orig_nodes",
            json::Value::number(static_cast<int64_t>(inc.origNodes)));
    red.set("final_nodes",
            json::Value::number(static_cast<int64_t>(inc.finalNodes)));
    red.set("checks", json::Value::number(int64_t{inc.checks}));
    red.set("one_minimal", json::Value::boolean(inc.oneMinimal));
    red.set("reproduced", json::Value::boolean(inc.reproduced));
    meta.set("reduction", std::move(red));

    json::Value files = json::Value::object();
    files.set("original", json::Value::string("original.mem"));
    if (!inc.minimized.empty())
        files.set("minimized", json::Value::string("minimized.mem"));
    if (!inc.traceTail.empty())
        files.set("trace", json::Value::string("trace.jsonl"));
    meta.set("files", std::move(files));

    if (!writeFile(dir / "incident.json", meta.dump() + "\n"))
        return ioErr("cannot write incident.json in '" + dir.string() +
                     "'");
    if (!writeFile(dir / "original.mem", inc.source))
        return ioErr("cannot write original.mem in '" + dir.string() +
                     "'");
    if (!inc.minimized.empty() &&
        !writeFile(dir / "minimized.mem", inc.minimized))
        return ioErr("cannot write minimized.mem in '" + dir.string() +
                     "'");
    if (!inc.traceTail.empty()) {
        std::string tail;
        for (const std::string &line : inc.traceTail) {
            tail += line;
            tail += "\n";
        }
        if (!writeFile(dir / "trace.jsonl", tail))
            return ioErr("cannot write trace.jsonl in '" + dir.string() +
                         "'");
    }
    pruneOldBundles(root, maxRetained);
    return Result<std::string>(dir.string());
}

Result<std::string>
captureIncident(Incident inc, const Program &program,
                const FailurePredicate &pred,
                const IncidentPolicy &policy)
{
    obs::TraceScope span("incident", "capture");
    span.arg("program", inc.name);
    span.arg("kind", inc.kind);

    ReduceResult red = reduceProgram(program, pred, policy.reduce);
    inc.origNodes = red.origNodes;
    inc.finalNodes = red.finalNodes;
    inc.checks = red.checks;
    inc.oneMinimal = red.oneMinimal;
    inc.reproduced = red.inputFailed;
    if (red.inputFailed)
        inc.minimized = printProgram(red.program);

    if (obs::RingSink *ring = obs::RingSink::instance()) {
        // Inside a request context (serve), take only this request's
        // spans — the bundle's trace.jsonl is then exactly the flight-
        // recorder tail for the response's trace_id. Outside one, keep
        // the whole ring as before.
        const std::string &traceId = obs::currentTraceContext().traceId;
        std::vector<std::string> lines = traceId.empty()
                                             ? ring->snapshot()
                                             : ring->snapshotFor(traceId);
        constexpr size_t kTailMax = 200;
        size_t start = lines.size() > kTailMax ? lines.size() - kTailMax
                                               : 0;
        inc.traceTail.assign(lines.begin() + start, lines.end());
    }

    Result<std::string> written =
        writeBundle(inc, policy.dir, policy.maxRetained);
    if (written.ok()) {
        ++obs::counter("incident.bundles");
        obs::traceEvent("incident", "bundle",
                        {{"dir", written.value()},
                         {"orig_nodes",
                          static_cast<int64_t>(inc.origNodes)},
                         {"final_nodes",
                          static_cast<int64_t>(inc.finalNodes)}});
    }
    return written;
}

Result<std::string>
captureOutcome(const harness::ProgramOutcome &out,
               const harness::BatchOptions &opts,
               const IncidentPolicy &policy,
               std::optional<harness::FaultSpec> fault)
{
    if (out.source.empty()) {
        return Result<std::string>::err(Diag::error(
            "incident.no_source",
            "outcome for '" + out.name +
                "' has no captured source (BatchOptions::captureSource)"));
    }
    ParseError perr;
    std::optional<Program> prog = parseProgram(out.source, &perr);
    if (!prog) {
        return Result<std::string>::err(Diag::error(
            "incident.reparse",
            "captured source for '" + out.name +
                "' does not re-parse: " + perr.message));
    }

    Incident inc;
    inc.name = out.name;
    inc.kind = harness::batchStatusName(out.status);
    inc.detail = out.diag;
    if (inc.detail.empty() && !out.failures.empty())
        inc.detail = out.failures.back().kind + ": " +
                     out.failures.back().detail;
    inc.source = out.source;
    if (fault)
        inc.faultSpec = fault->str();

    FailurePredicate pred = pipelineFailurePredicate(
        out.name, opts, signatureOf(out), fault);
    return captureIncident(std::move(inc), *prog, pred, policy);
}

std::vector<std::string>
processBatchIncidents(const harness::BatchReport &report,
                      const harness::BatchOptions &opts,
                      const IncidentPolicy &policy)
{
    // The reduction predicates re-arm and consume the global fault
    // plan; remember what the caller had armed so it can be restored.
    std::optional<harness::FaultSpec> armed = harness::armedFault();
    bool alreadyFired = harness::armedFaultFired();

    std::vector<std::string> dirs;
    int dropped = 0;
    for (const harness::ProgramOutcome &out : report.programs) {
        if (out.status == harness::BatchStatus::Ok)
            continue;
        if (static_cast<int>(dirs.size()) >= policy.maxIncidents) {
            ++dropped;
            continue;
        }
        // Pass the armed spec only when this program actually hit the
        // site — otherwise the failure has another cause and re-arming
        // would minimize against the wrong signal.
        std::optional<harness::FaultSpec> fault;
        if (armed && out.faultHits.count(armed->site))
            fault = armed;
        Result<std::string> r =
            captureOutcome(out, opts, policy, fault);
        if (r.ok())
            dirs.push_back(r.value());
        else
            obs::traceEvent("incident", "skip",
                            {{"program", out.name},
                             {"why", r.diag().str()}});
    }
    if (dropped > 0) {
        warn("incident cap reached: " + std::to_string(dropped) +
             " contained failure(s) not bundled");
        obs::counter("incident.dropped") +=
            static_cast<uint64_t>(dropped);
    }

    if (armed && !alreadyFired)
        harness::armFault(*armed);
    else
        harness::clearFault();
    return dirs;
}

} // namespace incident
} // namespace memoria
