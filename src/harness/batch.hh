/**
 * @file
 * The crash-isolating batch driver behind `memoria batch`.
 *
 * Runs the full pipeline — load/parse, validate, Compound (with
 * verification), cache simulation — over many programs on a small
 * worker pool, with per-program isolation: each program runs under a
 * fault-attribution `ProgramContext`, descends the degradation ladder
 * (harness/ladder.hh) under per-attempt budgets, and every failure mode
 * is contained to that program's report entry. One hostile input, one
 * injected fault, or one pathological nest cannot take down the batch.
 *
 * Per-program status:
 *
 *   ok               full pipeline completed on the top rung
 *   degraded         a lower rung completed (report says which)
 *   diag             the *input* is bad (parse/validate/execution Diag);
 *                    no rung can fix it, so the ladder is not descended
 *   timeout          even the identity rung exceeded its budget
 *   panic-contained  an unexpected exception escaped the pipeline and
 *                    was caught at the isolation boundary
 *
 * The report renders as one JSON object (docs/ROBUSTNESS.md describes
 * the schema) and feeds the obs stats registry (`batch.*` counters).
 */

#ifndef MEMORIA_HARNESS_BATCH_HH
#define MEMORIA_HARNESS_BATCH_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cachesim/cache.hh"
#include "check/diag.hh"
#include "harness/ladder.hh"
#include "ir/program.hh"

namespace memoria {
namespace harness {

/** Terminal state of one program in the batch. */
enum class BatchStatus
{
    Ok,
    Degraded,
    Diag,
    Timeout,
    PanicContained,
};

/** Printable name ("ok", "degraded", "diag", "timeout",
 *  "panic-contained"). */
const char *batchStatusName(BatchStatus s);

/**
 * One unit of work. `load` runs inside the program's isolation
 * boundary, so a throwing or Diag-reporting loader (a file that fails
 * to parse, say) is contained like any other per-program failure.
 */
struct BatchInput
{
    std::string name;
    std::function<Result<Program>()> load;
};

/** Knobs for one batch run. */
struct BatchOptions
{
    /** Per-attempt limits (fresh deadline per ladder rung). */
    Budget budget;

    /** Worker threads. */
    int jobs = 1;

    /** Simulate survivors and report warm hit rates. Part of each
     *  ladder attempt, so a faulting or overlong simulation also
     *  degrades/contains. */
    bool simulate = true;

    /**
     * Cache configurations simulated per survivor. All configurations
     * are fed from **one** interpreter pass per program version
     * (cachesim/sweep.hh), so adding a second geometry costs only the
     * cache model, not a second execution. The first entry is the
     * primary: its counters populate the legacy scalar fields of
     * ProgramOutcome and the top-level `sim` JSON object.
     */
    std::vector<CacheConfig> cacheConfigs{CacheConfig::i860()};

    /** Ladder backoff after faults (see LadderOptions). */
    int backoffBaseMs = 5;
    int backoffCapMs = 40;

    /**
     * First rung to attempt. The serve layer lowers this when a
     * circuit breaker on the optimize stage is open, so degraded
     * service skips the configurations that have been failing.
     */
    Rung startRung = Rung::FullCompound;

    /**
     * Capture the pretty-printed source of the loaded program into
     * `ProgramOutcome::source`. Incident bundling needs the original
     * text to minimize against; off by default because sweeps over
     * hundreds of programs do not.
     */
    bool captureSource = false;

    ModelParams params;
};

/** Per-nest outcome on the rung that completed. */
struct NestOutcome
{
    int depth = 0;
    std::string strategy;  ///< nestStrategyName of the final attempt
    bool rolledBack = false;
};

/** Everything the batch learned about one program. */
struct ProgramOutcome
{
    std::string name;
    BatchStatus status = BatchStatus::Ok;

    /** Rung that completed (meaningful for Ok/Degraded). */
    Rung rung = Rung::FullCompound;

    int attempts = 0;
    std::vector<AttemptFailure> failures;

    /** The diagnostic, for status Diag / PanicContained. */
    std::string diag;

    double timeMs = 0.0;
    uint64_t iterations = 0;     ///< interpreter iterations, all attempts
    uint64_t maxIrNodes = 0;     ///< largest node count seen
    int64_t backoffMs = 0;

    /**
     * Per-stage wall time across all attempts (microseconds), from the
     * thread-local `obs::stageTimes()` accumulator. The stages are
     * disjoint (verify time is subtracted from optimize even though
     * the oracle runs nested inside Compound), so the sum is <= the
     * program's total wall time; the remainder is ladder/bookkeeping
     * overhead. Serve stamps these into every response as `timings`.
     */
    struct StageTimings
    {
        double loadUs = 0.0;
        double optimizeUs = 0.0;
        double verifyUs = 0.0;
        double simulateUs = 0.0;
    };
    StageTimings timings;

    /** Fault-site hits attributed to this program. */
    std::map<std::string, uint64_t> faultHits;

    /** Pretty-printed source of the loaded program (only when
     *  BatchOptions::captureSource; empty when the load itself failed). */
    std::string source;

    /** Structure of the completed attempt (empty on identity rung). */
    int loops = 0;
    std::vector<NestOutcome> nests;

    /** Per-configuration simulation result (transformed program;
     *  hit_warm_* compare original vs transformed). */
    struct SimOutcome
    {
        std::string cache;  ///< CacheConfig::name
        uint64_t accesses = 0;
        uint64_t hits = 0;
        uint64_t misses = 0;
        double hitWarmOrig = 0.0;
        double hitWarmFinal = 0.0;
    };

    /** Simulation results (valid when simulated). The scalar fields
     *  mirror sims.front() — the primary configuration — for report
     *  stability; `sims` carries every swept configuration. */
    bool simulated = false;
    uint64_t accesses = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    double hitWarmOrig = 0.0;
    double hitWarmFinal = 0.0;
    std::vector<SimOutcome> sims;

    /** Contained failure of any kind (sweeps count these). */
    bool
    contained() const
    {
        return status != BatchStatus::Ok || !failures.empty();
    }
};

/** The whole batch. */
struct BatchReport
{
    std::vector<ProgramOutcome> programs;
    double totalMs = 0.0;

    int countWithStatus(BatchStatus s) const;

    /** Programs with a contained failure or degradation. */
    int containedCount() const;

    /** Everything finished on the top rung. */
    bool
    allOk() const
    {
        return containedCount() == 0;
    }

    /** Render the whole report as one JSON object. */
    std::string toJson() const;
};

/** The built-in kernels, by name (matmul-ijk, cholesky, adi, ...). */
std::vector<BatchInput> kernelInputs(int64_t n = 24);

/** The 35-program synthetic corpus. */
std::vector<BatchInput> corpusInputs(int64_t extent = 16);

/** A `.mem` source file; parse failures surface as per-program Diags. */
BatchInput fileInput(const std::string &path);

/** Every `.mem` file under `dir`, sorted; empty when none. */
std::vector<BatchInput> directoryInputs(const std::string &dir);

/** In-memory `.mem` source under an explicit name; parse failures
 *  surface as per-program Diags like fileInput's. */
BatchInput namedInput(std::string name, std::string source);

/**
 * Run one input through the full isolation boundary — ProgramContext,
 * budget-scoped load/validate, the degradation ladder — and never
 * throw. This is the unit `runBatch` schedules onto its pool; the
 * serve layer and the delta-debugging reducer call it directly for
 * single requests and candidate re-runs.
 */
ProgramOutcome runIsolated(const BatchInput &in, const BatchOptions &opts);

/** Run the batch; never throws for per-program failures. */
BatchReport runBatch(const std::vector<BatchInput> &inputs,
                     const BatchOptions &opts);

} // namespace harness
} // namespace memoria

#endif // MEMORIA_HARNESS_BATCH_HH
