#include "harness/budget.hh"

namespace memoria {
namespace harness {

namespace {

thread_local CancelToken *tlsToken = nullptr;

} // namespace

const char *
cancelKindName(CancelKind k)
{
    switch (k) {
      case CancelKind::Deadline:
        return "deadline";
      case CancelKind::IrBudget:
        return "ir_budget";
      case CancelKind::IterBudget:
        return "iter_budget";
      case CancelKind::External:
        return "cancel";
    }
    return "?";
}

std::string
CancelledError::str() const
{
    return std::string(cancelKindName(kind)) + " at " + where;
}

CancelToken::CancelToken(const Budget &budget)
    : budget_(budget), start_(std::chrono::steady_clock::now())
{
    deadline_ = budget_.deadlineMs > 0
                    ? start_ + std::chrono::milliseconds(budget_.deadlineMs)
                    : std::chrono::steady_clock::time_point::max();
}

void
CancelToken::poll(const char *where) const
{
    if (cancelled_.load(std::memory_order_relaxed))
        throw CancelledError{CancelKind::External, where};
    if (budget_.deadlineMs > 0 &&
        std::chrono::steady_clock::now() >= deadline_)
        throw CancelledError{CancelKind::Deadline, where};
}

void
CancelToken::chargeIterations(uint64_t n, const char *where)
{
    uint64_t total =
        iterations_.fetch_add(n, std::memory_order_relaxed) + n;
    if (budget_.maxInterpIterations > 0 &&
        total > budget_.maxInterpIterations)
        throw CancelledError{CancelKind::IterBudget, where};
    poll(where);
}

void
CancelToken::chargeIrNodes(uint64_t nodes, const char *where)
{
    uint64_t seen = irNodesSeen_.load(std::memory_order_relaxed);
    while (nodes > seen &&
           !irNodesSeen_.compare_exchange_weak(
               seen, nodes, std::memory_order_relaxed)) {
    }
    if (budget_.maxIrNodes > 0 && nodes > budget_.maxIrNodes)
        throw CancelledError{CancelKind::IrBudget, where};
    poll(where);
}

int64_t
CancelToken::elapsedMs() const
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

CancelToken *
currentToken()
{
    return tlsToken;
}

BudgetScope::BudgetScope(CancelToken *token) : previous_(tlsToken)
{
    tlsToken = token;
}

BudgetScope::~BudgetScope()
{
    tlsToken = previous_;
}

} // namespace harness
} // namespace memoria
