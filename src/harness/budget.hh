/**
 * @file
 * Cooperative deadlines and resource budgets for the pipeline.
 *
 * A `CancelToken` carries the limits one unit of work (typically one
 * batch program) may consume: a wall-clock deadline, an IR node budget,
 * and an interpreter iteration budget. The token is installed for the
 * current thread with a `BudgetScope`; library layers then poll it at
 * natural boundaries — the parser per statement, Compound per nest, the
 * equivalence oracle per round, the interpreter every few thousand loop
 * iterations — via `harness::poll()` and the charge helpers. Exceeding
 * any limit throws `CancelledError`, which unwinds the current attempt
 * and is caught by the degradation ladder / batch driver
 * (harness/ladder.hh, harness/batch.hh).
 *
 * With no scope installed every check is one thread-local pointer test,
 * so single-program CLI runs and the test suite pay nothing.
 */

#ifndef MEMORIA_HARNESS_BUDGET_HH
#define MEMORIA_HARNESS_BUDGET_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace memoria {
namespace harness {

/** Limits for one unit of work; 0 means unlimited. */
struct Budget
{
    /** Wall-clock deadline per pipeline attempt, in milliseconds. */
    int64_t deadlineMs = 0;

    /** Maximum IR nodes any single program version may hold. */
    uint64_t maxIrNodes = 0;

    /** Maximum interpreter loop iterations across the attempt. */
    uint64_t maxInterpIterations = 0;
};

/** Why an attempt was cancelled. */
enum class CancelKind
{
    Deadline,    ///< wall-clock deadline exceeded
    IrBudget,    ///< IR node budget exhausted
    IterBudget,  ///< interpreter iteration budget exhausted
    External,    ///< CancelToken::cancel() was called
};

/** Printable name ("deadline", "ir_budget", "iter_budget", "cancel"). */
const char *cancelKindName(CancelKind k);

/**
 * Thrown by poll()/charge helpers when a budget is exhausted. Plain
 * struct, deliberately not a std::exception subclass: generic
 * catch(std::exception) containment handlers in the batch driver must
 * not swallow cancellation, which has its own control flow.
 */
struct CancelledError
{
    CancelKind kind = CancelKind::Deadline;
    std::string where;  ///< poll site, e.g. "compound.nest"

    std::string str() const;
};

/** One attempt's budget state; shared between poller and owner. */
class CancelToken
{
  public:
    explicit CancelToken(const Budget &budget);

    /** Request cooperative cancellation from another thread. */
    void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

    /** Throws CancelledError when any limit is exceeded. */
    void poll(const char *where) const;

    /** Count interpreter iterations, then poll. */
    void chargeIterations(uint64_t n, const char *where);

    /** Check a program's node count against the IR budget. */
    void chargeIrNodes(uint64_t nodes, const char *where);

    /** Resources consumed so far (for the batch report). */
    uint64_t iterationsUsed() const
    {
        return iterations_.load(std::memory_order_relaxed);
    }
    uint64_t maxIrNodesSeen() const
    {
        return irNodesSeen_.load(std::memory_order_relaxed);
    }

    /** Milliseconds elapsed since the token was created. */
    int64_t elapsedMs() const;

    const Budget &budget() const { return budget_; }

  private:
    Budget budget_;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point deadline_;
    std::atomic<bool> cancelled_{false};
    std::atomic<uint64_t> iterations_{0};
    std::atomic<uint64_t> irNodesSeen_{0};
};

/** The token installed for the current thread, or nullptr. */
CancelToken *currentToken();

/** RAII: install `token` as the current thread's budget context. */
class BudgetScope
{
  public:
    explicit BudgetScope(CancelToken *token);
    ~BudgetScope();

    BudgetScope(const BudgetScope &) = delete;
    BudgetScope &operator=(const BudgetScope &) = delete;

  private:
    CancelToken *previous_;
};

/** Poll the current thread's token; no-op when none is installed. */
inline void
poll(const char *where)
{
    if (CancelToken *t = currentToken())
        t->poll(where);
}

/** Charge interpreter iterations against the current token. */
inline void
chargeIterations(uint64_t n, const char *where)
{
    if (CancelToken *t = currentToken())
        t->chargeIterations(n, where);
}

/** Charge an IR node count against the current token. */
inline void
chargeIrNodes(uint64_t nodes, const char *where)
{
    if (CancelToken *t = currentToken())
        t->chargeIrNodes(nodes, where);
}

} // namespace harness
} // namespace memoria

#endif // MEMORIA_HARNESS_BUDGET_HH
