#include "harness/batch.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include "check/validate.hh"
#include "frontend/parser.hh"
#include "ir/printer.hh"
#include "harness/fault.hh"
#include "suite/corpus.hh"
#include "suite/kernels.hh"
#include "support/stats.hh"
#include "support/trace.hh"
#include "transform/compound.hh"

namespace memoria {
namespace harness {

namespace {

/**
 * Thrown out of a ladder attempt for problems no rung can fix — the
 * *input* faults (e.g. the reference program goes out of bounds during
 * simulation). Deliberately not a std::exception subclass, so it flies
 * past runLadder's fault containment up to the per-program boundary,
 * which maps it to status Diag.
 */
struct InputError
{
    Diag diag;
};

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** JSON string escaping (quotes included). */
std::string
jstr(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

/** JSON-valid double rendering (no inf/nan). */
std::string
jnum(double v)
{
    std::ostringstream os;
    os << v;
    std::string s = os.str();
    if (s == "inf" || s == "-inf" || s == "nan" || s == "-nan")
        return "0";
    return s;
}

/** Run the ladder over optimize + simulate; fills `out` on success. */
void
runPipeline(const Program &prog, const BatchOptions &opts,
            ProgramOutcome &out)
{
    LadderOptions lopts;
    lopts.budget = opts.budget;
    lopts.startRung = opts.startRung;
    lopts.backoffBaseMs = opts.backoffBaseMs;
    lopts.backoffCapMs = opts.backoffCapMs;

    std::vector<CacheConfig> cacheCfgs = opts.cacheConfigs;
    if (cacheCfgs.empty())
        cacheCfgs.push_back(CacheConfig::i860());

    LadderOutcome lr = runLadder(lopts, [&](AttemptContext &ctx) {
        out.simulated = false;
        out.sims.clear();
        out.nests.clear();

        OptimizedProgram attempt = [&] {
            // Verification runs nested inside Compound (verifyAgainst
            // accrues verifyUs under its own StageTimer), so subtract
            // the verify delta to keep the stages disjoint.
            const double verifyBefore = obs::stageTimes().verifyUs;
            obs::StageTimer stage(&obs::StageTimes::optimizeUs);
            OptimizedProgram r =
                optimizeProgram(prog, opts.params, ctx.pipeline);
            obs::stageTimes().optimizeUs -=
                obs::stageTimes().verifyUs - verifyBefore;
            return r;
        }();

        if (opts.simulate) {
            obs::StageTimer stage(&obs::StageTimes::simulateUs);
            // One interpreter pass per program version feeds every
            // configuration (cachesim/sweep.hh). The reference
            // faulting is an input problem — no rung can fix it, so
            // bypass the ladder entirely.
            Result<SweepResult> orig =
                tryRunWithCaches(attempt.original, cacheCfgs);
            if (!orig.ok())
                throw InputError{orig.diag()};
            Result<SweepResult> fin =
                tryRunWithCaches(attempt.transformed, cacheCfgs);
            if (!fin.ok())
                throw std::runtime_error(
                    "transformed program faulted in simulation: " +
                    fin.diag().str());

            out.simulated = true;
            for (size_t i = 0; i < cacheCfgs.size(); ++i) {
                const CacheStats &fc = fin.value().cache[i];
                fc.checkConsistent();
                ProgramOutcome::SimOutcome sim;
                sim.cache = cacheCfgs[i].name;
                sim.accesses = fc.accesses;
                sim.hits = fc.hits;
                sim.misses = fc.misses;
                sim.hitWarmOrig =
                    orig.value().cache[i].hitRateWarm();
                sim.hitWarmFinal = fc.hitRateWarm();
                out.sims.push_back(std::move(sim));
            }
            out.accesses = out.sims.front().accesses;
            out.hits = out.sims.front().hits;
            out.misses = out.sims.front().misses;
            out.hitWarmOrig = out.sims.front().hitWarmOrig;
            out.hitWarmFinal = out.sims.front().hitWarmFinal;

            // Validate the paper's cost model against the simulator:
            // ratioFinal predicts the miss reduction (LoopCost ~ cache
            // lines fetched), so the predicted final warm hit rate is
            // 100*(1 - m0/ratioFinal) from the measured original miss
            // rate m0. Identity-rung attempts are skipped — with no
            // transformation there is no prediction to validate.
            if (ctx.pipeline.transform &&
                attempt.report.ratioFinal > 0.0) {
                double m0 = 1.0 - out.hitWarmOrig / 100.0;
                double predicted =
                    100.0 * (1.0 - m0 / attempt.report.ratioFinal);
                double deltaPp = predicted - out.hitWarmFinal;
                obs::histogram("model.accuracy.hit_rate_delta_pp")
                    .sample(deltaPp);
                obs::histogram("model.accuracy.abs_hit_rate_delta_pp")
                    .sample(deltaPp < 0 ? -deltaPp : deltaPp);
            }
        }

        out.loops = attempt.compound.totalLoops;
        for (const NestReport &nr : attempt.compound.nests)
            out.nests.push_back(
                {nr.depth, nestStrategyName(nr), nr.rolledBack});
    });

    out.attempts = lr.attempts;
    out.failures = lr.failures;
    out.iterations = lr.iterationsUsed;
    out.maxIrNodes = lr.maxIrNodesSeen;
    out.backoffMs = lr.backoffMs;

    if (lr.ok) {
        out.rung = lr.rung;
        out.status = lr.failures.empty() && lr.rung == Rung::FullCompound
                         ? BatchStatus::Ok
                         : BatchStatus::Degraded;
    } else {
        const AttemptFailure &last = lr.failures.back();
        out.status = last.kind == "timeout" ? BatchStatus::Timeout
                                            : BatchStatus::PanicContained;
        out.diag = last.detail;
    }
}

const char *
statusCounterName(BatchStatus s)
{
    switch (s) {
      case BatchStatus::Ok:
        return "batch.ok";
      case BatchStatus::Degraded:
        return "batch.degraded";
      case BatchStatus::Diag:
        return "batch.diag";
      case BatchStatus::Timeout:
        return "batch.timeout";
      case BatchStatus::PanicContained:
        return "batch.panic_contained";
    }
    return "batch.unknown";
}

} // namespace

ProgramOutcome
runIsolated(const BatchInput &in, const BatchOptions &opts)
{
    ProgramOutcome out;
    out.name = in.name;
    const double t0 = nowMs();

    ProgramContext pctx(in.name);

    // Give the program a trace context when the caller (serve) did not
    // install one, so standalone batch spans are attributable too.
    // Everything below runs synchronously on this thread, so nested
    // Compound/oracle/cachesim spans inherit the id for free.
    std::optional<obs::TraceContextScope> traceCtx;
    if (obs::tracingEnabled() && obs::currentTraceContext().traceId.empty())
        traceCtx.emplace(obs::makeTraceId());

    obs::TraceScope span("batch", "program");
    span.arg("program", in.name);
    obs::ScopedTimer timer(
        obs::statsRegistry().histogram("batch.program_time_us"));

    // Fresh per-request stage accumulator (thread-local; workers run
    // one program at a time).
    obs::stageTimes().reset();

    try {
        // Loading and validation run under their own budget so a stall
        // or a pathological input cannot hang the worker.
        Result<Program> loaded = [&] {
            obs::StageTimer stage(&obs::StageTimes::loadUs);
            CancelToken token(opts.budget);
            BudgetScope scope(&token);
            return in.load();
        }();
        if (!loaded.ok()) {
            out.status = BatchStatus::Diag;
            out.diag = loaded.diag().str();
        } else {
            const Program &prog = loaded.value();
            if (opts.captureSource)
                out.source = printProgram(prog);
            std::vector<Diag> errs = [&] {
                obs::StageTimer stage(&obs::StageTimes::loadUs);
                CancelToken token(opts.budget);
                BudgetScope scope(&token);
                return validateProgram(prog);
            }();
            if (!errs.empty()) {
                out.status = BatchStatus::Diag;
                out.diag = errs.front().str();
            } else {
                runPipeline(prog, opts, out);
            }
        }
    } catch (const InputError &ie) {
        out.status = BatchStatus::Diag;
        out.diag = ie.diag.str();
    } catch (const CancelledError &c) {
        // Cancellation during load/validate (ladder attempts catch
        // their own).
        out.status = BatchStatus::Timeout;
        out.diag = c.str();
    } catch (const std::exception &e) {
        out.status = BatchStatus::PanicContained;
        out.diag = e.what();
    } catch (...) {
        out.status = BatchStatus::PanicContained;
        out.diag = "unknown exception";
    }

    out.faultHits = drainFaultHits();
    out.timeMs = nowMs() - t0;

    const obs::StageTimes &st = obs::stageTimes();
    out.timings.loadUs = st.loadUs;
    out.timings.optimizeUs = st.optimizeUs;
    out.timings.verifyUs = st.verifyUs;
    out.timings.simulateUs = st.simulateUs;

    if (span.active()) {
        span.arg("status", batchStatusName(out.status));
        span.arg("rung", rungName(out.rung));
        span.arg("attempts", out.attempts);
    }
    return out;
}

const char *
batchStatusName(BatchStatus s)
{
    switch (s) {
      case BatchStatus::Ok:
        return "ok";
      case BatchStatus::Degraded:
        return "degraded";
      case BatchStatus::Diag:
        return "diag";
      case BatchStatus::Timeout:
        return "timeout";
      case BatchStatus::PanicContained:
        return "panic-contained";
    }
    return "?";
}

int
BatchReport::countWithStatus(BatchStatus s) const
{
    int n = 0;
    for (const ProgramOutcome &p : programs)
        if (p.status == s)
            ++n;
    return n;
}

int
BatchReport::containedCount() const
{
    int n = 0;
    for (const ProgramOutcome &p : programs)
        if (p.contained())
            ++n;
    return n;
}

std::string
BatchReport::toJson() const
{
    std::ostringstream os;
    os << "{\"programs\":[";
    bool firstProg = true;
    for (const ProgramOutcome &p : programs) {
        if (!firstProg)
            os << ",";
        firstProg = false;
        os << "{\"name\":" << jstr(p.name)
           << ",\"status\":" << jstr(batchStatusName(p.status))
           << ",\"rung\":" << jstr(rungName(p.rung))
           << ",\"attempts\":" << p.attempts
           << ",\"time_ms\":" << jnum(p.timeMs)
           << ",\"iterations\":" << p.iterations
           << ",\"max_ir_nodes\":" << p.maxIrNodes
           << ",\"backoff_ms\":" << p.backoffMs << ",\"loops\":"
           << p.loops;

        os << ",\"incidents\":[";
        bool first = true;
        for (const AttemptFailure &f : p.failures) {
            if (!first)
                os << ",";
            first = false;
            os << "{\"rung\":" << jstr(rungName(f.rung))
               << ",\"kind\":" << jstr(f.kind)
               << ",\"detail\":" << jstr(f.detail) << "}";
        }
        os << "]";

        os << ",\"fault_hits\":{";
        first = true;
        for (const auto &[site, hitCount] : p.faultHits) {
            if (!first)
                os << ",";
            first = false;
            os << jstr(site) << ":" << hitCount;
        }
        os << "}";

        os << ",\"nests\":[";
        first = true;
        for (const NestOutcome &n : p.nests) {
            if (!first)
                os << ",";
            first = false;
            os << "{\"depth\":" << n.depth
               << ",\"strategy\":" << jstr(n.strategy)
               << ",\"rolled_back\":"
               << (n.rolledBack ? "true" : "false") << "}";
        }
        os << "]";

        if (!p.diag.empty())
            os << ",\"diag\":" << jstr(p.diag);
        if (p.simulated) {
            os << ",\"sim\":{\"accesses\":" << p.accesses
               << ",\"hits\":" << p.hits << ",\"misses\":" << p.misses
               << ",\"hit_warm_orig\":" << jnum(p.hitWarmOrig)
               << ",\"hit_warm_final\":" << jnum(p.hitWarmFinal) << "}";
            os << ",\"sims\":[";
            first = true;
            for (const ProgramOutcome::SimOutcome &s : p.sims) {
                if (!first)
                    os << ",";
                first = false;
                os << "{\"cache\":" << jstr(s.cache)
                   << ",\"accesses\":" << s.accesses
                   << ",\"hits\":" << s.hits
                   << ",\"misses\":" << s.misses
                   << ",\"hit_warm_orig\":" << jnum(s.hitWarmOrig)
                   << ",\"hit_warm_final\":" << jnum(s.hitWarmFinal)
                   << "}";
            }
            os << "]";
        }
        os << "}";
    }
    os << "],\"summary\":{\"total\":" << programs.size();
    for (BatchStatus s :
         {BatchStatus::Ok, BatchStatus::Degraded, BatchStatus::Diag,
          BatchStatus::Timeout, BatchStatus::PanicContained}) {
        std::string key = batchStatusName(s);
        std::replace(key.begin(), key.end(), '-', '_');
        os << "," << jstr(key) << ":" << countWithStatus(s);
    }
    os << ",\"contained\":" << containedCount()
       << ",\"total_ms\":" << jnum(totalMs) << "}}";
    return os.str();
}

std::vector<BatchInput>
kernelInputs(int64_t n)
{
    std::vector<BatchInput> out;
    auto add = [&](const char *name, std::function<Program()> make) {
        out.push_back({name, [make = std::move(make)]() {
                           return Result<Program>(make());
                       }});
    };
    add("matmul-ijk", [n] { return makeMatmul("IJK", n); });
    add("matmul-ikj", [n] { return makeMatmul("IKJ", n); });
    add("matmul-jki", [n] { return makeMatmul("JKI", n); });
    add("cholesky", [n] { return makeCholeskyKIJ(n); });
    add("adi", [n] { return makeAdiScalarized(n); });
    add("erlebacher", [n] { return makeErlebacherDistributed(n); });
    add("gmtry", [n] { return makeGmtry(n); });
    add("simple", [n] { return makeSimpleHydro(n); });
    add("vpenta", [n] { return makeVpenta(n); });
    add("jacobi", [n] { return makeJacobiBadOrder(n); });
    return out;
}

std::vector<BatchInput>
corpusInputs(int64_t extent)
{
    std::vector<BatchInput> out;
    for (const CorpusSpec &spec : corpusSpecs()) {
        out.push_back({spec.name, [spec, extent]() {
                           return Result<Program>(
                               buildCorpusProgram(spec, extent));
                       }});
    }
    return out;
}

BatchInput
fileInput(const std::string &path)
{
    std::string name = std::filesystem::path(path).stem().string();
    if (name.empty())
        name = path;
    return {name, [path]() -> Result<Program> {
                std::ifstream in(path);
                if (!in) {
                    return Result<Program>::err(Diag::error(
                        "batch.read", "cannot open '" + path + "'"));
                }
                std::ostringstream buf;
                buf << in.rdbuf();
                ParseError err;
                std::optional<Program> prog =
                    parseProgram(buf.str(), &err);
                if (!prog) {
                    return Result<Program>::err(
                        Diag::error("parse.error",
                                    path + ": " + err.message, err.line,
                                    err.col));
                }
                return Result<Program>(std::move(*prog));
            }};
}

BatchInput
namedInput(std::string name, std::string source)
{
    return {std::move(name),
            [source = std::move(source)]() -> Result<Program> {
                ParseError err;
                std::optional<Program> prog = parseProgram(source, &err);
                if (!prog) {
                    return Result<Program>::err(Diag::error(
                        "parse.error", err.message, err.line, err.col));
                }
                return Result<Program>(std::move(*prog));
            }};
}

std::vector<BatchInput>
directoryInputs(const std::string &dir)
{
    std::vector<std::string> paths;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".mem")
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    std::vector<BatchInput> out;
    for (const std::string &p : paths)
        out.push_back(fileInput(p));
    return out;
}

BatchReport
runBatch(const std::vector<BatchInput> &inputs, const BatchOptions &opts)
{
    BatchReport report;
    report.programs.resize(inputs.size());
    const double t0 = nowMs();

    obs::TraceScope span("batch", "run");
    span.arg("programs", static_cast<int64_t>(inputs.size()));
    span.arg("jobs", opts.jobs);

    setFaultAccounting(true);

    std::atomic<size_t> next{0};
    auto work = [&]() {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= inputs.size())
                break;
            try {
                report.programs[i] = runIsolated(inputs[i], opts);
            } catch (...) {
                // runIsolated contains everything; this is the last-ditch
                // belt so a bug in the harness itself cannot kill the
                // pool either.
                report.programs[i] = ProgramOutcome{};
                report.programs[i].name = inputs[i].name;
                report.programs[i].status = BatchStatus::PanicContained;
                report.programs[i].diag =
                    "exception escaped program isolation";
            }
        }
    };

    int jobs = std::max(
        1, std::min<int>(opts.jobs,
                         static_cast<int>(std::max<size_t>(
                             inputs.size(), 1))));
    std::vector<std::thread> pool;
    for (int j = 1; j < jobs; ++j)
        pool.emplace_back(work);
    work();
    for (std::thread &t : pool)
        t.join();

    setFaultAccounting(false);

    report.totalMs = nowMs() - t0;
    obs::counter("batch.programs") += inputs.size();
    for (const ProgramOutcome &p : report.programs) {
        ++obs::counter(statusCounterName(p.status));
        obs::counter("batch.attempts") +=
            static_cast<uint64_t>(std::max(p.attempts, 0));
    }
    if (span.active()) {
        span.arg("ok", report.countWithStatus(BatchStatus::Ok));
        span.arg("contained", report.containedCount());
    }
    return report;
}

} // namespace harness
} // namespace memoria
