/**
 * @file
 * Fault-injection registry for the resilient batch pipeline.
 *
 * Every layer of the pipeline declares named *fault sites* — the parser,
 * the validator, the dependence tester, each transform, the equivalence
 * oracle, the interpreter, and the cache simulator — as namespace-scope
 * `FaultSite` objects that self-register at static-initialization time,
 * so the full catalog is enumerable (`faultSites()`) without running
 * anything. CI arms each site in turn and proves the batch driver
 * contains the failure (docs/ROBUSTNESS.md, "Fault injection").
 *
 * A `FaultPlan` arms at most one site at a time with an action:
 *
 *  - `Throw` — raise an `InjectedFault` (a std::runtime_error);
 *  - `Diag`  — surface a recoverable Diag through the site's own error
 *              channel (sites without one treat Diag as Throw);
 *  - `Stall` — busy-wait `stallMs` milliseconds, polling the current
 *              budget token, to emulate a hang under a deadline.
 *
 * The plan fires once, on the Nth *matching* hit; an optional program
 * filter (set by the batch driver via `ProgramContext`) restricts
 * matches to one program so a sweep affects exactly one report even on
 * a parallel pool. Unarmed sites cost one relaxed atomic load.
 */

#ifndef MEMORIA_HARNESS_FAULT_HH
#define MEMORIA_HARNESS_FAULT_HH

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/diag.hh"

namespace memoria {
namespace harness {

/** What an armed fault site does when it fires. */
enum class FaultAction
{
    Throw,  ///< throw InjectedFault
    Diag,   ///< return a Diag through the site's error channel
    Stall,  ///< sleep stallMs, polling the budget token
    Abort,  ///< std::abort() — a hard crash no in-process boundary
            ///< contains; only the serve supervisor survives it
};

/** Printable name ("throw", "diag", "stall", "abort"). */
const char *faultActionName(FaultAction a);

/** One armed fault. */
struct FaultSpec
{
    std::string site;                   ///< registered site name
    FaultAction action = FaultAction::Throw;
    int onHit = 1;                      ///< fire on the Nth matching hit
    std::string program;                ///< only in this program ("" = any)
    int stallMs = 100;                  ///< Stall duration

    /** "site:action:N@program" rendering. */
    std::string str() const;
};

/** The exception an armed Throw site raises. */
class InjectedFault : public std::runtime_error
{
  public:
    explicit InjectedFault(const std::string &site)
        : std::runtime_error("injected fault at " + site), site_(site)
    {
    }

    const std::string &site() const { return site_; }

  private:
    std::string site_;
};

/**
 * One named site. Declare at namespace scope in the layer that owns it
 * so registration happens during static initialization:
 *
 *     static harness::FaultSite gSite("transform.permute");
 *     ...
 *     gSite.fireNoDiag();   // at the guarded boundary
 */
class FaultSite
{
  public:
    /** `supportsDiag` documents that the site has a Diag channel. */
    explicit FaultSite(const char *name, bool supportsDiag = false);

    FaultSite(const FaultSite &) = delete;
    FaultSite &operator=(const FaultSite &) = delete;

    const char *name() const { return name_; }
    bool supportsDiag() const { return supportsDiag_; }

    /**
     * Record a hit and fire if armed here. Returns a Diag for the
     * caller to propagate when the armed action is Diag; Throw and
     * Stall are handled internally.
     */
    std::optional<Diag> fire();

    /** For sites with no Diag channel: Diag degrades to Throw. */
    void fireNoDiag();

  private:
    const char *name_;
    bool supportsDiag_;
};

/** Arm `spec` (replacing any armed plan); resets the hit trigger. */
void armFault(const FaultSpec &spec);

/** Disarm; fault sites go back to the single-load fast path. */
void clearFault();

/** The armed plan, if any. */
std::optional<FaultSpec> armedFault();

/** True once the armed plan has fired. */
bool armedFaultFired();

/** Names of every registered site, sorted. */
std::vector<std::string> faultSites();

/** Whether a registered site has a Diag channel ("" = unknown site). */
bool faultSiteSupportsDiag(const std::string &name);

/**
 * Deterministically pick a site from the registry — a seeded plan for
 * randomized robustness campaigns. Same seed, same plan.
 */
FaultSpec seededFault(uint64_t seed);

/**
 * Parse "site[:action[:N]][@program]" (action: throw|diag|stall|abort).
 * Returns the spec or a Diag ("harness.fault_spec") for bad input.
 */
Result<FaultSpec> parseFaultSpec(const std::string &text);

/**
 * Per-thread hit accounting, used by the batch driver to attribute
 * site hits to programs: when enabled, every site hit increments a
 * thread-local per-site counter that `drainFaultHits` returns and
 * clears. Costs one map bump per site hit when on; nothing when off.
 */
void setFaultAccounting(bool on);

/** This thread's accumulated site hits; clears the accumulator. */
std::map<std::string, uint64_t> drainFaultHits();

/** RAII: name the program the current thread is processing, for the
 *  FaultSpec program filter and hit attribution. Contexts stack: a
 *  nested context (e.g. a reduction predicate re-running the isolated
 *  pipeline from inside a worker) shadows the outer name and restores
 *  it on destruction. */
class ProgramContext
{
  public:
    explicit ProgramContext(std::string name);
    ~ProgramContext();

    ProgramContext(const ProgramContext &) = delete;
    ProgramContext &operator=(const ProgramContext &) = delete;

  private:
    std::string prev_;
};

/** The current thread's program name ("" outside any context). */
const std::string &currentProgram();

} // namespace harness
} // namespace memoria

#endif // MEMORIA_HARNESS_FAULT_HH
