/**
 * @file
 * Incident bundles: minimized, replayable reproducers for contained
 * failures.
 *
 * Whenever the toolkit contains a failure — a verify rollback that
 * degraded a program, a contained panic, a budget timeout, a hostile
 * input Diag, a fuzz disagreement — the incident layer turns the event
 * into a directory under `artifacts/incidents/`:
 *
 *     <name>-<kind>/
 *         incident.json    what happened, build identity, reduction stats
 *         original.mem     the program as submitted
 *         minimized.mem    the ddmin-reduced program (when it shrank)
 *         trace.jsonl      tail of the flight-recorder ring, when one
 *                          was installed (obs::RingSink)
 *
 * The minimized program is produced by check/reduce.hh against a
 * *failure signature* — "re-running the isolated pipeline on this
 * candidate reproduces the same class of failure" — so the bundle ships
 * a reproducer that still fails, not merely a smaller program. When the
 * original failure was caused by an armed fault-injection plan, the
 * predicate re-arms the recorded spec (pinned to the candidate's
 * program name) before every evaluation, because plans are one-shot.
 *
 * `memoria serve`, `memoria batch`, and `memoria fuzz` all write these;
 * `memoria reduce` re-minimizes a bundle offline with bigger budgets.
 */

#ifndef MEMORIA_HARNESS_INCIDENT_HH
#define MEMORIA_HARNESS_INCIDENT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/reduce.hh"
#include "harness/batch.hh"
#include "harness/fault.hh"

namespace memoria {
namespace incident {

/** The class of failure a reduced candidate must reproduce. */
struct FailureSignature
{
    harness::BatchStatus status = harness::BatchStatus::PanicContained;

    /** For status Diag: the stable dotted code ("" = any Diag). */
    std::string diagCode;
};

/** The signature a contained outcome exhibits. */
FailureSignature signatureOf(const harness::ProgramOutcome &out);

/** Does this outcome reproduce the signature? */
bool matchesSignature(const FailureSignature &sig,
                      const harness::ProgramOutcome &out);

/**
 * A predicate that runs a candidate through the full isolation
 * boundary (`harness::runIsolated`) under `opts` and accepts when the
 * outcome matches `sig`. When `fault` is set, the spec is re-armed
 * before every evaluation with its program filter pinned to `name`,
 * restoring the one-shot plan the original failure consumed. The
 * caller owns global fault state afterward (see clearFault).
 */
FailurePredicate pipelineFailurePredicate(
    std::string name, harness::BatchOptions opts, FailureSignature sig,
    std::optional<harness::FaultSpec> fault = std::nullopt);

/** Everything a bundle records. */
struct Incident
{
    std::string name;       ///< program name
    std::string kind;       ///< failure class, e.g. "panic-contained"
    std::string detail;     ///< diagnostic / exception text
    std::string source;     ///< original program source
    std::string minimized;  ///< reduced source ("" = did not shrink)

    uint64_t seed = 0;          ///< fuzz seed (0 = not a fuzz incident)
    std::string faultSpec;      ///< armed fault plan ("" = none)
    std::string options;        ///< free-form request/CLI options text

    size_t origNodes = 0;
    size_t finalNodes = 0;
    int checks = 0;
    bool oneMinimal = false;

    /** The minimized program was re-confirmed to fail. */
    bool reproduced = false;

    std::vector<std::string> traceTail;  ///< flight-recorder JSONL lines
};

/** Bundling knobs shared by serve, batch and fuzz. */
struct IncidentPolicy
{
    /** Root directory for bundles. */
    std::string dir = "artifacts/incidents";

    /** Budgets for the reduction itself. */
    ReduceOptions reduce;

    /** Cap per processing pass; the rest are dropped (and counted). */
    int maxIncidents = 8;

    /** Total bundles kept under `dir`: after each write the oldest
     *  directories beyond this are deleted (<= 0 = unbounded). A
     *  long-lived serve must not grow artifacts/ without bound. */
    int maxRetained = 100;
};

/**
 * Write `inc` as a bundle directory under `root`; a numeric suffix
 * de-collides repeat incidents of the same program and kind. After a
 * successful write, bundle directories beyond `maxRetained` are
 * pruned oldest-first (by modification time; <= 0 disables pruning).
 * Returns the bundle path, or a Diag ("incident.write") on I/O
 * failure.
 */
Result<std::string> writeBundle(const Incident &inc,
                                const std::string &root,
                                int maxRetained = 100);

/**
 * Core capture path: minimize `program` against `pred` under the
 * policy's reduce budgets, fill in reduction stats and the trace tail,
 * and write the bundle. `inc` supplies identity (name/kind/detail/
 * source/seed/faultSpec/options); reduction fields are overwritten.
 */
Result<std::string> captureIncident(Incident inc, const Program &program,
                                    const FailurePredicate &pred,
                                    const IncidentPolicy &policy);

/**
 * Capture one contained batch outcome (requires
 * BatchOptions::captureSource so `out.source` is populated). Builds
 * the pipeline failure predicate from the outcome's signature.
 */
Result<std::string> captureOutcome(
    const harness::ProgramOutcome &out, const harness::BatchOptions &opts,
    const IncidentPolicy &policy,
    std::optional<harness::FaultSpec> fault = std::nullopt);

/**
 * Bundle every contained failure in a finished batch report, up to
 * `policy.maxIncidents`. Preserves the armed fault plan around the
 * reduction re-runs. Returns the bundle paths written.
 */
std::vector<std::string> processBatchIncidents(
    const harness::BatchReport &report, const harness::BatchOptions &opts,
    const IncidentPolicy &policy);

} // namespace incident
} // namespace memoria

#endif // MEMORIA_HARNESS_INCIDENT_HH
