#include "serve/listener.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "support/export.hh"
#include "support/logging.hh"
#include "support/signals.hh"
#include "support/stats.hh"

namespace memoria {
namespace serve {

namespace {

/**
 * Keep listener and connection fds out of forked shard workers: a
 * child that inherits the accept socket would keep the port alive
 * after the supervisor dies, and an inherited client fd would keep a
 * "closed" connection half-open.
 */
void
setCloexec(int fd)
{
    int fl = ::fcntl(fd, F_GETFD);
    if (fl >= 0)
        ::fcntl(fd, F_SETFD, fl | FD_CLOEXEC);
}

/**
 * write() the whole buffer, riding out EINTR and short writes.
 * Returns false when the peer is gone (EPIPE/ECONNRESET) or the write
 * failed outright — a transport condition, never a service failure,
 * so callers count it and move on without touching breakers.
 */
bool
writeAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EPIPE || errno == ECONNRESET)
                ++obs::counter("serve.client_gone");
            else
                ++obs::counter("serve.write_errors");
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

/**
 * One client connection. The fd closes when the last holder lets go —
 * the reader thread and any in-flight respond callbacks each hold a
 * shared_ptr, so a response racing a disconnect still has a valid fd.
 * Once a write fails the connection is marked dead and later responses
 * are dropped instead of hammering a broken pipe.
 */
struct Conn
{
    explicit Conn(int fd) : fd(fd) {}
    ~Conn() { ::close(fd); }

    Conn(const Conn &) = delete;
    Conn &operator=(const Conn &) = delete;

    void
    send(const std::string &line)
    {
        if (!alive.load(std::memory_order_relaxed))
            return;
        std::lock_guard<std::mutex> lock(mutex);
        if (!writeAll(fd, line + "\n"))
            alive.store(false, std::memory_order_relaxed);
    }

    int fd;
    std::mutex mutex;
    std::atomic<bool> alive{true};
};

/** Feed a line-delimited stream to the service. Returns on EOF, read
 *  error, or drain request. `clientKey` is the fair-share fallback
 *  for requests that carry no client_id of their own. */
void
pumpLines(LineService &service, int fd,
          const std::function<void(const std::string &)> &respond,
          const std::string &clientKey = "")
{
    std::string buffer;
    char chunk[4096];
    for (;;) {
        if (signals::drainRequested())
            break;
        ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;  // signal; loop re-checks drainRequested
            break;
        }
        if (n == 0)
            break;  // EOF
        buffer.append(chunk, static_cast<size_t>(n));
        size_t pos;
        while ((pos = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, pos);
            buffer.erase(0, pos + 1);
            service.handleLine(line, respond, clientKey);
        }
    }
    // A final unterminated line is still a request.
    if (!buffer.empty())
        service.handleLine(buffer, respond, clientKey);
}

int
makeTcpListener(const std::string &host, int port, int &boundPort)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    setCloexec(fd);
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return -1;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
            0 ||
        ::listen(fd, 64) < 0) {
        ::close(fd);
        return -1;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    boundPort = port;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len) ==
        0)
        boundPort = ntohs(bound.sin_port);
    return fd;
}

int
makeUnixListener(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path))
        return -1;
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    setCloexec(fd);
    ::unlink(path.c_str());
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
            0 ||
        ::listen(fd, 64) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/**
 * Answer one metrics-scrape connection: swallow whatever request line
 * the client sent (curl, a Prometheus scraper, or a bare netcat), then
 * write one HTTP/1.0 response with the exposition text and close.
 * Runs on its own short-lived thread so a slow scraper cannot block
 * the accept loop.
 */
void
serveMetricsConn(int fd)
{
    // Read until the blank line ending the request head, a short
    // timeout, or 8 KiB — the content is irrelevant, every request
    // gets the same answer.
    char buf[1024];
    std::string head;
    pollfd p{fd, POLLIN, 0};
    while (head.find("\r\n\r\n") == std::string::npos &&
           head.find("\n\n") == std::string::npos &&
           head.size() < 8192) {
        int rc = ::poll(&p, 1, 500);
        if (rc <= 0)
            break;
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        head.append(buf, static_cast<size_t>(n));
    }

    std::string body = obs::prometheusText();
    std::string resp =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " + std::to_string(body.size()) + "\r\n"
        "Connection: close\r\n\r\n" + body;
    writeAll(fd, resp);
    ::close(fd);
}

} // namespace

int
runStdio(LineService &service)
{
    // A client that closes its end mid-response must not kill the
    // process; the failed write is counted, not fatal.
    ::signal(SIGPIPE, SIG_IGN);
    std::mutex outMutex;
    auto respond = [&outMutex](const std::string &line) {
        std::lock_guard<std::mutex> lock(outMutex);
        std::cout << line << "\n";
        std::cout.flush();
    };
    service.start();
    pumpLines(service, STDIN_FILENO, respond, "stdio");
    service.drain();
    return 0;
}

int
runWorkerFd(LineService &service, int fd)
{
    // The supervisor is the only peer; a response racing its death
    // must not kill the worker before the reaper classifies it.
    ::signal(SIGPIPE, SIG_IGN);
    std::mutex outMutex;
    auto respond = [&outMutex, fd](const std::string &line) {
        std::lock_guard<std::mutex> lock(outMutex);
        writeAll(fd, line + "\n");
    };
    service.start();
    pumpLines(service, fd, respond);
    // EOF is the supervisor's shutdown handshake: finish in-flight
    // work, flush, exit 0 so the reaper sees a clean exit.
    service.drain();
    ::close(fd);
    return 0;
}

int
runListener(LineService &service, const TransportOptions &topts)
{
    // A response racing a disconnect must not kill the process.
    ::signal(SIGPIPE, SIG_IGN);

    std::vector<pollfd> listeners;
    int tcpFd = -1, unixFd = -1;
    if (topts.port >= 0) {
        int boundPort = 0;
        tcpFd = makeTcpListener(topts.host, topts.port, boundPort);
        if (tcpFd < 0) {
            warn("serve: cannot listen on " + topts.host + ":" +
                  std::to_string(topts.port));
            return 1;
        }
        listeners.push_back({tcpFd, POLLIN, 0});
        // Announce on stdout so scripted clients can discover the
        // ephemeral port without racing the bind.
        std::cout << "listening tcp " << topts.host << ":" << boundPort
                  << std::endl;
    }
    if (!topts.unixPath.empty()) {
        unixFd = makeUnixListener(topts.unixPath);
        if (unixFd < 0) {
            if (tcpFd >= 0)
                ::close(tcpFd);
            warn("serve: cannot listen on unix socket '" +
                  topts.unixPath + "'");
            return 1;
        }
        listeners.push_back({unixFd, POLLIN, 0});
        std::cout << "listening unix " << topts.unixPath << std::endl;
    }
    if (listeners.empty()) {
        warn("serve: no socket transport configured");
        return 1;
    }
    int metricsFd = -1;
    if (topts.metricsPort >= 0) {
        int boundPort = 0;
        metricsFd =
            makeTcpListener(topts.host, topts.metricsPort, boundPort);
        if (metricsFd < 0) {
            warn("serve: cannot listen on metrics port " + topts.host +
                 ":" + std::to_string(topts.metricsPort));
        } else {
            listeners.push_back({metricsFd, POLLIN, 0});
            std::cout << "listening metrics " << topts.host << ":"
                      << boundPort << std::endl;
        }
    }

    service.start();

    std::mutex connsMutex;
    std::vector<std::weak_ptr<Conn>> conns;
    std::vector<std::thread> readers;

    while (!signals::drainRequested()) {
        int rc = ::poll(listeners.data(), listeners.size(), 200);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (rc == 0)
            continue;
        for (pollfd &p : listeners) {
            if (!(p.revents & POLLIN))
                continue;
            int cfd = ::accept(p.fd, nullptr, nullptr);
            if (cfd < 0)
                continue;
            setCloexec(cfd);
            if (p.fd == metricsFd) {
                // Scrapes never touch the admission queue; a saturated
                // worker pool cannot delay them.
                std::thread(serveMetricsConn, cfd).detach();
                continue;
            }
            auto conn = std::make_shared<Conn>(cfd);
            // Per-connection fair-share fallback key: requests that
            // carry no client_id are bucketed by connection, so two
            // anonymous clients on separate connections still get
            // separate shares.
            static std::atomic<uint64_t> connSeq{0};
            const std::string clientKey =
                "conn:" + std::to_string(++connSeq);
            std::lock_guard<std::mutex> lock(connsMutex);
            conns.push_back(conn);
            readers.emplace_back([&service, conn, clientKey] {
                pumpLines(service, conn->fd,
                          [conn](const std::string &line) {
                              conn->send(line);
                          },
                          clientKey);
            });
        }
    }

    for (pollfd &p : listeners)
        ::close(p.fd);

    // Drain first so every accepted request's response is written
    // while the connections are still alive, then wake the readers.
    service.drain();
    {
        std::lock_guard<std::mutex> lock(connsMutex);
        for (std::weak_ptr<Conn> &w : conns)
            if (std::shared_ptr<Conn> c = w.lock())
                ::shutdown(c->fd, SHUT_RD);
        for (std::thread &t : readers)
            if (t.joinable())
                t.join();
    }
    if (!topts.unixPath.empty())
        ::unlink(topts.unixPath.c_str());
    return 0;
}

} // namespace serve
} // namespace memoria
