/**
 * @file
 * The rendering core of `memoria top` — a live text view of a running
 * server's health: RPS, per-kind and per-stage latency percentiles,
 * breaker states, ladder-rung mix, and queue depth.
 *
 * The data source is any metrics JSON object the server produces: a
 * `metrics` response line (the CLI polls a listening server) or one
 * JSONL snapshot line from `--metrics-file` (the CLI tails it
 * offline). `parseTopSample` normalizes either shape into a
 * `TopSample`; `renderTopFrame` turns one sample (plus the previous
 * one, for rates) into a printable frame. Both are pure — the CLI owns
 * the polling loop and the ANSI cursor dance, and the test suite
 * renders frames directly.
 */

#ifndef MEMORIA_SERVE_TOP_HH
#define MEMORIA_SERVE_TOP_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace memoria {
namespace json {
class Value;
}

namespace serve {

/** One normalized metrics sample. */
struct TopSample
{
    bool valid = false;       ///< parse found a stats payload
    int64_t tsMs = 0;         ///< wall-clock ms ("ts_ms"; 0 if absent)
    int64_t uptimeMs = 0;
    int64_t queueDepth = 0;
    int64_t queueCapacity = 0;
    bool draining = false;

    /** All counters from the registry dump, by full dotted name. */
    std::map<std::string, uint64_t> counters;

    /** All gauges from the registry dump (the supervisor mirrors its
     *  workers' cache counters here). */
    std::map<std::string, double> gauges;

    /** Histogram summaries from the registry dump. */
    struct HistSummary
    {
        uint64_t count = 0;
        double p50 = 0.0;
        double p90 = 0.0;
        double p99 = 0.0;
    };
    std::map<std::string, HistSummary> histograms;

    /** Breaker stage -> state name ("closed", "open", "half-open"). */
    std::map<std::string, std::string> breakers;

    /** Shard-worker rows (supervised serve only; empty otherwise). */
    struct WorkerInfo
    {
        int64_t shard = 0;
        int64_t pid = -1;
        std::string state;  ///< "up" | "recycling" | "down"
        int64_t inflight = 0;
        int64_t queued = 0;
        int64_t respawns = 0;
        int64_t crashes = 0;
        int64_t recycles = 0;
        int64_t rssBytes = 0;  ///< 0 = unknown
        int64_t heartbeatAgeMs = -1;
    };
    std::vector<WorkerInfo> workers;
};

/**
 * Extract a TopSample from a parsed metrics object. Accepts both the
 * `metrics` response shape (registry under "registry") and the JSONL
 * snapshot shape (registry under "stats"). `valid` is false when
 * neither is present.
 */
TopSample parseTopSample(const json::Value &v);

/**
 * Render one frame. `prev` (may be null) supplies the baseline for
 * RPS: rates come from counter/timestamp deltas between the samples,
 * falling back to the lifetime average over uptime when there is no
 * usable previous sample.
 */
std::string renderTopFrame(const TopSample &cur, const TopSample *prev);

} // namespace serve
} // namespace memoria

#endif // MEMORIA_SERVE_TOP_HH
