#include "serve/top.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

#include "support/json.hh"

namespace memoria {
namespace serve {

namespace {

/** Fixed-width human number: microseconds as-is under 1e6, else "s". */
std::string
fmtUs(double us)
{
    std::ostringstream os;
    if (us >= 1e6)
        os << std::fixed << std::setprecision(2) << us / 1e6 << "s";
    else if (us >= 1e3)
        os << std::fixed << std::setprecision(1) << us / 1e3 << "ms";
    else
        os << std::fixed << std::setprecision(0) << us << "us";
    return os.str();
}

std::string
pad(const std::string &s, size_t w)
{
    return s.size() >= w ? s : s + std::string(w - s.size(), ' ');
}

std::string
lpad(const std::string &s, size_t w)
{
    return s.size() >= w ? s : std::string(w - s.size(), ' ') + s;
}

/** Sum of counters with the given prefix, keyed by the suffix. */
std::vector<std::pair<std::string, uint64_t>>
bySuffix(const std::map<std::string, uint64_t> &counters,
         const std::string &prefix)
{
    std::vector<std::pair<std::string, uint64_t>> out;
    for (const auto &[name, v] : counters)
        if (name.size() > prefix.size() &&
            name.compare(0, prefix.size(), prefix) == 0)
            out.emplace_back(name.substr(prefix.size()), v);
    return out;
}

uint64_t
counterOr0(const std::map<std::string, uint64_t> &counters,
           const std::string &name)
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

} // namespace

TopSample
parseTopSample(const json::Value &v)
{
    TopSample s;
    if (!v.isObject())
        return s;

    const json::Value *registry = v.get("registry");
    if (!registry)
        registry = v.get("stats");
    if (!registry || !registry->isObject())
        return s;
    s.valid = true;

    s.tsMs = v.getInt("ts_ms", 0);
    s.uptimeMs = v.getInt("uptime_ms", 0);
    s.queueDepth = v.getInt("queue_depth", 0);
    s.queueCapacity = v.getInt("queue_capacity", 0);
    s.draining = v.getBool("draining", false);

    if (const json::Value *c = registry->get("counters");
        c && c->isObject())
        for (const auto &[name, val] : c->members())
            s.counters[name] = static_cast<uint64_t>(
                std::max<int64_t>(0, val.asInt()));

    if (const json::Value *g = registry->get("gauges");
        g && g->isObject())
        for (const auto &[name, val] : g->members())
            s.gauges[name] = val.asNumber();

    if (const json::Value *h = registry->get("histograms");
        h && h->isObject())
        for (const auto &[name, val] : h->members()) {
            TopSample::HistSummary hs;
            hs.count = static_cast<uint64_t>(
                std::max<int64_t>(0, val.getInt("count")));
            hs.p50 = val.getNumber("p50");
            hs.p90 = val.getNumber("p90");
            hs.p99 = val.getNumber("p99");
            s.histograms[name] = hs;
        }

    if (const json::Value *b = v.get("breakers"); b && b->isObject())
        for (const auto &[stage, val] : b->members())
            s.breakers[stage] = val.getString("state", "?");

    if (const json::Value *w = v.get("workers"); w && w->isArray())
        for (const json::Value &row : w->items()) {
            if (!row.isObject())
                continue;
            TopSample::WorkerInfo wi;
            wi.shard = row.getInt("shard", 0);
            wi.pid = row.getInt("pid", -1);
            wi.state = row.getString("state", "?");
            wi.inflight = row.getInt("inflight", 0);
            wi.queued = row.getInt("queued", 0);
            wi.respawns = row.getInt("respawns", 0);
            wi.crashes = row.getInt("crashes", 0);
            wi.recycles = row.getInt("recycles", 0);
            wi.rssBytes = row.getInt("rss_bytes", 0);
            wi.heartbeatAgeMs = row.getInt("heartbeat_age_ms", -1);
            s.workers.push_back(std::move(wi));
        }
    return s;
}

std::string
renderTopFrame(const TopSample &cur, const TopSample *prev)
{
    std::ostringstream out;
    if (!cur.valid)
        return "memoria top: no metrics payload in sample\n";

    const uint64_t total =
        counterOr0(cur.counters, "serve.requests_total");

    // RPS from the delta against the previous sample; lifetime average
    // over uptime when there is no usable baseline. A total below the
    // previous sample's means the process restarted (counters start
    // from zero again): fall back to the lifetime average of the new
    // incarnation and say so, rather than rendering a huge negative
    // (or wrapped) rate.
    double rps = 0.0;
    bool restarted = false;
    if (prev && prev->valid && cur.tsMs > prev->tsMs) {
        uint64_t prevTotal =
            counterOr0(prev->counters, "serve.requests_total");
        if (total >= prevTotal) {
            rps = 1000.0 * static_cast<double>(total - prevTotal) /
                  static_cast<double>(cur.tsMs - prev->tsMs);
        } else {
            restarted = true;
            if (cur.uptimeMs > 0)
                rps = 1000.0 * static_cast<double>(total) /
                      static_cast<double>(cur.uptimeMs);
        }
    } else if (cur.uptimeMs > 0) {
        rps = 1000.0 * static_cast<double>(total) /
              static_cast<double>(cur.uptimeMs);
    }
    if (rps < 0.0)
        rps = 0.0;

    out << "memoria top";
    if (cur.uptimeMs > 0)
        out << "  up " << std::fixed << std::setprecision(1)
            << cur.uptimeMs / 1000.0 << "s";
    out << "  queue " << cur.queueDepth << "/" << cur.queueCapacity;
    if (cur.draining)
        out << "  DRAINING";
    out << "\n";

    out << "requests " << total << " total   " << std::fixed
        << std::setprecision(1) << rps << " rps";
    if (restarted)
        out << " (restarted)";
    out << "   shed " << counterOr0(cur.counters, "serve.shed")
        << "   errors "
        << counterOr0(cur.counters, "serve.request_errors") << "\n";

    out << "\n" << pad("latency", 22) << lpad("count", 10)
        << lpad("p50", 12) << lpad("p90", 12) << lpad("p99", 12)
        << "\n";
    auto latencyRow = [&](const std::string &label,
                          const std::string &hist) {
        auto it = cur.histograms.find(hist);
        if (it == cur.histograms.end())
            return;
        const TopSample::HistSummary &h = it->second;
        out << pad("  " + label, 22)
            << lpad(std::to_string(h.count), 10)
            << lpad(fmtUs(h.p50), 12) << lpad(fmtUs(h.p90), 12)
            << lpad(fmtUs(h.p99), 12) << "\n";
    };
    for (const char *kind :
         {"analyze", "compound", "simulate", "health", "stats",
          "metrics"})
        latencyRow(kind, std::string("serve.latency_us.") + kind);

    out << "\n" << pad("stage", 22) << lpad("count", 10)
        << lpad("p50", 12) << lpad("p90", 12) << lpad("p99", 12)
        << "\n";
    for (const char *stage :
         {"queue", "load", "optimize", "verify", "simulate", "total"})
        latencyRow(stage, std::string("serve.stage.") + stage + "_us");

    // Result-cache panel. Single-process serve exposes real counters;
    // a supervisor has no cache of its own and instead mirrors the
    // summed worker heartbeat stats into same-named gauges — prefer
    // the counter when present, fall back to the gauge.
    {
        auto cacheStat = [&](const std::string &suffix) -> uint64_t {
            std::string name = "serve.cache." + suffix;
            if (auto it = cur.counters.find(name);
                it != cur.counters.end())
                return it->second;
            if (auto it = cur.gauges.find(name); it != cur.gauges.end())
                return static_cast<uint64_t>(
                    std::max(0.0, it->second));
            return 0;
        };
        uint64_t hits = cacheStat("hits");
        uint64_t misses = cacheStat("misses");
        uint64_t entries = cacheStat("entries");
        uint64_t bytes = cacheStat("bytes");
        if (hits + misses + entries > 0) {
            double hitPct =
                hits + misses > 0
                    ? 100.0 * static_cast<double>(hits) /
                          static_cast<double>(hits + misses)
                    : 0.0;
            out << "cache " << hits << " hits / " << misses
                << " misses (" << std::fixed << std::setprecision(1)
                << hitPct << "%)   joins " << cacheStat("inflight_joins")
                << "   evict " << cacheStat("evictions") << "   "
                << entries << " entries " << bytes / 1024 << "KiB";
            if (uint64_t rej = cacheStat("snapshot_rejected"); rej > 0)
                out << "   snap-rejected " << rej;
            out << "\n";
        }
    }

    // Admission panel: per-class queue depths, shed-by-reason totals,
    // in-queue deadline expiries, and memory-governor pressure.
    {
        auto gaugeOr0 = [&](const std::string &name) -> double {
            auto it = cur.gauges.find(name);
            return it == cur.gauges.end() ? 0.0 : it->second;
        };
        auto sheds = bySuffix(cur.counters, "serve.shed.");
        const uint64_t expired =
            counterOr0(cur.counters, "serve.deadline_exceeded");
        const double qInt =
            gaugeOr0("serve.admission.queue.interactive");
        const double qBatch = gaugeOr0("serve.admission.queue.batch");
        if (!sheds.empty() || expired > 0 || qInt + qBatch > 0) {
            out << "admission  interactive "
                << static_cast<int64_t>(qInt) << "  batch "
                << static_cast<int64_t>(qBatch);
            for (const auto &[reason, n] : sheds)
                out << "  " << reason << "=" << n;
            if (expired > 0)
                out << "  deadline_exceeded=" << expired;
            out << "\n";
        }
        const double rss = gaugeOr0("serve.governor.rss_bytes");
        if (rss > 0) {
            out << "governor   rss "
                << static_cast<int64_t>(rss) / (1024 * 1024) << "MiB";
            if (gaugeOr0("serve.governor.soft_pressure") > 0)
                out << "  SOFT-PRESSURE";
            if (gaugeOr0("serve.governor.hard_pressure") > 0)
                out << "  HARD-PRESSURE";
            if (uint64_t st = counterOr0(cur.counters,
                                         "serve.governor.soft_trips"))
                out << "  soft_trips=" << st;
            if (uint64_t deg = counterOr0(
                    cur.counters, "serve.governor.degraded_requests"))
                out << "  degraded=" << deg;
            out << "\n";
        }
        if (uint64_t rec =
                counterOr0(cur.counters, "serve.worker.recycled"))
            out << "recycled   " << rec << " graceful worker recycles\n";
    }

    if (!cur.workers.empty()) {
        out << "\n" << pad("worker", 10) << lpad("pid", 8)
            << lpad("state", 10) << lpad("inflight", 10)
            << lpad("queued", 8) << lpad("respawns", 10)
            << lpad("crashes", 9) << lpad("recycles", 10)
            << lpad("rss", 9) << lpad("hb", 8) << "\n";
        for (const TopSample::WorkerInfo &w : cur.workers) {
            out << pad("  shard" + std::to_string(w.shard), 10)
                << lpad(w.pid > 0 ? std::to_string(w.pid) : "-", 8)
                << lpad(w.state, 10)
                << lpad(std::to_string(w.inflight), 10)
                << lpad(std::to_string(w.queued), 8)
                << lpad(std::to_string(w.respawns), 10)
                << lpad(std::to_string(w.crashes), 9)
                << lpad(std::to_string(w.recycles), 10)
                << lpad(w.rssBytes > 0
                            ? std::to_string(w.rssBytes /
                                             (1024 * 1024)) + "MiB"
                            : "-",
                        9)
                << lpad(w.heartbeatAgeMs >= 0
                            ? std::to_string(w.heartbeatAgeMs) + "ms"
                            : "-",
                        8)
                << "\n";
        }
    }

    if (!cur.breakers.empty()) {
        out << "\nbreakers";
        for (const auto &[stage, state] : cur.breakers)
            out << "  " << stage << "=" << state;
        out << "\n";
    }

    auto rungs = bySuffix(cur.counters, "serve.rung.");
    if (!rungs.empty()) {
        out << "rungs";
        for (const auto &[rung, n] : rungs)
            out << "  " << rung << "=" << n;
        out << "\n";
    }

    auto results = bySuffix(cur.counters, "serve.result.");
    if (!results.empty()) {
        out << "results";
        for (const auto &[status, n] : results)
            out << "  " << status << "=" << n;
        out << "\n";
    }
    return out.str();
}

} // namespace serve
} // namespace memoria
