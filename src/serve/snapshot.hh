/**
 * @file
 * Durable, checksummed snapshots of the serve result cache.
 *
 * A snapshot is a versioned JSONL file:
 *
 *   {"schema":"memoria.cache-snapshot","version":1,"shard":K,
 *    "config":"<digest>","entries":N}            (header)
 *   {"key":"...","body":"...","crc":"<16hex>"}   (N entry lines)
 *   {"footer":true,"crc":"<16hex>"}              (running checksum)
 *
 * Writes are crash-safe: the content goes to `<path>.tmp`, is fsync'd
 * (EINTR retried), and atomically renamed over `path` — a reader never
 * observes a half-written file from our own crash. Corruption from
 * outside (disk damage, truncation, a hostile edit) is what the
 * checksums are for, and validation is all-or-nothing: a torn tail, a
 * flipped byte, a version or configuration mismatch each reject the
 * *whole* snapshot (`serve.cache.snapshot_rejected`) and the worker
 * cold-starts — a cache must never serve bytes it cannot vouch for.
 *
 * ENOSPC on write is a structured degradation, not a crash: the caller
 * gets code `serve.snapshot.enospc`, disables further snapshots, and
 * keeps serving (satellite of the journal's `serve.journal.disabled`).
 *
 * Fault site `serve.cache.corrupt-snapshot` fires inside the writer;
 * an armed Throw makes it deliberately corrupt the bytes it just wrote
 * (before the rename), so tests and the chaos soak can prove the
 * reject-and-cold-start path end to end.
 */

#ifndef MEMORIA_SERVE_SNAPSHOT_HH
#define MEMORIA_SERVE_SNAPSHOT_HH

#include <string>
#include <utility>
#include <vector>

#include "check/diag.hh"

namespace memoria {
namespace serve {

/** Current snapshot format version. */
constexpr int kCacheSnapshotVersion = 1;

/**
 * Write `entries` (MRU-first, as ResultCache::entries() returns them)
 * as a snapshot at `path`. Returns a Diag on failure: code
 * `serve.snapshot.enospc` for out-of-space (degrade, do not retry),
 * `serve.snapshot` for anything else.
 */
Status writeCacheSnapshot(
    const std::string &path,
    const std::vector<std::pair<std::string, std::string>> &entries,
    int shard, const std::string &configDigest);

/**
 * Read and fully validate a snapshot. On success returns the entries
 * in file order. Any defect — unreadable file, bad header, version or
 * config mismatch, entry checksum failure, truncated tail, bad footer
 * — returns a Diag (code `serve.snapshot.rejected`) whose message
 * names the defect; the caller counts it and cold-starts.
 */
Result<std::vector<std::pair<std::string, std::string>>>
readCacheSnapshot(const std::string &path,
                  const std::string &configDigest);

} // namespace serve
} // namespace memoria

#endif // MEMORIA_SERVE_SNAPSHOT_HH
