#include "serve/supervisor.hh"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>

#include "support/export.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/procstat.hh"
#include "support/signals.hh"
#include "support/stats.hh"
#include "support/trace.hh"
#include "support/version.hh"

namespace memoria {
namespace serve {

namespace {

int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

double
nowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Integer steady-clock µs for the admission controller's clock. */
int64_t
steadyUs()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

int64_t
wallMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

std::string
registryDumpJson()
{
    std::ostringstream os;
    obs::statsRegistry().dumpJson(os);
    std::string s = os.str();
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r'))
        s.pop_back();
    return s;
}

uint64_t
fnv1a64(const std::string &s)
{
    uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Classify a waitpid status for the crash-kind counters. */
std::string
crashKind(int status)
{
    if (WIFSIGNALED(status)) {
        switch (WTERMSIG(status)) {
          case SIGABRT:
            return "sigabrt";
          case SIGSEGV:
            return "sigsegv";
          case SIGKILL:
            return "sigkill";
          case SIGBUS:
            return "sigbus";
          default:
            return "signal_" + std::to_string(WTERMSIG(status));
        }
    }
    if (WIFEXITED(status))
        return "exit_" + std::to_string(WEXITSTATUS(status));
    return "unknown";
}

const char *kHeartbeatLine = "{\"id\":\"hb\",\"kind\":\"health\"}\n";

void
setCloexecNonblock(int fd)
{
    int fl = ::fcntl(fd, F_GETFL);
    if (fl >= 0)
        ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
    int fdfl = ::fcntl(fd, F_GETFD);
    if (fdfl >= 0)
        ::fcntl(fd, F_SETFD, fdfl | FD_CLOEXEC);
}

} // namespace

Supervisor::Supervisor(SupervisorOptions opts) : opts_(std::move(opts))
{
    opts_.workers = std::max(1, opts_.workers);
    startedAtMs_ = nowMs();
    AdmissionOptions aopts;
    aopts.queueCapacity = opts_.maxQueuedPerWorker;
    aopts.perClientCap = opts_.serve.perClientCap;
    aopts.countInflight = true;  // the old backlog check bounded both
    aopts.retryAfterMs = opts_.serve.retryAfterMs;
    aopts.ageTargetMs = opts_.serve.ageTargetMs;
    // One controller per shard; the monitor publishes summed gauges.
    aopts.publishGauges = false;
    for (int i = 0; i < opts_.workers; ++i) {
        auto w = std::make_unique<Worker>();
        w->shard = i;
        w->admission = std::make_unique<AdmissionController>(aopts);
        workers_.push_back(std::move(w));
    }
    if (!opts_.journalPath.empty()) {
        // Recovery replay MUST precede open(): open() truncates, and
        // the previous incarnation's admitted-but-unanswered requests
        // are only recorded in the old file. What it finds is exactly
        // the set of requests a restarted supervisor owes an answer
        // for — surfaced in the `health` response's `recovery` block
        // so clients (and the chaos soak) can resubmit them.
        std::error_code ec;
        if (std::filesystem::exists(opts_.journalPath, ec)) {
            Result<std::vector<JournalEntry>> prev =
                Journal::readIncomplete(opts_.journalPath);
            if (prev.ok() && !prev.value().empty()) {
                recovery_ = std::move(prev.value());
                for (size_t i = 0; i < recovery_.size(); ++i)
                    ++obs::counter("serve.recovery.unanswered");
                obs::traceEvent(
                    "serve", "journal_replay",
                    {{"path", opts_.journalPath},
                     {"unanswered",
                      static_cast<int64_t>(recovery_.size())}});
            }
        }
        Result<std::unique_ptr<Journal>> j =
            Journal::open(opts_.journalPath, opts_.journal);
        if (j.ok())
            journal_ = std::move(j.value());
        else
            warn("serve: " + j.diag().str() + " (journal disabled)");
    }
}

Supervisor::~Supervisor()
{
    drain();
}

void
Supervisor::start()
{
    if (started_.exchange(true))
        return;
    MEMORIA_ASSERT(!opts_.workerCommand.empty(),
                   "supervisor needs a worker command");
    // A flush racing a worker's death must surface as EPIPE on the
    // socketpair (handled by the monitor), not kill the supervisor —
    // transports ignore SIGPIPE for their own fds, but the worker
    // pipes are ours whatever the transport.
    ::signal(SIGPIPE, SIG_IGN);
    signals::installChildHandler();
    // SIGHUP = rolling restart of every shard, one at a time.
    signals::installHupHandler();

    std::vector<Outgoing> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto &w : workers_)
            spawnWorkerLocked(*w, out);
    }
    deliver(out);

    if (!opts_.serve.metricsPath.empty()) {
        metricsOut_ = std::make_unique<std::ofstream>(
            opts_.serve.metricsPath, std::ios::app);
        if (!*metricsOut_) {
            obs::traceEvent("serve", "metrics_file_error",
                            {{"path", opts_.serve.metricsPath}});
            metricsOut_.reset();
        } else if (opts_.serve.metricsIntervalMs > 0) {
            metricsThread_ = std::thread([this] { metricsLoop(); });
        }
    }

    monitor_ = std::thread([this] { monitorLoop(); });
    obs::traceEvent("serve", "supervisor_start",
                    {{"workers", int64_t{opts_.workers}},
                     {"journal", opts_.journalPath}});
}

int
Supervisor::shardOf(const std::string &program) const
{
    // Rendezvous (highest-random-weight) hashing: each shard scores
    // the key independently and the max wins, so the mapping is a
    // pure function of (program, shard count) — stable across worker
    // respawns and uniform across shards.
    const uint64_t h = fnv1a64(program);
    int best = 0;
    uint64_t bestScore = 0;
    for (int i = 0; i < opts_.workers; ++i) {
        uint64_t score =
            splitmix64(h ^ splitmix64(static_cast<uint64_t>(i) + 1));
        if (i == 0 || score > bestScore) {
            best = i;
            bestScore = score;
        }
    }
    return best;
}

int64_t
Supervisor::effectiveDeadlineMs(const Request &req) const
{
    if (req.deadlineMs > 0)
        return std::min(req.deadlineMs, opts_.serve.maxDeadlineMs);
    return opts_.serve.budget.deadlineMs;
}

std::string
Supervisor::forwardLine(const Pending &p, uint64_t seq) const
{
    json::Value o = json::Value::object();
    o.set("id", json::Value::string("s" + std::to_string(seq)));
    o.set("kind", json::Value::string(requestKindName(p.req.kind)));
    o.set("program", json::Value::string(p.req.program));
    if (p.req.deadlineMs > 0)
        o.set("deadline_ms", json::Value::number(p.req.deadlineMs));
    if (p.req.simulate.has_value())
        o.set("simulate", json::Value::boolean(*p.req.simulate));
    if (!p.req.traceId.empty())
        o.set("trace_id", json::Value::string(p.req.traceId));
    // Forward the priority class and the *resolved* fair-share key so
    // the worker's own admission controller buckets consistently.
    if (!p.req.priority.empty())
        o.set("priority", json::Value::string(p.req.priority));
    if (!p.client.empty())
        o.set("client_id", json::Value::string(p.client));
    // The fault spec rides only on the first attempt: replaying a
    // crash-inducing fault verbatim would kill the fresh worker too.
    if (!p.req.fault.empty() && !p.retried)
        o.set("fault", json::Value::string(p.req.fault));
    return o.dump();
}

void
Supervisor::handleLine(const std::string &line, const Respond &respond,
                       const std::string &clientKey)
{
    if (line.find_first_not_of(" \t\r\n") == std::string::npos)
        return;

    ++received_;
    Result<Request> parsed =
        parseRequest(line, opts_.serve.maxRequestBytes);
    if (!parsed.ok()) {
        ++errors_;
        ++obs::counter("serve.request_errors");
        // The Diag's own code distinguishes protocol.too-large
        // (resource caps) from serve.request (bad input).
        respond(errorResponse("", parsed.diag().code,
                              parsed.diag().str()));
        return;
    }
    const Request &req = parsed.value();
    ++obs::counter("serve.requests_total");

    if (req.kind == RequestKind::Health) {
        obs::ScopedTimer t(obs::histogram("serve.latency_us.health"));
        respond(healthLine(req.id));
        return;
    }
    if (req.kind == RequestKind::Stats) {
        obs::ScopedTimer t(obs::histogram("serve.latency_us.stats"));
        respond(statsLine(req.id));
        return;
    }
    if (req.kind == RequestKind::Metrics) {
        obs::ScopedTimer t(obs::histogram("serve.latency_us.metrics"));
        respond(metricsLine(req.id));
        return;
    }

    const int shard = shardOf(req.program);
    std::vector<Outgoing> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (draining_.load()) {
            ++cancelled_;
            respond(cancelledResponse(req.id, "server draining"));
            return;
        }
        Worker &w = *workers_[shard];

        // Fair-share identity: explicit client_id beats the transport
        // connection key beats the anonymous bucket.
        const std::string client =
            !req.clientId.empty()
                ? req.clientId
                : (!clientKey.empty() ? clientKey : "anon");
        Priority pri = Priority::Interactive;
        parsePriority(req.priority, pri);
        const int64_t now = steadyUs();
        int64_t deadlineAtUs = 0;
        if (req.deadlineMs > 0)
            deadlineAtUs =
                now + std::min(req.deadlineMs,
                               opts_.serve.maxDeadlineMs) * 1000;

        const AdmissionDecision d =
            w.admission->decide(client, pri, deadlineAtUs, 0, now);
        if (!d.admitted) {
            ++shed_;
            ++obs::counter("serve.shed");
            respond(overloadedResponse(req.id, d.retryAfterMs,
                                       d.queueDepth, d.reason));
            return;
        }

        const uint64_t seq = ++seq_;
        Pending p;
        p.req = req;
        p.respond = respond;
        p.shard = shard;
        // Idempotent kinds retry transparently; compound only on the
        // client's explicit "replay": true.
        p.replayOk = req.kind != RequestKind::Compound || req.replay;
        p.enqueuedUs = nowUs();
        p.client = client;
        p.priority = pri;
        p.admitDeadlineUs = deadlineAtUs;
        if (journal_)
            journal_->appendAdmit(seq, req.id,
                                  requestKindName(req.kind), shard,
                                  p.replayOk, line);
        pending_.emplace(seq, std::move(p));
        w.admission->enqueue(seq, client, pri, deadlineAtUs, now);
        ++accepted_;
        ++obs::counter("serve.accepted");
        pumpWorkerLocked(w, out);
    }
    deliver(out);
    cv_.notify_all();
}

void
Supervisor::pumpWorkerLocked(Worker &w, std::vector<Outgoing> &out)
{
    const size_t maxInflight =
        opts_.maxInflightPerWorker > 0
            ? opts_.maxInflightPerWorker
            : static_cast<size_t>(std::max(1, opts_.serve.jobs));
    const int64_t now = steadyUs();
    std::vector<AdmissionDrop> drops;
    while (w.up && !w.recycling &&
           w.inflight.size() < maxInflight) {
        const uint64_t seq = w.admission->pop(now, drops);
        if (seq == 0)
            break;
        auto it = pending_.find(seq);
        if (it == pending_.end()) {
            // Stale ticket (already resolved): release its slot.
            w.admission->finish(seq, now);
            continue;
        }
        Pending &p = it->second;
        p.inflight = true;
        p.forwardedAtUs = nowUs();
        const int64_t eff = effectiveDeadlineMs(p.req);
        p.deadlineAtMs =
            eff > 0 ? nowMs() + eff + opts_.hangGraceMs : 0;
        w.inflight.insert(seq);
        w.outbuf += forwardLine(p, seq);
        w.outbuf += "\n";
    }
    answerDropsLocked(w, drops, out);
    flushOutbufLocked(w);
    maybeFinishRecycleLocked(w);
}

void
Supervisor::answerDropsLocked(Worker &w,
                              const std::vector<AdmissionDrop> &drops,
                              std::vector<Outgoing> &out)
{
    for (const AdmissionDrop &d : drops) {
        auto it = pending_.find(d.id);
        if (it == pending_.end())
            continue;
        Pending &p = it->second;
        if (d.expired) {
            // Its deadline passed while it sat in the queue: answering
            // now beats burning a worker on a result nobody can use.
            const int64_t waitedMs = static_cast<int64_t>(
                (nowUs() - p.enqueuedUs) / 1000.0);
            finishLocked(d.id,
                         deadlineExceededResponse(p.req.id, waitedMs),
                         "deadline-exceeded", errors_, out);
        } else {
            // CoDel aged the standing queue's oldest entry out.
            ++obs::counter("serve.shed");
            finishLocked(
                d.id,
                overloadedResponse(
                    p.req.id,
                    jitteredRetryAfterMs(opts_.serve.retryAfterMs),
                    w.admission->depth(), "queue-aged"),
                "queue-aged", shed_, out);
        }
    }
}

void
Supervisor::beginRecycleLocked(Worker &w, const std::string &reason)
{
    if (!w.up || w.recycling)
        return;
    w.recycling = true;
    w.recycleEofSent = false;
    w.recycleReason = reason;
    w.recycleStartedMs = nowMs();
    ++obs::counter("serve.worker.recycle_started");
    if (journal_)
        journal_->appendEvent(
            "recycle_begin",
            {{"shard", std::to_string(w.shard)},
             {"reason", reason},
             {"inflight", std::to_string(w.inflight.size())}});
    obs::traceEvent("serve", "worker_recycle_begin",
                    {{"shard", int64_t{w.shard}},
                     {"reason", reason},
                     {"inflight",
                      static_cast<int64_t>(w.inflight.size())}});
    maybeFinishRecycleLocked(w);
}

void
Supervisor::maybeFinishRecycleLocked(Worker &w)
{
    if (!w.up || !w.recycling || w.recycleEofSent)
        return;
    if (!w.inflight.empty() || !w.outbuf.empty())
        return;
    // Half-close: the worker's read loop sees EOF, drains (writing its
    // cache snapshot for the warm restart), and exits 0. Our read side
    // stays open so a heartbeat answer already in the pipe still lands.
    if (w.fd >= 0)
        ::shutdown(w.fd, SHUT_WR);
    w.recycleEofSent = true;
}

void
Supervisor::workerRecycledLocked(Worker &w, std::vector<Outgoing> &out)
{
    w.up = false;
    ++w.generation;  // invalidate the reader before retiring it
    retireReaderLocked(w);
    w.outbuf.clear();
    ++w.recycles;
    ++obs::counter("serve.worker.recycled");
    if (journal_)
        journal_->appendEvent(
            "recycle", {{"shard", std::to_string(w.shard)},
                        {"reason", w.recycleReason}});
    obs::traceEvent("serve", "worker_recycled",
                    {{"shard", int64_t{w.shard}},
                     {"reason", w.recycleReason}});
    w.recycling = false;
    w.recycleEofSent = false;
    w.recycleReason.clear();
    w.recycleStartedMs = 0;
    w.backoffMs = 0;  // graceful exit: no crash backoff
    w.respawnAtMs = 0;
    if (!draining_.load())
        spawnWorkerLocked(w, out);
}

void
Supervisor::flushOutbufLocked(Worker &w)
{
    while (!w.outbuf.empty() && w.fd >= 0) {
        ssize_t n =
            ::write(w.fd, w.outbuf.data(), w.outbuf.size());
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;  // kernel buffer full; monitor retries
            // Worker side gone; the reader/reaper handles the death.
            w.outbuf.clear();
            return;
        }
        w.outbuf.erase(0, static_cast<size_t>(n));
    }
}

bool
Supervisor::spawnWorkerLocked(Worker &w, std::vector<Outgoing> &out)
{
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) < 0) {
        warn("serve: socketpair failed: " +
             std::string(std::strerror(errno)));
        w.respawnAtMs = nowMs() + 1000;
        return false;
    }
    setCloexecNonblock(sv[0]);

    // argv is fully materialized before fork: between fork and exec
    // only async-signal-safe calls are allowed in a multithreaded
    // parent, and that excludes malloc.
    std::vector<std::string> args = opts_.workerCommand;
    args.push_back("--worker-fd");
    args.push_back(std::to_string(sv[1]));
    args.push_back("--shard");
    args.push_back(std::to_string(w.shard));
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (std::string &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);

    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(sv[0]);
        ::close(sv[1]);
        warn("serve: fork failed: " +
             std::string(std::strerror(errno)));
        w.respawnAtMs = nowMs() + 1000;
        return false;
    }
    if (pid == 0) {
        // Child: everything supervisor-side is CLOEXEC; sv[1] is not
        // and rides through exec as the worker's request pipe.
        ::execv(argv[0], argv.data());
        _exit(127);
    }
    ::close(sv[1]);

    const bool respawn = w.generation > 0;
    w.pid = pid;
    w.fd = sv[0];
    w.up = true;
    ++w.generation;
    w.spawnedAtMs = w.lastBeatMs = w.lastBeatSentMs = nowMs();
    w.killReason.clear();
    w.recycling = false;
    w.recycleEofSent = false;
    w.recycleReason.clear();
    w.recycleStartedMs = 0;
    w.served = 0;
    w.rssBytes = 0;
    pidToShard_[pid] = w.shard;
    if (respawn) {
        ++w.respawns;
        ++obs::counter("serve.worker.respawns");
    }
    if (journal_)
        journal_->appendEvent(
            "spawn", {{"shard", std::to_string(w.shard)},
                      {"pid", std::to_string(pid)}});
    obs::traceEvent("serve", respawn ? "worker_respawn" : "worker_spawn",
                    {{"shard", int64_t{w.shard}},
                     {"pid", int64_t{pid}}});

    const int shard = w.shard;
    const int fd = w.fd;
    const uint64_t gen = w.generation;
    w.reader = std::thread(
        [this, shard, fd, gen] { readerLoop(shard, fd, gen); });

    // A respawn inherits the dead worker's queued admissions (crash
    // retries included); forward what fits immediately.
    pumpWorkerLocked(w, out);
    return true;
}

void
Supervisor::readerLoop(int shard, int fd, uint64_t generation)
{
    std::string buffer;
    char chunk[4096];
    for (;;) {
        pollfd p{fd, POLLIN, 0};
        int rc = ::poll(&p, 1, 200);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (rc == 0) {
            if (stop_.load())
                break;
            continue;
        }
        ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            break;
        }
        if (n == 0)
            break;  // EOF: worker exited or crashed
        buffer.append(chunk, static_cast<size_t>(n));
        size_t pos;
        while ((pos = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, pos);
            buffer.erase(0, pos + 1);
            onWorkerLine(shard, generation, line);
        }
    }

    // EOF while the slot still thinks it's up: the reader is the
    // first to know, so it kicks off the down-handling itself — except
    // during a graceful recycle, where EOF is the *expected* end of a
    // clean exit and the reaper classifies the death instead.
    std::vector<Outgoing> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        Worker &w = *workers_[shard];
        if (w.up && w.generation == generation && !w.recycling)
            handleWorkerDownLocked(w, "eof", out);
    }
    deliver(out);
    cv_.notify_all();
}

void
Supervisor::onWorkerLine(int shard, uint64_t generation,
                         const std::string &line)
{
    Result<json::Value> parsed = json::parse(line);
    std::vector<Outgoing> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        Worker &w = *workers_[shard];
        if (w.generation != generation)
            return;  // a stale reader must not touch the new worker
        w.lastBeatMs = nowMs();

        if (!parsed.ok()) {
            ++obs::counter("serve.worker.protocol_errors");
            return;
        }
        json::Value &v = parsed.value();
        const std::string id = v.getString("id");
        if (id == "hb") {
            // The heartbeat is a worker `health` response; besides the
            // liveness timestamp it carries the worker's result-cache
            // counters, which live in the worker process and would
            // otherwise be invisible to the supervisor's registry.
            if (const json::Value *cj = v.get("cache");
                cj && cj->isObject()) {
                w.cache.hits = cj->getInt("hits");
                w.cache.misses = cj->getInt("misses");
                w.cache.inflightJoins = cj->getInt("inflight_joins");
                w.cache.evictions = cj->getInt("evictions");
                w.cache.entries = cj->getInt("entries");
                w.cache.bytes = cj->getInt("bytes");
                w.cache.snapshotRejected =
                    cj->getInt("snapshot_rejected");
                w.cache.snapshotLoaded =
                    cj->getInt("snapshot_loaded_entries");
                publishCacheGaugesLocked();
            }
            // The worker's own memory governor rides the heartbeat: a
            // latched hard watermark is a recycle request — honor it
            // with a graceful recycle, not a SIGKILL.
            if (const json::Value *gj = v.get("governor");
                gj && gj->isObject()) {
                if (gj->getBool("hard_pressure") && !w.recycling)
                    beginRecycleLocked(w, "memory");
            }
            return;
        }
        if (id.empty() || id[0] != 's') {
            ++obs::counter("serve.worker.protocol_errors");
            return;
        }
        const uint64_t seq =
            std::strtoull(id.c_str() + 1, nullptr, 10);
        auto it = pending_.find(seq);
        if (it == pending_.end() || it->second.shard != shard ||
            !it->second.inflight)
            return;  // late answer for a request already resolved

        Pending &p = it->second;
        w.inflight.erase(seq);
        // Pure forward-to-answer time feeds the controller's drain-
        // rate and service-time estimates (queue delay excluded).
        if (p.forwardedAtUs > 0.0)
            w.admission->recordService(
                static_cast<int64_t>(nowUs() - p.forwardedAtUs));
        v.set("id", json::Value::string(p.req.id));
        if (p.retried) {
            v.set("retried", json::Value::boolean(true));
            ++obs::counter("serve.worker.retry_answered");
        }
        const std::string type = v.getString("type", "result");
        std::string outcome = type;
        std::atomic<uint64_t> *ctr = &completed_;
        if (type == "result") {
            outcome = v.getString("status", "ok");
        } else if (type == "error") {
            ctr = &errors_;
        } else if (type == "overloaded") {
            ctr = &shed_;
        } else if (type == "cancelled") {
            ctr = &cancelled_;
        }
        finishLocked(seq, v.dump(), outcome, *ctr, out);
        ++w.served;
        if (opts_.maxRequestsPerWorker > 0 && !w.recycling &&
            w.served >= opts_.maxRequestsPerWorker)
            beginRecycleLocked(w, "max-requests");
        pumpWorkerLocked(w, out);
    }
    deliver(out);
    cv_.notify_all();
}

void
Supervisor::finishLocked(uint64_t seq, const std::string &line,
                         const std::string &outcome,
                         std::atomic<uint64_t> &counter,
                         std::vector<Outgoing> &out)
{
    auto it = pending_.find(seq);
    if (it == pending_.end())
        return;
    Pending &p = it->second;
    // Whatever path resolved it, release its admission slot (tolerant
    // of still-queued and already-unknown ids alike).
    workers_[p.shard]->admission->finish(seq, steadyUs());
    ++counter;
    if (p.enqueuedUs > 0.0)
        obs::histogram(std::string("serve.latency_us.") +
                       requestKindName(p.req.kind))
            .sample(nowUs() - p.enqueuedUs);
    if (journal_)
        journal_->appendDone(seq, outcome);
    out.push_back(Outgoing{p.respond, line});
    pending_.erase(it);
}

void
Supervisor::deliver(std::vector<Outgoing> &out)
{
    // Responses go out after mu_ is released: a slow client write
    // must not stall admission, readers, or the monitor.
    for (Outgoing &o : out) {
        if (o.respond)
            o.respond(o.line);
    }
    out.clear();
}

void
Supervisor::retireReaderLocked(Worker &w)
{
    if (w.fd >= 0)
        ::shutdown(w.fd, SHUT_RDWR);
    if (w.reader.joinable())
        retired_.emplace_back(std::move(w.reader), w.fd);
    else if (w.fd >= 0)
        ::close(w.fd);
    w.fd = -1;
}

void
Supervisor::joinRetired()
{
    std::vector<std::pair<std::thread, int>> done;
    {
        std::lock_guard<std::mutex> lock(mu_);
        done.swap(retired_);
    }
    for (auto &[t, fd] : done) {
        if (t.joinable())
            t.join();
        // Closed only after the reader is gone, so the kernel cannot
        // hand the fd number to a new worker while a stale reader
        // could still read from it.
        if (fd >= 0)
            ::close(fd);
    }
}

void
Supervisor::handleWorkerDownLocked(Worker &w, const std::string &why,
                                   std::vector<Outgoing> &out)
{
    if (!w.up)
        return;
    w.up = false;
    ++w.generation;  // invalidate the reader before retiring it
    retireReaderLocked(w);
    w.outbuf.clear();
    // A recycle that ends here ended *ungracefully* (crash or timeout
    // mid-drain); clear the state so the respawn starts clean.
    w.recycling = false;
    w.recycleEofSent = false;
    w.recycleReason.clear();
    w.recycleStartedMs = 0;
    // EOF with the process still alive (closed its pipe but didn't
    // exit) would leave the slot unreapable and the shard down
    // forever; make the death real so waitpid sees it.
    if (why == "eof" && w.pid > 0)
        ::kill(w.pid, SIGKILL);
    ++w.crashes;
    ++obs::counter("serve.worker.crashes");
    if (journal_)
        journal_->appendEvent(
            "crash", {{"shard", std::to_string(w.shard)},
                      {"why", why},
                      {"inflight",
                       std::to_string(w.inflight.size())}});
    obs::traceEvent("serve", "worker_down",
                    {{"shard", int64_t{w.shard}},
                     {"why", why},
                     {"inflight",
                      static_cast<int64_t>(w.inflight.size())}});

    // Crash fallout: every in-flight request resolves now — either
    // re-enqueued for one retry, or with a structured worker-crashed
    // error. Exactly one terminal response either way.
    std::vector<uint64_t> inflight(w.inflight.begin(),
                                   w.inflight.end());
    w.inflight.clear();
    const int64_t nowSteady = steadyUs();
    for (auto rit = inflight.begin(); rit != inflight.end(); ++rit) {
        const uint64_t seq = *rit;
        auto it = pending_.find(seq);
        if (it == pending_.end())
            continue;
        Pending &p = it->second;
        if (p.replayOk && !p.retried) {
            p.retried = true;
            p.inflight = false;
            p.deadlineAtMs = 0;
            p.forwardedAtUs = 0.0;
            // Release the popped slot, then queue the retry under the
            // same fair-share key for the respawned worker.
            w.admission->finish(seq, nowSteady);
            w.admission->enqueue(seq, p.client, p.priority,
                                 p.admitDeadlineUs, nowSteady);
            ++obs::counter("serve.worker.retries");
            if (journal_)
                journal_->appendEvent(
                    "retry", {{"seq", std::to_string(seq)},
                              {"shard", std::to_string(w.shard)}});
        } else {
            finishLocked(
                seq,
                errorResponse(
                    p.req.id, "serve.worker-crashed",
                    "worker shard " + std::to_string(w.shard) +
                        " died (" + why +
                        ") while running this request"),
                "worker-crashed", errors_, out);
        }
    }

    // Capped exponential backoff before the respawn.
    w.backoffMs = w.backoffMs == 0
                      ? opts_.backoffBaseMs
                      : std::min(opts_.backoffCapMs, w.backoffMs * 2);
    w.respawnAtMs = nowMs() + w.backoffMs;
}

void
Supervisor::reapLocked(std::vector<Outgoing> &out)
{
    signals::consumeChildEvent();
    for (;;) {
        int status = 0;
        pid_t pid = ::waitpid(-1, &status, WNOHANG);
        if (pid <= 0)
            break;
        auto it = pidToShard_.find(pid);
        if (it == pidToShard_.end())
            continue;
        Worker &w = *workers_[it->second];
        pidToShard_.erase(it);
        w.pid = -1;

        std::string kind =
            !w.killReason.empty() ? w.killReason : crashKind(status);
        w.killReason.clear();
        // A recycling worker that exits 0 did exactly what it was
        // asked: that is a recycle, never a crash.
        if (w.recycling && kind == "exit_0") {
            workerRecycledLocked(w, out);
            continue;
        }
        const bool expected =
            draining_.load() && kind == "exit_0";
        if (!expected)
            ++obs::counter("serve.worker.crash." + kind);
        if (w.up)
            handleWorkerDownLocked(w, kind, out);
    }
}

void
Supervisor::monitorLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_.load()) {
        cv_.wait_for(lock, std::chrono::milliseconds(20));
        if (stop_.load())
            break;

        std::vector<Outgoing> out;
        reapLocked(out);

        const int64_t now = nowMs();

        // SIGHUP: queue a rolling restart of every shard. A HUP that
        // lands mid-roll is coalesced into the one already running.
        if (signals::consumeHup() && rollingQueue_.empty() &&
            !draining_.load()) {
            for (auto &wp : workers_)
                rollingQueue_.push_back(wp->shard);
            ++obs::counter("serve.rolling_restarts");
            obs::traceEvent("serve", "rolling_restart_begin",
                            {{"workers", int64_t{opts_.workers}}});
        }
        // Advance the roll only when the fleet is whole again — the
        // previous shard is back up and nothing is mid-recycle — so
        // capacity dips by at most one worker at a time.
        if (!rollingQueue_.empty() && !draining_.load()) {
            bool quiet = true;
            for (auto &wp : workers_)
                if (!wp->up || wp->recycling) {
                    quiet = false;
                    break;
                }
            if (quiet) {
                const int s = rollingQueue_.front();
                rollingQueue_.pop_front();
                beginRecycleLocked(*workers_[s], "sighup");
            }
        }

        // Per-worker RSS via /proc/<pid>/statm, plus the summed
        // admission-depth gauges (the per-shard controllers do not
        // publish their own).
        if (now - lastRssSampleMs_ >= 500) {
            lastRssSampleMs_ = now;
            uint64_t qInt = 0, qBatch = 0;
            for (auto &wp : workers_) {
                Worker &w = *wp;
                if (w.up && w.pid > 0) {
                    const uint64_t rss = procstat::rssBytes(w.pid);
                    if (rss > 0)
                        w.rssBytes = rss;
                    if (opts_.serve.rssHardBytes > 0 &&
                        !w.recycling &&
                        rss > opts_.serve.rssHardBytes)
                        beginRecycleLocked(w, "rss");
                }
                qInt += w.admission->depth(Priority::Interactive);
                qBatch += w.admission->depth(Priority::Batch);
            }
            obs::gauge("serve.admission.queue.interactive")
                .set(static_cast<double>(qInt));
            obs::gauge("serve.admission.queue.batch")
                .set(static_cast<double>(qBatch));
        }

        for (auto &wp : workers_) {
            Worker &w = *wp;
            if (w.up) {
                // pump (not just flush): pop-time drops — expired and
                // CoDel-aged entries — need a periodic tick even when
                // no new work or answers arrive.
                pumpWorkerLocked(w, out);
                if (!w.recycleEofSent &&
                    now - w.lastBeatSentMs >= opts_.heartbeatMs) {
                    w.outbuf += kHeartbeatLine;
                    w.lastBeatSentMs = now;
                    flushOutbufLocked(w);
                }
                if (w.recycling) {
                    // Hang detection is off mid-recycle (after the
                    // half-close we cannot heartbeat); the recycle
                    // grace is the only clock, and blowing it is a
                    // crash, not a recycle.
                    if (now - w.recycleStartedMs >
                        opts_.recycleGraceMs) {
                        ++obs::counter(
                            "serve.worker.recycle_timeouts");
                        w.killReason = "recycle-timeout";
                        if (w.pid > 0)
                            ::kill(w.pid, SIGKILL);
                        handleWorkerDownLocked(w, "recycle-timeout",
                                               out);
                    }
                    continue;
                }
                bool hung = now - w.lastBeatMs >
                            opts_.heartbeatMs * opts_.heartbeatMisses;
                for (auto seqIt = w.inflight.begin();
                     !hung && seqIt != w.inflight.end(); ++seqIt) {
                    auto p = pending_.find(*seqIt);
                    hung = p != pending_.end() &&
                           p->second.deadlineAtMs > 0 &&
                           now > p->second.deadlineAtMs;
                }
                if (hung) {
                    ++obs::counter("serve.worker.hangs");
                    w.killReason = "hang";
                    if (w.pid > 0)
                        ::kill(w.pid, SIGKILL);
                    handleWorkerDownLocked(w, "hang", out);
                } else if (w.backoffMs > 0 &&
                           now - w.spawnedAtMs > opts_.stableMs) {
                    w.backoffMs = 0;  // survived: backoff resets
                }
            } else if (w.pid < 0 && !draining_.load() &&
                       w.respawnAtMs > 0 && now >= w.respawnAtMs) {
                w.respawnAtMs = 0;
                spawnWorkerLocked(w, out);
            }
        }

        if (journal_ && now - lastJournalSyncMs_ >= 500) {
            lastJournalSyncMs_ = now;
            lock.unlock();
            journal_->sync();
            joinRetired();
            deliver(out);
            lock.lock();
            continue;
        }

        lock.unlock();
        joinRetired();
        deliver(out);
        lock.lock();
    }
}

void
Supervisor::drain()
{
    std::lock_guard<std::mutex> drainLock(drainMutex_);
    if (drained_.exchange(true))
        return;
    draining_.store(true);
    obs::traceEvent("serve", "supervisor_drain",
                    {{"pending",
                      static_cast<int64_t>(pending_.size())}});
    cv_.notify_all();

    const int64_t deadline =
        nowMs() + opts_.serve.drainDeadlineMs;
    std::vector<Outgoing> out;
    {
        std::unique_lock<std::mutex> lock(mu_);
        while (!pending_.empty() && nowMs() < deadline)
            cv_.wait_for(lock, std::chrono::milliseconds(25));

        // Strand whatever the deadline left behind — queued or
        // in-flight on a wedged worker — with `cancelled`.
        std::vector<uint64_t> leftover;
        leftover.reserve(pending_.size());
        for (const auto &[seq, p] : pending_)
            leftover.push_back(seq);
        for (uint64_t seq : leftover) {
            finishLocked(seq,
                         cancelledResponse(pending_[seq].req.id,
                                           "drain deadline exceeded"),
                         "cancelled", cancelled_, out);
        }
        for (auto &wp : workers_)
            wp->inflight.clear();
        stop_.store(true);
    }
    deliver(out);
    cv_.notify_all();
    if (monitor_.joinable())
        monitor_.join();

    // Shut the workers down: closing the pipe is the protocol (the
    // worker's read loop sees EOF, drains, exits 0); SIGTERM is the
    // belt for a worker stuck before its read loop.
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto &wp : workers_) {
            Worker &w = *wp;
            if (w.up) {
                w.up = false;
                ++w.generation;
                retireReaderLocked(w);
            }
            if (w.pid > 0)
                ::kill(w.pid, SIGTERM);
        }
    }
    joinRetired();

    // Reap with a bounded wait, then escalate to SIGKILL.
    const int64_t reapDeadline = nowMs() + 2000;
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            for (;;) {
                int status = 0;
                pid_t pid = ::waitpid(-1, &status, WNOHANG);
                if (pid <= 0)
                    break;
                auto it = pidToShard_.find(pid);
                if (it != pidToShard_.end()) {
                    workers_[it->second]->pid = -1;
                    pidToShard_.erase(it);
                }
            }
            if (pidToShard_.empty())
                break;
            if (nowMs() >= reapDeadline) {
                for (auto &[pid, shard] : pidToShard_)
                    ::kill(pid, SIGKILL);
            }
        }
        if (nowMs() >= reapDeadline + 2000)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    if (journal_) {
        journal_->sync();
        if (journal_->depth() != 0) {
            // Every admit should have a done by now; this firing
            // means a response was lost — exactly what the journal
            // exists to catch.
            obs::traceEvent(
                "serve", "journal_nonempty",
                {{"depth",
                  static_cast<int64_t>(journal_->depth())}});
            warn("serve: journal has " +
                 std::to_string(journal_->depth()) +
                 " unanswered admissions after drain");
        }
    }

    {
        std::lock_guard<std::mutex> lock(metricsMutex_);
        metricsStop_ = true;
    }
    metricsCv_.notify_all();
    if (metricsThread_.joinable())
        metricsThread_.join();
    writeMetricsSnapshotNow();
    {
        std::lock_guard<std::mutex> lock(metricsFileMutex_);
        metricsOut_.reset();
    }

    obs::flushTrace();
}

void
Supervisor::metricsLoop()
{
    std::unique_lock<std::mutex> lock(metricsMutex_);
    while (!metricsStop_) {
        metricsCv_.wait_for(
            lock,
            std::chrono::milliseconds(opts_.serve.metricsIntervalMs),
            [this] { return metricsStop_; });
        if (metricsStop_)
            break;
        lock.unlock();
        writeMetricsSnapshotNow();
        lock.lock();
    }
}

void
Supervisor::writeMetricsSnapshotNow()
{
    std::lock_guard<std::mutex> lock(metricsFileMutex_);
    if (!metricsOut_)
        return;
    size_t depth;
    {
        std::lock_guard<std::mutex> mlock(mu_);
        depth = pending_.size();
    }
    std::vector<std::pair<std::string, std::string>> extra;
    extra.emplace_back("queue_depth", std::to_string(depth));
    extra.emplace_back(
        "queue_capacity",
        std::to_string(opts_.maxQueuedPerWorker *
                       static_cast<size_t>(opts_.workers)));
    extra.emplace_back("uptime_ms",
                       std::to_string(nowMs() - startedAtMs_));
    extra.emplace_back("draining",
                       draining_.load() ? "true" : "false");
    extra.emplace_back("workers", workersDump());
    obs::writeMetricsSnapshot(obs::statsRegistry(), *metricsOut_,
                              wallMs(), extra);
}

Server::RequestCounters
Supervisor::requestCounters() const
{
    Server::RequestCounters c;
    c.received = received_.load();
    c.accepted = accepted_.load();
    c.completed = completed_.load();
    c.shed = shed_.load();
    c.cancelled = cancelled_.load();
    c.errors = errors_.load();
    return c;
}

std::vector<WorkerRow>
Supervisor::workerRows() const
{
    std::vector<WorkerRow> rows;
    const int64_t now = nowMs();
    std::lock_guard<std::mutex> lock(mu_);
    rows.reserve(workers_.size());
    for (const auto &wp : workers_) {
        const Worker &w = *wp;
        WorkerRow r;
        r.shard = w.shard;
        r.pid = w.pid;
        r.state = !w.up ? "down" : (w.recycling ? "recycling" : "up");
        r.inflight = w.inflight.size();
        r.queued = w.admission->depth();
        r.respawns = w.respawns;
        r.crashes = w.crashes;
        r.recycles = w.recycles;
        r.served = w.served;
        r.rssBytes = w.rssBytes;
        r.heartbeatAgeMs = w.up ? now - w.lastBeatMs : -1;
        rows.push_back(r);
    }
    return rows;
}

void
Supervisor::publishCacheGaugesLocked()
{
    // Sums across shard workers, mirrored into supervisor gauges so
    // `memoria top` and the metrics snapshots see serve.cache.* from
    // the front process. Counters in the workers, gauges here: a
    // respawned worker restarts its counters, and a gauge can move
    // backwards without lying.
    uint64_t hits = 0, misses = 0, joins = 0, evictions = 0;
    uint64_t entries = 0, bytes = 0, rejected = 0, loaded = 0;
    for (const auto &wp : workers_) {
        hits += wp->cache.hits;
        misses += wp->cache.misses;
        joins += wp->cache.inflightJoins;
        evictions += wp->cache.evictions;
        entries += wp->cache.entries;
        bytes += wp->cache.bytes;
        rejected += wp->cache.snapshotRejected;
        loaded += wp->cache.snapshotLoaded;
    }
    obs::gauge("serve.cache.hits").set(static_cast<double>(hits));
    obs::gauge("serve.cache.misses").set(static_cast<double>(misses));
    obs::gauge("serve.cache.inflight_joins")
        .set(static_cast<double>(joins));
    obs::gauge("serve.cache.evictions")
        .set(static_cast<double>(evictions));
    obs::gauge("serve.cache.entries").set(static_cast<double>(entries));
    obs::gauge("serve.cache.bytes").set(static_cast<double>(bytes));
    obs::gauge("serve.cache.snapshot_rejected")
        .set(static_cast<double>(rejected));
    obs::gauge("serve.cache.snapshot_loaded_entries")
        .set(static_cast<double>(loaded));
}

std::string
Supervisor::workersDump() const
{
    json::Value arr = json::Value::array();
    for (const WorkerRow &r : workerRows()) {
        json::Value o = json::Value::object();
        o.set("shard", json::Value::number(int64_t{r.shard}));
        o.set("pid", json::Value::number(r.pid));
        o.set("state", json::Value::string(r.state));
        o.set("inflight",
              json::Value::number(static_cast<int64_t>(r.inflight)));
        o.set("queued",
              json::Value::number(static_cast<int64_t>(r.queued)));
        o.set("respawns",
              json::Value::number(static_cast<int64_t>(r.respawns)));
        o.set("crashes",
              json::Value::number(static_cast<int64_t>(r.crashes)));
        o.set("recycles",
              json::Value::number(static_cast<int64_t>(r.recycles)));
        o.set("served",
              json::Value::number(static_cast<int64_t>(r.served)));
        o.set("rss_bytes",
              json::Value::number(static_cast<int64_t>(r.rssBytes)));
        o.set("heartbeat_age_ms",
              json::Value::number(r.heartbeatAgeMs));
        arr.push(std::move(o));
    }
    return arr.dump();
}

std::string
Supervisor::healthLine(const std::string &id) const
{
    Server::RequestCounters c = requestCounters();
    size_t depth;
    uint64_t qInteractive = 0, qBatch = 0, inflight = 0, recycles = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        depth = pending_.size();
        for (const auto &wp : workers_) {
            qInteractive +=
                wp->admission->depth(Priority::Interactive);
            qBatch += wp->admission->depth(Priority::Batch);
            inflight += wp->inflight.size();
            recycles += wp->recycles;
        }
    }
    json::Value r = json::Value::object();
    r.set("id", json::Value::string(id));
    r.set("type", json::Value::string("health"));
    r.set("status", json::Value::string(
                        draining_.load() ? "draining" : "ok"));
    r.set("version", json::Value::string(versionLine()));
    r.set("uptime_ms", json::Value::number(nowMs() - startedAtMs_));
    r.set("workers", json::Value::number(int64_t{opts_.workers}));
    r.set("queue_depth",
          json::Value::number(static_cast<int64_t>(depth)));
    r.set("queue_capacity",
          json::Value::number(static_cast<int64_t>(
              opts_.maxQueuedPerWorker *
              static_cast<size_t>(opts_.workers))));

    json::Value reqs = json::Value::object();
    reqs.set("received",
             json::Value::number(static_cast<int64_t>(c.received)));
    reqs.set("accepted",
             json::Value::number(static_cast<int64_t>(c.accepted)));
    reqs.set("completed",
             json::Value::number(static_cast<int64_t>(c.completed)));
    reqs.set("shed", json::Value::number(static_cast<int64_t>(c.shed)));
    reqs.set("cancelled",
             json::Value::number(static_cast<int64_t>(c.cancelled)));
    reqs.set("errors",
             json::Value::number(static_cast<int64_t>(c.errors)));
    r.set("requests", std::move(reqs));

    // Summed admission state across the per-shard controllers — the
    // overload-soak's (and `memoria top`'s) one-stop view.
    json::Value adm = json::Value::object();
    adm.set("queued_interactive",
            json::Value::number(static_cast<int64_t>(qInteractive)));
    adm.set("queued_batch",
            json::Value::number(static_cast<int64_t>(qBatch)));
    adm.set("inflight",
            json::Value::number(static_cast<int64_t>(inflight)));
    adm.set("recycles",
            json::Value::number(static_cast<int64_t>(recycles)));
    r.set("admission", std::move(adm));

    // Admitted-but-unanswered requests found by the journal replay at
    // construction: what the previous incarnation owed its clients.
    if (!recovery_.empty()) {
        json::Value rec = json::Value::object();
        rec.set("journal_replayed", json::Value::boolean(true));
        rec.set("unanswered",
                json::Value::number(
                    static_cast<int64_t>(recovery_.size())));
        json::Value arr = json::Value::array();
        constexpr size_t kMaxListed = 16;
        for (size_t i = 0; i < recovery_.size() && i < kMaxListed;
             ++i) {
            const JournalEntry &e = recovery_[i];
            json::Value o = json::Value::object();
            o.set("seq", json::Value::number(
                             static_cast<int64_t>(e.seq)));
            o.set("id", json::Value::string(e.id));
            o.set("kind", json::Value::string(e.kind));
            o.set("shard", json::Value::number(int64_t{e.shard}));
            arr.push(std::move(o));
        }
        rec.set("entries", std::move(arr));
        r.set("recovery", std::move(rec));
    }

    std::string line = r.dump();
    // Splice the workers array in (it is already dumped JSON).
    line.pop_back();  // '}'
    line += ",\"worker_table\":" + workersDump() + "}";
    return line;
}

std::string
Supervisor::statsLine(const std::string &id) const
{
    return "{\"id\":" + json::quote(id) +
           ",\"type\":\"stats\",\"workers\":" + workersDump() +
           ",\"registry\":" + registryDumpJson() + "}";
}

std::string
Supervisor::metricsLine(const std::string &id) const
{
    size_t depth;
    {
        std::lock_guard<std::mutex> lock(mu_);
        depth = pending_.size();
    }
    return "{\"id\":" + json::quote(id) + ",\"type\":\"metrics\"" +
           ",\"ts_ms\":" + std::to_string(wallMs()) +
           ",\"uptime_ms\":" + std::to_string(nowMs() - startedAtMs_) +
           ",\"queue_depth\":" +
           std::to_string(static_cast<int64_t>(depth)) +
           ",\"queue_capacity\":" +
           std::to_string(opts_.maxQueuedPerWorker *
                          static_cast<size_t>(opts_.workers)) +
           ",\"draining\":" + (draining_.load() ? "true" : "false") +
           ",\"workers\":" + workersDump() +
           ",\"registry\":" + registryDumpJson() +
           ",\"exposition\":" + json::quote(obs::prometheusText()) +
           "}";
}

} // namespace serve
} // namespace memoria
