/**
 * @file
 * The JSON-lines request/response protocol `memoria serve` speaks.
 *
 * One request per line, one *terminal* response per request, on stdin/
 * stdout or over a TCP/Unix-socket connection (serve/listener.hh). A
 * request is a JSON object:
 *
 *     {"id":"r1","kind":"compound","program":"PROGRAM P\n...","
 *      deadline_ms":2000,"simulate":true,"fault":"site:throw:1"}
 *
 *   id           echoed verbatim in the response ("" when omitted)
 *   kind         analyze | compound | simulate | health | stats |
 *                metrics
 *   program      `.mem` source text (work kinds only)
 *   deadline_ms  per-request budget override, clamped by the server
 *   simulate     force simulation on/off (default: kind == simulate)
 *   fault        fault-injection spec for this request — test hook,
 *                honored only when the server runs with --allow-faults
 *   trace_id     optional client-chosen trace id, echoed in the
 *                response and stamped on every span the request emits
 *                (the server mints one when omitted)
 *
 * Terminal response types (field "type"):
 *
 *   result      the pipeline ran; carries status/rung/sim/incident_dir
 *               plus `trace_id` and a per-stage `timings` breakdown
 *   error       the request is unusable (bad JSON, unknown kind, load
 *               breaker open); carries code + message
 *   overloaded  admission queue full; carries retry_after_ms
 *   cancelled   accepted but not run (server drained first)
 *   health      liveness/breaker/queue snapshot
 *   stats       the full obs stats registry + breaker snapshots
 *   metrics     Prometheus exposition + registry dump, answered inline
 *
 * Every line the server emits is a single JSON object; clients never
 * need to handle partial or multi-line frames.
 */

#ifndef MEMORIA_SERVE_PROTOCOL_HH
#define MEMORIA_SERVE_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <string>

#include "check/diag.hh"
#include "harness/batch.hh"

namespace memoria {
namespace serve {

/** What a request asks for. */
enum class RequestKind
{
    Analyze,   ///< load + validate + identity-rung analysis, no sim
    Compound,  ///< full degradation ladder, no simulation by default
    Simulate,  ///< full ladder + cache simulation
    Health,    ///< liveness snapshot, answered inline
    Stats,     ///< obs registry dump, answered inline
    Metrics,   ///< Prometheus exposition + registry, answered inline
};

/** Printable name ("analyze", "compound", ...). */
const char *requestKindName(RequestKind k);

/** One parsed request. */
struct Request
{
    std::string id;
    RequestKind kind = RequestKind::Compound;
    std::string program;
    int64_t deadlineMs = 0;            ///< 0 = server default
    std::optional<bool> simulate;      ///< override kind's default
    std::string fault;                 ///< fault spec ("" = none)
    std::string traceId;               ///< client trace id ("" = mint)

    /**
     * Admission-control fields (serve/admission.hh). `priority` is
     * "interactive" (the default) or "batch" — anything else is a
     * request error. `client_id` keys per-client fair-share queuing;
     * when empty the server falls back to a per-connection key.
     */
    std::string priority;
    std::string clientId;

    /**
     * Client opt-in to replay after a worker crash. `analyze` and
     * `simulate` are idempotent and retried transparently; `compound`
     * is only re-run when the client set `"replay": true` — otherwise
     * a crash mid-request answers `serve.worker-crashed`.
     */
    bool replay = false;
};

/**
 * Parse one request line. Returns a Diag for malformed JSON, a
 * non-object, an unknown kind, or a missing program on a work kind
 * (code "serve.request"), or for input that blows a resource cap —
 * oversized line, excessive JSON nesting or node count — (code
 * "protocol.too-large", rejected before any unbounded allocation).
 */
Result<Request> parseRequest(const std::string &line,
                             size_t maxBytes = 4u << 20);

/** JSON nesting depth `parseRequest` accepts: requests are flat
 *  objects, so anything deep is hostile, not a client mistake. */
constexpr int kMaxRequestDepth = 16;

/**
 * `retryAfterMs` with ±20% uniform jitter (never below 1). Sheds use
 * this so a synchronized burst of shed clients doesn't come back as a
 * synchronized retry storm.
 */
int64_t jitteredRetryAfterMs(int64_t baseMs);

/** True when the kind runs the pipeline (needs queue admission). */
bool isWorkKind(RequestKind k);

// --- Response builders: each returns one JSON line, newline excluded.

/**
 * Request-scoped telemetry stamped into a "result" response: the
 * trace id the request ran under and the serve-side timing fields the
 * harness cannot know (queue wait and end-to-end total).
 */
struct ResponseMeta
{
    std::string traceId;
    double queueUs = 0.0;
    double totalUs = 0.0;
};

/**
 * "result" from a finished pipeline outcome. Carries a `timings`
 * object {queue_us, load_us, optimize_us, verify_us, simulate_us,
 * total_us}; the stage fields come from `out.timings`, queue/total
 * from `meta`, and the stages are disjoint with sum <= total_us.
 */
std::string resultResponse(const std::string &id,
                           const harness::ProgramOutcome &out,
                           bool degradedByBreaker,
                           const std::string &incidentDir,
                           const ResponseMeta &meta = {},
                           bool degradedByMemory = false);

/**
 * "result" replayed from the result cache. `cachedBody` is a response
 * the cache stored (a resultResponse built with empty id and default
 * meta); this re-stamps the requester's own `id`/`trace_id`, patches
 * `timings.queue_us`/`timings.total_us` with the replay-side values
 * (stage timings stay the leader's — they describe the computation),
 * and marks the provenance: `"cache_hit":true` for an LRU hit,
 * `"dedup_follower":true` for a response received from a single-
 * flight leader. Everything else is byte-identical to a fresh run.
 */
std::string cachedResultResponse(const std::string &cachedBody,
                                 const std::string &id,
                                 const ResponseMeta &meta,
                                 bool dedupFollower);

/** "error" with a stable dotted code. */
std::string errorResponse(const std::string &id, const std::string &code,
                          const std::string &message);

/**
 * "overloaded" load-shed response. `queueDepth` is the admission
 * queue depth at shed time and `reason` says *why* this request was
 * shed — "queue-full", "client-capped", or "deadline-infeasible" —
 * so clients (and the soak harness) can distinguish "back off" from
 * "you specifically are flooding" from "your deadline cannot be met".
 */
std::string overloadedResponse(const std::string &id,
                               int64_t retryAfterMs,
                               uint64_t queueDepth = 0,
                               const std::string &reason = "queue-full");

/**
 * "error" with code `serve.deadline-exceeded`: the request's deadline
 * passed while it sat in the admission queue; it never ran.
 */
std::string deadlineExceededResponse(const std::string &id,
                                     int64_t waitedMs);

/** "cancelled" (accepted, then drained before running). */
std::string cancelledResponse(const std::string &id,
                              const std::string &reason);

} // namespace serve
} // namespace memoria

#endif // MEMORIA_SERVE_PROTOCOL_HH
