#include "serve/cache.hh"

#include <chrono>

#include "frontend/parser.hh"
#include "ir/printer.hh"
#include "support/stats.hh"

namespace memoria {
namespace serve {

namespace {

uint64_t
fnv1a64(const std::string &s, uint64_t h = 1469598103934665603ull)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
hex64(uint64_t v)
{
    static const char *digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i, v >>= 4)
        out[i] = digits[v & 0xf];
    return out;
}

/** 128 bits of key: two differently-seeded FNV passes. Collisions
 *  would serve a wrong-but-well-formed response, so 64 bits is not
 *  enough headroom for a long-lived cache; 128 is. */
std::string
digest128(const std::string &material)
{
    return hex64(fnv1a64(material)) +
           hex64(fnv1a64(material, 0xcbf29ce484222325ull ^
                                       0x9e3779b97f4a7c15ull));
}

} // namespace

std::string
serveConfigDigest(const ModelParams &params,
                  const std::vector<CacheConfig> &configs)
{
    std::string m = "line_bytes=" + std::to_string(params.lineBytes) +
                    ";policy=" +
                    std::to_string(static_cast<int>(params.policy)) +
                    ";group_dist=" +
                    std::to_string(params.maxGroupDist) + ";caches=";
    for (const CacheConfig &c : configs) {
        m += c.name + ":" + std::to_string(c.sizeBytes) + ":" +
             std::to_string(c.associativity) + ":" +
             std::to_string(c.lineBytes) + ",";
    }
    return hex64(fnv1a64(m));
}

std::string
resultCacheKey(const std::string &program, const std::string &kindName,
               bool simulate, int startRung,
               const std::string &configDigest)
{
    // Canonical print: formatting-only variants of the same program
    // share an entry. Unparsable text keys on the raw bytes — it will
    // deterministically produce the same Diag either way.
    std::string canonical;
    ParseError perr;
    if (std::optional<Program> prog = parseProgram(program, &perr))
        canonical = printProgram(*prog);
    else
        canonical = program;

    std::string material = "kind=" + kindName +
                           ";sim=" + (simulate ? "1" : "0") +
                           ";rung=" + std::to_string(startRung) +
                           ";cfg=" + configDigest + ";program=" +
                           canonical;
    return digest128(material);
}

/**
 * One in-flight computation. The flight's own mutex orders the
 * leader-hand-off protocol; it is never held together with the cache
 * mutex (publish/abandon take them strictly one after the other), so
 * there is no lock-order cycle between flights and the LRU.
 */
struct ResultCache::Flight
{
    std::mutex m;
    std::condition_variable cv;
    bool done = false;       ///< leader published; body is valid
    bool hasLeader = true;   ///< false between abandon and re-election
    int waiters = 0;
    std::string body;
};

ResultCache::ResultCache(CacheOptions opts) : opts_(opts) {}

ResultCache::Ticket
ResultCache::begin(const std::string &key)
{
    Ticket t;
    t.key = key;
    std::lock_guard<std::mutex> lock(mu_);
    auto hit = index_.find(key);
    if (hit != index_.end()) {
        lru_.splice(lru_.begin(), lru_, hit->second);
        ++hits_;
        ++obs::counter("serve.cache.hits");
        t.role = Role::Hit;
        t.body = hit->second->body;
        return t;
    }
    auto fl = inflight_.find(key);
    if (fl != inflight_.end()) {
        ++joins_;
        ++obs::counter("serve.cache.inflight_joins");
        t.role = Role::Follower;
        t.flight = fl->second;
        return t;
    }
    ++misses_;
    ++obs::counter("serve.cache.misses");
    t.role = Role::Leader;
    t.flight = std::make_shared<Flight>();
    inflight_.emplace(key, t.flight);
    return t;
}

void
ResultCache::publish(const Ticket &t, const std::string &body)
{
    if (!t.flight)
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        insertLocked(t.key, body);
        eraseFlightLocked(t.key, t.flight);
    }
    {
        std::lock_guard<std::mutex> fl(t.flight->m);
        t.flight->done = true;
        t.flight->body = body;
    }
    t.flight->cv.notify_all();
}

void
ResultCache::abandon(const Ticket &t)
{
    if (!t.flight)
        return;
    bool dissolve = false;
    {
        std::lock_guard<std::mutex> fl(t.flight->m);
        t.flight->hasLeader = false;
        dissolve = t.flight->waiters == 0;
    }
    if (dissolve) {
        // Nobody to re-elect: remove the flight so the next arrival
        // starts fresh. A follower whose begin() raced this sees
        // hasLeader == false on its detached flight and self-elects;
        // its eventual publish() then only fills the LRU.
        std::lock_guard<std::mutex> lock(mu_);
        eraseFlightLocked(t.key, t.flight);
    }
    t.flight->cv.notify_all();
}

ResultCache::WaitOutcome
ResultCache::wait(Ticket &t, int64_t timeoutMs)
{
    if (!t.flight)
        return WaitOutcome::TimedOut;
    std::shared_ptr<Flight> f = t.flight;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(
                              timeoutMs > 0 ? timeoutMs : 1);
    std::unique_lock<std::mutex> fl(f->m);
    ++f->waiters;
    for (;;) {
        if (f->done) {
            --f->waiters;
            t.body = f->body;
            return WaitOutcome::Value;
        }
        if (!f->hasLeader) {
            // First waiter through here wins the re-election; the
            // rest go back to waiting on the new leader.
            f->hasLeader = true;
            --f->waiters;
            t.role = Role::Leader;
            return WaitOutcome::Elected;
        }
        if (f->cv.wait_until(fl, deadline) ==
            std::cv_status::timeout) {
            --f->waiters;
            return WaitOutcome::TimedOut;
        }
    }
}

void
ResultCache::seed(const std::string &key, const std::string &body)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (index_.count(key))
        return;
    insertLocked(key, body);
}

size_t
ResultCache::shrinkTo(size_t maxEntries, size_t maxBytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t evicted = 0;
    while (!lru_.empty() &&
           ((maxEntries > 0 && lru_.size() > maxEntries) ||
            (maxBytes > 0 && bytes_ > maxBytes))) {
        const Entry &victim = lru_.back();
        bytes_ -= victim.key.size() + victim.body.size();
        index_.erase(victim.key);
        lru_.pop_back();
        ++evictions_;
        ++evicted;
        ++obs::counter("serve.cache.evictions");
    }
    if (evicted > 0)
        publishGauges();
    return evicted;
}

std::vector<std::pair<std::string, std::string>>
ResultCache::entries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(lru_.size());
    for (const Entry &e : lru_)
        out.emplace_back(e.key, e.body);
    return out;
}

ResultCacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    ResultCacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.inflightJoins = joins_;
    s.evictions = evictions_;
    s.entries = lru_.size();
    s.bytes = bytes_;
    return s;
}

void
ResultCache::insertLocked(const std::string &key,
                          const std::string &body)
{
    const size_t size = key.size() + body.size();
    // An entry that alone overflows the byte budget would evict the
    // whole cache and still not fit; skip it.
    if (opts_.maxEntries == 0 ||
        (opts_.maxBytes > 0 && size > opts_.maxBytes))
        return;
    auto it = index_.find(key);
    if (it != index_.end()) {
        bytes_ -= it->second->key.size() + it->second->body.size();
        it->second->body = body;
        bytes_ += size;
        lru_.splice(lru_.begin(), lru_, it->second);
    } else {
        lru_.push_front(Entry{key, body});
        index_[key] = lru_.begin();
        bytes_ += size;
    }
    while (!lru_.empty() &&
           (lru_.size() > opts_.maxEntries ||
            (opts_.maxBytes > 0 && bytes_ > opts_.maxBytes))) {
        const Entry &victim = lru_.back();
        bytes_ -= victim.key.size() + victim.body.size();
        index_.erase(victim.key);
        lru_.pop_back();
        ++evictions_;
        ++obs::counter("serve.cache.evictions");
    }
    publishGauges();
}

void
ResultCache::eraseFlightLocked(const std::string &key,
                               const std::shared_ptr<Flight> &flight)
{
    auto it = inflight_.find(key);
    // Pointer-compared: a detached flight's late publish must not
    // tear down an unrelated newer flight for the same key.
    if (it != inflight_.end() && it->second == flight)
        inflight_.erase(it);
}

void
ResultCache::publishGauges() const
{
    obs::gauge("serve.cache.entries")
        .set(static_cast<double>(lru_.size()));
    obs::gauge("serve.cache.bytes").set(static_cast<double>(bytes_));
}

} // namespace serve
} // namespace memoria
