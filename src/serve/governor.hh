/**
 * @file
 * Memory governor for `memoria serve`: RSS watermarks that trade
 * optimization strength for staying alive.
 *
 * Unbounded memory growth in a long-lived worker ends one way: the
 * kernel OOM-killer takes the process mid-request and the supervisor
 * counts a crash. The governor samples the process's own resident set
 * (support/procstat.hh) on a dedicated thread and applies two
 * watermarks, in the same spirit as the load breaker — degrade
 * deliberately before failing accidentally:
 *
 *  - **soft**: shed memory and cost — the result cache is squeezed to
 *    half its current footprint and the degradation ladder is forced
 *    to start at a cheaper rung (responses carry
 *    `"degraded_by_memory":true`); released once RSS falls back under
 *    ~90% of the watermark. Note RSS is what the allocator returned
 *    to the kernel, not live bytes — on allocators that hoard, soft
 *    pressure can be sticky even after the cache shrank; the rung
 *    floor (cheaper work, smaller peaks) is what actually arrests
 *    growth then.
 *  - **hard**: this process should not continue — `hardPressure()`
 *    latches, the worker's health heartbeat reports it, and the
 *    supervisor answers with a graceful recycle (drain, snapshot,
 *    exit 0, warm respawn) instead of waiting for the OOM-killer's
 *    SIGKILL.
 *
 * Every watermark crossing is an obs event with provenance
 * (`serve.governor` trace events carrying rss/watermark/action), the
 * way Compound's nest decisions are traced.
 */

#ifndef MEMORIA_SERVE_GOVERNOR_HH
#define MEMORIA_SERVE_GOVERNOR_HH

#include <atomic>
#include <cstdint>

#include "harness/ladder.hh"

namespace memoria {
namespace serve {

class ResultCache;

struct GovernorOptions
{
    /** Soft watermark in bytes (0 = disabled). */
    uint64_t softBytes = 0;

    /** Hard watermark in bytes (0 = disabled). */
    uint64_t hardBytes = 0;

    /** Sampling cadence for the governor thread. */
    int64_t sampleIntervalMs = 200;

    /** Rung floor applied under soft pressure. */
    harness::Rung degradeRung = harness::Rung::PermuteOnly;
};

/**
 * Owns no thread itself — the Server runs `sample()` on its governor
 * thread at `sampleIntervalMs`; all accessors are lock-free reads so
 * the request path can consult the floor per-request.
 */
class MemoryGovernor
{
  public:
    MemoryGovernor(GovernorOptions opts, ResultCache *cache);

    /** True when either watermark is configured. */
    bool enabled() const
    {
        return opts_.softBytes > 0 || opts_.hardBytes > 0;
    }

    /** One sampling step: read RSS, cross/release watermarks. */
    void sample();

    /** Test hook: evaluate against an injected RSS reading. */
    void evaluate(uint64_t rssBytes);

    uint64_t rssBytes() const { return rss_.load(); }
    bool softPressure() const { return soft_.load(); }
    /** Latched: once hard pressure is seen the worker should be
     *  recycled; there is no release. */
    bool hardPressure() const { return hard_.load(); }

    /**
     * The ladder start-rung floor the request path must apply:
     * FullCompound (no constraint) normally, `degradeRung` under soft
     * pressure.
     */
    harness::Rung rungFloor() const
    {
        return soft_.load() ? opts_.degradeRung
                            : harness::Rung::FullCompound;
    }

    uint64_t softTrips() const { return softTrips_.load(); }
    uint64_t hardTrips() const { return hardTrips_.load(); }

    const GovernorOptions &options() const { return opts_; }

  private:
    GovernorOptions opts_;
    ResultCache *cache_;

    /** The bounds the soft trip squeezed the cache to. shrinkTo() is
     *  one-shot — the cache regrows to its configured limits — so
     *  while soft pressure stays latched every sample re-applies this
     *  clamp; cleared (0) on release. Touched only by evaluate(), i.e.
     *  the governor thread. */
    size_t squeezeEntries_ = 0;
    size_t squeezeBytes_ = 0;

    std::atomic<uint64_t> rss_{0};
    std::atomic<bool> soft_{false};
    std::atomic<bool> hard_{false};
    std::atomic<uint64_t> softTrips_{0};
    std::atomic<uint64_t> hardTrips_{0};
};

} // namespace serve
} // namespace memoria

#endif // MEMORIA_SERVE_GOVERNOR_HH
