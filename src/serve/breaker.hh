/**
 * @file
 * Per-pipeline-stage circuit breakers for the compile service.
 *
 * The serve worker classifies every request failure (a contained panic
 * or a budget timeout — client-input Diags are *not* service failures)
 * into one of three pipeline stages:
 *
 *   load       parse + validate        (diag text parse./validate.)
 *   optimize   Compound + verification (the default attribution)
 *   simulate   interpreter + cache sim (diag text interp./cachesim.)
 *
 * Each stage has a breaker with the classic three states:
 *
 *   Closed    all requests pass; N *consecutive* failures trip it
 *   Open      the stage is presumed broken; requests avoid it (load:
 *             reject with retry-after; optimize: descend to the
 *             identity rung; simulate: skip simulation) until a
 *             cooldown elapses
 *   HalfOpen  one probe request runs the stage for real; success
 *             closes the breaker, failure re-opens it with a fresh
 *             cooldown
 *
 * State transitions increment obs counters
 * (`serve.breaker.<stage>.trips` / `.resets` / `.rejected`) and the
 * snapshot — exposed through `health`/`stats` responses — records the
 * last failure detail, which for injected faults names the
 * harness::fault site that tripped the stage.
 */

#ifndef MEMORIA_SERVE_BREAKER_HH
#define MEMORIA_SERVE_BREAKER_HH

#include <cstdint>
#include <mutex>
#include <string>

#include "harness/batch.hh"

namespace memoria {
namespace serve {

/** The pipeline stages breakers protect. */
enum class Stage
{
    Load = 0,
    Optimize = 1,
    Simulate = 2,
};

constexpr int kNumStages = 3;

/** Printable name ("load", "optimize", "simulate"). */
const char *stageName(Stage s);

/** Which stage a failed outcome's failure belongs to. Only meaningful
 *  for Timeout / PanicContained outcomes. */
Stage classifyFailure(const harness::ProgramOutcome &out);

/** Trip/cooldown knobs, shared by all stages. */
struct BreakerOptions
{
    /** Consecutive failures that trip a Closed breaker. */
    int failureThreshold = 3;

    /** Time an Open breaker waits before letting one probe through. */
    int64_t cooldownMs = 2000;
};

/** One stage's breaker. Thread-safe; workers share it. */
class CircuitBreaker
{
  public:
    enum class State { Closed, Open, HalfOpen };

    static const char *stateName(State s);

    CircuitBreaker(std::string name, BreakerOptions opts);

    /**
     * May a request use this stage right now? Open → false until the
     * cooldown elapses, then the *first* caller becomes the half-open
     * probe (true) while everyone else keeps getting false until the
     * probe reports back.
     */
    bool allow();

    /** The stage ran to completion for a request. */
    void onSuccess();

    /** The stage failed a request (panic/timeout attributed to it). */
    void onFailure(const std::string &detail);

    /** Point-in-time view, for health/stats responses and tests. */
    struct Snapshot
    {
        State state = State::Closed;
        int consecutiveFailures = 0;
        uint64_t failures = 0;   ///< total failures recorded
        uint64_t successes = 0;  ///< total successes recorded
        uint64_t trips = 0;      ///< Closed/HalfOpen -> Open transitions
        uint64_t resets = 0;     ///< HalfOpen -> Closed transitions
        uint64_t rejected = 0;   ///< allow() == false
        std::string lastFailure; ///< detail of the most recent failure
    };

    Snapshot snapshot() const;

  private:
    mutable std::mutex mutex_;
    std::string name_;
    BreakerOptions opts_;
    State state_ = State::Closed;
    bool probeInFlight_ = false;
    int64_t openedAtMs_ = 0;  ///< steady-clock ms at the last trip
    Snapshot stats_;
};

} // namespace serve
} // namespace memoria

#endif // MEMORIA_SERVE_BREAKER_HH
