/**
 * @file
 * Deadline-aware, per-client fair-share admission control for serve.
 *
 * The paper's premise — predict the cost of work before paying it
 * (Section 3's loop-cost model guiding Section 6's transform choices)
 * — applied to the serving queue: we already export per-kind service
 * latency histograms, so the admission controller can *predict*
 * whether a newly arrived request will make its deadline and shed it
 * on arrival rather than let it rot in the queue and time out after
 * occupying a worker.
 *
 * Three mechanisms, composed:
 *
 *  - **Deadline-aware shed-on-arrival.** A request carrying
 *    `deadline_ms` is admitted only if `now + queueDelay + estService`
 *    fits, where queueDelay is depth × the EWMA inter-finish gap
 *    (i.e. the observed drain rate) and estService comes from the
 *    caller (p90 of the live `serve.service_us.<kind>` histogram) or
 *    the controller's own service-time EWMA. Sheds carry an *honest*
 *    `retry_after_ms` derived from the same drain rate, not a fixed
 *    constant.
 *
 *  - **CoDel-style aging.** Instead of dropping the newest arrival
 *    when the queue is full, the controller watches the sojourn time
 *    of the *oldest* entry; if it stays above `ageTargetMs`
 *    continuously for one interval, the oldest entry is dropped
 *    (reason `queue-aged`). Standing queues drain from the stale end.
 *    Entries whose own deadline has already passed are dropped at pop
 *    time (`deadline-exceeded`) without ever touching a worker.
 *
 *  - **Per-client fair share.** Requests are keyed by an optional
 *    `client_id` (fallback: the transport connection). Each client
 *    gets its own subqueue; dequeue is deficit-round-robin across
 *    clients within a priority class, and classes (`interactive` >
 *    `batch`) are weighted 4:1 by a credit scheme that can delay but
 *    never starve batch. A per-client in-flight + queued cap turns a
 *    pathological client's flood into `client-capped` sheds that
 *    leave its neighbors' latency intact.
 *
 * Threading: the controller is NOT internally synchronized. The
 * in-process `Server` calls it under its queue mutex; the
 * `Supervisor` keeps one controller per shard under its own `mu_`.
 * Admission is two-phase — `decide()` (read-only, produces the shed
 * response fields) then `enqueue()` on admit — so callers can assign
 * sequence numbers and journal *after* the decision.
 */

#ifndef MEMORIA_SERVE_ADMISSION_HH
#define MEMORIA_SERVE_ADMISSION_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace memoria {
namespace serve {

/** Priority class; `interactive` is the default for requests that do
 *  not say otherwise. */
enum class Priority
{
    Interactive = 0,
    Batch = 1,
};

/** "interactive"/"batch" → Priority; unknown strings report false. */
bool parsePriority(const std::string &s, Priority &out);
const char *priorityName(Priority p);

struct AdmissionOptions
{
    /** Bound on the queue (see countInflight for what is counted). */
    size_t queueCapacity = 64;

    /**
     * Per-client bound (0 = unlimited): at admission, the client's
     * queued + in-flight total; at pop, its in-flight total. A client
     * at the cap sheds `client-capped` while others keep flowing.
     */
    size_t perClientCap = 0;

    /** Count popped-but-unfinished work against queueCapacity. The
     *  Server bounds only the queue (workers are bounded by the
     *  thread pool); the Supervisor bounds queued + in-flight per
     *  worker, matching the old backlog check. */
    bool countInflight = false;

    /** Base / floor for retry_after_ms hints when the drain rate is
     *  still unknown. */
    int64_t retryAfterMs = 200;

    /** CoDel target sojourn for the oldest queued entry, in ms
     *  (0 = aging off). */
    int64_t ageTargetMs = 0;

    /** Class weights for the credit scheduler. */
    int interactiveShare = 4;
    int batchShare = 1;

    /** Publish per-class depth gauges on every queue change. The
     *  Supervisor runs one controller per shard and publishes summed
     *  gauges itself, so its controllers set this false. */
    bool publishGauges = true;
};

/** One shed/admit verdict, with everything the response needs. */
struct AdmissionDecision
{
    bool admitted = true;
    /** "queue-full" | "client-capped" | "deadline-infeasible". */
    std::string reason;
    /** Honest, jittered hint derived from the observed drain rate. */
    int64_t retryAfterMs = 0;
    size_t queueDepth = 0;
};

/** An entry removed by pop() that must be answered without running:
 *  expired (deadline passed in queue) or aged out (CoDel). */
struct AdmissionDrop
{
    uint64_t id = 0;
    bool expired = false;  ///< true: deadline-exceeded; false: aged
};

class AdmissionController
{
  public:
    explicit AdmissionController(AdmissionOptions opts);

    /**
     * Phase 1: would this request be admitted right now? Read-only —
     * no state changes. `deadlineAtUs` 0 means no deadline;
     * `estServiceUs` 0 means no estimate (feasibility not checked).
     */
    AdmissionDecision decide(const std::string &client, Priority pri,
                             int64_t deadlineAtUs,
                             int64_t estServiceUs,
                             int64_t nowUs) const;

    /** Phase 2: enqueue an admitted request under caller-chosen id. */
    void enqueue(uint64_t id, const std::string &client, Priority pri,
                 int64_t deadlineAtUs, int64_t nowUs);

    /**
     * Dequeue the next runnable entry (0 = none eligible). Entries
     * whose deadline already passed, and the aged-out head when the
     * CoDel condition holds, are moved to `dropped` — the caller
     * answers them (deadline-exceeded / overloaded) without running
     * them. A popped entry counts against its client's in-flight cap
     * until `finish()`.
     */
    uint64_t pop(int64_t nowUs, std::vector<AdmissionDrop> &dropped);

    /**
     * Terminal accounting for `id`: still-queued entries are removed
     * (drain sweep), popped entries release their client's in-flight
     * slot and feed the inter-finish EWMA. Unknown ids are a no-op —
     * crash-retried work finishes exactly once.
     */
    void finish(uint64_t id, int64_t nowUs);

    size_t depth() const { return queued_; }
    size_t depth(Priority p) const;
    size_t inflight() const { return inflight_; }

    /** Live client records across both classes (tests: drop and
     *  finish paths must not leak idle records under client churn). */
    size_t clientRecords() const;

    /** Observed service-time feed (Server/Supervisor call this with
     *  measured per-request service time). */
    void recordService(int64_t serviceUs);

    /** Current smoothed inter-finish gap (µs; 0 = no signal yet). */
    int64_t interFinishUs() const
    {
        return static_cast<int64_t>(ewmaInterFinishUs_);
    }
    int64_t ewmaServiceUs() const
    {
        return static_cast<int64_t>(ewmaServiceUs_);
    }

  private:
    struct Entry
    {
        uint64_t id = 0;
        std::string client;
        Priority pri = Priority::Interactive;
        int64_t deadlineAtUs = 0;
        int64_t enqueuedUs = 0;
    };

    struct ClientState
    {
        std::deque<Entry> queue;
        size_t inflight = 0;
        int deficit = 0;
    };

    struct ClassState
    {
        std::map<std::string, ClientState> clients;
        /** Round-robin ring of client keys with queued work. */
        std::deque<std::string> ring;
        size_t queued = 0;
    };

    size_t clientLoad(const std::string &client) const;
    int64_t honestRetryAfterMs(int64_t nowUs) const;
    void publishDepthGauges() const;
    /** Drop expired heads / the CoDel-aged oldest entry. */
    void dropStale(int64_t nowUs, std::vector<AdmissionDrop> &dropped);
    uint64_t popClass(ClassState &cls, int64_t nowUs);
    const Entry *oldestEntry() const;

    AdmissionOptions opts_;
    ClassState classes_[2];
    size_t queued_ = 0;
    size_t inflight_ = 0;
    /** Popped-entry bookkeeping: id → client key. */
    std::map<uint64_t, std::pair<std::string, Priority>> popped_;

    /** Credit scheduler state: replenished to the share weights when
     *  both classes are exhausted; interactive spends first. */
    int credit_[2] = {0, 0};

    /** EWMA of the gap between consecutive finishes (drain rate). */
    double ewmaInterFinishUs_ = 0.0;
    int64_t lastFinishUs_ = 0;
    /** EWMA of measured service time (fallback estimate). */
    double ewmaServiceUs_ = 0.0;

    /** CoDel state: when the oldest sojourn first exceeded target
     *  (0 = currently below target). */
    int64_t agingSinceUs_ = 0;
};

} // namespace serve
} // namespace memoria

#endif // MEMORIA_SERVE_ADMISSION_HH
