#include "serve/breaker.hh"

#include <chrono>

#include "support/stats.hh"
#include "support/trace.hh"

namespace memoria {
namespace serve {

namespace {

int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Attribute a failure detail string to a stage by its dotted prefix
 *  conventions (Diag codes and fault-site names share them). */
bool
mentionsAny(const std::string &text,
            std::initializer_list<const char *> needles)
{
    for (const char *n : needles)
        if (text.find(n) != std::string::npos)
            return true;
    return false;
}

} // namespace

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::Load:
        return "load";
      case Stage::Optimize:
        return "optimize";
      case Stage::Simulate:
        return "simulate";
    }
    return "?";
}

Stage
classifyFailure(const harness::ProgramOutcome &out)
{
    std::string text = out.diag;
    if (!out.failures.empty()) {
        text += " ";
        text += out.failures.back().detail;
    }
    if (mentionsAny(text, {"parse.", "validate.", "frontend."}))
        return Stage::Load;
    if (mentionsAny(text, {"interp.", "cachesim.", "simulation"}))
        return Stage::Simulate;
    return Stage::Optimize;
}

const char *
CircuitBreaker::stateName(State s)
{
    switch (s) {
      case State::Closed:
        return "closed";
      case State::Open:
        return "open";
      case State::HalfOpen:
        return "half-open";
    }
    return "?";
}

CircuitBreaker::CircuitBreaker(std::string name, BreakerOptions opts)
    : name_(std::move(name)), opts_(opts)
{
}

bool
CircuitBreaker::allow()
{
    std::lock_guard<std::mutex> lock(mutex_);
    switch (state_) {
      case State::Closed:
        return true;
      case State::Open:
        if (nowMs() - openedAtMs_ >= opts_.cooldownMs) {
            state_ = State::HalfOpen;
            probeInFlight_ = true;
            obs::traceEvent("serve", "breaker_half_open",
                            {{"stage", name_}});
            return true;
        }
        ++stats_.rejected;
        ++obs::counter("serve.breaker." + name_ + ".rejected");
        return false;
      case State::HalfOpen:
        if (!probeInFlight_) {
            probeInFlight_ = true;
            return true;
        }
        ++stats_.rejected;
        ++obs::counter("serve.breaker." + name_ + ".rejected");
        return false;
    }
    return true;
}

void
CircuitBreaker::onSuccess()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.successes;
    stats_.consecutiveFailures = 0;
    if (state_ == State::HalfOpen) {
        state_ = State::Closed;
        probeInFlight_ = false;
        ++stats_.resets;
        ++obs::counter("serve.breaker." + name_ + ".resets");
        obs::traceEvent("serve", "breaker_reset", {{"stage", name_}});
    }
}

void
CircuitBreaker::onFailure(const std::string &detail)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.failures;
    ++stats_.consecutiveFailures;
    stats_.lastFailure = detail;

    bool trip = false;
    if (state_ == State::HalfOpen) {
        // The probe failed; the stage is still broken.
        trip = true;
        probeInFlight_ = false;
    } else if (state_ == State::Closed &&
               stats_.consecutiveFailures >= opts_.failureThreshold) {
        trip = true;
    }
    if (trip) {
        state_ = State::Open;
        openedAtMs_ = nowMs();
        ++stats_.trips;
        ++obs::counter("serve.breaker." + name_ + ".trips");
        obs::traceEvent("serve", "breaker_trip",
                        {{"stage", name_}, {"detail", detail}});
    }
}

CircuitBreaker::Snapshot
CircuitBreaker::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot s = stats_;
    s.state = state_;
    return s;
}

} // namespace serve
} // namespace memoria
