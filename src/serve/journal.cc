#include "serve/journal.hh"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "support/json.hh"
#include "support/stats.hh"
#include "support/trace.hh"

namespace memoria {
namespace serve {

namespace {

Diag
journalError(const std::string &path, const std::string &why)
{
    return Diag::error("serve.journal", "'" + path + "': " + why);
}

/** fsync with EINTR retry: a signal (SIGCHLD from a reaped worker,
 *  the chaos soak's SIGSTOP/SIGCONT) must not silently skip a sync. */
int
fsyncRetry(int fd)
{
    int rc;
    do {
        rc = ::fsync(fd);
    } while (rc < 0 && errno == EINTR);
    return rc;
}

} // namespace

Result<std::unique_ptr<Journal>>
Journal::open(const std::string &path, const JournalOptions &opts)
{
    std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
        // bind failure surfaces below; create_directories errors on
        // e.g. an existing file in the way are caught by ::open.
    }
    int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC
#ifdef O_CLOEXEC
                                      | O_CLOEXEC
#endif
                    ,
                    0644);
    if (fd < 0) {
        return Result<std::unique_ptr<Journal>>::err(
            journalError(path, std::strerror(errno)));
    }
    return std::unique_ptr<Journal>(new Journal(path, fd, opts));
}

Journal::Journal(std::string path, int fd, JournalOptions opts)
    : path_(std::move(path)), opts_(opts), fd_(fd)
{
}

Journal::~Journal()
{
    if (fd_ >= 0) {
        fsyncRetry(fd_);
        ::close(fd_);
    }
}

void
Journal::appendLocked(const std::string &line)
{
    if (disabled_)
        return;
    std::string rec = line + "\n";
    size_t off = 0;
    while (off < rec.size()) {
        ssize_t n = ::write(fd_, rec.data() + off, rec.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == ENOSPC) {
                // A full disk is a structured degradation: the
                // journal goes dark, the service keeps answering.
                // Crash-retry auditing is lost until restart; that is
                // strictly better than taking the worker down.
                disabled_ = true;
                ++obs::counter("serve.journal.disabled");
                obs::traceEvent("serve", "journal_disabled",
                                {{"path", path_}});
                return;
            }
            // Any other journal write error must not take requests
            // down with it; count it and keep serving.
            ++obs::counter("serve.worker.journal_errors");
            return;
        }
        off += static_cast<size_t>(n);
    }
    bytes_ += rec.size();
    if (opts_.syncEveryRecords > 0 &&
        ++unsynced_ >= opts_.syncEveryRecords) {
        fsyncRetry(fd_);
        unsynced_ = 0;
    }
}

void
Journal::maybeRotateLocked()
{
    if (opts_.maxBytes == 0 || bytes_ <= opts_.maxBytes ||
        !open_.empty())
        return;
    // Every admit is answered: the window can restart.
    if (::ftruncate(fd_, 0) == 0 &&
        ::lseek(fd_, 0, SEEK_SET) >= 0) {
        bytes_ = 0;
        unsynced_ = 0;
        ++obs::counter("serve.worker.journal_rotations");
    }
}

void
Journal::appendAdmit(uint64_t seq, const std::string &id,
                     const std::string &kind, int shard, bool replay,
                     const std::string &rawLine)
{
    json::Value r = json::Value::object();
    r.set("op", json::Value::string("admit"));
    r.set("seq", json::Value::number(static_cast<int64_t>(seq)));
    r.set("id", json::Value::string(id));
    r.set("kind", json::Value::string(kind));
    r.set("shard", json::Value::number(int64_t{shard}));
    r.set("replay", json::Value::boolean(replay));
    r.set("line", json::Value::string(rawLine));

    std::lock_guard<std::mutex> lock(mutex_);
    open_[seq] = true;
    appendLocked(r.dump());
    obs::gauge("serve.worker.journal_depth")
        .set(static_cast<double>(open_.size()));
}

void
Journal::appendDone(uint64_t seq, const std::string &outcome)
{
    json::Value r = json::Value::object();
    r.set("op", json::Value::string("done"));
    r.set("seq", json::Value::number(static_cast<int64_t>(seq)));
    r.set("outcome", json::Value::string(outcome));

    std::lock_guard<std::mutex> lock(mutex_);
    open_.erase(seq);
    appendLocked(r.dump());
    obs::gauge("serve.worker.journal_depth")
        .set(static_cast<double>(open_.size()));
    maybeRotateLocked();
}

void
Journal::appendEvent(
    const std::string &op,
    const std::vector<std::pair<std::string, std::string>> &fields)
{
    json::Value r = json::Value::object();
    r.set("op", json::Value::string(op));
    for (const auto &[k, v] : fields)
        r.set(k, json::Value::string(v));
    std::lock_guard<std::mutex> lock(mutex_);
    appendLocked(r.dump());
}

void
Journal::sync()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (unsynced_ > 0) {
        fsyncRetry(fd_);
        unsynced_ = 0;
    }
}

size_t
Journal::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return open_.size();
}

size_t
Journal::bytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
}

bool
Journal::disabled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return disabled_;
}

Result<std::vector<JournalEntry>>
Journal::readIncomplete(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        return Result<std::vector<JournalEntry>>::err(
            journalError(path, "cannot open for reading"));
    }
    std::map<uint64_t, JournalEntry> open;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        Result<json::Value> parsed = json::parse(line);
        if (!parsed.ok()) {
            // A torn final record (killed mid-append) is expected
            // after a hard crash; everything before it still counts.
            continue;
        }
        const json::Value &v = parsed.value();
        std::string op = v.getString("op");
        if (op == "admit") {
            JournalEntry e;
            e.seq = static_cast<uint64_t>(v.getInt("seq"));
            e.id = v.getString("id");
            e.kind = v.getString("kind");
            e.shard = static_cast<int>(v.getInt("shard", -1));
            e.replay = v.getBool("replay", false);
            e.line = v.getString("line");
            open[e.seq] = std::move(e);
        } else if (op == "done") {
            open.erase(static_cast<uint64_t>(v.getInt("seq")));
        }
    }
    std::vector<JournalEntry> out;
    out.reserve(open.size());
    for (auto &[seq, e] : open)
        out.push_back(std::move(e));
    return out;
}

} // namespace serve
} // namespace memoria
