#include "serve/protocol.hh"

#include <algorithm>
#include <random>
#include <thread>

#include "support/json.hh"

namespace memoria {
namespace serve {

namespace {

Result<Request>
badRequest(const std::string &why)
{
    return Result<Request>::err(Diag::error("serve.request", why));
}

Result<Request>
tooLarge(const std::string &why)
{
    return Result<Request>::err(Diag::error("protocol.too-large", why));
}

} // namespace

const char *
requestKindName(RequestKind k)
{
    switch (k) {
      case RequestKind::Analyze:
        return "analyze";
      case RequestKind::Compound:
        return "compound";
      case RequestKind::Simulate:
        return "simulate";
      case RequestKind::Health:
        return "health";
      case RequestKind::Stats:
        return "stats";
      case RequestKind::Metrics:
        return "metrics";
    }
    return "?";
}

bool
isWorkKind(RequestKind k)
{
    return k == RequestKind::Analyze || k == RequestKind::Compound ||
           k == RequestKind::Simulate;
}

Result<Request>
parseRequest(const std::string &line, size_t maxBytes)
{
    // Size is checked before the parser touches the line: an oversized
    // request is rejected for the cost of a length compare, not an
    // allocation proportional to the attack.
    if (maxBytes > 0 && line.size() > maxBytes) {
        return tooLarge("request line exceeds " +
                        std::to_string(maxBytes) + " bytes");
    }

    json::ParseOptions popts;
    popts.maxBytes = maxBytes;
    popts.maxDepth = kMaxRequestDepth;
    Result<json::Value> parsed = json::parse(line, popts);
    if (!parsed.ok()) {
        // The parser distinguishes resource-cap hits ("json.limit")
        // from bad syntax; surface them under the protocol's code so
        // clients can tell "shrink your request" from "fix your JSON".
        if (parsed.diag().code == "json.limit")
            return tooLarge(parsed.diag().str());
        return badRequest(parsed.diag().str());
    }
    const json::Value &v = parsed.value();
    if (!v.isObject())
        return badRequest("request must be a JSON object");

    Request req;
    req.id = v.getString("id");

    std::string kind = v.getString("kind", "compound");
    if (kind == "analyze")
        req.kind = RequestKind::Analyze;
    else if (kind == "compound")
        req.kind = RequestKind::Compound;
    else if (kind == "simulate")
        req.kind = RequestKind::Simulate;
    else if (kind == "health")
        req.kind = RequestKind::Health;
    else if (kind == "stats")
        req.kind = RequestKind::Stats;
    else if (kind == "metrics")
        req.kind = RequestKind::Metrics;
    else
        return badRequest("unknown kind '" + kind + "'");

    req.program = v.getString("program");
    if (isWorkKind(req.kind) && req.program.empty())
        return badRequest("kind '" + kind + "' requires \"program\"");

    req.deadlineMs = v.getInt("deadline_ms", 0);
    if (req.deadlineMs < 0)
        return badRequest("deadline_ms must be >= 0");
    if (const json::Value *sim = v.get("simulate"); sim && sim->isBool())
        req.simulate = sim->asBool();
    req.fault = v.getString("fault");
    req.traceId = v.getString("trace_id");
    req.replay = v.getBool("replay", false);
    req.priority = v.getString("priority");
    if (!req.priority.empty() && req.priority != "interactive" &&
        req.priority != "batch") {
        return badRequest("priority must be \"interactive\" or "
                          "\"batch\"");
    }
    req.clientId = v.getString("client_id");
    return req;
}

int64_t
jitteredRetryAfterMs(int64_t baseMs)
{
    if (baseMs <= 0)
        return 1;
    // Thread-local PRNG: sheds happen on the hot admission path and
    // must not serialize on a shared generator.
    thread_local std::minstd_rand rng(
        std::random_device{}() ^
        static_cast<unsigned>(
            std::hash<std::thread::id>{}(std::this_thread::get_id())));
    const int64_t spread = std::max<int64_t>(1, baseMs / 5);  // 20%
    std::uniform_int_distribution<int64_t> dist(-spread, spread);
    return std::max<int64_t>(1, baseMs + dist(rng));
}

std::string
resultResponse(const std::string &id, const harness::ProgramOutcome &out,
               bool degradedByBreaker, const std::string &incidentDir,
               const ResponseMeta &meta, bool degradedByMemory)
{
    json::Value r = json::Value::object();
    r.set("id", json::Value::string(id));
    r.set("type", json::Value::string("result"));
    if (!meta.traceId.empty())
        r.set("trace_id", json::Value::string(meta.traceId));
    r.set("status",
          json::Value::string(harness::batchStatusName(out.status)));
    r.set("rung", json::Value::string(harness::rungName(out.rung)));
    r.set("attempts", json::Value::number(int64_t{out.attempts}));
    r.set("time_ms", json::Value::number(out.timeMs));
    r.set("loops", json::Value::number(int64_t{out.loops}));
    {
        // total_us falls back to the harness-measured wall time when
        // the caller provides no serve-side total (direct callers).
        double totalUs =
            meta.totalUs > 0.0 ? meta.totalUs : out.timeMs * 1000.0;
        json::Value t = json::Value::object();
        t.set("queue_us", json::Value::number(meta.queueUs));
        t.set("load_us", json::Value::number(out.timings.loadUs));
        t.set("optimize_us", json::Value::number(out.timings.optimizeUs));
        t.set("verify_us", json::Value::number(out.timings.verifyUs));
        t.set("simulate_us", json::Value::number(out.timings.simulateUs));
        t.set("total_us", json::Value::number(totalUs));
        r.set("timings", std::move(t));
    }
    if (!out.diag.empty())
        r.set("diag", json::Value::string(out.diag));
    if (degradedByBreaker)
        r.set("degraded_by_breaker", json::Value::boolean(true));
    if (degradedByMemory)
        r.set("degraded_by_memory", json::Value::boolean(true));
    if (!out.failures.empty()) {
        json::Value fails = json::Value::array();
        for (const harness::AttemptFailure &f : out.failures) {
            json::Value fo = json::Value::object();
            fo.set("rung", json::Value::string(harness::rungName(f.rung)));
            fo.set("kind", json::Value::string(f.kind));
            fo.set("detail", json::Value::string(f.detail));
            fails.push(std::move(fo));
        }
        r.set("failures", std::move(fails));
    }
    if (out.simulated) {
        json::Value sim = json::Value::object();
        sim.set("accesses",
                json::Value::number(static_cast<int64_t>(out.accesses)));
        sim.set("hits",
                json::Value::number(static_cast<int64_t>(out.hits)));
        sim.set("misses",
                json::Value::number(static_cast<int64_t>(out.misses)));
        sim.set("hit_warm_orig", json::Value::number(out.hitWarmOrig));
        sim.set("hit_warm_final", json::Value::number(out.hitWarmFinal));
        r.set("sim", std::move(sim));
    }
    if (!incidentDir.empty())
        r.set("incident_dir", json::Value::string(incidentDir));
    return r.dump();
}

std::string
cachedResultResponse(const std::string &cachedBody,
                     const std::string &id, const ResponseMeta &meta,
                     bool dedupFollower)
{
    Result<json::Value> parsed = json::parse(cachedBody);
    if (!parsed.ok() || !parsed.value().isObject()) {
        // A cache entry that no longer parses is a bug or corruption
        // that slipped past the snapshot checksums; fail the request
        // honestly rather than emit garbage.
        return errorResponse(id, "serve.cache",
                             "cached response body unusable");
    }
    const json::Value &body = parsed.value();

    // Rebuild member-by-member (json::Value::set appends, it does not
    // replace), swapping in the requester-specific fields and keeping
    // the member order of a fresh response.
    json::Value r = json::Value::object();
    for (const auto &[key, val] : body.members()) {
        if (key == "id") {
            r.set("id", json::Value::string(id));
            continue;
        }
        if (key == "trace_id")
            continue;  // re-inserted after "type" below
        if (key == "type") {
            r.set("type", val);
            if (!meta.traceId.empty())
                r.set("trace_id", json::Value::string(meta.traceId));
            continue;
        }
        if (key == "timings" && val.isObject()) {
            json::Value t = json::Value::object();
            for (const auto &[tk, tv] : val.members()) {
                if (tk == "queue_us")
                    t.set("queue_us", json::Value::number(meta.queueUs));
                else if (tk == "total_us" && meta.totalUs > 0.0)
                    t.set("total_us",
                          json::Value::number(meta.totalUs));
                else
                    t.set(tk, tv);
            }
            r.set("timings", std::move(t));
            continue;
        }
        r.set(key, val);
    }
    r.set(dedupFollower ? "dedup_follower" : "cache_hit",
          json::Value::boolean(true));
    return r.dump();
}

std::string
errorResponse(const std::string &id, const std::string &code,
              const std::string &message)
{
    json::Value r = json::Value::object();
    r.set("id", json::Value::string(id));
    r.set("type", json::Value::string("error"));
    r.set("code", json::Value::string(code));
    r.set("message", json::Value::string(message));
    return r.dump();
}

std::string
overloadedResponse(const std::string &id, int64_t retryAfterMs,
                   uint64_t queueDepth, const std::string &reason)
{
    json::Value r = json::Value::object();
    r.set("id", json::Value::string(id));
    r.set("type", json::Value::string("overloaded"));
    r.set("retry_after_ms", json::Value::number(retryAfterMs));
    r.set("queue_depth",
          json::Value::number(static_cast<int64_t>(queueDepth)));
    r.set("reason", json::Value::string(reason));
    return r.dump();
}

std::string
deadlineExceededResponse(const std::string &id, int64_t waitedMs)
{
    json::Value r = json::Value::object();
    r.set("id", json::Value::string(id));
    r.set("type", json::Value::string("error"));
    r.set("code", json::Value::string("serve.deadline-exceeded"));
    r.set("waited_ms", json::Value::number(waitedMs));
    r.set("message",
          json::Value::string("deadline passed after " +
                              std::to_string(waitedMs) +
                              "ms in the admission queue"));
    return r.dump();
}

std::string
cancelledResponse(const std::string &id, const std::string &reason)
{
    json::Value r = json::Value::object();
    r.set("id", json::Value::string(id));
    r.set("type", json::Value::string("cancelled"));
    r.set("reason", json::Value::string(reason));
    return r.dump();
}

} // namespace serve
} // namespace memoria
