/**
 * @file
 * Bounded write-ahead admission journal for the serve supervisor.
 *
 * Every work request the supervisor admits is appended as one JSONL
 * record *before* it is forwarded to a shard worker, and marked done
 * when its terminal response goes out. The journal is what makes the
 * crash-retry contract auditable: after a worker crash the set of
 * admitted-but-unanswered seqs is exactly the set of requests the
 * supervisor must either retry (idempotent kinds, once) or answer
 * with `serve.worker-crashed` — and after a drain the journal must
 * have no incomplete entries at all, which the chaos soak asserts by
 * reading the file back.
 *
 * Record shapes (one JSON object per line):
 *
 *   {"op":"admit","seq":N,"id":"...","kind":"analyze","shard":K,
 *    "replay":false,"line":"<raw request>"}
 *   {"op":"done","seq":N,"outcome":"ok|worker-crashed|cancelled|..."}
 *   {"op":"spawn"|"crash"|"retry", ...}        (worker lifecycle)
 *
 * Durability is batched: records are buffered through the kernel and
 * fsync'd every `syncEveryRecords` appends (and on demand at drain),
 * trading a bounded window of loss for not paying an fsync per
 * request. The file is bounded: whenever every admitted record is
 * done and the file exceeds `maxBytes`, it is truncated and restarted
 * — the journal is a window, not an archive.
 */

#ifndef MEMORIA_SERVE_JOURNAL_HH
#define MEMORIA_SERVE_JOURNAL_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "check/diag.hh"

namespace memoria {
namespace serve {

/** Journal bounds and durability knobs. */
struct JournalOptions
{
    /** Rotate (truncate) once all entries are done and the file
     *  exceeds this. */
    size_t maxBytes = 8u << 20;

    /** fsync after this many appended records (1 = every record). */
    int syncEveryRecords = 16;
};

/** One admitted-but-unanswered record, as read back from disk. */
struct JournalEntry
{
    uint64_t seq = 0;
    std::string id;
    std::string kind;
    int shard = -1;
    bool replay = false;
    std::string line;  ///< the raw request line, replayable as-is
};

/** Append-only JSONL journal. All methods are thread-safe. */
class Journal
{
  public:
    /** Open (create, truncate) the journal file; parent directories
     *  are created. Returns a Diag ("serve.journal") on failure. */
    static Result<std::unique_ptr<Journal>>
    open(const std::string &path, const JournalOptions &opts = {});

    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /** Record an admission (write-ahead: call before forwarding). */
    void appendAdmit(uint64_t seq, const std::string &id,
                     const std::string &kind, int shard, bool replay,
                     const std::string &rawLine);

    /** Record the terminal response for `seq`. */
    void appendDone(uint64_t seq, const std::string &outcome);

    /** Record a worker lifecycle event (spawn/crash/retry/...). */
    void appendEvent(const std::string &op,
                     const std::vector<std::pair<std::string,
                                                 std::string>> &fields);

    /** fsync whatever is pending now (drain calls this). */
    void sync();

    /** Admitted records not yet marked done. */
    size_t depth() const;

    /** Bytes appended to the current file generation. */
    size_t bytes() const;

    /** True once ENOSPC turned durability off (serving continues). */
    bool disabled() const;

    const std::string &path() const { return path_; }

    /**
     * Read a journal file back and return the admitted entries that
     * never got a "done" — empty after a clean drain. Static so a
     * post-mortem (tests, the chaos soak) can inspect a dead server's
     * journal without a Journal instance.
     */
    static Result<std::vector<JournalEntry>>
    readIncomplete(const std::string &path);

  private:
    Journal(std::string path, int fd, JournalOptions opts);

    void appendLocked(const std::string &line);
    void maybeRotateLocked();

    std::string path_;
    JournalOptions opts_;

    mutable std::mutex mutex_;
    int fd_ = -1;
    size_t bytes_ = 0;
    int unsynced_ = 0;
    bool disabled_ = false;  ///< ENOSPC: journal off, service on

    std::map<uint64_t, bool> open_;  ///< admitted seqs awaiting done
};

} // namespace serve
} // namespace memoria

#endif // MEMORIA_SERVE_JOURNAL_HH
