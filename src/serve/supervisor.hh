/**
 * @file
 * Process-level supervision for `memoria serve --workers N`.
 *
 * The in-process `Server` contains panics, but a genuine SIGSEGV,
 * allocator corruption, or stack overflow in any worker thread takes
 * the whole service down. The `Supervisor` moves the isolation
 * boundary to the process: it owns the listeners and forks N
 * shard-worker processes (each running `memoria serve --worker-fd F`,
 * a single-process `Server` speaking the same JSON-lines protocol
 * over a socketpair). A consistent (rendezvous) hash of the program
 * text picks the shard, so repeated submissions of one program land
 * on one worker and future per-worker caches stay hot.
 *
 * Per worker, the supervisor runs a spawn/monitor/respawn state
 * machine:
 *
 *   Up ──(exit/signal/EOF/hang)──> Down ──(backoff timer)──> Up
 *
 *  - liveness: a `health` heartbeat every `heartbeatMs` (answered on
 *    the worker's reader thread, so a saturated worker pool cannot
 *    miss it) plus a per-request deadline; a worker that misses
 *    `heartbeatMisses` beats or sits on a request past its deadline +
 *    grace is SIGKILLed as hung;
 *  - reaping: SIGCHLD sets a flag (support/signals.hh) and the
 *    monitor thread reaps with waitpid(WNOHANG), classifying the
 *    death (`serve.worker.crash.<kind>`: sigabrt, sigsegv, sigkill,
 *    exit_N, hang, eof);
 *  - respawn: capped exponential backoff (`backoffBaseMs` doubling to
 *    `backoffCapMs`, reset after `stableMs` up), counted in
 *    `serve.worker.respawns`;
 *  - crash fallout: in-flight requests on the dead worker keep the
 *    exactly-one-response invariant — idempotent kinds (analyze,
 *    simulate) and `compound` with `"replay":true` are re-forwarded
 *    once to the respawned worker (fault spec stripped, result marked
 *    `"retried":true`); everything else is answered with a structured
 *    `serve.worker-crashed` error;
 *  - journal: every admission is written ahead to a bounded JSONL
 *    journal (serve/journal.hh) and marked done with its outcome, so
 *    "no request was lost" is checkable from disk after the fact;
 *  - recycling: a worker can be retired *gracefully* — stop forwarding
 *    it work, wait for its in-flight requests to finish, close its
 *    pipe's write side (the worker drains, snapshots its cache, exits
 *    0), respawn immediately with no backoff. Triggered by
 *    `maxRequestsPerWorker`, by RSS over the hard watermark (sampled
 *    from /proc/<pid>/statm and from the worker's own governor block
 *    in heartbeat answers), or by SIGHUP (rolling restart of every
 *    shard, one at a time, next one only after the previous is back
 *    up). A recycle loses zero requests and is counted in
 *    `serve.worker.recycled`, never in `serve.worker.crash.*`.
 *
 * Admission is per shard: each worker slot owns an
 * `AdmissionController` (serve/admission.hh) bounded by
 * `maxQueuedPerWorker` (queued + in-flight), giving the supervisor
 * deadline-aware shed-on-arrival, per-client fair-share dequeue, and
 * CoDel aging in front of every worker pipe.
 *
 * The supervisor answers `health`/`stats`/`metrics` inline from its
 * own registry (adding a `workers` array that `memoria top` renders
 * as per-worker rows); work requests are forwarded with a rewritten
 * id (`s<seq>`) and the original id restored on the way back. Drain
 * means: stop admitting, let workers finish, cancel what the drain
 * deadline strands, close the worker pipes (workers see EOF and exit
 * 0), reap everything, check the journal is empty, write the final
 * metrics snapshot, exit 0.
 */

#ifndef MEMORIA_SERVE_SUPERVISOR_HH
#define MEMORIA_SERVE_SUPERVISOR_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/journal.hh"
#include "serve/server.hh"

namespace memoria {
namespace serve {

/** Supervisor configuration. */
struct SupervisorOptions
{
    /** Shard-worker process count (>= 1). */
    int workers = 2;

    /**
     * argv prefix for a worker process, e.g. {"/path/memoria",
     * "serve", "--jobs", "2"}; the supervisor appends
     * `--worker-fd N --shard K`. Must not be empty.
     */
    std::vector<std::string> workerCommand;

    /** Shared service limits (deadlines, queue bound, request size;
     *  also the source of the metrics snapshot path). */
    ServeOptions serve;

    /** Heartbeat cadence and how many misses mean "hung". */
    int64_t heartbeatMs = 500;
    int heartbeatMisses = 6;

    /** Extra time past a request's deadline before the worker running
     *  it is declared hung and killed. */
    int64_t hangGraceMs = 5000;

    /** Respawn backoff: base, doubling cap, and how long a worker
     *  must stay up before the backoff resets. */
    int64_t backoffBaseMs = 100;
    int64_t backoffCapMs = 5000;
    int64_t stableMs = 10000;

    /** Per-worker bound on queued + in-flight requests; beyond it the
     *  supervisor sheds with `overloaded`. */
    size_t maxQueuedPerWorker = 32;

    /** Requests forwarded to one worker at a time (0 = the worker's
     *  thread count, serve.jobs). */
    size_t maxInflightPerWorker = 0;

    /** Gracefully recycle a worker after it has answered this many
     *  work requests (0 = never). Bounds slow leaks by construction. */
    uint64_t maxRequestsPerWorker = 0;

    /** How long a recycling worker gets to drain and exit before the
     *  supervisor gives up and SIGKILLs it (counted as a crash). */
    int64_t recycleGraceMs = 10000;

    /** Write-ahead journal path ("" = no journal). */
    std::string journalPath;
    JournalOptions journal;
};

/** Introspection row for one shard worker (health/metrics/top). */
struct WorkerRow
{
    int shard = 0;
    int64_t pid = -1;
    std::string state;  ///< "up" | "recycling" | "down"
    uint64_t inflight = 0;
    uint64_t queued = 0;
    uint64_t respawns = 0;
    uint64_t crashes = 0;
    uint64_t recycles = 0;
    uint64_t served = 0;          ///< answered since last (re)spawn
    uint64_t rssBytes = 0;        ///< last statm sample (0 = unknown)
    int64_t heartbeatAgeMs = -1;  ///< -1 while down
};

/** The front process. Construct, `start()`, feed lines, `drain()`. */
class Supervisor : public LineService
{
  public:
    using Respond = LineService::Respond;

    explicit Supervisor(SupervisorOptions opts);
    ~Supervisor() override;

    Supervisor(const Supervisor &) = delete;
    Supervisor &operator=(const Supervisor &) = delete;

    /** Spawn the shard workers and the monitor thread. */
    void start() override;

    void handleLine(const std::string &line, const Respond &respond,
                    const std::string &clientKey = "") override;

    /** Stop admitting, wait for in-flight work (bounded by
     *  drainDeadlineMs), shut the workers down, reap, flush. */
    void drain() override;

    bool draining() const override { return draining_.load(); }

    // --- Introspection (tests, health/metrics responses) ---

    /** The shard the consistent hash assigns this program text. */
    int shardOf(const std::string &program) const;

    Server::RequestCounters requestCounters() const;
    std::vector<WorkerRow> workerRows() const;

    std::string healthLine(const std::string &id) const;
    std::string statsLine(const std::string &id) const;
    std::string metricsLine(const std::string &id) const;

    /** The journal, when one is configured (tests inspect depth). */
    Journal *journal() { return journal_.get(); }

  private:
    /** One admitted work request awaiting its terminal response. */
    struct Pending
    {
        Request req;
        Respond respond;
        int shard = 0;
        bool replayOk = false;   ///< eligible for one crash-retry
        bool retried = false;    ///< crash-retry already spent
        bool inflight = false;   ///< forwarded (vs still queued)
        double enqueuedUs = 0.0;
        double forwardedAtUs = 0.0;  ///< service-time sample start
        int64_t deadlineAtMs = 0;  ///< hang cutoff once forwarded
        /** Fair-share identity + class, resolved at admission (the
         *  crash-retry path re-enqueues under the same key). */
        std::string client;
        Priority priority = Priority::Interactive;
        int64_t admitDeadlineUs = 0;  ///< steady-clock µs, 0 = none
    };

    /** Last-heartbeat view of one worker's result-cache counters. */
    struct WorkerCacheStats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t inflightJoins = 0;
        uint64_t evictions = 0;
        uint64_t entries = 0;
        uint64_t bytes = 0;
        uint64_t snapshotRejected = 0;
        uint64_t snapshotLoaded = 0;
    };

    /** One shard worker slot. */
    struct Worker
    {
        int shard = 0;
        pid_t pid = -1;
        int fd = -1;               ///< supervisor side, non-blocking
        bool up = false;
        uint64_t generation = 0;   ///< bumps per (re)spawn
        std::thread reader;
        std::string outbuf;        ///< unwritten forwarded bytes
        /** Per-shard queue order and fair-share policy; payloads stay
         *  in pending_. Survives the worker process across respawns. */
        std::unique_ptr<AdmissionController> admission;
        std::set<uint64_t> inflight;
        uint64_t respawns = 0;
        uint64_t crashes = 0;
        int64_t spawnedAtMs = 0;
        int64_t lastBeatMs = 0;    ///< any line from the worker
        int64_t lastBeatSentMs = 0;
        int64_t backoffMs = 0;
        int64_t respawnAtMs = 0;
        std::string killReason;    ///< "hang" when we SIGKILLed it
        WorkerCacheStats cache;    ///< from the last heartbeat answer

        // --- Graceful-recycle state ---
        bool recycling = false;    ///< no new work; draining to exit
        bool recycleEofSent = false;  ///< SHUT_WR done; awaiting exit
        std::string recycleReason;    ///< max-requests | rss | sighup
        int64_t recycleStartedMs = 0;
        uint64_t served = 0;       ///< answered since last (re)spawn
        uint64_t recycles = 0;     ///< graceful recycles completed
        uint64_t rssBytes = 0;     ///< last statm sample (0 = unknown)
    };

    struct Outgoing
    {
        Respond respond;
        std::string line;
    };

    void monitorLoop();
    void metricsLoop();
    void writeMetricsSnapshotNow();

    bool spawnWorkerLocked(Worker &w, std::vector<Outgoing> &out);
    void pumpWorkerLocked(Worker &w, std::vector<Outgoing> &out);
    void flushOutbufLocked(Worker &w);

    /** Answer entries the shard controller dropped at pop time:
     *  deadline-exceeded (expired in queue) or overloaded/queue-aged. */
    void answerDropsLocked(Worker &w,
                           const std::vector<AdmissionDrop> &drops,
                           std::vector<Outgoing> &out);

    /** Start a graceful recycle: stop forwarding, drain in-flight,
     *  then EOF the pipe so the worker exits 0 (zero requests lost). */
    void beginRecycleLocked(Worker &w, const std::string &reason);
    /** Send the pipe EOF once a recycling worker has gone quiet. */
    void maybeFinishRecycleLocked(Worker &w);
    /** A recycling worker exited 0: count it, journal it, respawn
     *  immediately with no backoff. */
    void workerRecycledLocked(Worker &w, std::vector<Outgoing> &out);
    /** Forwarded line for one attempt (id rewritten, fault stripped
     *  on retry). */
    std::string forwardLine(const Pending &p, uint64_t seq) const;

    void readerLoop(int shard, int fd, uint64_t generation);
    void onWorkerLine(int shard, uint64_t generation,
                      const std::string &line);

    /** Crash/hang/EOF fallout: retry or answer every in-flight
     *  request of the dead worker, schedule the respawn. */
    void handleWorkerDownLocked(Worker &w, const std::string &why,
                                std::vector<Outgoing> &out);
    void reapLocked(std::vector<Outgoing> &out);

    /** Resolve one pending: respond `line`, count it, journal the
     *  outcome. The caller removes the seq from worker containers. */
    void finishLocked(uint64_t seq, const std::string &line,
                      const std::string &outcome,
                      std::atomic<uint64_t> &counter,
                      std::vector<Outgoing> &out);
    static void deliver(std::vector<Outgoing> &out);

    /** Park a dead worker's reader thread + fd; `joinRetired` joins
     *  the threads and only then closes the fds (no reuse races). */
    void retireReaderLocked(Worker &w);
    void joinRetired();

    int64_t effectiveDeadlineMs(const Request &req) const;
    /** The `workers` array, dumped ("[{...},...]"). */
    std::string workersDump() const;
    /** Mirror summed worker cache counters into serve.cache.* gauges. */
    void publishCacheGaugesLocked();

    SupervisorOptions opts_;
    std::unique_ptr<Journal> journal_;

    /** Admitted-but-unanswered entries replayed from the previous
     *  incarnation's journal (constructor; immutable afterwards). */
    std::vector<JournalEntry> recovery_;

    mutable std::mutex mu_;
    std::condition_variable cv_;       ///< pending-set changes + ticks
    std::vector<std::unique_ptr<Worker>> workers_;
    std::map<uint64_t, Pending> pending_;
    std::map<pid_t, int> pidToShard_;
    std::vector<std::pair<std::thread, int>> retired_;
    uint64_t seq_ = 0;
    std::atomic<bool> stop_{false};
    int64_t lastJournalSyncMs_ = 0;

    /** SIGHUP rolling restart: shards still awaiting their turn. The
     *  next one starts only when every worker is up and none is
     *  recycling, so capacity dips by at most one shard. */
    std::deque<int> rollingQueue_;
    int64_t lastRssSampleMs_ = 0;

    std::thread monitor_;
    /** Serializes drain(); the loser of a drain race blocks until the
     *  winner has fully shut the workers down. */
    std::mutex drainMutex_;
    std::atomic<bool> draining_{false};
    std::atomic<bool> drained_{false};
    std::atomic<bool> started_{false};
    int64_t startedAtMs_ = 0;

    std::thread metricsThread_;
    std::mutex metricsMutex_;
    std::condition_variable metricsCv_;
    bool metricsStop_ = false;
    std::unique_ptr<std::ofstream> metricsOut_;
    std::mutex metricsFileMutex_;

    std::atomic<uint64_t> received_{0}, accepted_{0}, completed_{0},
        shed_{0}, cancelled_{0}, errors_{0};
};

} // namespace serve
} // namespace memoria

#endif // MEMORIA_SERVE_SUPERVISOR_HH
