#include "serve/server.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>

#include "harness/fault.hh"
#include "serve/snapshot.hh"
#include "support/export.hh"
#include "support/json.hh"
#include "support/stats.hh"
#include "support/trace.hh"
#include "support/version.hh"

namespace memoria {
namespace serve {

namespace {

int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

double
nowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Wall clock for snapshot timestamps (steady elsewhere). */
int64_t
wallMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

/** The registry dump as one JSON object with no trailing newline,
 *  spliceable into a response line. */
std::string
registryDumpJson()
{
    std::ostringstream os;
    obs::statsRegistry().dumpJson(os);
    std::string s = os.str();
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r'))
        s.pop_back();
    return s;
}

json::Value
breakerJson(const CircuitBreaker::Snapshot &s)
{
    json::Value b = json::Value::object();
    b.set("state",
          json::Value::string(CircuitBreaker::stateName(s.state)));
    b.set("consecutive_failures",
          json::Value::number(int64_t{s.consecutiveFailures}));
    b.set("failures",
          json::Value::number(static_cast<int64_t>(s.failures)));
    b.set("successes",
          json::Value::number(static_cast<int64_t>(s.successes)));
    b.set("trips", json::Value::number(static_cast<int64_t>(s.trips)));
    b.set("resets", json::Value::number(static_cast<int64_t>(s.resets)));
    b.set("rejected",
          json::Value::number(static_cast<int64_t>(s.rejected)));
    if (!s.lastFailure.empty())
        b.set("last_failure", json::Value::string(s.lastFailure));
    return b;
}

/**
 * Fires between fault arming and the isolated run — a hard `abort`
 * armed here kills the whole worker process, which is exactly the
 * point: it proves the supervisor's crash-respawn path end to end
 * (tests and the chaos soak arm `serve.worker.crash:abort`). In
 * single-process mode nothing ever arms it.
 */
harness::FaultSite gWorkerCrashSite("serve.worker.crash");

/**
 * Fires on the single-flight leader after election, before it
 * computes. An armed `throw` makes the leader die with its followers
 * still waiting — proving they re-elect instead of hanging (the
 * whole point of the abandon/re-elect protocol). Unarmed cost: one
 * relaxed atomic load per led flight.
 */
harness::FaultSite gLeaderCrashSite("serve.cache.leader-crash");

/** Abandons a led flight on any exit path that did not publish —
 *  without it, a throwing leader would strand its followers until
 *  their own deadlines. */
struct FlightGuard
{
    ResultCache *cache = nullptr;
    const ResultCache::Ticket *ticket = nullptr;
    bool armed = false;

    ~FlightGuard()
    {
        if (armed && cache)
            cache->abandon(*ticket);
    }
};

} // namespace

Server::Server(ServeOptions opts) : opts_(std::move(opts))
{
    for (int i = 0; i < kNumStages; ++i)
        breakers_[i] = std::make_unique<CircuitBreaker>(
            stageName(Stage(i)), opts_.breaker);
    startedAtMs_ = nowMs();

    // The digest covers the *effective* simulation geometry: an empty
    // cacheConfigs means the batch driver's default (i860), and the
    // key must not change depending on how the default was spelled.
    std::vector<CacheConfig> effective = opts_.cacheConfigs;
    if (effective.empty())
        effective.push_back(CacheConfig::i860());
    configDigest_ = serveConfigDigest(opts_.params, effective);
    if (opts_.resultCache.maxEntries > 0)
        cache_ = std::make_unique<ResultCache>(opts_.resultCache);

    AdmissionOptions aopts;
    aopts.queueCapacity = opts_.queueCapacity;
    aopts.perClientCap = opts_.perClientCap;
    aopts.countInflight = false;  // workers bound in-flight already
    aopts.retryAfterMs = opts_.retryAfterMs;
    aopts.ageTargetMs = opts_.ageTargetMs;
    admission_ = std::make_unique<AdmissionController>(aopts);

    if (opts_.rssSoftBytes > 0 || opts_.rssHardBytes > 0) {
        GovernorOptions gopts;
        gopts.softBytes = opts_.rssSoftBytes;
        gopts.hardBytes = opts_.rssHardBytes;
        if (opts_.rssSampleMs > 0)
            gopts.sampleIntervalMs = opts_.rssSampleMs;
        governor_ =
            std::make_unique<MemoryGovernor>(gopts, cache_.get());
    }
}

Server::~Server()
{
    drain();
}

void
Server::start()
{
    harness::setFaultAccounting(true);
    int jobs = std::max(1, opts_.jobs);
    workers_.reserve(jobs);
    for (int i = 0; i < jobs; ++i)
        workers_.emplace_back([this] { workerLoop(); });

    if (!opts_.metricsPath.empty()) {
        metricsOut_ = std::make_unique<std::ofstream>(
            opts_.metricsPath, std::ios::app);
        if (!*metricsOut_) {
            obs::traceEvent("serve", "metrics_file_error",
                            {{"path", opts_.metricsPath}});
            metricsOut_.reset();
        } else if (opts_.metricsIntervalMs > 0) {
            metricsThread_ = std::thread([this] { metricsLoop(); });
        }
    }

    if (cache_ && !opts_.cacheSnapshotPath.empty()) {
        loadCacheSnapshot();
        if (opts_.cacheSnapshotIntervalMs > 0)
            snapshotThread_ = std::thread([this] { snapshotLoop(); });
    }

    if (governor_ && governor_->enabled())
        governorThread_ = std::thread([this] { governorLoop(); });

    obs::traceEvent("serve", "start",
                    {{"jobs", int64_t{jobs}},
                     {"queue_capacity",
                      static_cast<int64_t>(opts_.queueCapacity)}});
}

void
Server::handleLine(const std::string &line, const Respond &respond,
                   const std::string &clientKey)
{
    // Blank lines are keep-alive noise, not requests.
    if (line.find_first_not_of(" \t\r\n") == std::string::npos)
        return;

    ++received_;
    Result<Request> parsed = parseRequest(line, opts_.maxRequestBytes);
    if (!parsed.ok()) {
        ++errors_;
        ++obs::counter("serve.request_errors");
        // The Diag's own code distinguishes `protocol.too-large`
        // (resource caps: oversized line, nesting bomb) from
        // `serve.request` (plain bad input).
        respond(errorResponse("", parsed.diag().code,
                              parsed.diag().str()));
        return;
    }
    const Request &req = parsed.value();

    // Every successfully parsed request, any kind — the soak script
    // reconciles this against its client-side count.
    ++obs::counter("serve.requests_total");

    // Introspection bypasses the queue: it must work under saturation.
    if (req.kind == RequestKind::Health) {
        obs::ScopedTimer t(obs::histogram("serve.latency_us.health"));
        respond(healthLine(req.id));
        return;
    }
    if (req.kind == RequestKind::Stats) {
        obs::ScopedTimer t(obs::histogram("serve.latency_us.stats"));
        respond(statsLine(req.id));
        return;
    }
    if (req.kind == RequestKind::Metrics) {
        obs::ScopedTimer t(obs::histogram("serve.latency_us.metrics"));
        respond(metricsLine(req.id));
        return;
    }

    // Fair-share key: the request's own client_id wins, the transport
    // connection is the fallback, anonymous traffic shares one bucket.
    const std::string client = !req.clientId.empty()
                                   ? req.clientId
                                   : (!clientKey.empty() ? clientKey
                                                         : "anon");
    Priority pri = Priority::Interactive;
    parsePriority(req.priority, pri);  // parseRequest validated it

    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (draining_.load()) {
            ++cancelled_;
            respond(cancelledResponse(req.id, "server draining"));
            return;
        }
        const int64_t now = static_cast<int64_t>(nowUs());
        int64_t deadlineAtUs = 0;
        if (req.deadlineMs > 0)
            deadlineAtUs =
                now +
                std::min(req.deadlineMs, opts_.maxDeadlineMs) * 1000;
        AdmissionDecision d = admission_->decide(
            client, pri, deadlineAtUs, estimatedServiceUs(req.kind),
            now);
        if (!d.admitted) {
            ++shed_;
            ++obs::counter("serve.shed");
            // Retry hint is drain-rate-derived and jittered so a shed
            // burst doesn't come back as a synchronized retry storm.
            respond(overloadedResponse(req.id, d.retryAfterMs,
                                       d.queueDepth, d.reason));
            return;
        }
        const uint64_t ticket = ++admitSeq_;
        admission_->enqueue(ticket, client, pri, deadlineAtUs, now);
        ++queueGen_;
        Job job{req, respond, nowUs(), ticket};
        jobs_.emplace(ticket, std::move(job));
        ++accepted_;
        ++obs::counter("serve.accepted");
    }
    queueCv_.notify_one();
}

void
Server::workerLoop()
{
    uint64_t seenGen = 0;
    for (;;) {
        Job job;
        bool hasJob = false;
        // Drops are answered outside the lock; each carries its Job,
        // whether its own deadline expired (vs CoDel-aged out), and
        // the queue depth captured under the lock for the response.
        struct DropOut
        {
            Job job;
            bool expired;
            size_t depth;
        };
        std::vector<DropOut> drops;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            // Wake on "queue generation changed since my last pop
            // attempt", not "depth > 0": when every queued client is
            // at its in-flight cap pop() yields nothing, and a depth
            // predicate would be instantly true again — idle workers
            // would spin hot on queueMutex_. Every enqueue and finish
            // bumps the generation (a finish can un-cap a client), and
            // the timeout keeps periodic deadline/aging sweeps alive.
            // stop_ alone wakes only once the queue is empty; a
            // draining queue still advances via generation bumps.
            queueCv_.wait_for(
                lock, std::chrono::milliseconds(50), [&] {
                    return (stop_ && admission_->depth() == 0) ||
                           queueGen_ != seenGen;
                });
            seenGen = queueGen_;
            if (admission_->depth() == 0) {
                if (stop_)
                    return;
                continue;
            }
            const int64_t now = static_cast<int64_t>(nowUs());
            std::vector<AdmissionDrop> dropped;
            uint64_t ticket = admission_->pop(now, dropped);
            for (const AdmissionDrop &d : dropped) {
                auto it = jobs_.find(d.id);
                if (it == jobs_.end())
                    continue;
                drops.push_back(DropOut{std::move(it->second),
                                        d.expired,
                                        admission_->depth()});
                jobs_.erase(it);
            }
            if (ticket != 0) {
                auto it = jobs_.find(ticket);
                if (it != jobs_.end()) {
                    job = std::move(it->second);
                    jobs_.erase(it);
                    hasJob = true;
                } else {
                    // Should be impossible; release the ticket so the
                    // client's in-flight accounting cannot leak.
                    admission_->finish(ticket, now);
                    ++queueGen_;
                }
            }

            // Past the drain deadline, stranded queue entries are
            // answered rather than run — exactly one terminal response
            // either way.
            if (hasJob && draining_.load() &&
                nowMs() > drainDeadlineAt_.load()) {
                admission_->finish(job.admitId, now);
                ++queueGen_;
                lock.unlock();
                queueCv_.notify_all();
                ++cancelled_;
                job.respond(cancelledResponse(
                    job.req.id, "drain deadline exceeded"));
                for (DropOut &d : drops)
                    answerDrop(d.job, d.expired, d.depth);
                continue;
            }
        }
        for (DropOut &d : drops)
            answerDrop(d.job, d.expired, d.depth);
        if (!hasJob)
            continue;
        const double serviceStartUs = nowUs();
        try {
            process(job);
        } catch (...) {
            // process() contains everything below it; this is the
            // belt-and-braces boundary for bugs in serve itself.
            ++errors_;
            try {
                job.respond(errorResponse(
                    job.req.id, "serve.internal",
                    "request processing failed unexpectedly"));
            } catch (...) {
                // A throwing transport callback has lost its client;
                // nothing useful left to do for this request.
            }
        }
        const double serviceUs = nowUs() - serviceStartUs;
        // Pure service time (queue excluded) is what deadline
        // feasibility predicts with; latency_us.* stays end-to-end.
        obs::histogram(std::string("serve.service_us.") +
                       requestKindName(job.req.kind))
            .sample(serviceUs);
        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            admission_->finish(job.admitId,
                               static_cast<int64_t>(nowUs()));
            admission_->recordService(
                static_cast<int64_t>(serviceUs));
            ++queueGen_;
        }
        // A finish can un-cap a client whose work other workers
        // skipped; wake them all.
        queueCv_.notify_all();
    }
}

/** Terminal response for a pop()-dropped entry (never ran). */
void
Server::answerDrop(const Job &job, bool expired, size_t depth)
{
    if (expired) {
        ++errors_;
        const int64_t waitedMs = static_cast<int64_t>(
            (nowUs() - job.enqueuedUs) / 1000.0);
        job.respond(deadlineExceededResponse(job.req.id, waitedMs));
    } else {
        ++shed_;
        ++obs::counter("serve.shed");
        job.respond(overloadedResponse(
            job.req.id, jitteredRetryAfterMs(opts_.retryAfterMs),
            depth, "queue-aged"));
    }
}

void
Server::process(const Job &job)
{
    const Request &req = job.req;
    const double startUs = nowUs();
    const double queueUs =
        job.enqueuedUs > 0.0 ? startUs - job.enqueuedUs : 0.0;

    // Request-scoped trace context for everything this worker does on
    // behalf of the request — runIsolated and all nested spans inherit
    // it, and incident capture keys the flight-recorder tail off it.
    const std::string traceId =
        req.traceId.empty() ? obs::makeTraceId() : req.traceId;
    obs::TraceContextScope traceCtx(traceId);

    obs::TraceScope span("serve", "request");
    span.arg("id", req.id);
    span.arg("kind", requestKindName(req.kind));
    obs::ScopedTimer timer(obs::histogram("serve.request_time_us"));

    harness::BatchOptions bopts;
    bopts.budget = opts_.budget;
    if (req.deadlineMs > 0)
        bopts.budget.deadlineMs =
            std::min(req.deadlineMs, opts_.maxDeadlineMs);
    bopts.params = opts_.params;
    if (!opts_.cacheConfigs.empty())
        bopts.cacheConfigs = opts_.cacheConfigs;
    bopts.simulate =
        req.simulate.value_or(req.kind == RequestKind::Simulate);
    if (req.kind == RequestKind::Analyze) {
        bopts.simulate = false;
        bopts.startRung = harness::Rung::Identity;
    }
    bopts.captureSource = opts_.writeIncidents;

    // --- Breaker gating. Load is checked first and alone, so an
    // early reject cannot strand a half-open probe on another stage.
    if (!breakers_[int(Stage::Load)]->allow()) {
        ++errors_;
        job.respond(errorResponse(
            req.id, "serve.unavailable",
            "load stage circuit breaker open; retry in " +
                std::to_string(opts_.breaker.cooldownMs) + "ms"));
        return;
    }
    bool degraded = false;
    bool optimizeEngaged = req.kind != RequestKind::Analyze;
    if (optimizeEngaged && !breakers_[int(Stage::Optimize)]->allow()) {
        bopts.startRung = harness::Rung::Identity;
        optimizeEngaged = false;
        degraded = true;
    }
    bool simulateEngaged = bopts.simulate;
    if (simulateEngaged && !breakers_[int(Stage::Simulate)]->allow()) {
        bopts.simulate = false;
        simulateEngaged = false;
        degraded = true;
    }

    // --- Memory-governor rung floor: under soft RSS pressure the
    // ladder starts at a cheaper rung (smaller IR peaks), and the
    // response says so. Analyze already runs at Identity.
    bool degradedByMemory = false;
    if (governor_ && req.kind != RequestKind::Analyze) {
        const harness::Rung floor = governor_->rungFloor();
        if (floor != harness::Rung::FullCompound) {
            bopts.startRung =
                harness::weakerRung(bopts.startRung, floor);
            degradedByMemory = true;
            ++obs::counter("serve.governor.degraded_requests");
        }
    }

    // Unique per-request name: the fault-plan program filter and the
    // incident bundle key off it, and ids may repeat across clients.
    uint64_t seq = ++seq_;
    std::string name =
        "req-" + (req.id.empty() ? std::to_string(seq) : req.id) + "#" +
        std::to_string(seq);

    std::optional<harness::FaultSpec> fault;
    if (!req.fault.empty()) {
        if (!opts_.allowFaultRequests) {
            ++errors_;
            job.respond(errorResponse(
                req.id, "serve.fault_disabled",
                "per-request fault injection requires --allow-faults"));
            return;
        }
        Result<harness::FaultSpec> spec =
            harness::parseFaultSpec(req.fault);
        if (!spec.ok()) {
            ++errors_;
            job.respond(errorResponse(req.id, "serve.fault_spec",
                                      spec.diag().str()));
            return;
        }
        fault = spec.value();
        fault->program = name;
    }

    // --- Result cache + single-flight. Fault-armed and breaker-
    // degraded requests bypass it: the former are nondeterministic by
    // design, the latter ran with less work than their key describes.
    ResultCache::Ticket ticket;
    FlightGuard flightGuard;
    bool leading = false;
    if (cache_ && !fault && !degraded && !degradedByMemory) {
        ticket = cache_->begin(resultCacheKey(
            req.program, requestKindName(req.kind), bopts.simulate,
            static_cast<int>(bopts.startRung), configDigest_));
        for (;;) {
            if (ticket.role == ResultCache::Role::Hit) {
                respondCached(job, ticket.body, startUs, queueUs,
                              traceId, false);
                return;
            }
            if (ticket.role == ResultCache::Role::Leader) {
                leading = true;
                break;
            }
            // Follower: wait on the leader up to this request's own
            // deadline. Value answers from the leader's result;
            // Elected means the leader abandoned and this request
            // takes over; TimedOut detaches and computes alone.
            ResultCache::WaitOutcome w =
                cache_->wait(ticket, bopts.budget.deadlineMs);
            if (w == ResultCache::WaitOutcome::Value) {
                respondCached(job, ticket.body, startUs, queueUs,
                              traceId, true);
                return;
            }
            if (w == ResultCache::WaitOutcome::Elected) {
                leading = true;
                break;
            }
            break;
        }
        if (leading) {
            flightGuard.cache = cache_.get();
            flightGuard.ticket = &ticket;
            flightGuard.armed = true;
        }
    }

    harness::ProgramOutcome out;
    {
        // Fault-armed requests serialize: the fault plan is process-
        // global, and only the filter keeps it from firing elsewhere.
        std::unique_lock<std::mutex> flock(faultMutex_, std::defer_lock);
        if (fault) {
            flock.lock();
            harness::armFault(*fault);
        }
        // The crash sites fire inside the request's program context so
        // a plan filtered to this request's name matches; an armed
        // `abort` takes the whole process down right here. A throwing
        // leader-crash unwinds through the FlightGuard, which wakes
        // the followers to re-elect.
        {
            harness::ProgramContext pctx(name);
            gWorkerCrashSite.fireNoDiag();
            if (leading)
                gLeaderCrashSite.fireNoDiag();
        }
        out = harness::runIsolated(harness::namedInput(name, req.program),
                                   bopts);
        if (fault)
            harness::clearFault();
    }

    // --- Breaker bookkeeping. Client-input Diags are not service
    // failures; only contained panics and timeouts count.
    bool failed = out.status == harness::BatchStatus::Timeout ||
                  out.status == harness::BatchStatus::PanicContained;
    if (failed) {
        Stage stage = classifyFailure(out);
        breakers_[int(stage)]->onFailure(out.diag);
        if (stage == Stage::Optimize || stage == Stage::Simulate)
            breakers_[int(Stage::Load)]->onSuccess();
        if (stage == Stage::Simulate && optimizeEngaged)
            breakers_[int(Stage::Optimize)]->onSuccess();
    } else if (out.status == harness::BatchStatus::Diag) {
        // The load stage worked: it correctly diagnosed bad input.
        breakers_[int(Stage::Load)]->onSuccess();
    } else {
        breakers_[int(Stage::Load)]->onSuccess();
        if (optimizeEngaged)
            breakers_[int(Stage::Optimize)]->onSuccess();
        if (simulateEngaged && out.simulated)
            breakers_[int(Stage::Simulate)]->onSuccess();
    }

    // --- Incident capture: minimize panics/timeouts (and degraded
    // outcomes that contained failures) into replayable bundles.
    std::string incidentDir;
    bool incidentWorthy =
        failed || (out.status == harness::BatchStatus::Degraded &&
                   !out.failures.empty());
    if (opts_.writeIncidents && incidentWorthy && !out.source.empty()) {
        std::lock_guard<std::mutex> flock(faultMutex_);
        Result<std::string> written =
            incident::captureOutcome(out, bopts, opts_.incidents, fault);
        harness::clearFault();
        if (written.ok())
            incidentDir = written.value();
        else
            obs::traceEvent("serve", "incident_skip",
                            {{"id", req.id},
                             {"why", written.diag().str()}});
    }

    // --- Publish or abandon the led flight. Only deterministic
    // outcomes are publishable: ok and diag replay bit-identically,
    // while timeouts, contained panics, degraded runs, and anything
    // that produced an incident bundle must be recomputed per request.
    if (leading) {
        flightGuard.armed = false;
        bool publishable =
            !failed &&
            (out.status == harness::BatchStatus::Ok ||
             out.status == harness::BatchStatus::Diag) &&
            incidentDir.empty();
        if (publishable)
            cache_->publish(ticket,
                            resultResponse("", out, false, "", {}));
        else
            cache_->abandon(ticket);
    }

    ++completed_;
    ++obs::counter(std::string("serve.result.") +
                   harness::batchStatusName(out.status));
    if (span.active()) {
        span.arg("status", harness::batchStatusName(out.status));
        span.arg("rung", harness::rungName(out.rung));
    }

    // Per-kind end-to-end latency (queue included) and the per-stage
    // breakdown, from the server's own histograms — what the soak
    // script and `memoria top` read back.
    ResponseMeta meta;
    meta.traceId = traceId;
    meta.queueUs = queueUs;
    meta.totalUs = queueUs + (nowUs() - startUs);
    obs::histogram(std::string("serve.latency_us.") +
                   requestKindName(req.kind))
        .sample(meta.totalUs);
    obs::histogram("serve.stage.queue_us").sample(queueUs);
    obs::histogram("serve.stage.load_us").sample(out.timings.loadUs);
    obs::histogram("serve.stage.optimize_us")
        .sample(out.timings.optimizeUs);
    obs::histogram("serve.stage.verify_us").sample(out.timings.verifyUs);
    obs::histogram("serve.stage.simulate_us")
        .sample(out.timings.simulateUs);
    obs::histogram("serve.stage.total_us").sample(meta.totalUs);
    ++obs::counter(std::string("serve.rung.") +
                   harness::rungName(out.rung));

    job.respond(resultResponse(req.id, out, degraded, incidentDir,
                               meta, degradedByMemory));
}

int64_t
Server::estimatedServiceUs(RequestKind kind) const
{
    // p90 of the live per-kind service-time histogram once it has
    // enough samples to mean something; before that the admission
    // controller falls back to its own EWMA (or admits blind).
    const obs::Histogram &h = obs::histogram(
        std::string("serve.service_us.") + requestKindName(kind));
    if (h.count() < 8)
        return 0;
    return static_cast<int64_t>(h.quantile(0.9));
}

void
Server::governorLoop()
{
    std::unique_lock<std::mutex> lock(governorMutex_);
    while (!governorStop_) {
        governorCv_.wait_for(
            lock,
            std::chrono::milliseconds(
                governor_->options().sampleIntervalMs),
            [this] { return governorStop_; });
        if (governorStop_)
            break;
        lock.unlock();
        governor_->sample();
        lock.lock();
    }
}

void
Server::drain()
{
    // Serialized: concurrent drains (signal vs destructor vs a racing
    // transport) must not both join the worker threads.
    std::lock_guard<std::mutex> drainLock(drainMutex_);
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (!draining_.exchange(true)) {
            drainDeadlineAt_.store(nowMs() + opts_.drainDeadlineMs);
            obs::traceEvent(
                "serve", "drain",
                {{"queued",
                  static_cast<int64_t>(admission_->depth())}});
        }
        stop_ = true;
        ++queueGen_;  // wake workers into the drain sweep immediately
    }
    queueCv_.notify_all();
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();

    // Stop the periodic writer, then write one final snapshot: stats
    // accumulated since the last interval (or ever, when no interval
    // was set) survive a SIGTERM'd serve.
    {
        std::lock_guard<std::mutex> lock(metricsMutex_);
        metricsStop_ = true;
    }
    metricsCv_.notify_all();
    if (metricsThread_.joinable())
        metricsThread_.join();
    // Final snapshot, then release the stream: a second drain (the
    // destructor after an explicit drain) must not duplicate it.
    writeMetricsSnapshotNow();
    {
        std::lock_guard<std::mutex> lock(metricsFileMutex_);
        metricsOut_.reset();
    }

    // Durability on the way out: stop the periodic cache-snapshot
    // writer and persist the warm cache once more, so a drained (or
    // EOF'd, or SIGTERM'd) worker restarts warm.
    {
        std::lock_guard<std::mutex> lock(snapshotMutex_);
        snapshotStop_ = true;
    }
    snapshotCv_.notify_all();
    if (snapshotThread_.joinable())
        snapshotThread_.join();
    writeCacheSnapshotNow();

    {
        std::lock_guard<std::mutex> lock(governorMutex_);
        governorStop_ = true;
    }
    governorCv_.notify_all();
    if (governorThread_.joinable())
        governorThread_.join();

    obs::flushTrace();
}

void
Server::snapshotLoop()
{
    std::unique_lock<std::mutex> lock(snapshotMutex_);
    while (!snapshotStop_) {
        snapshotCv_.wait_for(
            lock,
            std::chrono::milliseconds(opts_.cacheSnapshotIntervalMs),
            [this] { return snapshotStop_; });
        if (snapshotStop_)
            break;
        lock.unlock();
        writeCacheSnapshotNow();
        lock.lock();
    }
}

void
Server::writeCacheSnapshotNow()
{
    if (!cache_ || opts_.cacheSnapshotPath.empty() ||
        snapshotDisabled_.load())
        return;
    Status written =
        writeCacheSnapshot(opts_.cacheSnapshotPath, cache_->entries(),
                           opts_.shard, configDigest_);
    if (written.ok())
        return;
    if (written.diag().code == "serve.snapshot.enospc") {
        // Out of disk is a degradation, not a crash: durability goes
        // dark, serving continues on the in-memory cache.
        snapshotDisabled_.store(true);
        ++obs::counter("serve.journal.disabled");
        obs::traceEvent("serve", "snapshot_disabled",
                        {{"why", written.diag().str()}});
    } else {
        ++obs::counter("serve.cache.snapshot_errors");
        obs::traceEvent("serve", "snapshot_error",
                        {{"why", written.diag().str()}});
    }
}

void
Server::loadCacheSnapshot()
{
    // A missing file is a normal cold start, not a rejection.
    std::error_code ec;
    if (!std::filesystem::exists(opts_.cacheSnapshotPath, ec))
        return;
    Result<std::vector<std::pair<std::string, std::string>>> loaded =
        readCacheSnapshot(opts_.cacheSnapshotPath, configDigest_);
    if (!loaded.ok()) {
        // readCacheSnapshot counted serve.cache.snapshot_rejected;
        // cold start is the fallback, never a crash.
        obs::traceEvent("serve", "snapshot_cold_start",
                        {{"why", loaded.diag().str()}});
        return;
    }
    for (const auto &[key, body] : loaded.value()) {
        cache_->seed(key, body);
        ++obs::counter("serve.cache.snapshot_loaded_entries");
    }
    obs::traceEvent(
        "serve", "snapshot_warm_start",
        {{"path", opts_.cacheSnapshotPath},
         {"entries",
          static_cast<int64_t>(loaded.value().size())}});
}

void
Server::respondCached(const Job &job, const std::string &body,
                      double startUs, double queueUs,
                      const std::string &traceId, bool dedupFollower)
{
    ResponseMeta meta;
    meta.traceId = traceId;
    meta.queueUs = queueUs;
    meta.totalUs = queueUs + (nowUs() - startUs);
    obs::histogram(std::string("serve.latency_us.") +
                   requestKindName(job.req.kind))
        .sample(meta.totalUs);
    obs::histogram("serve.stage.queue_us").sample(queueUs);
    obs::histogram("serve.stage.total_us").sample(meta.totalUs);
    ++completed_;
    job.respond(
        cachedResultResponse(body, job.req.id, meta, dedupFollower));
}

ResultCacheStats
Server::cacheStats() const
{
    return cache_ ? cache_->stats() : ResultCacheStats{};
}

void
Server::metricsLoop()
{
    std::unique_lock<std::mutex> lock(metricsMutex_);
    while (!metricsStop_) {
        metricsCv_.wait_for(
            lock, std::chrono::milliseconds(opts_.metricsIntervalMs),
            [this] { return metricsStop_; });
        if (metricsStop_)
            break;
        lock.unlock();
        writeMetricsSnapshotNow();
        lock.lock();
    }
}

void
Server::writeMetricsSnapshotNow()
{
    std::lock_guard<std::mutex> lock(metricsFileMutex_);
    if (!metricsOut_)
        return;
    std::vector<std::pair<std::string, std::string>> extra;
    extra.emplace_back("queue_depth", std::to_string(queueDepth()));
    extra.emplace_back(
        "queue_capacity",
        std::to_string(static_cast<int64_t>(opts_.queueCapacity)));
    extra.emplace_back("uptime_ms",
                       std::to_string(nowMs() - startedAtMs_));
    extra.emplace_back("draining",
                       draining_.load() ? "true" : "false");
    json::Value brs = json::Value::object();
    for (int i = 0; i < kNumStages; ++i)
        brs.set(stageName(Stage(i)),
                breakerJson(breakers_[i]->snapshot()));
    extra.emplace_back("breakers", brs.dump());
    obs::writeMetricsSnapshot(obs::statsRegistry(), *metricsOut_,
                              wallMs(), extra);
}

Server::RequestCounters
Server::requestCounters() const
{
    RequestCounters c;
    c.received = received_.load();
    c.accepted = accepted_.load();
    c.completed = completed_.load();
    c.shed = shed_.load();
    c.cancelled = cancelled_.load();
    c.errors = errors_.load();
    return c;
}

size_t
Server::queueDepth() const
{
    std::lock_guard<std::mutex> lock(queueMutex_);
    return admission_->depth();
}

std::string
Server::healthLine(const std::string &id) const
{
    RequestCounters c = requestCounters();
    json::Value r = json::Value::object();
    r.set("id", json::Value::string(id));
    r.set("type", json::Value::string("health"));
    r.set("status", json::Value::string(draining_.load() ? "draining"
                                                          : "ok"));
    r.set("version", json::Value::string(versionLine()));
    r.set("uptime_ms", json::Value::number(nowMs() - startedAtMs_));
    r.set("jobs", json::Value::number(
                      int64_t{std::max(1, opts_.jobs)}));
    r.set("queue_depth",
          json::Value::number(static_cast<int64_t>(queueDepth())));
    r.set("queue_capacity",
          json::Value::number(
              static_cast<int64_t>(opts_.queueCapacity)));

    json::Value reqs = json::Value::object();
    reqs.set("received",
             json::Value::number(static_cast<int64_t>(c.received)));
    reqs.set("accepted",
             json::Value::number(static_cast<int64_t>(c.accepted)));
    reqs.set("completed",
             json::Value::number(static_cast<int64_t>(c.completed)));
    reqs.set("shed", json::Value::number(static_cast<int64_t>(c.shed)));
    reqs.set("cancelled",
             json::Value::number(static_cast<int64_t>(c.cancelled)));
    reqs.set("errors",
             json::Value::number(static_cast<int64_t>(c.errors)));
    r.set("requests", std::move(reqs));

    json::Value brs = json::Value::object();
    for (int i = 0; i < kNumStages; ++i)
        brs.set(stageName(Stage(i)),
                breakerJson(breakers_[i]->snapshot()));
    r.set("breakers", std::move(brs));

    // Admission state: per-class depths and in-flight, for `memoria
    // top` and the overload soak's fairness checks.
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        json::Value a = json::Value::object();
        a.set("queued_interactive",
              json::Value::number(static_cast<int64_t>(
                  admission_->depth(Priority::Interactive))));
        a.set("queued_batch",
              json::Value::number(static_cast<int64_t>(
                  admission_->depth(Priority::Batch))));
        a.set("inflight",
              json::Value::number(
                  static_cast<int64_t>(admission_->inflight())));
        r.set("admission", std::move(a));
    }

    // Governor state rides the heartbeat: the supervisor reads
    // hard_pressure here and answers with a graceful recycle.
    if (governor_ && governor_->enabled()) {
        json::Value g = json::Value::object();
        g.set("rss_bytes",
              json::Value::number(
                  static_cast<int64_t>(governor_->rssBytes())));
        g.set("soft_bytes",
              json::Value::number(static_cast<int64_t>(
                  governor_->options().softBytes)));
        g.set("hard_bytes",
              json::Value::number(static_cast<int64_t>(
                  governor_->options().hardBytes)));
        g.set("soft_pressure",
              json::Value::boolean(governor_->softPressure()));
        g.set("hard_pressure",
              json::Value::boolean(governor_->hardPressure()));
        g.set("soft_trips",
              json::Value::number(
                  static_cast<int64_t>(governor_->softTrips())));
        g.set("hard_trips",
              json::Value::number(
                  static_cast<int64_t>(governor_->hardTrips())));
        r.set("governor", std::move(g));
    }

    // The result-cache block doubles as the supervisor's aggregation
    // feed: workers answer the heartbeat `health` probe with it, and
    // the supervisor folds the numbers into its own gauges for
    // `memoria top` and the chaos soak's hit-rate gate.
    if (cache_) {
        ResultCacheStats cs = cache_->stats();
        json::Value cj = json::Value::object();
        cj.set("hits",
               json::Value::number(static_cast<int64_t>(cs.hits)));
        cj.set("misses",
               json::Value::number(static_cast<int64_t>(cs.misses)));
        cj.set("inflight_joins",
               json::Value::number(
                   static_cast<int64_t>(cs.inflightJoins)));
        cj.set("evictions",
               json::Value::number(static_cast<int64_t>(cs.evictions)));
        cj.set("entries",
               json::Value::number(static_cast<int64_t>(cs.entries)));
        cj.set("bytes",
               json::Value::number(static_cast<int64_t>(cs.bytes)));
        cj.set("snapshot_rejected",
               json::Value::number(static_cast<int64_t>(
                   obs::counter("serve.cache.snapshot_rejected")
                       .value())));
        cj.set("snapshot_loaded_entries",
               json::Value::number(static_cast<int64_t>(
                   obs::counter("serve.cache.snapshot_loaded_entries")
                       .value())));
        r.set("cache", std::move(cj));
    }
    return r.dump();
}

std::string
Server::statsLine(const std::string &id) const
{
    json::Value brs = json::Value::object();
    for (int i = 0; i < kNumStages; ++i)
        brs.set(stageName(Stage(i)),
                breakerJson(breakers_[i]->snapshot()));

    // The registry dump is already a JSON object; splice it verbatim
    // (trailing newline stripped so the response stays one line).
    std::string out = "{\"id\":" + json::quote(id) +
                      ",\"type\":\"stats\",\"breakers\":" + brs.dump() +
                      ",\"registry\":" + registryDumpJson() + "}";
    return out;
}

std::string
Server::metricsLine(const std::string &id) const
{
    json::Value brs = json::Value::object();
    for (int i = 0; i < kNumStages; ++i)
        brs.set(stageName(Stage(i)),
                breakerJson(breakers_[i]->snapshot()));

    std::string out =
        "{\"id\":" + json::quote(id) + ",\"type\":\"metrics\"" +
        ",\"ts_ms\":" + std::to_string(wallMs()) +
        ",\"uptime_ms\":" + std::to_string(nowMs() - startedAtMs_) +
        ",\"queue_depth\":" +
        std::to_string(static_cast<int64_t>(queueDepth())) +
        ",\"queue_capacity\":" +
        std::to_string(static_cast<int64_t>(opts_.queueCapacity)) +
        ",\"draining\":" +
        (draining_.load() ? "true" : "false") +
        ",\"breakers\":" + brs.dump() +
        ",\"registry\":" + registryDumpJson() +
        ",\"exposition\":" + json::quote(obs::prometheusText()) + "}";
    return out;
}

} // namespace serve
} // namespace memoria
