/**
 * @file
 * Transports for the compile service: stdin/stdout and socket
 * listeners.
 *
 * Both transports share the same contract with serve/server.hh — read
 * newline-delimited request lines, hand each to `Server::handleLine`
 * with a thread-safe respond callback, and on SIGTERM/SIGINT
 * (`signals::drainRequested()`) stop reading, drain the server, and
 * return 0. The signal handlers are installed in *drain mode* (no
 * SA_RESTART), so a blocking read()/accept() wakes with EINTR instead
 * of stalling shutdown; a second signal force-exits after flushing.
 *
 * The socket listener accepts TCP (`--port`, 0 picks an ephemeral port)
 * and/or a Unix-domain socket (`--socket PATH`); the bound address is
 * announced on stdout (`listening tcp 127.0.0.1:45123`) so scripted
 * clients can connect without racing. Connections are line-oriented
 * and concurrent: each gets a reader thread, and response writes are
 * serialized per connection, so interleaved requests from many clients
 * cannot corrupt each other's frames.
 */

#ifndef MEMORIA_SERVE_LISTENER_HH
#define MEMORIA_SERVE_LISTENER_HH

#include <string>

#include "serve/server.hh"

namespace memoria {
namespace serve {

/** Where to listen. */
struct TransportOptions
{
    /** Serve stdin/stdout (the default when no socket is requested). */
    bool stdio = true;

    /** TCP: host to bind, port (-1 = off, 0 = ephemeral). */
    std::string host = "127.0.0.1";
    int port = -1;

    /** Unix-domain socket path ("" = off). Unlinked on shutdown. */
    std::string unixPath;

    /**
     * HTTP-ish Prometheus scrape port (-1 = off, 0 = ephemeral).
     * Any request on it is answered with an HTTP/1.0 200 carrying
     * `obs::exportPrometheus` text and closed — enough for a scraper
     * or `curl`, served off the accept thread so it answers even when
     * every worker is saturated.
     */
    int metricsPort = -1;
};

/**
 * Blocking stdin/stdout loop: one request per line in, one response
 * per line out. Returns the process exit code (0 on EOF or a clean
 * signal-initiated drain). Serves either a single-process `Server` or
 * a `Supervisor` — anything speaking `LineService`.
 */
int runStdio(LineService &service);

/**
 * Blocking socket accept loop for the enabled socket transports.
 * Returns the process exit code (0 on a clean drain).
 */
int runListener(LineService &service, const TransportOptions &topts);

/**
 * Shard-worker mode (`memoria serve --worker-fd N`): speak the
 * JSON-lines protocol over an inherited socketpair fd instead of a
 * listener. Returns 0 on EOF (the supervisor closed the pipe — the
 * drain handshake) or a drain signal.
 */
int runWorkerFd(LineService &service, int fd);

} // namespace serve
} // namespace memoria

#endif // MEMORIA_SERVE_LISTENER_HH
