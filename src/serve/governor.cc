#include "serve/governor.hh"

#include "serve/cache.hh"
#include "support/procstat.hh"
#include "support/stats.hh"
#include "support/trace.hh"

namespace memoria {
namespace serve {

MemoryGovernor::MemoryGovernor(GovernorOptions opts, ResultCache *cache)
    : opts_(opts), cache_(cache)
{
}

void
MemoryGovernor::sample()
{
    const uint64_t rss = procstat::rssBytes();
    if (rss == 0)
        return;  // /proc unavailable: fail open, never degrade blind
    evaluate(rss);
}

void
MemoryGovernor::evaluate(uint64_t rssBytes)
{
    rss_.store(rssBytes);
    obs::gauge("serve.governor.rss_bytes")
        .set(static_cast<double>(rssBytes));

    if (opts_.softBytes > 0) {
        const bool wasSoft = soft_.load();
        if (!wasSoft && rssBytes >= opts_.softBytes) {
            soft_.store(true);
            ++softTrips_;
            ++obs::counter("serve.governor.soft_trips");
            size_t evicted = 0;
            if (cache_) {
                // Squeeze the cache to half its *current* footprint:
                // repeated trips keep halving, one trip does not wipe
                // the warm set the next recycle wants to snapshot.
                ResultCacheStats s = cache_->stats();
                squeezeEntries_ = s.entries > 1 ? s.entries / 2 : 1;
                squeezeBytes_ = s.bytes > 1 ? s.bytes / 2 : 1;
                evicted =
                    cache_->shrinkTo(squeezeEntries_, squeezeBytes_);
            }
            obs::traceEvent(
                "serve.governor", "soft-pressure",
                {{"rss_bytes", static_cast<int64_t>(rssBytes)},
                 {"watermark_bytes",
                  static_cast<int64_t>(opts_.softBytes)},
                 {"cache_evicted", static_cast<int64_t>(evicted)},
                 {"rung_floor",
                  harness::rungName(opts_.degradeRung)}});
        } else if (wasSoft &&
                   rssBytes < opts_.softBytes -
                                  opts_.softBytes / 10) {
            // Hysteresis: release a tenth below the watermark so RSS
            // hovering at the line doesn't flap the rung floor.
            soft_.store(false);
            squeezeEntries_ = 0;
            squeezeBytes_ = 0;
            obs::traceEvent(
                "serve.governor", "soft-release",
                {{"rss_bytes", static_cast<int64_t>(rssBytes)},
                 {"watermark_bytes",
                  static_cast<int64_t>(opts_.softBytes)}});
        } else if (wasSoft && cache_ && squeezeEntries_ > 0) {
            // Soft pressure persists: the trip-time shrink was
            // one-shot, so without this the cache regrows to its
            // configured bounds while RSS is still pinned above the
            // watermark. Hold it at the squeezed bounds until release
            // (a no-op sample when it hasn't regrown).
            const size_t evicted =
                cache_->shrinkTo(squeezeEntries_, squeezeBytes_);
            if (evicted > 0)
                obs::counter("serve.governor.squeeze_evictions") +=
                    evicted;
        }
    }

    if (opts_.hardBytes > 0 && !hard_.load() &&
        rssBytes >= opts_.hardBytes) {
        hard_.store(true);
        ++hardTrips_;
        ++obs::counter("serve.governor.hard_trips");
        obs::traceEvent(
            "serve.governor", "hard-pressure",
            {{"rss_bytes", static_cast<int64_t>(rssBytes)},
             {"watermark_bytes",
              static_cast<int64_t>(opts_.hardBytes)},
             {"action", "recycle-wanted"}});
    }
    obs::gauge("serve.governor.soft_pressure")
        .set(soft_.load() ? 1.0 : 0.0);
    obs::gauge("serve.governor.hard_pressure")
        .set(hard_.load() ? 1.0 : 0.0);
}

} // namespace serve
} // namespace memoria
