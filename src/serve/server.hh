/**
 * @file
 * The long-running compile service behind `memoria serve`.
 *
 * A `Server` is transport-agnostic: transports (serve/listener.hh —
 * stdin/stdout, TCP, Unix socket) feed it request lines together with a
 * `Respond` callback, and the server guarantees **exactly one terminal
 * response per request**, whatever happens:
 *
 *  - `health`/`stats` requests are answered inline, bypassing the
 *    queue, so introspection works even when the service is saturated;
 *  - work requests pass through a bounded admission queue. A full
 *    queue sheds the request immediately with an `overloaded` response
 *    carrying `retry_after_ms` — clients get backpressure, not
 *    unbounded latency;
 *  - admitted requests run on a worker pool, each request inside the
 *    full isolation boundary (`harness::runIsolated`): fault-
 *    attribution context, per-request budget deadline, degradation
 *    ladder, crash containment;
 *  - per-stage circuit breakers (serve/breaker.hh) observe panic/
 *    timeout outcomes. An open `load` breaker rejects requests with an
 *    `error`; open `optimize`/`simulate` breakers degrade service
 *    (identity rung / no simulation) instead of failing it;
 *  - panic and timeout outcomes are minimized into incident bundles
 *    (harness/incident.hh) and the bundle path rides in the response;
 *  - `drain()` stops admission, lets in-flight work finish, answers
 *    queued-but-unstarted requests with `cancelled` once the drain
 *    deadline passes, joins the pool, and flushes the trace sink.
 *
 * The graceful-shutdown story: transports watch `signals::
 * drainRequested()` (SIGTERM/SIGINT), stop reading, and call `drain()`
 * — so a TERM'd server exits 0 with every accepted request answered.
 */

#ifndef MEMORIA_SERVE_SERVER_HH
#define MEMORIA_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <map>

#include "harness/incident.hh"
#include "harness/batch.hh"
#include "serve/admission.hh"
#include "serve/breaker.hh"
#include "serve/cache.hh"
#include "serve/governor.hh"
#include "serve/protocol.hh"

namespace memoria {
namespace serve {

/** Service configuration. */
struct ServeOptions
{
    /** Worker threads executing requests. */
    int jobs = 2;

    /** Admission-queue bound; beyond it requests are shed. */
    size_t queueCapacity = 16;

    /** Suggested client backoff in `overloaded` responses. */
    int64_t retryAfterMs = 50;

    /** Per-client queued + in-flight cap (0 = off); excess sheds
     *  `client-capped` so one flooding client degrades only itself. */
    size_t perClientCap = 0;

    /** CoDel-style aging target for the oldest queued request, ms
     *  (0 = off): standing queues drop stale work, not new arrivals. */
    int64_t ageTargetMs = 0;

    /** Memory-governor watermarks (bytes, 0 = off): soft shrinks the
     *  result cache and floors the ladder at a cheaper rung; hard
     *  asks the supervisor for a graceful recycle. */
    uint64_t rssSoftBytes = 0;
    uint64_t rssHardBytes = 0;
    int64_t rssSampleMs = 200;

    /** Default per-request budget (requests may lower, never raise
     *  past maxDeadlineMs). */
    harness::Budget budget{2000, 1u << 20, 50u << 20};

    /** Clamp for client-supplied deadline_ms. */
    int64_t maxDeadlineMs = 30000;

    /** After drain starts, queued requests still unstarted past this
     *  deadline are answered `cancelled` instead of run. */
    int64_t drainDeadlineMs = 5000;

    /** Request-line size bound. */
    size_t maxRequestBytes = 4u << 20;

    /** Honor the per-request "fault" injection hook (tests/soak). */
    bool allowFaultRequests = false;

    /** Minimize failures into incident bundles. */
    bool writeIncidents = true;
    incident::IncidentPolicy incidents;

    /**
     * Append JSONL metrics snapshots (support/export.hh) to this path.
     * With metricsIntervalMs > 0 a background thread writes one every
     * interval; independent of the interval, `drain()` writes a final
     * snapshot — so a SIGTERM'd serve never loses its stats.
     */
    std::string metricsPath;
    int64_t metricsIntervalMs = 0;

    BreakerOptions breaker;
    ModelParams params;

    /** Cache geometries the simulate stage sweeps — all fed from one
     *  interpreter pass per program version (cachesim/sweep.hh).
     *  Empty means the batch driver's default (i860). */
    std::vector<CacheConfig> cacheConfigs;

    /** Result-cache bounds (resultCache.maxEntries == 0 disables the
     *  cache and single-flight dedup entirely). */
    CacheOptions resultCache;

    /**
     * Durable cache snapshots (serve/snapshot.hh): written here
     * periodically and on drain, loaded (after validation) at start.
     * Empty disables durability; the in-memory cache still works.
     */
    std::string cacheSnapshotPath;
    int64_t cacheSnapshotIntervalMs = 0;  ///< 0 = only on drain

    /** Shard index stamped into snapshot headers (-1 single-process). */
    int shard = -1;
};

/**
 * What a transport needs from the thing it feeds lines to. Both the
 * in-process `Server` and the multi-process `Supervisor`
 * (serve/supervisor.hh) implement it, so runStdio/runListener serve
 * either without knowing which.
 */
class LineService
{
  public:
    /** Delivers one response line (no trailing newline) to the
     *  request's client. Must be thread-safe; workers call it. */
    using Respond = std::function<void(const std::string &)>;

    virtual ~LineService() = default;

    /** Bring the service up (worker pool / worker processes). */
    virtual void start() = 0;

    /**
     * Handle one request line. Blank lines are ignored; everything
     * else gets exactly one terminal response through `respond`,
     * either inline (parse errors, health/stats, shed, draining) or
     * later from a worker. `clientKey` identifies the transport
     * connection for fair-share queuing when the request carries no
     * `client_id` of its own ("" = anonymous).
     */
    virtual void handleLine(const std::string &line,
                            const Respond &respond,
                            const std::string &clientKey = "") = 0;

    /**
     * Graceful shutdown: stop admitting, finish in-flight work,
     * cancel what the drain deadline strands, flush observability
     * sinks. Idempotent.
     */
    virtual void drain() = 0;

    virtual bool draining() const = 0;
};

/** The service. Construct, `start()`, feed lines, `drain()`. */
class Server : public LineService
{
  public:
    using Respond = LineService::Respond;

    explicit Server(ServeOptions opts);
    ~Server() override;

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Spawn the worker pool. */
    void start() override;

    void handleLine(const std::string &line, const Respond &respond,
                    const std::string &clientKey = "") override;

    /** Stop admitting, finish in-flight work, cancel what the drain
     *  deadline strands, join workers, flush sinks. Idempotent. */
    void drain() override;

    bool draining() const override { return draining_.load(); }

    // --- Introspection (health/stats responses and tests) ---

    struct RequestCounters
    {
        uint64_t received = 0;   ///< lines that parsed as requests
        uint64_t accepted = 0;   ///< admitted to the queue
        uint64_t completed = 0;  ///< answered with `result`
        uint64_t shed = 0;       ///< answered with `overloaded`
        uint64_t cancelled = 0;  ///< answered with `cancelled`
        uint64_t errors = 0;     ///< answered with `error`
    };

    RequestCounters requestCounters() const;
    size_t queueDepth() const;
    CircuitBreaker &breaker(Stage s) { return *breakers_[int(s)]; }

    /** Result-cache counters (zeroed stats when the cache is off). */
    ResultCacheStats cacheStats() const;

    /** The memory governor (null unless a watermark is configured). */
    MemoryGovernor *governor() { return governor_.get(); }

    /** The admission controller (tests poke depths/estimates). */
    AdmissionController &admission() { return *admission_; }

    /** The `health` response body (also used by transports' tests). */
    std::string healthLine(const std::string &id) const;

    /** The `stats` response body: breakers + the obs registry dump. */
    std::string statsLine(const std::string &id) const;

    /** The `metrics` response body: Prometheus exposition + registry +
     *  queue/breaker state. Answered inline like `health`. */
    std::string metricsLine(const std::string &id) const;

  private:
    struct Job
    {
        Request req;
        Respond respond;
        double enqueuedUs = 0.0;  ///< steady-clock at admission
        uint64_t admitId = 0;     ///< admission-controller ticket
    };

    void workerLoop();
    void process(const Job &job);
    void answerDrop(const Job &job, bool expired, size_t depth);
    void governorLoop();
    /** p90 of the live per-kind service-time histogram (µs; 0 = no
     *  signal yet) — the admission controller's feasibility input. */
    int64_t estimatedServiceUs(RequestKind kind) const;
    void metricsLoop();
    void writeMetricsSnapshotNow();
    void snapshotLoop();
    void writeCacheSnapshotNow();
    void loadCacheSnapshot();
    void respondCached(const Job &job, const std::string &body,
                       double startUs, double queueUs,
                       const std::string &traceId, bool dedupFollower);

    ServeOptions opts_;
    std::unique_ptr<CircuitBreaker> breakers_[kNumStages];

    mutable std::mutex queueMutex_;
    std::condition_variable queueCv_;
    /** Queue order and fair-share policy live in the controller;
     *  payloads are held here keyed by the admission ticket. Both are
     *  guarded by queueMutex_. */
    std::unique_ptr<AdmissionController> admission_;
    std::map<uint64_t, Job> jobs_;
    uint64_t admitSeq_ = 0;
    /** Bumped (under queueMutex_) on every enqueue and finish. Workers
     *  wait on "generation changed since my last pop attempt" rather
     *  than "depth > 0": when every queued client is at its in-flight
     *  cap, depth alone would turn the wait into a hot spin. */
    uint64_t queueGen_ = 0;
    bool stop_ = false;
    /** Serializes drain(): a SIGTERM-initiated drain can race the
     *  destructor's (or a second transport's), and thread::join is
     *  not safe to race. The loser blocks until the drain is done. */
    std::mutex drainMutex_;
    std::atomic<bool> draining_{false};
    std::atomic<int64_t> drainDeadlineAt_{0};
    std::vector<std::thread> workers_;

    /** Serializes fault-armed execution and incident reduction (both
     *  manipulate the process-global fault plan). */
    std::mutex faultMutex_;

    std::atomic<uint64_t> seq_{0};
    int64_t startedAtMs_ = 0;

    /** Periodic metrics-snapshot writer (opts_.metricsPath). */
    std::thread metricsThread_;
    std::mutex metricsMutex_;
    std::condition_variable metricsCv_;
    bool metricsStop_ = false;
    std::unique_ptr<std::ofstream> metricsOut_;
    std::mutex metricsFileMutex_;

    std::atomic<uint64_t> received_{0}, accepted_{0}, completed_{0},
        shed_{0}, cancelled_{0}, errors_{0};

    /** Content-addressed result cache (null when disabled). */
    std::unique_ptr<ResultCache> cache_;
    std::string configDigest_;

    /** Periodic cache-snapshot writer (opts_.cacheSnapshotPath). */
    std::thread snapshotThread_;
    std::mutex snapshotMutex_;
    std::condition_variable snapshotCv_;
    bool snapshotStop_ = false;
    /** Set on ENOSPC: durability is off, serving continues. */
    std::atomic<bool> snapshotDisabled_{false};

    /** RSS watermarks (null unless configured) + sampling thread. */
    std::unique_ptr<MemoryGovernor> governor_;
    std::thread governorThread_;
    std::mutex governorMutex_;
    std::condition_variable governorCv_;
    bool governorStop_ = false;
};

} // namespace serve
} // namespace memoria

#endif // MEMORIA_SERVE_SERVER_HH
