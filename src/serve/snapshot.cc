#include "serve/snapshot.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/fault.hh"
#include "support/json.hh"
#include "support/stats.hh"
#include "support/trace.hh"

namespace memoria {
namespace serve {

namespace {

namespace fs = std::filesystem;

/**
 * Corrupts its own output when armed (Throw): tests and the chaos
 * soak use it to land a damaged-but-plausible snapshot on disk and
 * prove the loader rejects it and cold-starts instead of crashing.
 */
harness::FaultSite gCorruptSnapshotSite("serve.cache.corrupt-snapshot");

uint64_t
fnv1a64(const std::string &s, uint64_t h = 1469598103934665603ull)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
hex64(uint64_t v)
{
    static const char *digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i, v >>= 4)
        out[i] = digits[v & 0xf];
    return out;
}

std::string
entryCrc(const std::string &key, const std::string &body)
{
    return hex64(fnv1a64(body, fnv1a64(key)));
}

Status
writeError(const std::string &path, const std::string &why, int err)
{
    const char *code =
        err == ENOSPC ? "serve.snapshot.enospc" : "serve.snapshot";
    return Status::err(
        Diag::error(code, "'" + path + "': " + why + ": " +
                              std::strerror(err)));
}

int
fsyncRetry(int fd)
{
    int rc;
    do {
        rc = ::fsync(fd);
    } while (rc < 0 && errno == EINTR);
    return rc;
}

/** Full write with EINTR retry; returns errno (0 on success). */
int
writeAllFd(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errno;
        }
        off += static_cast<size_t>(n);
    }
    return 0;
}

Result<std::vector<std::pair<std::string, std::string>>>
rejected(const std::string &path, const std::string &defect)
{
    ++obs::counter("serve.cache.snapshot_rejected");
    obs::traceEvent("serve", "snapshot_rejected",
                    {{"path", path}, {"defect", defect}});
    return Result<std::vector<std::pair<std::string, std::string>>>::
        err(Diag::error("serve.snapshot.rejected",
                        "'" + path + "': " + defect));
}

} // namespace

Status
writeCacheSnapshot(
    const std::string &path,
    const std::vector<std::pair<std::string, std::string>> &entries,
    int shard, const std::string &configDigest)
{
    fs::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        fs::create_directories(p.parent_path(), ec);
        // An unusable parent surfaces from ::open below.
    }

    std::ostringstream content;
    {
        json::Value h = json::Value::object();
        h.set("schema", json::Value::string("memoria.cache-snapshot"));
        h.set("version",
              json::Value::number(int64_t{kCacheSnapshotVersion}));
        h.set("shard", json::Value::number(int64_t{shard}));
        h.set("config", json::Value::string(configDigest));
        h.set("entries",
              json::Value::number(static_cast<int64_t>(entries.size())));
        content << h.dump() << "\n";
    }
    uint64_t running = 1469598103934665603ull;
    for (const auto &[key, body] : entries) {
        std::string crc = entryCrc(key, body);
        running = fnv1a64(crc, running);
        json::Value e = json::Value::object();
        e.set("key", json::Value::string(key));
        e.set("body", json::Value::string(body));
        e.set("crc", json::Value::string(crc));
        content << e.dump() << "\n";
    }
    {
        json::Value f = json::Value::object();
        f.set("footer", json::Value::boolean(true));
        f.set("crc", json::Value::string(hex64(running)));
        content << f.dump() << "\n";
    }

    std::string data = content.str();
    // An armed corrupt-snapshot fault damages the bytes mid-file: the
    // header and line structure stay plausible, but an entry checksum
    // no longer matches — exactly the external-corruption shape the
    // loader must reject.
    try {
        gCorruptSnapshotSite.fireNoDiag();
    } catch (const harness::InjectedFault &) {
        if (!data.empty()) {
            size_t at = data.size() / 2;
            data[at] = data[at] == 'x' ? 'y' : 'x';
        }
        ++obs::counter("serve.cache.snapshot_corrupt_injected");
    }

    const std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC
#ifdef O_CLOEXEC
                                     | O_CLOEXEC
#endif
                    ,
                    0644);
    if (fd < 0)
        return writeError(tmp, "open", errno);
    if (int err = writeAllFd(fd, data); err != 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        return writeError(tmp, "write", err);
    }
    if (fsyncRetry(fd) < 0) {
        int err = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        return writeError(tmp, "fsync", err);
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) < 0) {
        int err = errno;
        ::unlink(tmp.c_str());
        return writeError(path, "rename", err);
    }
    // Durable name: fsync the directory so the rename itself survives
    // a power cut. Failure here is not worth failing the snapshot.
    if (p.has_parent_path()) {
        int dfd = ::open(p.parent_path().c_str(), O_RDONLY);
        if (dfd >= 0) {
            fsyncRetry(dfd);
            ::close(dfd);
        }
    }
    ++obs::counter("serve.cache.snapshot_writes");
    return Status();
}

Result<std::vector<std::pair<std::string, std::string>>>
readCacheSnapshot(const std::string &path,
                  const std::string &configDigest)
{
    std::ifstream in(path);
    if (!in)
        return rejected(path, "unreadable");

    std::string line;
    if (!std::getline(in, line))
        return rejected(path, "empty");
    Result<json::Value> header = json::parse(line);
    if (!header.ok() || !header.value().isObject())
        return rejected(path, "bad header");
    const json::Value &h = header.value();
    if (h.getString("schema") != "memoria.cache-snapshot")
        return rejected(path, "wrong schema");
    if (h.getInt("version", -1) != kCacheSnapshotVersion)
        return rejected(path,
                        "version mismatch (found " +
                            std::to_string(h.getInt("version", -1)) +
                            ", want " +
                            std::to_string(kCacheSnapshotVersion) + ")");
    if (h.getString("config") != configDigest)
        return rejected(path, "config digest mismatch");
    int64_t expected = h.getInt("entries", -1);
    if (expected < 0)
        return rejected(path, "bad header");

    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(static_cast<size_t>(expected));
    uint64_t running = 1469598103934665603ull;
    for (int64_t i = 0; i < expected; ++i) {
        if (!std::getline(in, line))
            return rejected(path, "truncated tail");
        Result<json::Value> entry = json::parse(line);
        if (!entry.ok() || !entry.value().isObject())
            return rejected(path, "torn entry line");
        const json::Value &e = entry.value();
        std::string key = e.getString("key");
        std::string body = e.getString("body");
        std::string crc = e.getString("crc");
        if (crc != entryCrc(key, body))
            return rejected(path, "entry checksum mismatch");
        running = fnv1a64(crc, running);
        out.emplace_back(std::move(key), std::move(body));
    }
    if (!std::getline(in, line))
        return rejected(path, "missing footer");
    Result<json::Value> footer = json::parse(line);
    if (!footer.ok() || !footer.value().getBool("footer", false))
        return rejected(path, "bad footer");
    if (footer.value().getString("crc") != hex64(running))
        return rejected(path, "footer checksum mismatch");
    return out;
}

} // namespace serve
} // namespace memoria
