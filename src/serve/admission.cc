#include "serve/admission.hh"

#include <algorithm>

#include "serve/protocol.hh"
#include "support/stats.hh"

namespace memoria {
namespace serve {

namespace {

/** EWMA smoothing for the drain-rate / service-time estimates: light
 *  enough to track load shifts within a few dozen requests. */
constexpr double kEwmaAlpha = 0.2;

/** Ceiling for honest retry hints: past this the client should treat
 *  the service as down, not busy. */
constexpr int64_t kRetryAfterCapMs = 30000;

} // namespace

bool
parsePriority(const std::string &s, Priority &out)
{
    if (s.empty() || s == "interactive") {
        out = Priority::Interactive;
        return true;
    }
    if (s == "batch") {
        out = Priority::Batch;
        return true;
    }
    return false;
}

const char *
priorityName(Priority p)
{
    return p == Priority::Interactive ? "interactive" : "batch";
}

AdmissionController::AdmissionController(AdmissionOptions opts)
    : opts_(opts)
{
    credit_[0] = std::max(1, opts_.interactiveShare);
    credit_[1] = std::max(1, opts_.batchShare);
}

size_t
AdmissionController::depth(Priority p) const
{
    return classes_[static_cast<int>(p)].queued;
}

size_t
AdmissionController::clientRecords() const
{
    size_t n = 0;
    for (const ClassState &cls : classes_)
        n += cls.clients.size();
    return n;
}

size_t
AdmissionController::clientLoad(const std::string &client) const
{
    size_t load = 0;
    for (const ClassState &cls : classes_) {
        auto it = cls.clients.find(client);
        if (it != cls.clients.end())
            load += it->second.queue.size() + it->second.inflight;
    }
    return load;
}

int64_t
AdmissionController::honestRetryAfterMs(int64_t nowUs) const
{
    (void)nowUs;
    // Expected time for the queue ahead to drain at the observed
    // finish rate; fall back to the configured base before the first
    // finishes arrive.
    int64_t hint = opts_.retryAfterMs;
    if (ewmaInterFinishUs_ > 0.0) {
        const double drainMs =
            static_cast<double>(queued_ + 1) * ewmaInterFinishUs_ /
            1000.0;
        hint = std::max<int64_t>(opts_.retryAfterMs,
                                 static_cast<int64_t>(drainMs));
    }
    hint = std::min(hint, kRetryAfterCapMs);
    return jitteredRetryAfterMs(hint);
}

AdmissionDecision
AdmissionController::decide(const std::string &client, Priority pri,
                            int64_t deadlineAtUs, int64_t estServiceUs,
                            int64_t nowUs) const
{
    (void)pri;
    AdmissionDecision d;
    d.queueDepth = queued_;

    const size_t load =
        queued_ + (opts_.countInflight ? inflight_ : 0);
    if (load >= opts_.queueCapacity) {
        d.admitted = false;
        d.reason = "queue-full";
        d.retryAfterMs = honestRetryAfterMs(nowUs);
        ++obs::counter("serve.shed.queue_full");
        return d;
    }

    if (opts_.perClientCap > 0 &&
        clientLoad(client) >= opts_.perClientCap) {
        d.admitted = false;
        d.reason = "client-capped";
        d.retryAfterMs = honestRetryAfterMs(nowUs);
        ++obs::counter("serve.shed.client_capped");
        return d;
    }

    if (deadlineAtUs > 0) {
        // Predicted completion: current queue drains at the observed
        // inter-finish rate, then this request runs for the estimated
        // service time. No estimate at all → admit (fail open; the
        // in-queue expiry check still catches it later).
        int64_t est = estServiceUs > 0
                          ? estServiceUs
                          : static_cast<int64_t>(ewmaServiceUs_);
        if (est > 0) {
            const int64_t queueDelayUs = static_cast<int64_t>(
                static_cast<double>(queued_) * ewmaInterFinishUs_);
            if (nowUs + queueDelayUs + est > deadlineAtUs) {
                d.admitted = false;
                d.reason = "deadline-infeasible";
                d.retryAfterMs = honestRetryAfterMs(nowUs);
                ++obs::counter("serve.shed.deadline_infeasible");
                return d;
            }
        }
    }
    return d;
}

void
AdmissionController::enqueue(uint64_t id, const std::string &client,
                             Priority pri, int64_t deadlineAtUs,
                             int64_t nowUs)
{
    ClassState &cls = classes_[static_cast<int>(pri)];
    ClientState &cs = cls.clients[client];
    if (cs.queue.empty())
        cls.ring.push_back(client);
    cs.queue.push_back(Entry{id, client, pri, deadlineAtUs, nowUs});
    ++cls.queued;
    ++queued_;
    publishDepthGauges();
}

const AdmissionController::Entry *
AdmissionController::oldestEntry() const
{
    const Entry *oldest = nullptr;
    for (const ClassState &cls : classes_) {
        for (const auto &[key, cs] : cls.clients) {
            if (cs.queue.empty())
                continue;
            const Entry &head = cs.queue.front();
            if (!oldest || head.enqueuedUs < oldest->enqueuedUs)
                oldest = &head;
        }
    }
    return oldest;
}

void
AdmissionController::dropStale(int64_t nowUs,
                               std::vector<AdmissionDrop> &dropped)
{
    // Expired heads first: a queued request whose own deadline has
    // passed must never reach a worker.
    for (ClassState &cls : classes_) {
        for (size_t scanned = 0;
             scanned < cls.ring.size() && !cls.ring.empty();) {
            const std::string key = cls.ring.front();
            auto cit = cls.clients.find(key);
            if (cit == cls.clients.end()) {
                // Stale ring entry (client erased by finish()): drop
                // it instead of resurrecting a zombie via operator[].
                cls.ring.pop_front();
                ++scanned;
                continue;
            }
            ClientState &cs = cit->second;
            bool droppedHere = false;
            while (!cs.queue.empty() &&
                   cs.queue.front().deadlineAtUs > 0 &&
                   cs.queue.front().deadlineAtUs < nowUs) {
                dropped.push_back(
                    AdmissionDrop{cs.queue.front().id, true});
                cs.queue.pop_front();
                --cls.queued;
                --queued_;
                droppedHere = true;
                ++obs::counter("serve.deadline_exceeded");
            }
            if (cs.queue.empty()) {
                cls.ring.pop_front();
                // Same cleanup finish() does: an idle client record
                // must not outlive its last entry.
                if (cs.inflight == 0)
                    cls.clients.erase(cit);
                if (!droppedHere)
                    ++scanned;  // stale ring entry, keep scanning
                continue;
            }
            cls.ring.push_back(key);
            cls.ring.pop_front();
            ++scanned;
        }
    }

    // CoDel-flavored aging: if the *oldest* sojourn has been above
    // target continuously for one full target interval, drop one
    // oldest entry per interval — standing queues shed stale work,
    // bursts that drain within the interval are left alone.
    if (opts_.ageTargetMs <= 0)
        return;
    const int64_t targetUs = opts_.ageTargetMs * 1000;
    const Entry *oldest = oldestEntry();
    if (!oldest || nowUs - oldest->enqueuedUs < targetUs) {
        agingSinceUs_ = 0;
        return;
    }
    if (agingSinceUs_ == 0) {
        agingSinceUs_ = nowUs;
        return;
    }
    if (nowUs - agingSinceUs_ < targetUs)
        return;
    agingSinceUs_ = nowUs;
    // Copy what the drop needs first: pop_front() destroys the Entry
    // `oldest` points into (its client's head), so reading through
    // `oldest` after the pop is a use-after-free.
    const uint64_t agedId = oldest->id;
    const std::string agedClient = oldest->client;
    ClassState &cls = classes_[static_cast<int>(oldest->pri)];
    auto cit = cls.clients.find(agedClient);
    if (cit == cls.clients.end())
        return;  // unreachable: oldestEntry() just saw this client
    ClientState &cs = cit->second;
    dropped.push_back(AdmissionDrop{agedId, false});
    cs.queue.pop_front();
    --cls.queued;
    --queued_;
    if (cs.queue.empty()) {
        auto it =
            std::find(cls.ring.begin(), cls.ring.end(), agedClient);
        if (it != cls.ring.end())
            cls.ring.erase(it);
        if (cs.inflight == 0)
            cls.clients.erase(cit);
    }
    ++obs::counter("serve.shed.queue_aged");
}

uint64_t
AdmissionController::popClass(ClassState &cls, int64_t nowUs)
{
    // Deficit round robin, quantum 1: each ring visit earns one
    // dequeue; clients at their in-flight cap are skipped this pass
    // but keep their place.
    (void)nowUs;
    for (size_t scanned = 0, limit = cls.ring.size();
         scanned < limit && !cls.ring.empty(); ++scanned) {
        const std::string key = cls.ring.front();
        cls.ring.pop_front();
        auto it = cls.clients.find(key);
        if (it == cls.clients.end() || it->second.queue.empty())
            continue;  // stale ring entry
        ClientState &cs = it->second;
        if (opts_.perClientCap > 0 &&
            cs.inflight >= opts_.perClientCap) {
            cls.ring.push_back(key);
            continue;
        }
        Entry e = cs.queue.front();
        cs.queue.pop_front();
        --cls.queued;
        --queued_;
        ++cs.inflight;
        ++inflight_;
        if (!cs.queue.empty())
            cls.ring.push_back(key);
        popped_[e.id] = {e.client, e.pri};
        return e.id;
    }
    return 0;
}

uint64_t
AdmissionController::pop(int64_t nowUs,
                         std::vector<AdmissionDrop> &dropped)
{
    dropStale(nowUs, dropped);
    if (queued_ == 0) {
        publishDepthGauges();
        return 0;
    }

    // Weighted class credits: interactive spends its share first;
    // when both classes are out of credit the shares are replenished.
    // Batch can be delayed by up to interactiveShare dequeues but is
    // never starved, and an empty class forfeits its credit.
    for (int attempts = 0; attempts < 3; ++attempts) {
        const int order[2] = {0, 1};  // interactive first
        for (int c : order) {
            if (credit_[c] <= 0 || classes_[c].queued == 0)
                continue;
            uint64_t id = popClass(classes_[c], nowUs);
            if (id != 0) {
                --credit_[c];
                publishDepthGauges();
                return id;
            }
        }
        // No credit matched runnable work: replenish and retry once;
        // if still nothing, every queued client is at its cap.
        bool replenished = false;
        for (int c = 0; c < 2; ++c) {
            const int share = c == 0 ? opts_.interactiveShare
                                     : opts_.batchShare;
            if (credit_[c] < std::max(1, share)) {
                credit_[c] = std::max(1, share);
                replenished = true;
            }
        }
        if (!replenished)
            break;
    }
    publishDepthGauges();
    return 0;
}

void
AdmissionController::finish(uint64_t id, int64_t nowUs)
{
    auto it = popped_.find(id);
    if (it != popped_.end()) {
        ClassState &cls = classes_[static_cast<int>(it->second.second)];
        auto cit = cls.clients.find(it->second.first);
        if (cit != cls.clients.end()) {
            if (cit->second.inflight > 0)
                --cit->second.inflight;
            // Drop empty client records so a churn of one-shot
            // connection keys cannot grow the map without bound.
            if (cit->second.queue.empty() &&
                cit->second.inflight == 0)
                cls.clients.erase(cit);
        }
        if (inflight_ > 0)
            --inflight_;
        popped_.erase(it);

        // Finish gap → drain-rate EWMA, the basis for both honest
        // retry hints and deadline-feasibility queue delay.
        if (lastFinishUs_ > 0 && nowUs > lastFinishUs_) {
            const double gap =
                static_cast<double>(nowUs - lastFinishUs_);
            ewmaInterFinishUs_ =
                ewmaInterFinishUs_ == 0.0
                    ? gap
                    : (1.0 - kEwmaAlpha) * ewmaInterFinishUs_ +
                          kEwmaAlpha * gap;
        }
        lastFinishUs_ = nowUs;
        return;
    }

    // Still queued (drain sweep answers queued work directly): remove
    // it wherever it sits.
    for (ClassState &cls : classes_) {
        for (auto cit = cls.clients.begin(); cit != cls.clients.end();
             ++cit) {
            auto &q = cit->second.queue;
            auto qit = std::find_if(
                q.begin(), q.end(),
                [id](const Entry &e) { return e.id == id; });
            if (qit == q.end())
                continue;
            q.erase(qit);
            --cls.queued;
            --queued_;
            if (q.empty()) {
                auto rit = std::find(cls.ring.begin(), cls.ring.end(),
                                     cit->first);
                if (rit != cls.ring.end())
                    cls.ring.erase(rit);
                if (cit->second.inflight == 0)
                    cls.clients.erase(cit);
            }
            publishDepthGauges();
            return;
        }
    }
    // Unknown id: already finished (e.g. crash-retry bookkeeping) —
    // deliberately a no-op so double-finish cannot corrupt counts.
}

void
AdmissionController::recordService(int64_t serviceUs)
{
    if (serviceUs <= 0)
        return;
    const double v = static_cast<double>(serviceUs);
    ewmaServiceUs_ = ewmaServiceUs_ == 0.0
                         ? v
                         : (1.0 - kEwmaAlpha) * ewmaServiceUs_ +
                               kEwmaAlpha * v;
}

void
AdmissionController::publishDepthGauges() const
{
    if (!opts_.publishGauges)
        return;
    obs::gauge("serve.admission.queue.interactive")
        .set(static_cast<double>(classes_[0].queued));
    obs::gauge("serve.admission.queue.batch")
        .set(static_cast<double>(classes_[1].queued));
}

} // namespace serve
} // namespace memoria
