/**
 * @file
 * Content-addressed result cache for `memoria serve`.
 *
 * Repeat traffic is the common case for a compile service, and the
 * pipeline is deterministic for a given (program, options) pair — so
 * finished responses are cached under a canonical key and replayed for
 * the cost of a hash lookup. Two cooperating mechanisms:
 *
 *  - a bounded LRU (entry count and byte budget) mapping the cache key
 *    to the response body, with `serve.cache.{hits,misses,evictions}`
 *    counters and `serve.cache.{entries,bytes}` gauges;
 *  - single-flight dedup: when N identical requests are in flight at
 *    once, one of them (the *leader*) computes while the rest
 *    (*followers*) block on the flight and are answered from the
 *    leader's published result (`serve.cache.inflight_joins`). A
 *    leader that fails or refuses to publish *abandons* the flight,
 *    which wakes exactly one follower to take over as the new leader —
 *    followers are never left hanging on a dead leader. A follower
 *    whose own deadline expires first detaches and computes alone.
 *
 * The key is a canonical-print hash: the program is parsed and
 * pretty-printed so formatting-only variants share an entry, and the
 * key material includes the request kind, the *effective* simulate/
 * rung options, and a digest of the server's model parameters and
 * cache geometries — so a snapshot written under one configuration is
 * never served under another.
 *
 * Thread-safe. Durability lives in serve/snapshot.hh: `entries()`
 * exports the LRU for snapshotting, `seed()` warm-starts it.
 */

#ifndef MEMORIA_SERVE_CACHE_HH
#define MEMORIA_SERVE_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cachesim/cache.hh"
#include "model/params.hh"

namespace memoria {
namespace serve {

/** Result-cache bounds. */
struct CacheOptions
{
    /** Maximum cached responses (0 disables the cache). */
    size_t maxEntries = 512;

    /** Byte budget across keys + bodies. */
    size_t maxBytes = 32u << 20;
};

/** Point-in-time view for health/top and tests. */
struct ResultCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inflightJoins = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
};

/**
 * Digest of the serve-side configuration a cached result depends on
 * (model parameters + simulated cache geometries). Folded into every
 * cache key and stamped into snapshot headers, so a configuration
 * change invalidates both transparently.
 */
std::string serveConfigDigest(const ModelParams &params,
                              const std::vector<CacheConfig> &configs);

/**
 * The cache key for one request: canonical-print hash of the program
 * (raw text when it does not parse — the Diag it will produce is
 * deterministic too) combined with the kind name, the effective
 * simulate flag and start rung, and `configDigest`.
 */
std::string resultCacheKey(const std::string &program,
                           const std::string &kindName, bool simulate,
                           int startRung,
                           const std::string &configDigest);

/** Bounded LRU + single-flight. All methods are thread-safe. */
class ResultCache
{
  public:
    explicit ResultCache(CacheOptions opts);

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /** How `begin()` classified the caller. */
    enum class Role
    {
        Hit,       ///< cached body returned, nothing to compute
        Leader,    ///< caller computes; must publish() or abandon()
        Follower,  ///< identical request in flight; call wait()
    };

    /** What a follower's wait() ended with. */
    enum class WaitOutcome
    {
        Value,     ///< leader published; ticket.body is the response
        Elected,   ///< leader abandoned; caller is the new leader
        TimedOut,  ///< own deadline expired; compute alone, no cache
    };

    struct Flight;

    /** One participation in the cache protocol. */
    struct Ticket
    {
        Role role = Role::Leader;
        std::string key;
        std::string body;  ///< valid for Hit and WaitOutcome::Value
        std::shared_ptr<Flight> flight;  ///< Leader/Follower only
    };

    /** Look up `key`; classify the caller (see Role). */
    Ticket begin(const std::string &key);

    /**
     * Leader: store `body` under the ticket's key and wake every
     * follower with it. Ends the flight.
     */
    void publish(const Ticket &t, const std::string &body);

    /**
     * Leader: give up without a cacheable result (timeout, contained
     * panic, breaker-degraded run). Wakes one follower to re-elect;
     * with no followers waiting the flight is dissolved.
     */
    void abandon(const Ticket &t);

    /**
     * Follower: block until the leader publishes (Value), the leader
     * abandons and this caller wins re-election (Elected — the ticket
     * becomes a Leader ticket), or `timeoutMs` expires (TimedOut).
     */
    WaitOutcome wait(Ticket &t, int64_t timeoutMs);

    /** Warm-start insert (snapshot load); no counters bumped. */
    void seed(const std::string &key, const std::string &body);

    /**
     * Evict LRU-order down to at most `maxEntries` entries and
     * `maxBytes` bytes (0 = leave that bound alone). The configured
     * bounds are untouched — this is a one-shot squeeze the memory
     * governor applies under RSS pressure; the cache regrows to its
     * configured bounds afterwards. Returns the entries evicted.
     */
    size_t shrinkTo(size_t maxEntries, size_t maxBytes);

    /** MRU-first copy of the LRU for snapshotting. */
    std::vector<std::pair<std::string, std::string>> entries() const;

    ResultCacheStats stats() const;

  private:
    struct Entry
    {
        std::string key;
        std::string body;
    };

    /** Insert/refresh under mu_; evicts past the bounds. */
    void insertLocked(const std::string &key, const std::string &body);
    void eraseFlightLocked(const std::string &key,
                           const std::shared_ptr<Flight> &flight);
    void publishGauges() const;

    CacheOptions opts_;

    mutable std::mutex mu_;
    std::list<Entry> lru_;  ///< front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index_;
    std::unordered_map<std::string, std::shared_ptr<Flight>> inflight_;
    size_t bytes_ = 0;
    uint64_t hits_ = 0, misses_ = 0, joins_ = 0, evictions_ = 0;
};

} // namespace serve
} // namespace memoria

#endif // MEMORIA_SERVE_CACHE_HH
