/**
 * @file
 * Affine integer expressions over loop variables and symbolic parameters.
 *
 * Subscripts and loop bounds in the paper's domain (Fortran 77 scientific
 * codes) are affine: sum of integer-coefficient variables plus an integer
 * constant. AffineExpr is the shared currency between the IR, the
 * dependence analyzer and the locality cost model.
 */

#ifndef MEMORIA_IR_EXPR_HH
#define MEMORIA_IR_EXPR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace memoria {

/** Index of a variable (loop index or symbolic parameter) in a Program. */
using VarId = int32_t;

/** Sentinel for "no variable". */
constexpr VarId kNoVar = -1;

/**
 * Immutable affine expression: sum(coeff_i * var_i) + constant.
 *
 * Terms are kept sorted by VarId with zero coefficients dropped, so
 * structural equality is value equality.
 */
class AffineExpr
{
  public:
    /** A (varId, coefficient) pair; coefficient is never zero. */
    using Term = std::pair<VarId, int64_t>;

    /** The zero expression. */
    AffineExpr() = default;

    /** A constant expression. */
    AffineExpr(int64_t c) : constant_(c) {}

    /** The expression coeff * v. */
    static AffineExpr makeVar(VarId v, int64_t coeff = 1);

    /** Coefficient of variable v (0 when absent). */
    int64_t coeff(VarId v) const;

    /** The constant term. */
    int64_t constant() const { return constant_; }

    /** True when no variables appear. */
    bool isConstant() const { return terms_.empty(); }

    /** True when the expression is exactly one variable (coeff 1). */
    bool isSingleVar() const;

    /** Number of variables with non-zero coefficients. */
    size_t numVars() const { return terms_.size(); }

    /** All terms, sorted by VarId. */
    const std::vector<Term> &terms() const { return terms_; }

    /** The variables that appear. */
    std::vector<VarId> vars() const;

    /** True when variable v appears with non-zero coefficient. */
    bool uses(VarId v) const { return coeff(v) != 0; }

    AffineExpr operator+(const AffineExpr &o) const;
    AffineExpr operator-(const AffineExpr &o) const;
    AffineExpr operator*(int64_t s) const;
    AffineExpr operator-() const { return *this * -1; }
    AffineExpr operator+(int64_t c) const { return *this + AffineExpr(c); }
    AffineExpr operator-(int64_t c) const { return *this + AffineExpr(-c); }

    bool operator==(const AffineExpr &o) const;

    /** Replace variable v by expression e. */
    AffineExpr substitute(VarId v, const AffineExpr &e) const;

    /** Drop the term for variable v (as if its coefficient were zero). */
    AffineExpr withoutVar(VarId v) const;

    /** Evaluate with a variable environment. */
    int64_t eval(const std::function<int64_t(VarId)> &lookup) const;

    /** Render with a variable-name resolver, e.g. "I + 2*K - 1". */
    std::string str(const std::function<std::string(VarId)> &name) const;

  private:
    void addTerm(VarId v, int64_t coeff);

    std::vector<Term> terms_;
    int64_t constant_ = 0;
};

} // namespace memoria

#endif // MEMORIA_IR_EXPR_HH
