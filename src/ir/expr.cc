#include "ir/expr.hh"

#include <algorithm>
#include <sstream>

namespace memoria {

AffineExpr
AffineExpr::makeVar(VarId v, int64_t coeff)
{
    AffineExpr e;
    e.addTerm(v, coeff);
    return e;
}

int64_t
AffineExpr::coeff(VarId v) const
{
    for (const auto &[var, c] : terms_)
        if (var == v)
            return c;
    return 0;
}

bool
AffineExpr::isSingleVar() const
{
    return constant_ == 0 && terms_.size() == 1 && terms_[0].second == 1;
}

std::vector<VarId>
AffineExpr::vars() const
{
    std::vector<VarId> out;
    out.reserve(terms_.size());
    for (const auto &[var, c] : terms_)
        out.push_back(var);
    return out;
}

AffineExpr
AffineExpr::operator+(const AffineExpr &o) const
{
    AffineExpr out = *this;
    out.constant_ += o.constant_;
    for (const auto &[var, c] : o.terms_)
        out.addTerm(var, c);
    return out;
}

AffineExpr
AffineExpr::operator-(const AffineExpr &o) const
{
    return *this + (-o);
}

AffineExpr
AffineExpr::operator*(int64_t s) const
{
    AffineExpr out;
    out.constant_ = constant_ * s;
    if (s != 0) {
        out.terms_ = terms_;
        for (auto &[var, c] : out.terms_)
            c *= s;
    }
    return out;
}

bool
AffineExpr::operator==(const AffineExpr &o) const
{
    return constant_ == o.constant_ && terms_ == o.terms_;
}

AffineExpr
AffineExpr::substitute(VarId v, const AffineExpr &e) const
{
    int64_t c = coeff(v);
    if (c == 0)
        return *this;
    return withoutVar(v) + e * c;
}

AffineExpr
AffineExpr::withoutVar(VarId v) const
{
    AffineExpr out;
    out.constant_ = constant_;
    for (const auto &term : terms_)
        if (term.first != v)
            out.terms_.push_back(term);
    return out;
}

int64_t
AffineExpr::eval(const std::function<int64_t(VarId)> &lookup) const
{
    int64_t acc = constant_;
    for (const auto &[var, c] : terms_)
        acc += c * lookup(var);
    return acc;
}

std::string
AffineExpr::str(const std::function<std::string(VarId)> &name) const
{
    if (terms_.empty())
        return std::to_string(constant_);
    std::ostringstream os;
    bool first = true;
    for (const auto &[var, c] : terms_) {
        if (first) {
            if (c == -1)
                os << "-";
            else if (c != 1)
                os << c << "*";
        } else {
            os << (c < 0 ? " - " : " + ");
            int64_t a = std::abs(c);
            if (a != 1)
                os << a << "*";
        }
        os << name(var);
        first = false;
    }
    if (constant_ != 0)
        os << (constant_ < 0 ? " - " : " + ") << std::abs(constant_);
    return os.str();
}

void
AffineExpr::addTerm(VarId v, int64_t coeff)
{
    if (coeff == 0)
        return;
    auto it = std::lower_bound(
        terms_.begin(), terms_.end(), v,
        [](const Term &t, VarId id) { return t.first < id; });
    if (it != terms_.end() && it->first == v) {
        it->second += coeff;
        if (it->second == 0)
            terms_.erase(it);
    } else {
        terms_.insert(it, {v, coeff});
    }
}

} // namespace memoria
