#include "ir/printer.hh"

#include <sstream>

#include "support/logging.hh"

namespace memoria {

namespace {

std::function<std::string(VarId)>
namer(const Program &prog)
{
    return [&prog](VarId v) { return prog.varName(v); };
}

void
printNodeImpl(const Program &prog, const Node &n, int indent,
              std::ostringstream &os)
{
    std::string pad(2 * indent, ' ');
    if (n.isStmt()) {
        os << pad << printRef(prog, n.stmt.write) << " = "
           << printValue(prog, n.stmt.rhs) << "\n";
        return;
    }
    os << pad << "DO " << prog.varName(n.var) << " = "
       << n.lb.str(namer(prog)) << ", " << n.ub.str(namer(prog));
    if (n.step != 1)
        os << ", " << n.step;
    os << "\n";
    for (const auto &kid : n.body)
        printNodeImpl(prog, *kid, indent + 1, os);
    os << pad << "ENDDO\n";
}

} // namespace

std::string
printRef(const Program &prog, const ArrayRef &ref)
{
    std::ostringstream os;
    os << prog.arrayDecl(ref.array).name << "(";
    for (size_t i = 0; i < ref.subs.size(); ++i) {
        if (i)
            os << ",";
        const auto &s = ref.subs[i];
        if (s.isAffine())
            os << s.affine.str(namer(prog));
        else
            os << "[" << printValue(prog, s.opaque) << "]";
    }
    os << ")";
    return os.str();
}

namespace {

/**
 * An Index leaf renders with the precedence of its affine expression:
 * "K" binds like a name, but "K + 3" or "2*K" would bind wrongly
 * inside * and / ("K + 3/2" reparses as K + (3/2)). Anything other
 * than a bare positive variable needs parentheses there.
 */
bool
needsParensInTerm(const ValuePtr &v)
{
    if (v->op != ValOp::Index)
        return false;
    const auto &terms = v->index.terms();
    if (terms.empty())
        return false;  // renders as a plain number
    return terms.size() > 1 || v->index.constant() != 0 ||
           terms[0].second != 1;
}

/** Render a Mul/Div operand, parenthesized when precedence needs it. */
std::string
termOperand(const Program &prog, const ValuePtr &v)
{
    std::string s = printValue(prog, v);
    return needsParensInTerm(v) ? "(" + s + ")" : s;
}

/**
 * Render the right operand of + or -. An Index leaf rendering with a
 * top-level + or - tail ("L + 1") would regroup under the parser's
 * left associativity — harmless after +, meaning-changing after - —
 * so it gets parentheses.
 */
std::string
sumRhsOperand(const Program &prog, const ValuePtr &v)
{
    std::string s = printValue(prog, v);
    if (v->op == ValOp::Index && !v->index.terms().empty() &&
        (v->index.terms().size() > 1 || v->index.constant() != 0))
        return "(" + s + ")";
    return s;
}

} // namespace

std::string
printValue(const Program &prog, const ValuePtr &v)
{
    if (!v)
        return "<null>";
    std::ostringstream os;
    switch (v->op) {
      case ValOp::Const:
        os << v->constant;
        break;
      case ValOp::Load:
        os << printRef(prog, v->load);
        break;
      case ValOp::Index:
        os << v->index.str(namer(prog));
        break;
      case ValOp::Add:
        os << "(" << printValue(prog, v->kids[0]) << " + "
           << sumRhsOperand(prog, v->kids[1]) << ")";
        break;
      case ValOp::Sub:
        os << "(" << printValue(prog, v->kids[0]) << " - "
           << sumRhsOperand(prog, v->kids[1]) << ")";
        break;
      case ValOp::Mul:
        os << termOperand(prog, v->kids[0]) << "*"
           << termOperand(prog, v->kids[1]);
        break;
      case ValOp::Div:
        os << termOperand(prog, v->kids[0]) << "/"
           << termOperand(prog, v->kids[1]);
        break;
      case ValOp::Neg:
        // Negating an affine leaf textually ("-K + 2") would change
        // its meaning; fold the sign into the affine form instead.
        if (v->kids[0]->op == ValOp::Index)
            os << (-v->kids[0]->index).str(namer(prog));
        else
            os << "-" << printValue(prog, v->kids[0]);
        break;
      case ValOp::Sqrt:
        os << "SQRT(" << printValue(prog, v->kids[0]) << ")";
        break;
      case ValOp::Min:
        os << "MIN(" << printValue(prog, v->kids[0]) << ","
           << printValue(prog, v->kids[1]) << ")";
        break;
      case ValOp::Max:
        os << "MAX(" << printValue(prog, v->kids[0]) << ","
           << printValue(prog, v->kids[1]) << ")";
        break;
      case ValOp::IMod:
        os << "MOD(" << printValue(prog, v->kids[0]) << ","
           << printValue(prog, v->kids[1]) << ")";
        break;
    }
    return os.str();
}

std::string
printNode(const Program &prog, const Node &n, int indent)
{
    std::ostringstream os;
    printNodeImpl(prog, n, indent, os);
    return os.str();
}

std::string
printProgram(const Program &prog)
{
    std::ostringstream os;
    os << "PROGRAM " << prog.name << "\n";
    for (const auto &v : prog.vars) {
        if (v.kind == VarKind::Param)
            os << "  PARAMETER " << v.name << " = " << v.paramValue
               << "\n";
    }
    for (const auto &a : prog.arrays) {
        if (a.isRegister) {
            os << "  REGISTER " << a.name << "\n";
            continue;
        }
        os << "  REAL*" << a.elemSize << " " << a.name << "(";
        for (size_t i = 0; i < a.extents.size(); ++i) {
            if (i)
                os << ",";
            os << a.extents[i].str(namer(prog));
        }
        os << ")\n";
    }
    for (const auto &n : prog.body)
        printNodeImpl(prog, *n, 1, os);
    os << "END\n";
    return os.str();
}

} // namespace memoria
