/**
 * @file
 * Fluent construction API for loop-nest programs.
 *
 * The builder plays the role of the paper's Fortran 77 front end: kernels
 * and corpus programs are written in a compact embedded DSL, e.g.
 *
 *   ProgramBuilder b("matmul");
 *   auto n = b.param("N", 512);
 *   auto a = b.array("A", {n, n});
 *   ...
 *   b.add(b.loop(j, 1, n, b.loop(k, 1, n, b.loop(i, 1, n,
 *       b.assign(c(i, j), c(i, j) + a(i, k) * bm(k, j))))));
 *   Program p = b.finish();
 */

#ifndef MEMORIA_IR_BUILDER_HH
#define MEMORIA_IR_BUILDER_HH

#include <string>
#include <vector>

#include "ir/program.hh"

namespace memoria {

class ProgramBuilder;

/** Affine index expression wrapper with natural arithmetic. */
struct Ix
{
    AffineExpr e;

    Ix(int64_t c) : e(c) {}
    Ix(int c) : e(c) {}
    Ix(AffineExpr expr) : e(std::move(expr)) {}
};

inline Ix operator+(const Ix &a, const Ix &b) { return {a.e + b.e}; }
inline Ix operator-(const Ix &a, const Ix &b) { return {a.e - b.e}; }
inline Ix operator*(const Ix &a, int64_t s) { return {a.e * s}; }
inline Ix operator*(int64_t s, const Ix &a) { return {a.e * s}; }
inline Ix operator-(const Ix &a) { return {-a.e}; }

/** Handle to a declared variable (loop index or parameter). */
struct Var
{
    VarId id = kNoVar;

    operator Ix() const { return Ix(AffineExpr::makeVar(id)); }
};

/** Value-tree wrapper with natural arithmetic. */
struct Val
{
    ValuePtr p;

    Val(double c) : p(Value::makeConst(c)) {}
    Val(int c) : p(Value::makeConst(c)) {}
    Val(ValuePtr ptr) : p(std::move(ptr)) {}
    Val(const Ix &ix) : p(Value::makeIndex(ix.e)) {}
    Val(const Var &v) : p(Value::makeIndex(AffineExpr::makeVar(v.id))) {}
};

/** Array reference wrapper; converts to Val (a load) on the RHS. */
struct Ref
{
    ArrayRef r;

    operator Val() const { return Val(Value::makeLoad(r)); }
};

inline Val
operator+(const Val &a, const Val &b)
{
    return Val(Value::make(ValOp::Add, {a.p, b.p}));
}

inline Val
operator-(const Val &a, const Val &b)
{
    return Val(Value::make(ValOp::Sub, {a.p, b.p}));
}

inline Val
operator*(const Val &a, const Val &b)
{
    return Val(Value::make(ValOp::Mul, {a.p, b.p}));
}

inline Val
operator/(const Val &a, const Val &b)
{
    return Val(Value::make(ValOp::Div, {a.p, b.p}));
}

inline Val
operator-(const Val &a)
{
    return Val(Value::make(ValOp::Neg, {a.p}));
}

/** sqrt(a). */
inline Val
sqrtv(const Val &a)
{
    return Val(Value::make(ValOp::Sqrt, {a.p}));
}

/** min(a, b). */
inline Val
minv(const Val &a, const Val &b)
{
    return Val(Value::make(ValOp::Min, {a.p, b.p}));
}

/** max(a, b). */
inline Val
maxv(const Val &a, const Val &b)
{
    return Val(Value::make(ValOp::Max, {a.p, b.p}));
}

/** mod(a, b) on the rounded integer values. */
inline Val
imodv(const Val &a, const Val &b)
{
    return Val(Value::make(ValOp::IMod, {a.p, b.p}));
}

/** Handle to a declared array; call it with subscripts to make a Ref. */
struct Arr
{
    ArrayId id = -1;

    Ref operator()(const Ix &i) const;
    Ref operator()(const Ix &i, const Ix &j) const;
    Ref operator()(const Ix &i, const Ix &j, const Ix &k) const;
    Ref operator()(const Ix &i, const Ix &j, const Ix &k,
                   const Ix &l) const;

    /** General form, allowing opaque subscripts. */
    Ref at(std::vector<Subscript> subs) const;

    /** Rank-0 (scalar) reference. */
    Ref operator()() const { return at({}); }
};

/** An opaque (unanalyzable) subscript computed by a value tree. */
Subscript opaqueSub(const Val &v);

/** Builder for one Program. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name);

    /** Symbolic size parameter; cost model sees it as the symbol n. */
    Var param(const std::string &name, int64_t value);

    /**
     * Size parameter the cost model treats as a known small constant
     * (e.g. the 5x5 leading dimensions in Applu).
     */
    Var paramFixed(const std::string &name, int64_t value);

    /** Declare a loop index variable. */
    Var loopVar(const std::string &name);

    /** Declare a column-major array. */
    Arr array(const std::string &name, std::vector<Ix> extents,
              int elemSize = 8);

    /** Declare a rank-0 register scalar (no memory traffic). */
    Arr scalar(const std::string &name);

    /** Build an assignment statement node. */
    NodePtr assign(const Ref &lhs, const Val &rhs);

    /** Build a DO loop node with the given body. */
    NodePtr loop(Var v, const Ix &lb, const Ix &ub,
                 std::vector<NodePtr> body, int64_t step = 1);

    /** Convenience: single-node and variadic bodies. */
    template <class... Rest>
    NodePtr
    loop(Var v, const Ix &lb, const Ix &ub, NodePtr first, Rest... rest)
    {
        std::vector<NodePtr> body;
        body.push_back(std::move(first));
        (body.push_back(std::move(rest)), ...);
        return loop(v, lb, ub, std::move(body));
    }

    /** Append a top-level node. */
    void add(NodePtr n);

    /** Finalize and return the program. */
    Program finish();

  private:
    Program prog_;
    int nextStmt_ = 0;
    bool finished_ = false;
};

} // namespace memoria

#endif // MEMORIA_IR_BUILDER_HH
